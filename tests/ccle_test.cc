#include <gtest/gtest.h>

#include "ccle/codec.h"
#include "serialize/flatlite.h"
#include "ccle/schema.h"
#include "ccle/value.h"
#include "crypto/drbg.h"
#include "crypto/gcm.h"

namespace confide::ccle {
namespace {

// The paper's Listing 1, verbatim structure.
constexpr const char* kDemoSchema = R"(
attribute "map";
attribute "confidential";

table Demo {
  owner: string;
  admin: [Administrator];
  account_map: [Account](map);
}

table Administrator {
  identity: string;
  name: string;
}

table Account {
  user_id: string;
  organization: string(confidential);
  asset_map: [Asset](map, confidential);
}

table Asset {
  type: ubyte;
  amount: ulong;
}

root_type Demo;
)";

/// AES-GCM-backed cipher with a random per-call IV, mirroring D-Protocol.
class GcmFieldCipher : public FieldCipher {
 public:
  GcmFieldCipher() : rng_(4242) {
    Bytes key = crypto::Drbg(7).Generate(32);
    gcm_ = std::make_unique<crypto::AesGcm>(*crypto::AesGcm::Create(key));
  }

  Result<Bytes> Encrypt(ByteView plain, ByteView aad) override {
    ++encrypt_count;
    Bytes iv = rng_.Generate(crypto::kGcmIvSize);
    CONFIDE_ASSIGN_OR_RETURN(Bytes sealed, gcm_->Seal(iv, plain, aad));
    return Concat(iv, sealed);
  }

  Result<Bytes> Decrypt(ByteView sealed, ByteView aad) override {
    ++decrypt_count;
    if (sealed.size() < crypto::kGcmIvSize) {
      return Status::CryptoError("ccle test: short ciphertext");
    }
    return gcm_->Open(sealed.first(crypto::kGcmIvSize),
                      sealed.subspan(crypto::kGcmIvSize), aad);
  }

  int encrypt_count = 0;
  int decrypt_count = 0;

 private:
  std::unique_ptr<crypto::AesGcm> gcm_;
  crypto::Drbg rng_;
};

Value BuildDemoValue() {
  Value asset1 = Value::Table();
  asset1.SetField("type", Value::UInt(1));
  asset1.SetField("amount", Value::UInt(50000));
  Value asset2 = Value::Table();
  asset2.SetField("type", Value::UInt(2));
  asset2.SetField("amount", Value::UInt(777));

  Value assets = Value::Map();
  assets.SetEntry("asset-001", asset1);
  assets.SetEntry("asset-002", asset2);

  Value account = Value::Table();
  account.SetField("user_id", Value::String("alice"));
  account.SetField("organization", Value::String("acme-bank"));
  account.SetField("asset_map", assets);

  Value accounts = Value::Map();
  accounts.SetEntry("alice", account);

  Value admin = Value::Table();
  admin.SetField("identity", Value::String("admin-1"));
  admin.SetField("name", Value::String("root"));
  Value admins = Value::Vector();
  admins.Append(admin);

  Value demo = Value::Table();
  demo.SetField("owner", Value::String("consortium-operator"));
  demo.SetField("admin", admins);
  demo.SetField("account_map", accounts);
  return demo;
}

// ---------------------------------------------------------------------------
// Schema parsing
// ---------------------------------------------------------------------------

TEST(CcleSchemaTest, ParsesPaperListing1) {
  auto schema = ParseSchema(kDemoSchema);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->root_type, "Demo");
  EXPECT_EQ(schema->tables.size(), 4u);

  const TableDef* account = schema->FindTable("Account");
  ASSERT_NE(account, nullptr);
  const FieldDef* org = account->FindField("organization");
  ASSERT_NE(org, nullptr);
  EXPECT_TRUE(org->confidential);
  EXPECT_EQ(org->type, FieldType::kString);

  const FieldDef* asset_map = account->FindField("asset_map");
  ASSERT_NE(asset_map, nullptr);
  EXPECT_TRUE(asset_map->is_map);
  EXPECT_TRUE(asset_map->confidential);
  EXPECT_EQ(asset_map->table_type, "Asset");

  const TableDef* demo = schema->FindTable("Demo");
  EXPECT_FALSE(demo->FindField("owner")->confidential);
  EXPECT_TRUE(demo->FindField("admin")->is_vector);
  EXPECT_FALSE(demo->FindField("admin")->is_map);
}

TEST(CcleSchemaTest, RejectsUndeclaredAttribute) {
  EXPECT_FALSE(ParseSchema(R"(
    table T { x: ulong(confidential); }
    root_type T;
  )").ok());
}

TEST(CcleSchemaTest, RejectsUnknownTableType) {
  EXPECT_FALSE(ParseSchema(R"(
    table T { x: Missing; }
    root_type T;
  )").ok());
}

TEST(CcleSchemaTest, RejectsMissingOrUnknownRoot) {
  EXPECT_FALSE(ParseSchema("table T { x: ulong; }").ok());
  EXPECT_FALSE(ParseSchema("table T { x: ulong; } root_type Nope;").ok());
}

TEST(CcleSchemaTest, RejectsCycles) {
  EXPECT_FALSE(ParseSchema(R"(
    table A { b: B; }
    table B { a: A; }
    root_type A;
  )").ok());
}

TEST(CcleSchemaTest, RejectsMapOnScalarField) {
  EXPECT_FALSE(ParseSchema(R"(
    attribute "map";
    table T { x: ulong(map); }
    root_type T;
  )").ok());
}

TEST(CcleSchemaTest, RejectsDuplicateTable) {
  EXPECT_FALSE(ParseSchema(R"(
    table T { x: ulong; }
    table T { y: ulong; }
    root_type T;
  )").ok());
}

// ---------------------------------------------------------------------------
// Confidential codec
// ---------------------------------------------------------------------------

TEST(CcleCodecTest, SecureRoundTripPreservesValue) {
  auto schema = ParseSchema(kDemoSchema);
  ASSERT_TRUE(schema.ok());
  Value demo = BuildDemoValue();
  GcmFieldCipher cipher;

  auto encoded = EncodeSecure(*schema, demo, &cipher, AsByteView("contract-1"));
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();

  auto decoded = DecodeSecure(*schema, *encoded, &cipher, AsByteView("contract-1"));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, demo);
}

TEST(CcleCodecTest, TruncatedAndCorruptBuffersFailCleanly) {
  auto schema = ParseSchema(kDemoSchema);
  ASSERT_TRUE(schema.ok());
  Value demo = BuildDemoValue();
  GcmFieldCipher cipher;
  auto encoded = EncodeSecure(*schema, demo, &cipher, ByteView{});
  ASSERT_TRUE(encoded.ok());

  // Truncations at every length: decoders must return an error Status —
  // never crash and never hand back a Value from a partial buffer.
  for (size_t len = 0; len < encoded->size(); len += 7) {
    ByteView cut(encoded->data(), len);
    EXPECT_FALSE(DecodeSecure(*schema, cut, &cipher, ByteView{}).ok())
        << "len " << len;
    EXPECT_FALSE(DecodeRedacted(*schema, cut).ok()) << "len " << len;
  }

  // Deterministic single-byte corruption sweep: each decode must either
  // fail cleanly or (for bytes outside the GCM-sealed leaves) produce a
  // parseable value; under ASan this doubles as a bounds audit.
  crypto::Drbg rng(31337);
  for (int i = 0; i < 64; ++i) {
    Bytes corrupt = *encoded;
    corrupt[size_t(rng.NextBounded(corrupt.size()))] ^=
        uint8_t(1 + rng.NextBounded(255));
    (void)DecodeSecure(*schema, corrupt, &cipher, ByteView{});
    (void)DecodeRedacted(*schema, corrupt);
  }
}

TEST(CcleCodecTest, OnlyConfidentialLeavesAreEncrypted) {
  auto schema = ParseSchema(kDemoSchema);
  ASSERT_TRUE(schema.ok());
  Value demo = BuildDemoValue();
  GcmFieldCipher cipher;
  ASSERT_TRUE(EncodeSecure(*schema, demo, &cipher, ByteView{}).ok());
  // Confidential leaves: organization (1) + 2 assets x (type, amount) = 5.
  EXPECT_EQ(cipher.encrypt_count, 5);
  EXPECT_EQ(CountConfidentialLeaves(*schema, demo), 5u);
}

TEST(CcleCodecTest, PublicFieldsReadableWithoutKey) {
  auto schema = ParseSchema(kDemoSchema);
  ASSERT_TRUE(schema.ok());
  Value demo = BuildDemoValue();
  GcmFieldCipher cipher;
  auto encoded = EncodeSecure(*schema, demo, &cipher, ByteView{});
  ASSERT_TRUE(encoded.ok());

  // The auditor's view: no cipher.
  auto redacted = DecodeRedacted(*schema, *encoded);
  ASSERT_TRUE(redacted.ok()) << redacted.status().ToString();
  EXPECT_EQ(redacted->FindField("owner")->AsString(), "consortium-operator");
  const Value* admins = redacted->FindField("admin");
  ASSERT_NE(admins, nullptr);
  EXPECT_EQ(admins->items()[0].FindField("name")->AsString(), "root");

  const Value* account = redacted->FindField("account_map")->FindEntry("alice");
  ASSERT_NE(account, nullptr);
  EXPECT_EQ(account->FindField("user_id")->AsString(), "alice");
  // Confidential leaves are opaque.
  EXPECT_TRUE(account->FindField("organization")->is_redacted());
  const Value* asset =
      account->FindField("asset_map")->FindEntry("asset-001");
  ASSERT_NE(asset, nullptr);
  EXPECT_TRUE(asset->FindField("amount")->is_redacted());
  EXPECT_TRUE(asset->FindField("type")->is_redacted());
}

TEST(CcleCodecTest, CiphertextSwapBetweenFieldsDetected) {
  // Binding the field path as AAD prevents moving a sealed blob from one
  // field to another (or one map key to another).
  auto schema = ParseSchema(R"(
    attribute "confidential";
    table T {
      a: ulong(confidential);
      b: ulong(confidential);
    }
    root_type T;
  )");
  ASSERT_TRUE(schema.ok());
  Value v = Value::Table();
  v.SetField("a", Value::UInt(100));
  v.SetField("b", Value::UInt(200));
  GcmFieldCipher cipher;
  auto encoded = EncodeSecure(*schema, v, &cipher, AsByteView("ctx"));
  ASSERT_TRUE(encoded.ok());

  // Swap the two sealed blobs at the FlatLite level.
  auto view = serialize::FlatLiteView::Parse(*encoded);
  ASSERT_TRUE(view.ok());
  auto blob_a = view->GetBytes(0);
  auto blob_b = view->GetBytes(1);
  ASSERT_TRUE(blob_a.ok() && blob_b.ok());
  serialize::FlatLiteBuilder forged(2);
  forged.SetBytes(0, *blob_b);
  forged.SetBytes(1, *blob_a);
  Bytes forged_buf = forged.Finish();

  auto decoded = DecodeSecure(*schema, forged_buf, &cipher, AsByteView("ctx"));
  EXPECT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCryptoError());
}

TEST(CcleCodecTest, WrongContextFailsDecryption) {
  auto schema = ParseSchema(kDemoSchema);
  ASSERT_TRUE(schema.ok());
  Value demo = BuildDemoValue();
  GcmFieldCipher cipher;
  auto encoded = EncodeSecure(*schema, demo, &cipher, AsByteView("contract-1"));
  ASSERT_TRUE(encoded.ok());
  auto decoded = DecodeSecure(*schema, *encoded, &cipher, AsByteView("contract-2"));
  EXPECT_FALSE(decoded.ok());
}

TEST(CcleCodecTest, AbsentFieldsStayAbsent) {
  auto schema = ParseSchema(kDemoSchema);
  ASSERT_TRUE(schema.ok());
  Value demo = Value::Table();
  demo.SetField("owner", Value::String("only-owner"));
  GcmFieldCipher cipher;
  auto encoded = EncodeSecure(*schema, demo, &cipher, ByteView{});
  ASSERT_TRUE(encoded.ok());
  auto decoded = DecodeSecure(*schema, *encoded, &cipher, ByteView{});
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->FindField("owner")->AsString(), "only-owner");
  EXPECT_EQ(decoded->FindField("account_map"), nullptr);
  EXPECT_EQ(cipher.encrypt_count, 0);
}

TEST(CcleCodecTest, TypeMismatchRejectedAtEncode) {
  auto schema = ParseSchema(kDemoSchema);
  ASSERT_TRUE(schema.ok());
  Value demo = Value::Table();
  demo.SetField("owner", Value::UInt(5));  // should be string
  GcmFieldCipher cipher;
  EXPECT_FALSE(EncodeSecure(*schema, demo, &cipher, ByteView{}).ok());
}

TEST(CcleCodecTest, MapEntriesAddressableByKey) {
  auto schema = ParseSchema(kDemoSchema);
  ASSERT_TRUE(schema.ok());
  Value demo = BuildDemoValue();
  GcmFieldCipher cipher;
  auto encoded = EncodeSecure(*schema, demo, &cipher, ByteView{});
  ASSERT_TRUE(encoded.ok());
  auto decoded = DecodeSecure(*schema, *encoded, &cipher, ByteView{});
  ASSERT_TRUE(decoded.ok());
  const Value* account = decoded->FindField("account_map")->FindEntry("alice");
  ASSERT_NE(account, nullptr);
  EXPECT_EQ(account->FindField("organization")->AsString(), "acme-bank");
  EXPECT_EQ(
      account->FindField("asset_map")->FindEntry("asset-001")->FindField("amount")->AsUInt(),
      50000u);
  EXPECT_EQ(decoded->FindField("account_map")->FindEntry("bob"), nullptr);
}

}  // namespace
}  // namespace confide::ccle
