#include <gtest/gtest.h>

#include <thread>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/sim_clock.h"
#include "storage/lsm_store.h"
#include "tee/attestation.h"
#include "tee/enclave.h"
#include "tee/epc.h"
#include "tee/ring_buffer.h"

namespace confide::tee {
namespace {

// A trivial enclave used across these tests: fn 1 echoes input, fn 2
// issues an ocall, fn 3 emits monitor records, fn 4 creates attestations.
class EchoEnclave : public Enclave {
 public:
  std::string CodeIdentity() const override { return "echo-enclave-v1"; }

  Result<Bytes> HandleEcall(uint64_t fn, ByteView input,
                            EnclaveContext* ctx) override {
    switch (fn) {
      case 1:
        return ToBytes(input);
      case 2:
        return ctx->Ocall(7, input);
      case 5:
        // Batched ocall: one crossing carrying `input.size()` logical
        // entries (one byte of input per entry, for the tests).
        return ctx->OcallBatched(7, input, input.size());
      case 3:
        ctx->MonitorEmit(1, "status ok");
        return Bytes{};
      case 4: {
        Quote quote = ctx->CreateQuote(input);
        return ToBytes(quote.user_data);  // smoke: round-trips user data
      }
      default:
        return Status::InvalidArgument("unknown fn");
    }
  }
};

TeeCostModel SmallEpcModel() {
  TeeCostModel model;
  model.epc_usable_bytes = 16 * 4096;  // 16 pages to force paging
  return model;
}

// ---------------------------------------------------------------------------
// EPC manager
// ---------------------------------------------------------------------------

TEST(EpcTest, AllocateWithinBudgetNoEviction) {
  SimClock clock;
  TeeStats stats;
  EpcManager epc(SmallEpcModel(), &clock, &stats);
  auto region = epc.Allocate(8 * 4096);
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(epc.ResidentBytes(), 8u * 4096);
  EXPECT_EQ(stats.pages_evicted.load(), 0u);
}

TEST(EpcTest, OverflowEvictsLru) {
  SimClock clock;
  TeeStats stats;
  EpcManager epc(SmallEpcModel(), &clock, &stats);
  auto r1 = epc.Allocate(10 * 4096);
  auto r2 = epc.Allocate(10 * 4096);  // must evict r1
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(stats.pages_evicted.load(), 10u);
  EXPECT_GT(clock.NowNs(), 0u);

  // Touching r1 pages it back in (and evicts r2).
  uint64_t evicted_before = stats.pages_evicted.load();
  ASSERT_TRUE(epc.Touch(*r1).ok());
  EXPECT_EQ(stats.pages_loaded.load(), 10u);
  EXPECT_GT(stats.pages_evicted.load(), evicted_before);
}

TEST(EpcTest, RequestBeyondTotalEpcFails) {
  SimClock clock;
  TeeStats stats;
  EpcManager epc(SmallEpcModel(), &clock, &stats);
  EXPECT_FALSE(epc.Allocate(17 * 4096).ok());
}

TEST(EpcTest, FreeReleasesPages) {
  SimClock clock;
  TeeStats stats;
  EpcManager epc(SmallEpcModel(), &clock, &stats);
  auto r1 = epc.Allocate(16 * 4096);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(epc.Free(*r1).ok());
  EXPECT_EQ(epc.ResidentBytes(), 0u);
  // Space is reusable without eviction.
  TeeStats fresh;
  auto r2 = epc.Allocate(16 * 4096);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(stats.pages_evicted.load(), 0u);
}

TEST(EpcTest, TouchKeepsHotRegionResident) {
  SimClock clock;
  TeeStats stats;
  EpcManager epc(SmallEpcModel(), &clock, &stats);
  auto hot = epc.Allocate(4 * 4096);
  auto cold = epc.Allocate(4 * 4096);
  ASSERT_TRUE(hot.ok() && cold.ok());
  ASSERT_TRUE(epc.Touch(*hot).ok());         // hot becomes MRU
  auto big = epc.Allocate(10 * 4096);        // forces eviction of LRU (cold)
  ASSERT_TRUE(big.ok());
  uint64_t loads_before = stats.pages_loaded.load();
  ASSERT_TRUE(epc.Touch(*hot).ok());         // still resident: no load
  EXPECT_EQ(stats.pages_loaded.load(), loads_before);
}

TEST(EpcTest, UnknownRegionRejected) {
  SimClock clock;
  TeeStats stats;
  EpcManager epc(SmallEpcModel(), &clock, &stats);
  EXPECT_TRUE(epc.Free(42).IsNotFound());
  EXPECT_TRUE(epc.Touch(42).IsNotFound());
}

// ---------------------------------------------------------------------------
// Enclave platform: boundary costs
// ---------------------------------------------------------------------------

TEST(EnclaveTest, EcallRoundTripEchoes) {
  SimClock clock;
  EnclavePlatform platform(TeeCostModel{}, &clock, /*seed=*/1);
  auto id = platform.CreateEnclave(std::make_shared<EchoEnclave>(), 1 << 20);
  ASSERT_TRUE(id.ok());
  auto out = platform.Ecall(*id, 1, AsByteView("hello enclave"));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(ToString(*out), "hello enclave");
  EXPECT_EQ(platform.stats().ecalls.load(), 1u);
  EXPECT_EQ(platform.stats().transitions.load(), 2u);  // EENTER + EEXIT
}

TEST(EnclaveTest, EcallChargesTransitionCycles) {
  SimClock clock;
  TeeCostModel model;
  EnclavePlatform platform(model, &clock, 1);
  auto id = platform.CreateEnclave(std::make_shared<EchoEnclave>(), 1 << 20);
  ASSERT_TRUE(id.ok());
  uint64_t before = clock.NowNs();
  ASSERT_TRUE(platform.Ecall(*id, 1, AsByteView("x")).ok());
  uint64_t elapsed = clock.NowNs() - before;
  // At least two warm transitions at 8314 cycles / 3.7 GHz ≈ 2247 ns each.
  EXPECT_GE(elapsed, 2 * 2200u);
}

TEST(EnclaveTest, UserCheckSkipsCopyCost) {
  SimClock clock;
  EnclavePlatform platform(TeeCostModel{}, &clock, 1);
  auto id = platform.CreateEnclave(std::make_shared<EchoEnclave>(), 1 << 20);
  ASSERT_TRUE(id.ok());

  Bytes big(1 << 20, 0xaa);
  ASSERT_TRUE(platform.Ecall(*id, 1, big, PointerSemantics::kCopyInOut).ok());
  uint64_t copied = platform.stats().bytes_copied_in.load();
  EXPECT_GE(copied, big.size());

  ASSERT_TRUE(platform.Ecall(*id, 1, big, PointerSemantics::kUserCheck).ok());
  EXPECT_EQ(platform.stats().bytes_copied_in.load(), copied);  // unchanged
  EXPECT_GT(platform.stats().user_check_bypasses.load(), 0u);
}

TEST(EnclaveTest, OcallDispatchesToHostHandler) {
  SimClock clock;
  EnclavePlatform platform(TeeCostModel{}, &clock, 1);
  platform.RegisterOcall(7, [](ByteView payload) -> Result<Bytes> {
    Bytes out = ToBytes(payload);
    out.push_back('!');
    return out;
  });
  auto id = platform.CreateEnclave(std::make_shared<EchoEnclave>(), 1 << 20);
  ASSERT_TRUE(id.ok());
  auto out = platform.Ecall(*id, 2, AsByteView("ping"));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(ToString(*out), "ping!");
  EXPECT_EQ(platform.stats().ocalls.load(), 1u);
  EXPECT_EQ(platform.stats().transitions.load(), 4u);  // ecall pair + ocall pair
}

TEST(EnclaveTest, GlobalMetricsMirrorPlatformStats) {
  // The process-wide registry aggregates the same transition events the
  // per-platform TeeStats records: deltas must match exactly.
  SimClock clock;
  EnclavePlatform platform(TeeCostModel{}, &clock, 1);
  platform.RegisterOcall(7, [](ByteView payload) -> Result<Bytes> {
    return ToBytes(payload);
  });
  auto id = platform.CreateEnclave(std::make_shared<EchoEnclave>(), 1 << 20);
  ASSERT_TRUE(id.ok());

  metrics::MetricsSnapshot before = metrics::MetricsRegistry::Global().Snapshot();
  uint64_t stats_transitions_before = platform.stats().transitions.load();
  uint64_t stats_ecalls_before = platform.stats().ecalls.load();
  uint64_t stats_ocalls_before = platform.stats().ocalls.load();

  ASSERT_TRUE(platform.Ecall(*id, 1, AsByteView("plain")).ok());  // no ocall
  ASSERT_TRUE(platform.Ecall(*id, 2, AsByteView("ping")).ok());   // one ocall

  metrics::MetricsSnapshot after = metrics::MetricsRegistry::Global().Snapshot();
  uint64_t transitions_delta = platform.stats().transitions.load() -
                               stats_transitions_before;
  uint64_t ecalls_delta = platform.stats().ecalls.load() - stats_ecalls_before;
  uint64_t ocalls_delta = platform.stats().ocalls.load() - stats_ocalls_before;

  EXPECT_EQ(ecalls_delta, 2u);
  EXPECT_EQ(ocalls_delta, 1u);
  EXPECT_EQ(transitions_delta, 2 * ecalls_delta + 2 * ocalls_delta);
  EXPECT_EQ(after.counter("tee.transition.count") -
                before.counter("tee.transition.count"),
            transitions_delta);
  EXPECT_EQ(after.counter("tee.ecall.count") - before.counter("tee.ecall.count"),
            ecalls_delta);
  EXPECT_EQ(after.counter("tee.ocall.count") - before.counter("tee.ocall.count"),
            ocalls_delta);
}

TEST(EnclaveTest, BatchedOcallCostsOneCrossingAndTracksSavings) {
  SimClock clock;
  EnclavePlatform platform(TeeCostModel{}, &clock, 1);
  platform.RegisterOcall(7, [](ByteView payload) -> Result<Bytes> {
    return ToBytes(payload);
  });
  auto id = platform.CreateEnclave(std::make_shared<EchoEnclave>(), 1 << 20);
  ASSERT_TRUE(id.ok());

  // Five logical entries in one batched ocall: still a single EEXIT +
  // ERESUME pair — four single-ocall crossings (8 transitions) avoided.
  auto out = platform.Ecall(*id, 5, AsByteView("12345"));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(platform.stats().ecalls.load(), 1u);
  EXPECT_EQ(platform.stats().ocalls.load(), 1u);
  EXPECT_EQ(platform.stats().transitions.load(), 4u);
  EXPECT_EQ(platform.stats().batched_ocall_entries.load(), 5u);
  EXPECT_EQ(platform.stats().transitions_saved.load(), 2u * 4u);

  // A single-entry batch saves nothing over a plain ocall.
  ASSERT_TRUE(platform.Ecall(*id, 5, AsByteView("x")).ok());
  EXPECT_EQ(platform.stats().batched_ocall_entries.load(), 6u);
  EXPECT_EQ(platform.stats().transitions_saved.load(), 2u * 4u);
}

TEST(EnclaveTest, UnregisteredOcallFails) {
  SimClock clock;
  EnclavePlatform platform(TeeCostModel{}, &clock, 1);
  auto id = platform.CreateEnclave(std::make_shared<EchoEnclave>(), 1 << 20);
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(platform.Ecall(*id, 2, AsByteView("ping")).ok());
}

TEST(EnclaveTest, DestroyReleasesEpc) {
  SimClock clock;
  EnclavePlatform platform(TeeCostModel{}, &clock, 1);
  auto id = platform.CreateEnclave(std::make_shared<EchoEnclave>(), 1 << 20);
  ASSERT_TRUE(id.ok());
  uint64_t resident = platform.epc()->ResidentBytes();
  EXPECT_GT(resident, 0u);
  ASSERT_TRUE(platform.DestroyEnclave(*id).ok());
  EXPECT_EQ(platform.epc()->ResidentBytes(), 0u);
  EXPECT_FALSE(platform.Ecall(*id, 1, AsByteView("x")).ok());
}

// ---------------------------------------------------------------------------
// Attestation
// ---------------------------------------------------------------------------

TEST(AttestationTest, MeasurementDependsOnIdentityAndSvn) {
  auto m1 = MeasureEnclave("cs-enclave", 1);
  auto m2 = MeasureEnclave("cs-enclave", 2);
  auto m3 = MeasureEnclave("km-enclave", 1);
  EXPECT_NE(m1, m2);
  EXPECT_NE(m1, m3);
  EXPECT_EQ(m1, MeasureEnclave("cs-enclave", 1));
}

TEST(AttestationTest, QuoteVerifiesAgainstRoot) {
  SimClock clock;
  EnclavePlatform platform(TeeCostModel{}, &clock, /*seed=*/5);
  auto enclave = std::make_shared<EchoEnclave>();
  auto id = platform.CreateEnclave(enclave, 1 << 20);
  ASSERT_TRUE(id.ok());

  // Build a quote through the context path used by K-Protocol.
  class QuoteEnclave : public Enclave {
   public:
    std::string CodeIdentity() const override { return "quote-enclave"; }
    Result<Bytes> HandleEcall(uint64_t, ByteView input, EnclaveContext* ctx) override {
      quote = ctx->CreateQuote(input);
      return Bytes{};
    }
    Quote quote;
  };
  auto qe = std::make_shared<QuoteEnclave>();
  auto qid = platform.CreateEnclave(qe, 1 << 20);
  ASSERT_TRUE(qid.ok());
  ASSERT_TRUE(platform.Ecall(*qid, 1, AsByteView("pk-fingerprint")).ok());

  EXPECT_TRUE(VerifyQuote(qe->quote));
  EXPECT_EQ(qe->quote.mrenclave, MeasureEnclave("quote-enclave", 1));
  EXPECT_EQ(ToString(qe->quote.user_data), "pk-fingerprint");
}

TEST(AttestationTest, TamperedQuoteRejected) {
  SimClock clock;
  EnclavePlatform platform(TeeCostModel{}, &clock, 6);
  class QuoteEnclave : public Enclave {
   public:
    std::string CodeIdentity() const override { return "quote-enclave"; }
    Result<Bytes> HandleEcall(uint64_t, ByteView input, EnclaveContext* ctx) override {
      quote = ctx->CreateQuote(input);
      return Bytes{};
    }
    Quote quote;
  };
  auto qe = std::make_shared<QuoteEnclave>();
  auto qid = platform.CreateEnclave(qe, 1 << 20);
  ASSERT_TRUE(qid.ok());
  ASSERT_TRUE(platform.Ecall(*qid, 1, AsByteView("data")).ok());

  Quote tampered = qe->quote;
  tampered.user_data.push_back('x');  // MITM alters the bound key data
  EXPECT_FALSE(VerifyQuote(tampered));

  Quote wrong_measure = qe->quote;
  wrong_measure.mrenclave[0] ^= 1;
  EXPECT_FALSE(VerifyQuote(wrong_measure));

  // Self-signed platform key without a root cert fails.
  Quote rogue = qe->quote;
  crypto::Drbg rng(123);
  auto rogue_kp = crypto::GenerateKeyPair(&rng);
  rogue.platform_key = rogue_kp.pub;
  crypto::Hash256 digest = crypto::Sha256::Digest(QuoteSigningBody(rogue));
  rogue.signature = *crypto::EcdsaSign(rogue_kp.priv, digest);
  EXPECT_FALSE(VerifyQuote(rogue));
}

TEST(AttestationTest, LocalReportVerifiesOnlyOnSamePlatform) {
  SimClock clock;
  EnclavePlatform platform_a(TeeCostModel{}, &clock, 10);
  EnclavePlatform platform_b(TeeCostModel{}, &clock, 11);

  class ReportEnclave : public Enclave {
   public:
    std::string CodeIdentity() const override { return "report-enclave"; }
    Result<Bytes> HandleEcall(uint64_t, ByteView input, EnclaveContext* ctx) override {
      report = ctx->CreateLocalReport(input);
      return Bytes{};
    }
    LocalReport report;
  };
  auto re = std::make_shared<ReportEnclave>();
  auto id = platform_a.CreateEnclave(re, 1 << 20);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(platform_a.Ecall(*id, 1, AsByteView("channel-key")).ok());

  EXPECT_TRUE(platform_a.VerifyLocalReport(re->report));
  EXPECT_FALSE(platform_b.VerifyLocalReport(re->report));

  LocalReport tampered = re->report;
  tampered.user_data.push_back('!');
  EXPECT_FALSE(platform_a.VerifyLocalReport(tampered));
}

TEST(AttestationTest, SealKeyBoundToMeasurement) {
  SimClock clock;
  EnclavePlatform platform(TeeCostModel{}, &clock, 12);
  class SealEnclave : public Enclave {
   public:
    explicit SealEnclave(std::string name) : name_(std::move(name)) {}
    std::string CodeIdentity() const override { return name_; }
    Result<Bytes> HandleEcall(uint64_t, ByteView, EnclaveContext* ctx) override {
      key = ctx->SealKey("state");
      return Bytes{};
    }
    crypto::Hash256 key{};

   private:
    std::string name_;
  };
  auto e1 = std::make_shared<SealEnclave>("enclave-one");
  auto e2 = std::make_shared<SealEnclave>("enclave-two");
  auto id1 = platform.CreateEnclave(e1, 1 << 20);
  auto id2 = platform.CreateEnclave(e2, 1 << 20);
  ASSERT_TRUE(id1.ok() && id2.ok());
  ASSERT_TRUE(platform.Ecall(*id1, 1, ByteView{}).ok());
  ASSERT_TRUE(platform.Ecall(*id2, 1, ByteView{}).ok());
  EXPECT_NE(e1->key, e2->key);

  // Same code on the same platform re-derives the same key (sealing).
  auto e1_again = std::make_shared<SealEnclave>("enclave-one");
  auto id3 = platform.CreateEnclave(e1_again, 1 << 20);
  ASSERT_TRUE(id3.ok());
  ASSERT_TRUE(platform.Ecall(*id3, 1, ByteView{}).ok());
  EXPECT_EQ(e1->key, e1_again->key);
}

// ---------------------------------------------------------------------------
// Monitor ring
// ---------------------------------------------------------------------------

TEST(MonitorRingTest, PushPopFifo) {
  MonitorRing<8> ring;
  for (uint64_t i = 0; i < 5; ++i) {
    MonitorRecord r;
    r.sequence = i;
    r.SetMessage("msg-" + std::to_string(i));
    EXPECT_TRUE(ring.Push(r));
  }
  for (uint64_t i = 0; i < 5; ++i) {
    auto r = ring.Pop();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->sequence, i);
  }
  EXPECT_FALSE(ring.Pop().has_value());
}

TEST(MonitorRingTest, FullRingDropsWithoutBlocking) {
  MonitorRing<4> ring;
  MonitorRecord r;
  for (int i = 0; i < 6; ++i) ring.Push(r);
  EXPECT_EQ(ring.Size(), 4u);
  EXPECT_EQ(ring.Dropped(), 2u);
}

TEST(MonitorRingTest, MessageTruncatedSafely) {
  MonitorRecord r;
  std::string huge(500, 'x');
  r.SetMessage(huge);
  EXPECT_EQ(std::string(r.message).size(), sizeof(r.message) - 1);
}

TEST(MonitorRingTest, ConcurrentProducerConsumer) {
  MonitorRing<256> ring;
  constexpr int kRecords = 10000;
  std::thread producer([&] {
    for (int i = 0; i < kRecords; ++i) {
      MonitorRecord r;
      r.sequence = uint64_t(i);
      while (!ring.Push(r)) {
        std::this_thread::yield();
      }
    }
  });
  uint64_t expected = 0;
  while (expected < kRecords) {
    if (auto r = ring.Pop()) {
      EXPECT_EQ(r->sequence, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
}

TEST(MonitorTest, ExitlessEmitAvoidsTransitions) {
  SimClock clock;
  EnclavePlatform platform(TeeCostModel{}, &clock, 1);
  auto id = platform.CreateEnclave(std::make_shared<EchoEnclave>(), 1 << 20);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(platform.Ecall(*id, 3, ByteView{}).ok());
  // Only the ecall's own 2 transitions; the monitor emit added none.
  EXPECT_EQ(platform.stats().transitions.load(), 2u);
  auto records = platform.DrainMonitor();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_STREQ(records[0].message, "status ok");
}

// ---------------------------------------------------------------------------
// Trusted monotonic counters (state continuity)
// ---------------------------------------------------------------------------
// Counter NVRAM high-water marks are process-lifetime and keyed by the
// platform seed, so every test here uses its own unique seed.

TEST(CounterTest, IncrementAndReadAreMonotonicPerFamily) {
  SimClock clock;
  EnclavePlatform platform(TeeCostModel{}, &clock, 7719001);
  auto id = platform.CreateEnclave(std::make_shared<EchoEnclave>(), 1 << 20);
  ASSERT_TRUE(id.ok());

  auto first = platform.CounterIncrement(*id, "state-gen");
  auto second = platform.CounterIncrement(*id, "state-gen");
  auto third = platform.CounterIncrement(*id, "state-gen");
  ASSERT_TRUE(first.ok() && second.ok() && third.ok());
  EXPECT_EQ(*first, 1u);
  EXPECT_EQ(*second, 2u);
  EXPECT_EQ(*third, 3u);
  auto read = platform.CounterRead(*id, "state-gen");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, 3u);

  // Families are independent counters.
  auto other = platform.CounterRead(*id, "epoch");
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(*other, 0u);
}

TEST(CounterTest, SurvivesKillEnclaveAndReprovision) {
  SimClock clock;
  EnclavePlatform platform(TeeCostModel{}, &clock, 7719002);
  auto code = std::make_shared<EchoEnclave>();
  auto id = platform.CreateEnclave(code, 1 << 20);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(platform.CounterIncrement(*id, "state-gen").ok());
  ASSERT_TRUE(platform.CounterIncrement(*id, "state-gen").ok());

  // Crash + re-provision the same code: the counter is keyed by the
  // enclave *measurement*, so continuity survives the enclave instance.
  ASSERT_TRUE(platform.KillEnclave(*id).ok());
  auto id2 = platform.CreateEnclave(code, 1 << 20);
  ASSERT_TRUE(id2.ok());
  auto read = platform.CounterRead(*id2, "state-gen");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, 2u);
  auto next = platform.CounterIncrement(*id2, "state-gen");
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 3u);
}

TEST(CounterTest, DurableStoreCarriesCountersAcrossPlatformRestart) {
  auto store_or = storage::LsmKvStore::Open(storage::LsmOptions{});
  ASSERT_TRUE(store_or.ok());
  std::shared_ptr<storage::KvStore> store = std::move(*store_or);
  auto code = std::make_shared<EchoEnclave>();

  SimClock clock;
  {
    EnclavePlatform platform(TeeCostModel{}, &clock, 7719003);
    platform.AttachCounterStore(store);
    auto id = platform.CreateEnclave(code, 1 << 20);
    ASSERT_TRUE(id.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(platform.CounterIncrement(*id, "state-gen").ok());
    }
  }

  // Same machine reboots (same seed), same durable counter store.
  EnclavePlatform restarted(TeeCostModel{}, &clock, 7719003);
  restarted.AttachCounterStore(store);
  auto id = restarted.CreateEnclave(code, 1 << 20);
  ASSERT_TRUE(id.ok());
  auto read = restarted.CounterRead(*id, "state-gen");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, 3u);
}

TEST(CounterTest, SnapshotRestoredCounterStoreIsDetectedAsRollback) {
  metrics::Counter* detected =
      metrics::GetCounter("tee.counter.rollback_detected.count");
  const uint64_t detected_before = detected->Value();
  auto code = std::make_shared<EchoEnclave>();
  SimClock clock;
  {
    auto store_or = storage::LsmKvStore::Open(storage::LsmOptions{});
    ASSERT_TRUE(store_or.ok());
    std::shared_ptr<storage::KvStore> store = std::move(*store_or);
    EnclavePlatform platform(TeeCostModel{}, &clock, 7719004);
    platform.AttachCounterStore(store);
    auto id = platform.CreateEnclave(code, 1 << 20);
    ASSERT_TRUE(id.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(platform.CounterIncrement(*id, "state-gen").ok());
    }
  }

  // The host restarts the machine from a snapshot taken before any
  // increment: the durable counter store is empty, but the counter NVRAM
  // high-water mark remembers 3 — the load must fail loudly, not hand the
  // enclave a rolled-back counter.
  auto stale_or = storage::LsmKvStore::Open(storage::LsmOptions{});
  ASSERT_TRUE(stale_or.ok());
  EnclavePlatform restarted(TeeCostModel{}, &clock, 7719004);
  restarted.AttachCounterStore(std::move(*stale_or));
  auto id = restarted.CreateEnclave(code, 1 << 20);
  ASSERT_TRUE(id.ok());
  auto read = restarted.CounterRead(*id, "state-gen");
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsStaleState()) << read.status().ToString();
  EXPECT_GT(detected->Value(), detected_before);

  // Increments are refused too: nothing may build on rolled-back state.
  EXPECT_TRUE(
      restarted.CounterIncrement(*id, "state-gen").status().IsStaleState());
}

TEST(CounterTest, InjectedRollbackFaultIsDetected) {
  auto store_or = storage::LsmKvStore::Open(storage::LsmOptions{});
  ASSERT_TRUE(store_or.ok());
  std::shared_ptr<storage::KvStore> store = std::move(*store_or);
  auto code = std::make_shared<EchoEnclave>();
  SimClock clock;
  {
    EnclavePlatform platform(TeeCostModel{}, &clock, 7719005);
    platform.AttachCounterStore(store);
    auto id = platform.CreateEnclave(code, 1 << 20);
    ASSERT_TRUE(id.ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(platform.CounterIncrement(*id, "state-gen").ok());
    }
  }

  // Restart with the real store, but the fault site rewinds the durable
  // value by 2 increments on load (arg = increments to undo).
  fault::FaultPlan plan(0xC0117E5);
  fault::Trigger rollback;
  rollback.one_shot = true;
  rollback.arg = 2;
  plan.Arm("fault.tee.counter.rollback", rollback);
  EnclavePlatform restarted(TeeCostModel{}, &clock, 7719005);
  restarted.AttachCounterStore(store);
  auto id = restarted.CreateEnclave(code, 1 << 20);
  ASSERT_TRUE(id.ok());
  auto read = restarted.CounterRead(*id, "state-gen");
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsStaleState()) << read.status().ToString();

  // The fault disarmed after firing: the next load sees the true durable
  // value again and recovers.
  auto retry = restarted.CounterRead(*id, "state-gen");
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(*retry, 4u);
}

TEST(CounterTest, PersistFaultLeavesCounterUnchangedUntilRetry) {
  auto store_or = storage::LsmKvStore::Open(storage::LsmOptions{});
  ASSERT_TRUE(store_or.ok());
  std::shared_ptr<storage::KvStore> store = std::move(*store_or);
  SimClock clock;
  EnclavePlatform platform(TeeCostModel{}, &clock, 7719006);
  platform.AttachCounterStore(store);
  auto id = platform.CreateEnclave(std::make_shared<EchoEnclave>(), 1 << 20);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(platform.CounterIncrement(*id, "state-gen").ok());

  {
    fault::FaultPlan plan(0xC0117E6);
    fault::Trigger once;
    once.one_shot = true;
    plan.Arm("fault.tee.counter.persist", once);
    auto failed = platform.CounterIncrement(*id, "state-gen");
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  }

  // The failed increment must not have moved the counter (increment-then-
  // seal: nothing is exposed before the durable write lands).
  auto read = platform.CounterRead(*id, "state-gen");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, 1u);

  // A retried increment lands durably and counts as the recovery.
  metrics::Counter* recovered =
      metrics::GetCounter("fault.tee.counter.persist.recovered");
  const uint64_t recovered_before = recovered->Value();
  auto retried = platform.CounterIncrement(*id, "state-gen");
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(*retried, 2u);
  EXPECT_GT(recovered->Value(), recovered_before);
}

TEST(CounterTest, EnclaveContextExposesCounters) {
  // fn 6 increments "ctx-family" from inside the enclave and returns the
  // new value as a decimal string.
  class CountingEnclave : public Enclave {
   public:
    std::string CodeIdentity() const override { return "counting-enclave-v1"; }
    Result<Bytes> HandleEcall(uint64_t fn, ByteView input,
                              EnclaveContext* ctx) override {
      (void)input;
      if (fn != 6) return Status::InvalidArgument("unknown fn");
      CONFIDE_ASSIGN_OR_RETURN(uint64_t value,
                               ctx->CounterIncrement("ctx-family"));
      return ToBytes(AsByteView(std::to_string(value)));
    }
  };
  SimClock clock;
  EnclavePlatform platform(TeeCostModel{}, &clock, 7719007);
  auto id = platform.CreateEnclave(std::make_shared<CountingEnclave>(), 1 << 20);
  ASSERT_TRUE(id.ok());
  auto first = platform.Ecall(*id, 6, ByteView{});
  auto second = platform.Ecall(*id, 6, ByteView{});
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(std::string(first->begin(), first->end()), "1");
  EXPECT_EQ(std::string(second->begin(), second->end()), "2");
}

}  // namespace
}  // namespace confide::tee
