#include <gtest/gtest.h>

#include <filesystem>

#include "chain/checkpoint.h"
#include "chain/executor.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "chain/network.h"
#include "chain/node.h"
#include "chain/pbft.h"
#include "chain/state.h"
#include "chain/sync.h"
#include "chain/types.h"
#include "common/endian.h"
#include "crypto/drbg.h"
#include "serialize/rlp.h"
#include "storage/lsm_store.h"

namespace confide::chain {
namespace {

std::shared_ptr<storage::KvStore> MakeKv() {
  auto store = storage::LsmKvStore::Open(storage::LsmOptions{});
  return std::shared_ptr<storage::KvStore>(std::move(*store));
}

Transaction MakeSignedTx(crypto::Drbg* rng, const Address& contract,
                         const std::string& entry, Bytes input,
                         crypto::KeyPair* out_kp = nullptr) {
  crypto::KeyPair kp = crypto::GenerateKeyPair(rng);
  Transaction tx;
  tx.type = TxType::kPublic;
  tx.sender = kp.pub;
  tx.contract = contract;
  tx.entry = entry;
  tx.input = std::move(input);
  tx.nonce = 1;
  tx.signature = *crypto::EcdsaSign(kp.priv, tx.SigningHash());
  if (out_kp != nullptr) *out_kp = kp;
  return tx;
}

/// Engine that records keys: "set:<k>=<v>" writes state; "fail" traps;
/// "bump" increments a counter slot on the contract named by tx.input —
/// a stand-in for a nested call writing a contract outside the tx's own
/// conflict group.
class ScriptEngine : public ExecutionEngine {
 public:
  using ExecutionEngine::Execute;

  Result<bool> PreVerify(const Transaction& tx) override {
    return crypto::EcdsaVerify(tx.sender, tx.SigningHash(), tx.signature);
  }

  Result<Receipt> Execute(const Transaction& tx, StateDb* state,
                          TxTouchSet* touch) override {
    ++executed;
    Receipt receipt;
    receipt.tx_hash = tx.Hash();
    if (tx.entry == "fail") {
      state->Put(tx.contract, AsByteView("poison"), ToBytes(std::string_view("x")));
      return Status::VmTrap("scripted failure");
    }
    if (tx.entry == "bump") {
      Address target = NamedAddress(ToString(tx.input));
      uint64_t value = 0;
      auto current = state->Get(target, AsByteView("n"));
      if (current.ok() && current->size() == 8) value = LoadBe64(current->data());
      Bytes next(8);
      StoreBe64(next.data(), value + 1);
      state->Put(target, AsByteView("n"), next);
      if (touch != nullptr) {
        touch->read_keys.push_back(LoadBe64(target.data()));
        touch->written_keys.push_back(LoadBe64(target.data()));
      }
      receipt.success = true;
      return receipt;
    }
    state->Put(tx.contract, tx.input, ToBytes(std::string_view("written")));
    if (touch != nullptr) {
      touch->written_keys.push_back(LoadBe64(tx.contract.data()));
    }
    receipt.success = true;
    receipt.output = ToBytes(std::string_view("ok"));
    return receipt;
  }

  uint64_t ConflictKey(const Transaction& tx) override {
    return LoadBe64(tx.contract.data());
  }

  std::atomic<int> executed{0};
};

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

TEST(ChainTypesTest, PublicTxSerializationRoundTrip) {
  crypto::Drbg rng(1);
  Transaction tx = MakeSignedTx(&rng, NamedAddress("bank"), "transfer",
                                ToBytes(std::string_view("args")));
  auto back = Transaction::Deserialize(tx.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->entry, "transfer");
  EXPECT_EQ(back->contract, tx.contract);
  EXPECT_EQ(back->signature, tx.signature);
  EXPECT_EQ(back->Hash(), tx.Hash());
}

TEST(ChainTypesTest, ConfidentialTxSerializationRoundTrip) {
  Transaction tx;
  tx.type = TxType::kConfidential;
  tx.envelope = crypto::Drbg(2).Generate(200);
  auto back = Transaction::Deserialize(tx.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->type, TxType::kConfidential);
  EXPECT_EQ(back->envelope, tx.envelope);
}

TEST(ChainTypesTest, SigningHashExcludesSignature) {
  crypto::Drbg rng(3);
  Transaction tx = MakeSignedTx(&rng, NamedAddress("c"), "m", Bytes{});
  crypto::Hash256 h1 = tx.SigningHash();
  crypto::Hash256 wire1 = tx.Hash();
  tx.signature[0] ^= 0xff;
  EXPECT_EQ(tx.SigningHash(), h1);   // signing hash unchanged
  EXPECT_NE(tx.Hash(), wire1);       // wire hash covers the signature
}

TEST(ChainTypesTest, ReceiptRoundTrip) {
  Receipt receipt;
  receipt.tx_hash = crypto::Sha256::Digest(AsByteView("tx"));
  receipt.success = true;
  receipt.output = ToBytes(std::string_view("output"));
  receipt.logs = {ToBytes(std::string_view("log1")), ToBytes(std::string_view("log2"))};
  receipt.gas_used = 12345;
  auto back = Receipt::Deserialize(receipt.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->tx_hash, receipt.tx_hash);
  EXPECT_TRUE(back->success);
  EXPECT_EQ(back->logs.size(), 2u);
  EXPECT_EQ(back->gas_used, 12345u);
}

TEST(ChainTypesTest, BlockRoundTrip) {
  crypto::Drbg rng(4);
  Block block;
  block.header.height = 7;
  block.header.parent_hash = crypto::Sha256::Digest(AsByteView("parent"));
  block.header.timestamp_ns = 999;
  block.transactions.push_back(
      MakeSignedTx(&rng, NamedAddress("a"), "m1", ToBytes(std::string_view("x"))));
  Transaction conf;
  conf.type = TxType::kConfidential;
  conf.envelope = rng.Generate(64);
  block.transactions.push_back(conf);

  auto back = Block::Deserialize(block.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->header.height, 7u);
  EXPECT_EQ(back->transactions.size(), 2u);
  EXPECT_EQ(back->transactions[1].type, TxType::kConfidential);
  EXPECT_EQ(back->header.Hash(), block.header.Hash());
}

TEST(ChainTypesTest, NamedAddressesAreStableAndDistinct) {
  EXPECT_EQ(NamedAddress("gateway"), NamedAddress("gateway"));
  EXPECT_NE(NamedAddress("gateway"), NamedAddress("manager"));
}

TEST(ChainTypesTest, TransactionRefMatchesOwningDecode) {
  crypto::Drbg rng(5);
  Transaction tx = MakeSignedTx(&rng, NamedAddress("bank"), "transfer",
                                rng.Generate(100));
  const Bytes wire = tx.Serialize();

  auto ref = TransactionRef::Decode(wire);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  EXPECT_EQ(ref->SenderKey(), tx.sender);
  EXPECT_EQ(ref->ContractAddress(), tx.contract);
  EXPECT_EQ(ref->EntryString(), tx.entry);
  EXPECT_EQ(ToBytes(ref->input), tx.input);
  EXPECT_EQ(ref->nonce, tx.nonce);
  EXPECT_EQ(ref->SignatureValue(), tx.signature);
  EXPECT_EQ(ref->SigningHash(), tx.SigningHash());

  // Views alias the wire buffer — no field was copied.
  EXPECT_GE(ref->input.data(), wire.data());
  EXPECT_LE(ref->input.data() + ref->input.size(), wire.data() + wire.size());

  Transaction owned = ref->ToOwned();
  EXPECT_EQ(owned.Serialize(), wire);
  EXPECT_EQ(owned.Hash(), tx.Hash());
}

TEST(ChainTypesTest, ReceiptRefMatchesOwningDecode) {
  crypto::Drbg rng(6);
  Receipt receipt;
  receipt.tx_hash = crypto::Sha256::Digest(AsByteView("tx"));
  receipt.success = false;
  receipt.status_message = "trap: divide by zero";
  receipt.output = rng.Generate(64);
  receipt.logs = {rng.Generate(16), rng.Generate(24)};
  receipt.gas_used = 777;
  const Bytes wire = receipt.Serialize();

  auto ref = ReceiptRef::Decode(wire);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  EXPECT_EQ(ref->success, receipt.success);
  EXPECT_EQ(ref->log_count, receipt.logs.size());
  EXPECT_EQ(ref->gas_used, receipt.gas_used);
  EXPECT_GE(ref->output.data(), wire.data());
  EXPECT_LE(ref->output.data() + ref->output.size(),
            wire.data() + wire.size());

  Receipt owned = ref->ToOwned();
  EXPECT_EQ(owned.status_message, receipt.status_message);
  EXPECT_EQ(owned.output, receipt.output);
  EXPECT_EQ(owned.logs, receipt.logs);
  EXPECT_EQ(owned.Serialize(), wire);
}

TEST(ChainTypesTest, MalformedWiresFailCleanly) {
  crypto::Drbg rng(7);
  Transaction tx = MakeSignedTx(&rng, NamedAddress("bank"), "m",
                                rng.Generate(32));
  const Bytes tx_wire = tx.Serialize();

  // Truncations at every boundary must error, never crash.
  for (size_t len = 0; len < tx_wire.size(); ++len) {
    ByteView cut(tx_wire.data(), len);
    EXPECT_FALSE(Transaction::Deserialize(cut).ok()) << "len " << len;
    EXPECT_FALSE(TransactionRef::Decode(cut).ok()) << "len " << len;
  }

  // A confidential tx whose envelope slot holds a nested list.
  serialize::RlpWriter conf;
  size_t list = conf.BeginList();
  conf.WriteU64(uint64_t(TxType::kConfidential));
  size_t bogus = conf.BeginList();
  conf.WriteString("not-bytes");
  conf.EndList(bogus);
  conf.EndList(list);
  EXPECT_FALSE(Transaction::Deserialize(std::move(conf).Take()).ok());

  // A receipt whose logs slot holds bytes instead of a list.
  serialize::RlpWriter rec;
  list = rec.BeginList();
  rec.WriteBytes(Bytes(32, 0xAB));  // tx_hash
  rec.WriteU64(1);                  // success
  rec.WriteString("");              // status_message
  rec.WriteString("out");           // output
  rec.WriteString("not-a-list");    // logs: wrong kind
  rec.WriteU64(9);                  // gas_used
  rec.EndList(list);
  const Bytes bad_receipt = std::move(rec).Take();
  EXPECT_FALSE(Receipt::Deserialize(bad_receipt).ok());
  EXPECT_FALSE(ReceiptRef::Decode(bad_receipt).ok());
}

// ---------------------------------------------------------------------------
// State
// ---------------------------------------------------------------------------

TEST(StateDbTest, OverlayReadsThroughAndCommitsAtomically) {
  CommitStateDb state(MakeKv());
  Address c = NamedAddress("c");
  state.Put(c, AsByteView("k1"), ToBytes(std::string_view("v1")));
  EXPECT_EQ(state.PendingWrites(), 1u);
  EXPECT_EQ(ToString(*state.Get(c, AsByteView("k1"))), "v1");  // read-own-write
  ASSERT_TRUE(state.Commit().ok());
  EXPECT_EQ(state.PendingWrites(), 0u);
  EXPECT_EQ(ToString(*state.Get(c, AsByteView("k1"))), "v1");
}

TEST(StateDbTest, DiscardDropsWrites) {
  CommitStateDb state(MakeKv());
  Address c = NamedAddress("c");
  state.Put(c, AsByteView("k"), ToBytes(std::string_view("v")));
  state.Discard();
  EXPECT_TRUE(state.Get(c, AsByteView("k")).status().IsNotFound());
}

TEST(StateDbTest, ContractsAreNamespaced) {
  CommitStateDb state(MakeKv());
  state.Put(NamedAddress("a"), AsByteView("k"), ToBytes(std::string_view("1")));
  state.Put(NamedAddress("b"), AsByteView("k"), ToBytes(std::string_view("2")));
  ASSERT_TRUE(state.Commit().ok());
  EXPECT_EQ(ToString(*state.Get(NamedAddress("a"), AsByteView("k"))), "1");
  EXPECT_EQ(ToString(*state.Get(NamedAddress("b"), AsByteView("k"))), "2");
}

TEST(StateDbTest, StateRootChangesWithCommits) {
  CommitStateDb state(MakeKv());
  crypto::Hash256 r0 = state.StateRoot();
  state.Put(NamedAddress("a"), AsByteView("k"), ToBytes(std::string_view("v")));
  ASSERT_TRUE(state.Commit().ok());
  crypto::Hash256 r1 = state.StateRoot();
  EXPECT_NE(r0, r1);
  // Identical sequence on another instance yields the same root
  // (replica determinism).
  CommitStateDb other(MakeKv());
  other.Put(NamedAddress("a"), AsByteView("k"), ToBytes(std::string_view("v")));
  ASSERT_TRUE(other.Commit().ok());
  EXPECT_EQ(other.StateRoot(), r1);
}

TEST(StateDbTest, OverlayStateDbMergesOnCommitOnly) {
  CommitStateDb base(MakeKv());
  Address c = NamedAddress("c");
  base.Put(c, AsByteView("base"), ToBytes(std::string_view("b")));

  OverlayStateDb overlay(&base);
  overlay.Put(c, AsByteView("new"), ToBytes(std::string_view("n")));
  EXPECT_EQ(ToString(*overlay.Get(c, AsByteView("base"))), "b");  // parent visible
  EXPECT_TRUE(base.Get(c, AsByteView("new")).status().IsNotFound());
  ASSERT_TRUE(overlay.Commit().ok());
  EXPECT_EQ(ToString(*base.Get(c, AsByteView("new"))), "n");

  OverlayStateDb discarded(&base);
  discarded.Put(c, AsByteView("gone"), ToBytes(std::string_view("g")));
  discarded.Discard();
  ASSERT_TRUE(discarded.Commit().ok());
  EXPECT_TRUE(base.Get(c, AsByteView("gone")).status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Network + PBFT
// ---------------------------------------------------------------------------

TEST(NetworkTest, IntraZoneFasterThanInterZone) {
  NetworkSim net = NetworkSim::TwoZone(6);
  // Nodes 0,1 in shanghai; 2..5 in beijing (1:2 split).
  uint64_t intra = net.TransferNs(2, 3, 1000);
  uint64_t inter = net.TransferNs(0, 3, 1000);
  EXPECT_LT(intra, inter);
  EXPECT_GE(inter, 30'000'000u);
}

TEST(NetworkTest, TransferScalesWithPayload) {
  NetworkSim net = NetworkSim::SingleZone(2);
  EXPECT_LT(net.TransferNs(0, 1, 100), net.TransferNs(0, 1, 10'000'000));
  EXPECT_EQ(net.TransferNs(0, 0, 100), 0u);
}

TEST(NetworkTest, OutOfRangeNodeIdsReturnSentinelsNotUb) {
  NetworkSim net = NetworkSim::SingleZone(3);
  // Past-the-end and far-out ids: documented sentinels, no OOB indexing.
  EXPECT_EQ(net.ZoneOf(3), NetworkSim::kInvalidZone);
  EXPECT_EQ(net.ZoneOf(UINT32_MAX), NetworkSim::kInvalidZone);
  EXPECT_EQ(net.TransferNs(0, 3, 1000), 0u);
  EXPECT_EQ(net.TransferNs(7, 0, 1000), 0u);
  EXPECT_EQ(net.LatencyNs(0, 99), 0u);
  EXPECT_EQ(net.SerializationNs(99, 0, 1000), 0u);
  EXPECT_EQ(net.DropRate(99, 99), 0.0);
  EXPECT_EQ(net.JitterNs(0, 99), 0u);
  EXPECT_FALSE(net.Reachable(0, 3));
  EXPECT_FALSE(net.Reachable(3, 0));
  EXPECT_TRUE(net.Reachable(0, 2));
  // Invalid ids are rejected by the mutators too.
  EXPECT_FALSE(net.SetPartition(3, 1).ok());
  EXPECT_FALSE(net.SetLink(0, 5, LinkModel{}).ok());
}

TEST(PbftTest, AllReplicasCommitInSingleZone) {
  NetworkSim net = NetworkSim::SingleZone(4);
  PbftRoundResult result = SimulatePbftRound(net, 0, 4096);
  EXPECT_GT(result.quorum_commit_ns, 0u);
  for (uint64_t t : result.commit_time_ns) EXPECT_GT(t, 0u);
  // 3 phases over ~0.2ms links: latency in the low-millisecond range.
  EXPECT_LT(result.quorum_commit_ns, 10'000'000u);
}

TEST(PbftTest, TwoZoneRoundIsSlower) {
  NetworkSim single = NetworkSim::SingleZone(9);
  NetworkSim dual = NetworkSim::TwoZone(9);
  uint64_t t_single = SimulatePbftRound(single, 0, 4096).quorum_commit_ns;
  uint64_t t_dual = SimulatePbftRound(dual, 0, 4096).quorum_commit_ns;
  EXPECT_GT(t_dual, t_single * 5);  // WAN round trips dominate
}

TEST(PbftTest, MessageComplexityIsQuadratic) {
  NetworkSim net4 = NetworkSim::SingleZone(4);
  NetworkSim net8 = NetworkSim::SingleZone(8);
  uint64_t m4 = SimulatePbftRound(net4, 0, 1024).messages_sent;
  uint64_t m8 = SimulatePbftRound(net8, 0, 1024).messages_sent;
  EXPECT_GT(m8, m4 * 3);  // O(n^2) growth
}

TEST(PbftTest, LatencyGrowsModestlyWithClusterSize) {
  uint64_t t4 = SimulatePbftRound(NetworkSim::SingleZone(4), 0, 4096).quorum_commit_ns;
  uint64_t t20 = SimulatePbftRound(NetworkSim::SingleZone(20), 0, 4096).quorum_commit_ns;
  EXPECT_GT(t20, t4);
  EXPECT_LT(t20, t4 * 20);  // sub-linear in n for the latency (not messages)
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

TEST(ExecutorTest, ExecutesAllAndCollectsReceiptsInOrder) {
  crypto::Drbg rng(5);
  ScriptEngine engine;
  EngineSet engines{&engine, &engine};
  CommitStateDb state(MakeKv());
  std::vector<Transaction> txs;
  for (int i = 0; i < 10; ++i) {
    txs.push_back(MakeSignedTx(&rng, NamedAddress("c" + std::to_string(i % 3)),
                               "write", ToBytes("key-" + std::to_string(i))));
  }
  BlockExecutor executor(ExecutorOptions{4});
  auto receipts = executor.ExecuteBlock(txs, engines, &state);
  ASSERT_TRUE(receipts.ok()) << receipts.status().ToString();
  ASSERT_EQ(receipts->size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE((*receipts)[i].success);
    EXPECT_EQ((*receipts)[i].tx_hash, txs[i].Hash());
  }
  EXPECT_EQ(engine.executed.load(), 10);
  ASSERT_TRUE(state.Commit().ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(state.Get(NamedAddress("c" + std::to_string(i % 3)),
                          ToBytes("key-" + std::to_string(i)))
                    .ok());
  }
}

TEST(ExecutorTest, FailedTxDiscardsOnlyItsWrites) {
  crypto::Drbg rng(6);
  ScriptEngine engine;
  EngineSet engines{&engine, &engine};
  CommitStateDb state(MakeKv());
  std::vector<Transaction> txs;
  txs.push_back(MakeSignedTx(&rng, NamedAddress("c"), "write",
                             ToBytes(std::string_view("good1"))));
  txs.push_back(MakeSignedTx(&rng, NamedAddress("c"), "fail", Bytes{}));
  txs.push_back(MakeSignedTx(&rng, NamedAddress("c"), "write",
                             ToBytes(std::string_view("good2"))));
  BlockExecutor executor(ExecutorOptions{1});
  auto receipts = executor.ExecuteBlock(txs, engines, &state);
  ASSERT_TRUE(receipts.ok());
  EXPECT_TRUE((*receipts)[0].success);
  EXPECT_FALSE((*receipts)[1].success);
  EXPECT_TRUE((*receipts)[2].success);
  ASSERT_TRUE(state.Commit().ok());
  EXPECT_TRUE(state.Get(NamedAddress("c"), AsByteView("good1")).ok());
  EXPECT_TRUE(state.Get(NamedAddress("c"), AsByteView("good2")).ok());
  EXPECT_TRUE(state.Get(NamedAddress("c"), AsByteView("poison")).status().IsNotFound());
}

TEST(ExecutorTest, ParallelAndSerialProduceSameState) {
  crypto::Drbg rng(7);
  std::vector<Transaction> txs;
  for (int i = 0; i < 40; ++i) {
    txs.push_back(MakeSignedTx(&rng, NamedAddress("c" + std::to_string(i % 5)),
                               "write", ToBytes("k" + std::to_string(i))));
  }
  auto run = [&](uint32_t parallelism) {
    ScriptEngine engine;
    EngineSet engines{&engine, &engine};
    CommitStateDb state(MakeKv());
    BlockExecutor executor(ExecutorOptions{parallelism});
    EXPECT_TRUE(executor.ExecuteBlock(txs, engines, &state).ok());
    EXPECT_TRUE(state.Commit().ok());
    return state.StateRoot();
  };
  EXPECT_EQ(run(1), run(6));
}

TEST(ExecutorTest, CrossGroupSharedWriteReExecutesSerially) {
  // Two txs target distinct contracts (distinct conflict groups) but both
  // "bump" the same shared contract's counter — the nested-write overlap
  // the envelope-level conflict key cannot see. A last-writer-wins merge
  // loses one increment; overlap detection must rerun the groups serially
  // so both survive.
  crypto::Drbg rng(11);
  std::vector<Transaction> txs;
  txs.push_back(MakeSignedTx(&rng, NamedAddress("left"), "bump", ToBytes("shared")));
  txs.push_back(MakeSignedTx(&rng, NamedAddress("right"), "bump", ToBytes("shared")));

  ScriptEngine engine;
  EngineSet engines{&engine, &engine};
  CommitStateDb state(MakeKv());
  BlockExecutor executor(ExecutorOptions{/*parallelism=*/4});
  auto receipts = executor.ExecuteBlock(txs, engines, &state);
  ASSERT_TRUE(receipts.ok());
  EXPECT_TRUE((*receipts)[0].success);
  EXPECT_TRUE((*receipts)[1].success);

  auto value = state.Get(NamedAddress("shared"), AsByteView("n"));
  ASSERT_TRUE(value.ok());
  ASSERT_EQ(value->size(), 8u);
  EXPECT_EQ(LoadBe64(value->data()), 2u);
  // Both bumps executed once in parallel, then both groups serially.
  EXPECT_EQ(engine.executed.load(), 4);
}

// ---------------------------------------------------------------------------
// Node
// ---------------------------------------------------------------------------

class NodeTest : public ::testing::Test {
 protected:
  NodeTest()
      : engines_{&engine_, &engine_},
        node_ptr_(std::move(Node::Create(NodeOptions{}, engines_).value())),
        node_(*node_ptr_) {}

  crypto::Drbg rng_{8};
  ScriptEngine engine_;
  EngineSet engines_;
  std::unique_ptr<Node> node_ptr_;  // a volatile store never fails to open
  Node& node_;
};

TEST_F(NodeTest, SubmitVerifyProposeApply) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(node_
                    .SubmitTransaction(MakeSignedTx(&rng_, NamedAddress("c"), "write",
                                                    ToBytes("k" + std::to_string(i))))
                    .ok());
  }
  EXPECT_EQ(node_.UnverifiedPoolSize(), 5u);
  auto verified = node_.PreVerify();
  ASSERT_TRUE(verified.ok());
  EXPECT_EQ(*verified, 5u);
  EXPECT_EQ(node_.VerifiedPoolSize(), 5u);

  auto block = node_.ProposeBlock();
  ASSERT_TRUE(block.ok());
  EXPECT_GT(block->transactions.size(), 0u);
  auto receipts = node_.ApplyBlock(*block);
  ASSERT_TRUE(receipts.ok()) << receipts.status().ToString();
  EXPECT_EQ(receipts->size(), block->transactions.size());
  EXPECT_EQ(node_.Height(), 1u);

  // Receipts retrievable by hash.
  auto receipt = node_.GetReceipt(block->transactions[0].Hash());
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(receipt->success);
}

TEST_F(NodeTest, InvalidSignatureDiscardedInPreVerify) {
  Transaction bad = MakeSignedTx(&rng_, NamedAddress("c"), "write",
                                 ToBytes(std::string_view("k")));
  bad.signature[5] ^= 0x1;
  ASSERT_TRUE(node_.SubmitTransaction(bad).ok());
  auto verified = node_.PreVerify();
  ASSERT_TRUE(verified.ok());
  EXPECT_EQ(*verified, 0u);
  EXPECT_EQ(node_.VerifiedPoolSize(), 0u);
}

TEST_F(NodeTest, BlockSizeLimitSplitsBlocks) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(node_
                    .SubmitTransaction(MakeSignedTx(&rng_, NamedAddress("c"), "write",
                                                    Bytes(200, uint8_t(i))))
                    .ok());
  }
  ASSERT_TRUE(node_.PreVerify().ok());
  auto block = node_.ProposeBlock();
  ASSERT_TRUE(block.ok());
  // ~300 bytes/tx against the 4KB default: blocks hold ~13 txs.
  EXPECT_LT(block->transactions.size(), 50u);
  EXPECT_GT(node_.VerifiedPoolSize(), 0u);
  ASSERT_TRUE(node_.ApplyBlock(*block).ok());

  int blocks = 1;
  while (node_.VerifiedPoolSize() > 0) {
    auto next = node_.ProposeBlock();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(node_.ApplyBlock(*next).ok());
    ++blocks;
  }
  EXPECT_GT(blocks, 2);
  EXPECT_EQ(node_.Height(), uint64_t(blocks));
}

TEST_F(NodeTest, ApplyBlockRejectsWrongHeightOrParent) {
  ASSERT_TRUE(node_
                  .SubmitTransaction(MakeSignedTx(&rng_, NamedAddress("c"), "write",
                                                  ToBytes(std::string_view("k"))))
                  .ok());
  ASSERT_TRUE(node_.PreVerify().ok());
  auto block = node_.ProposeBlock();
  ASSERT_TRUE(block.ok());
  Block wrong_height = *block;
  wrong_height.header.height = 5;
  EXPECT_FALSE(node_.ApplyBlock(wrong_height).ok());
  ASSERT_TRUE(node_.ApplyBlock(*block).ok());
  // Re-applying the same block (stale) must fail — rollback protection.
  EXPECT_FALSE(node_.ApplyBlock(*block).ok());
}

TEST_F(NodeTest, SpvProofRoundTrip) {
  std::vector<Transaction> txs;
  for (int i = 0; i < 4; ++i) {
    txs.push_back(MakeSignedTx(&rng_, NamedAddress("c"), "write",
                               ToBytes("k" + std::to_string(i))));
    ASSERT_TRUE(node_.SubmitTransaction(txs.back()).ok());
  }
  ASSERT_TRUE(node_.PreVerify().ok());
  auto block = node_.ProposeBlock();
  ASSERT_TRUE(block.ok());
  ASSERT_TRUE(node_.ApplyBlock(*block).ok());

  auto proof = node_.ProveTransaction(txs[2].Hash());
  ASSERT_TRUE(proof.ok()) << proof.status().ToString();
  EXPECT_TRUE(Node::VerifyTxProof(*proof));

  // Tampered proof fails.
  TxProof bad = *proof;
  bad.tx_wire[0] ^= 0xff;
  EXPECT_FALSE(Node::VerifyTxProof(bad));

  // Unknown tx has no proof.
  EXPECT_FALSE(node_.ProveTransaction(crypto::Sha256::Digest(AsByteView("no"))).ok());
}


// ---------------------------------------------------------------------------
// Pipelined block lifecycle
// ---------------------------------------------------------------------------

TEST(PipelineTest, PipelinedMatchesSerialLifecycle) {
  // Two nodes, identical submissions; one runs the serial
  // verify/propose/apply loop, the other the three-stage pipeline. The
  // resulting chains must be bit-identical.
  ScriptEngine serial_engine, piped_engine;
  EngineSet serial_engines{&serial_engine, &serial_engine};
  EngineSet piped_engines{&piped_engine, &piped_engine};

  NodeOptions serial_options;
  serial_options.block_max_bytes = 512;  // force several blocks
  NodeOptions piped_options = serial_options;
  piped_options.parallelism = 2;
  piped_options.pipeline_depth = 3;

  auto serial_node = Node::Create(serial_options, serial_engines);
  auto piped_node = Node::Create(piped_options, piped_engines);
  ASSERT_TRUE(serial_node.ok() && piped_node.ok());

  crypto::Drbg rng_a(77), rng_b(77);  // identical tx streams
  for (int i = 0; i < 24; ++i) {
    std::string target = "ctr-" + std::to_string(i % 5);
    Transaction tx_a = MakeSignedTx(&rng_a, NamedAddress("c"), "bump", ToBytes(target));
    Transaction tx_b = MakeSignedTx(&rng_b, NamedAddress("c"), "bump", ToBytes(target));
    ASSERT_EQ(tx_a.Hash(), tx_b.Hash());
    ASSERT_TRUE((*serial_node)->SubmitTransaction(tx_a).ok());
    ASSERT_TRUE((*piped_node)->SubmitTransaction(tx_b).ok());
  }

  std::vector<Receipt> serial_receipts;
  ASSERT_TRUE((*serial_node)->PreVerify().ok());
  while ((*serial_node)->VerifiedPoolSize() > 0) {
    auto block = (*serial_node)->ProposeBlock();
    ASSERT_TRUE(block.ok());
    auto receipts = (*serial_node)->ApplyBlock(*block);
    ASSERT_TRUE(receipts.ok()) << receipts.status().ToString();
    for (Receipt& r : *receipts) serial_receipts.push_back(std::move(r));
  }

  auto piped_receipts = (*piped_node)->RunPipelined();
  ASSERT_TRUE(piped_receipts.ok()) << piped_receipts.status().ToString();

  EXPECT_GT((*serial_node)->Height(), 1u);  // several blocks, not one
  EXPECT_EQ((*serial_node)->Height(), (*piped_node)->Height());
  EXPECT_EQ((*serial_node)->state()->StateRoot(),
            (*piped_node)->state()->StateRoot());
  ASSERT_EQ(serial_receipts.size(), piped_receipts->size());
  for (size_t i = 0; i < serial_receipts.size(); ++i) {
    EXPECT_EQ(serial_receipts[i].tx_hash, (*piped_receipts)[i].tx_hash);
    EXPECT_EQ(serial_receipts[i].success, (*piped_receipts)[i].success);
  }
}

TEST(PipelineTest, DepthZeroFallsBackToSerialLoop) {
  ScriptEngine engine;
  EngineSet engines{&engine, &engine};
  NodeOptions options;  // pipeline_depth = 0
  auto node = Node::Create(options, engines);
  ASSERT_TRUE(node.ok());
  crypto::Drbg rng(9);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*node)
                    ->SubmitTransaction(MakeSignedTx(&rng, NamedAddress("c"), "write",
                                                     ToBytes("k" + std::to_string(i))))
                    .ok());
  }
  auto receipts = (*node)->RunPipelined();
  ASSERT_TRUE(receipts.ok());
  EXPECT_EQ(receipts->size(), 3u);
  EXPECT_EQ((*node)->Height(), 1u);
}

TEST(PipelineTest, EmptyPoolReturnsNoReceipts) {
  ScriptEngine engine;
  EngineSet engines{&engine, &engine};
  NodeOptions options;
  options.pipeline_depth = 2;
  options.parallelism = 2;
  auto node = Node::Create(options, engines);
  ASSERT_TRUE(node.ok());
  auto receipts = (*node)->RunPipelined();
  ASSERT_TRUE(receipts.ok());
  EXPECT_TRUE(receipts->empty());
  EXPECT_EQ((*node)->Height(), 0u);
}


// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

CheckpointManifest TestManifest() {
  CheckpointManifest manifest;
  manifest.height = 8;
  manifest.block_hash = crypto::Sha256::Digest(AsByteView("block-7"));
  manifest.state_root = crypto::Sha256::Digest(AsByteView("root-7"));
  manifest.total_entries = 12;
  manifest.total_bytes = 4096;
  manifest.chunk_hashes = {crypto::Sha256::Digest(AsByteView("chunk-0")),
                           crypto::Sha256::Digest(AsByteView("chunk-1"))};
  std::vector<Bytes> leaves;
  for (const crypto::Hash256& h : manifest.chunk_hashes) {
    leaves.push_back(ToBytes(crypto::HashView(h)));
  }
  manifest.chunks_root = crypto::MerkleTree(leaves).Root();
  return manifest;
}

TEST(CheckpointTest, ManifestSerializationRoundTrip) {
  CheckpointManifest manifest = TestManifest();
  auto decoded = CheckpointManifest::Deserialize(manifest.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->height, manifest.height);
  EXPECT_EQ(decoded->block_hash, manifest.block_hash);
  EXPECT_EQ(decoded->state_root, manifest.state_root);
  EXPECT_EQ(decoded->total_entries, manifest.total_entries);
  EXPECT_EQ(decoded->total_bytes, manifest.total_bytes);
  EXPECT_EQ(decoded->chunks_root, manifest.chunks_root);
  EXPECT_EQ(decoded->chunk_hashes, manifest.chunk_hashes);
  EXPECT_EQ(decoded->Digest(), manifest.Digest());
}

TEST(CheckpointTest, QuorumSizeIsTwoFPlusOne) {
  EXPECT_EQ(ValidatorSet::Generate(4, 1).QuorumSize(), 3u);   // f = 1
  EXPECT_EQ(ValidatorSet::Generate(7, 1).QuorumSize(), 5u);   // f = 2
  EXPECT_EQ(ValidatorSet::Generate(10, 1).QuorumSize(), 7u);  // f = 3
}

TEST(CheckpointTest, CertificateRoundTripAndQuorumVerify) {
  ValidatorSet validators = ValidatorSet::Generate(4, 21);
  CheckpointManifest manifest = TestManifest();
  auto certificate = validators.Certify(manifest);
  ASSERT_TRUE(certificate.ok());
  EXPECT_EQ(certificate->votes.size(), validators.QuorumSize());
  EXPECT_TRUE(validators.Verify(manifest, *certificate).ok());

  auto decoded = CheckpointCertificate::Deserialize(certificate->Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(validators.Verify(manifest, *decoded).ok());
}

TEST(CheckpointTest, VerifyRejectsForgedSignature) {
  ValidatorSet validators = ValidatorSet::Generate(4, 22);
  CheckpointManifest manifest = TestManifest();
  auto certificate = validators.Certify(manifest);
  ASSERT_TRUE(certificate.ok());
  certificate->votes.front().second[3] ^= 0x01;
  Status verdict = validators.Verify(manifest, *certificate);
  EXPECT_EQ(verdict.code(), StatusCode::kPermissionDenied);
}

TEST(CheckpointTest, VerifyRejectsTamperedManifest) {
  ValidatorSet validators = ValidatorSet::Generate(4, 23);
  CheckpointManifest manifest = TestManifest();
  auto certificate = validators.Certify(manifest);
  ASSERT_TRUE(certificate.ok());
  manifest.state_root[0] ^= 0x01;  // certificate now signs something else
  Status verdict = validators.Verify(manifest, *certificate);
  EXPECT_EQ(verdict.code(), StatusCode::kPermissionDenied);
}

TEST(CheckpointTest, VerifyRejectsSubQuorumAndDuplicateVotes) {
  ValidatorSet validators = ValidatorSet::Generate(4, 24);
  CheckpointManifest manifest = TestManifest();
  auto certificate = validators.Certify(manifest);
  ASSERT_TRUE(certificate.ok());

  CheckpointCertificate sub_quorum = *certificate;
  sub_quorum.votes.resize(validators.QuorumSize() - 1);
  EXPECT_EQ(validators.Verify(manifest, sub_quorum).code(),
            StatusCode::kPermissionDenied);

  // Padding the quorum with a repeated vote must not count twice.
  CheckpointCertificate duplicated = sub_quorum;
  duplicated.votes.push_back(duplicated.votes.front());
  EXPECT_EQ(validators.Verify(manifest, duplicated).code(),
            StatusCode::kPermissionDenied);
}

namespace {

/// Drives `blocks` single-transaction blocks through the serial lifecycle.
void RunBlocks(Node* node, crypto::Drbg* rng, int blocks,
               std::vector<crypto::Hash256>* tx_hashes = nullptr) {
  for (int b = 0; b < blocks; ++b) {
    Transaction tx =
        MakeSignedTx(rng, NamedAddress("store"), "write",
                     ToBytes("key" + std::to_string(node->Height())));
    if (tx_hashes != nullptr) tx_hashes->push_back(tx.Hash());
    ASSERT_TRUE(node->SubmitTransaction(tx).ok());
    ASSERT_TRUE(node->PreVerify().ok());
    auto block = node->ProposeBlock();
    ASSERT_TRUE(block.ok());
    auto receipts = node->ApplyBlock(*block);
    ASSERT_TRUE(receipts.ok()) << receipts.status().ToString();
  }
}

NodeOptions CheckpointedOptions(const ValidatorSet* validators,
                                uint64_t interval = 2) {
  NodeOptions options;
  options.checkpoint.interval = interval;
  options.checkpoint.chunk_bytes = 256;  // force multi-chunk snapshots
  options.validators = validators;
  return options;
}

}  // namespace

TEST(CheckpointTest, NodeWritesVerifiableCheckpointsAtInterval) {
  ValidatorSet validators = ValidatorSet::Generate(4, 31);
  ScriptEngine engine;
  EngineSet engines{&engine, &engine};
  auto node = Node::Create(CheckpointedOptions(&validators), engines);
  ASSERT_TRUE(node.ok());
  crypto::Drbg rng(31);
  RunBlocks(node->get(), &rng, 5);

  CheckpointManager* manager = (*node)->checkpoints();
  ASSERT_NE(manager, nullptr);
  EXPECT_EQ(manager->LatestHeight(), 4u);

  auto manifest = manager->ManifestAt(4);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->height, 4u);
  EXPECT_GT(manifest->chunk_count(), 1u);
  EXPECT_GT(manifest->total_entries, 0u);
  // A checkpoint at height h covers blocks [0, h): its block hash and
  // state root come from the header of block h-1.
  auto covered = (*node)->blocks()->GetByHeight(3);
  ASSERT_TRUE(covered.ok());
  auto covered_block = Block::Deserialize(*covered);
  ASSERT_TRUE(covered_block.ok());
  EXPECT_EQ(manifest->block_hash, covered_block->header.Hash());
  EXPECT_EQ(manifest->state_root, covered_block->header.state_root);

  auto certificate = manager->CertificateAt(4);
  ASSERT_TRUE(certificate.ok());
  EXPECT_TRUE(validators.Verify(*manifest, *certificate).ok());

  // Every chunk hashes to its manifest entry and parses back to entries.
  uint64_t entries = 0;
  for (size_t i = 0; i < manifest->chunk_count(); ++i) {
    auto chunk = manager->ChunkAt(4, i);
    ASSERT_TRUE(chunk.ok());
    EXPECT_EQ(crypto::Sha256::Digest(*chunk), manifest->chunk_hashes[i]);
    auto parsed = CheckpointManager::ParseChunk(*chunk);
    ASSERT_TRUE(parsed.ok());
    entries += parsed->size();
  }
  EXPECT_EQ(entries, manifest->total_entries);
}

TEST(CheckpointTest, RetentionPrunesOldCheckpoints) {
  ValidatorSet validators = ValidatorSet::Generate(4, 32);
  ScriptEngine engine;
  EngineSet engines{&engine, &engine};
  NodeOptions options = CheckpointedOptions(&validators, /*interval=*/1);
  options.checkpoint.keep = 2;
  auto node = Node::Create(options, engines);
  ASSERT_TRUE(node.ok());
  crypto::Drbg rng(32);
  RunBlocks(node->get(), &rng, 5);

  CheckpointManager* manager = (*node)->checkpoints();
  EXPECT_EQ(manager->LatestHeight(), 5u);
  EXPECT_EQ(manager->RetainedHeights(), (std::vector<uint64_t>{4, 5}));
  EXPECT_TRUE(manager->ManifestAt(5).ok());
  EXPECT_TRUE(manager->ManifestAt(4).ok());
  // Pruned checkpoints are gone — manifest, certificate and chunks.
  EXPECT_TRUE(manager->ManifestAt(3).status().IsNotFound());
  EXPECT_TRUE(manager->CertificateAt(3).status().IsNotFound());
  EXPECT_TRUE(manager->ChunkAt(3, 0).status().IsNotFound());
}

// ---------------------------------------------------------------------------
// State sync
// ---------------------------------------------------------------------------

TEST(SyncTest, FreshNodeCatchesUpViaSnapshotAndReplay) {
  ValidatorSet validators = ValidatorSet::Generate(4, 41);
  ScriptEngine engine_a, engine_b;
  EngineSet engines_a{&engine_a, &engine_a};
  EngineSet engines_b{&engine_b, &engine_b};
  auto provider_node = Node::Create(CheckpointedOptions(&validators), engines_a);
  ASSERT_TRUE(provider_node.ok());
  crypto::Drbg rng(41);
  std::vector<crypto::Hash256> tx_hashes;
  RunBlocks(provider_node->get(), &rng, 5, &tx_hashes);

  auto joiner = Node::Create(CheckpointedOptions(&validators), engines_b);
  ASSERT_TRUE(joiner.ok());

  SyncProvider provider("peer-a", provider_node->get());
  StateSyncClient client(joiner->get(), &validators, SyncOptions{});
  client.AddProvider(&provider);
  auto stats = client.SyncToTip();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  EXPECT_TRUE(stats->snapshot_installed);
  EXPECT_EQ(stats->checkpoint_height, 4u);
  EXPECT_GT(stats->chunks_verified, 0u);
  EXPECT_EQ(stats->chunks_rejected, 0u);
  EXPECT_EQ(stats->blocks_replayed, 1u);  // block 4, past the checkpoint

  EXPECT_EQ((*joiner)->Height(), (*provider_node)->Height());
  EXPECT_EQ((*joiner)->TipHash(), (*provider_node)->TipHash());
  EXPECT_EQ((*joiner)->state()->StateRoot(),
            (*provider_node)->state()->StateRoot());
  // The full receipt set came across (snapshot + replay).
  for (const crypto::Hash256& tx_hash : tx_hashes) {
    auto theirs = (*provider_node)->GetReceipt(tx_hash);
    auto ours = (*joiner)->GetReceipt(tx_hash);
    ASSERT_TRUE(theirs.ok());
    ASSERT_TRUE(ours.ok());
    EXPECT_EQ(ours->Serialize(), theirs->Serialize());
  }

  // The joiner adopted the verified checkpoint and can serve it onward.
  ASSERT_NE((*joiner)->checkpoints(), nullptr);
  EXPECT_EQ((*joiner)->checkpoints()->LatestHeight(), 4u);
  for (size_t i = 0; i < 2; ++i) {
    auto mine = (*joiner)->checkpoints()->ChunkAt(4, i);
    auto theirs = (*provider_node)->checkpoints()->ChunkAt(4, i);
    ASSERT_TRUE(mine.ok());
    ASSERT_TRUE(theirs.ok());
    EXPECT_EQ(*mine, *theirs);
  }

  // A second sync against the same provider is a no-op: the provider
  // checkpoint is now stale relative to us and there is nothing to replay.
  auto again = client.SyncToTip();
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->snapshot_installed);
  EXPECT_EQ(again->blocks_replayed, 0u);
}

TEST(SyncTest, ReplayOnlyWhenProviderHasNoCheckpoint) {
  ValidatorSet validators = ValidatorSet::Generate(4, 42);
  ScriptEngine engine_a, engine_b;
  EngineSet engines_a{&engine_a, &engine_a};
  EngineSet engines_b{&engine_b, &engine_b};
  auto provider_node = Node::Create(NodeOptions{}, engines_a);  // no checkpoints
  ASSERT_TRUE(provider_node.ok());
  crypto::Drbg rng(42);
  RunBlocks(provider_node->get(), &rng, 3);

  auto joiner = Node::Create(NodeOptions{}, engines_b);
  ASSERT_TRUE(joiner.ok());
  SyncProvider provider("peer-a", provider_node->get());
  StateSyncClient client(joiner->get(), &validators, SyncOptions{});
  client.AddProvider(&provider);
  auto stats = client.SyncToTip();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats->snapshot_installed);
  EXPECT_EQ(stats->blocks_replayed, 3u);
  EXPECT_EQ((*joiner)->TipHash(), (*provider_node)->TipHash());
  EXPECT_EQ((*joiner)->state()->StateRoot(),
            (*provider_node)->state()->StateRoot());
}

TEST(SyncTest, CertificateFromUnknownValidatorsIsRejected) {
  // The provider's checkpoints are signed by a validator set the client
  // does not trust — the moral equivalent of a forged certificate. The
  // client must refuse the snapshot but may still replay verified blocks.
  ValidatorSet theirs = ValidatorSet::Generate(4, 43);
  ValidatorSet ours = ValidatorSet::Generate(4, 44);
  ScriptEngine engine_a, engine_b;
  EngineSet engines_a{&engine_a, &engine_a};
  EngineSet engines_b{&engine_b, &engine_b};
  auto provider_node = Node::Create(CheckpointedOptions(&theirs), engines_a);
  ASSERT_TRUE(provider_node.ok());
  crypto::Drbg rng(43);
  RunBlocks(provider_node->get(), &rng, 4);

  auto joiner = Node::Create(NodeOptions{}, engines_b);
  ASSERT_TRUE(joiner.ok());
  SyncProvider provider("peer-a", provider_node->get());
  StateSyncClient client(joiner->get(), &ours, SyncOptions{});
  client.AddProvider(&provider);
  auto stats = client.SyncToTip();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->certificates_rejected, 0u);
  EXPECT_FALSE(stats->snapshot_installed);  // refused the uncertified snapshot
  EXPECT_EQ(stats->blocks_replayed, 4u);    // replay is still integrity-checked
  EXPECT_EQ((*joiner)->TipHash(), (*provider_node)->TipHash());
}

// ---------------------------------------------------------------------------
// Fork evidence: witnessed-roots log + equivocating certificates
// ---------------------------------------------------------------------------

TEST(CheckpointTest, WitnessLogFlagsConflictingCertifiedCheckpoint) {
  ValidatorSet validators = ValidatorSet::Generate(4, 33);
  ScriptEngine engine;
  EngineSet engines{&engine, &engine};
  auto node = Node::Create(CheckpointedOptions(&validators), engines);
  ASSERT_TRUE(node.ok());
  crypto::Drbg rng(33);
  RunBlocks(node->get(), &rng, 2);  // checkpoint written (and witnessed) at 2

  CheckpointManager* manager = (*node)->checkpoints();
  ASSERT_NE(manager, nullptr);
  auto manifest = manager->ManifestAt(2);
  ASSERT_TRUE(manifest.ok());

  std::vector<uint64_t> alarm_heights;
  (*node)->SetForkAlarm(
      [&](uint64_t height, const crypto::Hash256& witnessed,
          const crypto::Hash256& conflicting) {
        alarm_heights.push_back(height);
        EXPECT_NE(witnessed, conflicting);
      });

  // Re-witnessing the identical checkpoint is a no-op.
  EXPECT_TRUE(manager
                  ->WitnessCheckpoint(2, manifest->block_hash,
                                      manifest->state_root)
                  .ok());
  EXPECT_TRUE(alarm_heights.empty());

  // A certified checkpoint with a different root at the same height is
  // fork evidence: fail loudly, fire the alarm, count the detection.
  uint64_t detected_before =
      metrics::GetCounter("chain.fork.detected.count")->Value();
  crypto::Hash256 evil_root = manifest->state_root;
  evil_root[0] ^= 0x01;
  Status fork = manager->WitnessCheckpoint(2, manifest->block_hash, evil_root);
  EXPECT_EQ(fork.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(fork.message().find("fork"), std::string::npos) << fork.ToString();
  ASSERT_EQ(alarm_heights.size(), 1u);
  EXPECT_EQ(alarm_heights[0], 2u);
  EXPECT_GT(metrics::GetCounter("chain.fork.detected.count")->Value(),
            detected_before);
}

TEST(SyncTest, EquivocatingCertificateRejectedByWitnessLog) {
  // One provider serves the honest checkpoint, the "other" (a second
  // handle on the same peer) serves the same height with a tampered state
  // root re-certified by real validator keys. Certificate verification
  // passes — only the witnessed-roots log can expose the conflict.
  ValidatorSet validators = ValidatorSet::Generate(4, 45);
  ScriptEngine engine_a, engine_b;
  EngineSet engines_a{&engine_a, &engine_a};
  EngineSet engines_b{&engine_b, &engine_b};
  auto provider_node = Node::Create(CheckpointedOptions(&validators), engines_a);
  ASSERT_TRUE(provider_node.ok());
  crypto::Drbg rng(45);
  RunBlocks(provider_node->get(), &rng, 5);

  auto joiner = Node::Create(CheckpointedOptions(&validators), engines_b);
  ASSERT_TRUE(joiner.ok());
  std::vector<uint64_t> alarm_heights;
  (*joiner)->SetForkAlarm([&](uint64_t height, const crypto::Hash256&,
                              const crypto::Hash256&) {
    alarm_heights.push_back(height);
  });

  SyncProvider honest("peer-a", provider_node->get());
  SyncProvider equivocator("peer-b", provider_node->get());
  StateSyncClient client(joiner->get(), &validators, SyncOptions{});
  client.AddProvider(&honest);
  client.AddProvider(&equivocator);

  fault::FaultPlan plan(45);
  // Fires on the second checkpoint query — the equivocating provider.
  plan.Arm("fault.chain.sync.equivocating_certificate",
           fault::Trigger{.after_hits = 1, .one_shot = true});

  auto stats = client.SyncToTip();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->forks_detected, 1u);
  EXPECT_GE(stats->certificates_rejected, 1u);
  EXPECT_TRUE(stats->snapshot_installed);  // the honest offer still serves
  ASSERT_EQ(alarm_heights.size(), 1u);
  EXPECT_EQ(alarm_heights[0], 4u);
  EXPECT_EQ((*joiner)->TipHash(), (*provider_node)->TipHash());
  EXPECT_EQ((*joiner)->state()->StateRoot(),
            (*provider_node)->state()->StateRoot());

  metrics::MetricsSnapshot snap = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(snap.counter("chain.fork.detected.count"), 1u);
  EXPECT_GE(
      snap.counter("fault.chain.sync.equivocating_certificate.injected"), 1u);
  EXPECT_GE(
      snap.counter("fault.chain.sync.equivocating_certificate.recovered"), 1u);
}

TEST(SyncTest, RotationReachesLiveProviderBehindDeadOnes) {
  // Regression: rotation happens after a failed attempt, so with N dead
  // providers registered ahead of one live one, reaching the live one
  // takes N+1 attempts. The old per-loop retry budget (max_attempts = 4)
  // was exhausted exactly one rotation short.
  ValidatorSet validators = ValidatorSet::Generate(4, 46);
  ScriptEngine engine_a, engine_b;
  EngineSet engines_a{&engine_a, &engine_a};
  EngineSet engines_b{&engine_b, &engine_b};
  auto provider_node = Node::Create(NodeOptions{}, engines_a);
  ASSERT_TRUE(provider_node.ok());
  crypto::Drbg rng(46);
  RunBlocks(provider_node->get(), &rng, 3);

  auto joiner = Node::Create(NodeOptions{}, engines_b);
  ASSERT_TRUE(joiner.ok());
  SyncOptions options;
  ASSERT_EQ(options.retry.max_attempts, 4u);  // the failing configuration
  StateSyncClient client(joiner->get(), &validators, std::move(options));
  std::vector<std::unique_ptr<SyncProvider>> providers;
  for (int i = 0; i < 5; ++i) {
    providers.push_back(std::make_unique<SyncProvider>(
        "peer-" + std::to_string(i), provider_node->get()));
    client.AddProvider(providers.back().get());
  }
  for (int i = 0; i < 4; ++i) providers[i]->Kill();  // exactly N = 4 dead

  auto stats = client.SyncToTip();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->blocks_replayed, 3u);
  EXPECT_GE(stats->provider_failovers, 4u);  // rotated past every dead one
  EXPECT_EQ((*joiner)->TipHash(), (*provider_node)->TipHash());
}

// ---------------------------------------------------------------------------
// Restart recovery
// ---------------------------------------------------------------------------

namespace {

std::string RawBlockHeightKey(uint64_t height) {
  uint8_t be[8];
  StoreBe64(be, height);
  return "blk/h/" + HexEncode(ByteView(be, 8));
}

}  // namespace

TEST(NodeRecoveryTest, RestartRestoresStateRootFromTipHeader) {
  auto dir = std::filesystem::temp_directory_path() / "confide_node_root_recovery";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ScriptEngine engine;
  EngineSet engines{&engine, &engine};
  NodeOptions options;
  options.state_wal_dir = dir.string();

  crypto::Hash256 root_before{}, tip_before{};
  {
    auto node = Node::Create(options, engines);
    ASSERT_TRUE(node.ok()) << node.status().ToString();
    crypto::Drbg rng(51);
    RunBlocks(node->get(), &rng, 3);
    root_before = (*node)->state()->StateRoot();
    tip_before = (*node)->TipHash();
    ASSERT_NE(root_before, crypto::Hash256{});
  }

  auto restarted = Node::Create(options, engines);
  ASSERT_TRUE(restarted.ok()) << restarted.status().ToString();
  EXPECT_EQ((*restarted)->Height(), 3u);
  EXPECT_EQ((*restarted)->TipHash(), tip_before);
  // The chained root is restored from the tip header; without it the
  // restarted node would re-chain from zero and fork at the next block.
  EXPECT_EQ((*restarted)->state()->StateRoot(), root_before);
  std::filesystem::remove_all(dir);
}

TEST(NodeRecoveryTest, CorruptedTipRecordFailsCreationLoudly) {
  auto dir = std::filesystem::temp_directory_path() / "confide_node_corrupt_tip";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ScriptEngine engine;
  EngineSet engines{&engine, &engine};
  NodeOptions options;
  options.state_wal_dir = dir.string();
  {
    auto node = Node::Create(options, engines);
    ASSERT_TRUE(node.ok()) << node.status().ToString();
    crypto::Drbg rng(52);
    RunBlocks(node->get(), &rng, 2);
  }
  {
    // Damage the tip block record on "disk".
    storage::LsmOptions lsm;
    lsm.wal_dir = dir.string();
    auto kv = storage::LsmKvStore::Open(lsm);
    ASSERT_TRUE(kv.ok());
    ASSERT_TRUE(
        (*kv)->Put(RawBlockHeightKey(1), ToBytes(std::string_view("garbage")))
            .ok());
  }
  // Recovery must fail loudly — a node that cannot parse its tip block
  // must not come up at a made-up height or state root.
  auto reopened = Node::Create(options, engines);
  EXPECT_FALSE(reopened.ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace confide::chain
