#include <gtest/gtest.h>

#include "common/metrics.h"
#include "confide/client.h"
#include "confide/system.h"
#include "crypto/drbg.h"
#include "lang/compiler.h"
#include "serialize/rlp.h"
#include "storage/kv_store.h"

namespace confide::core {
namespace {

using chain::NamedAddress;
using chain::Transaction;
using chain::TxType;

// A small counter contract used across the end-to-end tests.
constexpr const char* kCounterSource = R"(
fn increment() {
  var key = "counter";
  var buf = alloc(16);
  var n = get_storage(key, strlen(key), buf, 16);
  var value = 0;
  if (n == 8) { value = load64(buf); }
  value = value + 1;
  store64(buf, value);
  set_storage(key, strlen(key), buf, 8);
  var out = alloc(32);
  var len = u64_to_dec(value, out);
  write_output(out, len);
  log("incremented", 11);
  return value;
}
)";

Bytes DeployPayload(chain::VmKind vm, const Bytes& code) {
  std::vector<serialize::RlpItem> items;
  items.push_back(serialize::RlpItem::U64(uint64_t(vm)));
  items.push_back(serialize::RlpItem(code));
  return serialize::RlpEncode(serialize::RlpItem::List(std::move(items)));
}

// ---------------------------------------------------------------------------
// Protocols
// ---------------------------------------------------------------------------

TEST(TProtocolTest, EnvelopeRoundTrip) {
  crypto::Drbg rng(1);
  crypto::KeyPair engine_keys = crypto::GenerateKeyPair(&rng);
  Bytes raw = rng.Generate(300);
  TxKey k_tx = DeriveTxKey(AsByteView("user-root"), crypto::Sha256::Digest(raw));

  auto envelope = SealEnvelope(engine_keys.pub, k_tx, raw, 7);
  ASSERT_TRUE(envelope.ok());
  auto opened = OpenEnvelope(engine_keys.priv, *envelope);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->raw_tx, raw);
  EXPECT_EQ(opened->k_tx, k_tx);
}

TEST(TProtocolTest, WrongPrivateKeyFails) {
  crypto::Drbg rng(2);
  crypto::KeyPair right = crypto::GenerateKeyPair(&rng);
  crypto::KeyPair wrong = crypto::GenerateKeyPair(&rng);
  TxKey k_tx{};
  auto envelope = SealEnvelope(right.pub, k_tx, AsByteView("raw"), 1);
  ASSERT_TRUE(envelope.ok());
  EXPECT_FALSE(OpenEnvelope(wrong.priv, *envelope).ok());
}

TEST(TProtocolTest, TamperedEnvelopeFails) {
  crypto::Drbg rng(3);
  crypto::KeyPair keys = crypto::GenerateKeyPair(&rng);
  TxKey k_tx{};
  k_tx[0] = 9;
  auto envelope = SealEnvelope(keys.pub, k_tx, AsByteView("raw tx bytes"), 1);
  ASSERT_TRUE(envelope.ok());
  (*envelope)[envelope->size() - 1] ^= 1;
  EXPECT_FALSE(OpenEnvelope(keys.priv, *envelope).ok());
}

TEST(TProtocolTest, SymmetricOnlyPathRecoversBody) {
  crypto::Drbg rng(4);
  crypto::KeyPair keys = crypto::GenerateKeyPair(&rng);
  Bytes raw = rng.Generate(120);
  TxKey k_tx = DeriveTxKey(AsByteView("root"), crypto::Sha256::Digest(raw));
  auto envelope = SealEnvelope(keys.pub, k_tx, raw, 1);
  ASSERT_TRUE(envelope.ok());
  auto body = OpenEnvelopeBody(k_tx, *envelope);  // C3: no private-key op
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(*body, raw);
}

TEST(TProtocolTest, TxKeysAreUniquePerTransaction) {
  auto h1 = crypto::Sha256::Digest(AsByteView("tx1"));
  auto h2 = crypto::Sha256::Digest(AsByteView("tx2"));
  EXPECT_NE(DeriveTxKey(AsByteView("root"), h1), DeriveTxKey(AsByteView("root"), h2));
  EXPECT_NE(DeriveTxKey(AsByteView("root-a"), h1), DeriveTxKey(AsByteView("root-b"), h1));
}

TEST(TProtocolTest, ReceiptSealOpenAndDelegation) {
  TxKey k_tx{};
  k_tx[31] = 1;
  Bytes receipt = ToBytes(std::string_view("receipt-body"));
  auto sealed = SealReceipt(k_tx, receipt);
  ASSERT_TRUE(sealed.ok());
  // Owner (or a delegate handed k_tx) can open.
  auto opened = OpenReceipt(k_tx, *sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, receipt);
  // Anyone else cannot.
  TxKey other{};
  other[31] = 2;
  EXPECT_FALSE(OpenReceipt(other, *sealed).ok());
}

TEST(DProtocolTest, DeterministicAcrossReplicas) {
  StateKey k{};
  k[0] = 7;
  Bytes aad = StateAad(AsByteView("contract-1"), AsByteView("balance"), 1);
  auto c1 = SealState(k, AsByteView("100"), aad);
  auto c2 = SealState(k, AsByteView("100"), aad);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_EQ(*c1, *c2);  // replicas must agree byte-for-byte
}

TEST(DProtocolTest, AadBindsContractAndKeyAndVersion) {
  StateKey k{};
  Bytes aad1 = StateAad(AsByteView("c1"), AsByteView("k"), 1);
  auto sealed = SealState(k, AsByteView("secret"), aad1);
  ASSERT_TRUE(sealed.ok());
  EXPECT_TRUE(OpenState(k, *sealed, aad1).ok());
  // Different contract, key or security version all fail.
  EXPECT_FALSE(OpenState(k, *sealed, StateAad(AsByteView("c2"), AsByteView("k"), 1)).ok());
  EXPECT_FALSE(OpenState(k, *sealed, StateAad(AsByteView("c1"), AsByteView("x"), 1)).ok());
  EXPECT_FALSE(OpenState(k, *sealed, StateAad(AsByteView("c1"), AsByteView("k"), 2)).ok());
}

// ---------------------------------------------------------------------------
// K-Protocol
// ---------------------------------------------------------------------------

TEST(KProtocolTest, QuoteSerializationRoundTrip) {
  SimClock clock;
  tee::EnclavePlatform platform(tee::TeeCostModel{}, &clock, 9);
  auto km = std::make_shared<KmEnclave>(9);
  auto id = platform.CreateEnclave(km, 1 << 20);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(platform.Ecall(*id, kKmGenerateKeys, ByteView{}).ok());
  auto request = platform.Ecall(*id, kKmCreateJoinRequest, ByteView{});
  ASSERT_TRUE(request.ok());
  auto quote = DeserializeQuote(*request);
  ASSERT_TRUE(quote.ok());
  EXPECT_TRUE(tee::VerifyQuote(*quote));
  EXPECT_EQ(SerializeQuote(*quote), *request);
}

TEST(KProtocolTest, WrapUnwrapConsortiumKeys) {
  crypto::Drbg rng(10);
  crypto::KeyPair recipient = crypto::GenerateKeyPair(&rng);
  ConsortiumKeys keys;
  crypto::KeyPair tx_pair = crypto::GenerateKeyPair(&rng);
  keys.sk_tx = tx_pair.priv;
  keys.pk_tx = tx_pair.pub;
  rng.Fill(keys.k_states.data(), 32);

  auto blob = WrapConsortiumKeys(keys, recipient.pub, 5);
  ASSERT_TRUE(blob.ok());
  auto unwrapped = UnwrapConsortiumKeys(recipient.priv, *blob);
  ASSERT_TRUE(unwrapped.ok());
  EXPECT_EQ(unwrapped->sk_tx, keys.sk_tx);
  EXPECT_EQ(unwrapped->k_states, keys.k_states);

  crypto::KeyPair wrong = crypto::GenerateKeyPair(&rng);
  EXPECT_FALSE(UnwrapConsortiumKeys(wrong.priv, *blob).ok());
}

TEST(KProtocolTest, MapProvisionsJoinerWithSameKeys) {
  SimClock clock;
  tee::EnclavePlatform provider_platform(tee::TeeCostModel{}, &clock, 11);
  tee::EnclavePlatform joiner_platform(tee::TeeCostModel{}, &clock, 12);
  auto provider_km = std::make_shared<KmEnclave>(11);
  auto joiner_km = std::make_shared<KmEnclave>(12);
  auto provider_id = provider_platform.CreateEnclave(provider_km, 1 << 20);
  auto joiner_id = joiner_platform.CreateEnclave(joiner_km, 1 << 20);
  ASSERT_TRUE(provider_id.ok() && joiner_id.ok());
  ASSERT_TRUE(provider_platform.Ecall(*provider_id, kKmGenerateKeys, ByteView{}).ok());

  ASSERT_TRUE(RunMutualAttestation(&provider_platform, *provider_id,
                                   &joiner_platform, *joiner_id)
                  .ok());

  // Both sides now serve the same pk_tx.
  auto info_a = provider_platform.Ecall(*provider_id, kKmGetPublicInfo, ByteView{});
  auto info_b = joiner_platform.Ecall(*joiner_id, kKmGetPublicInfo, ByteView{});
  ASSERT_TRUE(info_a.ok() && info_b.ok());
  auto mr = tee::MeasureEnclave("confide-km-enclave", 1);
  auto pk_a = Client::VerifyEnginePublicKey(*info_a, mr);
  auto pk_b = Client::VerifyEnginePublicKey(*info_b, mr);
  ASSERT_TRUE(pk_a.ok() && pk_b.ok());
  EXPECT_EQ(*pk_a, *pk_b);
}

TEST(KProtocolTest, MapRejectsDifferentEnclaveCode) {
  // A "joiner" running different code (different measurement) is refused.
  class RogueEnclave : public KmEnclave {
   public:
    using KmEnclave::KmEnclave;
    std::string CodeIdentity() const override { return "rogue-km-enclave"; }
  };
  SimClock clock;
  tee::EnclavePlatform provider_platform(tee::TeeCostModel{}, &clock, 13);
  tee::EnclavePlatform joiner_platform(tee::TeeCostModel{}, &clock, 14);
  auto provider_km = std::make_shared<KmEnclave>(13);
  auto rogue = std::make_shared<RogueEnclave>(14);
  auto provider_id = provider_platform.CreateEnclave(provider_km, 1 << 20);
  auto rogue_id = joiner_platform.CreateEnclave(rogue, 1 << 20);
  ASSERT_TRUE(provider_id.ok() && rogue_id.ok());
  ASSERT_TRUE(provider_platform.Ecall(*provider_id, kKmGenerateKeys, ByteView{}).ok());

  Status status = RunMutualAttestation(&provider_platform, *provider_id,
                                       &joiner_platform, *rogue_id);
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);
}

TEST(KProtocolTest, CentralKmsProvisionsVerifiedEnclaves) {
  CentralKms kms(77);
  SimClock clock;
  tee::EnclavePlatform platform(tee::TeeCostModel{}, &clock, 15);
  auto km = std::make_shared<KmEnclave>(15);
  auto id = platform.CreateEnclave(km, 1 << 20);
  ASSERT_TRUE(id.ok());

  auto request = platform.Ecall(*id, kKmCreateJoinRequest, ByteView{});
  ASSERT_TRUE(request.ok());
  auto blob = kms.Provision(*request, tee::MeasureEnclave("confide-km-enclave", 1));
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  ASSERT_TRUE(platform.Ecall(*id, kKmAcceptProvision, *blob).ok());

  auto info = platform.Ecall(*id, kKmGetPublicInfo, ByteView{});
  ASSERT_TRUE(info.ok());
  auto pk = Client::VerifyEnginePublicKey(*info,
                                          tee::MeasureEnclave("confide-km-enclave", 1));
  ASSERT_TRUE(pk.ok());
  EXPECT_EQ(*pk, kms.pk_tx());

  // Wrong expected measurement is refused.
  EXPECT_FALSE(
      kms.Provision(*request, tee::MeasureEnclave("other", 1)).ok());
}

TEST(KProtocolTest, MalformedPublicInfoBlobRejectedNotCrash) {
  const auto mr = tee::MeasureEnclave("confide-km-enclave", 1);

  // Not RLP at all.
  EXPECT_FALSE(Client::VerifyEnginePublicKey(AsByteView("junk"), mr).ok());
  EXPECT_FALSE(Client::VerifyEnginePublicKey(ByteView{}, mr).ok());

  // pk slot holds a nested list where 64 raw bytes are expected — the
  // reader-based parse must fail with a Status, not feed list bytes into
  // the key copy.
  serialize::RlpWriter w;
  size_t list = w.BeginList();
  size_t pk_list = w.BeginList();
  w.WriteString("not-a-key");
  w.EndList(pk_list);
  w.WriteString("quote");
  w.EndList(list);
  auto status = Client::VerifyEnginePublicKey(std::move(w).Take(), mr);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.status().code(), StatusCode::kCorruption);

  // Wrong pk width (63 bytes) and a trailing extra field both fail.
  serialize::RlpWriter narrow;
  list = narrow.BeginList();
  narrow.WriteBytes(Bytes(63, 0x11));
  narrow.WriteString("quote");
  narrow.EndList(list);
  EXPECT_FALSE(
      Client::VerifyEnginePublicKey(std::move(narrow).Take(), mr).ok());

  serialize::RlpWriter extra;
  list = extra.BeginList();
  extra.WriteBytes(Bytes(64, 0x11));
  extra.WriteString("quote");
  extra.WriteString("trailing");
  extra.EndList(list);
  EXPECT_FALSE(
      Client::VerifyEnginePublicKey(std::move(extra).Take(), mr).ok());
}

// ---------------------------------------------------------------------------
// End-to-end confidential execution
// ---------------------------------------------------------------------------

class ConfideE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SystemOptions options;
    options.seed = 100;
    auto sys = ConfideSystem::BootstrapFirst(options);
    ASSERT_TRUE(sys.ok()) << sys.status().ToString();
    sys_ = std::move(*sys);
    client_ = std::make_unique<Client>(500, sys_->pk_tx());

    auto code = lang::Compile(kCounterSource, lang::VmTarget::kCvm);
    ASSERT_TRUE(code.ok()) << code.status().ToString();
    counter_code_ = *code;
  }

  // Deploys the counter contract confidentially and returns its address.
  chain::Address DeployCounter() {
    chain::Address addr = NamedAddress("counter");
    auto submission = client_->MakeConfidentialTx(
        addr, "__deploy__", DeployPayload(chain::VmKind::kCvm, counter_code_));
    EXPECT_TRUE(submission.ok());
    EXPECT_TRUE(sys_->node()->SubmitTransaction(submission->tx).ok());
    auto receipts = sys_->RunToCompletion();
    EXPECT_TRUE(receipts.ok());
    EXPECT_EQ(receipts->size(), 1u);
    EXPECT_TRUE((*receipts)[0].success);
    return addr;
  }

  std::unique_ptr<ConfideSystem> sys_;
  std::unique_ptr<Client> client_;
  Bytes counter_code_;
};

TEST_F(ConfideE2eTest, BootstrapDestroysKmEnclave) {
  EXPECT_FALSE(sys_->km_alive());  // EPC released, paper §5.3
}

TEST_F(ConfideE2eTest, ConfidentialDeployAndCall) {
  chain::Address addr = DeployCounter();

  auto call = client_->MakeConfidentialTx(addr, "increment", Bytes{});
  ASSERT_TRUE(call.ok());
  ASSERT_TRUE(sys_->node()->SubmitTransaction(call->tx).ok());
  auto receipts = sys_->RunToCompletion();
  ASSERT_TRUE(receipts.ok()) << receipts.status().ToString();
  ASSERT_EQ(receipts->size(), 1u);
  ASSERT_TRUE((*receipts)[0].success) << (*receipts)[0].status_message;

  // The on-chain receipt output is sealed; only k_tx opens it.
  auto opened = Client::OpenSealedReceipt(call->k_tx, (*receipts)[0].output);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(ToString(opened->output), "1");
  ASSERT_EQ(opened->logs.size(), 1u);
  EXPECT_EQ(ToString(opened->logs[0]), "incremented");

  TxKey wrong{};
  EXPECT_FALSE(Client::OpenSealedReceipt(wrong, (*receipts)[0].output).ok());
}

TEST_F(ConfideE2eTest, StateIsEncryptedAtRest) {
  chain::Address addr = DeployCounter();
  auto call = client_->MakeConfidentialTx(addr, "increment", Bytes{});
  ASSERT_TRUE(call.ok());
  ASSERT_TRUE(sys_->node()->SubmitTransaction(call->tx).ok());
  ASSERT_TRUE(sys_->RunToCompletion().ok());

  // The malicious-host view: read the raw KV store directly (§3.3 — "the
  // data in database can be accessed through database API directly").
  auto raw = sys_->node()->state()->Get(addr, AsByteView("counter"));
  ASSERT_TRUE(raw.ok());
  // The stored bytes must not contain the plaintext 8-byte LE counter.
  Bytes plain(8, 0);
  plain[0] = 1;
  EXPECT_NE(*raw, plain);
  EXPECT_GT(raw->size(), 8u + 12u);  // IV + tag overhead present

  // Same for the contract code.
  auto raw_code = sys_->node()->state()->Get(addr, AsByteView("__code__"));
  ASSERT_TRUE(raw_code.ok());
  EXPECT_NE(*raw_code, counter_code_);
}

TEST_F(ConfideE2eTest, CounterAccumulatesAcrossBlocks) {
  chain::Address addr = DeployCounter();
  ConfidentialSubmission last{};
  for (int i = 0; i < 5; ++i) {
    auto call = client_->MakeConfidentialTx(addr, "increment", Bytes{});
    ASSERT_TRUE(call.ok());
    ASSERT_TRUE(sys_->node()->SubmitTransaction(call->tx).ok());
    auto receipts = sys_->RunToCompletion();
    ASSERT_TRUE(receipts.ok());
    ASSERT_TRUE((*receipts)[0].success) << (*receipts)[0].status_message;
    last = *call;
    auto opened = Client::OpenSealedReceipt(call->k_tx, (*receipts)[0].output);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(ToString(opened->output), std::to_string(i + 1));
  }
}

TEST_F(ConfideE2eTest, PreVerificationCachePopulatesAndHits) {
  chain::Address addr = DeployCounter();
  auto call = client_->MakeConfidentialTx(addr, "increment", Bytes{});
  ASSERT_TRUE(call.ok());
  ASSERT_TRUE(sys_->node()->SubmitTransaction(call->tx).ok());

  CsEnclave* cs = sys_->confidential_engine()->enclave();
  uint64_t hits_before = cs->preverify_cache_hits();
  ASSERT_TRUE(sys_->RunToCompletion().ok());
  // Execution found the pre-verified metadata (C2 hit).
  EXPECT_GT(cs->preverify_cache_hits(), hits_before);
}

TEST_F(ConfideE2eTest, TamperedEnvelopeRejectedInPreVerify) {
  chain::Address addr = DeployCounter();
  auto call = client_->MakeConfidentialTx(addr, "increment", Bytes{});
  ASSERT_TRUE(call.ok());
  Transaction tampered = call->tx;
  tampered.envelope[tampered.envelope.size() / 2] ^= 0xff;
  ASSERT_TRUE(sys_->node()->SubmitTransaction(tampered).ok());
  auto verified = sys_->node()->PreVerify();
  ASSERT_TRUE(verified.ok());
  EXPECT_EQ(*verified, 0u);  // discarded
}

TEST_F(ConfideE2eTest, PublicAndConfidentialCoexist) {
  chain::Address conf_addr = DeployCounter();

  // Deploy the same contract publicly under another address.
  chain::Address pub_addr = NamedAddress("counter-public");
  Transaction pub_deploy = client_->MakePublicTx(
      pub_addr, "__deploy__", DeployPayload(chain::VmKind::kCvm, counter_code_));
  ASSERT_TRUE(sys_->node()->SubmitTransaction(pub_deploy).ok());

  Transaction pub_call = client_->MakePublicTx(pub_addr, "increment", Bytes{});
  auto conf_call = client_->MakeConfidentialTx(conf_addr, "increment", Bytes{});
  ASSERT_TRUE(conf_call.ok());
  ASSERT_TRUE(sys_->node()->SubmitTransaction(pub_call).ok());
  ASSERT_TRUE(sys_->node()->SubmitTransaction(conf_call->tx).ok());

  auto receipts = sys_->RunToCompletion();
  ASSERT_TRUE(receipts.ok());
  int success = 0;
  for (const auto& receipt : *receipts) success += receipt.success ? 1 : 0;
  EXPECT_EQ(success, int(receipts->size()));

  // Public state is plaintext; confidential state is not.
  auto pub_state = sys_->node()->state()->Get(pub_addr, AsByteView("counter"));
  ASSERT_TRUE(pub_state.ok());
  EXPECT_EQ(pub_state->size(), 8u);  // raw LE counter
  auto conf_state = sys_->node()->state()->Get(conf_addr, AsByteView("counter"));
  ASSERT_TRUE(conf_state.ok());
  EXPECT_GT(conf_state->size(), 8u);  // sealed
}

TEST_F(ConfideE2eTest, JoinAgainstDestroyedKmFailsDescriptively) {
  // Default bootstrap destroys the provider's KM enclave (§5.3), which
  // makes it useless as a MAP provisioning source. Joining against it
  // must fail up front with a descriptive error, not deep inside the
  // attestation protocol.
  EXPECT_FALSE(sys_->km_alive());
  SystemOptions joiner_options;
  joiner_options.seed = 150;
  auto joiner = ConfideSystem::BootstrapJoin(joiner_options, sys_.get());
  ASSERT_FALSE(joiner.ok());
  EXPECT_EQ(joiner.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(joiner.status().message().find("provider KM enclave"),
            std::string::npos)
      << joiner.status().ToString();
}

TEST_F(ConfideE2eTest, JoinedNodeExecutesIdentically) {
  // Bootstrap a second node via MAP (provider keeps KM alive).
  SystemOptions first_options;
  first_options.seed = 200;
  first_options.destroy_km_after_provision = false;
  auto first = ConfideSystem::BootstrapFirst(first_options);
  ASSERT_TRUE(first.ok());

  SystemOptions second_options;
  second_options.seed = 201;
  auto second = ConfideSystem::BootstrapJoin(second_options, first->get());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ((*first)->pk_tx(), (*second)->pk_tx());

  // The same confidential transactions replay on both nodes with
  // identical sealed state (replica determinism).
  Client client(42, (*first)->pk_tx());
  chain::Address addr = NamedAddress("ctr");
  auto deploy = client.MakeConfidentialTx(
      addr, "__deploy__", DeployPayload(chain::VmKind::kCvm, counter_code_));
  ASSERT_TRUE(deploy.ok());
  auto call = client.MakeConfidentialTx(addr, "increment", Bytes{});
  ASSERT_TRUE(call.ok());

  for (ConfideSystem* sys : {first->get(), second->get()}) {
    ASSERT_TRUE(sys->node()->SubmitTransaction(deploy->tx).ok());
    ASSERT_TRUE(sys->node()->SubmitTransaction(call->tx).ok());
    auto receipts = sys->RunToCompletion();
    ASSERT_TRUE(receipts.ok());
    for (const auto& receipt : *receipts) {
      EXPECT_TRUE(receipt.success) << receipt.status_message;
    }
  }
  auto state_a = (*first)->node()->state()->Get(addr, AsByteView("counter"));
  auto state_b = (*second)->node()->state()->Get(addr, AsByteView("counter"));
  ASSERT_TRUE(state_a.ok() && state_b.ok());
  EXPECT_EQ(*state_a, *state_b);
  EXPECT_EQ((*first)->node()->state()->StateRoot(),
            (*second)->node()->state()->StateRoot());
}

TEST_F(ConfideE2eTest, TeeCostsAreCharged) {
  chain::Address addr = DeployCounter();
  auto call = client_->MakeConfidentialTx(addr, "increment", Bytes{});
  ASSERT_TRUE(call.ok());
  uint64_t before_ns = sys_->clock()->NowNs();
  uint64_t ocalls_before = sys_->platform()->stats().ocalls.load();
  ASSERT_TRUE(sys_->node()->SubmitTransaction(call->tx).ok());
  ASSERT_TRUE(sys_->RunToCompletion().ok());
  EXPECT_GT(sys_->platform()->stats().ocalls.load(), ocalls_before);
  EXPECT_GT(sys_->clock()->NowNs(), before_ns);
}

TEST_F(ConfideE2eTest, MetricsTrackOneConfidentialTransaction) {
  chain::Address addr = DeployCounter();
  auto call = client_->MakeConfidentialTx(addr, "increment", Bytes{});
  ASSERT_TRUE(call.ok());

  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
  metrics::MetricsSnapshot before = registry.Snapshot();
  uint64_t stats_transitions_before = sys_->platform()->stats().transitions.load();

  ASSERT_TRUE(sys_->node()->SubmitTransaction(call->tx).ok());
  ASSERT_TRUE(sys_->RunToCompletion().ok());

  metrics::MetricsSnapshot after = registry.Snapshot();

  // The registry's enclave-transition counter advanced by exactly the
  // number of transition events the TEE cost model charged (TeeStats is
  // the cost model's own ledger; this node is the only platform running).
  uint64_t model_transitions =
      sys_->platform()->stats().transitions.load() - stats_transitions_before;
  EXPECT_GT(model_transitions, 0u);
  EXPECT_EQ(after.counter("tee.transition.count") -
                before.counter("tee.transition.count"),
            model_transitions);

  // One tx went through preverify and execute; P1–P5 phase histograms
  // all saw it and the state ocall counters moved.
  EXPECT_EQ(after.counter("confide.preverify.tx.count") -
                before.counter("confide.preverify.tx.count"),
            1u);
  EXPECT_EQ(after.counter("confide.execute.tx.count") -
                before.counter("confide.execute.tx.count"),
            1u);
  for (const char* phase :
       {"confide.phase.p1_decode_ns", "confide.phase.p2_envelope_open_ns",
        "confide.phase.p3_sig_verify_ns", "confide.phase.p4_cache_update_ns",
        "confide.phase.p5_execute_ns"}) {
    ASSERT_TRUE(after.histograms.count(phase)) << phase;
    uint64_t delta = after.histograms.at(phase).count -
                     (before.histograms.count(phase)
                          ? before.histograms.at(phase).count
                          : 0);
    EXPECT_GE(delta, 1u) << phase;
  }
  EXPECT_GT(after.counter("confide.state.get_ocall.count") +
                after.counter("confide.state.set_ocall.count"),
            before.counter("confide.state.get_ocall.count") +
                before.counter("confide.state.set_ocall.count"));

  // A block was produced for the tx and the chain layer saw it.
  EXPECT_GE(after.counter("chain.block.count") - before.counter("chain.block.count"),
            1u);
}

// ---------------------------------------------------------------------------
// StateJournal / batched-ocall regressions (OPT5)
// ---------------------------------------------------------------------------

// A -> B -> A: the outer frame of `reent.a` reads "x", calls into
// `reent.b`, which re-enters `reent.a` and increments "x". The outer
// frame's re-read must observe the nested write — all frames of one
// execution share a single StateJournal.
constexpr const char* kReentrantASource = R"(
fn outer() {
  var before = state_get_u64("x");
  var out = alloc(8);
  call_named("reent.b", "pong", out, 0, out, 8);
  var after = state_get_u64("x");
  var buf = alloc(32);
  var len = u64_to_dec(after, buf);
  write_output(buf, len);
  return after - before;
}
fn bump() {
  state_put_u64("x", state_get_u64("x") + 1);
  return 0;
}
)";

constexpr const char* kReentrantBSource = R"(
fn pong() {
  var out = alloc(8);
  call_named("reent.a", "bump", out, 0, out, 8);
  return 0;
}
)";

// Shared-counter contracts for the cross-group conflict regression.
constexpr const char* kSharedCounterSource = R"(
fn bump() {
  state_put_u64("n", state_get_u64("n") + 1);
  return 0;
}
fn read() {
  var buf = alloc(32);
  var len = u64_to_dec(state_get_u64("n"), buf);
  write_output(buf, len);
  return 0;
}
)";

constexpr const char* kSharedCallerSource = R"(
fn hit() {
  var out = alloc(8);
  call_named("grp.shared", "bump", out, 0, out, 8);
  return 0;
}
)";

// Touches four state keys per call: the workload where batching pays
// (one prefetch + one flush instead of eight single ocalls).
constexpr const char* kMultiKeySource = R"(
fn touch() {
  state_put_u64("k0", state_get_u64("k0") + 1);
  state_put_u64("k1", state_get_u64("k1") + 1);
  state_put_u64("k2", state_get_u64("k2") + 1);
  state_put_u64("k3", state_get_u64("k3") + 1);
  var buf = alloc(32);
  var len = u64_to_dec(state_get_u64("k0"), buf);
  write_output(buf, len);
  return 0;
}
)";

int64_t GaugeOr(const metrics::MetricsSnapshot& snap, const std::string& name,
                int64_t fallback) {
  auto it = snap.gauges.find(name);
  return it == snap.gauges.end() ? fallback : it->second;
}

// Deploys `source` confidentially at NamedAddress(name) in its own block.
void DeployNamed(ConfideSystem* sys, Client* client, const std::string& name,
                 const char* source) {
  auto code = lang::Compile(source, lang::VmTarget::kCvm);
  ASSERT_TRUE(code.ok()) << code.status().ToString();
  auto submission = client->MakeConfidentialTx(
      NamedAddress(name), "__deploy__", DeployPayload(chain::VmKind::kCvm, *code));
  ASSERT_TRUE(submission.ok());
  ASSERT_TRUE(sys->node()->SubmitTransaction(submission->tx).ok());
  auto receipts = sys->RunToCompletion();
  ASSERT_TRUE(receipts.ok()) << receipts.status().ToString();
  ASSERT_EQ(receipts->size(), 1u);
  ASSERT_TRUE((*receipts)[0].success) << (*receipts)[0].status_message;
}

// Runs entry() on NamedAddress(name) and returns the decrypted output.
std::string CallAndOpen(ConfideSystem* sys, Client* client,
                        const std::string& name, const std::string& entry) {
  auto call = client->MakeConfidentialTx(NamedAddress(name), entry, Bytes{});
  EXPECT_TRUE(call.ok());
  EXPECT_TRUE(sys->node()->SubmitTransaction(call->tx).ok());
  auto receipts = sys->RunToCompletion();
  EXPECT_TRUE(receipts.ok()) << receipts.status().ToString();
  if (!receipts.ok() || receipts->empty() || !(*receipts)[0].success) {
    return "<failed>";
  }
  auto opened = Client::OpenSealedReceipt(call->k_tx, (*receipts)[0].output);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return opened.ok() ? ToString(opened->output) : "<sealed>";
}

TEST_F(ConfideE2eTest, ReentrantNestedCallSeesNestedWrite) {
  DeployNamed(sys_.get(), client_.get(), "reent.a", kReentrantASource);
  DeployNamed(sys_.get(), client_.get(), "reent.b", kReentrantBSource);
  // outer() re-reads "x" after the A->B->A bump; a per-frame SDM cache
  // would serve the stale pre-call absence and report 0.
  EXPECT_EQ(CallAndOpen(sys_.get(), client_.get(), "reent.a", "outer"), "1");
}

TEST(ConfideParallelTest, CrossGroupSharedContractCommitsBothWrites) {
  SystemOptions options;
  options.seed = 310;
  options.parallelism = 4;
  auto sys = ConfideSystem::BootstrapFirst(options);
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  Client client(600, (*sys)->pk_tx());

  DeployNamed(sys->get(), &client, "grp.shared", kSharedCounterSource);
  DeployNamed(sys->get(), &client, "grp.a", kSharedCallerSource);
  DeployNamed(sys->get(), &client, "grp.b", kSharedCallerSource);

  // Two transactions with distinct top-level conflict keys — the
  // scheduler puts them in different parallel groups — but both call
  // into grp.shared and increment the same counter.
  auto a = client.MakeConfidentialTx(NamedAddress("grp.a"), "hit", Bytes{});
  auto b = client.MakeConfidentialTx(NamedAddress("grp.b"), "hit", Bytes{});
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE((*sys)->node()->SubmitTransaction(a->tx).ok());
  ASSERT_TRUE((*sys)->node()->SubmitTransaction(b->tx).ok());
  auto receipts = (*sys)->RunToCompletion();
  ASSERT_TRUE(receipts.ok()) << receipts.status().ToString();
  ASSERT_EQ(receipts->size(), 2u);
  EXPECT_TRUE((*receipts)[0].success) << (*receipts)[0].status_message;
  EXPECT_TRUE((*receipts)[1].success) << (*receipts)[1].status_message;

  // Pre-fix, overlay merge order silently dropped one increment (last
  // writer wins); the cross-group conflict re-execution keeps both.
  EXPECT_EQ(CallAndOpen(sys->get(), &client, "grp.shared", "read"), "2");
}

TEST(ConfideBatchingTest, BatchedStateOcallsReduceEnclaveTransitions) {
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();

  // Runs three touch() calls on the 4-key contract; returns the TEE
  // transition count and the state-ocall counter deltas of the third
  // (steady-state: code cache warm, read-set profile learned).
  struct SteadyState {
    uint64_t transitions = 0;
    uint64_t single_ocalls = 0;
    uint64_t batch_ocalls = 0;
  };
  auto measure = [&](uint64_t seed, bool batching) -> SteadyState {
    SystemOptions options;
    options.seed = seed;
    options.cs.enable_ocall_batching = batching;
    auto sys = ConfideSystem::BootstrapFirst(options);
    EXPECT_TRUE(sys.ok()) << sys.status().ToString();
    Client client(700, (*sys)->pk_tx());
    DeployNamed(sys->get(), &client, "multi", kMultiKeySource);
    EXPECT_EQ(CallAndOpen(sys->get(), &client, "multi", "touch"), "1");
    EXPECT_EQ(CallAndOpen(sys->get(), &client, "multi", "touch"), "2");

    metrics::MetricsSnapshot before = registry.Snapshot();
    uint64_t transitions_before = (*sys)->platform()->stats().transitions.load();
    EXPECT_EQ(CallAndOpen(sys->get(), &client, "multi", "touch"), "3");
    metrics::MetricsSnapshot after = registry.Snapshot();

    SteadyState out;
    out.transitions =
        (*sys)->platform()->stats().transitions.load() - transitions_before;
    out.single_ocalls = (after.counter("confide.state.get_ocall.count") -
                         before.counter("confide.state.get_ocall.count")) +
                        (after.counter("confide.state.set_ocall.count") -
                         before.counter("confide.state.set_ocall.count"));
    out.batch_ocalls = (after.counter("confide.state.get_batch_ocall.count") -
                        before.counter("confide.state.get_batch_ocall.count")) +
                       (after.counter("confide.state.set_batch_ocall.count") -
                        before.counter("confide.state.set_batch_ocall.count"));
    return out;
  };

  SteadyState batched = measure(320, true);
  SteadyState unbatched = measure(321, false);

  // Unbatched steady state: one get + one set ocall per touched key.
  EXPECT_EQ(unbatched.single_ocalls, 8u);
  EXPECT_EQ(unbatched.batch_ocalls, 0u);
  // Batched steady state: one prefetch + one flush, nothing else — the
  // state ocalls cost 2 * 2 = 4 enclave transitions per transaction.
  EXPECT_EQ(batched.single_ocalls, 0u);
  EXPECT_EQ(batched.batch_ocalls, 2u);
  EXPECT_LT(batched.transitions, unbatched.transitions);
}

TEST_F(ConfideE2eTest, ConflictKeyAndPreVerifyEntriesEvictedAfterExecute) {
  chain::Address addr = DeployCounter();
  auto call = client_->MakeConfidentialTx(addr, "increment", Bytes{});
  ASSERT_TRUE(call.ok());
  ASSERT_TRUE(sys_->node()->SubmitTransaction(call->tx).ok());
  ASSERT_TRUE(sys_->RunToCompletion().ok());

  // Memoized pre-verification metadata is consumed by execution — the
  // host conflict-key map and the in-enclave meta cache both drain back
  // to zero instead of growing with chain history.
  metrics::MetricsSnapshot snap = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(GaugeOr(snap, "confide.engine.conflict_keys.resident", -1), 0);
  EXPECT_EQ(GaugeOr(snap, "confide.preverify_cache.resident", -1), 0);
}

TEST(ConfideCacheCapTest, PreVerifyCacheHonorsLruCapacity) {
  SystemOptions options;
  options.seed = 330;
  options.cs.preverify_cache_capacity = 1;
  auto sys = ConfideSystem::BootstrapFirst(options);
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  Client client(800, (*sys)->pk_tx());
  DeployNamed(sys->get(), &client, "capped", kCounterSource);

  auto first = client.MakeConfidentialTx(NamedAddress("capped"), "increment", Bytes{});
  auto second = client.MakeConfidentialTx(NamedAddress("capped"), "increment", Bytes{});
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_TRUE((*sys)->node()->SubmitTransaction(first->tx).ok());
  ASSERT_TRUE((*sys)->node()->SubmitTransaction(second->tx).ok());
  auto verified = (*sys)->node()->PreVerify();
  ASSERT_TRUE(verified.ok());
  EXPECT_EQ(*verified, 2u);

  // Both passed pre-verification but the LRU held only one entry.
  metrics::MetricsSnapshot snap = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(GaugeOr(snap, "confide.preverify_cache.resident", -1), 1);

  // The evicted transaction still executes via the full sk_tx path.
  auto receipts = (*sys)->RunToCompletion();
  ASSERT_TRUE(receipts.ok()) << receipts.status().ToString();
  ASSERT_EQ(receipts->size(), 2u);
  EXPECT_TRUE((*receipts)[0].success) << (*receipts)[0].status_message;
  EXPECT_TRUE((*receipts)[1].success) << (*receipts)[1].status_message;
  snap = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(GaugeOr(snap, "confide.preverify_cache.resident", -1), 0);
}

}  // namespace
}  // namespace confide::core
