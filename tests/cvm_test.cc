#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "vm/cvm/builder.h"
#include "vm/cvm/interpreter.h"

namespace confide::vm::cvm {
namespace {

using testutil::MapHostEnv;

ExecConfig NoCacheConfig() {
  ExecConfig config;
  config.enable_code_cache = false;
  config.enable_fusion = false;
  return config;
}

// Builds a module with a single exported "main".
Bytes BuildSingle(const FunctionBuilder& fb,
                  std::vector<std::pair<uint32_t, Bytes>> data = {}) {
  ModuleBuilder mb;
  auto idx = mb.AddFunction(fb);
  EXPECT_TRUE(idx.ok());
  mb.Export("main", *idx);
  for (auto& [offset, bytes] : data) mb.AddData(offset, std::move(bytes));
  return EncodeModule(mb.Finish());
}

TEST(CvmTest, ConstReturn) {
  FunctionBuilder fb(0, 0);
  fb.I64Const(42).Return();
  MapHostEnv env;
  CvmVm vm;
  auto result = vm.Execute(BuildSingle(fb), "main", {}, &env, NoCacheConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->return_value, 42u);
}

TEST(CvmTest, Arithmetic) {
  struct Case {
    Op op;
    int64_t lhs, rhs, expected;
  };
  const Case cases[] = {
      {Op::kAdd, 7, 5, 12},     {Op::kSub, 7, 5, 2},
      {Op::kMul, 7, 5, 35},     {Op::kDivS, -20, 5, -4},
      {Op::kDivU, 20, 5, 4},    {Op::kRemS, -7, 5, -2},
      {Op::kRemU, 7, 5, 2},     {Op::kAnd, 0b1100, 0b1010, 0b1000},
      {Op::kOr, 0b1100, 0b1010, 0b1110},
      {Op::kXor, 0b1100, 0b1010, 0b0110},
      {Op::kShl, 1, 8, 256},    {Op::kShrU, 256, 8, 1},
      {Op::kShrS, -256, 8, -1},
  };
  MapHostEnv env;
  CvmVm vm;
  for (const Case& c : cases) {
    FunctionBuilder fb(0, 0);
    fb.I64Const(c.lhs).I64Const(c.rhs).Emit(c.op).Return();
    auto result = vm.Execute(BuildSingle(fb), "main", {}, &env, NoCacheConfig());
    ASSERT_TRUE(result.ok()) << int(c.op);
    EXPECT_EQ(int64_t(result->return_value), c.expected) << int(c.op);
  }
}

TEST(CvmTest, Comparisons) {
  struct Case {
    Op op;
    int64_t lhs, rhs;
    uint64_t expected;
  };
  const Case cases[] = {
      {Op::kEq, 3, 3, 1},   {Op::kNe, 3, 3, 0},  {Op::kLtS, -1, 0, 1},
      {Op::kLtU, -1, 0, 0},  // -1 unsigned is max
      {Op::kGtS, 5, 2, 1},  {Op::kGeU, 2, 2, 1}, {Op::kLeS, -5, -5, 1},
  };
  MapHostEnv env;
  CvmVm vm;
  for (const Case& c : cases) {
    FunctionBuilder fb(0, 0);
    fb.I64Const(c.lhs).I64Const(c.rhs).Emit(c.op).Return();
    auto result = vm.Execute(BuildSingle(fb), "main", {}, &env, NoCacheConfig());
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->return_value, c.expected) << int(c.op);
  }
}

TEST(CvmTest, DivideByZeroTraps) {
  FunctionBuilder fb(0, 0);
  fb.I64Const(1).I64Const(0).Emit(Op::kDivU).Return();
  MapHostEnv env;
  CvmVm vm;
  auto result = vm.Execute(BuildSingle(fb), "main", {}, &env, NoCacheConfig());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsVmTrap());
}

TEST(CvmTest, LoopSumsWithBranches) {
  // sum = 0; i = 0; while (i < 100) { sum += i; i += 1; } return sum;
  FunctionBuilder fb(0, 2);  // locals: 0 = sum, 1 = i
  auto loop = fb.NewLabel();
  auto done = fb.NewLabel();
  fb.Bind(loop);
  fb.LocalGet(1).I64Const(100).Emit(Op::kGeS).BrIf(done);
  fb.LocalGet(0).LocalGet(1).Emit(Op::kAdd).LocalSet(0);
  fb.LocalGet(1).I64Const(1).Emit(Op::kAdd).LocalSet(1);
  fb.Br(loop);
  fb.Bind(done);
  fb.LocalGet(0).Return();

  MapHostEnv env;
  CvmVm vm;
  auto result = vm.Execute(BuildSingle(fb), "main", {}, &env, NoCacheConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->return_value, 4950u);
}

TEST(CvmTest, FusionPreservesSemantics) {
  // Same loop; run with and without fusion and compare everything.
  FunctionBuilder fb(0, 2);
  auto loop = fb.NewLabel();
  auto done = fb.NewLabel();
  fb.Bind(loop);
  fb.LocalGet(1).I64Const(1000).Emit(Op::kGeS).BrIf(done);
  fb.LocalGet(0).LocalGet(1).Emit(Op::kAdd).LocalSet(0);
  fb.LocalGet(1).I64Const(1).Emit(Op::kAdd).LocalSet(1);
  fb.Br(loop);
  fb.Bind(done);
  fb.LocalGet(0).Return();
  Bytes wire = BuildSingle(fb);

  MapHostEnv env;
  CvmVm vm;
  ExecConfig plain = NoCacheConfig();
  ExecConfig fused = NoCacheConfig();
  fused.enable_fusion = true;
  auto r1 = vm.Execute(wire, "main", {}, &env, plain);
  auto r2 = vm.Execute(wire, "main", {}, &env, fused);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->return_value, r2->return_value);
  EXPECT_EQ(r1->return_value, 499500u);
  // Fusion must retire strictly fewer instructions.
  EXPECT_LT(r2->instructions_retired, r1->instructions_retired);
}

TEST(CvmTest, FunctionCallsWithArguments) {
  ModuleBuilder mb;
  // add(a, b) = a + b
  FunctionBuilder add(2, 0);
  add.LocalGet(0).LocalGet(1).Emit(Op::kAdd).Return();
  auto add_idx = mb.AddFunction(add);
  ASSERT_TRUE(add_idx.ok());
  // main: return add(add(1, 2), 30)
  FunctionBuilder main_fn(0, 0);
  main_fn.I64Const(1).I64Const(2).Call(*add_idx);
  main_fn.I64Const(30).Call(*add_idx).Return();
  auto main_idx = mb.AddFunction(main_fn);
  ASSERT_TRUE(main_idx.ok());
  mb.Export("main", *main_idx);

  MapHostEnv env;
  CvmVm vm;
  auto result = vm.Execute(EncodeModule(mb.Finish()), "main", {}, &env, NoCacheConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->return_value, 33u);
}

TEST(CvmTest, RecursionDepthLimit) {
  ModuleBuilder mb;
  FunctionBuilder rec(0, 0);
  rec.Call(0).Return();  // infinite self-call
  auto idx = mb.AddFunction(rec);
  ASSERT_TRUE(idx.ok());
  mb.Export("main", *idx);
  MapHostEnv env;
  CvmVm vm;
  auto result = vm.Execute(EncodeModule(mb.Finish()), "main", {}, &env, NoCacheConfig());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsVmTrap());
}

TEST(CvmTest, GasLimitStopsRunawayLoop) {
  FunctionBuilder fb(0, 0);
  auto loop = fb.NewLabel();
  fb.Bind(loop);
  fb.Br(loop);
  MapHostEnv env;
  CvmVm vm;
  ExecConfig config = NoCacheConfig();
  config.gas_limit = 10000;
  auto result = vm.Execute(BuildSingle(fb), "main", {}, &env, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(CvmTest, MemoryLoadStoreAndDataSegments) {
  // Data segment "hi" at offset 100; read byte, store at 200, load back.
  MapHostEnv env;
  CvmVm vm;
  FunctionBuilder fb2(0, 1);
  fb2.I64Const(100).Emit(Op::kLoad8U).LocalSet(0);
  fb2.I64Const(200).LocalGet(0).Emit(Op::kStore64);
  fb2.I64Const(200).Emit(Op::kLoad64).Return();
  auto wire = BuildSingle(fb2, {{100, ToBytes(std::string_view("hi"))}});
  auto result = vm.Execute(wire, "main", {}, &env, NoCacheConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->return_value, uint64_t('h'));
}

TEST(CvmTest, OutOfBoundsMemoryTraps) {
  FunctionBuilder fb(0, 0);
  fb.I64Const(int64_t(1) << 40).Emit(Op::kLoad64).Return();
  MapHostEnv env;
  CvmVm vm;
  auto result = vm.Execute(BuildSingle(fb), "main", {}, &env, NoCacheConfig());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsVmTrap());
}

TEST(CvmTest, MemCopyAndFill) {
  FunctionBuilder fb(0, 0);
  // fill [0,8) with 0xAB; copy to [16,24); load64 at 16.
  fb.I64Const(0).I64Const(0xAB).I64Const(8).Emit(Op::kMemFill);
  fb.I64Const(16).I64Const(0).I64Const(8).Emit(Op::kMemCopy);
  fb.I64Const(16).Emit(Op::kLoad64).Return();
  MapHostEnv env;
  CvmVm vm;
  auto result = vm.Execute(BuildSingle(fb), "main", {}, &env, NoCacheConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->return_value, 0xABABABABABABABABull);
}

TEST(CvmTest, HostStorageRoundTrip) {
  // Write "k" (data at 0, len 1) value from data at 8 len 3; then read back.
  FunctionBuilder fb(0, 0);
  fb.I64Const(0).I64Const(1).I64Const(8).I64Const(3);
  fb.CallHost(kHostSetStorage).Emit(Op::kDrop);
  fb.I64Const(0).I64Const(1).I64Const(64).I64Const(100);
  fb.CallHost(kHostGetStorage).Return();
  auto wire = BuildSingle(fb, {{0, ToBytes(std::string_view("k"))},
                               {8, ToBytes(std::string_view("val"))}});
  MapHostEnv env;
  CvmVm vm;
  auto result = vm.Execute(wire, "main", {}, &env, NoCacheConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->return_value, 3u);  // stored length
  EXPECT_EQ(ToString(env.storage["k"]), "val");
}

TEST(CvmTest, HostGetStorageMissingReturnsZero) {
  FunctionBuilder fb(0, 0);
  fb.I64Const(0).I64Const(1).I64Const(64).I64Const(100);
  fb.CallHost(kHostGetStorage).Return();
  auto wire = BuildSingle(fb, {{0, ToBytes(std::string_view("k"))}});
  MapHostEnv env;
  CvmVm vm;
  auto result = vm.Execute(wire, "main", {}, &env, NoCacheConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->return_value, 0u);
}

TEST(CvmTest, HostHashFunctions) {
  // sha256 of "abc" written at 64; return first byte (0xba).
  FunctionBuilder fb(0, 0);
  fb.I64Const(0).I64Const(3).I64Const(64).CallHost(kHostSha256).Emit(Op::kDrop);
  fb.I64Const(64).Emit(Op::kLoad8U).Return();
  auto wire = BuildSingle(fb, {{0, ToBytes(std::string_view("abc"))}});
  MapHostEnv env;
  CvmVm vm;
  auto result = vm.Execute(wire, "main", {}, &env, NoCacheConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->return_value, 0xbau);
}

TEST(CvmTest, InputAndOutput) {
  // Copy input to memory, then write it back as output.
  FunctionBuilder fb(0, 1);
  fb.I64Const(0).I64Const(4096).CallHost(kHostReadInput).LocalSet(0);
  fb.I64Const(0).LocalGet(0).CallHost(kHostWriteOutput).Emit(Op::kDrop);
  fb.CallHost(kHostInputSize).Return();
  MapHostEnv env;
  CvmVm vm;
  auto result = vm.Execute(BuildSingle(fb), "main", AsByteView("payload"), &env,
                           NoCacheConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->return_value, 7u);
  EXPECT_EQ(ToString(result->output), "payload");
}

TEST(CvmTest, AbortTraps) {
  FunctionBuilder fb(0, 0);
  fb.I64Const(3).CallHost(kHostAbort).Return();
  MapHostEnv env;
  CvmVm vm;
  auto result = vm.Execute(BuildSingle(fb), "main", {}, &env, NoCacheConfig());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsVmTrap());
}

TEST(CvmTest, CrossContractCallThroughEnv) {
  FunctionBuilder fb(0, 0);
  // call(addr at 0 len 4, input at 8 len 2, out at 64 cap 32)
  fb.I64Const(0).I64Const(4).I64Const(8).I64Const(2).I64Const(64).I64Const(32);
  fb.CallHost(kHostCall).Return();
  auto wire = BuildSingle(fb, {{0, ToBytes(std::string_view("addr"))},
                               {8, ToBytes(std::string_view("in"))}});
  MapHostEnv env;
  env.call_hook = [](ByteView address, ByteView input) -> Result<Bytes> {
    EXPECT_EQ(ToString(address), "addr");
    EXPECT_EQ(ToString(input), "in");
    return ToBytes(std::string_view("result!"));
  };
  CvmVm vm;
  auto result = vm.Execute(wire, "main", {}, &env, NoCacheConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->return_value, 7u);
  EXPECT_EQ(env.call_count, 1);
}

TEST(CvmTest, ModuleCodecRoundTrip) {
  FunctionBuilder fb(1, 2);
  auto l = fb.NewLabel();
  fb.LocalGet(0).BrIf(l);
  fb.I64Const(-5).Return();
  fb.Bind(l);
  fb.I64Const(7).Return();
  ModuleBuilder mb;
  auto idx = mb.AddFunction(fb);
  ASSERT_TRUE(idx.ok());
  mb.Export("f", *idx);
  mb.AddData(10, Bytes{1, 2, 3});
  Module module = mb.Finish();
  Bytes wire = EncodeModule(module);

  auto decoded = DecodeModule(wire, /*fuse=*/false);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->functions.size(), 1u);
  EXPECT_EQ(decoded->functions[0].param_count, 1u);
  EXPECT_EQ(decoded->functions[0].local_count, 2u);
  EXPECT_EQ(decoded->functions[0].code.size(), module.functions[0].code.size());
  EXPECT_EQ(decoded->exports.at("f"), 0u);
  EXPECT_EQ(decoded->data_segments.size(), 1u);
}

TEST(CvmTest, DecodeRejectsCorruptModules) {
  EXPECT_FALSE(DecodeModule(AsByteView("XXXX"), false).ok());

  FunctionBuilder fb(0, 0);
  fb.I64Const(1).Return();
  Bytes wire = BuildSingle(fb);
  Bytes truncated(wire.begin(), wire.end() - 2);
  EXPECT_FALSE(DecodeModule(truncated, false).ok());

  // Local index out of range.
  FunctionBuilder bad(0, 1);
  bad.Emit(Op::kLocalGet, 5).Return();
  EXPECT_FALSE(DecodeModule(BuildSingle(bad), false).ok());
}

TEST(CvmTest, CodeCacheHitsOnRepeatExecution) {
  FunctionBuilder fb(0, 0);
  fb.I64Const(1).Return();
  Bytes wire = BuildSingle(fb);
  MapHostEnv env;
  CvmVm vm;
  ExecConfig config;  // cache on
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(vm.Execute(wire, "main", {}, &env, config).ok());
  }
  auto stats = vm.stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 4u);
}

TEST(CvmTest, UnknownEntryRejected) {
  FunctionBuilder fb(0, 0);
  fb.I64Const(1).Return();
  MapHostEnv env;
  CvmVm vm;
  auto result = vm.Execute(BuildSingle(fb), "missing", {}, &env, NoCacheConfig());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(CvmTest, SelectAndDropAndTee) {
  FunctionBuilder fb(0, 1);
  fb.I64Const(10).I64Const(20).I64Const(1).Emit(Op::kSelect);  // -> 10
  fb.LocalTee(0).Emit(Op::kDrop);
  fb.LocalGet(0).Return();
  MapHostEnv env;
  CvmVm vm;
  auto result = vm.Execute(BuildSingle(fb), "main", {}, &env, NoCacheConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->return_value, 10u);
}

// Property sweep: fusion on/off x cache on/off must agree for a family of
// loop programs.
class CvmConfigSweep : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(CvmConfigSweep, LoopResultStableAcrossConfigs) {
  auto [fusion, cache] = GetParam();
  for (int64_t n : {1, 17, 255}) {
    FunctionBuilder fb(0, 2);
    auto loop = fb.NewLabel();
    auto done = fb.NewLabel();
    fb.Bind(loop);
    fb.LocalGet(1).I64Const(n).Emit(Op::kGeS).BrIf(done);
    fb.LocalGet(0).I64Const(3).Emit(Op::kAdd).LocalSet(0);
    fb.LocalGet(1).I64Const(1).Emit(Op::kAdd).LocalSet(1);
    fb.Br(loop);
    fb.Bind(done);
    fb.LocalGet(0).Return();
    MapHostEnv env;
    CvmVm vm;
    ExecConfig config;
    config.enable_fusion = fusion;
    config.enable_code_cache = cache;
    auto result = vm.Execute(BuildSingle(fb), "main", {}, &env, config);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->return_value, uint64_t(3 * n));
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, CvmConfigSweep,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool()));

}  // namespace
}  // namespace confide::vm::cvm
