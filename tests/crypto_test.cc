#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/aes.h"
#include "crypto/drbg.h"
#include "crypto/gcm.h"
#include "crypto/hmac.h"
#include "crypto/keccak.h"
#include "crypto/merkle.h"
#include "crypto/secp256k1.h"
#include "crypto/sha256.h"

namespace confide::crypto {
namespace {

std::string DigestHex(const Hash256& h) { return HexEncode(HashView(h)); }

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4 known-answer tests)
// ---------------------------------------------------------------------------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestHex(Sha256::Digest(ByteView{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(DigestHex(Sha256::Digest(AsByteView("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(DigestHex(Sha256::Digest(AsByteView(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 ctx;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.Update(AsByteView(chunk));
  EXPECT_EQ(DigestHex(ctx.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Bytes data = Drbg(7).Generate(10000);
  Sha256 ctx;
  // Uneven chunking exercises buffer handling.
  size_t pos = 0;
  size_t sizes[] = {1, 63, 64, 65, 100, 1000};
  int i = 0;
  while (pos < data.size()) {
    size_t n = std::min(sizes[i++ % 6], data.size() - pos);
    ctx.Update(ByteView(data.data() + pos, n));
    pos += n;
  }
  EXPECT_EQ(ctx.Finish(), Sha256::Digest(data));
}

// ---------------------------------------------------------------------------
// Keccak-256 (Ethereum variant known-answer tests)
// ---------------------------------------------------------------------------

TEST(Keccak256Test, EmptyString) {
  EXPECT_EQ(DigestHex(Keccak256::Digest(ByteView{})),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
}

TEST(Keccak256Test, Abc) {
  EXPECT_EQ(DigestHex(Keccak256::Digest(AsByteView("abc"))),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
}

TEST(Keccak256Test, HelloEthereumStyle) {
  // keccak256("hello") — widely used Solidity test value.
  EXPECT_EQ(DigestHex(Keccak256::Digest(AsByteView("hello"))),
            "1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8");
}

TEST(Keccak256Test, LongInputCrossesRateBoundary) {
  // > 136-byte rate to force multiple permutations; incremental == one-shot.
  Bytes data = Drbg(11).Generate(1000);
  Keccak256 ctx;
  ctx.Update(ByteView(data.data(), 137));
  ctx.Update(ByteView(data.data() + 137, data.size() - 137));
  EXPECT_EQ(ctx.Finish(), Keccak256::Digest(data));
}

// ---------------------------------------------------------------------------
// AES (FIPS 197 known-answer tests)
// ---------------------------------------------------------------------------

TEST(AesTest, Fips197Aes128Vector) {
  auto key = *HexDecode("000102030405060708090a0b0c0d0e0f");
  auto pt = *HexDecode("00112233445566778899aabbccddeeff");
  auto aes = Aes::Create(key);
  ASSERT_TRUE(aes.ok());
  uint8_t ct[16];
  aes->EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(ByteView(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
  uint8_t back[16];
  aes->DecryptBlock(ct, back);
  EXPECT_EQ(HexEncode(ByteView(back, 16)), HexEncode(pt));
}

TEST(AesTest, Fips197Aes192Vector) {
  auto key = *HexDecode("000102030405060708090a0b0c0d0e0f1011121314151617");
  auto pt = *HexDecode("00112233445566778899aabbccddeeff");
  auto aes = Aes::Create(key);
  ASSERT_TRUE(aes.ok());
  uint8_t ct[16];
  aes->EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(ByteView(ct, 16)), "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(AesTest, Fips197Aes256Vector) {
  auto key = *HexDecode(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  auto pt = *HexDecode("00112233445566778899aabbccddeeff");
  auto aes = Aes::Create(key);
  ASSERT_TRUE(aes.ok());
  uint8_t ct[16];
  aes->EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(ByteView(ct, 16)), "8ea2b7ca516745bfeafc49904b496089");
  uint8_t back[16];
  aes->DecryptBlock(ct, back);
  EXPECT_EQ(HexEncode(ByteView(back, 16)), HexEncode(pt));
}

TEST(AesTest, RejectsBadKeySize) {
  Bytes key(15, 0);
  EXPECT_FALSE(Aes::Create(key).ok());
}

// ---------------------------------------------------------------------------
// AES-GCM (NIST SP 800-38D test cases)
// ---------------------------------------------------------------------------

TEST(GcmTest, NistTestCase1EmptyPlaintext) {
  Bytes key(16, 0);
  Bytes iv(12, 0);
  auto gcm = AesGcm::Create(key);
  ASSERT_TRUE(gcm.ok());
  auto sealed = gcm->Seal(iv, ByteView{}, ByteView{});
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(HexEncode(*sealed), "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(GcmTest, NistTestCase2SingleBlock) {
  Bytes key(16, 0);
  Bytes iv(12, 0);
  Bytes pt(16, 0);
  auto gcm = AesGcm::Create(key);
  ASSERT_TRUE(gcm.ok());
  auto sealed = gcm->Seal(iv, pt, ByteView{});
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(HexEncode(*sealed),
            "0388dace60b6a392f328c2b971b2fe78"
            "ab6e47d42cec13bdf53a67b21257bddf");
}

TEST(GcmTest, NistTestCase4WithAad) {
  auto key = *HexDecode("feffe9928665731c6d6a8f9467308308");
  auto iv = *HexDecode("cafebabefacedbaddecaf888");
  auto pt = *HexDecode(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  auto aad = *HexDecode("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  auto gcm = AesGcm::Create(key);
  ASSERT_TRUE(gcm.ok());
  auto sealed = gcm->Seal(iv, pt, aad);
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(HexEncode(*sealed),
            "42831ec2217774244b7221b784d0d49c"
            "e3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa05"
            "1ba30b396a0aac973d58e091"
            "5bc94fbc3221a5db94fae95ae7121a47");
}

TEST(GcmTest, RoundTripWithAad) {
  Drbg rng(1);
  Bytes key = rng.Generate(32);
  Bytes iv = rng.Generate(12);
  Bytes pt = rng.Generate(1000);
  Bytes aad = rng.Generate(37);
  auto gcm = AesGcm::Create(key);
  ASSERT_TRUE(gcm.ok());
  auto sealed = gcm->Seal(iv, pt, aad);
  ASSERT_TRUE(sealed.ok());
  auto opened = gcm->Open(iv, *sealed, aad);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, pt);
}

TEST(GcmTest, TamperedCiphertextFails) {
  Drbg rng(2);
  Bytes key = rng.Generate(16);
  Bytes iv = rng.Generate(12);
  Bytes pt = rng.Generate(64);
  auto gcm = AesGcm::Create(key);
  ASSERT_TRUE(gcm.ok());
  auto sealed = gcm->Seal(iv, pt, ByteView{});
  ASSERT_TRUE(sealed.ok());
  (*sealed)[3] ^= 1;
  auto opened = gcm->Open(iv, *sealed, ByteView{});
  EXPECT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsCryptoError());
}

TEST(GcmTest, WrongAadFails) {
  Drbg rng(3);
  Bytes key = rng.Generate(16);
  Bytes iv = rng.Generate(12);
  Bytes pt = rng.Generate(64);
  auto gcm = AesGcm::Create(key);
  ASSERT_TRUE(gcm.ok());
  auto sealed = gcm->Seal(iv, pt, AsByteView("contract-1"));
  ASSERT_TRUE(sealed.ok());
  EXPECT_FALSE(gcm->Open(iv, *sealed, AsByteView("contract-2")).ok());
}

TEST(GcmTest, NonStandardIvLengthSupported) {
  Drbg rng(4);
  Bytes key = rng.Generate(16);
  Bytes iv = rng.Generate(8);  // non-96-bit IV path
  Bytes pt = rng.Generate(33);
  auto gcm = AesGcm::Create(key);
  ASSERT_TRUE(gcm.ok());
  auto sealed = gcm->Seal(iv, pt, ByteView{});
  ASSERT_TRUE(sealed.ok());
  auto opened = gcm->Open(iv, *sealed, ByteView{});
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, pt);
}

TEST(GcmTest, TruncatedInputRejected) {
  Bytes key(16, 0);
  auto gcm = AesGcm::Create(key);
  ASSERT_TRUE(gcm.ok());
  Bytes iv(12, 0);
  Bytes tiny(8, 0);
  EXPECT_FALSE(gcm->Open(iv, tiny, ByteView{}).ok());
}

// ---------------------------------------------------------------------------
// HMAC / HKDF (RFC 4231 / RFC 5869 vectors)
// ---------------------------------------------------------------------------

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  auto mac = HmacSha256(key, AsByteView("Hi There"));
  EXPECT_EQ(DigestHex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  auto mac = HmacSha256(AsByteView("Jefe"),
                        AsByteView("what do ya want for nothing?"));
  EXPECT_EQ(DigestHex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  Bytes key(131, 0xaa);
  auto mac = HmacSha256(
      key, AsByteView("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(DigestHex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HkdfTest, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  auto salt = *HexDecode("000102030405060708090a0b0c");
  auto info = *HexDecode("f0f1f2f3f4f5f6f7f8f9");
  Bytes okm = Hkdf(salt, ikm, info, 42);
  EXPECT_EQ(HexEncode(okm),
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(HkdfTest, ExpandProducesRequestedLength) {
  Hash256 prk = Sha256::Digest(AsByteView("prk"));
  for (size_t len : {1u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ(HkdfExpand(prk, AsByteView("ctx"), len).size(), len);
  }
}

TEST(HkdfTest, DistinctInfoYieldsDistinctKeys) {
  Bytes ikm = Drbg(5).Generate(32);
  Bytes a = Hkdf(ByteView{}, ikm, AsByteView("key-a"), 32);
  Bytes b = Hkdf(ByteView{}, ikm, AsByteView("key-b"), 32);
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------------
// DRBG
// ---------------------------------------------------------------------------

TEST(DrbgTest, DeterministicForSeed) {
  Drbg a(42), b(42);
  EXPECT_EQ(a.Generate(100), b.Generate(100));
}

TEST(DrbgTest, DifferentSeedsDiffer) {
  Drbg a(1), b(2);
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(DrbgTest, BoundedValuesInRange) {
  Drbg rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(DrbgTest, RoughlyUniform) {
  Drbg rng(9);
  int buckets[8] = {0};
  const int kDraws = 8000;
  for (int i = 0; i < kDraws; ++i) buckets[rng.NextBounded(8)]++;
  for (int b = 0; b < 8; ++b) {
    EXPECT_GT(buckets[b], kDraws / 8 / 2);
    EXPECT_LT(buckets[b], kDraws / 8 * 2);
  }
}

// ---------------------------------------------------------------------------
// secp256k1
// ---------------------------------------------------------------------------

TEST(Secp256k1Test, GeneratedKeyPairIsValid) {
  Drbg rng(100);
  KeyPair kp = GenerateKeyPair(&rng);
  EXPECT_TRUE(IsValidPublicKey(kp.pub));
  auto derived = DerivePublicKey(kp.priv);
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ(*derived, kp.pub);
}

TEST(Secp256k1Test, KnownScalarOnePublicKeyIsG) {
  PrivateKey one{};
  one[31] = 1;
  auto pub = DerivePublicKey(one);
  ASSERT_TRUE(pub.ok());
  EXPECT_EQ(HexEncode(ByteView(pub->data(), 32)),
            "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
  EXPECT_EQ(HexEncode(ByteView(pub->data() + 32, 32)),
            "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");
}

TEST(Secp256k1Test, KnownScalarTwoMatchesDoubleG) {
  PrivateKey two{};
  two[31] = 2;
  auto pub = DerivePublicKey(two);
  ASSERT_TRUE(pub.ok());
  // 2G, a standard test value.
  EXPECT_EQ(HexEncode(ByteView(pub->data(), 32)),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
}

TEST(Secp256k1Test, SignVerifyRoundTrip) {
  Drbg rng(101);
  KeyPair kp = GenerateKeyPair(&rng);
  Hash256 digest = Sha256::Digest(AsByteView("confidential transaction"));
  auto sig = EcdsaSign(kp.priv, digest);
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(EcdsaVerify(kp.pub, digest, *sig));
}

TEST(Secp256k1Test, SignatureIsDeterministic) {
  Drbg rng(102);
  KeyPair kp = GenerateKeyPair(&rng);
  Hash256 digest = Sha256::Digest(AsByteView("msg"));
  auto s1 = EcdsaSign(kp.priv, digest);
  auto s2 = EcdsaSign(kp.priv, digest);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ(*s1, *s2);
}

TEST(Secp256k1Test, WrongMessageFailsVerification) {
  Drbg rng(103);
  KeyPair kp = GenerateKeyPair(&rng);
  Hash256 digest = Sha256::Digest(AsByteView("original"));
  auto sig = EcdsaSign(kp.priv, digest);
  ASSERT_TRUE(sig.ok());
  Hash256 other = Sha256::Digest(AsByteView("tampered"));
  EXPECT_FALSE(EcdsaVerify(kp.pub, other, *sig));
}

TEST(Secp256k1Test, WrongKeyFailsVerification) {
  Drbg rng(104);
  KeyPair kp1 = GenerateKeyPair(&rng);
  KeyPair kp2 = GenerateKeyPair(&rng);
  Hash256 digest = Sha256::Digest(AsByteView("msg"));
  auto sig = EcdsaSign(kp1.priv, digest);
  ASSERT_TRUE(sig.ok());
  EXPECT_FALSE(EcdsaVerify(kp2.pub, digest, *sig));
}

TEST(Secp256k1Test, CorruptedSignatureFails) {
  Drbg rng(105);
  KeyPair kp = GenerateKeyPair(&rng);
  Hash256 digest = Sha256::Digest(AsByteView("msg"));
  auto sig = EcdsaSign(kp.priv, digest);
  ASSERT_TRUE(sig.ok());
  Signature bad = *sig;
  bad[10] ^= 0xff;
  EXPECT_FALSE(EcdsaVerify(kp.pub, digest, bad));
}

TEST(Secp256k1Test, EcdhIsCommutative) {
  Drbg rng(106);
  KeyPair alice = GenerateKeyPair(&rng);
  KeyPair bob = GenerateKeyPair(&rng);
  auto s1 = EcdhSharedSecret(alice.priv, bob.pub);
  auto s2 = EcdhSharedSecret(bob.priv, alice.pub);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ(*s1, *s2);
}

TEST(Secp256k1Test, EcdhDiffersAcrossPeers) {
  Drbg rng(107);
  KeyPair alice = GenerateKeyPair(&rng);
  KeyPair bob = GenerateKeyPair(&rng);
  KeyPair carol = GenerateKeyPair(&rng);
  auto ab = EcdhSharedSecret(alice.priv, bob.pub);
  auto ac = EcdhSharedSecret(alice.priv, carol.pub);
  ASSERT_TRUE(ab.ok() && ac.ok());
  EXPECT_NE(*ab, *ac);
}

TEST(Secp256k1Test, InvalidPublicKeyRejected) {
  PublicKey junk{};
  junk.fill(0xab);
  EXPECT_FALSE(IsValidPublicKey(junk));
  PrivateKey priv{};
  priv[31] = 5;
  EXPECT_FALSE(EcdhSharedSecret(priv, junk).ok());
}

TEST(Secp256k1Test, ZeroPrivateKeyRejected) {
  PrivateKey zero{};
  EXPECT_FALSE(DerivePublicKey(zero).ok());
}

TEST(Secp256k1Test, AddressIsLast20BytesOfKeccak) {
  Drbg rng(108);
  KeyPair kp = GenerateKeyPair(&rng);
  auto addr = PublicKeyToAddress(kp.pub);
  Hash256 h = Keccak256::Digest(ByteView(kp.pub.data(), kp.pub.size()));
  EXPECT_EQ(0, std::memcmp(addr.data(), h.data() + 12, 20));
}

// ---------------------------------------------------------------------------
// Merkle tree
// ---------------------------------------------------------------------------

TEST(MerkleTest, SingleLeafRootIsLeafHash) {
  std::vector<Bytes> leaves = {ToBytes(std::string_view("tx1"))};
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.Root(), MerkleTree::HashLeaf(AsByteView("tx1")));
}

TEST(MerkleTest, ProofVerifiesForEveryLeaf) {
  for (size_t n : {1u, 2u, 3u, 4u, 5u, 8u, 13u}) {
    std::vector<Bytes> leaves;
    for (size_t i = 0; i < n; ++i) {
      leaves.push_back(ToBytes(std::string_view("leaf-" + std::to_string(i))));
    }
    MerkleTree tree(leaves);
    for (size_t i = 0; i < n; ++i) {
      auto proof = tree.Prove(i);
      ASSERT_TRUE(proof.ok());
      EXPECT_TRUE(MerkleTree::Verify(tree.Root(), leaves[i], *proof))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(MerkleTest, WrongLeafFailsProof) {
  std::vector<Bytes> leaves = {ToBytes(std::string_view("a")),
                               ToBytes(std::string_view("b")),
                               ToBytes(std::string_view("c"))};
  MerkleTree tree(leaves);
  auto proof = tree.Prove(1);
  ASSERT_TRUE(proof.ok());
  EXPECT_FALSE(MerkleTree::Verify(tree.Root(), AsByteView("x"), *proof));
}

TEST(MerkleTest, DifferentLeavesDifferentRoots) {
  MerkleTree t1({ToBytes(std::string_view("a")), ToBytes(std::string_view("b"))});
  MerkleTree t2({ToBytes(std::string_view("a")), ToBytes(std::string_view("c"))});
  EXPECT_NE(t1.Root(), t2.Root());
}

TEST(MerkleTest, OutOfRangeProofRejected) {
  MerkleTree tree({ToBytes(std::string_view("only"))});
  EXPECT_FALSE(tree.Prove(1).ok());
}

TEST(MerkleTest, LeafNodeDomainSeparation) {
  // A leaf equal to an interior-node preimage must not collide.
  Hash256 l = MerkleTree::HashLeaf(AsByteView("data"));
  Hash256 i = MerkleTree::HashInterior(l, l);
  EXPECT_NE(l, i);
}

}  // namespace
}  // namespace confide::crypto
