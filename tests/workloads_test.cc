#include <gtest/gtest.h>

#include "confide/system.h"
#include "crypto/keccak.h"
#include "lang/compiler.h"
#include "serialize/flatlite.h"
#include "serialize/rlp.h"
#include "workloads/workloads.h"

namespace confide::workloads {
namespace {

using chain::NamedAddress;

Bytes DeployPayload(chain::VmKind vm, const Bytes& code) {
  std::vector<serialize::RlpItem> items;
  items.push_back(serialize::RlpItem::U64(uint64_t(vm)));
  items.push_back(serialize::RlpItem(code));
  return serialize::RlpEncode(serialize::RlpItem::List(std::move(items)));
}

class WorkloadsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::SystemOptions options;
    options.seed = 300;
    options.block_max_bytes = 64 * 1024;  // keep whole batches in one block
    auto sys = core::ConfideSystem::BootstrapFirst(options);
    ASSERT_TRUE(sys.ok()) << sys.status().ToString();
    sys_ = std::move(*sys);
    client_ = std::make_unique<core::Client>(700, sys_->pk_tx());
  }

  // Deploys a CCL contract confidentially at a named address.
  void Deploy(const std::string& name, const char* source) {
    auto code = lang::Compile(source, lang::VmTarget::kCvm);
    ASSERT_TRUE(code.ok()) << name << ": " << code.status().ToString();
    auto tx = client_->MakeConfidentialTx(
        NamedAddress(name), "__deploy__", DeployPayload(chain::VmKind::kCvm, *code));
    ASSERT_TRUE(tx.ok());
    ASSERT_TRUE(sys_->node()->SubmitTransaction(tx->tx).ok());
    auto receipts = sys_->RunToCompletion();
    ASSERT_TRUE(receipts.ok());
    for (const auto& receipt : *receipts) {
      ASSERT_TRUE(receipt.success) << name << ": " << receipt.status_message;
    }
  }

  // Calls an entry confidentially; returns the opened receipt.
  chain::Receipt Call(const std::string& name, const std::string& entry,
                      Bytes input) {
    auto tx = client_->MakeConfidentialTx(NamedAddress(name), entry, std::move(input));
    EXPECT_TRUE(tx.ok());
    EXPECT_TRUE(sys_->node()->SubmitTransaction(tx->tx).ok());
    auto receipts = sys_->RunToCompletion();
    EXPECT_TRUE(receipts.ok());
    EXPECT_EQ(receipts->size(), 1u);
    EXPECT_TRUE((*receipts)[0].success) << (*receipts)[0].status_message;
    if (!(*receipts)[0].success) return chain::Receipt{};
    auto opened = core::Client::OpenSealedReceipt(tx->k_tx, (*receipts)[0].output);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    return opened.ok() ? *opened : chain::Receipt{};
  }

  std::unique_ptr<core::ConfideSystem> sys_;
  std::unique_ptr<core::Client> client_;
  crypto::Drbg rng_{99};
};

TEST_F(WorkloadsTest, SyntheticContractsCompileForBothVms) {
  EXPECT_TRUE(lang::Compile(SyntheticContractSource(), lang::VmTarget::kCvm).ok());
  EXPECT_TRUE(lang::Compile(SyntheticContractSource(), lang::VmTarget::kEvm).ok());
  EXPECT_TRUE(lang::Compile(AbsContractSource(), lang::VmTarget::kCvm).ok());
  for (const auto& [name, source] : ScfArContracts()) {
    EXPECT_TRUE(lang::Compile(source, lang::VmTarget::kCvm).ok()) << name;
  }
}

TEST_F(WorkloadsTest, StringConcatStoresJoinedResult) {
  Deploy("synthetic", SyntheticContractSource());
  Bytes input = MakeStringConcatInput(&rng_);
  chain::Receipt receipt = Call("synthetic", "string_concat", input);
  EXPECT_EQ(receipt.output.size(), 16u);
}

TEST_F(WorkloadsTest, ENotesDepositStores4KPayload) {
  Deploy("synthetic", SyntheticContractSource());
  Bytes input = MakeENotesInput(&rng_);
  ASSERT_EQ(input.size(), 10u + 4096u);
  Call("synthetic", "enotes_deposit", input);
  // The note is stored (sealed) under enote:<id>.
  std::string key = "enote:" + ToString(ByteView(input.data(), 10));
  auto raw = sys_->node()->state()->Get(NamedAddress("synthetic"), AsByteView(key));
  ASSERT_TRUE(raw.ok());
  EXPECT_GT(raw->size(), 4096u);  // sealed: IV + tag overhead
}

TEST_F(WorkloadsTest, CryptoHashProducesRealDigest) {
  Deploy("synthetic", SyntheticContractSource());
  Bytes input = MakeCryptoHashInput(&rng_);
  chain::Receipt receipt = Call("synthetic", "crypto_hash", input);
  ASSERT_EQ(receipt.output.size(), 32u);
  // Mirror the contract's digest chaining host-side.
  Bytes msg = input;
  crypto::Hash256 d{};
  for (int i = 0; i < 100; ++i) {
    d = crypto::Sha256::Digest(msg);
    std::copy(d.begin(), d.end(), msg.begin());
    d = crypto::Keccak256::Digest(msg);
    std::copy(d.begin(), d.end(), msg.begin() + 16);
  }
  EXPECT_EQ(HexEncode(receipt.output), HexEncode(crypto::HashView(d)));
}

TEST_F(WorkloadsTest, JsonParseExtractsFields) {
  Deploy("synthetic", SyntheticContractSource());
  Bytes input = MakeJsonParseInput(&rng_);
  chain::Receipt receipt = Call("synthetic", "json_parse", input);
  EXPECT_TRUE(ToString(receipt.output).rfind("bank-", 0) == 0)
      << ToString(receipt.output);
}

TEST_F(WorkloadsTest, AbsTransferFlatAndJsonAgree) {
  Deploy("abs", AbsContractSource());
  Call("abs", "abs_seed_whitelist", Bytes{});

  Bytes flat = MakeAbsAssetFlat(&rng_, 1);
  chain::Receipt flat_receipt = Call("abs", "abs_transfer", flat);
  ASSERT_EQ(flat_receipt.output.size(), 8u);

  Bytes json = MakeAbsAssetJson(&rng_, 2);
  chain::Receipt json_receipt = Call("abs", "abs_transfer_json", json);
  ASSERT_EQ(json_receipt.output.size(), 8u);

  // Both records are stored.
  auto a1 = sys_->node()->state()->Get(NamedAddress("abs"), AsByteView("asset:ar-1"));
  auto a2 = sys_->node()->state()->Get(NamedAddress("abs"), AsByteView("asset:ar-2"));
  EXPECT_TRUE(a1.ok());
  EXPECT_TRUE(a2.ok());
}

TEST_F(WorkloadsTest, AbsTransferRejectsUnlistedInstitution) {
  Deploy("abs", AbsContractSource());
  Call("abs", "abs_seed_whitelist", Bytes{});
  serialize::FlatLiteBuilder builder(10);
  builder.SetString(0, "ar-x");
  builder.SetString(1, "shady-bank");  // not whitelisted
  builder.SetString(2, "monthly");
  builder.SetString(3, "receivable");
  builder.SetU64(4, 50'000);
  builder.SetU64(5, 100);
  builder.SetU64(6, 12);
  builder.SetString(7, "d");
  builder.SetString(8, "c");
  builder.SetBytes(9, Bytes(16, 0));

  auto tx = client_->MakeConfidentialTx(NamedAddress("abs"), "abs_transfer",
                                        builder.Finish());
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(sys_->node()->SubmitTransaction(tx->tx).ok());
  auto receipts = sys_->RunToCompletion();
  ASSERT_TRUE(receipts.ok());
  ASSERT_EQ(receipts->size(), 1u);
  EXPECT_FALSE((*receipts)[0].success);  // abort(1) inside the contract
}

TEST_F(WorkloadsTest, ScfArFullFlowMatchesTable1Shape) {
  for (const auto& [name, source] : ScfArContracts()) {
    Deploy(name, source);
  }
  // Seed policies, accounts and the certificate.
  Call("scf.manager", "seed", Bytes{});
  Call("scf.fee", "seed", Bytes{});
  Call("scf.account", "seed", ToBytes(std::string_view("supplier-alpha")));
  Call("scf.account", "seed", ToBytes(std::string_view("bank-one")));
  Call("scf.asset", "seed", ToBytes(std::string_view("ar-cert-0\nsupplier-alpha")));

  // Run one transfer and profile it via the enclave's op counters.
  Bytes input = MakeScfTransferInput(&rng_, 0);
  auto tx = client_->MakeConfidentialTx(NamedAddress("scf.gateway"), "transfer",
                                        input);
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(sys_->node()->SubmitTransaction(tx->tx).ok());
  ASSERT_TRUE(sys_->node()->PreVerify().ok());
  auto block = sys_->node()->ProposeBlock();
  ASSERT_TRUE(block.ok());
  auto receipts = sys_->node()->ApplyBlock(*block);
  ASSERT_TRUE(receipts.ok());
  ASSERT_TRUE((*receipts)[0].success) << (*receipts)[0].status_message;

  auto opened = core::Client::OpenSealedReceipt(tx->k_tx, (*receipts)[0].output);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->output.size(), 8u);  // net amount after fees

  // Table 1 shape: tens of contract calls, ~an order more GetStorage than
  // SetStorage, single-digit sets.
  // (Exact counts are printed by bench_table1_scfar.)
}

TEST_F(WorkloadsTest, ScfArRejectsUnknownAccount) {
  for (const auto& [name, source] : ScfArContracts()) {
    Deploy(name, source);
  }
  Call("scf.manager", "seed", Bytes{});
  Call("scf.fee", "seed", Bytes{});
  // No account seeding: check() fails -> manager abort(3).
  auto tx = client_->MakeConfidentialTx(
      NamedAddress("scf.gateway"), "transfer",
      ToBytes(std::string_view("ar-cert-0\nghost\nbank-one\n5000")));
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(sys_->node()->SubmitTransaction(tx->tx).ok());
  auto receipts = sys_->RunToCompletion();
  ASSERT_TRUE(receipts.ok());
  EXPECT_FALSE((*receipts)[0].success);
}

}  // namespace
}  // namespace confide::workloads
