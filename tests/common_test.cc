#include <gtest/gtest.h>

#include <string>

#include "common/bytes.h"
#include "common/lru.h"
#include "common/sim_clock.h"
#include "common/status.h"

namespace confide {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing key");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NotFound: missing key");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kNotImplemented); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Corruption("bad bytes");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(std::move(r).ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto f = []() -> Result<int> { return 7; };
  auto g = [&]() -> Result<int> {
    CONFIDE_ASSIGN_OR_RETURN(int v, f());
    return v * 2;
  };
  ASSERT_TRUE(g().ok());
  EXPECT_EQ(*g(), 14);

  auto bad = []() -> Result<int> { return Status::Internal("boom"); };
  auto h = [&]() -> Result<int> {
    CONFIDE_ASSIGN_OR_RETURN(int v, bad());
    return v;
  };
  EXPECT_FALSE(h().ok());
  EXPECT_EQ(h().status().code(), StatusCode::kInternal);
}

TEST(BytesTest, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff};
  std::string hex = HexEncode(data);
  EXPECT_EQ(hex, "0001abff");
  auto decoded = HexDecode(hex);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, data);
}

TEST(BytesTest, HexDecodeAccepts0xPrefixAndUppercase) {
  auto decoded = HexDecode("0xABCD");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, (Bytes{0xab, 0xcd}));
}

TEST(BytesTest, HexDecodeRejectsBadInput) {
  EXPECT_FALSE(HexDecode("abc").ok());   // odd length
  EXPECT_FALSE(HexDecode("zz").ok());    // non-hex
}

TEST(BytesTest, ConcatJoinsViews) {
  Bytes a = {1, 2};
  Bytes b = {3};
  Bytes c = Concat(a, b, AsByteView("x"));
  EXPECT_EQ(c, (Bytes{1, 2, 3, 'x'}));
}

TEST(BytesTest, ConstantTimeEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, ByteView(a.data(), 2)));
}

TEST(BytesTest, StringConversions) {
  std::string s = "hello";
  Bytes b = ToBytes(s);
  EXPECT_EQ(ToString(b), s);
}

TEST(BytesTest, SecureZeroClears) {
  Bytes secret = {9, 9, 9, 9};
  SecureZero(&secret);
  EXPECT_EQ(secret, (Bytes{0, 0, 0, 0}));
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.NowNs(), 0u);
  clock.AdvanceNs(100);
  clock.AdvanceNs(50);
  EXPECT_EQ(clock.NowNs(), 150u);
  clock.Reset();
  EXPECT_EQ(clock.NowNs(), 0u);
}

TEST(SimClockTest, CyclesConvertAtPaperFrequency) {
  SimClock clock;
  clock.AdvanceCycles(3700);  // 3700 cycles @ 3.7 GHz = 1000 ns
  EXPECT_EQ(clock.NowNs(), 1000u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  LruCache<std::string, int> cache(2);
  cache.Put("a", 1);
  cache.Put("b", 2);
  cache.Put("c", 3);  // evicts "a"
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Get("a"), nullptr);
  ASSERT_NE(cache.Get("b"), nullptr);
  EXPECT_EQ(*cache.Get("c"), 3);
}

TEST(LruCacheTest, GetRefreshesRecencyButPeekDoesNot) {
  LruCache<std::string, int> cache(2);
  cache.Put("a", 1);
  cache.Put("b", 2);
  ASSERT_NE(cache.Get("a"), nullptr);  // "b" is now LRU
  cache.Put("c", 3);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);

  cache.Put("d", 4);  // "c" was LRU despite the Put order...
  EXPECT_EQ(cache.Get("c"), nullptr);

  LruCache<std::string, int> peeked(2);
  peeked.Put("a", 1);
  peeked.Put("b", 2);
  ASSERT_NE(peeked.Peek("a"), nullptr);  // no recency update
  peeked.Put("c", 3);
  EXPECT_EQ(peeked.Get("a"), nullptr);  // "a" still evicted first
}

TEST(LruCacheTest, PutOverwritesInPlaceAndEraseRemoves) {
  LruCache<std::string, int> cache(4);
  cache.Put("k", 1);
  cache.Put("k", 2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.Get("k"), 2);
  EXPECT_TRUE(cache.Erase("k"));
  EXPECT_FALSE(cache.Erase("k"));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get("k"), nullptr);
}

TEST(LruCacheTest, ZeroCapacityCoercedToOne) {
  LruCache<int, int> cache(0);
  EXPECT_EQ(cache.capacity(), 1u);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(2), 20);
}

}  // namespace
}  // namespace confide
