#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "common/bounded_queue.h"
#include "common/bytes.h"
#include "common/lru.h"
#include "common/retry.h"
#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "common/status.h"

namespace confide {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing key");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NotFound: missing key");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kNotImplemented); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Corruption("bad bytes");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(std::move(r).ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto f = []() -> Result<int> { return 7; };
  auto g = [&]() -> Result<int> {
    CONFIDE_ASSIGN_OR_RETURN(int v, f());
    return v * 2;
  };
  ASSERT_TRUE(g().ok());
  EXPECT_EQ(*g(), 14);

  auto bad = []() -> Result<int> { return Status::Internal("boom"); };
  auto h = [&]() -> Result<int> {
    CONFIDE_ASSIGN_OR_RETURN(int v, bad());
    return v;
  };
  EXPECT_FALSE(h().ok());
  EXPECT_EQ(h().status().code(), StatusCode::kInternal);
}

TEST(BytesTest, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff};
  std::string hex = HexEncode(data);
  EXPECT_EQ(hex, "0001abff");
  auto decoded = HexDecode(hex);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, data);
}

TEST(BytesTest, HexDecodeAccepts0xPrefixAndUppercase) {
  auto decoded = HexDecode("0xABCD");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, (Bytes{0xab, 0xcd}));
}

TEST(BytesTest, HexDecodeRejectsBadInput) {
  EXPECT_FALSE(HexDecode("abc").ok());   // odd length
  EXPECT_FALSE(HexDecode("zz").ok());    // non-hex
}

TEST(BytesTest, ConcatJoinsViews) {
  Bytes a = {1, 2};
  Bytes b = {3};
  Bytes c = Concat(a, b, AsByteView("x"));
  EXPECT_EQ(c, (Bytes{1, 2, 3, 'x'}));
}

TEST(BytesTest, ConstantTimeEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, ByteView(a.data(), 2)));
}

TEST(BytesTest, StringConversions) {
  std::string s = "hello";
  Bytes b = ToBytes(s);
  EXPECT_EQ(ToString(b), s);
}

TEST(BytesTest, SecureZeroClears) {
  Bytes secret = {9, 9, 9, 9};
  SecureZero(&secret);
  EXPECT_EQ(secret, (Bytes{0, 0, 0, 0}));
}

TEST(ArenaTest, DupViewsStayStableAcrossManyAllocations) {
  Arena arena(64);  // small blocks to force chaining
  std::vector<ByteView> views;
  std::vector<Bytes> originals;
  for (int i = 0; i < 200; ++i) {
    originals.push_back(Bytes(size_t(1 + i % 50), uint8_t(i)));
    views.push_back(arena.Dup(originals.back()));
  }
  // Blocks are chained, never reallocated: every earlier view must still
  // read back its bytes after 200 further allocations.
  ASSERT_GT(arena.block_count(), 1u);
  for (size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(ToBytes(views[i]), originals[i]) << "view " << i;
  }
}

TEST(ArenaTest, DupStringAndEmptyAndOversized) {
  Arena arena(32);
  std::string_view s = arena.DupString("hello arena");
  EXPECT_EQ(s, "hello arena");

  EXPECT_TRUE(arena.Dup(ByteView{}).empty());  // no allocation for empty

  // Oversized request gets a dedicated block rather than failing.
  Bytes big(1000, 0x5A);
  ByteView v = arena.Dup(big);
  EXPECT_EQ(ToBytes(v), big);
}

TEST(ArenaTest, ResetDropsUsageAndReusesCleanly) {
  Arena arena;
  arena.Dup(Bytes(100, 1));
  EXPECT_EQ(arena.bytes_used(), 100u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.block_count(), 0u);
  ByteView v = arena.Dup(Bytes(3, 7));
  EXPECT_EQ(ToBytes(v), Bytes(3, 7));
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.NowNs(), 0u);
  clock.AdvanceNs(100);
  clock.AdvanceNs(50);
  EXPECT_EQ(clock.NowNs(), 150u);
  clock.Reset();
  EXPECT_EQ(clock.NowNs(), 0u);
}

TEST(SimClockTest, CyclesConvertAtPaperFrequency) {
  SimClock clock;
  clock.AdvanceCycles(3700);  // 3700 cycles @ 3.7 GHz = 1000 ns
  EXPECT_EQ(clock.NowNs(), 1000u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  LruCache<std::string, int> cache(2);
  cache.Put("a", 1);
  cache.Put("b", 2);
  cache.Put("c", 3);  // evicts "a"
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Get("a"), nullptr);
  ASSERT_NE(cache.Get("b"), nullptr);
  EXPECT_EQ(*cache.Get("c"), 3);
}

TEST(LruCacheTest, GetRefreshesRecencyButPeekDoesNot) {
  LruCache<std::string, int> cache(2);
  cache.Put("a", 1);
  cache.Put("b", 2);
  ASSERT_NE(cache.Get("a"), nullptr);  // "b" is now LRU
  cache.Put("c", 3);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);

  cache.Put("d", 4);  // "c" was LRU despite the Put order...
  EXPECT_EQ(cache.Get("c"), nullptr);

  LruCache<std::string, int> peeked(2);
  peeked.Put("a", 1);
  peeked.Put("b", 2);
  ASSERT_NE(peeked.Peek("a"), nullptr);  // no recency update
  peeked.Put("c", 3);
  EXPECT_EQ(peeked.Get("a"), nullptr);  // "a" still evicted first
}

TEST(LruCacheTest, PutOverwritesInPlaceAndEraseRemoves) {
  LruCache<std::string, int> cache(4);
  cache.Put("k", 1);
  cache.Put("k", 2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.Get("k"), 2);
  EXPECT_TRUE(cache.Erase("k"));
  EXPECT_FALSE(cache.Erase("k"));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get("k"), nullptr);
}

TEST(LruCacheTest, ZeroCapacityCoercedToOne) {
  LruCache<int, int> cache(0);
  EXPECT_EQ(cache.capacity(), 1u);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(2), 20);
}


TEST(ThreadPoolTest, SubmitRunsTasksAndWaits) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<void> f =
      pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker that threw must survive for later tasks.
  std::atomic<bool> ok{false};
  pool.Submit([&ok] { ok = true; }).get();
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      (void)pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
    }
    // Destructor must run every queued task, not drop them.
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, RunOnWorkersRunsInlineAndOnHelpers) {
  ThreadPool pool(3);
  std::atomic<int> calls{0};
  pool.RunOnWorkers(3, [&calls] { calls.fetch_add(1); });
  // The caller always runs the function inline; helpers are best-effort
  // but on an idle pool all of them should have started.
  EXPECT_GE(calls.load(), 1);
  EXPECT_LE(calls.load(), 4);
}

TEST(ThreadPoolTest, RunOnWorkersPropagatesInlineException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.RunOnWorkers(2, [] { throw std::runtime_error("worker failed"); }),
      std::runtime_error);
}

TEST(ThreadPoolTest, NestedRunOnWorkersDoesNotDeadlock) {
  // A pool task may itself fan out on the same pool (the executor does
  // this when called from a pipeline stage): saturated helpers degrade
  // to inline execution instead of waiting for a free worker.
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  pool.Submit([&] {
        pool.RunOnWorkers(2, [&inner] { inner.fetch_add(1); });
      })
      .get();
  EXPECT_GE(inner.load(), 1);
}

TEST(BoundedQueueTest, PushPopInOrder) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(q.Push(&v));
  }
  EXPECT_EQ(q.Size(), 4u);
  for (int i = 0; i < 4; ++i) {
    int out = -1;
    EXPECT_TRUE(q.Pop(&out));
    EXPECT_EQ(out, i);
  }
}

TEST(BoundedQueueTest, PushBlocksUntilPopAtCapacity) {
  BoundedQueue<int> q(1);
  int first = 1;
  ASSERT_TRUE(q.Push(&first));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    int second = 2;
    q.Push(&second);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(pushed.load());  // still blocked on the full queue
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 2);
}

TEST(BoundedQueueTest, CloseDrainsRemainingItemsFirst) {
  BoundedQueue<int> q(4);
  int v = 7;
  ASSERT_TRUE(q.Push(&v));
  q.Close();
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));  // queued item still delivered
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(q.Pop(&out));  // closed and drained
}

TEST(BoundedQueueTest, PushOnClosedQueueLeavesItemIntact) {
  BoundedQueue<std::string> q(2);
  q.Close();
  std::string item = "keep-me";
  EXPECT_FALSE(q.Push(&item));
  // The pipeline unwind re-queues rejected items, so Push must not have
  // moved from it.
  EXPECT_EQ(item, "keep-me");
}


// ---------------------------------------------------------------------------
// RetryPolicy
// ---------------------------------------------------------------------------

TEST(RetryPolicyTest, FirstAttemptSuccessChargesNoBackoff) {
  SimClock clock;
  common::RetryPolicy retry(common::RetryOptions{}, &clock);
  Status status = retry.Run("noop", [] { return Status::OK(); });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(retry.LastAttempts(), 1u);
  EXPECT_EQ(retry.LastBackoffNs(), 0u);
  EXPECT_EQ(clock.NowNs(), 0u);
}

TEST(RetryPolicyTest, ExponentialBackoffChargedToClock) {
  SimClock clock;
  common::RetryOptions options;
  options.max_attempts = 4;
  options.base_backoff_ns = 1'000;
  options.multiplier = 2.0;
  common::RetryPolicy retry(options, &clock);
  int calls = 0;
  Status status = retry.Run("always-fails", [&] {
    ++calls;
    return Status::Unavailable("nope");
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(retry.LastAttempts(), 4u);
  // Backoffs before attempts 2..4: 1000 + 2000 + 4000.
  EXPECT_EQ(clock.NowNs(), 7'000u);
  EXPECT_EQ(retry.LastBackoffNs(), 7'000u);
}

TEST(RetryPolicyTest, SucceedsAfterTransientFailures) {
  SimClock clock;
  common::RetryOptions options;
  options.max_attempts = 5;
  options.base_backoff_ns = 100;
  common::RetryPolicy retry(options, &clock);
  int calls = 0;
  Status status = retry.Run("flaky", [&] {
    return ++calls < 3 ? Status::Unavailable("transient") : Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(retry.LastAttempts(), 3u);
}

TEST(RetryPolicyTest, NonRetryablePredicateStopsImmediately) {
  SimClock clock;
  common::RetryPolicy retry(common::RetryOptions{}, &clock);
  int calls = 0;
  Status status = retry.Run(
      "permanent",
      [&] {
        ++calls;
        return Status::PermissionDenied("forged");
      },
      [](const Status& s) { return s.code() == StatusCode::kUnavailable; });
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(calls, 1);  // a non-retryable error burns no further attempts
  EXPECT_EQ(clock.NowNs(), 0u);
}

TEST(RetryPolicyTest, JitterNeverUndershootsNominal) {
  common::RetryOptions options;
  options.base_backoff_ns = 1'000;
  options.jitter = 0.5;
  options.seed = 42;
  common::RetryPolicy retry(options);
  for (int draw = 0; draw < 32; ++draw) {
    uint64_t delay = retry.BackoffNs(1);
    // Additive jitter: nominal <= delay < nominal * (1 + jitter).
    EXPECT_GE(delay, 1'000u);
    EXPECT_LT(delay, 1'500u);
  }
}

TEST(RetryPolicyTest, FixedSeedGivesIdenticalDelaySequence) {
  common::RetryOptions options;
  options.base_backoff_ns = 1'000;
  options.jitter = 1.0;
  options.seed = 7;
  common::RetryPolicy a(options);
  common::RetryPolicy b(options);
  for (uint32_t attempt = 1; attempt < 6; ++attempt) {
    EXPECT_EQ(a.BackoffNs(attempt), b.BackoffNs(attempt));
  }
}

TEST(RetryPolicyTest, DeadlineCapsAccumulatedBackoff) {
  SimClock clock;
  common::RetryOptions options;
  options.max_attempts = 10;
  options.base_backoff_ns = 1'000;
  options.multiplier = 2.0;
  options.deadline_ns = 3'500;
  common::RetryPolicy retry(options, &clock);
  Status status = retry.Run("budgeted", [] { return Status::Unavailable("x"); });
  EXPECT_FALSE(status.ok());
  // Waits 1000 and 2000 fit the 3500 budget; the next 4000 would not.
  EXPECT_EQ(retry.LastAttempts(), 3u);
  EXPECT_EQ(clock.NowNs(), 3'000u);
}

}  // namespace
}  // namespace confide
