#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string_view>

#include "common/crc32.h"
#include "common/endian.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "crypto/drbg.h"
#include "storage/block_store.h"
#include "storage/bloom.h"
#include "storage/cache.h"
#include "storage/lsm_store.h"
#include "storage/memtable.h"
#include "storage/sstable.h"
#include "storage/wal.h"

namespace confide::storage {
namespace {

LsmOptions VolatileOptions() {
  LsmOptions options;
  options.memtable_flush_bytes = 1 << 20;
  return options;
}

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926, the classic check value.
  EXPECT_EQ(Crc32(AsByteView("123456789")), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32(ByteView{}), 0u); }

// ---------------------------------------------------------------------------
// MemTable
// ---------------------------------------------------------------------------

TEST(MemTableTest, PutGetOverwrite) {
  MemTable mem;
  mem.Put("a", ToBytes(std::string_view("1")));
  mem.Put("b", ToBytes(std::string_view("2")));
  mem.Put("a", ToBytes(std::string_view("3")));
  Lookup a = mem.Get("a");
  ASSERT_EQ(a.state, LookupState::kFoundValue);
  EXPECT_EQ(ToString(*a.value), "3");
  EXPECT_EQ(mem.entry_count(), 2u);
  EXPECT_EQ(mem.Get("zzz").state, LookupState::kNotFound);
}

TEST(MemTableTest, TombstoneIsDistinctFromAbsent) {
  MemTable mem;
  mem.Put("gone", std::nullopt);
  Lookup hit = mem.Get("gone");
  EXPECT_TRUE(hit.found());  // key is present...
  EXPECT_EQ(hit.state, LookupState::kFoundTombstone);  // ...as a tombstone
  EXPECT_EQ(hit.value, nullptr);
}

TEST(MemTableTest, ForEachVisitsInKeyOrder) {
  MemTable mem;
  crypto::Drbg rng(3);
  for (int i = 0; i < 500; ++i) {
    mem.Put("key-" + std::to_string(rng.NextBounded(1000)),
            ToBytes(std::string_view("v")));
  }
  std::string prev;
  bool first = true;
  mem.ForEach([&](const std::string& key, const std::optional<Bytes>&) {
    if (!first) EXPECT_LT(prev, key);
    prev = key;
    first = false;
  });
}

// ---------------------------------------------------------------------------
// WAL
// ---------------------------------------------------------------------------

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "confide_wal_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "test.wal").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(WalTest, AppendAndReplay) {
  {
    auto wal = Wal::Open(path_);
    ASSERT_TRUE(wal.ok());
    WriteBatch b1;
    b1.Put("k1", ToBytes(std::string_view("v1")));
    b1.Delete("k2");
    ASSERT_TRUE((*wal)->Append(b1).ok());
    WriteBatch b2;
    b2.Put("k3", ToBytes(std::string_view("v3")));
    ASSERT_TRUE((*wal)->Append(b2).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  std::vector<WriteBatch> replayed;
  ASSERT_TRUE(Wal::Replay(path_, [&](const WriteBatch& b) {
                replayed.push_back(b);
              }).ok());
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].ops().size(), 2u);
  EXPECT_EQ(replayed[0].ops()[0].key, "k1");
  EXPECT_EQ(replayed[0].ops()[1].type, WriteBatch::OpType::kDelete);
  EXPECT_EQ(replayed[1].ops()[0].key, "k3");
}

TEST_F(WalTest, MissingFileIsEmptyLog) {
  int count = 0;
  ASSERT_TRUE(Wal::Replay(path_, [&](const WriteBatch&) { ++count; }).ok());
  EXPECT_EQ(count, 0);
}

TEST_F(WalTest, TornTailStopsSilently) {
  {
    auto wal = Wal::Open(path_);
    ASSERT_TRUE(wal.ok());
    WriteBatch b;
    b.Put("k", ToBytes(std::string_view("v")));
    ASSERT_TRUE((*wal)->Append(b).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  // Simulate a crash mid-append: write a valid header with missing body.
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  uint8_t torn[8] = {1, 2, 3, 4, 200, 0, 0, 0};
  std::fwrite(torn, 1, 8, f);
  std::fclose(f);

  int count = 0;
  ASSERT_TRUE(Wal::Replay(path_, [&](const WriteBatch&) { ++count; }).ok());
  EXPECT_EQ(count, 1);  // the intact record only
}

TEST_F(WalTest, CorruptRecordReportsCorruption) {
  {
    auto wal = Wal::Open(path_);
    ASSERT_TRUE(wal.ok());
    WriteBatch b;
    b.Put("key-one", ToBytes(std::string_view("value-one")));
    ASSERT_TRUE((*wal)->Append(b).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  // Flip a payload byte in place.
  std::FILE* f = std::fopen(path_.c_str(), "r+b");
  std::fseek(f, 12, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, 12, SEEK_SET);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);

  Status status = Wal::Replay(path_, [](const WriteBatch&) {});
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST_F(WalTest, ResetTruncatesDurablyAndReplaysOnlyNewRecords) {
  {
    auto wal = Wal::Open(path_);
    ASSERT_TRUE(wal.ok());
    WriteBatch old_batch;
    old_batch.Put("old", ToBytes(std::string_view("stale")));
    ASSERT_TRUE((*wal)->Append(old_batch).ok());
    ASSERT_TRUE((*wal)->Sync().ok());

    ASSERT_TRUE((*wal)->Reset().ok());
    // The truncation must be on disk immediately, not buffered: a crash
    // right after Reset must not resurrect the stale record.
    EXPECT_EQ(std::filesystem::file_size(path_), 0u);

    WriteBatch new_batch;
    new_batch.Put("new", ToBytes(std::string_view("fresh")));
    ASSERT_TRUE((*wal)->Append(new_batch).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  std::vector<WriteBatch> replayed;
  ASSERT_TRUE(Wal::Replay(path_, [&](const WriteBatch& b) {
                replayed.push_back(b);
              }).ok());
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].ops()[0].key, "new");
}

TEST_F(WalTest, ResetFaultSiteSurfacesCleanly) {
  auto wal = Wal::Open(path_);
  ASSERT_TRUE(wal.ok());
  fault::FaultPlan plan(1);
  plan.Arm("fault.storage.wal_reset",
           fault::Trigger{.one_shot = true});
  Status s = (*wal)->Reset();
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_TRUE((*wal)->Reset().ok());  // retry succeeds
}

TEST_F(WalTest, MidFileCorruptionIsNotMistakenForTornTail) {
  // Three records; corrupt the middle one. Replay must stop with
  // Corruption (a mid-file flip is tampering/rot, not a crash artifact)
  // after applying only the first record.
  std::vector<uint64_t> offsets;
  {
    auto wal = Wal::Open(path_);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*wal)->Sync().ok());
      offsets.push_back(std::filesystem::file_size(path_));
      WriteBatch b;
      b.Put("key" + std::to_string(i), ToBytes(std::string_view("value")));
      ASSERT_TRUE((*wal)->Append(b).ok());
    }
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  // Flip one payload byte of record 1 (skip its 8-byte header).
  std::FILE* f = std::fopen(path_.c_str(), "r+b");
  long flip_at = long(offsets[1]) + 8 + 2;
  std::fseek(f, flip_at, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, flip_at, SEEK_SET);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);

  int count = 0;
  ReplayStats stats;
  Status status =
      Wal::Replay(path_, [&](const WriteBatch&) { ++count; }, &stats);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(stats.records, 1u);
  EXPECT_FALSE(stats.torn_tail);  // corruption, not a torn tail
}

TEST_F(WalTest, TruncationAtEveryByteOfLastRecordReplaysThePrefix) {
  uint64_t full_size = 0;
  uint64_t second_offset = 0;
  {
    auto wal = Wal::Open(path_);
    ASSERT_TRUE(wal.ok());
    WriteBatch b1;
    b1.Put("first", ToBytes(std::string_view("record")));
    ASSERT_TRUE((*wal)->Append(b1).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
    second_offset = std::filesystem::file_size(path_);
    WriteBatch b2;
    b2.Put("second", ToBytes(std::string_view("record")));
    ASSERT_TRUE((*wal)->Append(b2).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
    full_size = std::filesystem::file_size(path_);
  }
  // Crash at every possible byte boundary inside the last record.
  for (uint64_t size = second_offset; size < full_size; ++size) {
    std::filesystem::copy_file(path_, dir_ / "cut.wal",
                               std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(dir_ / "cut.wal", size);
    int count = 0;
    ReplayStats stats;
    Status status = Wal::Replay((dir_ / "cut.wal").string(),
                                [&](const WriteBatch&) { ++count; }, &stats);
    ASSERT_TRUE(status.ok()) << "size=" << size << ": " << status.ToString();
    EXPECT_EQ(count, 1) << "size=" << size;
    EXPECT_EQ(stats.records, 1u) << "size=" << size;
    EXPECT_EQ(stats.torn_tail, size > second_offset) << "size=" << size;
  }
}

TEST_F(WalTest, BatchCodecRoundTrip) {
  WriteBatch batch;
  batch.Put("alpha", ToBytes(std::string_view("1")));
  batch.Delete("beta");
  batch.Put("", Bytes{});  // empty key and value are legal
  auto decoded = DecodeBatch(EncodeBatch(batch));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->ops().size(), 3u);
  EXPECT_EQ(decoded->ops()[0].key, "alpha");
  EXPECT_EQ(decoded->ops()[1].type, WriteBatch::OpType::kDelete);
  EXPECT_TRUE(decoded->ops()[2].key.empty());
}

// ---------------------------------------------------------------------------
// LSM store
// ---------------------------------------------------------------------------


TEST_F(WalTest, GroupCommitCountersTrackCoalescedAppends) {
  auto syncs_before = metrics::MetricsRegistry::Global().Snapshot().counter(
      "storage.wal.group_commit.syncs");
  auto batched_before = metrics::MetricsRegistry::Global().Snapshot().counter(
      "storage.wal.group_commit.batched");
  auto wal = Wal::Open(path_);
  ASSERT_TRUE(wal.ok());
  WriteBatch b;
  b.Put("k", ToBytes(std::string_view("v")));
  // Three appends coalesce under one fsync: two of them rode along.
  ASSERT_TRUE((*wal)->Append(b).ok());
  ASSERT_TRUE((*wal)->Append(b).ok());
  ASSERT_TRUE((*wal)->Append(b).ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  auto snap = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("storage.wal.group_commit.syncs"), syncs_before + 1);
  EXPECT_EQ(snap.counter("storage.wal.group_commit.batched"), batched_before + 2);

  // A lone append batches nothing further.
  ASSERT_TRUE((*wal)->Append(b).ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  snap = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("storage.wal.group_commit.syncs"), syncs_before + 2);
  EXPECT_EQ(snap.counter("storage.wal.group_commit.batched"), batched_before + 2);

  // A sync with nothing pending is a no-op for the group-commit ledger.
  ASSERT_TRUE((*wal)->Sync().ok());
  snap = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("storage.wal.group_commit.syncs"), syncs_before + 2);
  EXPECT_EQ(snap.counter("storage.wal.group_commit.batched"), batched_before + 2);
}

TEST(LsmStoreTest, SyncIsNoOpWithoutWalAndFsyncsWithOne) {
  // Volatile store: Sync succeeds trivially.
  auto volatile_store = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(volatile_store.ok());
  EXPECT_TRUE((*volatile_store)->Sync().ok());

  // WAL-backed store: Sync reaches the WAL fsync path.
  auto dir = std::filesystem::temp_directory_path() / "confide_lsm_sync";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  LsmOptions options = VolatileOptions();
  options.wal_dir = dir.string();
  auto store = LsmKvStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto syncs_before = metrics::MetricsRegistry::Global().Snapshot().counter(
      "storage.wal.group_commit.syncs");
  ASSERT_TRUE((*store)->Put("k", ToBytes(std::string_view("v"))).ok());
  ASSERT_TRUE((*store)->Sync().ok());
  EXPECT_EQ(metrics::MetricsRegistry::Global().Snapshot().counter(
                "storage.wal.group_commit.syncs"),
            syncs_before + 1);
  std::filesystem::remove_all(dir);
}

TEST(LsmStoreTest, BasicPutGetDelete) {
  auto store = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k", ToBytes(std::string_view("v"))).ok());
  auto got = (*store)->Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(*got), "v");
  ASSERT_TRUE((*store)->Delete("k").ok());
  EXPECT_TRUE((*store)->Get("k").status().IsNotFound());
}

TEST(LsmStoreTest, WriteBatchAtomicView) {
  auto store = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(store.ok());
  WriteBatch batch;
  for (int i = 0; i < 100; ++i) {
    batch.Put("key-" + std::to_string(i), ToBytes(std::to_string(i * 10)));
  }
  ASSERT_TRUE((*store)->Write(batch).ok());
  for (int i = 0; i < 100; ++i) {
    auto got = (*store)->Get("key-" + std::to_string(i));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(ToString(*got), std::to_string(i * 10));
  }
}

TEST(LsmStoreTest, FlushMovesDataToRunsAndLookupsStillWork) {
  auto store = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*store)->Put("k" + std::to_string(i), ToBytes(std::to_string(i))).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_EQ((*store)->RunCount(), 1u);
  for (int i = 0; i < 50; ++i) {
    auto got = (*store)->Get("k" + std::to_string(i));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(ToString(*got), std::to_string(i));
  }
}

TEST(LsmStoreTest, NewerWriteShadowsFlushedRun) {
  auto store = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k", ToBytes(std::string_view("old"))).ok());
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_TRUE((*store)->Put("k", ToBytes(std::string_view("new"))).ok());
  EXPECT_EQ(ToString(*(*store)->Get("k")), "new");

  // Tombstone over a flushed value.
  ASSERT_TRUE((*store)->Delete("k").ok());
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_TRUE((*store)->Get("k").status().IsNotFound());
}

TEST(LsmStoreTest, CompactionMergesRunsAndDropsTombstones) {
  LsmOptions options = VolatileOptions();
  options.max_runs = 2;
  auto store = LsmKvStore::Open(options);
  ASSERT_TRUE(store.ok());
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 10; ++i) {
      std::string key = "k" + std::to_string(i);
      if (round == 3 && i < 5) {
        ASSERT_TRUE((*store)->Delete(key).ok());
      } else {
        ASSERT_TRUE((*store)->Put(key, ToBytes(std::to_string(round))).ok());
      }
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  EXPECT_LE((*store)->RunCount(), 2u);
  for (int i = 0; i < 10; ++i) {
    auto got = (*store)->Get("k" + std::to_string(i));
    if (i < 5) {
      EXPECT_TRUE(got.status().IsNotFound()) << i;
    } else {
      ASSERT_TRUE(got.ok()) << i;
      EXPECT_EQ(ToString(*got), "3");
    }
  }
}

TEST(LsmStoreTest, IteratorSeesMergedSnapshot) {
  auto store = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("a", ToBytes(std::string_view("1"))).ok());
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_TRUE((*store)->Put("b", ToBytes(std::string_view("2"))).ok());
  ASSERT_TRUE((*store)->Put("a", ToBytes(std::string_view("1b"))).ok());
  ASSERT_TRUE((*store)->Delete("c").ok());

  auto it = (*store)->NewIterator();
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "a");
  EXPECT_EQ(ToString(it->value()), "1b");
  it->Next();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "b");
  it->Next();
  EXPECT_FALSE(it->Valid());

  // Snapshot isolation: later writes invisible to the open iterator.
  ASSERT_TRUE((*store)->Put("z", ToBytes(std::string_view("3"))).ok());
  it->SeekToFirst();
  int count = 0;
  for (; it->Valid(); it->Next()) ++count;
  EXPECT_EQ(count, 2);
}

TEST(LsmStoreTest, IteratorSeek) {
  auto store = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(store.ok());
  for (char c = 'a'; c <= 'f'; ++c) {
    ASSERT_TRUE((*store)->Put(std::string(1, c), ToBytes(std::string(1, c))).ok());
  }
  auto it = (*store)->NewIterator();
  it->Seek("c");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "c");
  it->Seek("cc");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "d");
  it->Seek("zzz");
  EXPECT_FALSE(it->Valid());
}

TEST(LsmStoreTest, WalRecoveryRestoresState) {
  auto dir = std::filesystem::temp_directory_path() / "confide_lsm_recovery";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  LsmOptions options = VolatileOptions();
  options.wal_dir = dir.string();
  {
    auto store = LsmKvStore::Open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("persist", ToBytes(std::string_view("me"))).ok());
    ASSERT_TRUE((*store)->Delete("ghost").ok());
    // Store dropped without any clean shutdown: WAL is the only copy.
  }
  {
    auto store = LsmKvStore::Open(options);
    ASSERT_TRUE(store.ok());
    auto got = (*store)->Get("persist");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(ToString(*got), "me");
    EXPECT_TRUE((*store)->Get("ghost").status().IsNotFound());
  }
  std::filesystem::remove_all(dir);
}

TEST(LsmStoreTest, RandomizedAgainstReferenceMap) {
  auto store = LsmKvStore::Open([&] {
    LsmOptions options;
    options.memtable_flush_bytes = 2048;  // force frequent flushes
    options.max_runs = 3;
    return options;
  }());
  ASSERT_TRUE(store.ok());
  std::map<std::string, Bytes> reference;
  crypto::Drbg rng(77);
  for (int i = 0; i < 3000; ++i) {
    std::string key = "k" + std::to_string(rng.NextBounded(200));
    if (rng.NextBounded(4) == 0) {
      ASSERT_TRUE((*store)->Delete(key).ok());
      reference.erase(key);
    } else {
      Bytes value = rng.Generate(1 + rng.NextBounded(40));
      ASSERT_TRUE((*store)->Put(key, value).ok());
      reference[key] = value;
    }
  }
  for (const auto& [key, value] : reference) {
    auto got = (*store)->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value);
  }
  // And absent keys really are absent.
  for (int i = 200; i < 220; ++i) {
    EXPECT_TRUE((*store)->Get("k" + std::to_string(i)).status().IsNotFound());
  }
}

// ---------------------------------------------------------------------------
// Bloom filter
// ---------------------------------------------------------------------------

TEST(BloomFilterTest, NoFalseNegatives) {
  std::vector<std::string> keys;
  for (int i = 0; i < 2000; ++i) keys.push_back("bloom-key-" + std::to_string(i));
  std::vector<std::string_view> views(keys.begin(), keys.end());
  BloomFilter filter = BloomFilter::Build(views, 10);
  for (const std::string& key : keys) {
    EXPECT_TRUE(filter.MayContain(key)) << key;
  }
}

TEST(BloomFilterTest, FalsePositiveRateWithinBound) {
  std::vector<std::string> keys;
  for (int i = 0; i < 2000; ++i) keys.push_back("bloom-key-" + std::to_string(i));
  std::vector<std::string_view> views(keys.begin(), keys.end());
  BloomFilter filter = BloomFilter::Build(views, 10);
  int false_positives = 0;
  constexpr int kProbes = 10000;
  for (int i = 0; i < kProbes; ++i) {
    if (filter.MayContain("absent-" + std::to_string(i))) ++false_positives;
  }
  // Theoretical FPR at 10 bits/key is ~0.8%; 2% leaves generous margin.
  EXPECT_LT(false_positives, kProbes / 50)
      << "FPR " << 100.0 * false_positives / kProbes << "%";
}

TEST(BloomFilterTest, SerializeRoundTrip) {
  std::vector<std::string_view> keys = {"alpha", "beta", "gamma"};
  BloomFilter filter = BloomFilter::Build(keys, 10);
  auto restored = BloomFilter::Deserialize(filter.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->bit_count(), filter.bit_count());
  for (std::string_view key : keys) EXPECT_TRUE(restored->MayContain(key));
}

TEST(BloomFilterTest, EmptyFilterAnswersMaybe) {
  BloomFilter filter;
  EXPECT_TRUE(filter.empty());
  EXPECT_TRUE(filter.MayContain("anything"));
  EXPECT_TRUE(BloomFilter::Deserialize(ByteView{}).status().code() ==
              StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Row cache
// ---------------------------------------------------------------------------

TEST(RowCacheTest, InsertGetAndValueMatch) {
  RowCache cache(4096);
  EXPECT_TRUE(cache.enabled());
  EXPECT_EQ(cache.Get("k"), nullptr);
  cache.Insert("k", ToBytes(std::string_view("value")));
  const RowCache::Row* row = cache.Get("k");
  ASSERT_NE(row, nullptr);
  ASSERT_TRUE(row->value.has_value());
  EXPECT_EQ(ToString(*row->value), "value");
}

TEST(RowCacheTest, NegativeEntryRecordsConfirmedMiss) {
  RowCache cache(4096);
  cache.Insert("missing", std::nullopt);
  const RowCache::Row* row = cache.Get("missing");
  ASSERT_NE(row, nullptr);
  EXPECT_FALSE(row->value.has_value());
}

TEST(RowCacheTest, AdmissionRejectsOversizedRows) {
  RowCache cache(1024);  // admission bound: 1024 / 8 = 128 bytes per row
  cache.Insert("big", Bytes(512));
  EXPECT_EQ(cache.Get("big"), nullptr);
  EXPECT_EQ(cache.entries(), 0u);
  cache.Insert("small", Bytes(16));
  EXPECT_NE(cache.Get("small"), nullptr);
}

TEST(RowCacheTest, EvictsLruPastByteBudget) {
  RowCache cache(1024);
  // Each row charges ~64 (overhead) + key + 32 value bytes ≈ 98; ten rows
  // blow the 1024 budget, so the oldest must go.
  for (int i = 0; i < 10; ++i) {
    cache.Insert("evict-" + std::to_string(i), Bytes(32));
  }
  EXPECT_LE(cache.bytes(), 1024u);
  EXPECT_EQ(cache.Get("evict-0"), nullptr);                // evicted
  EXPECT_NE(cache.Get("evict-9"), nullptr);                // newest survives
}

TEST(RowCacheTest, InvalidateDropsRowAndAccounting) {
  RowCache cache(4096);
  cache.Insert("k", ToBytes(std::string_view("v")));
  ASSERT_NE(cache.Get("k"), nullptr);
  cache.Invalidate("k");
  EXPECT_EQ(cache.Get("k"), nullptr);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(RowCacheTest, ZeroBudgetDisablesEverything) {
  RowCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert("k", ToBytes(std::string_view("v")));
  EXPECT_EQ(cache.Get("k"), nullptr);
}

TEST(RowCacheTest, BudgetResolutionPrecedence) {
  // Explicit configuration wins over everything.
  ::setenv("CONFIDE_STORAGE_CACHE_MB", "8", 1);
  EXPECT_EQ(ResolveCacheBudget(size_t(12345), 64), 12345u);
  // Unconfigured: the environment variable decides (in megabytes).
  EXPECT_EQ(ResolveCacheBudget(std::nullopt, 64), size_t(8) << 20);
  ::setenv("CONFIDE_STORAGE_CACHE_MB", "0", 1);
  EXPECT_EQ(ResolveCacheBudget(std::nullopt, 64), 0u);  // 0 = disabled
  // No env var either: the fallback applies.
  ::unsetenv("CONFIDE_STORAGE_CACHE_MB");
  EXPECT_EQ(ResolveCacheBudget(std::nullopt, 2), size_t(2) << 20);
}

// ---------------------------------------------------------------------------
// LSM read path: bloom gating, row cache, snapshots
// ---------------------------------------------------------------------------

/// Fills `store` so that several sorted runs exist.
void FillRuns(LsmKvStore* store, int keys_per_run, int runs) {
  for (int r = 0; r < runs; ++r) {
    for (int i = 0; i < keys_per_run; ++i) {
      std::string key = "run" + std::to_string(r) + "-key" + std::to_string(i);
      ASSERT_TRUE(store->Put(key, ToBytes(std::string_view("v"))).ok());
    }
    ASSERT_TRUE(store->Flush().ok());
  }
}

TEST(LsmReadPathTest, BloomSkipsRunsForAbsentKeys) {
  LsmOptions options = VolatileOptions();
  options.max_runs = 16;     // keep all runs alive (no compaction)
  options.cache_bytes = 0;   // isolate the bloom effect
  auto store = LsmKvStore::Open(options);
  ASSERT_TRUE(store.ok());
  FillRuns(store->get(), 50, 4);
  ASSERT_EQ((*store)->RunCount(), 4u);

  auto before = metrics::MetricsRegistry::Global().Snapshot();
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(
        (*store)->Get("nope-" + std::to_string(i)).status().IsNotFound());
  }
  auto after = metrics::MetricsRegistry::Global().Snapshot();
  uint64_t negatives = after.counter("storage.bloom.negatives") -
                       before.counter("storage.bloom.negatives");
  uint64_t probed = after.counter("storage.lsm.read.structures_probed") -
                    before.counter("storage.lsm.read.structures_probed");
  // 100 absent keys × 4 runs: virtually every run probe is answered
  // "definitely absent" by the bloom filter; the memtable is always
  // probed, plus at most a few false positives.
  EXPECT_GE(negatives, 390u);
  EXPECT_LE(probed, 110u);
}

TEST(LsmReadPathTest, DisabledBloomProbesEveryRun) {
  LsmOptions options = VolatileOptions();
  options.max_runs = 16;
  options.cache_bytes = 0;
  options.enable_bloom = false;
  auto store = LsmKvStore::Open(options);
  ASSERT_TRUE(store.ok());
  FillRuns(store->get(), 50, 4);

  auto before = metrics::MetricsRegistry::Global().Snapshot();
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(
        (*store)->Get("nope-" + std::to_string(i)).status().IsNotFound());
  }
  auto after = metrics::MetricsRegistry::Global().Snapshot();
  // Memtable + all 4 runs for each of the 100 reads.
  EXPECT_EQ(after.counter("storage.lsm.read.structures_probed") -
                before.counter("storage.lsm.read.structures_probed"),
            500u);
  EXPECT_EQ(after.counter("storage.bloom.probes") -
                before.counter("storage.bloom.probes"),
            0u);
}

TEST(LsmReadPathTest, RowCacheServesRepeatsAndStaysCoherent) {
  LsmOptions options = VolatileOptions();
  options.cache_bytes = 1 << 20;
  auto store = LsmKvStore::Open(options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("hot", ToBytes(std::string_view("v1"))).ok());
  ASSERT_TRUE((*store)->Flush().ok());  // into a run: cache fills from runs

  auto s1 = metrics::MetricsRegistry::Global().Snapshot();
  ASSERT_TRUE((*store)->Get("hot").ok());  // run probe, populates cache
  auto s2 = metrics::MetricsRegistry::Global().Snapshot();
  auto hot = (*store)->Get("hot");  // cache hit: zero structures probed
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(ToString(*hot), "v1");
  auto s3 = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(s3.counter("storage.cache.hit.count") -
                s2.counter("storage.cache.hit.count"),
            1u);
  EXPECT_EQ(s3.counter("storage.lsm.read.structures_probed"),
            s2.counter("storage.lsm.read.structures_probed"));
  EXPECT_GT(s2.counter("storage.lsm.read.structures_probed"),
            s1.counter("storage.lsm.read.structures_probed"));

  // Write-through coherence: a Put must invalidate the cached row.
  ASSERT_TRUE((*store)->Put("hot", ToBytes(std::string_view("v2"))).ok());
  auto updated = (*store)->Get("hot");
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(ToString(*updated), "v2");

  // Negative entries: a confirmed miss is served from cache on repeat.
  EXPECT_TRUE((*store)->Get("absent").status().IsNotFound());
  auto s4 = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_TRUE((*store)->Get("absent").status().IsNotFound());
  auto s5 = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(s5.counter("storage.cache.hit.count") -
                s4.counter("storage.cache.hit.count"),
            1u);

  // Deleting a cached key must not leave the stale row behind.
  ASSERT_TRUE((*store)->Delete("hot").ok());
  EXPECT_TRUE((*store)->Get("hot").status().IsNotFound());
}

// Regression: a cached *negative* entry (confirmed miss) must be
// invalidated by a later Put of that key — otherwise the store keeps
// answering NotFound for data it durably holds. Covers the direct Put,
// the WriteBatch path, and re-deletion back to a (fresh) negative entry.
TEST(LsmReadPathTest, NegativeCacheEntryDoesNotMaskLaterWrite) {
  LsmOptions options = VolatileOptions();
  options.cache_bytes = 1 << 20;
  auto store = LsmKvStore::Open(options);
  ASSERT_TRUE(store.ok());

  // Confirm the miss twice so the second read is served by the cached
  // negative entry (hit counter advances).
  EXPECT_TRUE((*store)->Get("ghost").status().IsNotFound());
  auto s1 = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_TRUE((*store)->Get("ghost").status().IsNotFound());
  auto s2 = metrics::MetricsRegistry::Global().Snapshot();
  ASSERT_EQ(s2.counter("storage.cache.hit.count") -
                s1.counter("storage.cache.hit.count"),
            1u);

  // The Put must evict that negative entry...
  ASSERT_TRUE((*store)->Put("ghost", ToBytes(std::string_view("alive"))).ok());
  auto revived = (*store)->Get("ghost");
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ(ToString(*revived), "alive");

  // ...including when the write arrives inside a WriteBatch.
  EXPECT_TRUE((*store)->Get("batch-ghost").status().IsNotFound());
  EXPECT_TRUE((*store)->Get("batch-ghost").status().IsNotFound());  // cached
  WriteBatch batch;
  batch.Put("batch-ghost", ToBytes(std::string_view("alive-too")));
  ASSERT_TRUE((*store)->Write(batch).ok());
  auto batched = (*store)->Get("batch-ghost");
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  EXPECT_EQ(ToString(*batched), "alive-too");

  // And a re-delete flips the (now positive) cached row back to absent.
  ASSERT_TRUE((*store)->Delete("ghost").ok());
  EXPECT_TRUE((*store)->Get("ghost").status().IsNotFound());
}

// Regression: a cached positive row must not survive a Delete carried in
// a WriteBatch alongside unrelated ops (the invalidation walks every op
// in the batch, not just single-key writes).
TEST(LsmReadPathTest, BatchDeleteInvalidatesCachedRow) {
  LsmOptions options = VolatileOptions();
  options.cache_bytes = 1 << 20;
  auto store = LsmKvStore::Open(options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("victim", ToBytes(std::string_view("v"))).ok());
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_TRUE((*store)->Get("victim").ok());  // populates the cache
  ASSERT_TRUE((*store)->Get("victim").ok());  // served from the cache

  WriteBatch batch;
  batch.Put("unrelated", ToBytes(std::string_view("x")));
  batch.Delete("victim");
  ASSERT_TRUE((*store)->Write(batch).ok());

  EXPECT_TRUE((*store)->Get("victim").status().IsNotFound());
  auto unrelated = (*store)->Get("unrelated");
  ASSERT_TRUE(unrelated.ok());
  EXPECT_EQ(ToString(*unrelated), "x");
}

TEST(LsmReadPathTest, SnapshotPinsViewAgainstLaterWrites) {
  auto store = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k", ToBytes(std::string_view("old"))).ok());
  ASSERT_TRUE((*store)->Put("gone", ToBytes(std::string_view("x"))).ok());

  std::unique_ptr<KvSnapshot> snapshot = (*store)->GetSnapshot();
  uint64_t pinned = snapshot->Sequence();

  ASSERT_TRUE((*store)->Put("k", ToBytes(std::string_view("new"))).ok());
  ASSERT_TRUE((*store)->Put("later", ToBytes(std::string_view("y"))).ok());
  ASSERT_TRUE((*store)->Delete("gone").ok());
  EXPECT_GT((*store)->Sequence(), pinned);

  // The snapshot still serves the pinned state...
  auto old = snapshot->Get("k");
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(ToString(*old), "old");
  EXPECT_TRUE(snapshot->Get("later").status().IsNotFound());
  EXPECT_TRUE(snapshot->Get("gone").ok());
  // ...and so does its iterator.
  auto it = snapshot->NewIterator();
  std::map<std::string, std::string> seen;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    seen[it->key()] = ToString(it->value());
  }
  EXPECT_EQ(seen, (std::map<std::string, std::string>{{"k", "old"},
                                                      {"gone", "x"}}));
  // The store itself sees the new state.
  auto live = (*store)->Get("k");
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(ToString(*live), "new");
}

TEST(LsmReadPathTest, SnapshotSurvivesFlushAndCompaction) {
  LsmOptions options = VolatileOptions();
  options.memtable_flush_bytes = 512;
  options.max_runs = 2;
  auto store = LsmKvStore::Open(options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("stable", ToBytes(std::string_view("before"))).ok());
  std::unique_ptr<KvSnapshot> snapshot = (*store)->GetSnapshot();

  // Churn enough to flush several runs and compact them away.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE((*store)
                    ->Put("churn-" + std::to_string(i), Bytes(32))
                    .ok());
  }
  ASSERT_TRUE((*store)->Delete("stable").ok());
  ASSERT_TRUE((*store)->Flush().ok());

  auto pinned = snapshot->Get("stable");
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(ToString(*pinned), "before");
  EXPECT_TRUE(snapshot->Get("churn-0").status().IsNotFound());
  EXPECT_TRUE((*store)->Get("stable").status().IsNotFound());
}

TEST(LsmReadPathTest, BackgroundCompactionOnPoolKeepsDataIntact) {
  ThreadPool pool(2);
  LsmOptions options;
  options.memtable_flush_bytes = 1024;
  options.max_runs = 3;
  options.compaction_pool = &pool;
  auto store = LsmKvStore::Open(options);
  ASSERT_TRUE(store.ok());

  std::map<std::string, Bytes> reference;
  crypto::Drbg rng(99);
  for (int i = 0; i < 2000; ++i) {
    std::string key = "bg" + std::to_string(rng.NextBounded(300));
    if (rng.NextBounded(5) == 0) {
      ASSERT_TRUE((*store)->Delete(key).ok());
      reference.erase(key);
    } else {
      Bytes value = rng.Generate(1 + rng.NextBounded(30));
      ASSERT_TRUE((*store)->Put(key, value).ok());
      reference[key] = value;
    }
  }
  (*store)->WaitForCompaction();
  EXPECT_LE((*store)->RunCount(), options.max_runs + 1);
  for (const auto& [key, value] : reference) {
    auto got = (*store)->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value);
  }
  for (int i = 300; i < 320; ++i) {
    EXPECT_TRUE((*store)->Get("bg" + std::to_string(i)).status().IsNotFound());
  }
}

// ---------------------------------------------------------------------------
// Durable SSTables: flush persistence, compaction crash recovery
// ---------------------------------------------------------------------------

TEST(LsmDurabilityTest, FlushedRunsSurviveReopenWithoutWal) {
  auto dir = std::filesystem::temp_directory_path() / "confide_lsm_sst";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  LsmOptions options = VolatileOptions();
  options.wal_dir = dir.string();
  {
    auto store = LsmKvStore::Open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("flushed", ToBytes(std::string_view("v"))).ok());
    ASSERT_TRUE((*store)->Flush().ok());
    // Flush reset the WAL: before SSTable persistence this key would be
    // gone after a crash. The run on disk is now the only copy.
  }
  {
    RecoveryInfo info;
    auto store = LsmKvStore::Recover(options, &info);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(info.tables_loaded, 1u);
    EXPECT_EQ(info.batches_replayed, 0u);  // nothing left in the WAL
    auto got = (*store)->Get("flushed");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(ToString(*got), "v");
  }
  std::filesystem::remove_all(dir);
}

TEST(LsmDurabilityTest, SsTableRoundTripPreservesEntriesAndBloom) {
  auto dir = std::filesystem::temp_directory_path() / "confide_sst_roundtrip";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::vector<RunEntry> entries;
  entries.push_back({"a", ToBytes(std::string_view("1"))});
  entries.push_back({"b", std::nullopt});  // tombstone
  entries.push_back({"c", ToBytes(std::string_view("3"))});
  std::vector<std::string_view> keys = {"a", "b", "c"};
  BloomFilter bloom = BloomFilter::Build(keys, 10);
  std::string path = SsTablePath(dir.string(), 7);
  ASSERT_TRUE(WriteSsTable(path, entries, bloom).ok());

  auto contents = ReadSsTable(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->entries.size(), 3u);
  EXPECT_EQ(contents->entries[0].key, "a");
  ASSERT_TRUE(contents->entries[0].value.has_value());
  EXPECT_FALSE(contents->entries[1].value.has_value());
  EXPECT_FALSE(contents->bloom.empty());
  EXPECT_TRUE(contents->bloom.MayContain("a"));

  // Corruption must be detected, not silently served.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  std::fseek(f, 20, SEEK_SET);
  std::fputc(0xFF, f);
  std::fclose(f);
  EXPECT_TRUE(ReadSsTable(path).status().code() == StatusCode::kCorruption);
  std::filesystem::remove_all(dir);
}

/// Crash/restart chaos: a compaction that dies at any fault site must
/// neither lose live keys nor resurrect deleted ones after reopen.
class CompactionCrashTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CompactionCrashTest, KilledCompactionLosesNothingOnReopen) {
  auto dir = std::filesystem::temp_directory_path() /
             (std::string("confide_compact_crash_") +
              std::string(GetParam()).substr(std::string(GetParam()).rfind('.') + 1));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  LsmOptions options;
  options.memtable_flush_bytes = 512;
  options.max_runs = 2;
  options.wal_dir = dir.string();
  options.cache_bytes = 0;

  std::map<std::string, Bytes> reference;
  {
    auto store = LsmKvStore::Open(options);
    ASSERT_TRUE(store.ok());
    // Every compaction attempt dies at the parameterized site (not
    // one-shot: the inline retries must all fail, as a crash would).
    fault::FaultPlan plan(1);
    plan.Arm(GetParam(), fault::Trigger{});
    crypto::Drbg rng(31);
    for (int i = 0; i < 400; ++i) {
      std::string key = "cc" + std::to_string(rng.NextBounded(120));
      if (rng.NextBounded(4) == 0) {
        ASSERT_TRUE((*store)->Delete(key).ok());
        reference.erase(key);
      } else {
        Bytes value = rng.Generate(1 + rng.NextBounded(24));
        ASSERT_TRUE((*store)->Put(key, value).ok());
        reference[key] = value;
      }
    }
    // The armed site kept every compaction from completing.
    EXPECT_GT((*store)->RunCount(), options.max_runs);
    // Store destroyed here: simulated crash with compaction dead.
  }
  {
    RecoveryInfo info;
    auto store = LsmKvStore::Recover(options, &info);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_GT(info.tables_loaded, 0u);
    if (std::string(GetParam()) == "fault.storage.compaction.install") {
      // Crashing between the table write and the manifest install
      // strands orphans; recovery must have deleted them.
      EXPECT_GT(info.orphans_removed, 0u);
    }
    for (const auto& [key, value] : reference) {
      auto got = (*store)->Get(key);
      ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
      EXPECT_EQ(*got, value) << key;
    }
    for (int i = 0; i < 120; ++i) {
      std::string key = "cc" + std::to_string(i);
      if (reference.count(key) == 0) {
        EXPECT_TRUE((*store)->Get(key).status().IsNotFound())
            << key << " resurrected";
      }
    }
    // And the reopened store compacts fine once the fault is gone.
    ASSERT_TRUE((*store)->Put("post-crash", Bytes(600)).ok());
    ASSERT_TRUE((*store)->Flush().ok());
    EXPECT_LE((*store)->RunCount(), options.max_runs + 1);
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(AllSites, CompactionCrashTest,
                         ::testing::Values("fault.storage.compaction.start",
                                           "fault.storage.compaction.merge",
                                           "fault.storage.compaction.write",
                                           "fault.storage.compaction.install"));

// ---------------------------------------------------------------------------
// Block store
// ---------------------------------------------------------------------------

TEST(BlockStoreTest, AppendAndFetchByHeightAndHash) {
  auto kv = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(kv.ok());
  BlockStore blocks(std::shared_ptr<KvStore>(std::move(*kv)));

  Bytes block0 = ToBytes(std::string_view("genesis"));
  auto h0 = crypto::Sha256::Digest(block0);
  ASSERT_TRUE(blocks.Append(0, h0, block0).ok());
  Bytes block1 = ToBytes(std::string_view("block-1"));
  auto h1 = crypto::Sha256::Digest(block1);
  ASSERT_TRUE(blocks.Append(1, h1, block1).ok());

  EXPECT_EQ(blocks.NextHeight(), 2u);
  EXPECT_EQ(ToString(*blocks.GetByHeight(0)), "genesis");
  EXPECT_EQ(ToString(*blocks.GetByHash(h1)), "block-1");
  EXPECT_TRUE(blocks.GetByHeight(5).status().IsNotFound());
}

TEST(BlockStoreTest, RejectsNonContiguousHeights) {
  auto kv = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(kv.ok());
  BlockStore blocks(std::shared_ptr<KvStore>(std::move(*kv)));
  Bytes block = ToBytes(std::string_view("b"));
  EXPECT_FALSE(blocks.Append(3, crypto::Sha256::Digest(block), block).ok());
}

TEST(BlockStoreTest, SsdModelChargesLatency) {
  auto kv = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(kv.ok());
  SimClock clock;
  BlockStore blocks(std::shared_ptr<KvStore>(std::move(*kv)), &clock);
  Bytes block(4096, 0xbb);
  ASSERT_TRUE(blocks.Append(0, crypto::Sha256::Digest(block), block).ok());
  // Default model: 6 ms + 4 µs/KiB * 4 KiB = 6.016 ms.
  EXPECT_EQ(clock.NowNs(), 6'000'000u + 4 * 4'000u);
}


TEST(BlockStoreTest, RecoverTipRebuildsCursorsFromStore) {
  auto opened = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(opened.ok());
  std::shared_ptr<KvStore> kv = std::move(*opened);
  {
    BlockStore blocks(kv);
    Bytes b0 = ToBytes(std::string_view("block0"));
    Bytes b1 = ToBytes(std::string_view("block1"));
    ASSERT_TRUE(blocks.Append(0, crypto::Sha256::Digest(b0), b0).ok());
    ASSERT_TRUE(blocks.Append(1, crypto::Sha256::Digest(b1), b1).ok());
  }
  // A fresh BlockStore over the same kv models a restart: cursors reset.
  BlockStore recovered(kv);
  EXPECT_EQ(recovered.NextHeight(), 0u);
  ASSERT_TRUE(recovered.RecoverTip().ok());
  EXPECT_EQ(recovered.NextHeight(), 2u);
  EXPECT_EQ(recovered.NextStagedHeight(), 2u);
  // Appending continues from the recovered tip.
  Bytes b2 = ToBytes(std::string_view("block2"));
  EXPECT_TRUE(recovered.Append(2, crypto::Sha256::Digest(b2), b2).ok());
}


namespace {

// Mirrors BlockStore's internal height-key layout so tests can damage
// stored records the way a partial disk write would.
std::string RawHeightKey(uint64_t height) {
  uint8_t be[8];
  StoreBe64(be, height);
  return "blk/h/" + HexEncode(ByteView(be, 8));
}

}  // namespace

TEST(BlockStoreTest, RecoverTipStopsAtFirstMissingHeight) {
  auto opened = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(opened.ok());
  std::shared_ptr<KvStore> kv = std::move(*opened);
  {
    BlockStore blocks(kv);
    for (uint64_t h = 0; h < 3; ++h) {
      Bytes b = ToBytes(std::string_view("block"));
      ASSERT_TRUE(blocks.Append(h, crypto::Sha256::Digest(b), b).ok());
    }
  }
  // Lose the middle record (torn multi-record write). Heights 0 and 2
  // survive; the committed prefix is exactly [0, 1).
  ASSERT_TRUE(kv->Delete(RawHeightKey(1)).ok());

  BlockStore recovered(kv);
  ASSERT_TRUE(recovered.RecoverTip().ok());
  // The scan must stop at the hole: reporting height 3 would hand out a
  // chain whose middle block does not exist.
  EXPECT_EQ(recovered.NextHeight(), 1u);
  // The store keeps extending the true prefix, re-filling the hole.
  Bytes b1 = ToBytes(std::string_view("block1-again"));
  EXPECT_TRUE(recovered.Append(1, crypto::Sha256::Digest(b1), b1).ok());
}

TEST(BlockStoreTest, RecoverTipWithNoGenesisReportsEmptyChain) {
  auto opened = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(opened.ok());
  std::shared_ptr<KvStore> kv = std::move(*opened);
  {
    BlockStore blocks(kv);
    for (uint64_t h = 0; h < 2; ++h) {
      Bytes b = ToBytes(std::string_view("block"));
      ASSERT_TRUE(blocks.Append(h, crypto::Sha256::Digest(b), b).ok());
    }
  }
  // Genesis record lost entirely: nothing is contiguous from 0.
  ASSERT_TRUE(kv->Delete(RawHeightKey(0)).ok());
  BlockStore recovered(kv);
  ASSERT_TRUE(recovered.RecoverTip().ok());
  EXPECT_EQ(recovered.NextHeight(), 0u);
}

TEST(BlockStoreTest, CorruptedTipRecordStillYieldsContiguousHeight) {
  auto opened = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(opened.ok());
  std::shared_ptr<KvStore> kv = std::move(*opened);
  {
    BlockStore blocks(kv);
    for (uint64_t h = 0; h < 2; ++h) {
      Bytes b = ToBytes(std::string_view("block"));
      ASSERT_TRUE(blocks.Append(h, crypto::Sha256::Digest(b), b).ok());
    }
  }
  // Overwrite the tip payload with garbage. The height scan still counts
  // it (the record exists); it is the caller's deserialization of the tip
  // block that must fail loudly — covered by the chain-level recovery
  // test. What RecoverTip must never do is report a height beyond the
  // stored records.
  ASSERT_TRUE(kv->Put(RawHeightKey(1), ToBytes(std::string_view("garbage"))).ok());
  BlockStore recovered(kv);
  ASSERT_TRUE(recovered.RecoverTip().ok());
  EXPECT_EQ(recovered.NextHeight(), 2u);
  auto tip = recovered.GetByHeight(1);
  ASSERT_TRUE(tip.ok());
  EXPECT_EQ(ToString(ByteView(tip->data(), tip->size())), "garbage");
}

}  // namespace
}  // namespace confide::storage
