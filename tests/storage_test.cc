#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/crc32.h"
#include "common/endian.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/sim_clock.h"
#include "crypto/drbg.h"
#include "storage/block_store.h"
#include "storage/lsm_store.h"
#include "storage/memtable.h"
#include "storage/wal.h"

namespace confide::storage {
namespace {

LsmOptions VolatileOptions() {
  LsmOptions options;
  options.memtable_flush_bytes = 1 << 20;
  return options;
}

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926, the classic check value.
  EXPECT_EQ(Crc32(AsByteView("123456789")), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32(ByteView{}), 0u); }

// ---------------------------------------------------------------------------
// MemTable
// ---------------------------------------------------------------------------

TEST(MemTableTest, PutGetOverwrite) {
  MemTable mem;
  mem.Put("a", ToBytes(std::string_view("1")));
  mem.Put("b", ToBytes(std::string_view("2")));
  mem.Put("a", ToBytes(std::string_view("3")));
  auto a = mem.Get("a");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(a->has_value());
  EXPECT_EQ(ToString(**a), "3");
  EXPECT_EQ(mem.entry_count(), 2u);
  EXPECT_FALSE(mem.Get("zzz").has_value());
}

TEST(MemTableTest, TombstoneIsDistinctFromAbsent) {
  MemTable mem;
  mem.Put("gone", std::nullopt);
  auto hit = mem.Get("gone");
  ASSERT_TRUE(hit.has_value());     // key is present...
  EXPECT_FALSE(hit->has_value());   // ...as a tombstone
}

TEST(MemTableTest, ForEachVisitsInKeyOrder) {
  MemTable mem;
  crypto::Drbg rng(3);
  for (int i = 0; i < 500; ++i) {
    mem.Put("key-" + std::to_string(rng.NextBounded(1000)),
            ToBytes(std::string_view("v")));
  }
  std::string prev;
  bool first = true;
  mem.ForEach([&](const std::string& key, const std::optional<Bytes>&) {
    if (!first) EXPECT_LT(prev, key);
    prev = key;
    first = false;
  });
}

// ---------------------------------------------------------------------------
// WAL
// ---------------------------------------------------------------------------

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "confide_wal_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "test.wal").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(WalTest, AppendAndReplay) {
  {
    auto wal = Wal::Open(path_);
    ASSERT_TRUE(wal.ok());
    WriteBatch b1;
    b1.Put("k1", ToBytes(std::string_view("v1")));
    b1.Delete("k2");
    ASSERT_TRUE((*wal)->Append(b1).ok());
    WriteBatch b2;
    b2.Put("k3", ToBytes(std::string_view("v3")));
    ASSERT_TRUE((*wal)->Append(b2).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  std::vector<WriteBatch> replayed;
  ASSERT_TRUE(Wal::Replay(path_, [&](const WriteBatch& b) {
                replayed.push_back(b);
              }).ok());
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].ops().size(), 2u);
  EXPECT_EQ(replayed[0].ops()[0].key, "k1");
  EXPECT_EQ(replayed[0].ops()[1].type, WriteBatch::OpType::kDelete);
  EXPECT_EQ(replayed[1].ops()[0].key, "k3");
}

TEST_F(WalTest, MissingFileIsEmptyLog) {
  int count = 0;
  ASSERT_TRUE(Wal::Replay(path_, [&](const WriteBatch&) { ++count; }).ok());
  EXPECT_EQ(count, 0);
}

TEST_F(WalTest, TornTailStopsSilently) {
  {
    auto wal = Wal::Open(path_);
    ASSERT_TRUE(wal.ok());
    WriteBatch b;
    b.Put("k", ToBytes(std::string_view("v")));
    ASSERT_TRUE((*wal)->Append(b).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  // Simulate a crash mid-append: write a valid header with missing body.
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  uint8_t torn[8] = {1, 2, 3, 4, 200, 0, 0, 0};
  std::fwrite(torn, 1, 8, f);
  std::fclose(f);

  int count = 0;
  ASSERT_TRUE(Wal::Replay(path_, [&](const WriteBatch&) { ++count; }).ok());
  EXPECT_EQ(count, 1);  // the intact record only
}

TEST_F(WalTest, CorruptRecordReportsCorruption) {
  {
    auto wal = Wal::Open(path_);
    ASSERT_TRUE(wal.ok());
    WriteBatch b;
    b.Put("key-one", ToBytes(std::string_view("value-one")));
    ASSERT_TRUE((*wal)->Append(b).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  // Flip a payload byte in place.
  std::FILE* f = std::fopen(path_.c_str(), "r+b");
  std::fseek(f, 12, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, 12, SEEK_SET);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);

  Status status = Wal::Replay(path_, [](const WriteBatch&) {});
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST_F(WalTest, ResetTruncatesDurablyAndReplaysOnlyNewRecords) {
  {
    auto wal = Wal::Open(path_);
    ASSERT_TRUE(wal.ok());
    WriteBatch old_batch;
    old_batch.Put("old", ToBytes(std::string_view("stale")));
    ASSERT_TRUE((*wal)->Append(old_batch).ok());
    ASSERT_TRUE((*wal)->Sync().ok());

    ASSERT_TRUE((*wal)->Reset().ok());
    // The truncation must be on disk immediately, not buffered: a crash
    // right after Reset must not resurrect the stale record.
    EXPECT_EQ(std::filesystem::file_size(path_), 0u);

    WriteBatch new_batch;
    new_batch.Put("new", ToBytes(std::string_view("fresh")));
    ASSERT_TRUE((*wal)->Append(new_batch).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  std::vector<WriteBatch> replayed;
  ASSERT_TRUE(Wal::Replay(path_, [&](const WriteBatch& b) {
                replayed.push_back(b);
              }).ok());
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].ops()[0].key, "new");
}

TEST_F(WalTest, ResetFaultSiteSurfacesCleanly) {
  auto wal = Wal::Open(path_);
  ASSERT_TRUE(wal.ok());
  fault::FaultPlan plan(1);
  plan.Arm("fault.storage.wal_reset",
           fault::Trigger{.one_shot = true});
  Status s = (*wal)->Reset();
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_TRUE((*wal)->Reset().ok());  // retry succeeds
}

TEST_F(WalTest, MidFileCorruptionIsNotMistakenForTornTail) {
  // Three records; corrupt the middle one. Replay must stop with
  // Corruption (a mid-file flip is tampering/rot, not a crash artifact)
  // after applying only the first record.
  std::vector<uint64_t> offsets;
  {
    auto wal = Wal::Open(path_);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*wal)->Sync().ok());
      offsets.push_back(std::filesystem::file_size(path_));
      WriteBatch b;
      b.Put("key" + std::to_string(i), ToBytes(std::string_view("value")));
      ASSERT_TRUE((*wal)->Append(b).ok());
    }
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  // Flip one payload byte of record 1 (skip its 8-byte header).
  std::FILE* f = std::fopen(path_.c_str(), "r+b");
  long flip_at = long(offsets[1]) + 8 + 2;
  std::fseek(f, flip_at, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, flip_at, SEEK_SET);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);

  int count = 0;
  ReplayStats stats;
  Status status =
      Wal::Replay(path_, [&](const WriteBatch&) { ++count; }, &stats);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(stats.records, 1u);
  EXPECT_FALSE(stats.torn_tail);  // corruption, not a torn tail
}

TEST_F(WalTest, TruncationAtEveryByteOfLastRecordReplaysThePrefix) {
  uint64_t full_size = 0;
  uint64_t second_offset = 0;
  {
    auto wal = Wal::Open(path_);
    ASSERT_TRUE(wal.ok());
    WriteBatch b1;
    b1.Put("first", ToBytes(std::string_view("record")));
    ASSERT_TRUE((*wal)->Append(b1).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
    second_offset = std::filesystem::file_size(path_);
    WriteBatch b2;
    b2.Put("second", ToBytes(std::string_view("record")));
    ASSERT_TRUE((*wal)->Append(b2).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
    full_size = std::filesystem::file_size(path_);
  }
  // Crash at every possible byte boundary inside the last record.
  for (uint64_t size = second_offset; size < full_size; ++size) {
    std::filesystem::copy_file(path_, dir_ / "cut.wal",
                               std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(dir_ / "cut.wal", size);
    int count = 0;
    ReplayStats stats;
    Status status = Wal::Replay((dir_ / "cut.wal").string(),
                                [&](const WriteBatch&) { ++count; }, &stats);
    ASSERT_TRUE(status.ok()) << "size=" << size << ": " << status.ToString();
    EXPECT_EQ(count, 1) << "size=" << size;
    EXPECT_EQ(stats.records, 1u) << "size=" << size;
    EXPECT_EQ(stats.torn_tail, size > second_offset) << "size=" << size;
  }
}

TEST_F(WalTest, BatchCodecRoundTrip) {
  WriteBatch batch;
  batch.Put("alpha", ToBytes(std::string_view("1")));
  batch.Delete("beta");
  batch.Put("", Bytes{});  // empty key and value are legal
  auto decoded = DecodeBatch(EncodeBatch(batch));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->ops().size(), 3u);
  EXPECT_EQ(decoded->ops()[0].key, "alpha");
  EXPECT_EQ(decoded->ops()[1].type, WriteBatch::OpType::kDelete);
  EXPECT_TRUE(decoded->ops()[2].key.empty());
}

// ---------------------------------------------------------------------------
// LSM store
// ---------------------------------------------------------------------------


TEST_F(WalTest, GroupCommitCountersTrackCoalescedAppends) {
  auto syncs_before = metrics::MetricsRegistry::Global().Snapshot().counter(
      "storage.wal.group_commit.syncs");
  auto batched_before = metrics::MetricsRegistry::Global().Snapshot().counter(
      "storage.wal.group_commit.batched");
  auto wal = Wal::Open(path_);
  ASSERT_TRUE(wal.ok());
  WriteBatch b;
  b.Put("k", ToBytes(std::string_view("v")));
  // Three appends coalesce under one fsync: two of them rode along.
  ASSERT_TRUE((*wal)->Append(b).ok());
  ASSERT_TRUE((*wal)->Append(b).ok());
  ASSERT_TRUE((*wal)->Append(b).ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  auto snap = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("storage.wal.group_commit.syncs"), syncs_before + 1);
  EXPECT_EQ(snap.counter("storage.wal.group_commit.batched"), batched_before + 2);

  // A lone append batches nothing further.
  ASSERT_TRUE((*wal)->Append(b).ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  snap = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("storage.wal.group_commit.syncs"), syncs_before + 2);
  EXPECT_EQ(snap.counter("storage.wal.group_commit.batched"), batched_before + 2);

  // A sync with nothing pending is a no-op for the group-commit ledger.
  ASSERT_TRUE((*wal)->Sync().ok());
  snap = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("storage.wal.group_commit.syncs"), syncs_before + 2);
  EXPECT_EQ(snap.counter("storage.wal.group_commit.batched"), batched_before + 2);
}

TEST(LsmStoreTest, SyncIsNoOpWithoutWalAndFsyncsWithOne) {
  // Volatile store: Sync succeeds trivially.
  auto volatile_store = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(volatile_store.ok());
  EXPECT_TRUE((*volatile_store)->Sync().ok());

  // WAL-backed store: Sync reaches the WAL fsync path.
  auto dir = std::filesystem::temp_directory_path() / "confide_lsm_sync";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  LsmOptions options = VolatileOptions();
  options.wal_dir = dir.string();
  auto store = LsmKvStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto syncs_before = metrics::MetricsRegistry::Global().Snapshot().counter(
      "storage.wal.group_commit.syncs");
  ASSERT_TRUE((*store)->Put("k", ToBytes(std::string_view("v"))).ok());
  ASSERT_TRUE((*store)->Sync().ok());
  EXPECT_EQ(metrics::MetricsRegistry::Global().Snapshot().counter(
                "storage.wal.group_commit.syncs"),
            syncs_before + 1);
  std::filesystem::remove_all(dir);
}

TEST(LsmStoreTest, BasicPutGetDelete) {
  auto store = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k", ToBytes(std::string_view("v"))).ok());
  auto got = (*store)->Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(*got), "v");
  ASSERT_TRUE((*store)->Delete("k").ok());
  EXPECT_TRUE((*store)->Get("k").status().IsNotFound());
}

TEST(LsmStoreTest, WriteBatchAtomicView) {
  auto store = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(store.ok());
  WriteBatch batch;
  for (int i = 0; i < 100; ++i) {
    batch.Put("key-" + std::to_string(i), ToBytes(std::to_string(i * 10)));
  }
  ASSERT_TRUE((*store)->Write(batch).ok());
  for (int i = 0; i < 100; ++i) {
    auto got = (*store)->Get("key-" + std::to_string(i));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(ToString(*got), std::to_string(i * 10));
  }
}

TEST(LsmStoreTest, FlushMovesDataToRunsAndLookupsStillWork) {
  auto store = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*store)->Put("k" + std::to_string(i), ToBytes(std::to_string(i))).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_EQ((*store)->RunCount(), 1u);
  for (int i = 0; i < 50; ++i) {
    auto got = (*store)->Get("k" + std::to_string(i));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(ToString(*got), std::to_string(i));
  }
}

TEST(LsmStoreTest, NewerWriteShadowsFlushedRun) {
  auto store = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k", ToBytes(std::string_view("old"))).ok());
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_TRUE((*store)->Put("k", ToBytes(std::string_view("new"))).ok());
  EXPECT_EQ(ToString(*(*store)->Get("k")), "new");

  // Tombstone over a flushed value.
  ASSERT_TRUE((*store)->Delete("k").ok());
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_TRUE((*store)->Get("k").status().IsNotFound());
}

TEST(LsmStoreTest, CompactionMergesRunsAndDropsTombstones) {
  LsmOptions options = VolatileOptions();
  options.max_runs = 2;
  auto store = LsmKvStore::Open(options);
  ASSERT_TRUE(store.ok());
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 10; ++i) {
      std::string key = "k" + std::to_string(i);
      if (round == 3 && i < 5) {
        ASSERT_TRUE((*store)->Delete(key).ok());
      } else {
        ASSERT_TRUE((*store)->Put(key, ToBytes(std::to_string(round))).ok());
      }
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  EXPECT_LE((*store)->RunCount(), 2u);
  for (int i = 0; i < 10; ++i) {
    auto got = (*store)->Get("k" + std::to_string(i));
    if (i < 5) {
      EXPECT_TRUE(got.status().IsNotFound()) << i;
    } else {
      ASSERT_TRUE(got.ok()) << i;
      EXPECT_EQ(ToString(*got), "3");
    }
  }
}

TEST(LsmStoreTest, IteratorSeesMergedSnapshot) {
  auto store = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("a", ToBytes(std::string_view("1"))).ok());
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_TRUE((*store)->Put("b", ToBytes(std::string_view("2"))).ok());
  ASSERT_TRUE((*store)->Put("a", ToBytes(std::string_view("1b"))).ok());
  ASSERT_TRUE((*store)->Delete("c").ok());

  auto it = (*store)->NewIterator();
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "a");
  EXPECT_EQ(ToString(it->value()), "1b");
  it->Next();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "b");
  it->Next();
  EXPECT_FALSE(it->Valid());

  // Snapshot isolation: later writes invisible to the open iterator.
  ASSERT_TRUE((*store)->Put("z", ToBytes(std::string_view("3"))).ok());
  it->SeekToFirst();
  int count = 0;
  for (; it->Valid(); it->Next()) ++count;
  EXPECT_EQ(count, 2);
}

TEST(LsmStoreTest, IteratorSeek) {
  auto store = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(store.ok());
  for (char c = 'a'; c <= 'f'; ++c) {
    ASSERT_TRUE((*store)->Put(std::string(1, c), ToBytes(std::string(1, c))).ok());
  }
  auto it = (*store)->NewIterator();
  it->Seek("c");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "c");
  it->Seek("cc");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "d");
  it->Seek("zzz");
  EXPECT_FALSE(it->Valid());
}

TEST(LsmStoreTest, WalRecoveryRestoresState) {
  auto dir = std::filesystem::temp_directory_path() / "confide_lsm_recovery";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  LsmOptions options = VolatileOptions();
  options.wal_dir = dir.string();
  {
    auto store = LsmKvStore::Open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("persist", ToBytes(std::string_view("me"))).ok());
    ASSERT_TRUE((*store)->Delete("ghost").ok());
    // Store dropped without any clean shutdown: WAL is the only copy.
  }
  {
    auto store = LsmKvStore::Open(options);
    ASSERT_TRUE(store.ok());
    auto got = (*store)->Get("persist");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(ToString(*got), "me");
    EXPECT_TRUE((*store)->Get("ghost").status().IsNotFound());
  }
  std::filesystem::remove_all(dir);
}

TEST(LsmStoreTest, RandomizedAgainstReferenceMap) {
  auto store = LsmKvStore::Open([&] {
    LsmOptions options;
    options.memtable_flush_bytes = 2048;  // force frequent flushes
    options.max_runs = 3;
    return options;
  }());
  ASSERT_TRUE(store.ok());
  std::map<std::string, Bytes> reference;
  crypto::Drbg rng(77);
  for (int i = 0; i < 3000; ++i) {
    std::string key = "k" + std::to_string(rng.NextBounded(200));
    if (rng.NextBounded(4) == 0) {
      ASSERT_TRUE((*store)->Delete(key).ok());
      reference.erase(key);
    } else {
      Bytes value = rng.Generate(1 + rng.NextBounded(40));
      ASSERT_TRUE((*store)->Put(key, value).ok());
      reference[key] = value;
    }
  }
  for (const auto& [key, value] : reference) {
    auto got = (*store)->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value);
  }
  // And absent keys really are absent.
  for (int i = 200; i < 220; ++i) {
    EXPECT_TRUE((*store)->Get("k" + std::to_string(i)).status().IsNotFound());
  }
}

// ---------------------------------------------------------------------------
// Block store
// ---------------------------------------------------------------------------

TEST(BlockStoreTest, AppendAndFetchByHeightAndHash) {
  auto kv = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(kv.ok());
  BlockStore blocks(std::shared_ptr<KvStore>(std::move(*kv)));

  Bytes block0 = ToBytes(std::string_view("genesis"));
  auto h0 = crypto::Sha256::Digest(block0);
  ASSERT_TRUE(blocks.Append(0, h0, block0).ok());
  Bytes block1 = ToBytes(std::string_view("block-1"));
  auto h1 = crypto::Sha256::Digest(block1);
  ASSERT_TRUE(blocks.Append(1, h1, block1).ok());

  EXPECT_EQ(blocks.NextHeight(), 2u);
  EXPECT_EQ(ToString(*blocks.GetByHeight(0)), "genesis");
  EXPECT_EQ(ToString(*blocks.GetByHash(h1)), "block-1");
  EXPECT_TRUE(blocks.GetByHeight(5).status().IsNotFound());
}

TEST(BlockStoreTest, RejectsNonContiguousHeights) {
  auto kv = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(kv.ok());
  BlockStore blocks(std::shared_ptr<KvStore>(std::move(*kv)));
  Bytes block = ToBytes(std::string_view("b"));
  EXPECT_FALSE(blocks.Append(3, crypto::Sha256::Digest(block), block).ok());
}

TEST(BlockStoreTest, SsdModelChargesLatency) {
  auto kv = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(kv.ok());
  SimClock clock;
  BlockStore blocks(std::shared_ptr<KvStore>(std::move(*kv)), &clock);
  Bytes block(4096, 0xbb);
  ASSERT_TRUE(blocks.Append(0, crypto::Sha256::Digest(block), block).ok());
  // Default model: 6 ms + 4 µs/KiB * 4 KiB = 6.016 ms.
  EXPECT_EQ(clock.NowNs(), 6'000'000u + 4 * 4'000u);
}


TEST(BlockStoreTest, RecoverTipRebuildsCursorsFromStore) {
  auto opened = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(opened.ok());
  std::shared_ptr<KvStore> kv = std::move(*opened);
  {
    BlockStore blocks(kv);
    Bytes b0 = ToBytes(std::string_view("block0"));
    Bytes b1 = ToBytes(std::string_view("block1"));
    ASSERT_TRUE(blocks.Append(0, crypto::Sha256::Digest(b0), b0).ok());
    ASSERT_TRUE(blocks.Append(1, crypto::Sha256::Digest(b1), b1).ok());
  }
  // A fresh BlockStore over the same kv models a restart: cursors reset.
  BlockStore recovered(kv);
  EXPECT_EQ(recovered.NextHeight(), 0u);
  ASSERT_TRUE(recovered.RecoverTip().ok());
  EXPECT_EQ(recovered.NextHeight(), 2u);
  EXPECT_EQ(recovered.NextStagedHeight(), 2u);
  // Appending continues from the recovered tip.
  Bytes b2 = ToBytes(std::string_view("block2"));
  EXPECT_TRUE(recovered.Append(2, crypto::Sha256::Digest(b2), b2).ok());
}


namespace {

// Mirrors BlockStore's internal height-key layout so tests can damage
// stored records the way a partial disk write would.
std::string RawHeightKey(uint64_t height) {
  uint8_t be[8];
  StoreBe64(be, height);
  return "blk/h/" + HexEncode(ByteView(be, 8));
}

}  // namespace

TEST(BlockStoreTest, RecoverTipStopsAtFirstMissingHeight) {
  auto opened = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(opened.ok());
  std::shared_ptr<KvStore> kv = std::move(*opened);
  {
    BlockStore blocks(kv);
    for (uint64_t h = 0; h < 3; ++h) {
      Bytes b = ToBytes(std::string_view("block"));
      ASSERT_TRUE(blocks.Append(h, crypto::Sha256::Digest(b), b).ok());
    }
  }
  // Lose the middle record (torn multi-record write). Heights 0 and 2
  // survive; the committed prefix is exactly [0, 1).
  ASSERT_TRUE(kv->Delete(RawHeightKey(1)).ok());

  BlockStore recovered(kv);
  ASSERT_TRUE(recovered.RecoverTip().ok());
  // The scan must stop at the hole: reporting height 3 would hand out a
  // chain whose middle block does not exist.
  EXPECT_EQ(recovered.NextHeight(), 1u);
  // The store keeps extending the true prefix, re-filling the hole.
  Bytes b1 = ToBytes(std::string_view("block1-again"));
  EXPECT_TRUE(recovered.Append(1, crypto::Sha256::Digest(b1), b1).ok());
}

TEST(BlockStoreTest, RecoverTipWithNoGenesisReportsEmptyChain) {
  auto opened = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(opened.ok());
  std::shared_ptr<KvStore> kv = std::move(*opened);
  {
    BlockStore blocks(kv);
    for (uint64_t h = 0; h < 2; ++h) {
      Bytes b = ToBytes(std::string_view("block"));
      ASSERT_TRUE(blocks.Append(h, crypto::Sha256::Digest(b), b).ok());
    }
  }
  // Genesis record lost entirely: nothing is contiguous from 0.
  ASSERT_TRUE(kv->Delete(RawHeightKey(0)).ok());
  BlockStore recovered(kv);
  ASSERT_TRUE(recovered.RecoverTip().ok());
  EXPECT_EQ(recovered.NextHeight(), 0u);
}

TEST(BlockStoreTest, CorruptedTipRecordStillYieldsContiguousHeight) {
  auto opened = LsmKvStore::Open(VolatileOptions());
  ASSERT_TRUE(opened.ok());
  std::shared_ptr<KvStore> kv = std::move(*opened);
  {
    BlockStore blocks(kv);
    for (uint64_t h = 0; h < 2; ++h) {
      Bytes b = ToBytes(std::string_view("block"));
      ASSERT_TRUE(blocks.Append(h, crypto::Sha256::Digest(b), b).ok());
    }
  }
  // Overwrite the tip payload with garbage. The height scan still counts
  // it (the record exists); it is the caller's deserialization of the tip
  // block that must fail loudly — covered by the chain-level recovery
  // test. What RecoverTip must never do is report a height beyond the
  // stored records.
  ASSERT_TRUE(kv->Put(RawHeightKey(1), ToBytes(std::string_view("garbage"))).ok());
  BlockStore recovered(kv);
  ASSERT_TRUE(recovered.RecoverTip().ok());
  EXPECT_EQ(recovered.NextHeight(), 2u);
  auto tip = recovered.GetByHeight(1);
  ASSERT_TRUE(tip.ok());
  EXPECT_EQ(ToString(ByteView(tip->data(), tip->size())), "garbage");
}

}  // namespace
}  // namespace confide::storage
