#include <gtest/gtest.h>

#include "common/endian.h"
#include "lang/compiler.h"
#include "lang/codegen_evm.h"
#include "lang/parser.h"
#include "tests/test_util.h"
#include "vm/cvm/interpreter.h"
#include "vm/evm/evm.h"

namespace confide::lang {
namespace {

using testutil::MapHostEnv;

struct RunOutcome {
  uint64_t return_value = 0;
  Bytes output;
  std::map<std::string, Bytes> storage;
  std::vector<std::string> logs;
};

Result<RunOutcome> RunOnCvm(std::string_view source, std::string_view entry,
                            ByteView input, MapHostEnv* env) {
  CONFIDE_ASSIGN_OR_RETURN(Bytes module, Compile(source, VmTarget::kCvm));
  vm::cvm::CvmVm vm;
  vm::ExecConfig config;
  CONFIDE_ASSIGN_OR_RETURN(vm::ExecutionResult result,
                           vm.Execute(module, entry, input, env, config));
  return RunOutcome{result.return_value, result.output, env->storage, env->logs};
}

Result<RunOutcome> RunOnEvm(std::string_view source, std::string_view entry,
                            ByteView input, MapHostEnv* env) {
  CONFIDE_ASSIGN_OR_RETURN(Bytes code, Compile(source, VmTarget::kEvm));
  Bytes calldata(4);
  StoreBe32(calldata.data(), EvmSelector(entry));
  Append(&calldata, input);
  vm::evm::EvmVm vm;
  vm::ExecConfig config;
  CONFIDE_ASSIGN_OR_RETURN(vm::ExecutionResult result,
                           vm.Execute(code, calldata, env, config));
  return RunOutcome{result.return_value, result.output, env->storage, env->logs};
}

// Runs on both VMs and checks they agree; returns the CVM outcome.
RunOutcome RunBoth(std::string_view source, std::string_view entry,
                   ByteView input = {}) {
  MapHostEnv cvm_env, evm_env;
  auto cvm = RunOnCvm(source, entry, input, &cvm_env);
  auto evm = RunOnEvm(source, entry, input, &evm_env);
  EXPECT_TRUE(cvm.ok()) << "cvm: " << cvm.status().ToString();
  EXPECT_TRUE(evm.ok()) << "evm: " << evm.status().ToString();
  if (!cvm.ok() || !evm.ok()) return RunOutcome{};
  EXPECT_EQ(cvm->return_value, evm->return_value) << "return value diverged";
  EXPECT_EQ(HexEncode(cvm->output), HexEncode(evm->output)) << "output diverged";
  EXPECT_EQ(cvm->logs, evm->logs) << "logs diverged";
  return *cvm;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(ParserTest, ParsesFunctionsAndStatements) {
  auto program = Parse(R"(
    fn add(a, b) { return a + b; }
    fn main() {
      var x = add(1, 2);
      if (x > 2) { x = x * 10; } else { x = 0; }
      while (x < 100) { x = x + 1; }
      return x;
    }
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->functions.size(), 2u);
  EXPECT_EQ(program->functions[0].params.size(), 2u);
}

TEST(ParserTest, RejectsSyntaxErrors) {
  EXPECT_FALSE(Parse("fn f( { }").ok());
  EXPECT_FALSE(Parse("fn f() { var = 3; }").ok());
  EXPECT_FALSE(Parse("fn f() { return 1 }").ok());  // missing semicolon
  EXPECT_FALSE(Parse("f() {}").ok());               // missing fn
  EXPECT_FALSE(Parse("fn f() { if x { } }").ok());  // missing parens
}

TEST(ParserTest, PrecedenceIsCLike) {
  // 2 + 3 * 4 == 14, (2 + 3) * 4 == 20, comparisons bind looser.
  auto result = RunBoth(R"(
    fn main() {
      if (2 + 3 * 4 != 14) { return 1; }
      if ((2 + 3) * 4 != 20) { return 2; }
      if ((1 < 2) != 1) { return 3; }
      if ((1 | 2 & 3) != 3) { return 4; }
      if ((8 >> 1 + 1) != 2) { return 5; }
      return 0;
    }
  )", "main");
  EXPECT_EQ(result.return_value, 0u);
}

// ---------------------------------------------------------------------------
// Differential execution: the same source must agree across backends.
// ---------------------------------------------------------------------------

TEST(CclDiffTest, ArithmeticIncludingNegativesAndDivision) {
  auto result = RunBoth(R"(
    fn main() {
      var a = 0 - 20;
      var b = a / 3;       // -6 (signed division)
      var c = a % 7;       // -6
      var d = (a < 0) + (b == 0 - 6) + (c == 0 - 6);
      return d;
    }
  )", "main");
  EXPECT_EQ(result.return_value, 3u);
}

TEST(CclDiffTest, ShiftAndBitwiseSemantics) {
  auto result = RunBoth(R"(
    fn main() {
      var x = 1 << 40;
      var y = x >> 8;
      var n = 0 - 256;
      var z = n >> 4;       // arithmetic: -16
      if (z != 0 - 16) { return 1; }
      if ((~0) != 0 - 1) { return 2; }
      if ((x ^ x) != 0) { return 3; }
      return y;
    }
  )", "main");
  EXPECT_EQ(result.return_value, uint64_t(1) << 32);
}

TEST(CclDiffTest, ShortCircuitEvaluation) {
  // Division by zero on the skipped side must not execute.
  auto result = RunBoth(R"(
    fn boom() { return 1 / 0; }
    fn main() {
      var a = 0;
      if (a != 0 && boom() == 1) { return 1; }
      if (a == 0 || boom() == 1) { return 42; }
      return 2;
    }
  )", "main");
  EXPECT_EQ(result.return_value, 42u);
}

TEST(CclDiffTest, WhileWithBreakContinue) {
  auto result = RunBoth(R"(
    fn main() {
      var sum = 0;
      var i = 0;
      while (i < 100) {
        i = i + 1;
        if (i % 2 == 0) { continue; }
        if (i > 20) { break; }
        sum = sum + i;
      }
      return sum;  // 1+3+...+19 = 100
    }
  )", "main");
  EXPECT_EQ(result.return_value, 100u);
}

TEST(CclDiffTest, FunctionCallsAndRecursion) {
  auto result = RunBoth(R"(
    fn fib(n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    fn main() { return fib(15); }
  )", "main");
  EXPECT_EQ(result.return_value, 610u);
}

TEST(CclDiffTest, MemoryAndAlloc) {
  auto result = RunBoth(R"(
    fn main() {
      var p = alloc(64);
      var q = alloc(64);
      if (q <= p) { return 1; }  // distinct regions
      store8(p, 17);
      store8(q, 34);
      if (load8(p) != 17 || load8(q) != 34) { return 2; }
      memset(p, 7, 16);
      memcpy(q, p, 16);
      if (load8(q + 15) != 7) { return 3; }
      return 0;
    }
  )", "main");
  EXPECT_EQ(result.return_value, 0u);
}

TEST(CclDiffTest, StringsAndLiteralPool) {
  auto result = RunBoth(R"(
    fn main() {
      var s = "hello";
      var t = "hello";
      if (s != t) { return 1; }   // interned
      if (strlen(s) != 5) { return 2; }
      var buf = alloc(32);
      var end = str_append(buf, s);
      end = str_append(end, " world");
      if (end - buf != 11) { return 3; }
      write_output(buf, 11);
      return 0;
    }
  )", "main");
  EXPECT_EQ(result.return_value, 0u);
  EXPECT_EQ(ToString(result.output), "hello world");
}

TEST(CclDiffTest, InputEchoAndSize) {
  auto result = RunBoth(R"(
    fn main() {
      var n = input_size();
      var buf = alloc(n + 1);
      var copied = read_input(buf, n);
      write_output(buf, copied);
      return n;
    }
  )", "main", AsByteView("payload-bytes"));
  EXPECT_EQ(result.return_value, 13u);
  EXPECT_EQ(ToString(result.output), "payload-bytes");
}

TEST(CclDiffTest, StorageRoundTripAcrossBackends) {
  auto result = RunBoth(R"(
    fn main() {
      var key = "account:alice";
      var val = alloc(16);
      memset(val, 65, 8);
      set_storage(key, strlen(key), val, 8);
      var out = alloc(64);
      var n = get_storage(key, strlen(key), out, 64);
      if (n != 8) { return 1; }
      if (load8(out) != 65 || load8(out + 7) != 65) { return 2; }
      return 0;
    }
  )", "main");
  EXPECT_EQ(result.return_value, 0u);
}

TEST(CclDiffTest, HashBuiltinsProduceRealDigests) {
  auto result = RunBoth(R"(
    fn main() {
      var msg = "abc";
      var d = alloc(32);
      sha256(msg, 3, d);
      if (load8(d) != 186) { return 1; }   // 0xba
      keccak256(msg, 3, d);
      if (load8(d) != 78) { return 2; }    // 0x4e
      write_output(d, 32);
      return 0;
    }
  )", "main");
  EXPECT_EQ(result.return_value, 0u);
  EXPECT_EQ(HexEncode(result.output),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
}

TEST(CclDiffTest, DecimalConversionHelpers) {
  auto result = RunBoth(R"(
    fn main() {
      var buf = alloc(32);
      var n = u64_to_dec(1234567, buf);
      if (n != 7) { return 1; }
      var v = dec_to_u64(buf);
      if (v != 1234567) { return 2; }
      write_output(buf, n);
      return 0;
    }
  )", "main");
  EXPECT_EQ(result.return_value, 0u);
  EXPECT_EQ(ToString(result.output), "1234567");
}

TEST(CclDiffTest, JsonScanningInContract) {
  const char* source = R"(
    fn main() {
      var n = input_size();
      var json = alloc(n + 1);
      read_input(json, n);
      var count = json_count_fields(json, n);
      var vp = json_find_field(json, n, "amount");
      if (vp == 0) { return 1; }
      var amount = dec_to_u64(vp);
      var namep = json_find_field(json, n, "name");
      if (namep == 0) { return 2; }
      var name = alloc(64);
      var namelen = json_copy_string(namep, name, 64);
      write_output(name, namelen);
      return count * 1000000 + amount;
    }
  )";
  std::string json =
      R"({"id": 7, "name": "alice corp", "nested": {"a": [1, 2, 3]}, )"
      R"("amount": 98765, "flag": true})";
  auto result = RunBoth(source, "main", AsByteView(json));
  EXPECT_EQ(result.return_value, 5u * 1000000 + 98765);
  EXPECT_EQ(ToString(result.output), "alice corp");
}

TEST(CclDiffTest, CrossContractCall) {
  const char* source = R"(
    fn main() {
      var addr = "bank";
      var in = "deposit";
      var out = alloc(64);
      var n = call(addr, 4, in, 7, out, 64);
      write_output(out, n);
      return n;
    }
  )";
  MapHostEnv cvm_env, evm_env;
  auto hook = [](ByteView address, ByteView input) -> Result<Bytes> {
    EXPECT_EQ(ToString(address), "bank");
    EXPECT_EQ(ToString(input), "deposit");
    return ToBytes(std::string_view("ack"));
  };
  cvm_env.call_hook = hook;
  evm_env.call_hook = hook;
  auto cvm = RunOnCvm(source, "main", {}, &cvm_env);
  auto evm = RunOnEvm(source, "main", {}, &evm_env);
  ASSERT_TRUE(cvm.ok()) << cvm.status().ToString();
  ASSERT_TRUE(evm.ok()) << evm.status().ToString();
  EXPECT_EQ(cvm->return_value, 3u);
  EXPECT_EQ(evm->return_value, 3u);
  EXPECT_EQ(ToString(cvm->output), "ack");
  EXPECT_EQ(ToString(evm->output), "ack");
}

TEST(CclDiffTest, AbortTrapsOnBothBackends) {
  const char* source = R"(fn main() { abort(9); return 0; })";
  MapHostEnv env1, env2;
  EXPECT_TRUE(RunOnCvm(source, "main", {}, &env1).status().IsVmTrap());
  EXPECT_TRUE(RunOnEvm(source, "main", {}, &env2).status().IsVmTrap());
}

TEST(CclDiffTest, LogsReachTheEnvironment) {
  auto result = RunBoth(R"(
    fn main() {
      var msg = "asset transferred";
      log(msg, strlen(msg));
      return 0;
    }
  )", "main");
  ASSERT_EQ(result.logs.size(), 1u);
  EXPECT_EQ(result.logs[0], "asset transferred");
}

TEST(CclDiffTest, BlockScopingAndShadowing) {
  auto result = RunBoth(R"(
    fn main() {
      var x = 1;
      {
        var y = 10;
        x = x + y;
      }
      {
        var y = 100;
        x = x + y;
      }
      return x;
    }
  )", "main");
  EXPECT_EQ(result.return_value, 111u);
}

// ---------------------------------------------------------------------------
// Semantic errors
// ---------------------------------------------------------------------------

TEST(CclSemanticsTest, UndefinedVariableRejected) {
  EXPECT_FALSE(Compile("fn main() { return nope; }", VmTarget::kCvm).ok());
  EXPECT_FALSE(Compile("fn main() { return nope; }", VmTarget::kEvm).ok());
}

TEST(CclSemanticsTest, UnknownFunctionRejected) {
  EXPECT_FALSE(Compile("fn main() { return missing(); }", VmTarget::kCvm).ok());
}

TEST(CclSemanticsTest, ArityMismatchRejected) {
  const char* source = "fn f(a) { return a; } fn main() { return f(1, 2); }";
  EXPECT_FALSE(Compile(source, VmTarget::kCvm).ok());
  EXPECT_FALSE(Compile(source, VmTarget::kEvm).ok());
}

TEST(CclSemanticsTest, BuiltinArityChecked) {
  EXPECT_FALSE(Compile("fn main() { return load8(); }", VmTarget::kCvm).ok());
  EXPECT_FALSE(Compile("fn main() { return load8(1, 2); }", VmTarget::kEvm).ok());
}

TEST(CclSemanticsTest, BreakOutsideLoopRejected) {
  EXPECT_FALSE(Compile("fn main() { break; return 0; }", VmTarget::kCvm).ok());
  EXPECT_FALSE(Compile("fn main() { break; return 0; }", VmTarget::kEvm).ok());
}

TEST(CclSemanticsTest, DuplicateFunctionRejected) {
  const char* source = "fn f() { return 1; } fn f() { return 2; }";
  EXPECT_FALSE(Compile(source, VmTarget::kCvm).ok());
}

// Parameterized sweep: a compute kernel over a range of inputs must agree
// across backends (differential property test).
class CclKernelSweep : public ::testing::TestWithParam<int> {};

TEST_P(CclKernelSweep, CollatzStepsAgree) {
  int n = GetParam();
  std::string source = R"(
    fn steps(n) {
      var count = 0;
      while (n != 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
        count = count + 1;
      }
      return count;
    }
    fn main() { return steps()" + std::to_string(n) + R"(); }
  )";
  RunBoth(source, "main");  // asserts agreement internally
}

INSTANTIATE_TEST_SUITE_P(SmallInputs, CclKernelSweep,
                         ::testing::Values(1, 2, 3, 7, 27, 97, 871));

}  // namespace
}  // namespace confide::lang
