#include <gtest/gtest.h>

#include "crypto/keccak.h"
#include "tests/test_util.h"
#include "vm/evm/evm.h"
#include "vm/evm/uint256.h"

namespace confide::vm::evm {
namespace {

using testutil::MapHostEnv;

ExecConfig DefaultConfig() { return ExecConfig{}; }

U256 FromHex(std::string_view hex) {
  auto bytes = HexDecode(hex);
  EXPECT_TRUE(bytes.ok());
  return U256::FromBytesBe(*bytes);
}

// ---------------------------------------------------------------------------
// uint256
// ---------------------------------------------------------------------------

TEST(U256Test, BytesRoundTrip) {
  U256 v = FromHex("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
  EXPECT_EQ(v.ToHex(),
            "0x0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
  EXPECT_EQ(U256(0x1234).ToHex(),
            "0x0000000000000000000000000000000000000000000000000000000000001234");
}

TEST(U256Test, AddWithCarryChains) {
  U256 max = Not(U256());
  EXPECT_TRUE(Add(max, U256(1)).IsZero());  // wraparound
  U256 a = FromHex("ffffffffffffffffffffffffffffffff");  // 2^128 - 1
  U256 sum = Add(a, U256(1));
  EXPECT_EQ(sum.limb[2], 1u);
  EXPECT_EQ(sum.limb[0], 0u);
}

TEST(U256Test, SubBorrows) {
  EXPECT_EQ(Sub(U256(5), U256(3)).AsU64(), 2u);
  U256 neg = Sub(U256(0), U256(1));
  EXPECT_EQ(neg, Not(U256()));  // -1 = all ones
}

TEST(U256Test, MulWraps) {
  EXPECT_EQ(Mul(U256(7), U256(6)).AsU64(), 42u);
  // (2^128)^2 wraps to zero.
  U256 big = Shl(U256(1), 128);
  EXPECT_TRUE(Mul(big, big).IsZero());
  // (2^64) * (2^64) = 2^128.
  U256 r = Mul(Shl(U256(1), 64), Shl(U256(1), 64));
  EXPECT_EQ(r, Shl(U256(1), 128));
}

TEST(U256Test, DivModLongDivision) {
  EXPECT_EQ(Div(U256(100), U256(7)).AsU64(), 14u);
  EXPECT_EQ(Mod(U256(100), U256(7)).AsU64(), 2u);
  EXPECT_TRUE(Div(U256(5), U256()).IsZero());  // EVM: x/0 == 0
  EXPECT_TRUE(Mod(U256(5), U256()).IsZero());

  // 2^200 / 2^100 == 2^100.
  EXPECT_EQ(Div(Shl(U256(1), 200), Shl(U256(1), 100)), Shl(U256(1), 100));

  // Large random-ish value: check a*q + r == a for division identity.
  U256 a = FromHex("deadbeefcafebabe1234567890abcdefdeadbeefcafebabe1234567890abcdef");
  U256 b = FromHex("ffff1234567890");
  U256 q = Div(a, b);
  U256 r = Mod(a, b);
  EXPECT_EQ(Add(Mul(q, b), r), a);
  EXPECT_TRUE(Lt(r, b));
}

TEST(U256Test, SignedOps) {
  U256 minus_ten = Neg(U256(10));
  EXPECT_EQ(SDiv(minus_ten, U256(3)), Neg(U256(3)));
  EXPECT_EQ(SMod(minus_ten, U256(3)), Neg(U256(1)));
  EXPECT_TRUE(SLt(minus_ten, U256(1)));
  EXPECT_FALSE(SLt(U256(1), minus_ten));
  EXPECT_FALSE(Lt(minus_ten, U256(1)));  // unsigned: huge
}

TEST(U256Test, Shifts) {
  EXPECT_EQ(Shl(U256(1), 255).Bit(255), true);
  EXPECT_TRUE(Shl(U256(1), 256).IsZero());
  EXPECT_EQ(Shr(Shl(U256(0xff), 100), 100).AsU64(), 0xffu);
  // SAR keeps the sign.
  U256 neg = Neg(U256(16));
  EXPECT_EQ(Sar(neg, 2), Neg(U256(4)));
  EXPECT_EQ(Sar(neg, 256), Not(U256()));
}

TEST(U256Test, SignExtendAndByte) {
  // 0xff as a 1-byte signed value is -1.
  EXPECT_EQ(SignExtend(0, U256(0xff)), Not(U256()));
  // 0x7f stays positive.
  EXPECT_EQ(SignExtend(0, U256(0x7f)).AsU64(), 0x7fu);
  // Byte 31 is the least significant.
  EXPECT_EQ(ByteAt(U256(0xab), 31), 0xabu);
  EXPECT_EQ(ByteAt(Shl(U256(0xcd), 248), 0), 0xcdu);
}

// ---------------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------------

Result<ExecutionResult> RunCode(EvmAssembler& assembler, MapHostEnv* env,
                            ByteView input = {}) {
  auto code = assembler.Finish();
  EXPECT_TRUE(code.ok());
  EvmVm vm;
  return vm.Execute(*code, input, env, DefaultConfig());
}

TEST(EvmTest, ArithmeticAndReturn32ByteValue) {
  // return (3 + 4) * 5 as a 32-byte word
  EvmAssembler assembler;
  assembler.Push(4).Push(3).Op(OP_ADD).Push(5).Op(OP_MUL);
  assembler.Push(0).Op(OP_MSTORE);
  assembler.Push(32).Push(0).Op(OP_RETURN);
  MapHostEnv env;
  auto result = RunCode(assembler, &env);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(U256::FromBytesBe(result->output).AsU64(), 35u);
}

TEST(EvmTest, StackOpsDupSwapPop) {
  EvmAssembler assembler;
  assembler.Push(1).Push(2).Push(3);
  assembler.Op(OP_DUP1 + 2);   // dup third: 1 2 3 1
  assembler.Op(OP_SWAP1);      // 1 2 1 3
  assembler.Op(OP_POP);        // 1 2 1
  assembler.Op(OP_ADD);        // 1 3
  assembler.Op(OP_ADD);        // 4
  assembler.Push(0).Op(OP_MSTORE).Push(32).Push(0).Op(OP_RETURN);
  MapHostEnv env;
  auto result = RunCode(assembler, &env);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(U256::FromBytesBe(result->output).AsU64(), 4u);
}

TEST(EvmTest, JumpLoopSums) {
  // i in [0,10): sum += i, via JUMPI loop. Locals in memory 0x00 (sum), 0x20 (i).
  EvmAssembler assembler;
  auto loop = assembler.NewLabel();
  auto body = assembler.NewLabel();
  auto done = assembler.NewLabel();
  assembler.Bind(loop);
  // if (i < 10) goto body else done
  assembler.Push(10).Push(0x20).Op(OP_MLOAD).Op(OP_LT);  // i < 10
  assembler.PushLabel(body).Op(OP_JUMPI);
  assembler.PushLabel(done).Op(OP_JUMP);
  assembler.Bind(body);
  // sum += i
  assembler.Push(0x20).Op(OP_MLOAD).Push(0).Op(OP_MLOAD).Op(OP_ADD);
  assembler.Push(0).Op(OP_MSTORE);
  // i += 1
  assembler.Push(1).Push(0x20).Op(OP_MLOAD).Op(OP_ADD).Push(0x20).Op(OP_MSTORE);
  assembler.PushLabel(loop).Op(OP_JUMP);
  assembler.Bind(done);
  assembler.Push(32).Push(0).Op(OP_RETURN);
  MapHostEnv env;
  auto result = RunCode(assembler, &env);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(U256::FromBytesBe(result->output).AsU64(), 45u);
}

TEST(EvmTest, JumpToNonJumpdestTraps) {
  EvmAssembler assembler;
  assembler.Push(0).Op(OP_JUMP);  // offset 0 is PUSH, not JUMPDEST
  MapHostEnv env;
  auto result = RunCode(assembler, &env);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsVmTrap());
}

TEST(EvmTest, Sha3MatchesKeccak) {
  EvmAssembler assembler;
  // "abc" into memory at 0 byte by byte, then SHA3(0, 3).
  assembler.Push('a').Push(0).Op(OP_MSTORE8);
  assembler.Push('b').Push(1).Op(OP_MSTORE8);
  assembler.Push('c').Push(2).Op(OP_MSTORE8);
  assembler.Push(3).Push(0).Op(OP_SHA3);
  assembler.Push(0).Op(OP_MSTORE).Push(32).Push(0).Op(OP_RETURN);
  MapHostEnv env;
  auto result = RunCode(assembler, &env);
  ASSERT_TRUE(result.ok());
  auto expected = crypto::Keccak256::Digest(AsByteView("abc"));
  EXPECT_EQ(HexEncode(result->output), HexEncode(crypto::HashView(expected)));
}

TEST(EvmTest, CalldataAccess) {
  EvmAssembler assembler;
  assembler.Push(0).Op(OP_CALLDATALOAD);
  assembler.Push(0).Op(OP_MSTORE);
  assembler.Op(OP_CALLDATASIZE).Push(0x20).Op(OP_MSTORE);
  assembler.Push(64).Push(0).Op(OP_RETURN);
  MapHostEnv env;
  Bytes input(32, 0);
  input[31] = 9;
  auto result = RunCode(assembler, &env, input);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(U256::FromBytesBe(ByteView(result->output.data(), 32)).AsU64(), 9u);
  EXPECT_EQ(U256::FromBytesBe(ByteView(result->output.data() + 32, 32)).AsU64(), 32u);
}

TEST(EvmTest, SloadSstoreWordGranular) {
  EvmAssembler assembler;
  assembler.Push(1234).Push(7).Op(OP_SSTORE);  // storage[7] = 1234
  assembler.Push(7).Op(OP_SLOAD);
  assembler.Push(0).Op(OP_MSTORE).Push(32).Push(0).Op(OP_RETURN);
  MapHostEnv env;
  auto result = RunCode(assembler, &env);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(U256::FromBytesBe(result->output).AsU64(), 1234u);
  EXPECT_EQ(env.set_count, 1);
  EXPECT_EQ(env.get_count, 1);
}

TEST(EvmTest, ByteRangeStorageAmplifiesToWordOps) {
  // XSETSTORAGE of a 100-byte value must hit the host once per 32-byte
  // word plus the length slot: 1 + ceil(100/32) = 5 SetStorage calls.
  EvmAssembler assembler;
  // key "k" at mem 0; value 100 bytes at mem 32 (zero-filled is fine).
  assembler.Push('k').Push(0).Op(OP_MSTORE8);
  assembler.Push(100).Push(32).Push(1).Push(0).Op(OP_XSETSTORAGE);
  assembler.Op(OP_POP);
  // Read back: cap 256 at mem 512.
  assembler.Push(256).Push(512).Push(1).Push(0).Op(OP_XGETSTORAGE);
  assembler.Push(0).Op(OP_MSTORE).Push(32).Push(0).Op(OP_RETURN);
  MapHostEnv env;
  auto result = RunCode(assembler, &env);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(U256::FromBytesBe(result->output).AsU64(), 100u);  // stored length
  EXPECT_EQ(env.set_count, 5);
  EXPECT_EQ(env.get_count, 5);
}

TEST(EvmTest, XSha256Precompile) {
  EvmAssembler assembler;
  assembler.Push('a').Push(0).Op(OP_MSTORE8);
  assembler.Push('b').Push(1).Op(OP_MSTORE8);
  assembler.Push('c').Push(2).Op(OP_MSTORE8);
  assembler.Push(64).Push(3).Push(0).Op(OP_XSHA256).Op(OP_POP);
  assembler.Push(32).Push(64).Op(OP_RETURN);
  MapHostEnv env;
  auto result = RunCode(assembler, &env);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(HexEncode(result->output),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(EvmTest, XCallRoutesToHostEnv) {
  EvmAssembler assembler;
  assembler.Push('A').Push(0).Op(OP_MSTORE8);  // address "A"
  assembler.Push(64).Push(128).Push(0).Push(0).Push(1).Push(0).Op(OP_XCALL);
  assembler.Push(0).Op(OP_MSTORE).Push(32).Push(0).Op(OP_RETURN);
  MapHostEnv env;
  env.call_hook = [](ByteView address, ByteView) -> Result<Bytes> {
    EXPECT_EQ(ToString(address), "A");
    return ToBytes(std::string_view("ok"));
  };
  auto result = RunCode(assembler, &env);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(U256::FromBytesBe(result->output).AsU64(), 2u);  // out length
}

TEST(EvmTest, RevertAndInvalidTrap) {
  {
    EvmAssembler assembler;
    assembler.Push(0).Push(0).Op(OP_REVERT);
    MapHostEnv env;
    EXPECT_TRUE(RunCode(assembler, &env).status().IsVmTrap());
  }
  {
    EvmAssembler assembler;
    assembler.Op(OP_INVALID);
    MapHostEnv env;
    EXPECT_TRUE(RunCode(assembler, &env).status().IsVmTrap());
  }
}

TEST(EvmTest, OutOfGasOnInfiniteLoop) {
  EvmAssembler assembler;
  auto loop = assembler.NewLabel();
  assembler.Bind(loop);
  assembler.PushLabel(loop).Op(OP_JUMP);
  auto code = assembler.Finish();
  ASSERT_TRUE(code.ok());
  MapHostEnv env;
  EvmVm vm;
  ExecConfig config;
  config.gas_limit = 100000;
  auto result = vm.Execute(*code, {}, &env, config);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(EvmTest, StackUnderflowTraps) {
  EvmAssembler assembler;
  assembler.Op(OP_ADD);
  MapHostEnv env;
  EXPECT_TRUE(RunCode(assembler, &env).status().IsVmTrap());
}

TEST(EvmTest, MemoryExpansionChargesQuadratically) {
  MapHostEnv env;
  EvmVm vm;
  uint64_t small_gas, large_gas;
  {
    EvmAssembler assembler;
    assembler.Push(0).Push(1024).Op(OP_MSTORE).Op(OP_STOP);
    auto code = assembler.Finish();
    auto r = vm.Execute(*code, {}, &env, DefaultConfig());
    ASSERT_TRUE(r.ok());
    small_gas = r->gas_used;
  }
  {
    EvmAssembler assembler;
    assembler.Push(0).Push(1 << 20).Op(OP_MSTORE).Op(OP_STOP);
    auto code = assembler.Finish();
    auto r = vm.Execute(*code, {}, &env, DefaultConfig());
    ASSERT_TRUE(r.ok());
    large_gas = r->gas_used;
  }
  // 1 MiB touch must cost far more than 1 KiB (quadratic term).
  EXPECT_GT(large_gas, small_gas * 100);
}

TEST(EvmTest, SignExtendOpcode) {
  EvmAssembler assembler;
  assembler.Push(0xff).Push(0).Op(OP_SIGNEXTEND);  // -> -1
  assembler.Push(1).Op(OP_ADD);                    // -> 0
  assembler.Op(OP_ISZERO);
  assembler.Push(0).Op(OP_MSTORE).Push(32).Push(0).Op(OP_RETURN);
  MapHostEnv env;
  auto result = RunCode(assembler, &env);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(U256::FromBytesBe(result->output).AsU64(), 1u);
}

}  // namespace
}  // namespace confide::vm::evm
