/// \file security_test.cc
/// \brief Adversarial tests for the §3.3 threat model: a malicious host
/// that reads and rewrites the database, replays stale state, swaps
/// ciphertexts, forges attestations, or replays other users' envelopes.

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "confide/client.h"
#include "confide/freshness.h"
#include "confide/system.h"
#include "crypto/drbg.h"
#include "lang/compiler.h"
#include "serialize/rlp.h"
#include "storage/kv_store.h"

namespace confide::core {
namespace {

using chain::NamedAddress;

constexpr const char* kCounterSource = R"(
fn bump() {
  var key = "n";
  var buf = alloc(16);
  var got = get_storage(key, 1, buf, 16);
  var value = 0;
  if (got == 8) { value = load64(buf); }
  value = value + 1;
  store64(buf, value);
  set_storage(key, 1, buf, 8);
  write_output(buf, 8);
  return value;
}
)";

Bytes DeployPayload(const Bytes& code) {
  std::vector<serialize::RlpItem> items;
  items.push_back(serialize::RlpItem::U64(0));  // kCvm
  items.push_back(serialize::RlpItem(code));
  return serialize::RlpEncode(serialize::RlpItem::List(std::move(items)));
}

class MaliciousHostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SystemOptions options;
    options.seed = 9100;
    auto sys = ConfideSystem::BootstrapFirst(options);
    ASSERT_TRUE(sys.ok());
    sys_ = std::move(*sys);
    client_ = std::make_unique<Client>(9200, sys_->pk_tx());
    addr_ = NamedAddress("victim");

    auto code = lang::Compile(kCounterSource, lang::VmTarget::kCvm);
    ASSERT_TRUE(code.ok()) << code.status().ToString();
    auto deploy = client_->MakeConfidentialTx(addr_, "__deploy__",
                                              DeployPayload(*code));
    ASSERT_TRUE(deploy.ok());
    ASSERT_TRUE(sys_->node()->SubmitTransaction(deploy->tx).ok());
    ASSERT_TRUE(sys_->RunToCompletion().ok());
  }

  // Runs one bump() and returns (receipt, k_tx).
  std::pair<chain::Receipt, TxKey> Bump() {
    auto call = client_->MakeConfidentialTx(addr_, "bump", Bytes{});
    EXPECT_TRUE(call.ok());
    EXPECT_TRUE(sys_->node()->SubmitTransaction(call->tx).ok());
    auto receipts = sys_->RunToCompletion();
    EXPECT_TRUE(receipts.ok());
    EXPECT_EQ(receipts->size(), 1u);
    return {(*receipts)[0], call->k_tx};
  }

  std::unique_ptr<ConfideSystem> sys_;
  std::unique_ptr<Client> client_;
  chain::Address addr_;
};

TEST_F(MaliciousHostTest, TamperedStateIsDetectedAtNextExecution) {
  auto [r1, k1] = Bump();
  ASSERT_TRUE(r1.success);

  // The host flips bits in the sealed counter.
  auto sealed = sys_->node()->state()->Get(addr_, AsByteView("n"));
  ASSERT_TRUE(sealed.ok());
  Bytes corrupted = *sealed;
  corrupted[corrupted.size() / 2] ^= 0xff;
  sys_->node()->state()->Put(addr_, AsByteView("n"), corrupted);
  ASSERT_TRUE(sys_->node()->state()->Commit().ok());

  // The next confidential execution must fail authentication, not
  // compute on forged data.
  auto [r2, k2] = Bump();
  EXPECT_FALSE(r2.success);
  EXPECT_NE(r2.status_message.find("Crypto"), std::string::npos)
      << r2.status_message;
}

TEST_F(MaliciousHostTest, StateSwappedBetweenKeysIsDetected) {
  auto [r1, k1] = Bump();
  ASSERT_TRUE(r1.success);

  // Move the sealed value to a different key of the same contract; the
  // D-Protocol AAD binds the state key, so the engine must reject it.
  auto sealed = sys_->node()->state()->Get(addr_, AsByteView("n"));
  ASSERT_TRUE(sealed.ok());
  sys_->node()->state()->Put(addr_, AsByteView("m"), *sealed);
  ASSERT_TRUE(sys_->node()->state()->Commit().ok());

  const char* kReadM = R"(
    fn readm() {
      var buf = alloc(64);
      var got = get_storage("m", 1, buf, 64);
      write_output(buf, 8);
      return got;
    }
  )";
  auto code = lang::Compile(kReadM, lang::VmTarget::kCvm);
  ASSERT_TRUE(code.ok());
  chain::Address addr2 = addr_;  // same contract would be needed; deploy aside
  // Redeploy at the same address is simplest: the reader runs in the same
  // contract namespace, hitting the swapped key.
  auto deploy = client_->MakeConfidentialTx(addr2, "__deploy__", DeployPayload(*code));
  ASSERT_TRUE(deploy.ok());
  ASSERT_TRUE(sys_->node()->SubmitTransaction(deploy->tx).ok());
  ASSERT_TRUE(sys_->RunToCompletion().ok());

  auto call = client_->MakeConfidentialTx(addr2, "readm", Bytes{});
  ASSERT_TRUE(call.ok());
  ASSERT_TRUE(sys_->node()->SubmitTransaction(call->tx).ok());
  auto receipts = sys_->RunToCompletion();
  ASSERT_TRUE(receipts.ok());
  EXPECT_FALSE((*receipts)[0].success);  // AAD mismatch -> CryptoError
}

TEST_F(MaliciousHostTest, RolledBackStateStillAuthenticatesButRootDiverges) {
  // Rollback (§3.3): the host restores an OLD sealed value. AES-GCM alone
  // cannot detect this (the old ciphertext is authentic); what protects
  // the ledger is consensus on state continuity — replicas that did not
  // roll back produce a different state root. (With
  // SystemOptions::enable_state_continuity the node additionally detects
  // whole-store restores *locally* via the freshness header; see
  // StateContinuityTest below. This test runs without it to demonstrate
  // the consensus-level defense alone.)
  auto [r1, k1] = Bump();
  ASSERT_TRUE(r1.success);
  auto old_sealed = sys_->node()->state()->Get(addr_, AsByteView("n"));
  ASSERT_TRUE(old_sealed.ok());
  auto [r2, k2] = Bump();
  ASSERT_TRUE(r2.success);

  // Malicious rollback to the value after the first bump.
  sys_->node()->state()->Put(addr_, AsByteView("n"), *old_sealed);
  ASSERT_TRUE(sys_->node()->state()->Commit().ok());

  auto [r3, k3] = Bump();
  ASSERT_TRUE(r3.success);  // decrypts fine: the data is stale, not forged
  auto opened = Client::OpenSealedReceipt(k3, r3.output);
  ASSERT_TRUE(opened.ok());
  // The enclave computed 1+1=2 again — locally undetectable...
  EXPECT_EQ(opened->output[0], 2);
  // ...but an honest replica that executed the same three transactions
  // (without the rollback) disagrees at the third receipt, so the forged
  // node cannot get its block past consensus.
  SystemOptions options;
  options.seed = 9100;  // same consortium keys path
  auto honest = ConfideSystem::BootstrapFirst(options);
  ASSERT_TRUE(honest.ok());
  // (State roots would diverge; here we assert the honest sequence yields
  // 3, demonstrating the divergence consensus would catch.)
  Client honest_client(9200, (*honest)->pk_tx());
  auto code = lang::Compile(kCounterSource, lang::VmTarget::kCvm);
  auto deploy = honest_client.MakeConfidentialTx(addr_, "__deploy__",
                                                 DeployPayload(*code));
  ASSERT_TRUE(deploy.ok());
  ASSERT_TRUE((*honest)->node()->SubmitTransaction(deploy->tx).ok());
  ASSERT_TRUE((*honest)->RunToCompletion().ok());
  chain::Receipt last;
  TxKey last_key{};
  for (int i = 0; i < 3; ++i) {
    auto call = honest_client.MakeConfidentialTx(addr_, "bump", Bytes{});
    ASSERT_TRUE(call.ok());
    ASSERT_TRUE((*honest)->node()->SubmitTransaction(call->tx).ok());
    auto receipts = (*honest)->RunToCompletion();
    ASSERT_TRUE(receipts.ok());
    last = (*receipts)[0];
    last_key = call->k_tx;
  }
  auto honest_opened = Client::OpenSealedReceipt(last_key, last.output);
  ASSERT_TRUE(honest_opened.ok());
  EXPECT_EQ(honest_opened->output[0], 3);  // diverges from the rolled-back 2
}

TEST_F(MaliciousHostTest, ReceiptUnreadableWithoutTxKey) {
  auto [receipt, k_tx] = Bump();
  ASSERT_TRUE(receipt.success);
  // Brute tampering with the key must fail; only the exact k_tx opens it.
  for (int i = 0; i < 8; ++i) {
    TxKey wrong = k_tx;
    wrong[i] ^= uint8_t(1 + i);
    EXPECT_FALSE(Client::OpenSealedReceipt(wrong, receipt.output).ok());
  }
  EXPECT_TRUE(Client::OpenSealedReceipt(k_tx, receipt.output).ok());
}

TEST_F(MaliciousHostTest, ForeignEnvelopeCannotBeOpenedByOtherConsortium) {
  // An envelope sealed for this consortium's pk_tx is garbage to a
  // different consortium's engine (different sk_tx).
  SystemOptions options;
  options.seed = 9999;  // different consortium
  auto other = ConfideSystem::BootstrapFirst(options);
  ASSERT_TRUE(other.ok());
  ASSERT_NE((*other)->pk_tx(), sys_->pk_tx());

  auto call = client_->MakeConfidentialTx(addr_, "bump", Bytes{});
  ASSERT_TRUE(call.ok());
  ASSERT_TRUE((*other)->node()->SubmitTransaction(call->tx).ok());
  auto verified = (*other)->node()->PreVerify();
  ASSERT_TRUE(verified.ok());
  EXPECT_EQ(*verified, 0u);  // discarded: envelope does not open
}

TEST_F(MaliciousHostTest, ReplayedEnvelopeReexecutesDeterministically) {
  // Replaying the same confidential transaction is visible: identical
  // tx hash (the node/application layer can deduplicate) and, thanks to
  // deterministic sealing, byte-identical state after each replay.
  auto call = client_->MakeConfidentialTx(addr_, "bump", Bytes{});
  ASSERT_TRUE(call.ok());
  ASSERT_TRUE(sys_->node()->SubmitTransaction(call->tx).ok());
  ASSERT_TRUE(sys_->RunToCompletion().ok());
  auto state1 = sys_->node()->state()->Get(addr_, AsByteView("n"));
  ASSERT_TRUE(state1.ok());

  chain::Transaction replay = call->tx;
  EXPECT_EQ(replay.Hash(), call->tx.Hash());
  ASSERT_TRUE(sys_->node()->SubmitTransaction(replay).ok());
  auto receipts = sys_->RunToCompletion();
  ASSERT_TRUE(receipts.ok());
  // The replay executes (incrementing again) — replay protection is the
  // application/platform layer's nonce check; the confidentiality layer
  // guarantees the replay cannot be *modified*.
  auto state2 = sys_->node()->state()->Get(addr_, AsByteView("n"));
  ASSERT_TRUE(state2.ok());
  EXPECT_NE(*state1, *state2);
}

// ---------------------------------------------------------------------------
// State continuity: freshness-sealed state vs. the malicious host
// ---------------------------------------------------------------------------
// NVRAM high-water marks are process-lifetime and keyed by the platform
// seed, so each continuity-enabled system uses a unique seed.

class StateContinuityTest : public ::testing::Test {
 protected:
  std::unique_ptr<ConfideSystem> BootWithContinuity(uint64_t seed) {
    SystemOptions options;
    options.seed = seed;
    options.enable_state_continuity = true;
    auto sys = ConfideSystem::BootstrapFirst(options);
    EXPECT_TRUE(sys.ok()) << sys.status().ToString();
    return std::move(*sys);
  }

  void DeployCounter(ConfideSystem* sys, Client* client, chain::Address addr) {
    auto code = lang::Compile(kCounterSource, lang::VmTarget::kCvm);
    ASSERT_TRUE(code.ok()) << code.status().ToString();
    auto deploy =
        client->MakeConfidentialTx(addr, "__deploy__", DeployPayload(*code));
    ASSERT_TRUE(deploy.ok());
    ASSERT_TRUE(sys->node()->SubmitTransaction(deploy->tx).ok());
    ASSERT_TRUE(sys->RunToCompletion().ok());
  }

  void Bump(ConfideSystem* sys, Client* client, chain::Address addr) {
    auto call = client->MakeConfidentialTx(addr, "bump", Bytes{});
    ASSERT_TRUE(call.ok());
    ASSERT_TRUE(sys->node()->SubmitTransaction(call->tx).ok());
    ASSERT_TRUE(sys->RunToCompletion().ok());
  }
};

TEST_F(StateContinuityTest, TamperedFreshnessHeaderFailsAuthentication) {
  auto sys = BootWithContinuity(9301);
  Client client(9400, sys->pk_tx());
  chain::Address addr = NamedAddress("victim");
  DeployCounter(sys.get(), &client, addr);
  Bump(sys.get(), &client, addr);
  ASSERT_TRUE(sys->VerifyStateContinuity().ok());

  // A forged header is an authentication failure (PermissionDenied), kept
  // distinct from an authentic-but-stale one (StaleState) — operators
  // must be able to tell tampering from rollback.
  storage::KvStore* kv = sys->node()->state()->backing();
  auto header = kv->Get(std::string(kFreshnessKvKey));
  ASSERT_TRUE(header.ok());
  Bytes tampered = *header;
  tampered.back() ^= 0x01;  // flips a MAC byte
  ASSERT_TRUE(kv->Put(std::string(kFreshnessKvKey), tampered).ok());
  Status forged = sys->VerifyStateContinuity();
  ASSERT_FALSE(forged.ok());
  EXPECT_EQ(forged.code(), StatusCode::kPermissionDenied) << forged.ToString();
  EXPECT_FALSE(forged.IsStaleState());

  // Putting the authentic header back restores a clean verification.
  ASSERT_TRUE(kv->Put(std::string(kFreshnessKvKey), *header).ok());
  EXPECT_TRUE(sys->VerifyStateContinuity().ok());
}

TEST_F(StateContinuityTest, RestoredDiskImageIsRefusedAsStale) {
  // The §3.3 rollback the AES-GCM layer cannot catch: the host restores a
  // complete older disk image — every byte authentic, header included.
  // The trusted monotonic counter has moved on, so the restore is a
  // *detected* StaleState failure, not silently forked execution.
  auto sys = BootWithContinuity(9302);
  Client client(9401, sys->pk_tx());
  chain::Address addr = NamedAddress("victim");
  DeployCounter(sys.get(), &client, addr);
  Bump(sys.get(), &client, addr);

  storage::KvStore* kv = sys->node()->state()->backing();
  std::vector<std::pair<std::string, Bytes>> image;
  for (auto it = kv->NewIterator(); it->Valid(); it->Next()) {
    image.emplace_back(it->key(), it->value());
  }

  // The node seals newer generations after the snapshot was taken.
  Bump(sys.get(), &client, addr);
  Bump(sys.get(), &client, addr);

  storage::WriteBatch batch;
  for (auto it = kv->NewIterator(); it->Valid(); it->Next()) {
    batch.Delete(it->key());
  }
  for (const auto& [key, value] : image) {
    batch.Put(key, value);
  }
  ASSERT_TRUE(kv->Write(batch).ok());
  ASSERT_TRUE(kv->Sync().ok());
  ASSERT_TRUE(sys->node()->ResyncFromStore().ok());

  uint64_t refused_before = metrics::MetricsRegistry::Global().Snapshot().counter(
      "confide.freshness.refused.count");
  Status stale = sys->VerifyStateContinuity();
  ASSERT_FALSE(stale.ok());
  EXPECT_TRUE(stale.IsStaleState()) << stale.ToString();
  EXPECT_GT(metrics::MetricsRegistry::Global().Snapshot().counter(
                "confide.freshness.refused.count"),
            refused_before);
}

// ---------------------------------------------------------------------------
// Property sweeps
// ---------------------------------------------------------------------------

class DProtocolSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(DProtocolSweep, SealOpenRoundTripAndDeterminism) {
  size_t size = GetParam();
  StateKey k{};
  crypto::Drbg(77).Fill(k.data(), 32);
  crypto::Drbg rng(size);
  Bytes plain = rng.Generate(size);
  Bytes aad = StateAad(AsByteView("c"), AsByteView("k"), 1);

  auto s1 = SealState(k, plain, aad);
  auto s2 = SealState(k, plain, aad);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ(*s1, *s2);  // replica determinism at every size
  auto opened = OpenState(k, *s1, aad);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, plain);

  if (!s1->empty()) {
    Bytes bad = *s1;
    bad[size % bad.size()] ^= 1;
    EXPECT_FALSE(OpenState(k, bad, aad).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DProtocolSweep,
                         ::testing::Values(0, 1, 15, 16, 17, 64, 1024, 4096,
                                           65536));

class EnvelopeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(EnvelopeSweep, RoundTripAtEverySize) {
  size_t size = GetParam();
  crypto::Drbg rng(size + 1);
  crypto::KeyPair kp = crypto::GenerateKeyPair(&rng);
  Bytes raw = rng.Generate(size);
  TxKey k_tx = DeriveTxKey(AsByteView("root"), crypto::Sha256::Digest(raw));
  auto envelope = SealEnvelope(kp.pub, k_tx, raw, size);
  ASSERT_TRUE(envelope.ok());
  auto opened = OpenEnvelope(kp.priv, *envelope);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->raw_tx, raw);
  auto body = OpenEnvelopeBody(k_tx, *envelope);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(*body, raw);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EnvelopeSweep,
                         ::testing::Values(0, 1, 100, 1024, 16384));

}  // namespace
}  // namespace confide::core
