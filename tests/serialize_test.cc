#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "chain/types.h"
#include "common/bytes.h"
#include "crypto/drbg.h"
#include "serialize/flatlite.h"
#include "serialize/json.h"
#include "serialize/leb128.h"
#include "serialize/rlp.h"

namespace confide::serialize {
namespace {

// ---------------------------------------------------------------------------
// LEB128
// ---------------------------------------------------------------------------

TEST(Leb128Test, UnsignedKnownEncodings) {
  Bytes out;
  WriteUleb128(&out, 0);
  EXPECT_EQ(out, (Bytes{0x00}));
  out.clear();
  WriteUleb128(&out, 624485);  // canonical Wikipedia example
  EXPECT_EQ(out, (Bytes{0xe5, 0x8e, 0x26}));
}

TEST(Leb128Test, SignedKnownEncodings) {
  Bytes out;
  WriteSleb128(&out, -123456);  // canonical example
  EXPECT_EQ(out, (Bytes{0xc0, 0xbb, 0x78}));
}

TEST(Leb128Test, UnsignedRoundTrip) {
  const uint64_t cases[] = {0, 1, 127, 128, 300, 16384, uint64_t(1) << 32,
                            UINT64_MAX};
  for (uint64_t v : cases) {
    Bytes out;
    WriteUleb128(&out, v);
    size_t pos = 0;
    auto back = ReadUleb128(out, &pos);
    ASSERT_TRUE(back.ok()) << v;
    EXPECT_EQ(*back, v);
    EXPECT_EQ(pos, out.size());
  }
}

TEST(Leb128Test, SignedRoundTrip) {
  for (int64_t v : {int64_t(0), int64_t(1), int64_t(-1), int64_t(63),
                    int64_t(64), int64_t(-64), int64_t(-65), INT64_MAX,
                    INT64_MIN}) {
    Bytes out;
    WriteSleb128(&out, v);
    size_t pos = 0;
    auto back = ReadSleb128(out, &pos);
    ASSERT_TRUE(back.ok()) << v;
    EXPECT_EQ(*back, v);
  }
}

TEST(Leb128Test, TruncatedInputFails) {
  Bytes bad = {0x80};  // continuation bit with no follow-up
  size_t pos = 0;
  EXPECT_FALSE(ReadUleb128(bad, &pos).ok());
}

TEST(Leb128Test, UnsignedBoundaryRoundTrips) {
  for (uint64_t v : {UINT64_MAX, UINT64_MAX - 1, uint64_t(1) << 63,
                     (uint64_t(1) << 63) - 1, (uint64_t(1) << 56) - 1}) {
    Bytes out;
    WriteUleb128(&out, v);
    size_t pos = 0;
    auto back = ReadUleb128(out, &pos);
    ASSERT_TRUE(back.ok()) << v;
    EXPECT_EQ(*back, v);
    EXPECT_EQ(pos, out.size());
  }
  // UINT64_MAX occupies the full 10 bytes, 10th byte carrying only bit 63.
  Bytes max;
  WriteUleb128(&max, UINT64_MAX);
  ASSERT_EQ(max.size(), 10u);
  EXPECT_EQ(max.back(), 0x01);
}

TEST(Leb128Test, SignedBoundaryRoundTrips) {
  for (int64_t v : {INT64_MAX, INT64_MAX - 1, INT64_MIN, INT64_MIN + 1,
                    int64_t(1) << 62, -(int64_t(1) << 62)}) {
    Bytes out;
    WriteSleb128(&out, v);
    size_t pos = 0;
    auto back = ReadSleb128(out, &pos);
    ASSERT_TRUE(back.ok()) << v;
    EXPECT_EQ(*back, v);
    EXPECT_EQ(pos, out.size());
  }
}

TEST(Leb128Test, TenthBytePayloadOverflowRejected) {
  // The 10th byte sits at shift 63: any unsigned payload bit above bit 0
  // would shift past the top of the u64 and silently vanish.
  Bytes bad(9, 0xff);
  bad.push_back(0x02);
  size_t pos = 0;
  EXPECT_FALSE(ReadUleb128(bad, &pos).ok());
  bad.back() = 0x7f;
  pos = 0;
  EXPECT_FALSE(ReadUleb128(bad, &pos).ok());
  bad.back() = 0x01;  // exactly bit 63: the canonical UINT64_MAX tail
  pos = 0;
  EXPECT_TRUE(ReadUleb128(bad, &pos).ok());
  // Continuation bit on the 10th byte pushes shift past 64.
  Bytes eleven(10, 0x80);
  eleven.push_back(0x01);
  pos = 0;
  EXPECT_FALSE(ReadUleb128(eleven, &pos).ok());
}

TEST(Leb128Test, SignedTenthByteMustMatchSign) {
  // At shift 63 the signed final payload must be all-zeros or all-ones.
  Bytes bad(9, 0xff);
  for (uint8_t tail : {0x01, 0x3f, 0x40, 0x7e}) {
    bad.push_back(tail);
    size_t pos = 0;
    EXPECT_FALSE(ReadSleb128(bad, &pos).ok()) << int(tail);
    bad.pop_back();
  }
  for (uint8_t tail : {0x00, 0x7f}) {
    bad.push_back(tail);
    size_t pos = 0;
    EXPECT_TRUE(ReadSleb128(bad, &pos).ok()) << int(tail);
    bad.pop_back();
  }
}

// ---------------------------------------------------------------------------
// RLP (Ethereum wiki reference vectors)
// ---------------------------------------------------------------------------

TEST(RlpTest, EncodeDog) {
  EXPECT_EQ(HexEncode(RlpEncode(RlpItem::String("dog"))), "83646f67");
}

TEST(RlpTest, EncodeCatDogList) {
  auto item = RlpItem::List({RlpItem::String("cat"), RlpItem::String("dog")});
  EXPECT_EQ(HexEncode(RlpEncode(item)), "c88363617483646f67");
}

TEST(RlpTest, EncodeEmptyStringAndList) {
  EXPECT_EQ(HexEncode(RlpEncode(RlpItem::String(""))), "80");
  EXPECT_EQ(HexEncode(RlpEncode(RlpItem::List({}))), "c0");
}

TEST(RlpTest, EncodeIntegers) {
  EXPECT_EQ(HexEncode(RlpEncode(RlpItem::U64(0))), "80");
  EXPECT_EQ(HexEncode(RlpEncode(RlpItem::U64(15))), "0f");
  EXPECT_EQ(HexEncode(RlpEncode(RlpItem::U64(1024))), "820400");
}

TEST(RlpTest, EncodeLongString) {
  std::string lorem =
      "Lorem ipsum dolor sit amet, consectetur adipisicing elit";
  Bytes enc = RlpEncode(RlpItem::String(lorem));
  EXPECT_EQ(enc[0], 0xb8);
  EXPECT_EQ(enc[1], lorem.size());
}

TEST(RlpTest, RoundTripNested) {
  auto item = RlpItem::List({
      RlpItem::U64(42),
      RlpItem::String("hello"),
      RlpItem::List({RlpItem::String("nested"), RlpItem::U64(7)}),
  });
  auto back = RlpDecode(RlpEncode(item));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, item);
  ASSERT_TRUE(back->is_list());
  EXPECT_EQ(*back->list()[0].AsU64(), 42u);
  EXPECT_EQ(ToString(back->list()[1].bytes()), "hello");
}

TEST(RlpTest, DecodeRejectsTrailingBytes) {
  Bytes enc = RlpEncode(RlpItem::String("dog"));
  enc.push_back(0x00);
  EXPECT_FALSE(RlpDecode(enc).ok());
}

TEST(RlpTest, DecodeRejectsTruncation) {
  Bytes enc = RlpEncode(RlpItem::String("longer string here"));
  enc.pop_back();
  EXPECT_FALSE(RlpDecode(enc).ok());
}

TEST(RlpTest, DecodeRejectsNonCanonicalSingleByte) {
  Bytes bad = {0x81, 0x05};  // 0x05 must encode as itself
  EXPECT_FALSE(RlpDecode(bad).ok());
}

TEST(RlpTest, OverflowLengthsRejected) {
  // Crafted 8-byte lengths adjacent to SIZE_MAX: a naive `pos + len`
  // bounds check wraps and lets the read through. Every case must fail
  // with a clean error in both decode paths.
  const std::vector<Bytes> crafted = {
      // Long string, length = 2^64 - 1.
      {0xbf, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
      // Long string, length = SIZE_MAX - 7 (wraps past the 9-byte header).
      {0xbf, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xf8},
      // Long list variants of the same lengths.
      {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
      {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xf8},
      // Length = 2^63 (sign-bit boundary).
      {0xbf, 0x80, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00},
      // 4-byte length far past the remaining input.
      {0xbb, 0xff, 0xff, 0xff, 0xff},
      {0xfb, 0xff, 0xff, 0xff, 0xff},
      // Truncated length-of-length itself.
      {0xbf, 0xff, 0xff},
      {0xff, 0xff},
  };
  for (const Bytes& wire : crafted) {
    EXPECT_FALSE(RlpDecode(wire).ok()) << HexEncode(wire);
    EXPECT_FALSE(RlpReader::AtList(wire).ok()) << HexEncode(wire);
  }
}

TEST(RlpTest, NonMinimalLengthEncodingsRejected) {
  // Long-form length with leading zero byte.
  EXPECT_FALSE(RlpDecode(Bytes{0xb9, 0x00, 0x38}).ok());
  // Long-form length below 56 (must use the short form).
  Bytes short_len = {0xb8, 0x01, 0x61};
  EXPECT_FALSE(RlpDecode(short_len).ok());
  // Nested inside a list: the same guards apply mid-stream.
  Bytes nested = {0xc3, 0xb8, 0x01, 0x61};
  EXPECT_FALSE(RlpDecode(nested).ok());
  auto reader = RlpReader::AtList(nested);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader->NextBytes().ok());
}

TEST(RlpTest, ReaderRejectsKindMismatches) {
  RlpWriter w;
  size_t list = w.BeginList();
  w.WriteString("field");
  size_t inner = w.BeginList();
  w.WriteU64(7);
  w.EndList(inner);
  w.EndList(list);

  // NextList on a bytes item / NextBytes, NextU64, NextFixed on a list.
  auto r1 = RlpReader::AtList(w.buffer());
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1->NextList().ok());

  auto r2 = RlpReader::AtList(w.buffer());
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r2->NextBytes().ok());
  EXPECT_FALSE(r2->NextBytes().ok());

  auto r3 = RlpReader::AtList(w.buffer());
  ASSERT_TRUE(r3.ok());
  ASSERT_TRUE(r3->NextFixed(5, "field").ok());
  EXPECT_FALSE(r3->NextU64().ok());

  auto r4 = RlpReader::AtList(w.buffer());
  ASSERT_TRUE(r4.ok());
  EXPECT_FALSE(r4->NextFixed(4, "field").ok());  // wrong width
}

TEST(RlpTest, ReaderWriterRoundTrip) {
  RlpWriter w(64);
  size_t outer = w.BeginList();
  w.WriteU64(123456789);
  w.WriteString("hello");
  size_t inner = w.BeginList();
  w.WriteU64(0);
  w.WriteBytes(Bytes(60, 0xAB));  // long-form string
  w.EndList(inner);
  w.EndList(outer);

  auto reader = RlpReader::AtList(w.buffer());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(*reader->CountRemaining(), 3u);
  EXPECT_EQ(*reader->NextU64(), 123456789u);
  ByteView s = *reader->NextBytes();
  EXPECT_EQ(std::string(s.begin(), s.end()), "hello");
  auto nested = reader->NextList();
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(*nested->NextU64(), 0u);
  EXPECT_EQ(nested->NextBytes()->size(), 60u);
  EXPECT_TRUE(nested->AtEnd());
  EXPECT_TRUE(reader->ExpectEnd("round trip").ok());
}

TEST(RlpTest, ReaderViewsAliasInput) {
  RlpWriter w;
  size_t list = w.BeginList();
  w.WriteString("payload");
  w.EndList(list);
  Bytes wire = std::move(w).Take();
  auto reader = RlpReader::AtList(wire);
  ASSERT_TRUE(reader.ok());
  ByteView field = *reader->NextBytes();
  EXPECT_GE(field.data(), wire.data());
  EXPECT_LE(field.data() + field.size(), wire.data() + wire.size());
}

TEST(RlpTest, U64PayloadGuards) {
  EXPECT_FALSE(RlpU64Payload(Bytes{0x00, 0x01}).ok());  // leading zero
  EXPECT_FALSE(RlpU64Payload(Bytes(9, 0x01)).ok());     // > 8 bytes
  EXPECT_EQ(*RlpU64Payload(Bytes{}), 0u);
  EXPECT_EQ(*RlpU64Payload(Bytes(8, 0xff)), UINT64_MAX);
}

TEST(RlpTest, FuzzRoundTripRandomStructures) {
  crypto::Drbg rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<RlpItem> items;
    int n = int(rng.NextBounded(5));
    for (int i = 0; i < n; ++i) {
      if (rng.NextBounded(2) == 0) {
        items.push_back(RlpItem(rng.Generate(rng.NextBounded(100))));
      } else {
        items.push_back(RlpItem::List({RlpItem(rng.Generate(rng.NextBounded(60)))}));
      }
    }
    RlpItem root = RlpItem::List(std::move(items));
    auto back = RlpDecode(RlpEncode(root));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, root);
  }
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(JsonParse("null")->is_null());
  EXPECT_EQ(JsonParse("true")->as_bool(), true);
  EXPECT_EQ(JsonParse("false")->as_bool(), false);
  EXPECT_EQ(JsonParse("42")->as_int(), 42);
  EXPECT_EQ(JsonParse("-7")->as_int(), -7);
  EXPECT_DOUBLE_EQ(JsonParse("3.25")->as_double(), 3.25);
  EXPECT_DOUBLE_EQ(JsonParse("1e3")->as_double(), 1000.0);
  EXPECT_EQ(JsonParse("\"hi\"")->as_string(), "hi");
}

TEST(JsonTest, ParsesNestedDocument) {
  auto v = JsonParse(R"({"loan":{"amount":100000,"rate":4.5},)"
                     R"("banks":["icbc","abc"],"approved":true})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("loan")->Find("amount")->as_int(), 100000);
  EXPECT_DOUBLE_EQ(v->Find("loan")->Find("rate")->as_double(), 4.5);
  EXPECT_EQ(v->Find("banks")->as_array()[1].as_string(), "abc");
  EXPECT_TRUE(v->Find("approved")->as_bool());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonTest, EscapesRoundTrip) {
  JsonValue v(std::string("line1\nline2\t\"quoted\"\\"));
  auto back = JsonParse(JsonWrite(v));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->as_string(), v.as_string());
}

TEST(JsonTest, UnicodeEscapeDecodes) {
  auto v = JsonParse("\"\\u0041\\u00e9\\u4e2d\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "A\xc3\xa9\xe4\xb8\xad");
}

TEST(JsonTest, WriteReadRoundTripPreservesOrder) {
  JsonValue obj{JsonValue::Object{}};
  obj.Set("z", 1);
  obj.Set("a", 2);
  obj.Set("m", JsonValue(JsonValue::Array{JsonValue(1), JsonValue("x")}));
  std::string text = JsonWrite(obj);
  EXPECT_EQ(text, R"({"z":1,"a":2,"m":[1,"x"]})");
  auto back = JsonParse(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, obj);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonParse("").ok());
  EXPECT_FALSE(JsonParse("{").ok());
  EXPECT_FALSE(JsonParse("[1,]").ok());
  EXPECT_FALSE(JsonParse("{\"a\":}").ok());
  EXPECT_FALSE(JsonParse("\"unterminated").ok());
  EXPECT_FALSE(JsonParse("1 2").ok());
  EXPECT_FALSE(JsonParse("tru").ok());
}

TEST(JsonTest, RejectsTooDeepNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(JsonParse(deep).ok());
}

TEST(JsonTest, SetOverwritesExistingKey) {
  JsonValue obj{JsonValue::Object{}};
  obj.Set("k", 1);
  obj.Set("k", 2);
  EXPECT_EQ(obj.as_object().size(), 1u);
  EXPECT_EQ(obj.Find("k")->as_int(), 2);
}

TEST(JsonTest, TruncatedUnicodeEscapeFails) {
  // The \u guard is remaining-based; the document ending mid-escape must
  // produce a parse error, never a read past the buffer.
  EXPECT_FALSE(JsonParse("\"\\u").ok());
  EXPECT_FALSE(JsonParse("\"\\u1").ok());
  EXPECT_FALSE(JsonParse("\"\\u123").ok());
  EXPECT_FALSE(JsonParse("\"abc\\u12").ok());
  EXPECT_TRUE(JsonParse("\"\\u1234\"").ok());
}

TEST(JsonTest, LargeIntegerFallsBackToDouble) {
  auto v = JsonParse("99999999999999999999999999");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_double());
}

// ---------------------------------------------------------------------------
// FlatLite
// ---------------------------------------------------------------------------

TEST(FlatLiteTest, ScalarAndStringRoundTrip) {
  FlatLiteBuilder builder(3);
  builder.SetU64(0, 123456789);
  builder.SetString(1, "asset-001");
  Bytes buf = builder.Finish();

  auto view = FlatLiteView::Parse(buf);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->field_count(), 3u);
  EXPECT_EQ(*view->GetU64(0), 123456789u);
  EXPECT_EQ(*view->GetString(1), "asset-001");
  EXPECT_FALSE(view->Has(2));
  EXPECT_TRUE(view->GetU64(2).status().IsNotFound());
}

TEST(FlatLiteTest, NestedTable) {
  FlatLiteBuilder inner(2);
  inner.SetU64(0, 7);
  inner.SetString(1, "inner");
  Bytes inner_buf = inner.Finish();

  FlatLiteBuilder outer(1);
  outer.SetTable(0, inner_buf);
  Bytes buf = outer.Finish();

  auto view = FlatLiteView::Parse(buf);
  ASSERT_TRUE(view.ok());
  auto nested = view->GetTable(0);
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(*nested->GetU64(0), 7u);
  EXPECT_EQ(*nested->GetString(1), "inner");
}

TEST(FlatLiteTest, VectorOfTables) {
  std::vector<Bytes> assets;
  for (int i = 0; i < 5; ++i) {
    FlatLiteBuilder b(2);
    b.SetU64(0, uint64_t(i) * 100);
    b.SetString(1, "asset-" + std::to_string(i));
    assets.push_back(b.Finish());
  }
  FlatLiteBuilder outer(1);
  outer.SetVector(0, assets);
  Bytes buf = outer.Finish();

  auto view = FlatLiteView::Parse(buf);
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(*view->GetVectorSize(0), 5u);
  for (uint32_t i = 0; i < 5; ++i) {
    auto elem = view->GetVectorElement(0, i);
    ASSERT_TRUE(elem.ok());
    auto elem_view = FlatLiteView::Parse(*elem);
    ASSERT_TRUE(elem_view.ok());
    EXPECT_EQ(*elem_view->GetU64(0), uint64_t(i) * 100);
  }
  EXPECT_FALSE(view->GetVectorElement(0, 5).ok());
}

// Found by DecodeFuzzTest: a corrupted count used to be returned verbatim,
// sending count-driven callers into a scan over ~4B absent elements.
TEST(FlatLiteTest, VectorCountBeyondBufferRejected) {
  FlatLiteBuilder builder(1);
  builder.SetVector(0, {Bytes{1, 2, 3}, Bytes{4, 5, 6}});
  Bytes buf = builder.Finish();

  auto view = FlatLiteView::Parse(buf);
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(*view->GetVectorSize(0), 2u);

  // Overwrite the count u32 with 0xFFFFFFFF; the slot table can no longer
  // fit in the buffer, so the size read itself must fail.
  uint32_t count_off = 0;
  std::memcpy(&count_off, buf.data() + 8, 4);  // field 0's offset slot
  Bytes corrupt = buf;
  std::memset(corrupt.data() + count_off, 0xff, 4);
  auto corrupt_view = FlatLiteView::Parse(corrupt);
  ASSERT_TRUE(corrupt_view.ok());
  EXPECT_FALSE(corrupt_view->GetVectorSize(0).ok());
  EXPECT_FALSE(corrupt_view->GetVectorElement(0, 0).ok());
}

TEST(FlatLiteTest, ZeroCopyViewsAliasBuffer) {
  FlatLiteBuilder builder(1);
  builder.SetString(0, "zero-copy");
  Bytes buf = builder.Finish();
  auto view = FlatLiteView::Parse(buf);
  ASSERT_TRUE(view.ok());
  auto bytes = view->GetBytes(0);
  ASSERT_TRUE(bytes.ok());
  EXPECT_GE(bytes->data(), buf.data());
  EXPECT_LT(bytes->data(), buf.data() + buf.size());
}

TEST(FlatLiteTest, RejectsCorruptBuffers) {
  EXPECT_FALSE(FlatLiteView::Parse(Bytes{1, 2, 3}).ok());

  FlatLiteBuilder builder(1);
  builder.SetString(0, "data");
  Bytes buf = builder.Finish();
  Bytes bad_magic = buf;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(FlatLiteView::Parse(bad_magic).ok());

  Bytes truncated(buf.begin(), buf.begin() + 8);
  auto v = FlatLiteView::Parse(truncated);
  // Header itself parses only if the offset table fits.
  EXPECT_FALSE(v.ok());
}

TEST(FlatLiteTest, OutOfRangeFieldRejected) {
  FlatLiteBuilder builder(2);
  builder.SetU64(0, 1);
  Bytes buf = builder.Finish();
  auto view = FlatLiteView::Parse(buf);
  ASSERT_TRUE(view.ok());
  EXPECT_FALSE(view->GetU64(9).ok());
  EXPECT_FALSE(view->Has(9));
}

// ---------------------------------------------------------------------------
// Structure-aware decode fuzzing
//
// Seeded mutations of *valid* encodings — byte flips, truncation,
// extension, header/length tweaks, internal splices — fed to every
// decoder. The contract under test: malformed input fails with a clean
// Status (Corruption / InvalidArgument / OutOfRange), never a crash, hang,
// or out-of-bounds read (CI runs this under ASan at 10k iterations via
// CONFIDE_DECODE_FUZZ_ITERS; see .github/workflows/ci.yml).
// ---------------------------------------------------------------------------

size_t FuzzIters() {
  const char* env = std::getenv("CONFIDE_DECODE_FUZZ_ITERS");
  if (env != nullptr && env[0] != '\0') {
    return size_t(std::strtoull(env, nullptr, 10));
  }
  return 10'000;
}

Bytes Mutate(const Bytes& wire, crypto::Drbg* rng) {
  Bytes m = wire;
  switch (rng->NextBounded(5)) {
    case 0:  // flip bits in one byte
      if (!m.empty()) {
        m[size_t(rng->NextBounded(m.size()))] ^= uint8_t(1 + rng->NextBounded(255));
      }
      break;
    case 1:  // truncate
      if (!m.empty()) m.resize(size_t(rng->NextBounded(m.size())));
      break;
    case 2: {  // extend with random tail
      Bytes extra = rng->Generate(1 + size_t(rng->NextBounded(16)));
      m.insert(m.end(), extra.begin(), extra.end());
      break;
    }
    case 3:  // bump a byte: header prefixes and length bytes drift most
      if (!m.empty()) {
        size_t i = size_t(rng->NextBounded(m.size()));
        m[i] = uint8_t(m[i] + 1 + rng->NextBounded(8));
      }
      break;
    case 4:  // splice a chunk over another position
      if (m.size() >= 2) {
        size_t from = size_t(rng->NextBounded(m.size() - 1));
        size_t to = size_t(rng->NextBounded(m.size() - 1));
        size_t len = 1 + size_t(rng->NextBounded(
                             std::min<uint64_t>(8, m.size() - std::max(from, to) - 1)));
        std::copy(m.begin() + ptrdiff_t(from), m.begin() + ptrdiff_t(from + len),
                  m.begin() + ptrdiff_t(to));
      }
      break;
  }
  return m;
}

/// Exercises the zero-copy reader over an arbitrary (possibly corrupt)
/// item the same way the codecs do: parse as list, walk every child.
void WalkRlp(ByteView wire, int depth) {
  if (depth > 6) return;
  auto list = RlpReader::AtList(wire);
  if (!list.ok()) return;
  while (!list->AtEnd()) {
    auto item = list->NextItem();
    if (!item.ok()) return;
    WalkRlp(*item, depth + 1);
  }
  (void)list->CountRemaining();
}

TEST(DecodeFuzzTest, RlpNeverCrashes) {
  RlpWriter w;
  size_t outer = w.BeginList();
  w.WriteU64(UINT64_MAX);
  w.WriteBytes(Bytes(200, 0x42));
  size_t inner = w.BeginList();
  w.WriteString("nested");
  w.WriteU64(55);
  size_t deep = w.BeginList();
  w.WriteBytes(Bytes(60, 0x01));
  w.EndList(deep);
  w.EndList(inner);
  w.WriteString("");
  w.EndList(outer);
  const Bytes valid = std::move(w).Take();
  ASSERT_TRUE(RlpDecode(valid).ok());

  crypto::Drbg rng(0xF0221);
  const size_t iters = FuzzIters();
  for (size_t i = 0; i < iters; ++i) {
    Bytes mutated = Mutate(valid, &rng);
    (void)RlpDecode(mutated);   // owning tree path
    WalkRlp(mutated, 0);        // zero-copy reader path
  }
}

TEST(DecodeFuzzTest, ChainRecordsNeverCrash) {
  crypto::Drbg rng(0xF0222);
  crypto::KeyPair kp = crypto::GenerateKeyPair(&rng);

  chain::Transaction tx;
  tx.type = chain::TxType::kPublic;
  tx.sender = kp.pub;
  tx.contract = chain::NamedAddress("fuzz-contract");
  tx.entry = "method";
  tx.input = rng.Generate(120);
  tx.nonce = 3;
  tx.signature = *crypto::EcdsaSign(kp.priv, tx.SigningHash());
  const Bytes tx_wire = tx.Serialize();

  chain::Transaction conf;
  conf.type = chain::TxType::kConfidential;
  conf.envelope = rng.Generate(160);
  const Bytes conf_wire = conf.Serialize();

  chain::Receipt receipt;
  receipt.tx_hash = tx.Hash();
  receipt.success = true;
  receipt.output = rng.Generate(90);
  receipt.logs.push_back(rng.Generate(30));
  receipt.gas_used = 12345;
  const Bytes receipt_wire = receipt.Serialize();

  chain::Block block;
  block.header.height = 9;
  block.header.timestamp_ns = 1'000'000;
  block.transactions.push_back(tx);
  block.transactions.push_back(conf);
  const Bytes block_wire = block.Serialize();

  ASSERT_TRUE(chain::Transaction::Deserialize(tx_wire).ok());
  ASSERT_TRUE(chain::Receipt::Deserialize(receipt_wire).ok());
  ASSERT_TRUE(chain::Block::Deserialize(block_wire).ok());

  const size_t iters = FuzzIters();
  for (size_t i = 0; i < iters; ++i) {
    const Bytes& base = (i % 4 == 0)   ? conf_wire
                        : (i % 4 == 1) ? receipt_wire
                        : (i % 4 == 2) ? block_wire
                                       : tx_wire;
    Bytes mutated = Mutate(base, &rng);

    // Wire decoding is canonical: when a mutated transaction still
    // decodes, re-serializing must reproduce the input byte-for-byte —
    // a decoder quietly accepting a non-canonical form would split the
    // tx-hash space for identical transactions.
    auto as_tx = chain::TransactionRef::Decode(mutated);
    if (as_tx.ok()) {
      EXPECT_EQ(as_tx->ToOwned().Serialize(), mutated) << "iter " << i;
    }
    (void)chain::Receipt::Deserialize(mutated);
    (void)chain::Block::Deserialize(mutated);
  }
}

TEST(DecodeFuzzTest, FlatLiteNeverCrashes) {
  FlatLiteBuilder builder(6);
  builder.SetString(0, "asset-001");
  builder.SetU64(1, 77);
  builder.SetBytes(2, Bytes(130, 0xCD));
  FlatLiteBuilder nested(2);
  nested.SetU64(0, 1);
  nested.SetString(1, "inner");
  builder.SetTable(3, nested.Finish());
  builder.SetVector(4, {Bytes{1, 2, 3}, Bytes{4, 5}});
  const Bytes valid = builder.Finish();
  ASSERT_TRUE(FlatLiteView::Parse(valid).ok());

  crypto::Drbg rng(0xF0223);
  const size_t iters = FuzzIters();
  for (size_t i = 0; i < iters; ++i) {
    Bytes mutated = Mutate(valid, &rng);
    auto view = FlatLiteView::Parse(mutated);
    if (!view.ok()) continue;
    // A parsed view must serve every accessor without faulting.
    for (uint32_t f = 0; f < view->field_count(); ++f) {
      (void)view->GetU64(f);
      (void)view->GetString(f);
      auto table = view->GetTable(f);
      if (table.ok()) (void)table->GetString(1);
      auto count = view->GetVectorSize(f);
      if (count.ok()) {
        for (uint32_t e = 0; e < *count; ++e) (void)view->GetVectorElement(f, e);
      }
    }
  }
}

TEST(DecodeFuzzTest, Leb128NeverCrashes) {
  Bytes valid;
  WriteUleb128(&valid, UINT64_MAX);
  WriteUleb128(&valid, 300);
  WriteSleb128(&valid, INT64_MIN);
  WriteSleb128(&valid, -1);
  WriteUleb128(&valid, 0);

  crypto::Drbg rng(0xF0224);
  const size_t iters = FuzzIters();
  for (size_t i = 0; i < iters; ++i) {
    Bytes mutated = Mutate(valid, &rng);
    size_t pos = 0;
    // Alternate readers over the stream until error or exhaustion.
    for (int field = 0; pos < mutated.size() && field < 16; ++field) {
      if (field % 2 == 0) {
        if (!ReadUleb128(mutated, &pos).ok()) break;
      } else {
        if (!ReadSleb128(mutated, &pos).ok()) break;
      }
    }
  }
}

}  // namespace
}  // namespace confide::serialize
