#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/drbg.h"
#include "serialize/flatlite.h"
#include "serialize/json.h"
#include "serialize/leb128.h"
#include "serialize/rlp.h"

namespace confide::serialize {
namespace {

// ---------------------------------------------------------------------------
// LEB128
// ---------------------------------------------------------------------------

TEST(Leb128Test, UnsignedKnownEncodings) {
  Bytes out;
  WriteUleb128(&out, 0);
  EXPECT_EQ(out, (Bytes{0x00}));
  out.clear();
  WriteUleb128(&out, 624485);  // canonical Wikipedia example
  EXPECT_EQ(out, (Bytes{0xe5, 0x8e, 0x26}));
}

TEST(Leb128Test, SignedKnownEncodings) {
  Bytes out;
  WriteSleb128(&out, -123456);  // canonical example
  EXPECT_EQ(out, (Bytes{0xc0, 0xbb, 0x78}));
}

TEST(Leb128Test, UnsignedRoundTrip) {
  const uint64_t cases[] = {0, 1, 127, 128, 300, 16384, uint64_t(1) << 32,
                            UINT64_MAX};
  for (uint64_t v : cases) {
    Bytes out;
    WriteUleb128(&out, v);
    size_t pos = 0;
    auto back = ReadUleb128(out, &pos);
    ASSERT_TRUE(back.ok()) << v;
    EXPECT_EQ(*back, v);
    EXPECT_EQ(pos, out.size());
  }
}

TEST(Leb128Test, SignedRoundTrip) {
  for (int64_t v : {int64_t(0), int64_t(1), int64_t(-1), int64_t(63),
                    int64_t(64), int64_t(-64), int64_t(-65), INT64_MAX,
                    INT64_MIN}) {
    Bytes out;
    WriteSleb128(&out, v);
    size_t pos = 0;
    auto back = ReadSleb128(out, &pos);
    ASSERT_TRUE(back.ok()) << v;
    EXPECT_EQ(*back, v);
  }
}

TEST(Leb128Test, TruncatedInputFails) {
  Bytes bad = {0x80};  // continuation bit with no follow-up
  size_t pos = 0;
  EXPECT_FALSE(ReadUleb128(bad, &pos).ok());
}

// ---------------------------------------------------------------------------
// RLP (Ethereum wiki reference vectors)
// ---------------------------------------------------------------------------

TEST(RlpTest, EncodeDog) {
  EXPECT_EQ(HexEncode(RlpEncode(RlpItem::String("dog"))), "83646f67");
}

TEST(RlpTest, EncodeCatDogList) {
  auto item = RlpItem::List({RlpItem::String("cat"), RlpItem::String("dog")});
  EXPECT_EQ(HexEncode(RlpEncode(item)), "c88363617483646f67");
}

TEST(RlpTest, EncodeEmptyStringAndList) {
  EXPECT_EQ(HexEncode(RlpEncode(RlpItem::String(""))), "80");
  EXPECT_EQ(HexEncode(RlpEncode(RlpItem::List({}))), "c0");
}

TEST(RlpTest, EncodeIntegers) {
  EXPECT_EQ(HexEncode(RlpEncode(RlpItem::U64(0))), "80");
  EXPECT_EQ(HexEncode(RlpEncode(RlpItem::U64(15))), "0f");
  EXPECT_EQ(HexEncode(RlpEncode(RlpItem::U64(1024))), "820400");
}

TEST(RlpTest, EncodeLongString) {
  std::string lorem =
      "Lorem ipsum dolor sit amet, consectetur adipisicing elit";
  Bytes enc = RlpEncode(RlpItem::String(lorem));
  EXPECT_EQ(enc[0], 0xb8);
  EXPECT_EQ(enc[1], lorem.size());
}

TEST(RlpTest, RoundTripNested) {
  auto item = RlpItem::List({
      RlpItem::U64(42),
      RlpItem::String("hello"),
      RlpItem::List({RlpItem::String("nested"), RlpItem::U64(7)}),
  });
  auto back = RlpDecode(RlpEncode(item));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, item);
  ASSERT_TRUE(back->is_list());
  EXPECT_EQ(*back->list()[0].AsU64(), 42u);
  EXPECT_EQ(ToString(back->list()[1].bytes()), "hello");
}

TEST(RlpTest, DecodeRejectsTrailingBytes) {
  Bytes enc = RlpEncode(RlpItem::String("dog"));
  enc.push_back(0x00);
  EXPECT_FALSE(RlpDecode(enc).ok());
}

TEST(RlpTest, DecodeRejectsTruncation) {
  Bytes enc = RlpEncode(RlpItem::String("longer string here"));
  enc.pop_back();
  EXPECT_FALSE(RlpDecode(enc).ok());
}

TEST(RlpTest, DecodeRejectsNonCanonicalSingleByte) {
  Bytes bad = {0x81, 0x05};  // 0x05 must encode as itself
  EXPECT_FALSE(RlpDecode(bad).ok());
}

TEST(RlpTest, FuzzRoundTripRandomStructures) {
  crypto::Drbg rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<RlpItem> items;
    int n = int(rng.NextBounded(5));
    for (int i = 0; i < n; ++i) {
      if (rng.NextBounded(2) == 0) {
        items.push_back(RlpItem(rng.Generate(rng.NextBounded(100))));
      } else {
        items.push_back(RlpItem::List({RlpItem(rng.Generate(rng.NextBounded(60)))}));
      }
    }
    RlpItem root = RlpItem::List(std::move(items));
    auto back = RlpDecode(RlpEncode(root));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, root);
  }
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(JsonParse("null")->is_null());
  EXPECT_EQ(JsonParse("true")->as_bool(), true);
  EXPECT_EQ(JsonParse("false")->as_bool(), false);
  EXPECT_EQ(JsonParse("42")->as_int(), 42);
  EXPECT_EQ(JsonParse("-7")->as_int(), -7);
  EXPECT_DOUBLE_EQ(JsonParse("3.25")->as_double(), 3.25);
  EXPECT_DOUBLE_EQ(JsonParse("1e3")->as_double(), 1000.0);
  EXPECT_EQ(JsonParse("\"hi\"")->as_string(), "hi");
}

TEST(JsonTest, ParsesNestedDocument) {
  auto v = JsonParse(R"({"loan":{"amount":100000,"rate":4.5},)"
                     R"("banks":["icbc","abc"],"approved":true})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("loan")->Find("amount")->as_int(), 100000);
  EXPECT_DOUBLE_EQ(v->Find("loan")->Find("rate")->as_double(), 4.5);
  EXPECT_EQ(v->Find("banks")->as_array()[1].as_string(), "abc");
  EXPECT_TRUE(v->Find("approved")->as_bool());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonTest, EscapesRoundTrip) {
  JsonValue v(std::string("line1\nline2\t\"quoted\"\\"));
  auto back = JsonParse(JsonWrite(v));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->as_string(), v.as_string());
}

TEST(JsonTest, UnicodeEscapeDecodes) {
  auto v = JsonParse("\"\\u0041\\u00e9\\u4e2d\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "A\xc3\xa9\xe4\xb8\xad");
}

TEST(JsonTest, WriteReadRoundTripPreservesOrder) {
  JsonValue obj{JsonValue::Object{}};
  obj.Set("z", 1);
  obj.Set("a", 2);
  obj.Set("m", JsonValue(JsonValue::Array{JsonValue(1), JsonValue("x")}));
  std::string text = JsonWrite(obj);
  EXPECT_EQ(text, R"({"z":1,"a":2,"m":[1,"x"]})");
  auto back = JsonParse(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, obj);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonParse("").ok());
  EXPECT_FALSE(JsonParse("{").ok());
  EXPECT_FALSE(JsonParse("[1,]").ok());
  EXPECT_FALSE(JsonParse("{\"a\":}").ok());
  EXPECT_FALSE(JsonParse("\"unterminated").ok());
  EXPECT_FALSE(JsonParse("1 2").ok());
  EXPECT_FALSE(JsonParse("tru").ok());
}

TEST(JsonTest, RejectsTooDeepNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(JsonParse(deep).ok());
}

TEST(JsonTest, SetOverwritesExistingKey) {
  JsonValue obj{JsonValue::Object{}};
  obj.Set("k", 1);
  obj.Set("k", 2);
  EXPECT_EQ(obj.as_object().size(), 1u);
  EXPECT_EQ(obj.Find("k")->as_int(), 2);
}

TEST(JsonTest, LargeIntegerFallsBackToDouble) {
  auto v = JsonParse("99999999999999999999999999");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_double());
}

// ---------------------------------------------------------------------------
// FlatLite
// ---------------------------------------------------------------------------

TEST(FlatLiteTest, ScalarAndStringRoundTrip) {
  FlatLiteBuilder builder(3);
  builder.SetU64(0, 123456789);
  builder.SetString(1, "asset-001");
  Bytes buf = builder.Finish();

  auto view = FlatLiteView::Parse(buf);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->field_count(), 3u);
  EXPECT_EQ(*view->GetU64(0), 123456789u);
  EXPECT_EQ(*view->GetString(1), "asset-001");
  EXPECT_FALSE(view->Has(2));
  EXPECT_TRUE(view->GetU64(2).status().IsNotFound());
}

TEST(FlatLiteTest, NestedTable) {
  FlatLiteBuilder inner(2);
  inner.SetU64(0, 7);
  inner.SetString(1, "inner");
  Bytes inner_buf = inner.Finish();

  FlatLiteBuilder outer(1);
  outer.SetTable(0, inner_buf);
  Bytes buf = outer.Finish();

  auto view = FlatLiteView::Parse(buf);
  ASSERT_TRUE(view.ok());
  auto nested = view->GetTable(0);
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(*nested->GetU64(0), 7u);
  EXPECT_EQ(*nested->GetString(1), "inner");
}

TEST(FlatLiteTest, VectorOfTables) {
  std::vector<Bytes> assets;
  for (int i = 0; i < 5; ++i) {
    FlatLiteBuilder b(2);
    b.SetU64(0, uint64_t(i) * 100);
    b.SetString(1, "asset-" + std::to_string(i));
    assets.push_back(b.Finish());
  }
  FlatLiteBuilder outer(1);
  outer.SetVector(0, assets);
  Bytes buf = outer.Finish();

  auto view = FlatLiteView::Parse(buf);
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(*view->GetVectorSize(0), 5u);
  for (uint32_t i = 0; i < 5; ++i) {
    auto elem = view->GetVectorElement(0, i);
    ASSERT_TRUE(elem.ok());
    auto elem_view = FlatLiteView::Parse(*elem);
    ASSERT_TRUE(elem_view.ok());
    EXPECT_EQ(*elem_view->GetU64(0), uint64_t(i) * 100);
  }
  EXPECT_FALSE(view->GetVectorElement(0, 5).ok());
}

TEST(FlatLiteTest, ZeroCopyViewsAliasBuffer) {
  FlatLiteBuilder builder(1);
  builder.SetString(0, "zero-copy");
  Bytes buf = builder.Finish();
  auto view = FlatLiteView::Parse(buf);
  ASSERT_TRUE(view.ok());
  auto bytes = view->GetBytes(0);
  ASSERT_TRUE(bytes.ok());
  EXPECT_GE(bytes->data(), buf.data());
  EXPECT_LT(bytes->data(), buf.data() + buf.size());
}

TEST(FlatLiteTest, RejectsCorruptBuffers) {
  EXPECT_FALSE(FlatLiteView::Parse(Bytes{1, 2, 3}).ok());

  FlatLiteBuilder builder(1);
  builder.SetString(0, "data");
  Bytes buf = builder.Finish();
  Bytes bad_magic = buf;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(FlatLiteView::Parse(bad_magic).ok());

  Bytes truncated(buf.begin(), buf.begin() + 8);
  auto v = FlatLiteView::Parse(truncated);
  // Header itself parses only if the offset table fits.
  EXPECT_FALSE(v.ok());
}

TEST(FlatLiteTest, OutOfRangeFieldRejected) {
  FlatLiteBuilder builder(2);
  builder.SetU64(0, 1);
  Bytes buf = builder.Finish();
  auto view = FlatLiteView::Parse(buf);
  ASSERT_TRUE(view.ok());
  EXPECT_FALSE(view->GetU64(9).ok());
  EXPECT_FALSE(view->Has(9));
}

}  // namespace
}  // namespace confide::serialize
