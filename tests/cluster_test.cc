/// \file cluster_test.cc
/// \brief Multi-node replication tests for the PBFT-lite cluster layer
/// (net/cluster.h): deterministic 3-node convergence over SimTransport,
/// gap repair after a partition, real-process-shaped TCP clusters inside
/// one test binary, crash/rejoin catch-up, and the HTTP/JSON gateway end
/// to end (confidential submission through sealed-receipt opening).
///
/// All nodes bootstrap BootstrapFirst with the same seed: KM key
/// derivation is a pure function of the seed, so every node holds the
/// same consortium keys — the same shared-seed provisioning contract the
/// `confided` binary documents (docs/OPERATIONS.md §Keys).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "chain/network.h"
#include "common/metrics.h"
#include "confide/client.h"
#include "confide/system.h"
#include "lang/compiler.h"
#include "net/cluster.h"
#include "net/frame_client.h"
#include "net/gateway.h"
#include "net/http.h"
#include "net/sim_transport.h"
#include "net/tcp_transport.h"
#include "serialize/json.h"
#include "serialize/rlp.h"

namespace confide::net {
namespace {

using chain::NamedAddress;
using core::Client;
using core::ConfideSystem;
using core::SystemOptions;

constexpr uint64_t kClusterSeed = 21;

constexpr const char* kCounterSource = R"(
fn increment() {
  var key = "counter";
  var buf = alloc(16);
  var n = get_storage(key, strlen(key), buf, 16);
  var value = 0;
  if (n == 8) { value = load64(buf); }
  value = value + 1;
  store64(buf, value);
  set_storage(key, strlen(key), buf, 8);
  var out = alloc(32);
  var len = u64_to_dec(value, out);
  write_output(out, len);
  return value;
}
)";

Bytes DeployPayload(const Bytes& code) {
  std::vector<serialize::RlpItem> items;
  items.push_back(serialize::RlpItem::U64(uint64_t(chain::VmKind::kCvm)));
  items.push_back(serialize::RlpItem(code));
  return serialize::RlpEncode(serialize::RlpItem::List(std::move(items)));
}

Bytes CounterCode() {
  auto code = lang::Compile(kCounterSource, lang::VmTarget::kCvm);
  EXPECT_TRUE(code.ok());
  return *code;
}

std::unique_ptr<ConfideSystem> MakeSystem() {
  SystemOptions options;
  options.seed = kClusterSeed;
  options.block_max_bytes = 64 * 1024;
  auto sys = ConfideSystem::BootstrapFirst(options);
  EXPECT_TRUE(sys.ok()) << sys.status().ToString();
  return std::move(*sys);
}

bool WaitFor(const std::function<bool()>& pred, uint64_t timeout_ms = 10000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

uint16_t PickPort() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

TEST(ClusterQuorumTest, TwoFPlusOne) {
  EXPECT_EQ(ClusterNode::Quorum(1), 1u);
  EXPECT_EQ(ClusterNode::Quorum(2), 1u);  // f = 0: either node commits alone
  EXPECT_EQ(ClusterNode::Quorum(3), 1u);  // f = 0: crash tolerance only
  EXPECT_EQ(ClusterNode::Quorum(4), 3u);  // f = 1
  EXPECT_EQ(ClusterNode::Quorum(7), 5u);  // f = 2
  EXPECT_EQ(ClusterNode::Quorum(10), 7u); // f = 3
}

// ---------------------------------------------------------------------------
// Simulated clusters: deterministic, every delivery explicit
// ---------------------------------------------------------------------------

class SimClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = chain::NetworkSim::SingleZone(kNodes);
    hub_ = std::make_unique<SimHub>(&sim_, /*seed=*/3);
    for (uint32_t i = 0; i < kNodes; ++i) {
      systems_.push_back(MakeSystem());
      ASSERT_NE(systems_[i], nullptr);
      nodes_.push_back(std::make_unique<ClusterNode>(
          systems_[i].get(), std::make_unique<SimTransport>(hub_.get(), i)));
      ASSERT_TRUE(nodes_[i]->Start().ok());
    }
    client_ = std::make_unique<Client>(99, systems_[0]->pk_tx());
  }

  void TearDown() override {
    for (auto& node : nodes_) node->Stop();
  }

  /// Leader proposes, the hub drains every queued frame (votes and their
  /// replies re-enqueue until consensus quiesces).
  uint64_t CommitRound() {
    auto seq = nodes_[0]->ProposeOnce();
    EXPECT_TRUE(seq.ok()) << seq.status().ToString();
    hub_->DeliverAll();
    return seq.ok() ? *seq : 0;
  }

  void ExpectConverged() {
    for (uint32_t i = 1; i < kNodes; ++i) {
      EXPECT_EQ(nodes_[i]->Height(), nodes_[0]->Height()) << "node " << i;
      EXPECT_EQ(nodes_[i]->TipHash(), nodes_[0]->TipHash()) << "node " << i;
    }
  }

  static constexpr uint32_t kNodes = 3;
  chain::NetworkSim sim_;
  std::unique_ptr<SimHub> hub_;
  std::vector<std::unique_ptr<ConfideSystem>> systems_;
  std::vector<std::unique_ptr<ClusterNode>> nodes_;
  std::unique_ptr<Client> client_;
};

TEST_F(SimClusterTest, ThreeNodesConvergeOnEveryBlock) {
  const Bytes code = CounterCode();
  chain::Address addr = NamedAddress("sim.counter");
  ASSERT_TRUE(systems_[0]
                  ->node()
                  ->SubmitTransaction(
                      client_->MakePublicTx(addr, "__deploy__", DeployPayload(code)))
                  .ok());
  const uint64_t h0 = nodes_[0]->Height();
  CommitRound();
  EXPECT_EQ(nodes_[0]->Height(), h0 + 1);
  ExpectConverged();

  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(systems_[0]
                    ->node()
                    ->SubmitTransaction(client_->MakePublicTx(addr, "increment", Bytes{}))
                    .ok());
    CommitRound();
    ExpectConverged();
  }
  EXPECT_EQ(nodes_[0]->Height(), h0 + 4);
}

TEST_F(SimClusterTest, EmptyPoolsProposeNothing) {
  auto seq = nodes_[0]->ProposeOnce();
  EXPECT_FALSE(seq.ok());
  EXPECT_EQ(seq.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(hub_->pending(), 0u);
}

TEST_F(SimClusterTest, ConfidentialReceiptIsReplicatedAndOpens) {
  const Bytes code = CounterCode();
  chain::Address addr = NamedAddress("sim.conf");
  auto deploy = client_->MakeConfidentialTx(addr, "__deploy__", DeployPayload(code));
  ASSERT_TRUE(deploy.ok()) << deploy.status().ToString();
  ASSERT_TRUE(systems_[0]->node()->SubmitTransaction(deploy->tx).ok());
  CommitRound();

  auto call = client_->MakeConfidentialTx(addr, "increment", Bytes{});
  ASSERT_TRUE(call.ok());
  ASSERT_TRUE(systems_[0]->node()->SubmitTransaction(call->tx).ok());
  CommitRound();
  ExpectConverged();

  // Sealing is deterministic, so every replica stores a byte-identical
  // sealed receipt — and the retained k_tx opens any copy.
  const crypto::Hash256 tx_hash = call->tx.Hash();
  Bytes first_wire;
  for (uint32_t i = 0; i < kNodes; ++i) {
    auto receipt = systems_[i]->node()->GetReceipt(tx_hash);
    ASSERT_TRUE(receipt.ok()) << "node " << i << ": " << receipt.status().ToString();
    Bytes wire = receipt->Serialize();
    if (i == 0) {
      first_wire = wire;
    } else {
      EXPECT_EQ(wire, first_wire) << "node " << i;
    }
    auto opened = Client::OpenSealedReceipt(call->k_tx, receipt->output);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    EXPECT_TRUE(opened->success);
    EXPECT_EQ(opened->output, ToBytes(AsByteView("1")));
  }
}

TEST_F(SimClusterTest, PartitionedReplicaRepairsGapViaFetch) {
  const Bytes code = CounterCode();
  chain::Address addr = NamedAddress("sim.gap");
  ASSERT_TRUE(systems_[0]
                  ->node()
                  ->SubmitTransaction(
                      client_->MakePublicTx(addr, "__deploy__", DeployPayload(code)))
                  .ok());
  CommitRound();
  ExpectConverged();

  // Split node 2 off; it misses the next two blocks.
  ASSERT_TRUE(sim_.SetPartition(2, 1).ok());
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(systems_[0]
                    ->node()
                    ->SubmitTransaction(client_->MakePublicTx(addr, "increment", Bytes{}))
                    .ok());
    CommitRound();
  }
  EXPECT_EQ(nodes_[2]->Height() + 2, nodes_[0]->Height());

  // Heal. The next pre-prepare jumps past node 2's tip, which triggers
  // the kFetchBlocks gap pull; DeliverAll drains fetch + reply + votes.
  sim_.HealPartitions();
  ASSERT_TRUE(systems_[0]
                  ->node()
                  ->SubmitTransaction(client_->MakePublicTx(addr, "increment", Bytes{}))
                  .ok());
  CommitRound();
  hub_->DeliverAll();
  ExpectConverged();
}

TEST_F(SimClusterTest, SubmitPlaneRoutesThroughFrames) {
  // A client frame (kSubmitTx) delivered to the leader must land in its
  // pools and be rejected with a structured ack when malformed.
  const Bytes code = CounterCode();
  chain::Address addr = NamedAddress("sim.frames");
  chain::Transaction tx =
      client_->MakePublicTx(addr, "__deploy__", DeployPayload(code));

  SimTransport client_endpoint(hub_.get(), 2);  // borrow node 2's id slot
  nodes_[2]->Stop();
  std::optional<OwnedFrame> ack;
  client_endpoint.SetHandler(
      [&](uint32_t, MsgType type, ByteView body) -> std::optional<OwnedFrame> {
        ack = OwnedFrame{type, ToBytes(body)};
        return std::nullopt;
      });
  ASSERT_TRUE(client_endpoint.Start().ok());

  ASSERT_TRUE(client_endpoint.Send(0, MsgType::kSubmitTx, tx.Serialize()).ok());
  hub_->DeliverAll();
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->type, MsgType::kSubmitTxAck);
  auto r = serialize::RlpReader::AtList(ack->body);
  ASSERT_TRUE(r.ok());
  auto accepted = r->NextU64();
  auto hash = r->NextFixed(32, "tx hash");
  ASSERT_TRUE(accepted.ok());
  ASSERT_TRUE(hash.ok());
  EXPECT_EQ(*accepted, 1u);
  EXPECT_EQ(ToBytes(*hash), ToBytes(ByteView(tx.Hash().data(), 32)));
  EXPECT_EQ(systems_[0]->node()->UnverifiedPoolSize() +
                systems_[0]->node()->VerifiedPoolSize(),
            1u);

  // A frame that is not a decodable transaction earns a structured
  // kError reply (docs/WIRE_PROTOCOL.md §Error frames), not silence.
  ack.reset();
  ASSERT_TRUE(client_endpoint.Send(0, MsgType::kSubmitTx, AsByteView("garbage")).ok());
  hub_->DeliverAll();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->type, MsgType::kError);
  auto r2 = serialize::RlpReader::AtList(ack->body);
  ASSERT_TRUE(r2.ok());
  auto error_code = r2->NextU64();
  ASSERT_TRUE(error_code.ok());
  EXPECT_EQ(*error_code, 400u);
}

// ---------------------------------------------------------------------------
// View changes: dynamic leadership over the deterministic sim transport
// ---------------------------------------------------------------------------

/// An n-node sim harness for the election tests. The fixture above is
/// pinned to 3 nodes (quorum 1); elections only exercise quorum
/// intersection at n >= 4 (quorum 3), so these tests build their own.
struct SimViewCluster {
  explicit SimViewCluster(uint32_t n)
      : sim(chain::NetworkSim::SingleZone(n)), hub(&sim, /*seed=*/5) {
    for (uint32_t i = 0; i < n; ++i) {
      systems.push_back(MakeSystem());
      EXPECT_NE(systems[i], nullptr);
      nodes.push_back(std::make_unique<ClusterNode>(
          systems[i].get(), std::make_unique<SimTransport>(&hub, i)));
      EXPECT_TRUE(nodes[i]->Start().ok());
    }
    client = std::make_unique<Client>(99, systems[0]->pk_tx());
  }
  ~SimViewCluster() {
    for (auto& node : nodes) node->Stop();
  }

  chain::NetworkSim sim;
  SimHub hub;
  std::vector<std::unique_ptr<ConfideSystem>> systems;
  std::vector<std::unique_ptr<ClusterNode>> nodes;
  std::unique_ptr<Client> client;
};

TEST(SimViewChangeTest, ElectionMovesLeadershipAndResumesProgress) {
  SimViewCluster c(4);
  const Bytes code = CounterCode();
  chain::Address addr = NamedAddress("view.counter");
  ASSERT_TRUE(c.systems[0]
                  ->node()
                  ->SubmitTransaction(c.client->MakePublicTx(
                      addr, "__deploy__", DeployPayload(code)))
                  .ok());
  ASSERT_TRUE(c.nodes[0]->ProposeOnce().ok());
  c.hub.DeliverAll();
  const uint64_t h1 = c.nodes[0]->Height();
  EXPECT_TRUE(c.nodes[0]->is_leader());

  // The leader dies. Two replicas time out (driven explicitly here) and
  // broadcast view-changes for view 1; node 1 — the leader of view 1 —
  // joins on the f+1 rule, reaches quorum 3, and announces kNewView.
  c.nodes[0]->Stop();
  c.nodes[2]->StartViewChange(1);
  c.nodes[3]->StartViewChange(1);
  c.hub.DeliverAll();
  for (uint32_t i = 1; i < 4; ++i) {
    EXPECT_EQ(c.nodes[i]->view(), 1u) << "node " << i;
    EXPECT_EQ(c.nodes[i]->leader(), 1u) << "node " << i;
  }
  EXPECT_TRUE(c.nodes[1]->is_leader());
  EXPECT_FALSE(c.nodes[2]->is_leader());

  // The new leader replicates a block among the three survivors.
  ASSERT_TRUE(c.systems[1]
                  ->node()
                  ->SubmitTransaction(
                      c.client->MakePublicTx(addr, "increment", Bytes{}))
                  .ok());
  ASSERT_TRUE(c.nodes[1]->ProposeOnce().ok());
  c.hub.DeliverAll();
  for (uint32_t i = 1; i < 4; ++i) {
    EXPECT_EQ(c.nodes[i]->Height(), h1 + 1) << "node " << i;
    EXPECT_EQ(c.nodes[i]->TipHash(), c.nodes[1]->TipHash()) << "node " << i;
  }

  // A submission landing on a non-leader replica earns a kRedirect hint
  // naming the elected leader (docs/WIRE_PROTOCOL.md §View change).
  c.nodes[3]->Stop();
  SimTransport client_endpoint(&c.hub, 3);  // borrow node 3's id slot
  std::optional<OwnedFrame> reply;
  client_endpoint.SetHandler(
      [&](uint32_t, MsgType type, ByteView body) -> std::optional<OwnedFrame> {
        reply = OwnedFrame{type, ToBytes(body)};
        return std::nullopt;
      });
  ASSERT_TRUE(client_endpoint.Start().ok());
  chain::Transaction tx = c.client->MakePublicTx(addr, "increment", Bytes{});
  ASSERT_TRUE(client_endpoint.Send(2, MsgType::kSubmitTx, tx.Serialize()).ok());
  c.hub.DeliverAll();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MsgType::kRedirect);
  auto r = serialize::RlpReader::AtList(reply->body);
  ASSERT_TRUE(r.ok());
  auto hint_leader = r->NextU64();
  auto hint_view = r->NextU64();
  ASSERT_TRUE(hint_leader.ok());
  ASSERT_TRUE(hint_view.ok());
  EXPECT_EQ(*hint_leader, 1u);
  EXPECT_EQ(*hint_view, 1u);
}

TEST(SimViewChangeTest, MismatchedViewAndDigestVotesRejectedAndCounted) {
  SimViewCluster c(4);
  const Bytes code = CounterCode();
  chain::Address addr = NamedAddress("view.votes");
  auto* rejected = metrics::GetCounter("cluster.vote.rejected.count");

  // Node 3's slot doubles as the forger; nodes 0-2 still form quorum 3.
  c.nodes[3]->Stop();
  SimTransport forger(&c.hub, 3);
  ASSERT_TRUE(forger.Start().ok());

  ASSERT_TRUE(c.systems[0]
                  ->node()
                  ->SubmitTransaction(c.client->MakePublicTx(
                      addr, "__deploy__", DeployPayload(code)))
                  .ok());
  auto seq = c.nodes[0]->ProposeOnce();
  ASSERT_TRUE(seq.ok());

  // Two forged prepares against the leader's live proposal: one stamped
  // with a view nobody is in, one with the right view but a digest that
  // matches no block. Both must be dropped and counted, not tallied.
  const uint64_t before = rejected->Value();
  auto forge_vote = [&](uint64_t view, uint8_t fill) {
    serialize::RlpWriter w;
    size_t mark = w.BeginList();
    w.WriteU64(view);
    w.WriteU64(*seq);
    Bytes digest(32, fill);
    w.WriteBytes(ByteView(digest));
    w.EndList(mark);
    return std::move(w).Take();
  };
  ASSERT_TRUE(forger.Send(0, MsgType::kPrepare, forge_vote(7, 0x00)).ok());
  ASSERT_TRUE(forger.Send(0, MsgType::kPrepare, forge_vote(0, 0xff)).ok());
  c.hub.DeliverAll();
  EXPECT_EQ(rejected->Value(), before + 2);

  // The forged votes contributed nothing; the honest quorum still commits.
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(c.nodes[i]->Height(), *seq + 1) << "node " << i;
    EXPECT_EQ(c.nodes[i]->TipHash(), c.nodes[0]->TipHash()) << "node " << i;
  }
}

TEST(SimViewChangeTest, StaleRejoinerAdoptsNewViewAndRepairsGap) {
  SimViewCluster c(4);
  const Bytes code = CounterCode();
  chain::Address addr = NamedAddress("view.rejoin");
  ASSERT_TRUE(c.systems[0]
                  ->node()
                  ->SubmitTransaction(c.client->MakePublicTx(
                      addr, "__deploy__", DeployPayload(code)))
                  .ok());
  ASSERT_TRUE(c.nodes[0]->ProposeOnce().ok());
  c.hub.DeliverAll();
  const uint64_t h1 = c.nodes[0]->Height();

  // Old leader crashes; view 1 is elected and commits a block without it.
  c.nodes[0]->Stop();
  c.nodes[2]->StartViewChange(1);
  c.nodes[3]->StartViewChange(1);
  c.hub.DeliverAll();
  ASSERT_TRUE(c.systems[1]
                  ->node()
                  ->SubmitTransaction(
                      c.client->MakePublicTx(addr, "increment", Bytes{}))
                  .ok());
  ASSERT_TRUE(c.nodes[1]->ProposeOnce().ok());
  c.hub.DeliverAll();
  EXPECT_EQ(c.nodes[1]->Height(), h1 + 1);

  // The deposed leader rejoins still believing view 0. The first
  // pre-prepare from view 1's legitimate leader is proof the election
  // happened: it adopts the view and pulls the missed block via the
  // gap-repair fetch — no kNewView replay needed.
  ASSERT_TRUE(c.nodes[0]->Start().ok());
  EXPECT_EQ(c.nodes[0]->view(), 0u);
  EXPECT_EQ(c.nodes[0]->Height(), h1);
  ASSERT_TRUE(c.systems[1]
                  ->node()
                  ->SubmitTransaction(
                      c.client->MakePublicTx(addr, "increment", Bytes{}))
                  .ok());
  ASSERT_TRUE(c.nodes[1]->ProposeOnce().ok());
  c.hub.DeliverAll();
  EXPECT_EQ(c.nodes[0]->view(), 1u);
  EXPECT_FALSE(c.nodes[0]->is_leader());
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(c.nodes[i]->Height(), h1 + 2) << "node " << i;
    EXPECT_EQ(c.nodes[i]->TipHash(), c.nodes[1]->TipHash()) << "node " << i;
  }
}

// ---------------------------------------------------------------------------
// TCP clusters: real sockets, blocking LeaderTick, catch-up
// ---------------------------------------------------------------------------

class TcpClusterTest : public ::testing::Test {
 protected:
  TcpClusterTest() { base_options_.propose_wait_ms = 2000; }

  void StartCluster(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      peers_.push_back("127.0.0.1:" + std::to_string(PickPort()));
    }
    for (uint32_t i = 0; i < n; ++i) StartNode(i);
  }

  void StartNode(uint32_t id) {
    if (systems_.size() <= id) systems_.resize(id + 1);
    if (nodes_.size() <= id) nodes_.resize(id + 1);
    systems_[id] = MakeSystem();
    ASSERT_NE(systems_[id], nullptr);
    TcpTransportOptions options;
    options.self_id = id;
    options.peers = peers_;
    options.listen_host = "127.0.0.1";
    ClusterOptions cluster_options = base_options_;
    cluster_options.election_seed = kClusterSeed + id;
    nodes_[id] = std::make_unique<ClusterNode>(
        systems_[id].get(), std::make_unique<TcpTransport>(options),
        cluster_options);
    ASSERT_TRUE(nodes_[id]->Start().ok());
  }

  void TearDown() override {
    for (auto& node : nodes_) {
      if (node) node->Stop();
    }
  }

  bool Converged() {
    for (size_t i = 1; i < nodes_.size(); ++i) {
      if (!nodes_[i]) continue;
      if (nodes_[i]->Height() != nodes_[0]->Height()) return false;
      if (!(nodes_[i]->TipHash() == nodes_[0]->TipHash())) return false;
    }
    return true;
  }

  std::vector<std::string> peers_;
  ClusterOptions base_options_;
  std::vector<std::unique_ptr<ConfideSystem>> systems_;
  std::vector<std::unique_ptr<ClusterNode>> nodes_;
};

TEST_F(TcpClusterTest, ThreeProcessesShapedClusterCommitsAndServesQueries) {
  StartCluster(3);
  Client client(99, systems_[0]->pk_tx());
  const Bytes code = CounterCode();
  chain::Address addr = NamedAddress("tcp.counter");

  // Submit through the wire, exactly like an external client.
  auto submit = FrameClient::Dial(peers_[0]);
  ASSERT_TRUE(submit.ok()) << submit.status().ToString();
  chain::Transaction deploy =
      client.MakePublicTx(addr, "__deploy__", DeployPayload(code));
  auto ack = submit->Call(MsgType::kSubmitTx, deploy.Serialize());
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  ASSERT_EQ(ack->type, MsgType::kSubmitTxAck);

  auto committed = nodes_[0]->LeaderTick();
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  EXPECT_EQ(*committed, 1u);
  ASSERT_TRUE(WaitFor([&] { return Converged(); }));

  // Receipt query against a replica (receipts replicate with the block).
  auto query = FrameClient::Dial(peers_[1]);
  ASSERT_TRUE(query.ok());
  const crypto::Hash256 tx_hash = deploy.Hash();
  serialize::RlpWriter qw;
  size_t qmark = qw.BeginList();
  qw.WriteBytes(ByteView(tx_hash.data(), tx_hash.size()));
  qw.EndList(qmark);
  const Bytes query_body = std::move(qw).Take();
  auto reply = query->Call(MsgType::kQueryReceipt, query_body);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, MsgType::kReceiptReply);
  auto r = serialize::RlpReader::AtList(reply->body);
  ASSERT_TRUE(r.ok());
  auto found = r->NextU64();
  auto wire = r->NextBytes();
  ASSERT_TRUE(found.ok());
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(*found, 1u);
  auto receipt = chain::Receipt::Deserialize(*wire);
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(receipt->success);

  // Status from every node agrees on height and tip.
  Bytes tip0;
  for (size_t i = 0; i < peers_.size(); ++i) {
    auto status_client = FrameClient::Dial(peers_[i]);
    ASSERT_TRUE(status_client.ok());
    auto status = status_client->Call(MsgType::kQueryStatus, ByteView());
    ASSERT_TRUE(status.ok()) << status.status().ToString();
    ASSERT_EQ(status->type, MsgType::kStatusReply);
    auto sr = serialize::RlpReader::AtList(status->body);
    ASSERT_TRUE(sr.ok());
    auto node_id = sr->NextU64();
    auto height = sr->NextU64();
    auto tip = sr->NextFixed(32, "tip");
    ASSERT_TRUE(node_id.ok());
    ASSERT_TRUE(height.ok());
    ASSERT_TRUE(tip.ok());
    EXPECT_EQ(*node_id, i);
    EXPECT_EQ(*height, nodes_[0]->Height());
    // Wire v2 appends the leader hint: [verified, unverified, view, leader].
    auto verified = sr->NextU64();
    auto unverified = sr->NextU64();
    auto view = sr->NextU64();
    auto leader = sr->NextU64();
    ASSERT_TRUE(verified.ok());
    ASSERT_TRUE(unverified.ok());
    ASSERT_TRUE(view.ok());
    ASSERT_TRUE(leader.ok());
    EXPECT_EQ(*view, 0u);
    EXPECT_EQ(*leader, 0u);
    if (i == 0) {
      tip0 = ToBytes(*tip);
    } else {
      EXPECT_EQ(ToBytes(*tip), tip0) << "node " << i;
    }
  }
}

TEST_F(TcpClusterTest, LateReplicaCatchesUpFromLivePeer) {
  // Boot only the leader of a 2-node cluster (Quorum(2) = 1): it commits
  // alone while its peer is down.
  peers_ = {"127.0.0.1:" + std::to_string(PickPort()),
            "127.0.0.1:" + std::to_string(PickPort())};
  systems_.resize(2);
  nodes_.resize(2);
  StartNode(0);

  Client client(99, systems_[0]->pk_tx());
  const Bytes code = CounterCode();
  chain::Address addr = NamedAddress("tcp.rejoin");
  ASSERT_TRUE(systems_[0]
                  ->node()
                  ->SubmitTransaction(
                      client.MakePublicTx(addr, "__deploy__", DeployPayload(code)))
                  .ok());
  ASSERT_TRUE(nodes_[0]->LeaderTick().ok());
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(systems_[0]
                    ->node()
                    ->SubmitTransaction(client.MakePublicTx(addr, "increment", Bytes{}))
                    .ok());
    ASSERT_TRUE(nodes_[0]->LeaderTick().ok());
  }
  const uint64_t leader_height = nodes_[0]->Height();

  // The replica comes up late — the crash/rejoin path of
  // docs/OPERATIONS.md §Rejoin — and pulls the whole prefix.
  StartNode(1);
  EXPECT_LT(nodes_[1]->Height(), leader_height);
  ASSERT_TRUE(nodes_[1]->CatchUp(0).ok());
  EXPECT_EQ(nodes_[1]->Height(), leader_height);
  EXPECT_EQ(nodes_[1]->TipHash(), nodes_[0]->TipHash());
}

TEST_F(TcpClusterTest, CatchUpFailureReleasesFetchLatch) {
  // Regression: a CatchUp whose peer dies before the request leaves must
  // not leave fetch_in_flight_ latched — every later gap-repair pull
  // would be suppressed and the node could never heal.
  peers_ = {"127.0.0.1:" + std::to_string(PickPort()),
            "127.0.0.1:" + std::to_string(PickPort())};
  systems_.resize(2);
  nodes_.resize(2);
  StartNode(0);
  EXPECT_FALSE(nodes_[0]->fetch_in_flight_for_test());
  Status st = nodes_[0]->CatchUp(1);  // peer 1 was never started
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(nodes_[0]->fetch_in_flight_for_test());
}

TEST_F(TcpClusterTest, AbandonedProposalRequeuesTransactionsForNextRound) {
  // Regression: a leader that cannot reach quorum abandons the round; the
  // drained transactions must return to the verified pool and the stale
  // Pending entry must not block the same seq once peers appear.
  base_options_.propose_wait_ms = 100;
  base_options_.propose_retries = 1;
  for (size_t i = 0; i < 4; ++i) {
    peers_.push_back("127.0.0.1:" + std::to_string(PickPort()));
  }
  systems_.resize(4);
  nodes_.resize(4);
  StartNode(0);  // alone: Quorum(4) = 3 is unreachable

  Client client(99, systems_[0]->pk_tx());
  const Bytes code = CounterCode();
  chain::Address addr = NamedAddress("tcp.abandon");
  ASSERT_TRUE(systems_[0]
                  ->node()
                  ->SubmitTransaction(
                      client.MakePublicTx(addr, "__deploy__", DeployPayload(code)))
                  .ok());

  auto tick = nodes_[0]->LeaderTick();
  EXPECT_FALSE(tick.ok());
  const uint64_t h0 = nodes_[0]->Height();
  EXPECT_EQ(systems_[0]->node()->VerifiedPoolSize(), 1u);

  // The quorum arrives late; the same seq must now replicate cleanly.
  for (uint32_t id = 1; id < 4; ++id) StartNode(id);
  auto committed = nodes_[0]->LeaderTick();
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  EXPECT_EQ(*committed, 1u);
  EXPECT_EQ(nodes_[0]->Height(), h0 + 1);
  ASSERT_TRUE(WaitFor([&] { return Converged(); }));
}

TEST_F(TcpClusterTest, HeartbeatDetectorElectsNewLeaderAndRedirects) {
  base_options_.heartbeat_ms = 20;
  base_options_.view_timeout_ms = 150;
  base_options_.view_timeout_max_ms = 2000;
  StartCluster(3);
  Client client(99, systems_[0]->pk_tx());
  const Bytes code = CounterCode();
  chain::Address addr = NamedAddress("tcp.failover");
  ASSERT_TRUE(systems_[0]
                  ->node()
                  ->SubmitTransaction(
                      client.MakePublicTx(addr, "__deploy__", DeployPayload(code)))
                  .ok());
  ASSERT_TRUE(nodes_[0]->LeaderTick().ok());
  ASSERT_TRUE(WaitFor([&] { return Converged(); }));
  const uint64_t h1 = nodes_[0]->Height();

  // The leader goes dark. The survivors' failure detectors time out,
  // agree on a new view, and the elected leader starts heartbeating.
  nodes_[0]->Stop();
  ASSERT_TRUE(WaitFor(
      [&] {
        return nodes_[1]->view() >= 1 && nodes_[2]->view() == nodes_[1]->view();
      },
      20000));
  const uint64_t view = nodes_[1]->view();
  const uint32_t leader = nodes_[1]->leader();
  EXPECT_EQ(leader, uint32_t(view % 3));
  ASSERT_NE(leader, 0u);
  const uint32_t follower = leader == 1 ? 2 : 1;

  // A submission at the follower earns a kRedirect naming the winner.
  auto to_follower = FrameClient::Dial(peers_[follower]);
  ASSERT_TRUE(to_follower.ok());
  chain::Transaction tx = client.MakePublicTx(addr, "increment", Bytes{});
  auto redirect = to_follower->Call(MsgType::kSubmitTx, tx.Serialize());
  ASSERT_TRUE(redirect.ok()) << redirect.status().ToString();
  ASSERT_EQ(redirect->type, MsgType::kRedirect);
  auto r = serialize::RlpReader::AtList(redirect->body);
  ASSERT_TRUE(r.ok());
  auto hint = r->NextU64();
  ASSERT_TRUE(hint.ok());
  EXPECT_EQ(uint32_t(*hint), leader);

  // Re-routed to the announced leader, the survivors commit without 0.
  auto to_leader = FrameClient::Dial(peers_[leader]);
  ASSERT_TRUE(to_leader.ok());
  auto ack = to_leader->Call(MsgType::kSubmitTx, tx.Serialize());
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  ASSERT_EQ(ack->type, MsgType::kSubmitTxAck);
  auto committed = nodes_[leader]->LeaderTick();
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  EXPECT_EQ(*committed, 1u);
  ASSERT_TRUE(WaitFor([&] {
    return nodes_[1]->Height() == h1 + 1 && nodes_[2]->Height() == h1 + 1;
  }));
  EXPECT_EQ(nodes_[1]->TipHash(), nodes_[2]->TipHash());
}

TEST_F(TcpClusterTest, GatewayFailsOverAndChasesElectedLeader) {
  base_options_.heartbeat_ms = 20;
  base_options_.view_timeout_ms = 150;
  base_options_.view_timeout_max_ms = 2000;
  StartCluster(3);
  Client client(99, systems_[0]->pk_tx());
  const Bytes code = CounterCode();
  chain::Address addr = NamedAddress("gw.failover");

  GatewayOptions gw_options;
  gw_options.nodes = peers_;
  gw_options.listen_host = "127.0.0.1";
  gw_options.listen_port = 0;
  Gateway gateway(gw_options);
  ASSERT_TRUE(gateway.Start().ok());
  auto http = HttpClient::Connect("http://127.0.0.1:" +
                                  std::to_string(gateway.port()));
  ASSERT_TRUE(http.ok()) << http.status().ToString();

  chain::Transaction deploy =
      client.MakePublicTx(addr, "__deploy__", DeployPayload(code));
  auto post = http->Post("/v1/tx",
                         "{\"tx\":\"" + HexEncode(deploy.Serialize()) + "\"}");
  ASSERT_TRUE(post.ok());
  ASSERT_EQ(post->status, 202) << post->body;
  ASSERT_TRUE(nodes_[0]->LeaderTick().ok());
  ASSERT_TRUE(WaitFor([&] { return Converged(); }));
  const uint64_t h1 = nodes_[0]->Height();

  // Kill the leader the gateway is pointed at; survivors elect.
  nodes_[0]->Stop();
  ASSERT_TRUE(WaitFor(
      [&] {
        return nodes_[1]->view() >= 1 && nodes_[2]->view() == nodes_[1]->view();
      },
      20000));

  auto* failover = metrics::GetCounter("gateway.upstream.failover.count");
  const uint64_t failover_before = failover->Value();

  // Submissions keep landing: the gateway fails over off the dead node
  // and follows kRedirect hints to whoever won the election.
  chain::Transaction tx = client.MakePublicTx(addr, "increment", Bytes{});
  const std::string body = "{\"tx\":\"" + HexEncode(tx.Serialize()) + "\"}";
  ASSERT_TRUE(WaitFor([&] {
    auto resp = http->Post("/v1/tx", body);
    return resp.ok() && resp->status == 202;
  }));
  EXPECT_GT(failover->Value(), failover_before);

  const uint32_t leader = nodes_[1]->leader();
  ASSERT_NE(leader, 0u);
  ASSERT_TRUE(nodes_[leader]->LeaderTick().ok());
  ASSERT_TRUE(WaitFor([&] {
    return nodes_[1]->Height() == h1 + 1 && nodes_[2]->Height() == h1 + 1;
  }));

  // /v1/status marks the dead node unreachable and carries the view and
  // leader columns the failover tooling keys on.
  auto status_resp = http->Get("/v1/status");
  ASSERT_TRUE(status_resp.ok());
  auto status_json = serialize::JsonParse(status_resp->body);
  ASSERT_TRUE(status_json.ok());
  const auto& entries = status_json->Find("nodes")->as_array();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_FALSE(entries[0].Find("reachable")->as_bool());
  for (size_t i = 1; i < 3; ++i) {
    ASSERT_TRUE(entries[i].Find("reachable")->as_bool());
    EXPECT_EQ(uint64_t(entries[i].Find("view")->as_int()), nodes_[1]->view());
    EXPECT_EQ(uint32_t(entries[i].Find("leader")->as_int()), leader);
  }
  EXPECT_EQ(gateway.leader_hint(), leader);
  gateway.Stop();
}

// ---------------------------------------------------------------------------
// Gateway end to end over a TCP cluster
// ---------------------------------------------------------------------------

TEST_F(TcpClusterTest, GatewayServesSubmissionAndQueriesEndToEnd) {
  StartCluster(3);
  Client client(99, systems_[0]->pk_tx());
  const Bytes code = CounterCode();

  GatewayOptions gw_options;
  gw_options.nodes = peers_;
  gw_options.listen_host = "127.0.0.1";
  gw_options.listen_port = 0;
  Gateway gateway(gw_options);
  ASSERT_TRUE(gateway.Start().ok());

  auto http = HttpClient::Connect("http://127.0.0.1:" +
                                  std::to_string(gateway.port()));
  ASSERT_TRUE(http.ok()) << http.status().ToString();

  auto health = http->Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(health->body, "ok");

  // pk_info served over HTTP matches what the nodes bootstrapped.
  auto pk_info = http->Get("/v1/pk_info");
  ASSERT_TRUE(pk_info.ok());
  ASSERT_EQ(pk_info->status, 200);
  auto pk_json = serialize::JsonParse(pk_info->body);
  ASSERT_TRUE(pk_json.ok());
  const auto* blob_hex = pk_json->Find("pk_info");
  ASSERT_NE(blob_hex, nullptr);
  EXPECT_EQ(blob_hex->as_string(),
            HexEncode(systems_[0]->pk_info_blob()));

  // Public deploy, then a confidential deploy + call at a second
  // address (confidential contracts keep sealed state; mixing planes on
  // one contract is not part of the model), all via POST /v1/tx.
  chain::Address addr = NamedAddress("gw.counter");
  chain::Address conf_addr = NamedAddress("gw.conf");
  chain::Transaction deploy =
      client.MakePublicTx(addr, "__deploy__", DeployPayload(code));
  auto post = http->Post("/v1/tx",
                         "{\"tx\":\"" + HexEncode(deploy.Serialize()) + "\"}");
  ASSERT_TRUE(post.ok()) << post.status().ToString();
  ASSERT_EQ(post->status, 202) << post->body;
  auto post_json = serialize::JsonParse(post->body);
  ASSERT_TRUE(post_json.ok());
  ASSERT_NE(post_json->Find("accepted"), nullptr);
  EXPECT_TRUE(post_json->Find("accepted")->as_bool());
  EXPECT_EQ(post_json->Find("type")->as_string(), "public");

  auto conf_deploy =
      client.MakeConfidentialTx(conf_addr, "__deploy__", DeployPayload(code));
  ASSERT_TRUE(conf_deploy.ok());
  auto conf_deploy_post = http->Post(
      "/v1/tx", "{\"tx\":\"" + HexEncode(conf_deploy->tx.Serialize()) + "\"}");
  ASSERT_TRUE(conf_deploy_post.ok());
  ASSERT_EQ(conf_deploy_post->status, 202) << conf_deploy_post->body;
  ASSERT_TRUE(nodes_[0]->LeaderTick().ok());

  auto call = client.MakeConfidentialTx(conf_addr, "increment", Bytes{});
  ASSERT_TRUE(call.ok());
  auto conf_post = http->Post(
      "/v1/tx", "{\"tx\":\"" + HexEncode(call->tx.Serialize()) + "\"}");
  ASSERT_TRUE(conf_post.ok());
  ASSERT_EQ(conf_post->status, 202) << conf_post->body;
  auto conf_json = serialize::JsonParse(conf_post->body);
  ASSERT_TRUE(conf_json.ok());
  EXPECT_EQ(conf_json->Find("type")->as_string(), "confidential");
  const std::string tx_hash_hex = conf_json->Find("tx_hash")->as_string();
  ASSERT_TRUE(nodes_[0]->LeaderTick().ok());
  ASSERT_TRUE(WaitFor([&] { return Converged(); }));

  // The receipt query routes to a replica; the sealed output opens with
  // the client-retained k_tx and proves the confidential call ran.
  auto receipt_resp = http->Get("/v1/receipt/" + tx_hash_hex);
  ASSERT_TRUE(receipt_resp.ok());
  ASSERT_EQ(receipt_resp->status, 200) << receipt_resp->body;
  auto receipt_json = serialize::JsonParse(receipt_resp->body);
  ASSERT_TRUE(receipt_json.ok());
  EXPECT_TRUE(receipt_json->Find("found")->as_bool());
  auto receipt_wire = HexDecode(receipt_json->Find("receipt_wire")->as_string());
  ASSERT_TRUE(receipt_wire.ok());
  auto receipt = chain::Receipt::Deserialize(*receipt_wire);
  ASSERT_TRUE(receipt.ok());
  auto opened = Client::OpenSealedReceipt(call->k_tx, receipt->output);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE(opened->success);
  EXPECT_EQ(opened->output, ToBytes(AsByteView("1")));

  // Unknown receipts 404; /v1/status shows all three nodes converged.
  auto missing = http->Get("/v1/receipt/" + std::string(64, '0'));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);

  auto status_resp = http->Get("/v1/status");
  ASSERT_TRUE(status_resp.ok());
  ASSERT_EQ(status_resp->status, 200);
  auto status_json = serialize::JsonParse(status_resp->body);
  ASSERT_TRUE(status_json.ok());
  const auto* node_list = status_json->Find("nodes");
  ASSERT_NE(node_list, nullptr);
  ASSERT_EQ(node_list->as_array().size(), 3u);
  std::string tip0;
  for (const auto& entry : node_list->as_array()) {
    ASSERT_NE(entry.Find("tip_hash"), nullptr);
    EXPECT_EQ(uint64_t(entry.Find("height")->as_int()), nodes_[0]->Height());
    if (tip0.empty()) {
      tip0 = entry.Find("tip_hash")->as_string();
    } else {
      EXPECT_EQ(entry.Find("tip_hash")->as_string(), tip0);
    }
  }

  gateway.Stop();
}

}  // namespace
}  // namespace confide::net
