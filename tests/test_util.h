/// \file test_util.h
/// \brief Shared helpers for the test suites.

#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "vm/host_env.h"

namespace confide::testutil {

/// \brief Simple in-memory HostEnv with a pluggable cross-contract hook.
class MapHostEnv : public vm::HostEnv {
 public:
  Result<Bytes> GetStorage(ByteView key) override {
    ++get_count;
    auto it = storage.find(ToString(key));
    if (it == storage.end()) return Status::NotFound("no such key");
    return it->second;
  }

  Status SetStorage(ByteView key, ByteView value) override {
    ++set_count;
    storage[ToString(key)] = ToBytes(value);
    return Status::OK();
  }

  void EmitLog(ByteView data) override { logs.push_back(ToString(data)); }

  Result<Bytes> CallContract(ByteView address, ByteView input) override {
    ++call_count;
    if (call_hook) return call_hook(address, input);
    return Status::NotFound("no contract at address");
  }

  std::map<std::string, Bytes> storage;
  std::vector<std::string> logs;
  std::function<Result<Bytes>(ByteView, ByteView)> call_hook;
  int get_count = 0;
  int set_count = 0;
  int call_count = 0;
};

}  // namespace confide::testutil
