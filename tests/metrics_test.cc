/// \file metrics_test.cc
/// \brief Tests for the process-wide metrics registry: concurrency, bucket
/// boundary placement, snapshot isolation, and JSON round-trips.

#include "common/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace confide::metrics {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, SetAddNegative) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-25);
  EXPECT_EQ(gauge.Value(), -15);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0);
}

TEST(CounterTest, ConcurrentIncrementsFromEightThreads) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIterations = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIterations; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), uint64_t(kThreads) * kIterations);
}

TEST(RegistryTest, ConcurrentRegistrationAndUpdates) {
  // Threads race both the registration slow path (mutex) and the update
  // fast path (relaxed atomics) against the same names.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter* shared = registry.GetCounter("shared.count");
      Histogram* histogram = registry.GetHistogram("shared.hist", {10, 100});
      for (int i = 0; i < kIterations; ++i) {
        shared->Increment();
        histogram->Observe(uint64_t(i % 200));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counter("shared.count"), uint64_t(kThreads) * kIterations);
  const auto& hist = snapshot.histograms.at("shared.hist");
  EXPECT_EQ(hist.count, uint64_t(kThreads) * kIterations);
  uint64_t bucket_total = 0;
  for (uint64_t c : hist.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, hist.count);
}

TEST(RegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x.count");
  Counter* b = registry.GetCounter("x.count");
  EXPECT_EQ(a, b);
}

TEST(RegistryTest, CrossKindLookupReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("name.count"), nullptr);
  EXPECT_EQ(registry.GetGauge("name.count"), nullptr);
  EXPECT_EQ(registry.GetHistogram("name.count"), nullptr);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram histogram({10, 100, 1000});
  histogram.Observe(0);     // bucket 0 (<= 10)
  histogram.Observe(10);    // bucket 0 (inclusive)
  histogram.Observe(11);    // bucket 1
  histogram.Observe(100);   // bucket 1 (inclusive)
  histogram.Observe(101);   // bucket 2
  histogram.Observe(1000);  // bucket 2 (inclusive)
  histogram.Observe(1001);  // overflow bucket
  EXPECT_EQ(histogram.bucket_count(0), 2u);
  EXPECT_EQ(histogram.bucket_count(1), 2u);
  EXPECT_EQ(histogram.bucket_count(2), 2u);
  EXPECT_EQ(histogram.bucket_count(3), 1u);
  EXPECT_EQ(histogram.count(), 7u);
  EXPECT_EQ(histogram.sum(), 0u + 10 + 11 + 100 + 101 + 1000 + 1001);
}

TEST(HistogramTest, DefaultLatencyLadderCoversMicroToSeconds) {
  std::vector<uint64_t> bounds = Histogram::DefaultLatencyBoundsNs();
  ASSERT_FALSE(bounds.empty());
  EXPECT_EQ(bounds.front(), 1000u);            // 1 µs
  EXPECT_EQ(bounds.back(), 10'000'000'000u);   // 10 s
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(SnapshotTest, IsolatedFromLaterUpdates) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("iso.count");
  Gauge* gauge = registry.GetGauge("iso.gauge");
  Histogram* histogram = registry.GetHistogram("iso.hist", {5});
  counter->Increment(3);
  gauge->Set(-7);
  histogram->Observe(4);

  MetricsSnapshot before = registry.Snapshot();

  counter->Increment(100);
  gauge->Set(99);
  histogram->Observe(1000);

  EXPECT_EQ(before.counter("iso.count"), 3u);
  EXPECT_EQ(before.gauges.at("iso.gauge"), -7);
  EXPECT_EQ(before.histograms.at("iso.hist").count, 1u);

  MetricsSnapshot after = registry.Snapshot();
  EXPECT_EQ(after.counter("iso.count"), 103u);
  EXPECT_EQ(after.gauges.at("iso.gauge"), 99);
  EXPECT_EQ(after.histograms.at("iso.hist").count, 2u);
  EXPECT_NE(before, after);
}

TEST(SnapshotTest, JsonRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("rt.a.count")->Increment(17);
  registry.GetCounter("rt.b.count");  // zero-valued survives the trip too
  registry.GetGauge("rt.gauge")->Set(-42);
  Histogram* histogram = registry.GetHistogram("rt.hist", {1, 2, 5});
  histogram->Observe(0);
  histogram->Observe(3);
  histogram->Observe(1'000'000);

  MetricsSnapshot snapshot = registry.Snapshot();
  std::string json = snapshot.ToJson();
  auto parsed = MetricsSnapshot::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, snapshot);
  // Serialization is deterministic.
  EXPECT_EQ(parsed->ToJson(), json);
}

TEST(SnapshotTest, JsonEscapesAwkwardNames) {
  MetricsRegistry registry;
  registry.GetCounter("weird.\"quoted\"\\name\n.count")->Increment();
  MetricsSnapshot snapshot = registry.Snapshot();
  auto parsed = MetricsSnapshot::FromJson(snapshot.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, snapshot);
}

TEST(SnapshotTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(MetricsSnapshot::FromJson("").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("not json").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("{\"counters\":{").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("[1,2,3]").ok());
}

TEST(RegistryTest, ResetAllZeroesButKeepsPointers) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("r.count");
  Histogram* histogram = registry.GetHistogram("r.hist");
  counter->Increment(9);
  histogram->Observe(123);
  registry.ResetAll();
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(histogram->count(), 0u);
  EXPECT_EQ(registry.GetCounter("r.count"), counter);
  counter->Increment();  // pointer still live and wired to the registry
  EXPECT_EQ(registry.Snapshot().counter("r.count"), 1u);
}

TEST(GlobalRegistryTest, FreeHelpersHitTheGlobalRegistry) {
  Counter* counter = GetCounter("global.helper.count");
  ASSERT_NE(counter, nullptr);
  uint64_t before = MetricsRegistry::Global().Snapshot().counter(
      "global.helper.count");
  counter->Increment(5);
  uint64_t after = MetricsRegistry::Global().Snapshot().counter(
      "global.helper.count");
  EXPECT_EQ(after - before, 5u);
}

TEST(ScopedLatencyTimerTest, ObservesOnDestruction) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("timer.hist");
  {
    ScopedLatencyTimer timer(histogram);
  }
  EXPECT_EQ(histogram->count(), 1u);
}

}  // namespace
}  // namespace confide::metrics
