/// \file net_test.cc
/// \brief Tests for the src/net subsystem below consensus: wire framing
/// (docs/WIRE_PROTOCOL.md), stream reassembly under every split point,
/// decode hardening against mutated/oversized/truncated frames, the
/// HTTP/1.1 server+client pair, flag/env configuration parsing, and both
/// Transport implementations (SimTransport over NetworkSim, TcpTransport
/// over real sockets including drop-mid-frame and reconnect).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "chain/network.h"
#include "common/metrics.h"
#include "crypto/drbg.h"
#include "net/config.h"
#include "net/frame.h"
#include "net/frame_client.h"
#include "net/http.h"
#include "net/sim_transport.h"
#include "net/tcp_transport.h"
#include "serialize/rlp.h"

namespace confide::net {
namespace {

Bytes Body(std::string_view s) { return ToBytes(AsByteView(s)); }

/// Polls `pred` until true or ~5s elapsed (socket paths are async).
bool WaitFor(const std::function<bool()>& pred, uint64_t timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// Reserves a free TCP port by binding :0 and closing (tests must pick
/// ports before constructing transports, whose peer table is fixed).
uint16_t PickPort() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

/// Connects a raw client socket to 127.0.0.1:`port`.
int RawConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

// ---------------------------------------------------------------------------
// Frame encode/decode
// ---------------------------------------------------------------------------

TEST(FrameTest, EncodeProducesBigEndianLengthPrefix) {
  Bytes wire = EncodeFrame(MsgType::kSubmitTx, AsByteView("hello"));
  ASSERT_GT(wire.size(), kLengthPrefixBytes);
  const size_t payload = wire.size() - kLengthPrefixBytes;
  EXPECT_EQ(wire[0], uint8_t(payload >> 24));
  EXPECT_EQ(wire[1], uint8_t(payload >> 16));
  EXPECT_EQ(wire[2], uint8_t(payload >> 8));
  EXPECT_EQ(wire[3], uint8_t(payload));
}

TEST(FrameTest, EncodeDecodeRoundTrip) {
  const Bytes body = Body("round-trip body");
  Bytes wire = EncodeFrame(MsgType::kPrePrepare, body);
  auto frame = DecodeFramePayload(
      ByteView(wire.data() + kLengthPrefixBytes, wire.size() - kLengthPrefixBytes));
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->version, kWireVersion);
  EXPECT_EQ(frame->type, MsgType::kPrePrepare);
  EXPECT_EQ(ToBytes(frame->body), body);
}

TEST(FrameTest, EmptyBodyRoundTrips) {
  Bytes wire = EncodeFrame(MsgType::kQueryStatus, ByteView{});
  FrameAssembler assembler;
  assembler.Append(wire);
  FrameView frame;
  auto next = assembler.Next(&frame);
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(*next);
  EXPECT_EQ(frame.type, MsgType::kQueryStatus);
  EXPECT_TRUE(frame.body.empty());
  EXPECT_TRUE(assembler.Finish().ok());
}

TEST(FrameTest, DecodeRejectsUnknownVersion) {
  serialize::RlpWriter w;
  size_t list = w.BeginList();
  w.WriteU64(kWireVersion + 1);
  w.WriteU64(uint64_t(MsgType::kSubmitTx));
  w.WriteBytes(AsByteView("body"));
  w.EndList(list);
  Bytes payload = std::move(w).Take();
  EXPECT_FALSE(DecodeFramePayload(payload).ok());
}

TEST(FrameTest, DecodeRejectsOversizedTypeTag) {
  serialize::RlpWriter w;
  size_t list = w.BeginList();
  w.WriteU64(kWireVersion);
  w.WriteU64(300);  // does not fit the u8 MsgType space
  w.WriteBytes(AsByteView("body"));
  w.EndList(list);
  Bytes payload = std::move(w).Take();
  EXPECT_FALSE(DecodeFramePayload(payload).ok());
}

TEST(FrameTest, DecodeRejectsTrailingBytes) {
  Bytes wire = EncodeFrame(MsgType::kSubmitTx, AsByteView("x"));
  Bytes payload(wire.begin() + kLengthPrefixBytes, wire.end());
  payload.push_back(0x00);
  EXPECT_FALSE(DecodeFramePayload(payload).ok());
}

// ---------------------------------------------------------------------------
// FrameAssembler: reassembly, limits, truncation
// ---------------------------------------------------------------------------

TEST(FrameAssemblerTest, OneByteAtATime) {
  const Bytes body = Body("byte-at-a-time payload");
  Bytes wire = EncodeFrame(MsgType::kCommit, body);
  FrameAssembler assembler;
  FrameView frame;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    assembler.Append(ByteView(&wire[i], 1));
    auto next = assembler.Next(&frame);
    ASSERT_TRUE(next.ok());
    EXPECT_FALSE(*next) << "frame completed early at byte " << i;
  }
  assembler.Append(ByteView(&wire.back(), 1));
  auto next = assembler.Next(&frame);
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(*next);
  EXPECT_EQ(frame.type, MsgType::kCommit);
  EXPECT_EQ(ToBytes(frame.body), body);
  EXPECT_TRUE(assembler.Finish().ok());
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
}

TEST(FrameAssemblerTest, SplitAtEveryBoundary) {
  // Two frames back to back; split the stream at every byte offset.
  Bytes stream = EncodeFrame(MsgType::kPrepare, Body("first"));
  Bytes second = EncodeFrame(MsgType::kCommit, Body("second-frame"));
  stream.insert(stream.end(), second.begin(), second.end());

  for (size_t split = 0; split <= stream.size(); ++split) {
    FrameAssembler assembler;
    assembler.Append(ByteView(stream.data(), split));
    std::vector<MsgType> got;
    FrameView frame;
    while (true) {
      auto next = assembler.Next(&frame);
      ASSERT_TRUE(next.ok());
      if (!*next) break;
      got.push_back(frame.type);
    }
    assembler.Append(ByteView(stream.data() + split, stream.size() - split));
    while (true) {
      auto next = assembler.Next(&frame);
      ASSERT_TRUE(next.ok());
      if (!*next) break;
      got.push_back(frame.type);
    }
    ASSERT_EQ(got.size(), 2u) << "split at " << split;
    EXPECT_EQ(got[0], MsgType::kPrepare);
    EXPECT_EQ(got[1], MsgType::kCommit);
    EXPECT_TRUE(assembler.Finish().ok());
  }
}

TEST(FrameAssemblerTest, ManyFramesOneChunk) {
  Bytes stream;
  for (int i = 0; i < 10; ++i) {
    Bytes wire = EncodeFrame(MsgType::kSubmitTx, Body("frame " + std::to_string(i)));
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  FrameAssembler assembler;
  assembler.Append(stream);
  int count = 0;
  FrameView frame;
  while (true) {
    auto next = assembler.Next(&frame);
    ASSERT_TRUE(next.ok());
    if (!*next) break;
    EXPECT_EQ(ToBytes(frame.body), Body("frame " + std::to_string(count)));
    ++count;
  }
  EXPECT_EQ(count, 10);
}

TEST(FrameAssemblerTest, OversizedAnnouncementIsCorruptionNotAllocation) {
  // A length prefix near UINT32_MAX must be rejected from the 4 prefix
  // bytes alone — no buffering until the announced size "arrives".
  const Bytes prefix = {0xFF, 0xFF, 0xFF, 0xFF};
  FrameAssembler assembler;
  assembler.Append(prefix);
  FrameView frame;
  auto next = assembler.Next(&frame);
  EXPECT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kCorruption);
}

TEST(FrameAssemblerTest, CustomPayloadLimitEnforced) {
  Bytes wire = EncodeFrame(MsgType::kSubmitTx, Bytes(128, 0xAB));
  FrameAssembler small(64);
  small.Append(wire);
  FrameView frame;
  EXPECT_FALSE(small.Next(&frame).ok());
}

TEST(FrameAssemblerTest, TruncatedStreamFailsFinish) {
  Bytes wire = EncodeFrame(MsgType::kBlocksReply, Bytes(100, 0x42));
  FrameAssembler assembler;
  // Connection dropped mid-frame: prefix + half the payload.
  assembler.Append(ByteView(wire.data(), wire.size() / 2));
  FrameView frame;
  auto next = assembler.Next(&frame);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(*next);
  Status finish = assembler.Finish();
  EXPECT_FALSE(finish.ok());
  EXPECT_EQ(finish.code(), StatusCode::kCorruption);
}

TEST(FrameAssemblerTest, TruncatedPrefixAloneFailsFinish) {
  FrameAssembler assembler;
  assembler.Append(Bytes{0x00, 0x00});
  FrameView frame;
  auto next = assembler.Next(&frame);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(*next);
  EXPECT_FALSE(assembler.Finish().ok());
}

TEST(FrameAssemblerTest, EmptyStreamFinishesClean) {
  FrameAssembler assembler;
  EXPECT_TRUE(assembler.Finish().ok());
}

/// DecodeFuzzTest-style mutation sweep: single-byte mutations of a valid
/// frame must never crash or hang the assembler — every outcome is
/// either a (possibly different) decoded frame or a clean Corruption.
TEST(FrameAssemblerTest, SingleByteMutationsNeverCrash) {
  const Bytes wire = EncodeFrame(MsgType::kPrePrepare, Bytes(64, 0x5A));
  crypto::Drbg rng(0xF22);
  for (size_t pos = 0; pos < wire.size(); ++pos) {
    Bytes mutated = wire;
    mutated[pos] ^= uint8_t(1 + rng.NextBounded(255));
    FrameAssembler assembler;
    assembler.Append(mutated);
    FrameView frame;
    while (true) {
      auto next = assembler.Next(&frame);
      if (!next.ok()) break;  // corruption detected: acceptable
      if (!*next) break;      // incomplete: acceptable (length grew)
    }
  }
}

TEST(FrameAssemblerTest, RandomGarbageStreamsNeverCrash) {
  crypto::Drbg rng(77);
  for (int round = 0; round < 64; ++round) {
    Bytes garbage = rng.Generate(1 + rng.NextBounded(512));
    FrameAssembler assembler;
    assembler.Append(garbage);
    FrameView frame;
    while (true) {
      auto next = assembler.Next(&frame);
      if (!next.ok() || !*next) break;
    }
  }
}

// ---------------------------------------------------------------------------
// SplitHostPort / configuration parsing
// ---------------------------------------------------------------------------

TEST(SplitHostPortTest, ParsesHostAndPort) {
  auto hp = SplitHostPort("127.0.0.1:9001");
  ASSERT_TRUE(hp.ok());
  EXPECT_EQ(hp->first, "127.0.0.1");
  EXPECT_EQ(hp->second, 9001);
}

TEST(SplitHostPortTest, PortZeroMeansEphemeral) {
  auto hp = SplitHostPort("localhost:0");
  ASSERT_TRUE(hp.ok());
  EXPECT_EQ(hp->second, 0);
}

TEST(SplitHostPortTest, RejectsMalformedAddresses) {
  EXPECT_FALSE(SplitHostPort("no-port").ok());
  EXPECT_FALSE(SplitHostPort(":8080").ok());
  EXPECT_FALSE(SplitHostPort("host:").ok());
  EXPECT_FALSE(SplitHostPort("host:abc").ok());
  EXPECT_FALSE(SplitHostPort("host:70000").ok());
}

std::vector<char*> Argv(std::vector<std::string>& args) {
  std::vector<char*> argv;
  for (auto& arg : args) argv.push_back(arg.data());
  return argv;
}

TEST(ConfigTest, NodeFlagsParse) {
  std::vector<std::string> args = {
      "confided",          "--node-id=2",
      "--peers=a:1,b:2,c:3", "--listen-host=127.0.0.1",
      "--seed=7",          "--block-max-bytes=8192",
      "--parallelism=4",   "--state-dir=/tmp/wal",
      "--tick-ms=5",       "--metrics-out=m.json"};
  auto argv = Argv(args);
  auto cfg = NodeConfig::FromArgs(int(argv.size()), argv.data());
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();
  EXPECT_EQ(cfg->node_id, 2u);
  ASSERT_EQ(cfg->peers.size(), 3u);
  EXPECT_EQ(cfg->peers[1], "b:2");
  EXPECT_EQ(cfg->listen_host, "127.0.0.1");
  EXPECT_EQ(cfg->seed, 7u);
  EXPECT_EQ(cfg->block_max_bytes, 8192u);
  EXPECT_EQ(cfg->parallelism, 4u);
  EXPECT_EQ(cfg->state_dir, "/tmp/wal");
  EXPECT_EQ(cfg->tick_ms, 5u);
  EXPECT_EQ(cfg->metrics_out, "m.json");
}

TEST(ConfigTest, NodeIdMustIndexPeers) {
  std::vector<std::string> args = {"confided", "--node-id=3", "--peers=a:1,b:2"};
  auto argv = Argv(args);
  EXPECT_FALSE(NodeConfig::FromArgs(int(argv.size()), argv.data()).ok());
}

TEST(ConfigTest, BadPeerAddressRejected) {
  std::vector<std::string> args = {"confided", "--node-id=0", "--peers=noport"};
  auto argv = Argv(args);
  EXPECT_FALSE(NodeConfig::FromArgs(int(argv.size()), argv.data()).ok());
}

TEST(ConfigTest, EnvFallbackAndFlagPrecedence) {
  ::setenv("CONFIDED_SEED", "42", 1);
  ::setenv("CONFIDED_TICK_MS", "11", 1);
  std::vector<std::string> args = {"confided", "--peers=127.0.0.1:1",
                                   "--tick-ms=99"};
  auto argv = Argv(args);
  auto cfg = NodeConfig::FromArgs(int(argv.size()), argv.data());
  ::unsetenv("CONFIDED_SEED");
  ::unsetenv("CONFIDED_TICK_MS");
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();
  EXPECT_EQ(cfg->seed, 42u);    // env fallback
  EXPECT_EQ(cfg->tick_ms, 99u); // flag beats env
}

TEST(ConfigTest, GatewayFlagsParse) {
  std::vector<std::string> args = {"confide_gateway", "--nodes=a:1,b:2",
                                   "--listen=127.0.0.1:9090"};
  auto argv = Argv(args);
  auto cfg = GatewayConfig::FromArgs(int(argv.size()), argv.data());
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();
  ASSERT_EQ(cfg->nodes.size(), 2u);
  EXPECT_EQ(cfg->listen_host, "127.0.0.1");
  EXPECT_EQ(cfg->listen_port, 9090);
}

TEST(ConfigTest, SplitCommaListHandlesEmpty) {
  EXPECT_TRUE(SplitCommaList("").empty());
  EXPECT_EQ(SplitCommaList("one").size(), 1u);
  EXPECT_EQ(SplitCommaList("a,b,c").size(), 3u);
}

// ---------------------------------------------------------------------------
// HTTP server + client
// ---------------------------------------------------------------------------

TEST(HttpTest, RequestResponseRoundTripWithKeepAlive) {
  HttpServer server;
  std::atomic<int> requests{0};
  ASSERT_TRUE(server
                  .Start("127.0.0.1", 0,
                         [&](const HttpRequest& req) {
                           ++requests;
                           if (req.method == "POST") {
                             return HttpResponse::Json(200, req.body);
                           }
                           return HttpResponse::Json(200, "\"" + req.path + "\"");
                         })
                  .ok());
  ASSERT_NE(server.port(), 0);

  auto client = HttpClient::Connect("http://127.0.0.1:" +
                                    std::to_string(server.port()));
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto get = client->Get("/v1/status");
  ASSERT_TRUE(get.ok()) << get.status().ToString();
  EXPECT_EQ(get->status, 200);
  EXPECT_EQ(get->body, "\"/v1/status\"");

  // Second request on the same kept-alive connection.
  auto post = client->Post("/v1/tx", "{\"tx\":\"00\"}");
  ASSERT_TRUE(post.ok()) << post.status().ToString();
  EXPECT_EQ(post->body, "{\"tx\":\"00\"}");
  EXPECT_EQ(requests.load(), 2);
  server.Stop();
}

TEST(HttpTest, HeaderKeysAreLowerCased) {
  HttpServer server;
  std::string seen;
  std::mutex mu;
  ASSERT_TRUE(server
                  .Start("127.0.0.1", 0,
                         [&](const HttpRequest& req) {
                           std::lock_guard<std::mutex> lock(mu);
                           auto it = req.headers.find("content-type");
                           seen = it == req.headers.end() ? "" : it->second;
                           return HttpResponse::Text(200, "ok");
                         })
                  .ok());
  auto client = HttpClient::Connect("http://127.0.0.1:" +
                                    std::to_string(server.port()));
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Post("/x", "{}", "application/json").ok());
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(seen, "application/json");
  server.Stop();
}

TEST(HttpTest, ErrorStatusPropagatesToClient) {
  HttpServer server;
  ASSERT_TRUE(server
                  .Start("127.0.0.1", 0,
                         [](const HttpRequest&) {
                           return HttpResponse::Json(404, "{\"error\":\"nope\"}");
                         })
                  .ok());
  auto client = HttpClient::Connect("http://127.0.0.1:" +
                                    std::to_string(server.port()));
  ASSERT_TRUE(client.ok());
  auto resp = client->Get("/missing");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 404);
  EXPECT_EQ(resp->body, "{\"error\":\"nope\"}");
  server.Stop();
}

TEST(HttpTest, MalformedRequestLineGets400) {
  HttpServer server;
  ASSERT_TRUE(server
                  .Start("127.0.0.1", 0,
                         [](const HttpRequest&) {
                           return HttpResponse::Text(200, "unreachable");
                         })
                  .ok());
  int fd = RawConnect(server.port());
  const char* junk = "THIS IS NOT HTTP\r\n\r\n";
  ASSERT_GT(::send(fd, junk, std::strlen(junk), MSG_NOSIGNAL), 0);
  char buf[256];
  ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
  ASSERT_GT(n, 0);
  buf[n] = '\0';
  EXPECT_NE(std::strstr(buf, "400"), nullptr) << buf;
  ::close(fd);
  server.Stop();
}

TEST(HttpTest, OversizedBodyRejectedWithoutBuffering) {
  HttpServer server;
  ASSERT_TRUE(server
                  .Start("127.0.0.1", 0,
                         [](const HttpRequest&) {
                           return HttpResponse::Text(200, "unreachable");
                         })
                  .ok());
  // Announce a body over the limit; the server must refuse from the
  // header alone instead of buffering 4 MiB+.
  int fd = RawConnect(server.port());
  std::string req = "POST /v1/tx HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                    std::to_string(kMaxHttpBodyBytes + 1) + "\r\n\r\n";
  ASSERT_GT(::send(fd, req.data(), req.size(), MSG_NOSIGNAL), 0);
  char buf[256];
  ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
  ASSERT_GT(n, 0);
  buf[n] = '\0';
  EXPECT_NE(std::strstr(buf, "413"), nullptr) << buf;
  ::close(fd);
  server.Stop();
}

// ---------------------------------------------------------------------------
// SimTransport over NetworkSim
// ---------------------------------------------------------------------------

struct RecordingEndpoint {
  std::mutex mu;
  std::vector<std::pair<uint32_t, Bytes>> received;  // (from, body)

  Transport::HandlerFn Handler(std::optional<MsgType> reply_type = std::nullopt) {
    return [this, reply_type](uint32_t from, MsgType,
                              ByteView body) -> std::optional<OwnedFrame> {
      {
        std::lock_guard<std::mutex> lock(mu);
        received.emplace_back(from, ToBytes(body));
      }
      if (reply_type.has_value()) {
        return OwnedFrame{*reply_type, ToBytes(body)};
      }
      return std::nullopt;
    };
  }

  size_t Count() {
    std::lock_guard<std::mutex> lock(mu);
    return received.size();
  }
};

TEST(SimTransportTest, BroadcastReachesAllPeersOnDeliver) {
  chain::NetworkSim sim = chain::NetworkSim::SingleZone(3);
  SimHub hub(&sim, /*seed=*/1);
  SimTransport t0(&hub, 0), t1(&hub, 1), t2(&hub, 2);
  RecordingEndpoint r1, r2;
  t1.SetHandler(r1.Handler());
  t2.SetHandler(r2.Handler());
  ASSERT_TRUE(t0.Start().ok());
  ASSERT_TRUE(t1.Start().ok());
  ASSERT_TRUE(t2.Start().ok());
  EXPECT_EQ(t0.cluster_size(), 3u);

  ASSERT_TRUE(t0.Broadcast(MsgType::kPrepare, AsByteView("vote")).ok());
  EXPECT_EQ(hub.pending(), 2u);  // queued, not yet delivered
  EXPECT_EQ(r1.Count(), 0u);
  EXPECT_EQ(hub.DeliverAll(), 2u);
  ASSERT_EQ(r1.Count(), 1u);
  ASSERT_EQ(r2.Count(), 1u);
  EXPECT_EQ(r1.received[0].first, 0u);
  EXPECT_EQ(r1.received[0].second, Body("vote"));
}

TEST(SimTransportTest, RepliesTravelBackThroughTheMedium) {
  chain::NetworkSim sim = chain::NetworkSim::SingleZone(2);
  SimHub hub(&sim, 1);
  SimTransport t0(&hub, 0), t1(&hub, 1);
  RecordingEndpoint r0, r1;
  t0.SetHandler(r0.Handler());
  t1.SetHandler(r1.Handler(MsgType::kStatusReply));  // echoes as a reply
  ASSERT_TRUE(t0.Start().ok());
  ASSERT_TRUE(t1.Start().ok());

  ASSERT_TRUE(t0.Send(1, MsgType::kQueryStatus, AsByteView("ping")).ok());
  hub.DeliverAll();  // request, then the re-enqueued reply
  ASSERT_EQ(r1.Count(), 1u);
  ASSERT_EQ(r0.Count(), 1u);
  EXPECT_EQ(r0.received[0].first, 1u);
  EXPECT_EQ(r0.received[0].second, Body("ping"));
}

TEST(SimTransportTest, PartitionBlocksDeliveryUntilHealed) {
  chain::NetworkSim sim = chain::NetworkSim::SingleZone(2);
  SimHub hub(&sim, 1);
  SimTransport t0(&hub, 0), t1(&hub, 1);
  RecordingEndpoint r1;
  t1.SetHandler(r1.Handler());
  ASSERT_TRUE(t0.Start().ok());
  ASSERT_TRUE(t1.Start().ok());

  ASSERT_TRUE(sim.SetPartition(1, 1).ok());
  ASSERT_TRUE(t0.Send(1, MsgType::kPrepare, AsByteView("lost")).ok());
  hub.DeliverAll();
  EXPECT_EQ(r1.Count(), 0u);  // dropped at the medium, like a real split

  sim.HealPartitions();
  ASSERT_TRUE(t0.Send(1, MsgType::kPrepare, AsByteView("heals")).ok());
  hub.DeliverAll();
  ASSERT_EQ(r1.Count(), 1u);
  EXPECT_EQ(r1.received[0].second, Body("heals"));
}

TEST(SimTransportTest, StoppedEndpointDropsFrames) {
  chain::NetworkSim sim = chain::NetworkSim::SingleZone(2);
  SimHub hub(&sim, 1);
  SimTransport t0(&hub, 0), t1(&hub, 1);
  RecordingEndpoint r1;
  t1.SetHandler(r1.Handler());
  ASSERT_TRUE(t0.Start().ok());
  ASSERT_TRUE(t1.Start().ok());
  t1.Stop();
  ASSERT_TRUE(t0.Send(1, MsgType::kCommit, AsByteView("gone")).ok());
  hub.DeliverAll();
  EXPECT_EQ(r1.Count(), 0u);
}

// ---------------------------------------------------------------------------
// TcpTransport over real sockets
// ---------------------------------------------------------------------------

class TcpPairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    uint16_t p0 = PickPort(), p1 = PickPort();
    peers_ = {"127.0.0.1:" + std::to_string(p0),
              "127.0.0.1:" + std::to_string(p1)};
    t0_ = MakeTransport(0);
    t1_ = MakeTransport(1);
  }

  std::unique_ptr<TcpTransport> MakeTransport(uint32_t self_id) {
    TcpTransportOptions options;
    options.self_id = self_id;
    options.peers = peers_;
    options.listen_host = "127.0.0.1";
    return std::make_unique<TcpTransport>(options);
  }

  void TearDown() override {
    if (t0_) t0_->Stop();
    if (t1_) t1_->Stop();
  }

  std::vector<std::string> peers_;
  std::unique_ptr<TcpTransport> t0_, t1_;
};

TEST_F(TcpPairTest, HelloIdentifiesPeerAndFramesFlow) {
  RecordingEndpoint r0, r1;
  t0_->SetHandler(r0.Handler());
  t1_->SetHandler(r1.Handler());
  ASSERT_TRUE(t0_->Start().ok());
  ASSERT_TRUE(t1_->Start().ok());

  const Bytes body = Body("pre-prepare bytes");
  ASSERT_TRUE(t0_->Send(1, MsgType::kPrePrepare, body).ok());
  ASSERT_TRUE(WaitFor([&] { return r1.Count() >= 1; }));
  std::lock_guard<std::mutex> lock(r1.mu);
  EXPECT_EQ(r1.received[0].first, 0u);  // kHello identified the sender
  EXPECT_EQ(r1.received[0].second, body);
}

TEST_F(TcpPairTest, ReplyFramesComeBackOnTheSameConnection) {
  RecordingEndpoint r0, r1;
  t0_->SetHandler(r0.Handler());
  t1_->SetHandler(r1.Handler(MsgType::kStatusReply));
  ASSERT_TRUE(t0_->Start().ok());
  ASSERT_TRUE(t1_->Start().ok());

  ASSERT_TRUE(t0_->Send(1, MsgType::kQueryStatus, AsByteView("q")).ok());
  ASSERT_TRUE(WaitFor([&] { return r0.Count() >= 1; }));
  std::lock_guard<std::mutex> lock(r0.mu);
  EXPECT_EQ(r0.received[0].first, 1u);
  EXPECT_EQ(r0.received[0].second, Body("q"));
}

TEST_F(TcpPairTest, LargeFrameSurvivesShortWrites) {
  RecordingEndpoint r1;
  t1_->SetHandler(r1.Handler());
  ASSERT_TRUE(t0_->Start().ok());
  ASSERT_TRUE(t1_->Start().ok());

  Bytes big(1u << 20, 0xCD);  // 1 MiB: forces the short-write loop
  ASSERT_TRUE(t0_->Send(1, MsgType::kBlocksReply, big).ok());
  ASSERT_TRUE(WaitFor([&] { return r1.Count() >= 1; }, 10000));
  std::lock_guard<std::mutex> lock(r1.mu);
  EXPECT_EQ(r1.received[0].second, big);
}

TEST_F(TcpPairTest, SendToSelfOrUnknownPeerRejected) {
  ASSERT_TRUE(t0_->Start().ok());
  EXPECT_FALSE(t0_->Send(0, MsgType::kPrepare, AsByteView("x")).ok());
  EXPECT_FALSE(t0_->Send(9, MsgType::kPrepare, AsByteView("x")).ok());
}

TEST_F(TcpPairTest, ConnectionDropMidFrameCountsCorruption) {
  RecordingEndpoint r0;
  t0_->SetHandler(r0.Handler());
  ASSERT_TRUE(t0_->Start().ok());

  auto* corrupt = metrics::GetCounter("net.frame.corrupt.count");
  const uint64_t before = corrupt->Value();

  // A raw peer sends a valid prefix plus half the payload, then drops.
  Bytes wire = EncodeFrame(MsgType::kSubmitTx, Bytes(256, 0x11));
  int fd = RawConnect(t0_->listen_port());
  ASSERT_GT(::send(fd, wire.data(), wire.size() / 2, MSG_NOSIGNAL), 0);
  ::close(fd);

  ASSERT_TRUE(WaitFor([&] { return corrupt->Value() > before; }));
  EXPECT_EQ(r0.Count(), 0u);  // the partial frame never reached the handler
}

TEST_F(TcpPairTest, OversizedAnnouncementDropsConnection) {
  RecordingEndpoint r0;
  t0_->SetHandler(r0.Handler());
  ASSERT_TRUE(t0_->Start().ok());

  auto* corrupt = metrics::GetCounter("net.frame.corrupt.count");
  const uint64_t before = corrupt->Value();

  int fd = RawConnect(t0_->listen_port());
  const uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_GT(::send(fd, huge, sizeof(huge), MSG_NOSIGNAL), 0);
  ASSERT_TRUE(WaitFor([&] { return corrupt->Value() > before; }));
  // The server closed the stream; the socket drains to EOF.
  char buf[16];
  ASSERT_TRUE(WaitFor([&] { return ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT) == 0; }));
  ::close(fd);
}

// ---------------------------------------------------------------------------
// FrameClient request/reply plane
// ---------------------------------------------------------------------------

TEST_F(TcpPairTest, FrameClientRoundTrip) {
  RecordingEndpoint r0;
  t0_->SetHandler(r0.Handler(MsgType::kStatusReply));
  ASSERT_TRUE(t0_->Start().ok());

  auto client = FrameClient::Dial(peers_[0]);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto reply = client->Call(MsgType::kQueryStatus, AsByteView("nonce-1"));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, MsgType::kStatusReply);
  EXPECT_EQ(reply->body, Body("nonce-1"));
}

TEST_F(TcpPairTest, ConcurrentClientsGetTheirOwnReplies) {
  t0_->SetHandler([](uint32_t, MsgType, ByteView body) -> std::optional<OwnedFrame> {
    return OwnedFrame{MsgType::kStatusReply, ToBytes(body)};
  });
  ASSERT_TRUE(t0_->Start().ok());

  constexpr int kThreads = 4, kCalls = 32;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      auto client = FrameClient::Dial(peers_[0]);
      ASSERT_TRUE(client.ok());
      for (int i = 0; i < kCalls; ++i) {
        const Bytes nonce = Body("w" + std::to_string(w) + ":" + std::to_string(i));
        auto reply = client->Call(MsgType::kQueryStatus, nonce);
        if (!reply.ok() || reply->body != nonce) ++mismatches;
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(TcpPairTest, FrameClientSurvivesServerRestart) {
  RecordingEndpoint r0;
  t0_->SetHandler(r0.Handler(MsgType::kStatusReply));
  ASSERT_TRUE(t0_->Start().ok());

  auto client = FrameClient::Dial(peers_[0]);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Call(MsgType::kQueryStatus, AsByteView("a")).ok());

  // Restart the node on the same port; the next Call must transparently
  // reconnect (one retry on a dead connection).
  t0_->Stop();
  t0_ = MakeTransport(0);
  t0_->SetHandler(r0.Handler(MsgType::kStatusReply));
  ASSERT_TRUE(t0_->Start().ok());

  Result<OwnedFrame> reply = Status::Unavailable("not sent");
  ASSERT_TRUE(WaitFor([&] {
    reply = client->Call(MsgType::kQueryStatus, AsByteView("b"));
    return reply.ok();
  }));
  EXPECT_EQ(reply->body, Body("b"));
}

}  // namespace
}  // namespace confide::net
