/// \file fault_test.cc
/// \brief Chaos suite for the deterministic fault-injection framework:
/// injector semantics, PBFT view changes under replica faults, WAL/LSM
/// crash recovery, enclave crash + re-provisioning, and an end-to-end
/// node chaos run. Deterministic for a fixed CONFIDE_FAULT_SEED; set
/// CONFIDE_FAULT_REPORT to dump fault.* counters as JSON on exit.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "chain/network.h"
#include "chain/pbft.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "confide/client.h"
#include "confide/cs_enclave.h"
#include "confide/freshness.h"
#include "confide/system.h"
#include "crypto/drbg.h"
#include "lang/compiler.h"
#include "net/cluster.h"
#include "net/sim_transport.h"
#include "net/tcp_transport.h"
#include "serialize/rlp.h"
#include "storage/lsm_store.h"
#include "storage/wal.h"

namespace confide {
namespace {

using chain::NamedAddress;
using core::Client;
using core::ConfideSystem;
using core::SystemOptions;
using fault::FaultInjector;
using fault::FaultPlan;
using fault::Trigger;
using storage::WriteBatch;

uint64_t ChaosSeed() {
  if (const char* s = std::getenv("CONFIDE_FAULT_SEED")) {
    return std::strtoull(s, nullptr, 10);
  }
  return 1;
}

/// Dumps every `fault.*` counter to CONFIDE_FAULT_REPORT (CI artifact).
class FaultReportEnv : public ::testing::Environment {
 public:
  void TearDown() override {
    const char* path = std::getenv("CONFIDE_FAULT_REPORT");
    if (path == nullptr) return;
    metrics::MetricsSnapshot snap = metrics::MetricsRegistry::Global().Snapshot();
    std::ofstream out(path);
    out << "{\n";
    bool first = true;
    for (const auto& [name, value] : snap.counters) {
      if (name.rfind("fault.", 0) != 0) continue;
      if (!first) out << ",\n";
      first = false;
      out << "  \"" << name << "\": " << value;
    }
    out << "\n}\n";
  }
};

const auto* const kFaultReportEnv =
    ::testing::AddGlobalTestEnvironment(new FaultReportEnv);

// ---------------------------------------------------------------------------
// FaultInjector semantics
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, UnarmedSitesNeverFire) {
  FaultPlan plan(1);
  EXPECT_FALSE(FaultInjector::Global().ShouldFail("fault.test.nothing"));
  EXPECT_FALSE(FaultInjector::Global().AnyArmed());
}

TEST(FaultInjectorTest, OneShotFiresExactlyOnce) {
  FaultPlan plan(1);
  plan.Arm("fault.test.a", Trigger{.one_shot = true});
  EXPECT_TRUE(FaultInjector::Global().ShouldFail("fault.test.a"));
  EXPECT_FALSE(FaultInjector::Global().ShouldFail("fault.test.a"));
  EXPECT_EQ(FaultInjector::Global().FiredCount("fault.test.a"), 1u);
}

TEST(FaultInjectorTest, NthHitTrigger) {
  FaultPlan plan(1);
  plan.Arm("fault.test.nth", Trigger{.after_hits = 2});  // fires on 3rd hit
  EXPECT_FALSE(FaultInjector::Global().ShouldFail("fault.test.nth"));
  EXPECT_FALSE(FaultInjector::Global().ShouldFail("fault.test.nth"));
  EXPECT_TRUE(FaultInjector::Global().ShouldFail("fault.test.nth"));
  EXPECT_EQ(FaultInjector::Global().HitCount("fault.test.nth"), 3u);
}

TEST(FaultInjectorTest, ArgPassesThrough) {
  FaultPlan plan(1);
  plan.Arm("fault.test.arg", Trigger{.one_shot = true, .arg = 42});
  uint64_t arg = 0;
  EXPECT_TRUE(FaultInjector::Global().ShouldFail("fault.test.arg", &arg));
  EXPECT_EQ(arg, 42u);
}

TEST(FaultInjectorTest, ProbabilityIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    FaultPlan plan(seed);
    plan.Arm("fault.test.p", Trigger{.probability = 0.5});
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(FaultInjector::Global().ShouldFail("fault.test.p"));
    }
    return fired;
  };
  EXPECT_EQ(run(7), run(7));      // same seed, same sequence
  EXPECT_NE(run(7), run(1234));   // different seed, different sequence
}

TEST(FaultInjectorTest, PlanDisarmsAtScopeExit) {
  {
    FaultPlan plan(1);
    plan.Arm("fault.test.scoped");
    EXPECT_TRUE(FaultInjector::Global().AnyArmed());
  }
  EXPECT_FALSE(FaultInjector::Global().AnyArmed());
  EXPECT_FALSE(FaultInjector::Global().ShouldFail("fault.test.scoped"));
}

TEST(FaultInjectorTest, InjectedAndRecoveredCounters) {
  uint64_t before =
      metrics::MetricsRegistry::Global().Snapshot().counter("fault.test.c.injected");
  {
    FaultPlan plan(1);
    plan.Arm("fault.test.c", Trigger{.one_shot = true});
    EXPECT_TRUE(FaultInjector::Global().ShouldFail("fault.test.c"));
  }
  fault::NoteRecovered("fault.test.c");
  metrics::MetricsSnapshot snap = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("fault.test.c.injected"), before + 1);
  EXPECT_GE(snap.counter("fault.test.c.recovered"), 1u);
}

// ---------------------------------------------------------------------------
// PBFT under faults
// ---------------------------------------------------------------------------

chain::PbftFaultModel Behaviors(std::vector<chain::ReplicaBehavior> b) {
  chain::PbftFaultModel model;
  model.behavior = std::move(b);
  return model;
}

TEST(PbftFaultTest, AllHonestCommitsInViewZero) {
  auto net = chain::NetworkSim::SingleZone(4);
  auto result = chain::SimulatePbftWithFaults(net, 0, 4096, Behaviors({}));
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(result.commit_view, 0u);
  EXPECT_EQ(result.view_changes, 0u);
  EXPECT_EQ(result.messages_dropped, 0u);
}

TEST(PbftFaultTest, CrashedLeaderRecoversViaViewChange) {
  using chain::ReplicaBehavior;
  auto net = chain::NetworkSim::SingleZone(4);
  auto model = Behaviors({ReplicaBehavior::kCrashed});
  auto result = chain::SimulatePbftWithFaults(net, 0, 4096, model);
  EXPECT_TRUE(result.committed);
  EXPECT_GE(result.commit_view, 1u);
  EXPECT_GE(result.view_changes, 1u);
  // The round had to sit out at least one view timeout before committing.
  EXPECT_GT(result.quorum_commit_ns, model.view_timeout_ns);
  EXPECT_EQ(result.commit_time_ns[0], 0u);  // the dead leader never commits

  // Model-declared leader crash is recorded and marked recovered.
  metrics::MetricsSnapshot snap = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(snap.counter("fault.chain.leader_crash.injected"), 1u);
  EXPECT_GE(snap.counter("fault.chain.leader_crash.recovered"), 1u);
}

TEST(PbftFaultTest, DoubleLeaderCrashTakesTwoViewChanges) {
  using chain::ReplicaBehavior;
  auto net = chain::NetworkSim::SingleZone(7);  // f = 2
  auto model =
      Behaviors({ReplicaBehavior::kCrashed, ReplicaBehavior::kCrashed});
  auto result = chain::SimulatePbftWithFaults(net, 0, 4096, model);
  EXPECT_TRUE(result.committed);
  EXPECT_GE(result.commit_view, 2u);  // leaders of views 0 and 1 are dead
  EXPECT_GT(result.quorum_commit_ns, 2 * model.view_timeout_ns);
}

TEST(PbftFaultTest, SilentReplicaDoesNotBlockCommit) {
  using chain::ReplicaBehavior;
  auto net = chain::NetworkSim::SingleZone(4);
  auto model = Behaviors({ReplicaBehavior::kHonest, ReplicaBehavior::kSilent});
  auto result = chain::SimulatePbftWithFaults(net, 0, 4096, model);
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(result.commit_view, 0u);
}

TEST(PbftFaultTest, EquivocatingLeaderIsVotedOut) {
  using chain::ReplicaBehavior;
  auto net = chain::NetworkSim::SingleZone(4);
  auto model = Behaviors({ReplicaBehavior::kEquivocating});
  auto result = chain::SimulatePbftWithFaults(net, 0, 4096, model);
  EXPECT_TRUE(result.committed);
  EXPECT_GE(result.commit_view, 1u);  // its invalid proposal went nowhere
}

TEST(PbftFaultTest, EquivocationDuringViewChangeExcludedFromQuorum) {
  // Fork attempt under a view change: the view-0 leader is dead, and the
  // replica that inherits the lead in view 1 equivocates. The honest
  // majority must vote through BOTH byzantine leaders and commit exactly
  // one value — the equivocator never gets divergent commits accepted.
  using chain::ReplicaBehavior;
  auto net = chain::NetworkSim::SingleZone(7);  // f = 2: tolerates both
  auto model =
      Behaviors({ReplicaBehavior::kCrashed, ReplicaBehavior::kEquivocating});
  auto result = chain::SimulatePbftWithFaults(net, 0, 4096, model);
  ASSERT_TRUE(result.committed);
  // Two failed views (dead leader, then equivocating leader) before an
  // honest leader closes the round.
  EXPECT_GE(result.view_changes, 2u);
  EXPECT_GE(result.commit_view, 2u);
  // The crashed replica never commits; every honest replica that did
  // commit saw the same single quorum decision (one commit time each,
  // from one view) — no replica committed in a conflicting earlier view.
  EXPECT_EQ(result.commit_time_ns[0], 0u);
  size_t committed_replicas = 0;
  for (uint64_t t : result.commit_time_ns) committed_replicas += (t != 0);
  EXPECT_GE(committed_replicas, 5u);  // 2f+1 quorum of honest replicas
}

TEST(PbftFaultTest, TooManyCrashesNeverCommit) {
  using chain::ReplicaBehavior;
  auto net = chain::NetworkSim::SingleZone(4);  // f = 1, quorum 3
  auto model =
      Behaviors({ReplicaBehavior::kCrashed, ReplicaBehavior::kCrashed});
  auto result = chain::SimulatePbftWithFaults(net, 0, 4096, model);
  EXPECT_FALSE(result.committed);
  EXPECT_EQ(result.quorum_commit_ns, 0u);
  EXPECT_EQ(result.view_changes, model.max_views);  // burned every view
}

TEST(PbftFaultTest, EvenPartitionBlocksMinorityPartitionDoesNot) {
  auto net = chain::NetworkSim::SingleZone(4);
  ASSERT_TRUE(net.SetPartition(2, 1).ok());
  ASSERT_TRUE(net.SetPartition(3, 1).ok());  // 2/2 split: no side has 3
  auto blocked = chain::SimulatePbftWithFaults(net, 0, 4096, Behaviors({}));
  EXPECT_FALSE(blocked.committed);
  EXPECT_GT(blocked.messages_dropped, 0u);

  net.HealPartitions();
  ASSERT_TRUE(net.SetPartition(3, 1).ok());  // 3/1: majority side commits
  auto majority = chain::SimulatePbftWithFaults(net, 0, 4096, Behaviors({}));
  EXPECT_TRUE(majority.committed);
  EXPECT_EQ(majority.commit_time_ns[3], 0u);  // the isolated node never does
}

TEST(PbftFaultTest, LossyLinksAreDeterministicPerSeed) {
  auto make_net = [] {
    chain::NetworkSim net;
    uint32_t zone = net.AddZone("vpc");
    chain::LinkModel lossy;
    lossy.drop_rate = 0.1;
    lossy.jitter_ns = 50'000;
    EXPECT_TRUE(net.SetLink(zone, zone, lossy).ok());
    for (int i = 0; i < 7; ++i) net.AddNode(zone);
    return net;
  };
  auto net = make_net();
  chain::PbftFaultModel model;
  model.seed = 42;
  auto a = chain::SimulatePbftWithFaults(net, 0, 4096, model);
  auto b = chain::SimulatePbftWithFaults(net, 0, 4096, model);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.quorum_commit_ns, b.quorum_commit_ns);
  EXPECT_EQ(a.commit_time_ns, b.commit_time_ns);
  EXPECT_GT(a.messages_dropped, 0u);
}

TEST(PbftFaultTest, ArmedMessageDropSiteDropsMessages) {
  FaultPlan plan(ChaosSeed());
  plan.Arm("fault.chain.pbft_msg_drop", Trigger{.probability = 0.05});
  auto net = chain::NetworkSim::SingleZone(7);
  auto result = chain::SimulatePbftWithFaults(net, 0, 4096, Behaviors({}));
  EXPECT_GT(result.messages_dropped, 0u);
  // Under loss the protocol either still reaches quorum or reacts with a
  // view change (the sim has no retransmission, so commit itself is not
  // guaranteed — a sub-quorum view-0 commit can strand the stragglers).
  EXPECT_TRUE(result.committed || result.view_changes > 0);
}

// ---------------------------------------------------------------------------
// Storage crash recovery
// ---------------------------------------------------------------------------

class LsmCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "confide_fault_lsm";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(LsmCrashTest, PrefixConsistentAtEveryWalWritePoint) {
  // The record the crash lands in: one Put of key1 -> value1.
  WriteBatch probe;
  probe.Put("key1", ToBytes(std::string_view("value1")));
  const uint64_t record_size = storage::EncodeBatch(probe).size() + 8;

  for (uint64_t k = 0; k <= record_size; ++k) {
    auto sub = dir_ / ("wp" + std::to_string(k));
    std::filesystem::create_directories(sub);
    storage::LsmOptions options;
    options.wal_dir = sub.string();

    {
      auto store = storage::LsmKvStore::Open(options);
      ASSERT_TRUE(store.ok());
      // Baseline batch is fully durable before the crash.
      ASSERT_TRUE((*store)->Put("key0", ToBytes(std::string_view("value0"))).ok());

      FaultPlan plan(ChaosSeed());
      plan.Arm("fault.storage.wal_torn", Trigger{.one_shot = true, .arg = k});
      Status crashed = (*store)->Put("key1", ToBytes(std::string_view("value1")));
      // A crash point past the last byte means the whole record landed:
      // the append is simply durable. Anywhere inside the record fails.
      EXPECT_EQ(crashed.ok(), k == record_size) << "k=" << k;
      // Store object destroyed here = the simulated process crash.
    }

    storage::RecoveryInfo info;
    auto recovered = storage::LsmKvStore::Recover(options, &info);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    // The durable prefix always survives.
    auto v0 = (*recovered)->Get("key0");
    ASSERT_TRUE(v0.ok()) << "k=" << k;
    EXPECT_EQ(*v0, ToBytes(std::string_view("value0")));
    // The interrupted batch is visible iff every byte reached the disk.
    auto v1 = (*recovered)->Get("key1");
    if (k == record_size) {
      ASSERT_TRUE(v1.ok()) << "k=" << k;
      EXPECT_EQ(*v1, ToBytes(std::string_view("value1")));
      EXPECT_EQ(info.batches_replayed, 2u);
      EXPECT_FALSE(info.torn_tail);
    } else {
      EXPECT_FALSE(v1.ok()) << "k=" << k;
      EXPECT_EQ(info.batches_replayed, 1u);
      EXPECT_EQ(info.torn_tail, k > 0) << "k=" << k;
    }
  }
}

TEST_F(LsmCrashTest, RecoveryRepairsTornTailOnDiskBeforeNewAppends) {
  // crash -> recover -> append -> crash -> recover: the first recovery
  // must truncate the torn bytes off the file, or the post-recovery
  // append lands after garbage and the second replay loses it.
  WriteBatch probe;
  probe.Put("key1", ToBytes(std::string_view("value1")));
  const uint64_t record_size = storage::EncodeBatch(probe).size() + 8;

  for (uint64_t k = 1; k < record_size; ++k) {
    auto sub = dir_ / ("dc" + std::to_string(k));
    std::filesystem::create_directories(sub);
    storage::LsmOptions options;
    options.wal_dir = sub.string();

    {
      auto store = storage::LsmKvStore::Open(options);
      ASSERT_TRUE(store.ok());
      ASSERT_TRUE((*store)->Put("key0", ToBytes(std::string_view("value0"))).ok());
      FaultPlan plan(ChaosSeed());
      plan.Arm("fault.storage.wal_torn", Trigger{.one_shot = true, .arg = k});
      EXPECT_FALSE((*store)->Put("key1", ToBytes(std::string_view("value1"))).ok());
    }  // first crash

    {
      storage::RecoveryInfo info;
      auto recovered = storage::LsmKvStore::Recover(options, &info);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      EXPECT_TRUE(info.torn_tail) << "k=" << k;
      // Acknowledged write after recovery...
      ASSERT_TRUE(
          (*recovered)->Put("key2", ToBytes(std::string_view("value2"))).ok());
    }  // ...second crash

    storage::RecoveryInfo info;
    auto again = storage::LsmKvStore::Recover(options, &info);
    ASSERT_TRUE(again.ok()) << "k=" << k << ": " << again.status().ToString();
    EXPECT_FALSE(info.torn_tail) << "k=" << k;
    EXPECT_EQ(info.batches_replayed, 2u) << "k=" << k;
    EXPECT_TRUE((*again)->Get("key0").ok()) << "k=" << k;
    EXPECT_FALSE((*again)->Get("key1").ok()) << "k=" << k;
    auto v2 = (*again)->Get("key2");
    ASSERT_TRUE(v2.ok()) << "k=" << k;
    EXPECT_EQ(*v2, ToBytes(std::string_view("value2")));
  }
}

TEST_F(LsmCrashTest, SurvivingProcessRepairsTornTailOnRetry) {
  storage::LsmOptions options;
  options.wal_dir = dir_.string();
  auto store = storage::LsmKvStore::Open(options);
  ASSERT_TRUE(store.ok());

  {
    FaultPlan plan(ChaosSeed());
    plan.Arm("fault.storage.wal_torn", Trigger{.one_shot = true, .arg = 5});
    EXPECT_FALSE((*store)->Put("a", ToBytes(std::string_view("1"))).ok());
  }
  // Same process retries: the torn bytes must not corrupt the log.
  ASSERT_TRUE((*store)->Put("a", ToBytes(std::string_view("1"))).ok());
  ASSERT_TRUE((*store)->Put("b", ToBytes(std::string_view("2"))).ok());
  store->reset();  // close, then reopen from the WAL

  storage::RecoveryInfo info;
  auto recovered = storage::LsmKvStore::Recover(options, &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(info.torn_tail);
  EXPECT_EQ(info.batches_replayed, 2u);
  EXPECT_TRUE((*recovered)->Get("a").ok());
  EXPECT_TRUE((*recovered)->Get("b").ok());
}

TEST_F(LsmCrashTest, SyncFailureIsSurfacedAndRecovered) {
  auto wal = storage::Wal::Open((dir_ / "wal").string());
  ASSERT_TRUE(wal.ok());
  WriteBatch batch;
  batch.Put("k", ToBytes(std::string_view("v")));
  ASSERT_TRUE((*wal)->Append(batch).ok());

  uint64_t recovered_before = metrics::MetricsRegistry::Global().Snapshot().counter(
      "fault.storage.wal_sync.recovered");
  {
    FaultPlan plan(ChaosSeed());
    plan.Arm("fault.storage.wal_sync", Trigger{.one_shot = true});
    Status s = (*wal)->Sync();
    EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  }
  EXPECT_TRUE((*wal)->Sync().ok());  // the retry lands and notes recovery
  EXPECT_EQ(metrics::MetricsRegistry::Global().Snapshot().counter(
                "fault.storage.wal_sync.recovered"),
            recovered_before + 1);
}

TEST_F(LsmCrashTest, InjectedFlushFailureLeavesMemtableIntact) {
  storage::LsmOptions options;
  options.wal_dir = dir_.string();
  auto store = storage::LsmKvStore::Open(options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k", ToBytes(std::string_view("v"))).ok());

  {
    FaultPlan plan(ChaosSeed());
    plan.Arm("fault.storage.lsm_flush", Trigger{.one_shot = true});
    EXPECT_FALSE((*store)->Flush().ok());
  }
  EXPECT_TRUE((*store)->Get("k").ok());  // still served from the memtable
  EXPECT_EQ((*store)->RunCount(), 0u);
  ASSERT_TRUE((*store)->Flush().ok());   // retry succeeds
  EXPECT_EQ((*store)->RunCount(), 1u);
  EXPECT_TRUE((*store)->Get("k").ok());
}

TEST_F(LsmCrashTest, CompactionRecoversFromEveryFaultSite) {
  // One cycle per compaction fault site: arm it one-shot, drive a
  // compaction, and require the retry inside CompactWithRetries to both
  // survive (writes never fail) and note the recovery. CI's chaos report
  // check relies on this test firing all four sites on every seed, so
  // the arming is deterministic (one-shot, probability 1).
  const char* kSites[] = {
      "fault.storage.compaction.start",
      "fault.storage.compaction.merge",
      "fault.storage.compaction.write",    // durable stores only
      "fault.storage.compaction.install",  // durable stores only
  };
  int cycle = 0;
  for (const char* site : kSites) {
    auto sub = dir_ / ("compact" + std::to_string(cycle++));
    std::filesystem::create_directories(sub);
    storage::LsmOptions options;
    options.wal_dir = sub.string();  // write/install trip only when durable
    options.max_runs = 1;
    auto store = storage::LsmKvStore::Open(options);
    ASSERT_TRUE(store.ok()) << site;

    auto before = metrics::MetricsRegistry::Global().Snapshot();
    FaultPlan plan(ChaosSeed());
    plan.Arm(site, Trigger{.one_shot = true});
    ASSERT_TRUE((*store)->Put("a", ToBytes(std::string_view("1"))).ok());
    ASSERT_TRUE((*store)->Flush().ok());
    ASSERT_TRUE((*store)->Put("b", ToBytes(std::string_view("2"))).ok());
    // This flush pushes the run count past max_runs: the compaction's
    // first attempt dies at the armed site, the retry completes. A
    // failing compaction must never surface as a write failure.
    ASSERT_TRUE((*store)->Flush().ok()) << site;
    EXPECT_EQ((*store)->RunCount(), 1u) << site;

    auto after = metrics::MetricsRegistry::Global().Snapshot();
    std::string name(site);
    EXPECT_EQ(after.counter(name + ".injected") -
                  before.counter(name + ".injected"),
              1u)
        << site;
    EXPECT_EQ(after.counter(name + ".recovered") -
                  before.counter(name + ".recovered"),
              1u)
        << site;
    EXPECT_TRUE((*store)->Get("a").ok()) << site;
    EXPECT_TRUE((*store)->Get("b").ok()) << site;
  }
}

// ---------------------------------------------------------------------------
// Enclave crash + re-provisioning
// ---------------------------------------------------------------------------

constexpr const char* kCounterSource = R"(
fn increment() {
  var key = "counter";
  var buf = alloc(16);
  var n = get_storage(key, strlen(key), buf, 16);
  var value = 0;
  if (n == 8) { value = load64(buf); }
  value = value + 1;
  store64(buf, value);
  set_storage(key, strlen(key), buf, 8);
  var out = alloc(32);
  var len = u64_to_dec(value, out);
  write_output(out, len);
  return value;
}
)";

Bytes DeployPayload(const Bytes& code) {
  std::vector<serialize::RlpItem> items;
  items.push_back(serialize::RlpItem::U64(uint64_t(chain::VmKind::kCvm)));
  items.push_back(serialize::RlpItem(code));
  return serialize::RlpEncode(serialize::RlpItem::List(std::move(items)));
}

class EnclaveRecoveryTest : public ::testing::Test {
 protected:
  std::unique_ptr<ConfideSystem> Boot(SystemOptions options) {
    // CI chaos matrix: re-run the recovery suite under the pipelined
    // block lifecycle as well. Tests that pin a depth bypass this helper.
    if (const char* s = std::getenv("CONFIDE_PIPELINE_DEPTH")) {
      options.pipeline_depth = uint32_t(std::strtoul(s, nullptr, 10));
    }
    auto sys = ConfideSystem::BootstrapFirst(options);
    EXPECT_TRUE(sys.ok()) << sys.status().ToString();
    return std::move(*sys);
  }

  // Deploys the counter and returns its address.
  chain::Address Deploy(ConfideSystem* sys, Client* client) {
    auto code = lang::Compile(kCounterSource, lang::VmTarget::kCvm);
    EXPECT_TRUE(code.ok()) << code.status().ToString();
    chain::Address addr = NamedAddress("counter");
    auto submission =
        client->MakeConfidentialTx(addr, "__deploy__", DeployPayload(*code));
    EXPECT_TRUE(submission.ok());
    EXPECT_TRUE(sys->node()->SubmitTransaction(submission->tx).ok());
    auto receipts = sys->RunToCompletion();
    EXPECT_TRUE(receipts.ok());
    EXPECT_TRUE((*receipts)[0].success);
    return addr;
  }

  // Runs one confidential increment and returns the decrypted output.
  std::string Increment(ConfideSystem* sys, Client* client, chain::Address addr) {
    auto call = client->MakeConfidentialTx(addr, "increment", Bytes{});
    EXPECT_TRUE(call.ok());
    EXPECT_TRUE(sys->node()->SubmitTransaction(call->tx).ok());
    auto receipts = sys->RunToCompletion();
    EXPECT_TRUE(receipts.ok()) << receipts.status().ToString();
    if (!receipts.ok() || receipts->empty() || !(*receipts)[0].success) {
      return "<failed>";
    }
    auto opened = Client::OpenSealedReceipt(call->k_tx, (*receipts)[0].output);
    EXPECT_TRUE(opened.ok());
    return opened.ok() ? ToString(opened->output) : "<sealed>";
  }
};

TEST_F(EnclaveRecoveryTest, KilledCsEnclaveReprovisionedFromLocalKm) {
  SystemOptions options;
  options.seed = 200;
  options.destroy_km_after_provision = false;  // KM keeps the keys locally
  auto sys = Boot(options);
  Client client(501, sys->pk_tx());
  chain::Address addr = Deploy(sys.get(), &client);
  EXPECT_EQ(Increment(sys.get(), &client, addr), "1");

  ASSERT_TRUE(sys->platform()->KillEnclave(sys->confidential_engine()->enclave_id()).ok());
  EXPECT_FALSE(sys->ConfidentialEngineAlive());

  ASSERT_TRUE(sys->RecoverConfidentialEngine().ok());
  EXPECT_TRUE(sys->ConfidentialEngineAlive());
  // Same consortium keys: pre-crash encrypted state is still readable.
  EXPECT_EQ(Increment(sys.get(), &client, addr), "2");
}

TEST_F(EnclaveRecoveryTest, ReprovisionViaPeerMapWhenOwnKmDestroyed) {
  SystemOptions provider_options;
  provider_options.seed = 210;
  provider_options.destroy_km_after_provision = false;  // MAP provider
  auto provider = Boot(provider_options);

  SystemOptions joiner_options;
  joiner_options.seed = 211;  // default: KM destroyed after provisioning
  auto joiner = ConfideSystem::BootstrapJoin(joiner_options, provider.get());
  ASSERT_TRUE(joiner.ok()) << joiner.status().ToString();
  EXPECT_FALSE((*joiner)->km_alive());

  Client client(502, (*joiner)->pk_tx());
  chain::Address addr = Deploy(joiner->get(), &client);
  EXPECT_EQ(Increment(joiner->get(), &client, addr), "1");

  ASSERT_TRUE((*joiner)
                  ->platform()
                  ->KillEnclave((*joiner)->confidential_engine()->enclave_id())
                  .ok());

  // Without any key source the keys are genuinely unreachable.
  Status no_source = (*joiner)->RecoverConfidentialEngine();
  EXPECT_EQ(no_source.code(), StatusCode::kUnavailable);
  EXPECT_NE(no_source.message().find("consortium keys unreachable"),
            std::string::npos);

  (*joiner)->SetRecoveryPeer(provider.get());
  ASSERT_TRUE((*joiner)->RecoverConfidentialEngine().ok());
  EXPECT_FALSE((*joiner)->km_alive());  // fresh KM destroyed again per policy
  EXPECT_EQ(Increment(joiner->get(), &client, addr), "2");
}

TEST_F(EnclaveRecoveryTest, ReprovisionViaCentralKms) {
  core::CentralKms kms(77);
  SystemOptions options;
  options.seed = 220;
  auto sys = ConfideSystem::BootstrapWithKms(options, &kms);
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  EXPECT_FALSE((*sys)->km_alive());

  Client client(503, (*sys)->pk_tx());
  chain::Address addr = Deploy(sys->get(), &client);
  EXPECT_EQ(Increment(sys->get(), &client, addr), "1");

  ASSERT_TRUE((*sys)
                  ->platform()
                  ->KillEnclave((*sys)->confidential_engine()->enclave_id())
                  .ok());
  (*sys)->SetRecoveryKms(&kms);
  ASSERT_TRUE((*sys)->RecoverConfidentialEngine().ok());
  EXPECT_EQ(Increment(sys->get(), &client, addr), "2");
}

TEST_F(EnclaveRecoveryTest, BatchFlushFaultFailsTransactionAtomically) {
  SystemOptions options;
  options.seed = 260;
  auto sys = Boot(options);
  Client client(505, sys->pk_tx());
  chain::Address addr = Deploy(sys.get(), &client);  // flush #1: not armed

  {
    FaultPlan plan(ChaosSeed());
    plan.Arm("fault.confide.batch_flush", Trigger{.one_shot = true});
    // The increment executes in the enclave, but the batched write-back
    // flush fails host-side — the receipt reports failure and, because
    // the batch applies atomically, no write reaches the store.
    EXPECT_EQ(Increment(sys.get(), &client, addr), "<failed>");
  }
  auto leaked = sys->node()->state()->Get(addr, AsByteView("counter"));
  EXPECT_EQ(leaked.status().code(), StatusCode::kNotFound)
      << "partial flush leaked into the state store";
  metrics::MetricsSnapshot snap = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(snap.counter("fault.confide.batch_flush.injected"), 1u);

  // Disarmed, the same contract state advances normally from scratch.
  EXPECT_EQ(Increment(sys.get(), &client, addr), "1");
}

TEST_F(EnclaveRecoveryTest, InjectedProvisionFailureRetriesWithBackoff) {
  SystemOptions options;
  options.seed = 230;
  options.destroy_km_after_provision = false;
  auto sys = Boot(options);
  ASSERT_TRUE(sys->platform()->KillEnclave(sys->confidential_engine()->enclave_id()).ok());

  uint64_t clock_before = sys->clock()->NowNs();
  {
    FaultPlan plan(ChaosSeed());
    plan.Arm("fault.confide.provision", Trigger{.one_shot = true});
    ASSERT_TRUE(sys->RecoverConfidentialEngine().ok());
  }
  // The failed first attempt cost one (modelled) backoff interval.
  EXPECT_GE(sys->clock()->NowNs() - clock_before, options.recover_backoff_ns);
  metrics::MetricsSnapshot snap = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(snap.counter("fault.confide.provision.injected"), 1u);
  EXPECT_GE(snap.counter("fault.confide.provision.recovered"), 1u);
  EXPECT_GE(snap.counter("fault.tee.enclave_crash.recovered"), 1u);
}

TEST_F(EnclaveRecoveryTest, RecoveryGivesUpAfterMaxRetries) {
  SystemOptions options;
  options.seed = 240;
  options.destroy_km_after_provision = false;
  options.recover_max_retries = 3;
  auto sys = Boot(options);
  ASSERT_TRUE(sys->platform()->KillEnclave(sys->confidential_engine()->enclave_id()).ok());

  FaultPlan plan(ChaosSeed());
  plan.Arm("fault.confide.provision", Trigger{});  // fails every attempt
  Status failed = sys->RecoverConfidentialEngine();
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(FaultInjector::Global().FiredCount("fault.confide.provision"), 3u);
}

TEST_F(EnclaveRecoveryTest, DeadLocalKmFallsBackToRecoveryPeer) {
  SystemOptions provider_options;
  provider_options.seed = 250;
  provider_options.destroy_km_after_provision = false;  // MAP provider
  auto provider = Boot(provider_options);

  SystemOptions options;
  options.seed = 251;
  options.destroy_km_after_provision = false;  // node keeps its own KM
  auto sys = ConfideSystem::BootstrapJoin(options, provider.get());
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  Client client(504, (*sys)->pk_tx());
  chain::Address addr = Deploy(sys->get(), &client);
  EXPECT_EQ(Increment(sys->get(), &client, addr), "1");

  // Both enclaves die; the km_alive_ flag still says the KM holds keys.
  ASSERT_TRUE((*sys)->platform()->KillEnclave((*sys)->km_enclave_id()).ok());
  ASSERT_TRUE((*sys)
                  ->platform()
                  ->KillEnclave((*sys)->confidential_engine()->enclave_id())
                  .ok());
  EXPECT_TRUE((*sys)->km_alive());  // stale cache — platform knows better

  // Recovery must notice the dead KM and fall back to the peer instead of
  // burning every retry on ProvisionCs against a dead enclave.
  (*sys)->SetRecoveryPeer(provider.get());
  ASSERT_TRUE((*sys)->RecoverConfidentialEngine().ok());
  EXPECT_TRUE((*sys)->ConfidentialEngineAlive());
  EXPECT_EQ(Increment(sys->get(), &client, addr), "2");
}

// ---------------------------------------------------------------------------
// End-to-end node chaos run
// ---------------------------------------------------------------------------

TEST(NodeChaosTest, WalOpenFailureFailsBootstrapInsteadOfVolatileFallback) {
  auto dir = std::filesystem::temp_directory_path() / "confide_chaos_walopen";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  SystemOptions options;
  options.seed = 260;
  options.state_wal_dir = dir.string();
  uint64_t failures_before = metrics::MetricsRegistry::Global().Snapshot().counter(
      "chain.node.storage_open_failure.count");
  {
    FaultPlan plan(ChaosSeed());
    plan.Arm("fault.storage.wal_open", Trigger{.one_shot = true});
    auto boot = ConfideSystem::BootstrapFirst(options);
    // A node asked for durability must refuse to come up volatile.
    ASSERT_FALSE(boot.ok());
    EXPECT_EQ(boot.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(metrics::MetricsRegistry::Global().Snapshot().counter(
                "chain.node.storage_open_failure.count"),
            failures_before + 1);

  // Same configuration without the fault boots durably.
  auto retry = ConfideSystem::BootstrapFirst(options);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  std::filesystem::remove_all(dir);
}

TEST(NodeChaosTest, RandomOneShotFaultsNeverLeavePartialCommits) {
  const uint64_t seed = ChaosSeed();
  auto dir = std::filesystem::temp_directory_path() /
             ("confide_chaos_" + std::to_string(seed));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  SystemOptions options;
  options.seed = 300 + seed;
  options.state_wal_dir = dir.string();
  auto boot = ConfideSystem::BootstrapFirst(options);
  ASSERT_TRUE(boot.ok()) << boot.status().ToString();
  auto& sys = *boot;
  Client client(600, sys->pk_tx());

  auto code = lang::Compile(kCounterSource, lang::VmTarget::kCvm);
  ASSERT_TRUE(code.ok());
  chain::Address addr = NamedAddress("counter");
  auto deploy = client.MakeConfidentialTx(addr, "__deploy__", DeployPayload(*code));
  ASSERT_TRUE(deploy.ok());
  ASSERT_TRUE(sys->node()->SubmitTransaction(deploy->tx).ok());
  ASSERT_TRUE(sys->RunToCompletion().ok());

  crypto::Drbg rng(seed ^ 0x5eed0fau);
  uint64_t committed = 0;
  for (int round = 0; round < 24; ++round) {
    FaultPlan plan(seed + uint64_t(round));
    switch (rng.NextBounded(4)) {
      case 0:
        plan.Arm("fault.chain.submit", Trigger{.one_shot = true});
        break;
      case 1:
        plan.Arm("fault.chain.apply_block", Trigger{.one_shot = true});
        break;
      case 2:
        plan.Arm("fault.storage.wal_torn",
                 Trigger{.one_shot = true, .arg = rng.NextBounded(64)});
        break;
      default:
        break;  // fault-free round
    }

    auto call = client.MakeConfidentialTx(addr, "increment", Bytes{});
    ASSERT_TRUE(call.ok());
    Status submitted = sys->node()->SubmitTransaction(call->tx);
    if (!submitted.ok()) {
      EXPECT_EQ(submitted.code(), StatusCode::kUnavailable);
      ASSERT_TRUE(sys->node()->SubmitTransaction(call->tx).ok());  // resubmit
    }
    ASSERT_TRUE(sys->node()->PreVerify().ok());
    auto block = sys->node()->ProposeBlock();
    ASSERT_TRUE(block.ok());
    if (block->transactions.empty()) continue;

    uint64_t height_before = sys->node()->Height();
    auto receipts = sys->node()->ApplyBlock(*block);
    if (!receipts.ok()) {
      // Clean failure: nothing of the block may have landed...
      EXPECT_EQ(sys->node()->Height(), height_before);
      EXPECT_EQ(sys->node()->state()->PendingWrites(), 0u);
      // ...and the exact same block must apply on retry.
      receipts = sys->node()->ApplyBlock(*block);
    }
    ASSERT_TRUE(receipts.ok()) << receipts.status().ToString();
    ASSERT_EQ(receipts->size(), 1u);
    ASSERT_TRUE((*receipts)[0].success) << (*receipts)[0].status_message;
    ++committed;

    auto opened = Client::OpenSealedReceipt(call->k_tx, (*receipts)[0].output);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(ToString(opened->output), std::to_string(committed));
  }
  EXPECT_GT(committed, 0u);
  // Every committed transaction has a durable receipt.
  EXPECT_EQ(sys->node()->Height(), committed + 1);  // + the deploy block

  std::filesystem::remove_all(dir);
}


TEST(NodeChaosTest, PipelineCommitCrashRecoversToPrefixConsistentState) {
  auto dir = std::filesystem::temp_directory_path() / "confide_chaos_pipeline";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  SystemOptions options;
  options.seed = 270;
  options.state_wal_dir = dir.string();
  options.parallelism = 2;
  options.pipeline_depth = 3;
  options.block_max_bytes = 1;  // one tx per block: commit order == submit order
  constexpr size_t kIncrements = 12;

  std::vector<core::ConfidentialSubmission> calls;
  size_t committed = 0;
  {
    auto boot = ConfideSystem::BootstrapFirst(options);
    ASSERT_TRUE(boot.ok()) << boot.status().ToString();
    auto& sys = *boot;
    Client client(610, sys->pk_tx());
    auto code = lang::Compile(kCounterSource, lang::VmTarget::kCvm);
    ASSERT_TRUE(code.ok());
    chain::Address addr = NamedAddress("counter");
    auto deploy = client.MakeConfidentialTx(addr, "__deploy__", DeployPayload(*code));
    ASSERT_TRUE(deploy.ok());
    ASSERT_TRUE(sys->node()->SubmitTransaction(deploy->tx).ok());
    ASSERT_TRUE(sys->RunToCompletion().ok());

    for (size_t i = 0; i < kIncrements; ++i) {
      auto call = client.MakeConfidentialTx(addr, "increment", Bytes{});
      ASSERT_TRUE(call.ok());
      ASSERT_TRUE(sys->node()->SubmitTransaction(call->tx).ok());
      calls.push_back(std::move(*call));
    }

    // The commit stage dies between pipeline stages: the first two commit
    // groups land, the third is killed mid-run.
    FaultPlan plan(ChaosSeed());
    plan.Arm("fault.chain.pipeline.commit",
             Trigger{.after_hits = 2, .one_shot = true});
    auto receipts = sys->RunToCompletion();
    ASSERT_FALSE(receipts.ok());
    EXPECT_EQ(receipts.status().code(), StatusCode::kUnavailable);

    // Durable receipts identify the committed prefix — and it must be a
    // prefix: every receipt-less tx comes after every committed one.
    while (committed < calls.size() &&
           sys->node()->GetReceipt(calls[committed].tx.Hash()).ok()) {
      ++committed;
    }
    EXPECT_GE(committed, 1u);
    EXPECT_LT(committed, kIncrements);
    for (size_t i = committed; i < calls.size(); ++i) {
      EXPECT_FALSE(sys->node()->GetReceipt(calls[i].tx.Hash()).ok());
    }
    EXPECT_EQ(sys->node()->Height(), 1 + committed);  // + the deploy block
    // The node process "crashes" here: the re-queued in-memory pool is lost.
  }

  // Recovery: a fresh node on the same WAL replays exactly the durable
  // prefix — height, receipts, and counter value all agree.
  auto reboot = ConfideSystem::BootstrapFirst(options);
  ASSERT_TRUE(reboot.ok()) << reboot.status().ToString();
  auto& sys = *reboot;
  EXPECT_EQ(sys->node()->Height(), 1 + committed);
  auto last = sys->node()->GetReceipt(calls[committed - 1].tx.Hash());
  ASSERT_TRUE(last.ok());
  auto opened = Client::OpenSealedReceipt(calls[committed - 1].k_tx, last->output);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(ToString(opened->output), std::to_string(committed));

  // Resubmitting the lost suffix converges to the same final state a
  // fault-free serial run reaches.
  for (size_t i = committed; i < calls.size(); ++i) {
    ASSERT_TRUE(sys->node()->SubmitTransaction(calls[i].tx).ok());
  }
  ASSERT_TRUE(sys->RunToCompletion().ok());
  EXPECT_EQ(sys->node()->Height(), 1u + kIncrements);
  auto final_receipt = sys->node()->GetReceipt(calls.back().tx.Hash());
  ASSERT_TRUE(final_receipt.ok());
  auto final_opened =
      Client::OpenSealedReceipt(calls.back().k_tx, final_receipt->output);
  ASSERT_TRUE(final_opened.ok());
  EXPECT_EQ(ToString(final_opened->output), std::to_string(kIncrements));

  // Serial fault-free reference on a volatile store: same final counter.
  SystemOptions serial_options;
  serial_options.seed = 271;
  auto serial_boot = ConfideSystem::BootstrapFirst(serial_options);
  ASSERT_TRUE(serial_boot.ok());
  auto& serial_sys = *serial_boot;
  Client serial_client(611, serial_sys->pk_tx());
  auto code = lang::Compile(kCounterSource, lang::VmTarget::kCvm);
  ASSERT_TRUE(code.ok());
  auto deploy = serial_client.MakeConfidentialTx(NamedAddress("counter"), "__deploy__",
                                                 DeployPayload(*code));
  ASSERT_TRUE(deploy.ok());
  ASSERT_TRUE(serial_sys->node()->SubmitTransaction(deploy->tx).ok());
  ASSERT_TRUE(serial_sys->RunToCompletion().ok());
  core::ConfidentialSubmission last_call;
  for (size_t i = 0; i < kIncrements; ++i) {
    auto call = serial_client.MakeConfidentialTx(NamedAddress("counter"), "increment",
                                                 Bytes{});
    ASSERT_TRUE(call.ok());
    ASSERT_TRUE(serial_sys->node()->SubmitTransaction(call->tx).ok());
    last_call = std::move(*call);
  }
  ASSERT_TRUE(serial_sys->RunToCompletion().ok());
  auto serial_receipt = serial_sys->node()->GetReceipt(last_call.tx.Hash());
  ASSERT_TRUE(serial_receipt.ok());
  auto serial_opened =
      Client::OpenSealedReceipt(last_call.k_tx, serial_receipt->output);
  ASSERT_TRUE(serial_opened.ok());
  EXPECT_EQ(ToString(serial_opened->output), ToString(final_opened->output));

  std::filesystem::remove_all(dir);
}


// ---------------------------------------------------------------------------
// Checkpointed state sync under faults
// ---------------------------------------------------------------------------

uint64_t CounterValue(const std::string& name) {
  return metrics::MetricsRegistry::Global().Snapshot().counter(name);
}

class SyncChaosTest : public EnclaveRecoveryTest {
 protected:
  /// CI chaos matrix knob: re-run the sync suite at different stable-
  /// checkpoint cadences (CONFIDE_CHECKPOINT_INTERVAL, default 4).
  static uint64_t CheckpointInterval() {
    if (const char* s = std::getenv("CONFIDE_CHECKPOINT_INTERVAL")) {
      return std::strtoull(s, nullptr, 10);
    }
    return 4;
  }

  /// `interval` of 0 picks the matrix default.
  SystemOptions ProviderOptions(uint64_t seed, uint64_t interval = 0) {
    SystemOptions options;
    options.seed = seed;
    options.destroy_km_after_provision = false;  // serves MAP re-provisioning
    options.checkpoint.interval =
        interval == 0 ? CheckpointInterval() : interval;
    options.checkpoint.chunk_bytes = 512;  // force multi-chunk transfers
    options.validators = &validators_;
    return options;
  }

  /// Boots the primary provider, deploys the confidential counter, and
  /// runs `increments` blocks of SDM state updates.
  void BuildPrimary(uint64_t seed, int increments, uint64_t interval = 0) {
    primary_ = Boot(ProviderOptions(seed, interval));
    client_ = std::make_unique<Client>(600, primary_->pk_tx());
    addr_ = Deploy(primary_.get(), client_.get());
    counter_value_ = 0;
    MorePrimaryBlocks(increments);
  }

  void MorePrimaryBlocks(int increments) {
    for (int i = 0; i < increments; ++i) {
      ++counter_value_;
      ASSERT_EQ(Increment(primary_.get(), client_.get(), addr_),
                std::to_string(counter_value_));
    }
  }

  /// Boots a joiner that shares the consortium keys via MAP.
  std::unique_ptr<ConfideSystem> Join(uint64_t seed, uint64_t interval = 0) {
    auto sys =
        ConfideSystem::BootstrapJoin(ProviderOptions(seed, interval), primary_.get());
    EXPECT_TRUE(sys.ok()) << sys.status().ToString();
    return std::move(*sys);
  }

  void ExpectConverged(ConfideSystem* joiner) {
    EXPECT_EQ(joiner->node()->Height(), primary_->node()->Height());
    EXPECT_EQ(joiner->node()->TipHash(), primary_->node()->TipHash());
    EXPECT_EQ(joiner->node()->state()->StateRoot(),
              primary_->node()->state()->StateRoot());
  }

  chain::ValidatorSet validators_ = chain::ValidatorSet::Generate(4, 97);
  std::unique_ptr<ConfideSystem> primary_;
  std::unique_ptr<Client> client_;
  chain::Address addr_{};
  uint64_t counter_value_ = 0;
};

// The PR acceptance scenario: a replica that missed >= 8 blocks (all of
// them carrying confidential SDM state) rejoins through checkpoint
// discovery, Merkle-verified chunk transfer and block replay while a
// chunk is dropped and another corrupted in flight — and its dead CS
// enclave is re-provisioned on the way in.
TEST_F(SyncChaosTest, MissedBlocksRejoinEndToEndUnderInjectedFaults) {
  BuildPrimary(700, 8);  // deploy + 8 confidential increments -> height 9

  // One more confidential block whose receipt we can track across nodes.
  auto probe = client_->MakeConfidentialTx(addr_, "increment", Bytes{});
  ASSERT_TRUE(probe.ok());
  crypto::Hash256 probe_hash = probe->tx.Hash();
  ASSERT_TRUE(primary_->node()->SubmitTransaction(probe->tx).ok());
  ASSERT_TRUE(primary_->RunToCompletion().ok());
  ++counter_value_;

  chain::SyncProvider primary_provider("primary", primary_->node());

  // A second provider, itself brought up via sync (it adopts the
  // primary's stable checkpoint and serves it onward).
  auto second = Join(701);
  ASSERT_TRUE(second->SyncFromPeers({&primary_provider}).ok());
  chain::SyncProvider second_provider("second", second->node());

  // The rejoining replica: crashed before block 1, CS enclave dead.
  auto joiner = Join(702);
  ASSERT_TRUE(joiner->platform()
                  ->KillEnclave(joiner->confidential_engine()->enclave_id())
                  .ok());
  ASSERT_FALSE(joiner->ConfidentialEngineAlive());
  joiner->SetRecoveryPeer(primary_.get());
  ASSERT_GE(primary_->node()->Height() - joiner->node()->Height(), 8u);

  uint64_t verified_before = CounterValue("chain.sync.chunks.verified");
  FaultPlan plan(ChaosSeed());
  plan.Arm("fault.chain.sync.chunk_drop", Trigger{.one_shot = true});
  plan.Arm("fault.chain.sync.chunk_corrupt",
           Trigger{.after_hits = 2, .one_shot = true});

  auto stats = joiner->SyncFromPeers({&primary_provider, &second_provider});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  EXPECT_TRUE(stats->snapshot_installed);
  EXPECT_GE(stats->checkpoint_height, 8u);
  EXPECT_GT(stats->chunks_verified, 0u);
  EXPECT_GE(stats->chunks_rejected, 1u);  // the corrupted chunk was refused
  EXPECT_TRUE(joiner->ConfidentialEngineAlive());  // re-provisioned for sync
  ExpectConverged(joiner.get());

  // Identical receipt set: the tracked confidential receipt came across
  // bit-for-bit (sealed output included).
  auto theirs = primary_->node()->GetReceipt(probe_hash);
  auto ours = joiner->node()->GetReceipt(probe_hash);
  ASSERT_TRUE(theirs.ok());
  ASSERT_TRUE(ours.ok());
  EXPECT_EQ(ours->Serialize(), theirs->Serialize());

  // The transferred SDM state is live: the counter keeps counting on the
  // rejoined replica under its re-provisioned enclave keys.
  Client joiner_client(601, joiner->pk_tx());
  EXPECT_EQ(Increment(joiner.get(), &joiner_client, addr_),
            std::to_string(counter_value_ + 1));

  metrics::MetricsSnapshot snap = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_GT(snap.counter("chain.sync.chunks.verified"), verified_before);
  EXPECT_GE(snap.counter("fault.chain.sync.chunk_drop.injected"), 1u);
  EXPECT_GE(snap.counter("fault.chain.sync.chunk_drop.recovered"), 1u);
  EXPECT_GE(snap.counter("fault.chain.sync.chunk_corrupt.injected"), 1u);
  EXPECT_GE(snap.counter("fault.chain.sync.chunk_corrupt.recovered"), 1u);
}

TEST_F(SyncChaosTest, CrashAtEveryChunkBoundaryThenResyncCompletes) {
  BuildPrimary(710, 8);
  chain::SyncProvider provider("primary", primary_->node());
  auto joiner = Join(711);

  auto manager = primary_->node()->checkpoints();
  ASSERT_NE(manager, nullptr);
  uint64_t height = manager->LatestHeight();
  ASSERT_GT(height, 0u);
  auto manifest = manager->ManifestAt(height);
  ASSERT_TRUE(manifest.ok());
  ASSERT_GT(manifest->chunk_count(), 1u);

  for (size_t boundary = 0; boundary < manifest->chunk_count(); ++boundary) {
    FaultPlan plan(ChaosSeed() + boundary);
    plan.Arm("fault.chain.sync.crash",
             Trigger{.after_hits = boundary, .one_shot = true});
    auto crashed = joiner->SyncFromPeers({&provider});
    ASSERT_FALSE(crashed.ok()) << "boundary " << boundary;
    // Atomic install: a crash mid-transfer leaves the store untouched.
    EXPECT_EQ(joiner->node()->Height(), 0u);
    EXPECT_EQ(joiner->node()->checkpoints()->LatestHeight(), 0u);
  }

  auto stats = joiner->SyncFromPeers({&provider});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->snapshot_installed);
  ExpectConverged(joiner.get());
}

TEST_F(SyncChaosTest, DeadProviderMidStreamFailsOverToSecondProvider) {
  BuildPrimary(720, 8);
  chain::SyncProvider primary_provider("primary", primary_->node());
  auto second = Join(721);
  ASSERT_TRUE(second->SyncFromPeers({&primary_provider}).ok());
  chain::SyncProvider second_provider("second", second->node());

  auto joiner = Join(722);
  FaultPlan plan(ChaosSeed());
  // Fires on the 4th reachability check: mid-chunk-stream, after the two
  // discovery probes and the first chunk fetch.
  plan.Arm("fault.chain.sync.provider_dead",
           Trigger{.after_hits = 3, .one_shot = true});

  auto stats = joiner->SyncFromPeers({&primary_provider, &second_provider});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->snapshot_installed);
  EXPECT_GE(stats->provider_failovers, 1u);
  EXPECT_TRUE(primary_provider.dead() || second_provider.dead());
  ExpectConverged(joiner.get());

  metrics::MetricsSnapshot snap = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(snap.counter("fault.chain.sync.provider_dead.injected"), 1u);
  EXPECT_GE(snap.counter("fault.chain.sync.provider_dead.recovered"), 1u);
}

TEST_F(SyncChaosTest, CorruptedChunkIsRejectedAndRefetched) {
  BuildPrimary(730, 8);
  chain::SyncProvider provider("primary", primary_->node());
  auto joiner = Join(731);

  uint64_t rejected_before = CounterValue("chain.sync.chunks.rejected");
  FaultPlan plan(ChaosSeed());
  plan.Arm("fault.chain.sync.chunk_corrupt",
           Trigger{.after_hits = 1, .one_shot = true});

  auto stats = joiner->SyncFromPeers({&provider});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->snapshot_installed);
  // The Merkle check caught the flipped bit; the re-fetched copy passed.
  EXPECT_GE(stats->chunks_rejected, 1u);
  EXPECT_GT(stats->chunks_fetched, stats->chunks_verified);
  ExpectConverged(joiner.get());
  EXPECT_GT(CounterValue("chain.sync.chunks.rejected"), rejected_before);
}

TEST_F(SyncChaosTest, ForgedCertificateRejectedAndProviderReselected) {
  BuildPrimary(740, 8);
  chain::SyncProvider primary_provider("primary", primary_->node());
  auto second = Join(741);
  ASSERT_TRUE(second->SyncFromPeers({&primary_provider}).ok());
  chain::SyncProvider second_provider("second", second->node());

  auto joiner = Join(742);
  FaultPlan plan(ChaosSeed());
  // Fires on the first checkpoint query (the primary): its certificate
  // arrives with a flipped signature byte.
  plan.Arm("fault.chain.sync.forged_certificate", Trigger{.one_shot = true});

  auto stats = joiner->SyncFromPeers({&primary_provider, &second_provider});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->certificates_rejected, 1u);
  EXPECT_TRUE(stats->snapshot_installed);  // served by the honest provider
  ExpectConverged(joiner.get());

  metrics::MetricsSnapshot snap = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(snap.counter("fault.chain.sync.forged_certificate.injected"), 1u);
  EXPECT_GE(snap.counter("fault.chain.sync.forged_certificate.recovered"), 1u);
  EXPECT_GE(snap.counter("chain.sync.certificate.rejected"), 1u);
}

TEST_F(SyncChaosTest, StaleCheckpointRejectedInFavorOfFresherProvider) {
  // Pinned interval: the stale fault serves the oldest retained
  // checkpoint, which must sit at or below the lagging node's height for
  // the staleness check (not just freshness ordering) to be what rejects
  // it. keep=2 at interval 4 gives retained {8, 12} vs a node at 9.
  BuildPrimary(750, 8, /*interval=*/4);  // height 9, checkpoints {4, 8}
  chain::SyncProvider primary_provider("primary", primary_->node());

  // The lagging replica: fully synced at height 9, then misses 4 blocks.
  auto laggard = Join(751, /*interval=*/4);
  ASSERT_TRUE(laggard->SyncFromPeers({&primary_provider}).ok());
  MorePrimaryBlocks(4);  // primary now at height 13, checkpoints {8, 12}

  // A fresh second provider holding the newest checkpoint.
  auto second = Join(752, /*interval=*/4);
  ASSERT_TRUE(second->SyncFromPeers({&primary_provider}).ok());
  chain::SyncProvider second_provider("second", second->node());

  FaultPlan plan(ChaosSeed());
  // The primary answers the checkpoint query with its oldest retained
  // checkpoint (height 8 <= laggard height 9): refused as stale.
  plan.Arm("fault.chain.sync.stale_certificate", Trigger{.one_shot = true});

  auto stats = laggard->SyncFromPeers({&primary_provider, &second_provider});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->certificates_rejected, 1u);
  EXPECT_TRUE(stats->snapshot_installed);
  EXPECT_EQ(stats->checkpoint_height, 12u);  // the fresher provider won
  ExpectConverged(laggard.get());

  metrics::MetricsSnapshot snap = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(snap.counter("fault.chain.sync.stale_certificate.injected"), 1u);
  EXPECT_GE(snap.counter("fault.chain.sync.stale_certificate.recovered"), 1u);
}

// ---------------------------------------------------------------------------
// State continuity: rollback / forking attacks on sealed state
// ---------------------------------------------------------------------------
// Counter NVRAM high-water marks are process-lifetime and keyed by the
// platform seed, so every continuity-enabled system here uses a unique
// seed.

class StateContinuityChaosTest : public SyncChaosTest {
 protected:
  SystemOptions ContinuityOptions(uint64_t seed) {
    SystemOptions options = ProviderOptions(seed);
    options.enable_state_continuity = true;
    return options;
  }

  /// Joins via MAP with state continuity armed.
  std::unique_ptr<ConfideSystem> JoinWithContinuity(uint64_t seed) {
    auto sys = ConfideSystem::BootstrapJoin(ContinuityOptions(seed),
                                            primary_.get());
    EXPECT_TRUE(sys.ok()) << sys.status().ToString();
    return std::move(*sys);
  }

  /// Full host-visible disk image (what a snapshot-restore attack copies).
  static std::vector<std::pair<std::string, Bytes>> DumpStore(
      storage::KvStore* kv) {
    std::vector<std::pair<std::string, Bytes>> entries;
    for (auto it = kv->NewIterator(); it->Valid(); it->Next()) {
      entries.emplace_back(it->key(), it->value());
    }
    return entries;
  }

  /// Restores the exact dumped image: keys written since are deleted.
  static void RestoreStore(
      storage::KvStore* kv,
      const std::vector<std::pair<std::string, Bytes>>& image) {
    WriteBatch batch;
    for (auto it = kv->NewIterator(); it->Valid(); it->Next()) {
      batch.Delete(it->key());
    }
    for (const auto& [key, value] : image) {
      batch.Put(key, value);
    }
    ASSERT_TRUE(kv->Write(batch).ok());
    ASSERT_TRUE(kv->Sync().ok());
  }
};

TEST_F(StateContinuityChaosTest, SnapshotRestoreAttackRefusedThenPeerSyncRemedies) {
  BuildPrimary(760, 4);  // deploy + 4 increments
  chain::SyncProvider primary_provider("primary", primary_->node());

  // The victim replica runs with freshness-sealed state.
  auto victim = JoinWithContinuity(761);
  ASSERT_TRUE(victim->SyncFromPeers({&primary_provider}).ok());
  const uint64_t restore_height = victim->node()->Height();

  // A provider pinned at the victim's current height (for the
  // stale-checkpoint-replay leg below).
  auto stale_peer = Join(762);
  ASSERT_TRUE(stale_peer->SyncFromPeers({&primary_provider}).ok());
  chain::SyncProvider stale_provider("stale", stale_peer->node());

  // The malicious host snapshots the victim's entire disk — sealed state,
  // chain data AND the freshness header (all authentic bytes).
  auto image = DumpStore(victim->node()->state()->backing());

  // Real time moves on: the chain grows and the victim seals newer
  // generations.
  MorePrimaryBlocks(3);
  ASSERT_TRUE(victim->SyncFromPeers({&primary_provider}).ok());
  ASSERT_GT(victim->node()->Height(), restore_height);

  // Rollback attack: restore the old image wholesale.
  RestoreStore(victim->node()->state()->backing(), image);
  ASSERT_TRUE(victim->node()->ResyncFromStore().ok());
  ASSERT_EQ(victim->node()->Height(), restore_height);

  // Every byte authenticates, but the trusted counter is ahead of the
  // restored generation: the state is refused, not silently accepted.
  uint64_t refused_before = CounterValue("confide.freshness.refused.count");
  Status stale = victim->VerifyStateContinuity();
  ASSERT_TRUE(stale.IsStaleState()) << stale.ToString();
  EXPECT_GT(CounterValue("confide.freshness.refused.count"), refused_before);

  // Stale-checkpoint replay: syncing from a provider stuck at the restored
  // height cannot launder the rollback — the tip still fails freshness.
  auto replayed = victim->SyncFromPeers({&stale_provider});
  ASSERT_FALSE(replayed.ok());
  EXPECT_TRUE(replayed.status().IsStaleState()) << replayed.status().ToString();

  // The remedy is catching up past the sealed generation from an honest
  // peer: the synced tip is re-sealed and the node is clean again.
  auto remedied = victim->SyncFromPeers({&primary_provider});
  ASSERT_TRUE(remedied.ok()) << remedied.status().ToString();
  EXPECT_TRUE(victim->VerifyStateContinuity().ok());
  ExpectConverged(victim.get());
}

TEST_F(StateContinuityChaosTest, RestoringOnlyChainDataBehindTheHeaderIsRefused) {
  // Variant: the host rolls back the chain data but keeps the NEWEST
  // freshness header in place (hoping the header alone satisfies the
  // check). The header-vs-tip cross-check refuses the store rollback.
  BuildPrimary(770, 4);
  chain::SyncProvider primary_provider("primary", primary_->node());
  auto victim = JoinWithContinuity(771);
  ASSERT_TRUE(victim->SyncFromPeers({&primary_provider}).ok());

  auto image = DumpStore(victim->node()->state()->backing());
  MorePrimaryBlocks(2);
  ASSERT_TRUE(victim->SyncFromPeers({&primary_provider}).ok());

  // Save the newest header, restore the old image, put the header back.
  storage::KvStore* kv = victim->node()->state()->backing();
  auto newest_header = kv->Get(std::string(core::kFreshnessKvKey));
  ASSERT_TRUE(newest_header.ok());
  RestoreStore(kv, image);
  ASSERT_TRUE(kv->Put(std::string(core::kFreshnessKvKey), *newest_header).ok());
  ASSERT_TRUE(victim->node()->ResyncFromStore().ok());

  Status stale = victim->VerifyStateContinuity();
  ASSERT_TRUE(stale.IsStaleState()) << stale.ToString();
}

TEST_F(StateContinuityChaosTest, CrashAtEveryCounterPersistBoundaryIsRecoverable) {
  SystemOptions options;
  options.seed = 781;
  options.enable_state_continuity = true;
  auto sys = Boot(options);
  Client client(620, sys->pk_tx());
  chain::Address addr = Deploy(sys.get(), &client);

  // Three commits, each with its freshness seal's counter persist killed:
  // the seal fails loudly (state advanced, header stale by one), and a
  // retried seal recovers without ever exposing an unpersisted counter.
  for (int boundary = 0; boundary < 3; ++boundary) {
    auto before = metrics::MetricsRegistry::Global().Snapshot();
    {
      FaultPlan plan(ChaosSeed() + uint64_t(boundary));
      plan.Arm("fault.tee.counter.persist", Trigger{.one_shot = true});
      auto call = client.MakeConfidentialTx(addr, "increment", Bytes{});
      ASSERT_TRUE(call.ok());
      ASSERT_TRUE(sys->node()->SubmitTransaction(call->tx).ok());
      auto receipts = sys->RunToCompletion();
      ASSERT_FALSE(receipts.ok()) << "boundary " << boundary;
      EXPECT_EQ(receipts.status().code(), StatusCode::kUnavailable);
    }
    // The retried seal lands; the node verifies clean again.
    ASSERT_TRUE(sys->SealStateGeneration().ok()) << "boundary " << boundary;
    ASSERT_TRUE(sys->VerifyStateContinuity().ok()) << "boundary " << boundary;

    auto after = metrics::MetricsRegistry::Global().Snapshot();
    EXPECT_EQ(after.counter("fault.tee.counter.persist.injected") -
                  before.counter("fault.tee.counter.persist.injected"),
              1u);
    EXPECT_EQ(after.counter("fault.tee.counter.persist.recovered") -
                  before.counter("fault.tee.counter.persist.recovered"),
              1u);
  }

  // The chain itself kept every increment despite the seal crashes.
  EXPECT_EQ(Increment(sys.get(), &client, addr), "4");
}

TEST_F(StateContinuityChaosTest, InterruptedSealWithoutTipAdvanceIsRefused) {
  // Crash in the increment-then-seal gap: the trusted counter advanced
  // but the new header never hit disk, and the tip did NOT move. The
  // strict rule refuses this (accepting it would also accept a real
  // one-generation rollback); resealing restores continuity.
  SystemOptions options;
  options.seed = 791;
  options.enable_state_continuity = true;
  auto sys = Boot(options);
  Client client(630, sys->pk_tx());
  chain::Address addr = Deploy(sys.get(), &client);
  ASSERT_EQ(Increment(sys.get(), &client, addr), "1");

  // Simulate the torn seal: run the seal ecall but drop its header.
  std::vector<serialize::RlpItem> req;
  req.push_back(serialize::RlpItem::U64(sys->node()->Height()));
  req.push_back(serialize::RlpItem(
      crypto::HashToBytes(sys->node()->state()->StateRoot())));
  auto dropped = sys->platform()->Ecall(
      sys->confidential_engine()->enclave_id(), core::kCsSealFreshness,
      serialize::RlpEncode(serialize::RlpItem::List(std::move(req))));
  ASSERT_TRUE(dropped.ok());

  Status stale = sys->VerifyStateContinuity();
  ASSERT_TRUE(stale.IsStaleState()) << stale.ToString();

  // Recovery: seal the current tip under a fresh generation.
  ASSERT_TRUE(sys->SealStateGeneration().ok());
  EXPECT_TRUE(sys->VerifyStateContinuity().ok());
  EXPECT_EQ(Increment(sys.get(), &client, addr), "2");
}

TEST_F(StateContinuityChaosTest, ForkedReplicaFromClonedCounterStoreIsRefused) {
  // Forking attack: the host clones a replica's durable counter store and
  // boots a second instance of the same machine from the clone while the
  // original seals newer generations. The clone's counters sit behind the
  // platform's NVRAM high-water mark — the fork is refused at bootstrap.
  auto nvram_or = storage::LsmKvStore::Open(storage::LsmOptions{});
  ASSERT_TRUE(nvram_or.ok());
  std::shared_ptr<storage::KvStore> counter_store = std::move(*nvram_or);

  SystemOptions options;
  options.seed = 801;
  options.enable_state_continuity = true;
  options.counter_store = counter_store;
  auto original = Boot(options);
  Client client(640, original->pk_tx());
  chain::Address addr = Deploy(original.get(), &client);
  ASSERT_EQ(Increment(original.get(), &client, addr), "1");

  // Clone the counter store at this sealed generation.
  auto clone_or = storage::LsmKvStore::Open(storage::LsmOptions{});
  ASSERT_TRUE(clone_or.ok());
  std::shared_ptr<storage::KvStore> cloned_store = std::move(*clone_or);
  for (auto it = counter_store->NewIterator(); it->Valid(); it->Next()) {
    ASSERT_TRUE(cloned_store->Put(it->key(), it->value()).ok());
  }

  // The original timeline moves on (counter advances past the clone).
  ASSERT_EQ(Increment(original.get(), &client, addr), "2");

  // Booting the fork from the cloned store must fail with StaleState —
  // two replicas cannot both continue from one sealed generation.
  uint64_t detected_before =
      CounterValue("tee.counter.rollback_detected.count");
  SystemOptions fork_options = options;
  fork_options.counter_store = cloned_store;
  auto forked = ConfideSystem::BootstrapFirst(fork_options);
  ASSERT_FALSE(forked.ok());
  EXPECT_TRUE(forked.status().IsStaleState()) << forked.status().ToString();
  EXPECT_GT(CounterValue("tee.counter.rollback_detected.count"),
            detected_before);

  // The original replica is unaffected and keeps sealing.
  EXPECT_EQ(Increment(original.get(), &client, addr), "3");
}

TEST_F(StateContinuityChaosTest, InjectedCounterRollbackDetectedAtVerify) {
  // The counter half of the snapshot-restore attack, injected directly:
  // the host presents a durable counter value one behind the trusted
  // NVRAM mark.
  auto store_or = storage::LsmKvStore::Open(storage::LsmOptions{});
  ASSERT_TRUE(store_or.ok());
  std::shared_ptr<storage::KvStore> counter_store = std::move(*store_or);

  SystemOptions options;
  options.seed = 811;
  options.enable_state_continuity = true;
  options.counter_store = counter_store;
  auto sys = Boot(options);
  Client client(650, sys->pk_tx());
  chain::Address addr = Deploy(sys.get(), &client);
  ASSERT_EQ(Increment(sys.get(), &client, addr), "1");
  ASSERT_TRUE(sys->VerifyStateContinuity().ok());

  // Re-attach the store to drop the enclave's loaded counter values, so
  // the next verification re-reads the (rolled-back) durable counter.
  sys->platform()->AttachCounterStore(counter_store);
  uint64_t detected_before =
      CounterValue("tee.counter.rollback_detected.count");
  FaultPlan plan(ChaosSeed());
  plan.Arm("fault.tee.counter.rollback",
           Trigger{.one_shot = true, .arg = 1});
  Status stale = sys->VerifyStateContinuity();
  ASSERT_TRUE(stale.IsStaleState()) << stale.ToString();
  EXPECT_GT(CounterValue("tee.counter.rollback_detected.count"),
            detected_before);
  metrics::MetricsSnapshot snap = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(snap.counter("fault.tee.counter.rollback.injected"), 1u);
  EXPECT_GE(snap.counter("fault.tee.counter.rollback.recovered"), 1u);

  // With the honest durable value presented again, the node is clean.
  EXPECT_TRUE(sys->VerifyStateContinuity().ok());
  EXPECT_EQ(Increment(sys.get(), &client, addr), "2");
}

// ---------------------------------------------------------------------------
// Fault-site coverage
// ---------------------------------------------------------------------------
// tools/check_fault_report.py fails CI if any `fault.*` site declared in
// src/ never fires across the chaos matrix. These tests cover the sites
// the scenario suites above don't reach.

TEST_F(SyncChaosTest, EquivocatingCertificateRejectedDuringRejoin) {
  BuildPrimary(820, 6);
  chain::SyncProvider honest("honest", primary_->node());
  chain::SyncProvider equivocator("equivocator", primary_->node());
  auto joiner = Join(821);

  uint64_t forks_before = CounterValue("chain.fork.detected.count");
  FaultPlan plan(ChaosSeed());
  // Fires on the second discovery query: the honest provider's manifest
  // is witnessed first, the equivocator's conflicting (but correctly
  // certified) one must then be refused as fork evidence.
  plan.Arm("fault.chain.sync.equivocating_certificate",
           Trigger{.after_hits = 1, .one_shot = true});
  auto stats = joiner->SyncFromPeers({&honest, &equivocator});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->forks_detected, 1u);
  EXPECT_GE(stats->certificates_rejected, 1u);
  EXPECT_GT(CounterValue("chain.fork.detected.count"), forks_before);
  ExpectConverged(joiner.get());
}

TEST_F(SyncChaosTest, CheckpointWriteFailureNeverFailsTheBlock) {
  BuildPrimary(830, 2, /*interval=*/2);  // deploy + 2 -> checkpoint at 2

  uint64_t failed_before = CounterValue("chain.checkpoint.failure.count");
  {
    FaultPlan plan(ChaosSeed());
    plan.Arm("fault.chain.checkpoint.write", Trigger{.one_shot = true});
    // Crosses the next checkpoint boundary; the injected write failure is
    // counted but the blocks themselves land (MorePrimaryBlocks asserts
    // every increment committed).
    MorePrimaryBlocks(2);
  }
  EXPECT_GT(CounterValue("chain.checkpoint.failure.count"), failed_before);

  // The following boundary checkpoints normally again.
  MorePrimaryBlocks(2);
  ASSERT_NE(primary_->node()->checkpoints(), nullptr);
  EXPECT_GE(primary_->node()->checkpoints()->LatestHeight(), 6u);
}

TEST(NodeChaosTest, PipelineStageFaultsSurfaceAndRetryCleanly) {
  SystemOptions options;
  options.seed = 290;
  options.parallelism = 2;
  options.pipeline_depth = 3;  // pinned: this test is about the pipeline
  options.block_max_bytes = 1;
  auto boot = ConfideSystem::BootstrapFirst(options);
  ASSERT_TRUE(boot.ok()) << boot.status().ToString();
  auto& sys = *boot;
  Client client(612, sys->pk_tx());
  auto code = lang::Compile(kCounterSource, lang::VmTarget::kCvm);
  ASSERT_TRUE(code.ok());
  chain::Address addr = NamedAddress("counter");
  auto deploy = client.MakeConfidentialTx(addr, "__deploy__", DeployPayload(*code));
  ASSERT_TRUE(deploy.ok());
  ASSERT_TRUE(sys->node()->SubmitTransaction(deploy->tx).ok());
  ASSERT_TRUE(sys->RunToCompletion().ok());

  std::vector<core::ConfidentialSubmission> calls;
  auto submit = [&](int n) {
    for (int i = 0; i < n; ++i) {
      auto call = client.MakeConfidentialTx(addr, "increment", Bytes{});
      ASSERT_TRUE(call.ok());
      ASSERT_TRUE(sys->node()->SubmitTransaction(call->tx).ok());
      calls.push_back(std::move(*call));
    }
  };
  auto expect_committed_through = [&](size_t count) {
    ASSERT_EQ(calls.size(), count);
    auto receipt = sys->node()->GetReceipt(calls.back().tx.Hash());
    ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
    auto opened = Client::OpenSealedReceipt(calls.back().k_tx, receipt->output);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(ToString(opened->output), std::to_string(count));
  };

  // Stage-1 verifier outage: the run fails loudly and the whole batch
  // returns to the pools — an injected outage must not drop transactions.
  submit(3);
  {
    FaultPlan plan(ChaosSeed());
    plan.Arm("fault.chain.pipeline.preverify", Trigger{.one_shot = true});
    auto receipts = sys->RunToCompletion();
    ASSERT_FALSE(receipts.ok());
    EXPECT_EQ(receipts.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(sys->node()->UnverifiedPoolSize() + sys->node()->VerifiedPoolSize(),
            3u);
  ASSERT_TRUE(sys->RunToCompletion().ok());
  expect_committed_through(3);

  // Stage-2 execute failure: the failed block's transactions return to
  // the pools and the exact same work commits on retry.
  submit(3);
  {
    FaultPlan plan(ChaosSeed());
    plan.Arm("fault.chain.pipeline.execute", Trigger{.one_shot = true});
    auto receipts = sys->RunToCompletion();
    ASSERT_FALSE(receipts.ok());
    EXPECT_EQ(receipts.status().code(), StatusCode::kUnavailable);
  }
  ASSERT_TRUE(sys->RunToCompletion().ok());
  expect_committed_through(6);

  // A stall is backpressure, not corruption: absorbed without reordering
  // or dropping anything.
  submit(2);
  {
    FaultPlan plan(ChaosSeed());
    plan.Arm("fault.chain.pipeline.stall",
             Trigger{.one_shot = true, .arg = 2'000'000});
    ASSERT_TRUE(sys->RunToCompletion().ok());
  }
  expect_committed_through(8);

  metrics::MetricsSnapshot snap = metrics::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(snap.counter("fault.chain.pipeline.preverify.injected"), 1u);
  EXPECT_GE(snap.counter("fault.chain.pipeline.execute.injected"), 1u);
  EXPECT_GE(snap.counter("fault.chain.pipeline.stall.injected"), 1u);
  EXPECT_GE(snap.counter("fault.chain.pipeline.stall.recovered"), 1u);
}

TEST(NodeChaosTest, WalResetFailureAfterFlushIsIdempotentlyRecoverable) {
  auto dir = std::filesystem::temp_directory_path() / "confide_chaos_walreset";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  storage::LsmOptions options;
  options.wal_dir = dir.string();
  {
    auto store = storage::LsmKvStore::Open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("k", ToBytes(std::string_view("v"))).ok());

    FaultPlan plan(ChaosSeed());
    plan.Arm("fault.storage.wal_reset", Trigger{.one_shot = true});
    // The run is installed before the WAL truncation fails, so the error
    // surfaces but no data is lost...
    Status flushed = (*store)->Flush();
    EXPECT_EQ(flushed.code(), StatusCode::kUnavailable);
    auto still = (*store)->Get("k");
    ASSERT_TRUE(still.ok());
    EXPECT_EQ(ToString(*still), "v");
  }
  // ...and a restart replays the un-truncated WAL over the installed run
  // — idempotent, same state.
  auto reopened = storage::LsmKvStore::Open(options);
  ASSERT_TRUE(reopened.ok());
  auto value = (*reopened)->Get("k");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(ToString(*value), "v");
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Network chaos: the fault.net.* sites of the multi-process transport
// (src/net). Each test arms one site, proves the injected failure fired,
// and — for the recoverable sites — that the repair path reported
// recovery (tools/check_fault_report.py enforces both per CI run).
// ---------------------------------------------------------------------------

namespace netchaos {

using net::ClusterNode;
using net::FrameView;
using net::MsgType;
using net::OwnedFrame;
using net::SimHub;
using net::SimTransport;
using net::TcpTransport;
using net::TcpTransportOptions;

constexpr const char* kNetCounterSource = R"(
fn increment() {
  var key = "counter";
  var buf = alloc(16);
  var n = get_storage(key, strlen(key), buf, 16);
  var value = 0;
  if (n == 8) { value = load64(buf); }
  value = value + 1;
  store64(buf, value);
  set_storage(key, strlen(key), buf, 8);
  return value;
}
)";

Bytes NetDeployPayload(const Bytes& code) {
  std::vector<serialize::RlpItem> items;
  items.push_back(serialize::RlpItem::U64(uint64_t(chain::VmKind::kCvm)));
  items.push_back(serialize::RlpItem(code));
  return serialize::RlpEncode(serialize::RlpItem::List(std::move(items)));
}

std::unique_ptr<ConfideSystem> NetChaosSystem() {
  SystemOptions options;
  options.seed = 23;
  options.block_max_bytes = 64 * 1024;
  auto sys = ConfideSystem::BootstrapFirst(options);
  EXPECT_TRUE(sys.ok()) << sys.status().ToString();
  return std::move(*sys);
}

bool NetWaitFor(const std::function<bool()>& pred, uint64_t timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

uint16_t NetPickPort() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

/// A connected TcpTransport pair with recording handlers, the substrate
/// for the per-site TCP chaos tests.
class NetChaosTcpPair {
 public:
  NetChaosTcpPair() {
    peers_ = {"127.0.0.1:" + std::to_string(NetPickPort()),
              "127.0.0.1:" + std::to_string(NetPickPort())};
    for (uint32_t id = 0; id < 2; ++id) {
      TcpTransportOptions options;
      options.self_id = id;
      options.peers = peers_;
      options.listen_host = "127.0.0.1";
      transports_.push_back(std::make_unique<TcpTransport>(options));
      transports_[id]->SetHandler(
          [this, id](uint32_t from, MsgType, ByteView body)
              -> std::optional<OwnedFrame> {
            std::lock_guard<std::mutex> lock(mu_);
            received_[id].emplace_back(from, ToBytes(body));
            return std::nullopt;
          });
      EXPECT_TRUE(transports_[id]->Start().ok());
    }
  }

  ~NetChaosTcpPair() {
    for (auto& transport : transports_) transport->Stop();
  }

  TcpTransport& at(uint32_t id) { return *transports_[id]; }

  size_t ReceivedCount(uint32_t id) {
    std::lock_guard<std::mutex> lock(mu_);
    return received_[id].size();
  }

  bool Received(uint32_t id, const Bytes& body) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [from, got] : received_[id]) {
      if (got == body) return true;
    }
    return false;
  }

 private:
  std::vector<std::string> peers_;
  std::vector<std::unique_ptr<TcpTransport>> transports_;
  std::mutex mu_;
  std::map<uint32_t, std::vector<std::pair<uint32_t, Bytes>>> received_;
};

Bytes NetBody(std::string_view s) { return ToBytes(AsByteView(s)); }

TEST(NetChaosTest, DroppedPrePrepareRepairedByGapFetch) {
  // 3-node sim cluster; the leader's pre-prepare to node 1 is dropped by
  // injection. Node 1 still sees node 2's votes (a block-less pending
  // entry) and must pull the block via kFetchBlocks on the next round —
  // the fault.net.send.drop recovery signal.
  chain::NetworkSim sim = chain::NetworkSim::SingleZone(3);
  SimHub hub(&sim, ChaosSeed());
  std::vector<std::unique_ptr<ConfideSystem>> systems;
  std::vector<std::unique_ptr<ClusterNode>> nodes;
  for (uint32_t i = 0; i < 3; ++i) {
    systems.push_back(NetChaosSystem());
    ASSERT_NE(systems[i], nullptr);
    nodes.push_back(std::make_unique<ClusterNode>(
        systems[i].get(), std::make_unique<SimTransport>(&hub, i)));
    ASSERT_TRUE(nodes[i]->Start().ok());
  }
  Client client(99, systems[0]->pk_tx());
  auto code = lang::Compile(kNetCounterSource, lang::VmTarget::kCvm);
  ASSERT_TRUE(code.ok());
  chain::Address addr = chain::NamedAddress("netchaos.counter");

  auto* recovered = metrics::GetCounter("fault.net.send.drop.recovered");
  const uint64_t recovered_before = recovered->Value();

  ASSERT_TRUE(systems[0]
                  ->node()
                  ->SubmitTransaction(client.MakePublicTx(addr, "__deploy__",
                                                          NetDeployPayload(*code)))
                  .ok());
  {
    FaultPlan plan(ChaosSeed());
    // Broadcast visits peers in id order: the first routed frame is the
    // pre-prepare to node 1.
    plan.Arm("fault.net.send.drop", Trigger{.one_shot = true});
    ASSERT_TRUE(nodes[0]->ProposeOnce().ok());
    EXPECT_EQ(FaultInjector::Global().FiredCount("fault.net.send.drop"), 1u);
    hub.DeliverAll();
  }
  EXPECT_EQ(nodes[1]->Height() + 1, nodes[0]->Height());  // node 1 is behind

  // Next round: node 1 sees the seq jump and repairs the gap.
  ASSERT_TRUE(systems[0]
                  ->node()
                  ->SubmitTransaction(client.MakePublicTx(addr, "increment", Bytes{}))
                  .ok());
  ASSERT_TRUE(nodes[0]->ProposeOnce().ok());
  hub.DeliverAll();

  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(nodes[i]->Height(), nodes[0]->Height()) << "node " << i;
    EXPECT_EQ(nodes[i]->TipHash(), nodes[0]->TipHash()) << "node " << i;
  }
  EXPECT_GT(recovered->Value(), recovered_before);
  for (auto& node : nodes) node->Stop();
}

TEST(NetChaosTest, TruncatedSendHealsOnReconnect) {
  NetChaosTcpPair pair;
  auto* recovered = metrics::GetCounter("fault.net.send.truncate.recovered");
  auto* corrupt = metrics::GetCounter("net.frame.corrupt.count");
  const uint64_t recovered_before = recovered->Value();
  const uint64_t corrupt_before = corrupt->Value();

  // Warm the connection so the truncation hits an established link.
  ASSERT_TRUE(pair.at(0).Send(1, MsgType::kPrepare, NetBody("warm")).ok());
  ASSERT_TRUE(NetWaitFor([&] { return pair.Received(1, NetBody("warm")); }));

  {
    FaultPlan plan(ChaosSeed());
    plan.Arm("fault.net.send.truncate", Trigger{.one_shot = true});
    // Half the frame is written, then the connection dies: the peer sees
    // a stream ending mid-frame (Corruption), the frame is lost.
    ASSERT_TRUE(pair.at(0).Send(1, MsgType::kPrepare, NetBody("lost")).ok());
    EXPECT_EQ(FaultInjector::Global().FiredCount("fault.net.send.truncate"), 1u);
  }
  ASSERT_TRUE(NetWaitFor([&] { return corrupt->Value() > corrupt_before; }));
  EXPECT_FALSE(pair.Received(1, NetBody("lost")));

  // The next send redials and lands a whole frame — recovery.
  ASSERT_TRUE(NetWaitFor([&] {
    return pair.at(0).Send(1, MsgType::kPrepare, NetBody("healed")).ok() &&
           pair.Received(1, NetBody("healed"));
  }));
  EXPECT_GT(recovered->Value(), recovered_before);
}

TEST(NetChaosTest, ConnectFailureRetriesAndRecovers) {
  NetChaosTcpPair pair;
  auto* recovered = metrics::GetCounter("fault.net.connect.fail.recovered");
  const uint64_t recovered_before = recovered->Value();
  {
    FaultPlan plan(ChaosSeed());
    plan.Arm("fault.net.connect.fail", Trigger{.one_shot = true});
    // First connect attempt fails by injection; the in-call retry loop
    // dials again and the frame still arrives.
    ASSERT_TRUE(pair.at(0).Send(1, MsgType::kCommit, NetBody("retried")).ok());
    EXPECT_EQ(FaultInjector::Global().FiredCount("fault.net.connect.fail"), 1u);
  }
  ASSERT_TRUE(NetWaitFor([&] { return pair.Received(1, NetBody("retried")); }));
  EXPECT_GT(recovered->Value(), recovered_before);
}

TEST(NetChaosTest, SendDelayStallsButDelivers) {
  NetChaosTcpPair pair;
  {
    FaultPlan plan(ChaosSeed());
    plan.Arm("fault.net.send.delay", Trigger{.one_shot = true, .arg = 30});
    const auto start = std::chrono::steady_clock::now();
    ASSERT_TRUE(pair.at(0).Send(1, MsgType::kPrepare, NetBody("slow")).ok());
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    EXPECT_GE(elapsed.count(), 30);
    EXPECT_EQ(FaultInjector::Global().FiredCount("fault.net.send.delay"), 1u);
  }
  ASSERT_TRUE(NetWaitFor([&] { return pair.Received(1, NetBody("slow")); }));
}

TEST(NetChaosTest, CorruptedInboundByteDropsStreamThenRecovers) {
  NetChaosTcpPair pair;
  auto* recovered = metrics::GetCounter("fault.net.recv.corrupt.recovered");
  auto* corrupt = metrics::GetCounter("net.frame.corrupt.count");
  const uint64_t recovered_before = recovered->Value();
  const uint64_t corrupt_before = corrupt->Value();

  // Warm the connection so the peer is identified before the corruption
  // (the flipped byte must hit a data frame, not the kHello).
  ASSERT_TRUE(pair.at(0).Send(1, MsgType::kPrepare, NetBody("warm")).ok());
  ASSERT_TRUE(NetWaitFor([&] { return pair.Received(1, NetBody("warm")); }));

  {
    FaultPlan plan(ChaosSeed());
    plan.Arm("fault.net.recv.corrupt", Trigger{.one_shot = true});
    ASSERT_TRUE(pair.at(0).Send(1, MsgType::kPrepare, NetBody("flipped")).ok());
    ASSERT_TRUE(NetWaitFor([&] {
      return FaultInjector::Global().FiredCount("fault.net.recv.corrupt") == 1;
    }));
  }
  // The receiver rejects the garbled stream and drops the connection.
  ASSERT_TRUE(NetWaitFor([&] { return corrupt->Value() > corrupt_before; }));
  EXPECT_FALSE(pair.Received(1, NetBody("flipped")));

  // Redelivery over a fresh connection closes the loop: the first clean
  // frame from the same peer reports recovery.
  ASSERT_TRUE(NetWaitFor([&] {
    return pair.at(0).Send(1, MsgType::kPrepare, NetBody("clean")).ok() &&
           pair.Received(1, NetBody("clean"));
  }));
  EXPECT_GT(recovered->Value(), recovered_before);
}

// ---------------------------------------------------------------------------
// View-change chaos: the fault.net.view.* sites (cluster.h §Leader
// failover). A 4-node sim cluster (quorum 3) kills the leader at every
// protocol phase and asserts the survivors elect, converge to
// byte-identical tips, and report recovery for each injected fault.
// ---------------------------------------------------------------------------

struct ViewChaosCluster {
  ViewChaosCluster()
      : sim(chain::NetworkSim::SingleZone(4)), hub(&sim, ChaosSeed()) {
    for (uint32_t i = 0; i < 4; ++i) {
      systems.push_back(NetChaosSystem());
      nodes.push_back(std::make_unique<ClusterNode>(
          systems[i].get(), std::make_unique<SimTransport>(&hub, i)));
      EXPECT_TRUE(nodes[i]->Start().ok());
    }
    client = std::make_unique<Client>(99, systems[0]->pk_tx());
    auto code = lang::Compile(kNetCounterSource, lang::VmTarget::kCvm);
    EXPECT_TRUE(code.ok());
    deploy_payload = NetDeployPayload(*code);
  }
  ~ViewChaosCluster() {
    for (auto& node : nodes) node->Stop();
  }

  /// Commits the counter deploy under the view-0 leader; returns the
  /// resulting height.
  uint64_t DeployAndCommit() {
    EXPECT_TRUE(
        systems[0]
            ->node()
            ->SubmitTransaction(
                client->MakePublicTx(addr, "__deploy__", deploy_payload))
            .ok());
    EXPECT_TRUE(nodes[0]->ProposeOnce().ok());
    hub.DeliverAll();
    return nodes[0]->Height();
  }

  void Submit(uint32_t node_id, const char* method) {
    EXPECT_TRUE(systems[node_id]
                    ->node()
                    ->SubmitTransaction(
                        client->MakePublicTx(addr, method, Bytes{}))
                    .ok());
  }

  void ExpectSurvivorsConverged(uint64_t height, uint64_t view) {
    for (uint32_t i = 1; i < 4; ++i) {
      EXPECT_EQ(nodes[i]->view(), view) << "node " << i;
      EXPECT_EQ(nodes[i]->Height(), height) << "node " << i;
      EXPECT_EQ(nodes[i]->TipHash(), nodes[1]->TipHash()) << "node " << i;
    }
  }

  chain::Address addr = chain::NamedAddress("viewchaos.counter");
  chain::NetworkSim sim;
  SimHub hub;
  std::vector<std::unique_ptr<ConfideSystem>> systems;
  std::vector<std::unique_ptr<ClusterNode>> nodes;
  std::unique_ptr<Client> client;
  Bytes deploy_payload;
};

TEST(ViewChangeChaosTest, LeaderKilledWhileIdleSuccessorResumesProgress) {
  ViewChaosCluster c;
  const uint64_t h1 = c.DeployAndCommit();

  // Phase: idle. The leader dies between rounds; nothing is in flight.
  c.nodes[0]->Stop();
  c.nodes[2]->StartViewChange(1);
  c.nodes[3]->StartViewChange(1);
  c.hub.DeliverAll();
  c.ExpectSurvivorsConverged(h1, 1);
  EXPECT_TRUE(c.nodes[1]->is_leader());

  c.Submit(1, "increment");
  ASSERT_TRUE(c.nodes[1]->ProposeOnce().ok());
  c.hub.DeliverAll();
  c.ExpectSurvivorsConverged(h1 + 1, 1);
}

TEST(ViewChangeChaosTest, LeaderDiesAfterPrepareQuorumBlockSurvivesElection) {
  ViewChaosCluster c;
  const uint64_t h1 = c.DeployAndCommit();

  // Phase: prepared-but-not-committed. Deliver the pre-prepares, then
  // drop every commit at the send site: all four nodes hold a prepare
  // certificate for the block, nobody applies it.
  c.Submit(0, "increment");
  auto seq = c.nodes[0]->ProposeOnce();
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(c.hub.DeliverOne());  // pre-prepare → node 1
  ASSERT_TRUE(c.hub.DeliverOne());  // pre-prepare → node 2
  ASSERT_TRUE(c.hub.DeliverOne());  // pre-prepare → node 3
  {
    FaultPlan plan(ChaosSeed());
    plan.Arm("fault.net.send.drop", Trigger{.probability = 1.0});
    c.hub.DeliverAll();  // the 9 queued prepares land; 4×3 commits drop
    EXPECT_EQ(FaultInjector::Global().FiredCount("fault.net.send.drop"), 12u);
  }
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(c.nodes[i]->Height(), h1) << "node " << i;
  }

  // Every survivor's kViewChange carries the prepared certificate
  // (quorum intersection), so the new leader must re-propose the same
  // block — and it must commit exactly once (heights advance by one,
  // never two).
  c.nodes[0]->Stop();
  c.nodes[2]->StartViewChange(1);
  c.nodes[3]->StartViewChange(1);
  c.hub.DeliverAll();
  c.ExpectSurvivorsConverged(h1 + 1, 1);
}

TEST(ViewChangeChaosTest, DroppedViewChangeReBroadcastCompletesElection) {
  ViewChaosCluster c;
  const uint64_t h1 = c.DeployAndCommit();
  c.nodes[0]->Stop();

  auto* recovered =
      metrics::GetCounter("fault.net.view.viewchange_drop.recovered");
  const uint64_t recovered_before = recovered->Value();
  {
    FaultPlan plan(ChaosSeed());
    plan.Arm("fault.net.view.viewchange_drop", Trigger{.one_shot = true});
    // Node 2's view-change evaporates in flight: with only two of three
    // survivor messages, the election must stall short of quorum.
    c.nodes[2]->StartViewChange(1);
    EXPECT_EQ(
        FaultInjector::Global().FiredCount("fault.net.view.viewchange_drop"),
        1u);
    c.hub.DeliverAll();
    c.nodes[3]->StartViewChange(1);
    c.nodes[1]->StartViewChange(1);
    c.hub.DeliverAll();
    EXPECT_EQ(c.nodes[1]->view(), 0u);  // 2 of 3 messages: no quorum

    // The election-timeout retry: re-invoking the same target
    // re-broadcasts, the quorum completes, and the node whose message
    // was dropped still adopts the new view — the recovery signal.
    c.nodes[2]->StartViewChange(1);
    c.hub.DeliverAll();
  }
  c.ExpectSurvivorsConverged(h1, 1);
  EXPECT_GT(recovered->Value(), recovered_before);
}

TEST(ViewChangeChaosTest, LeaderCrashMidElectionEscalatesToNextCandidate) {
  ViewChaosCluster c;
  const uint64_t h1 = c.DeployAndCommit();
  c.nodes[0]->Stop();

  auto* recovered =
      metrics::GetCounter("fault.net.view.election_crash.recovered");
  const uint64_t recovered_before = recovered->Value();
  {
    FaultPlan plan(ChaosSeed());
    plan.Arm("fault.net.view.election_crash", Trigger{.one_shot = true});
    // Node 1 collects a quorum for view 1 and dies before kNewView: the
    // election evaporates and every survivor stays in view 0.
    c.nodes[2]->StartViewChange(1);
    c.nodes[3]->StartViewChange(1);
    c.hub.DeliverAll();
    EXPECT_EQ(
        FaultInjector::Global().FiredCount("fault.net.view.election_crash"),
        1u);
    for (uint32_t i = 1; i < 4; ++i) {
      EXPECT_EQ(c.nodes[i]->view(), 0u) << "node " << i;
    }

    // The replicas' timers fire again with a higher target; view 2 is
    // led by node 2, and the crashed candidate recovers by adopting the
    // later view like any replica.
    c.nodes[3]->StartViewChange(2);
    c.nodes[1]->StartViewChange(2);
    c.nodes[2]->StartViewChange(2);
    c.hub.DeliverAll();
  }
  c.ExpectSurvivorsConverged(h1, 2);
  EXPECT_TRUE(c.nodes[2]->is_leader());
  EXPECT_GT(recovered->Value(), recovered_before);

  c.Submit(2, "increment");
  ASSERT_TRUE(c.nodes[2]->ProposeOnce().ok());
  c.hub.DeliverAll();
  c.ExpectSurvivorsConverged(h1 + 1, 2);
}

TEST(ViewChangeChaosTest, ForgedStaleNewViewRejectedByEveryReplica) {
  ViewChaosCluster c;
  const uint64_t h1 = c.DeployAndCommit();

  // First election (all four alive): node 1 takes view 1; the deposed
  // node 0 follows along as a replica.
  c.nodes[2]->StartViewChange(1);
  c.nodes[3]->StartViewChange(1);
  c.hub.DeliverAll();
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(c.nodes[i]->view(), 1u) << "node " << i;
  }

  auto* rejected = metrics::GetCounter("cluster.newview.rejected.count");
  auto* recovered =
      metrics::GetCounter("fault.net.view.stale_newview.recovered");
  const uint64_t rejected_before = rejected->Value();
  const uint64_t recovered_before = recovered->Value();
  {
    FaultPlan plan(ChaosSeed());
    plan.Arm("fault.net.view.stale_newview", Trigger{.one_shot = true});
    // Election to view 5 — node 1 leads again, and the injection makes
    // it forge a kNewView for its stale view 1 before the genuine one.
    // Every replica must reject the forgery (rolling the view back would
    // re-admit a deposed leader) yet still complete the real election.
    c.nodes[2]->StartViewChange(5);
    c.nodes[3]->StartViewChange(5);
    c.hub.DeliverAll();
    EXPECT_EQ(
        FaultInjector::Global().FiredCount("fault.net.view.stale_newview"),
        1u);
  }
  EXPECT_EQ(rejected->Value(), rejected_before + 3);  // nodes 0, 2, 3
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(c.nodes[i]->view(), 5u) << "node " << i;
    EXPECT_EQ(c.nodes[i]->Height(), h1) << "node " << i;
  }
  EXPECT_TRUE(c.nodes[1]->is_leader());
  EXPECT_GT(recovered->Value(), recovered_before);
}

}  // namespace netchaos

}  // namespace
}  // namespace confide
