/// \file bench_table1_scfar.cpp
/// \brief Reproduces **Table 1**: the operation profile of one SCF-AR
/// asset-transfer flow.
///
/// Paper row | Duration (ms) | Counts | Ratio
///   Contract Call          32.46   31   86.1%
///   GetStorage              4.80  151   12.7%
///   SetStorage              0.55    9    1.5%
///   Transaction Verify      0.22    1    0.6%
///   Transaction Decryption  0.10    1    0.3%
///
/// We measure the real operation counts from the enclave, the end-to-end
/// execution wall time, and attribute per-category durations by
/// micro-measuring each operation's cost on this host.

#include "bench/bench_util.h"
#include "confide/protocol.h"

using namespace confide;
using namespace confide::bench;

int main() {
  std::printf("== Table 1: operations of the SCF-AR contract flow ==\n\n");

  core::SystemOptions options;
  options.seed = 777;
  options.block_max_bytes = 64 * 1024;
  auto sys = MustBootstrap(options);
  core::Client client(9, sys->pk_tx());

  for (const auto& [name, source] : workloads::ScfArContracts()) {
    MustDeploy(sys.get(), &client, name, source, true);
  }
  MustCall(sys.get(), &client, "scf.manager", "seed", Bytes{});
  MustCall(sys.get(), &client, "scf.fee", "seed", Bytes{});
  MustCall(sys.get(), &client, "scf.account", "seed",
           ToBytes(std::string_view("supplier-alpha")));
  MustCall(sys.get(), &client, "scf.account", "seed",
           ToBytes(std::string_view("bank-one")));
  for (int i = 0; i < 4; ++i) {
    MustCall(sys.get(), &client, "scf.asset", "seed",
             ToBytes("ar-cert-" + std::to_string(i) + "\nsupplier-alpha"));
  }

  // Run the flow kRuns times without the pre-verification cache assist
  // (Table 1 profiles a full execution including decrypt + verify).
  constexpr int kRuns = 50;
  crypto::Drbg rng(11);
  std::vector<chain::Transaction> txs;
  std::vector<core::TxKey> keys;
  for (int i = 0; i < kRuns; ++i) {
    auto sub = client.MakeConfidentialTx(chain::NamedAddress("scf.gateway"),
                                         "transfer",
                                         workloads::MakeScfTransferInput(&rng, i));
    txs.push_back(sub->tx);
    keys.push_back(sub->k_tx);
  }

  auto* engine = sys->confidential_engine();
  chain::CommitStateDb* state = sys->node()->state();
  // Warm-up (code caches).
  (void)engine->Execute(txs[0], state);

  double total_seconds = TimeSeconds([&] {
    for (int i = 1; i < kRuns; ++i) {
      auto receipt = engine->Execute(txs[i], state);
      if (!receipt.ok() || !receipt->success) {
        std::fprintf(stderr, "transfer failed: %s\n",
                     receipt.ok() ? receipt->status_message.c_str()
                                  : receipt.status().ToString().c_str());
        std::abort();
      }
    }
  });
  double flow_ms = total_seconds / (kRuns - 1) * 1e3;
  auto stats = engine->last_response();

  // Micro-measure the per-operation costs on this host.
  core::StateKey k_states{};
  crypto::Drbg(1).Fill(k_states.data(), 32);
  Bytes value = crypto::Drbg(2).Generate(96);
  Bytes aad = core::StateAad(AsByteView("contract"), AsByteView("key"), 1);
  auto sealed_value = core::SealState(k_states, value, aad);

  constexpr int kMicro = 2000;
  double get_ms = TimeSeconds([&] {
                    for (int i = 0; i < kMicro; ++i) {
                      (void)core::OpenState(k_states, *sealed_value, aad);
                    }
                  }) /
                  kMicro * 1e3;
  double set_ms = TimeSeconds([&] {
                    for (int i = 0; i < kMicro; ++i) {
                      (void)core::SealState(k_states, value, aad);
                    }
                  }) /
                  kMicro * 1e3;

  crypto::Drbg rng2(3);
  crypto::KeyPair kp = crypto::GenerateKeyPair(&rng2);
  crypto::Hash256 digest = crypto::Sha256::Digest(AsByteView("msg"));
  auto sig = crypto::EcdsaSign(kp.priv, digest);
  constexpr int kSigRuns = 50;
  double verify_ms = TimeSeconds([&] {
                       for (int i = 0; i < kSigRuns; ++i) {
                         (void)crypto::EcdsaVerify(kp.pub, digest, *sig);
                       }
                     }) /
                     kSigRuns * 1e3;

  core::TxKey k_tx{};
  auto envelope = core::SealEnvelope(kp.pub, k_tx, crypto::Drbg(4).Generate(300), 1);
  double decrypt_ms = TimeSeconds([&] {
                        for (int i = 0; i < kSigRuns; ++i) {
                          (void)core::OpenEnvelope(kp.priv, *envelope);
                        }
                      }) /
                      kSigRuns * 1e3;

  double get_total = get_ms * double(stats.get_storage_ops);
  double set_total = set_ms * double(stats.set_storage_ops);
  double call_total = flow_ms - get_total - set_total - verify_ms - decrypt_ms;
  if (call_total < 0) call_total = 0;
  double sum = call_total + get_total + set_total + verify_ms + decrypt_ms;

  std::printf("%-24s %14s %8s %8s   %s\n", "Method", "Duration (ms)", "Counts",
              "Ratio", "paper: duration / counts / ratio");
  std::printf("%-24s %14.2f %8lu %7.1f%%   32.46 / 31 / 86.1%%\n",
              "Contract Call", call_total, (unsigned long)stats.contract_calls,
              call_total / sum * 100);
  std::printf("%-24s %14.2f %8lu %7.1f%%    4.80 / 151 / 12.7%%\n", "GetStorage",
              get_total, (unsigned long)stats.get_storage_ops,
              get_total / sum * 100);
  std::printf("%-24s %14.2f %8lu %7.1f%%    0.55 / 9 / 1.5%%\n", "SetStorage",
              set_total, (unsigned long)stats.set_storage_ops,
              set_total / sum * 100);
  std::printf("%-24s %14.2f %8d %7.1f%%    0.22 / 1 / 0.6%%\n",
              "Transaction Verify", verify_ms, 1, verify_ms / sum * 100);
  std::printf("%-24s %14.2f %8d %7.1f%%    0.10 / 1 / 0.3%%\n",
              "Transaction Decryption", decrypt_ms, 1, decrypt_ms / sum * 100);
  std::printf("%-24s %14.2f\n\n", "Total flow", flow_ms);

  bool calls_dominate = call_total / sum > 0.5;
  bool gets_second = get_total > set_total && get_total < call_total;
  bool tx_ops_negligible = (verify_ms + decrypt_ms) / sum < 0.2;
  std::printf("shape checks (paper Table 1):\n");
  std::printf("  contract calls dominate (>50%%): %s\n",
              calls_dominate ? "yes" : "NO");
  std::printf("  GetStorage second, SetStorage small: %s\n",
              gets_second ? "yes" : "NO");
  std::printf("  verify+decrypt negligible: %s\n",
              tx_ops_negligible ? "yes" : "NO");
  bool ok = calls_dominate && gets_second && tx_ops_negligible;
  std::printf("overall: %s\n", ok ? "PASS" : "MISMATCH");
  confide::bench::DumpMetrics();
  return ok ? 0 : 1;
}
