/// \file bench_storage.cpp
/// \brief Storage read-path sweep: fill an LSM store, then run a
/// point-get/scan mix twice — once with bloom filters and the row cache
/// disabled (baseline) and once enabled (optimized) — and record the
/// read amplification and get-latency p99 of each phase in metrics.json.
///
/// The CI `storage-perf` job runs this in Release and gates on the
/// checked-in thresholds (bench/storage_perf_thresholds.json) via
/// tools/check_storage_perf.py:
///
///   storage.bench.baseline.read_amplification_milli   structures/read ×1000
///   storage.bench.optimized.read_amplification_milli
///   storage.bench.baseline.get_p99_ns
///   storage.bench.optimized.get_p99_ns
///   storage.bench.improvement_ratio_milli              baseline/optimized ×1000
///
/// Knobs: CONFIDE_STORAGE_CACHE_MB sizes the optimized phase's cache
/// (default 64); CONFIDE_METRICS_OUT overrides the metrics.json path.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "storage/lsm_store.h"

namespace confide::bench {
namespace {

constexpr size_t kKeys = 30000;
constexpr size_t kValueBytes = 128;
constexpr size_t kReadOps = 60000;
constexpr size_t kScanEvery = 100;  // one 50-key scan per 100 point gets
constexpr size_t kScanLen = 50;

std::string KeyOf(size_t i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "key-%06zu", i);
  return buf;
}

/// Deterministic LCG so both phases replay the identical access stream.
struct Lcg {
  uint64_t state;
  uint64_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
};

struct PhaseResult {
  double read_amplification = 0;
  uint64_t get_p99_ns = 0;
  double seconds = 0;
};

/// Fill + mixed read phase against a fresh volatile store.
PhaseResult RunPhase(bool optimized) {
  storage::LsmOptions options;
  options.memtable_flush_bytes = 256 << 10;  // many runs: amp is visible
  options.max_runs = 10;
  options.enable_bloom = optimized;
  if (!optimized) options.cache_bytes = 0;  // optimized: env knob / 64 MB
  auto store = storage::LsmKvStore::Open(options);
  if (!store.ok()) {
    std::fprintf(stderr, "open failed: %s\n", store.status().ToString().c_str());
    std::abort();
  }

  Bytes value(kValueBytes);
  for (size_t i = 0; i < kKeys; ++i) {
    value[0] = uint8_t(i);
    if (Status s = (*store)->Put(KeyOf(i), value); !s.ok()) {
      std::fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
      std::abort();
    }
  }

  metrics::MetricsSnapshot before = metrics::MetricsRegistry::Global().Snapshot();
  std::vector<uint64_t> latencies;
  latencies.reserve(kReadOps);
  Lcg rng{42};
  const size_t hot_span = kKeys / 10;  // hot 10% absorbs 60% of the gets

  double seconds = TimeSeconds([&] {
    for (size_t op = 0; op < kReadOps; ++op) {
      std::string key;
      uint64_t roll = rng.Next() % 100;
      if (roll < 60) {
        key = KeyOf(rng.Next() % hot_span);
      } else if (roll < 80) {
        key = KeyOf(rng.Next() % kKeys);
      } else {
        key = "absent-" + std::to_string(rng.Next() % kKeys);
      }
      auto start = std::chrono::steady_clock::now();
      auto result = (*store)->Get(key);
      auto end = std::chrono::steady_clock::now();
      if (!result.ok() && !result.status().IsNotFound()) {
        std::fprintf(stderr, "get failed: %s\n",
                     result.status().ToString().c_str());
        std::abort();
      }
      latencies.push_back(uint64_t(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
              .count()));
      if (op % kScanEvery == 0) {
        auto it = (*store)->NewIterator();
        it->Seek(KeyOf(rng.Next() % kKeys));
        for (size_t n = 0; n < kScanLen && it->Valid(); ++n) it->Next();
      }
    }
  });

  metrics::MetricsSnapshot after = metrics::MetricsRegistry::Global().Snapshot();
  uint64_t reads = after.counter("storage.lsm.read.count") -
                   before.counter("storage.lsm.read.count");
  uint64_t probed = after.counter("storage.lsm.read.structures_probed") -
                    before.counter("storage.lsm.read.structures_probed");

  PhaseResult result;
  result.read_amplification = reads == 0 ? 0 : double(probed) / double(reads);
  std::sort(latencies.begin(), latencies.end());
  result.get_p99_ns = latencies[latencies.size() * 99 / 100];
  result.seconds = seconds;
  return result;
}

void Record(const std::string& phase, const PhaseResult& result) {
  metrics::GetGauge("storage.bench." + phase + ".read_amplification_milli")
      ->Set(int64_t(result.read_amplification * 1000));
  metrics::GetGauge("storage.bench." + phase + ".get_p99_ns")
      ->Set(int64_t(result.get_p99_ns));
  std::printf("%-9s  read_amp %.3f  get_p99 %8llu ns  %.2fs\n", phase.c_str(),
              result.read_amplification,
              static_cast<unsigned long long>(result.get_p99_ns),
              result.seconds);
}

}  // namespace
}  // namespace confide::bench

int main() {
  using namespace confide;
  using namespace confide::bench;

  std::printf("bench_storage: %zu keys, %zu mixed read ops\n", kKeys, kReadOps);
  PhaseResult baseline = RunPhase(/*optimized=*/false);
  Record("baseline", baseline);
  PhaseResult optimized = RunPhase(/*optimized=*/true);
  Record("optimized", optimized);

  double ratio = optimized.read_amplification == 0
                     ? 0
                     : baseline.read_amplification / optimized.read_amplification;
  metrics::GetGauge("storage.bench.improvement_ratio_milli")
      ->Set(int64_t(ratio * 1000));
  std::printf("read-amp improvement: %.2fx\n", ratio);

  DumpMetrics("metrics.json");
  return 0;
}
