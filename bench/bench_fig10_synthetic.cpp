/// \file bench_fig10_synthetic.cpp
/// \brief Reproduces **Figure 10**: throughput of the four Synthetic
/// workloads on {EVM, CONFIDE-VM} × {public, confidential(TEE)}.
///
/// Paper shape to reproduce: CONFIDE-VM ≫ EVM on every workload; the TEE
/// slowdown is visible for both engines but relatively smaller for
/// CONFIDE-VM. Absolute numbers differ (we interpret on a simulator, the
/// paper ran SGX silicon), the ordering and ratios are the target.

#include <map>

#include "bench/bench_util.h"
#include "chain/state.h"
#include "storage/lsm_store.h"

using namespace confide;
using namespace confide::bench;

namespace {

struct WorkloadSpec {
  const char* name;
  const char* entry;
  std::function<Bytes(crypto::Drbg*)> input;
};

// Executes `n` transactions straight through an engine (the Figure 10
// subject is engine throughput; ordering/storage are held constant).
double EngineTps(core::ConfideSystem* sys, chain::ExecutionEngine* engine,
                 const std::vector<chain::Transaction>& txs) {
  chain::CommitStateDb* state = sys->node()->state();
  double secs = TimeSeconds([&] {
    for (const chain::Transaction& tx : txs) {
      auto receipt = engine->Execute(tx, state);
      if (!receipt.ok() || !receipt->success) {
        std::fprintf(stderr, "execute failed: %s\n",
                     receipt.ok() ? receipt->status_message.c_str()
                                  : receipt.status().ToString().c_str());
        std::abort();
      }
    }
    (void)state->Commit();
  });
  return double(txs.size()) / secs;
}

}  // namespace

int main() {
  std::printf("== Figure 10: Synthetic workload throughput (tx/s) ==\n");
  std::printf("4-node-equivalent single-engine pipeline, 4KB blocks held "
              "constant; shapes (not absolute TPS) are the target.\n\n");

  const WorkloadSpec kWorkloads[] = {
      {"String Concatenation", "string_concat",
       [](crypto::Drbg* rng) { return workloads::MakeStringConcatInput(rng); }},
      {"E-notes Depository(4KB)", "enotes_deposit",
       [](crypto::Drbg* rng) { return workloads::MakeENotesInput(rng); }},
      {"Crypto Hash(100x)", "crypto_hash",
       [](crypto::Drbg* rng) { return workloads::MakeCryptoHashInput(rng); }},
      {"JSON Parsing(60kv)", "json_parse",
       [](crypto::Drbg* rng) { return workloads::MakeJsonParseInput(rng); }},
  };

  struct Config {
    const char* label;
    lang::VmTarget target;
    bool confidential;
  };
  const Config kConfigs[] = {
      {"EVM(public)", lang::VmTarget::kEvm, false},
      {"EVM(TEE)", lang::VmTarget::kEvm, true},
      {"CONFIDE-VM(public)", lang::VmTarget::kCvm, false},
      {"CONFIDE-VM(TEE)", lang::VmTarget::kCvm, true},
  };

  std::printf("%-26s %16s %16s %18s %18s\n", "workload", "EVM(public)",
              "EVM(TEE)", "CONFIDE-VM(public)", "CONFIDE-VM(TEE)");

  std::map<std::string, std::map<std::string, double>> results;
  for (const WorkloadSpec& workload : kWorkloads) {
    std::map<std::string, double> row;
    for (const Config& config : kConfigs) {
      core::SystemOptions options;
      options.seed = 10'000 + uint64_t(&config - kConfigs);
      // Both engines run behind the §5.2 pre-verification pipeline, so
      // neither re-checks signatures in the execution phase.
      options.public_engine.assume_preverified = true;
      auto sys = MustBootstrap(options);
      core::Client client(1, sys->pk_tx());

      std::string contract = std::string("syn-") + config.label;
      MustDeploy(sys.get(), &client, contract, workloads::SyntheticContractSource(),
                 config.confidential, config.target);

      // Pre-build transactions (client-side work excluded from timing).
      crypto::Drbg rng(42);
      // Size the batch so slow configs still finish quickly.
      size_t n = config.target == lang::VmTarget::kEvm ? 30 : 150;
      std::vector<chain::Transaction> txs;
      for (size_t i = 0; i < n; ++i) {
        Bytes input = workload.input(&rng);
        if (config.confidential) {
          auto sub = client.MakeConfidentialTx(chain::NamedAddress(contract),
                                               workload.entry, std::move(input));
          txs.push_back(sub->tx);
        } else {
          txs.push_back(client.MakePublicTx(chain::NamedAddress(contract),
                                            workload.entry, std::move(input)));
        }
      }
      chain::ExecutionEngine* engine =
          config.confidential
              ? static_cast<chain::ExecutionEngine*>(sys->confidential_engine())
              : sys->public_engine();
      // Pre-verification phase (§5.2) runs before ordering, overlapped
      // with the network: excluded from the execution-phase timing as in
      // the paper's pipeline.
      if (config.confidential) {
        for (const chain::Transaction& tx : txs) (void)engine->PreVerify(tx);
      }
      // Warm-up once (code cache), then measure.
      (void)engine->Execute(txs[0], sys->node()->state());
      row[config.label] = EngineTps(sys.get(), engine, txs);
    }
    results[workload.name] = row;
    std::printf("%-26s %16.1f %16.1f %18.1f %18.1f\n", workload.name,
                row["EVM(public)"], row["EVM(TEE)"], row["CONFIDE-VM(public)"],
                row["CONFIDE-VM(TEE)"]);
  }

  std::printf("\nshape checks (paper Figure 10):\n");
  bool ok = true;
  for (const auto& [name, row] : results) {
    double cvm_pub = row.at("CONFIDE-VM(public)");
    double cvm_tee = row.at("CONFIDE-VM(TEE)");
    double evm_pub = row.at("EVM(public)");
    double evm_tee = row.at("EVM(TEE)");
    bool cvm_beats_evm = cvm_pub > evm_pub && cvm_tee > evm_tee;
    bool tee_costs = cvm_tee < cvm_pub && evm_tee < evm_pub;
    double cvm_slowdown = cvm_pub / cvm_tee;
    double evm_slowdown = evm_pub / evm_tee;
    std::printf("  %-26s CVM>EVM: %-3s  TEE slows both: %-3s  "
                "TEE slowdown CVM %.2fx vs EVM %.2fx\n",
                name.c_str(), cvm_beats_evm ? "yes" : "NO",
                tee_costs ? "yes" : "NO", cvm_slowdown, evm_slowdown);
    ok = ok && cvm_beats_evm;
  }
  std::printf("overall: %s\n", ok ? "PASS (CONFIDE-VM wins everywhere, as in "
                                    "the paper)"
                                  : "MISMATCH");
  confide::bench::DumpMetrics();
  return ok ? 0 : 1;
}
