/// \file bench_sec64_production.cpp
/// \brief Reproduces the **§6.4 production metrics** prose: "the time
/// duration of blocks execution is about 30 ms on average. Periodically,
/// empty blocks are generated continuously with about 5 ms duration...
/// the typical block write latency is about 6 ms on average."

#include "bench/bench_util.h"

using namespace confide;
using namespace confide::bench;

int main() {
  std::printf("== §6.4: production block metrics (ABS batch traffic) ==\n\n");

  core::SystemOptions options;
  options.seed = 888;
  options.parallelism = 4;
  options.block_max_bytes = 16 * 1024;
  auto sys = MustBootstrap(options);
  core::Client client(4, sys->pk_tx());

  MustDeploy(sys.get(), &client, "abs", workloads::AbsContractSource(), true);
  MustCall(sys.get(), &client, "abs", "abs_seed_whitelist", Bytes{});

  // Applications submit in batches (paper: "transactions are submitted in
  // batch by the application into the blockchain network").
  crypto::Drbg rng(6);
  constexpr int kTx = 120;
  for (int i = 0; i < kTx; ++i) {
    auto sub = client.MakeConfidentialTx(chain::NamedAddress("abs"), "abs_transfer",
                                         workloads::MakeAbsAssetFlat(&rng, i));
    if (!sys->node()->SubmitTransaction(sub->tx).ok()) std::abort();
  }
  if (!sys->node()->PreVerify().ok()) std::abort();

  // Busy blocks.
  std::vector<double> exec_ms;
  std::vector<double> write_ms;
  while (sys->node()->VerifiedPoolSize() > 0) {
    auto block = sys->node()->ProposeBlock();
    if (!block.ok()) std::abort();
    uint64_t clock_before = sys->clock()->NowNs();
    double secs = TimeSeconds([&] {
      if (!sys->node()->ApplyBlock(*block).ok()) std::abort();
    });
    // The SSD model charges block-write latency on the SimClock.
    uint64_t modeled_ns = sys->clock()->NowNs() - clock_before;
    exec_ms.push_back(secs * 1e3);
    write_ms.push_back(double(modeled_ns) / 1e6);
  }

  // Empty blocks (periodic heartbeat blocks in production).
  std::vector<double> empty_ms;
  for (int i = 0; i < 10; ++i) {
    auto block = sys->node()->ProposeBlock();
    if (!block.ok()) std::abort();
    double secs = TimeSeconds([&] {
      if (!sys->node()->ApplyBlock(*block).ok()) std::abort();
    });
    // Empty-block duration includes its (modeled) write.
    empty_ms.push_back(secs * 1e3 + 6.0);
  }

  auto avg = [](const std::vector<double>& v) {
    double sum = 0;
    for (double x : v) sum += x;
    return v.empty() ? 0.0 : sum / double(v.size());
  };

  double exec_avg = avg(exec_ms);
  double write_avg = avg(write_ms);
  double empty_avg = avg(empty_ms);

  std::printf("%-28s %10s %12s\n", "metric", "measured", "paper");
  std::printf("%-28s %8.2f ms %12s\n", "busy block execution", exec_avg, "~30 ms");
  std::printf("%-28s %8.2f ms %12s\n", "empty block duration", empty_avg, "~5 ms");
  std::printf("%-28s %8.2f ms %12s\n", "block write latency (SSD)", write_avg,
              "~6 ms");
  std::printf("(%zu busy blocks, ~%zu tx/block)\n\n", exec_ms.size(),
              exec_ms.empty() ? 0 : size_t(kTx) / exec_ms.size());

  std::printf("shape checks (§6.4):\n");
  bool busy_gt_empty = exec_avg + write_avg > empty_avg;
  bool write_about_6ms = write_avg > 5.5 && write_avg < 7.5;
  bool empty_small = empty_avg < exec_avg + write_avg;
  std::printf("  busy blocks cost more than empty blocks: %s\n",
              busy_gt_empty ? "yes" : "NO");
  std::printf("  block write ~6 ms (SSD model): %s (%.2f ms)\n",
              write_about_6ms ? "yes" : "NO", write_avg);
  std::printf("  empty-block overhead small: %s\n", empty_small ? "yes" : "NO");
  bool ok = busy_gt_empty && write_about_6ms && empty_small;
  std::printf("overall: %s\n", ok ? "PASS" : "MISMATCH");
  confide::bench::DumpMetrics();
  return ok ? 0 : 1;
}
