/// \file bench_overhead_decomposition.cpp
/// \brief Micro-decomposition of the confidentiality overheads (§6.1):
/// the workload-independent T-Protocol cost, the workload-dependent
/// D-Protocol state crypto, enclave-boundary crossings (copy vs
/// user_check marshalling, §5.3), EPC paging, the exit-less monitor vs
/// ocall-based monitoring ablation, and the SCF-AR enclave-transition
/// decomposition with and without batched state ocalls (OPT5).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/sim_clock.h"
#include "confide/protocol.h"
#include "crypto/drbg.h"
#include "tee/enclave.h"

using namespace confide;

namespace {

// --- T-Protocol (workload-independent, "fixed overhead") -------------------

void BM_TProtocol_SealEnvelope(benchmark::State& state) {
  crypto::Drbg rng(1);
  crypto::KeyPair kp = crypto::GenerateKeyPair(&rng);
  Bytes raw = rng.Generate(size_t(state.range(0)));
  core::TxKey k_tx{};
  uint64_t entropy = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SealEnvelope(kp.pub, k_tx, raw, ++entropy));
  }
}
BENCHMARK(BM_TProtocol_SealEnvelope)->Arg(300)->Arg(4096);

void BM_TProtocol_OpenEnvelope_PrivateKeyPath(benchmark::State& state) {
  crypto::Drbg rng(2);
  crypto::KeyPair kp = crypto::GenerateKeyPair(&rng);
  core::TxKey k_tx{};
  auto envelope = core::SealEnvelope(kp.pub, k_tx, rng.Generate(300), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::OpenEnvelope(kp.priv, *envelope));
  }
}
BENCHMARK(BM_TProtocol_OpenEnvelope_PrivateKeyPath);

void BM_TProtocol_OpenEnvelope_CachedSymmetricPath(benchmark::State& state) {
  // The §5.2 C3 path: k_tx from the pre-verification cache.
  crypto::Drbg rng(3);
  crypto::KeyPair kp = crypto::GenerateKeyPair(&rng);
  core::TxKey k_tx{};
  k_tx[0] = 1;
  auto envelope = core::SealEnvelope(kp.pub, k_tx, rng.Generate(300), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::OpenEnvelopeBody(k_tx, *envelope));
  }
}
BENCHMARK(BM_TProtocol_OpenEnvelope_CachedSymmetricPath);

// --- D-Protocol (workload-dependent: per state I/O) -------------------------

void BM_DProtocol_SealState(benchmark::State& state) {
  core::StateKey k{};
  crypto::Drbg(4).Fill(k.data(), 32);
  Bytes value = crypto::Drbg(5).Generate(size_t(state.range(0)));
  Bytes aad = core::StateAad(AsByteView("contract"), AsByteView("key"), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SealState(k, value, aad));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DProtocol_SealState)->Arg(64)->Arg(1024)->Arg(4096);

void BM_DProtocol_OpenState(benchmark::State& state) {
  core::StateKey k{};
  crypto::Drbg(6).Fill(k.data(), 32);
  Bytes value = crypto::Drbg(7).Generate(size_t(state.range(0)));
  Bytes aad = core::StateAad(AsByteView("contract"), AsByteView("key"), 1);
  auto sealed = core::SealState(k, value, aad);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::OpenState(k, *sealed, aad));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DProtocol_OpenState)->Arg(64)->Arg(1024)->Arg(4096);

// --- Enclave boundary -------------------------------------------------------

class EchoEnclave : public tee::Enclave {
 public:
  std::string CodeIdentity() const override { return "bench-echo"; }
  Result<Bytes> HandleEcall(uint64_t fn, ByteView input,
                            tee::EnclaveContext* ctx) override {
    if (fn == 2) ctx->MonitorEmit(0, "tick");
    if (fn == 3) ctx->MonitorEmitViaOcall(0, "tick");
    return ToBytes(input.first(std::min<size_t>(input.size(), 8)));
  }
};

struct BoundaryFixture {
  SimClock clock;
  tee::EnclavePlatform platform{tee::TeeCostModel{}, &clock, 1};
  tee::EnclaveId id = 0;
  BoundaryFixture() {
    id = *platform.CreateEnclave(std::make_shared<EchoEnclave>(), 1 << 20);
  }
};

void BM_Ecall_CopyInOut(benchmark::State& state) {
  BoundaryFixture fx;
  Bytes payload(size_t(state.range(0)), 0xAA);
  uint64_t modeled_start = fx.clock.NowNs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.platform.Ecall(fx.id, 1, payload, tee::PointerSemantics::kCopyInOut));
  }
  state.counters["modeled_ns/op"] = benchmark::Counter(
      double(fx.clock.NowNs() - modeled_start) / double(state.iterations()));
}
BENCHMARK(BM_Ecall_CopyInOut)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Ecall_UserCheck(benchmark::State& state) {
  // §5.3 "optimized data structure": the user_check flag skips the
  // Edger8r copy+check marshalling.
  BoundaryFixture fx;
  Bytes payload(size_t(state.range(0)), 0xAA);
  uint64_t modeled_start = fx.clock.NowNs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.platform.Ecall(fx.id, 1, payload, tee::PointerSemantics::kUserCheck));
  }
  state.counters["modeled_ns/op"] = benchmark::Counter(
      double(fx.clock.NowNs() - modeled_start) / double(state.iterations()));
}
BENCHMARK(BM_Ecall_UserCheck)->Arg(64)->Arg(4096)->Arg(65536);

// --- Monitor: exit-less ring vs ocall ---------------------------------------

void BM_Monitor_Exitless(benchmark::State& state) {
  BoundaryFixture fx;
  Bytes payload(8, 0);
  uint64_t modeled_start = fx.clock.NowNs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.platform.Ecall(fx.id, 2, payload));
    (void)fx.platform.DrainMonitor();
  }
  state.counters["modeled_ns/op"] = benchmark::Counter(
      double(fx.clock.NowNs() - modeled_start) / double(state.iterations()));
}
BENCHMARK(BM_Monitor_Exitless);

void BM_Monitor_ViaOcall(benchmark::State& state) {
  BoundaryFixture fx;
  Bytes payload(8, 0);
  uint64_t modeled_start = fx.clock.NowNs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.platform.Ecall(fx.id, 3, payload));
    (void)fx.platform.DrainMonitor();
  }
  state.counters["modeled_ns/op"] = benchmark::Counter(
      double(fx.clock.NowNs() - modeled_start) / double(state.iterations()));
}
BENCHMARK(BM_Monitor_ViaOcall);

// --- EPC paging --------------------------------------------------------------

void BM_Epc_WithinBudget(benchmark::State& state) {
  tee::TeeCostModel model;
  SimClock clock;
  tee::TeeStats stats;
  tee::EpcManager epc(model, &clock, &stats);
  auto a = epc.Allocate(8 << 20);
  auto b = epc.Allocate(8 << 20);
  for (auto _ : state) {
    (void)epc.Touch(*a);
    (void)epc.Touch(*b);
  }
  state.counters["pages_swapped"] =
      double(stats.pages_evicted.load() + stats.pages_loaded.load());
}
BENCHMARK(BM_Epc_WithinBudget);

void BM_Epc_Thrashing(benchmark::State& state) {
  // Working set of 2x60 MB against the 93.5 MB EPC: every touch faults.
  tee::TeeCostModel model;
  SimClock clock;
  tee::TeeStats stats;
  tee::EpcManager epc(model, &clock, &stats);
  auto a = epc.Allocate(60 << 20);
  auto b = epc.Allocate(60 << 20);
  uint64_t modeled_start = clock.NowNs();
  for (auto _ : state) {
    (void)epc.Touch(*a);
    (void)epc.Touch(*b);
  }
  state.counters["pages_swapped"] =
      double(stats.pages_evicted.load() + stats.pages_loaded.load());
  state.counters["modeled_ns/op"] = benchmark::Counter(
      double(clock.NowNs() - modeled_start) / double(state.iterations()));
}
BENCHMARK(BM_Epc_Thrashing);

// --- SCF-AR enclave transitions: batched vs single state ocalls -------------

struct ScfArTransitionProfile {
  double transitions_per_tx = 0;        // all EENTER/EEXIT events
  double state_ocalls_per_tx = 0;       // single + batched crossings
  double state_transitions_per_tx = 0;  // 2 * state_ocalls_per_tx
};

// Executes the Table-1 SCF-AR transfer flow and profiles the steady-state
// boundary crossings of the last `kMeasure` transactions (code caches and
// the OPT5 read-set profile are warm by then).
ScfArTransitionProfile RunScfArTransitions(bool batching, uint64_t seed) {
  using namespace confide::bench;
  core::SystemOptions options;
  options.seed = seed;
  options.block_max_bytes = 64 * 1024;
  options.cs.enable_ocall_batching = batching;
  auto sys = MustBootstrap(options);
  core::Client client(9, sys->pk_tx());

  for (const auto& [name, source] : workloads::ScfArContracts()) {
    MustDeploy(sys.get(), &client, name, source, true);
  }
  MustCall(sys.get(), &client, "scf.manager", "seed", Bytes{});
  MustCall(sys.get(), &client, "scf.fee", "seed", Bytes{});
  MustCall(sys.get(), &client, "scf.account", "seed",
           ToBytes(std::string_view("supplier-alpha")));
  MustCall(sys.get(), &client, "scf.account", "seed",
           ToBytes(std::string_view("bank-one")));
  for (int i = 0; i < 4; ++i) {
    MustCall(sys.get(), &client, "scf.asset", "seed",
             ToBytes("ar-cert-" + std::to_string(i) + "\nsupplier-alpha"));
  }

  constexpr int kWarmup = 8;   // cycles all 4 assets through the profile
  constexpr int kMeasure = 4;
  crypto::Drbg rng(11);
  auto* engine = sys->confidential_engine();
  chain::CommitStateDb* state = sys->node()->state();
  auto run_one = [&](int i) {
    auto sub = client.MakeConfidentialTx(
        chain::NamedAddress("scf.gateway"), "transfer",
        workloads::MakeScfTransferInput(&rng, i));
    auto receipt = engine->Execute(sub->tx, state);
    if (!receipt.ok() || !receipt->success) {
      std::fprintf(stderr, "scf-ar transfer failed: %s\n",
                   receipt.ok() ? receipt->status_message.c_str()
                                : receipt.status().ToString().c_str());
      std::abort();
    }
  };
  for (int i = 0; i < kWarmup; ++i) run_one(i);

  metrics::MetricsSnapshot before = metrics::MetricsRegistry::Global().Snapshot();
  uint64_t transitions_before = sys->platform()->stats().transitions.load();
  for (int i = kWarmup; i < kWarmup + kMeasure; ++i) run_one(i);
  metrics::MetricsSnapshot after = metrics::MetricsRegistry::Global().Snapshot();

  auto counter_delta = [&](const char* name) {
    return after.counter(name) - before.counter(name);
  };
  ScfArTransitionProfile profile;
  profile.transitions_per_tx =
      double(sys->platform()->stats().transitions.load() - transitions_before) /
      kMeasure;
  profile.state_ocalls_per_tx =
      double(counter_delta("confide.state.get_ocall.count") +
             counter_delta("confide.state.set_ocall.count") +
             counter_delta("confide.state.get_batch_ocall.count") +
             counter_delta("confide.state.set_batch_ocall.count")) /
      kMeasure;
  profile.state_transitions_per_tx = 2.0 * profile.state_ocalls_per_tx;
  return profile;
}

// Returns true when the batched journal holds state-ocall transitions for
// one steady-state SCF-AR tx at <= 4 (one prefetch + one flush crossing).
bool ScfArTransitionDecomposition() {
  std::printf("\n== SCF-AR enclave transitions: single vs batched state ocalls ==\n\n");
  ScfArTransitionProfile single = RunScfArTransitions(false, 91'000);
  ScfArTransitionProfile batched = RunScfArTransitions(true, 91'001);
  std::printf("%-28s %16s %16s\n", "per steady-state tx", "single ocalls",
              "batched (OPT5)");
  std::printf("%-28s %16.1f %16.1f\n", "state ocall crossings",
              single.state_ocalls_per_tx, batched.state_ocalls_per_tx);
  std::printf("%-28s %16.1f %16.1f\n", "state ocall transitions",
              single.state_transitions_per_tx, batched.state_transitions_per_tx);
  std::printf("%-28s %16.1f %16.1f\n", "total enclave transitions",
              single.transitions_per_tx, batched.transitions_per_tx);

  bool ok = batched.state_transitions_per_tx <= 4.0 &&
            batched.transitions_per_tx < single.transitions_per_tx;
  std::printf("\nself-check: batched state-ocall transitions/tx <= 4 "
              "(O(storage ops) -> O(1)): %s\n",
              ok ? "PASS" : "MISMATCH");
  return ok;
}

// --- Boundary bytes: copy-in/out vs accounted user_check views ---------------

struct BoundaryBytesProfile {
  double bytes_copied_per_tx = 0;  // marshalled through the Edger8r bridge
  double bytes_viewed_per_tx = 0;  // crossed as accounted user_check views
  std::vector<Bytes> receipts;     // serialized receipts of the measured txs
  crypto::Hash256 state_root{};    // final committed state root
};

// Runs the SCF-AR transfer flow with the given marshalling semantics for
// the sealed-data crossings and profiles the per-tx boundary bytes of the
// steady-state transactions. Same seed for both runs: everything except
// the copy accounting must come out identical.
BoundaryBytesProfile RunBoundaryBytes(tee::PointerSemantics semantics) {
  using namespace confide::bench;
  core::SystemOptions options;
  options.seed = 92'000;
  options.block_max_bytes = 64 * 1024;
  options.cs.ocall_semantics = semantics;
  auto sys = MustBootstrap(options);
  core::Client client(9, sys->pk_tx());

  for (const auto& [name, source] : workloads::ScfArContracts()) {
    MustDeploy(sys.get(), &client, name, source, true);
  }
  MustCall(sys.get(), &client, "scf.manager", "seed", Bytes{});
  MustCall(sys.get(), &client, "scf.fee", "seed", Bytes{});
  MustCall(sys.get(), &client, "scf.account", "seed",
           ToBytes(std::string_view("supplier-alpha")));
  MustCall(sys.get(), &client, "scf.account", "seed",
           ToBytes(std::string_view("bank-one")));
  for (int i = 0; i < 4; ++i) {
    MustCall(sys.get(), &client, "scf.asset", "seed",
             ToBytes("ar-cert-" + std::to_string(i) + "\nsupplier-alpha"));
  }

  constexpr int kWarmup = 8;
  constexpr int kMeasure = 4;
  crypto::Drbg rng(11);
  auto* engine = sys->confidential_engine();
  chain::CommitStateDb* state = sys->node()->state();
  BoundaryBytesProfile profile;
  auto run_one = [&](int i, bool record) {
    auto sub = client.MakeConfidentialTx(
        chain::NamedAddress("scf.gateway"), "transfer",
        workloads::MakeScfTransferInput(&rng, i));
    auto receipt = engine->Execute(sub->tx, state);
    if (!receipt.ok() || !receipt->success) {
      std::fprintf(stderr, "scf-ar transfer failed: %s\n",
                   receipt.ok() ? receipt->status_message.c_str()
                                : receipt.status().ToString().c_str());
      std::abort();
    }
    if (record) profile.receipts.push_back(receipt->Serialize());
  };
  for (int i = 0; i < kWarmup; ++i) run_one(i, false);

  tee::TeeStats& stats = sys->platform()->stats();
  uint64_t copied_before =
      stats.bytes_copied_in.load() + stats.bytes_copied_out.load();
  uint64_t viewed_before = stats.bytes_viewed.load();
  for (int i = kWarmup; i < kWarmup + kMeasure; ++i) run_one(i, true);
  profile.bytes_copied_per_tx =
      double(stats.bytes_copied_in.load() + stats.bytes_copied_out.load() -
             copied_before) /
      kMeasure;
  profile.bytes_viewed_per_tx =
      double(stats.bytes_viewed.load() - viewed_before) / kMeasure;
  profile.state_root = state->StateRoot();
  return profile;
}

// Returns true when the user_check run moves the sealed-data payload bytes
// out of the copy column without perturbing execution: identical receipts,
// identical state root, strictly fewer bytes copied per tx.
bool BoundaryBytesDecomposition() {
  std::printf("\n== Boundary bytes: copy-in/out vs accounted user_check views ==\n\n");
  BoundaryBytesProfile copy = RunBoundaryBytes(tee::PointerSemantics::kCopyInOut);
  BoundaryBytesProfile view = RunBoundaryBytes(tee::PointerSemantics::kUserCheck);
  std::printf("%-28s %16s %16s\n", "per steady-state tx", "copy-in/out",
              "user_check");
  std::printf("%-28s %16.0f %16.0f\n", "boundary bytes copied",
              copy.bytes_copied_per_tx, view.bytes_copied_per_tx);
  std::printf("%-28s %16.0f %16.0f\n", "boundary bytes viewed",
              copy.bytes_viewed_per_tx, view.bytes_viewed_per_tx);

  bool identical = copy.receipts == view.receipts &&
                   copy.state_root == view.state_root;
  bool reduced = view.bytes_copied_per_tx < copy.bytes_copied_per_tx;
  std::printf("\nself-check: identical receipts + state root: %s\n",
              identical ? "PASS" : "MISMATCH");
  std::printf("self-check: fewer boundary bytes copied per tx: %s\n",
              reduced ? "PASS" : "MISMATCH");
  return identical && reduced;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bool ok = ScfArTransitionDecomposition();
  ok = BoundaryBytesDecomposition() && ok;
  return ok ? 0 : 1;
}
