/// \file bench_overhead_decomposition.cpp
/// \brief Micro-decomposition of the confidentiality overheads (§6.1):
/// the workload-independent T-Protocol cost, the workload-dependent
/// D-Protocol state crypto, enclave-boundary crossings (copy vs
/// user_check marshalling, §5.3), EPC paging, and the exit-less monitor
/// vs ocall-based monitoring ablation.

#include <benchmark/benchmark.h>

#include "common/sim_clock.h"
#include "confide/protocol.h"
#include "crypto/drbg.h"
#include "tee/enclave.h"

using namespace confide;

namespace {

// --- T-Protocol (workload-independent, "fixed overhead") -------------------

void BM_TProtocol_SealEnvelope(benchmark::State& state) {
  crypto::Drbg rng(1);
  crypto::KeyPair kp = crypto::GenerateKeyPair(&rng);
  Bytes raw = rng.Generate(size_t(state.range(0)));
  core::TxKey k_tx{};
  uint64_t entropy = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SealEnvelope(kp.pub, k_tx, raw, ++entropy));
  }
}
BENCHMARK(BM_TProtocol_SealEnvelope)->Arg(300)->Arg(4096);

void BM_TProtocol_OpenEnvelope_PrivateKeyPath(benchmark::State& state) {
  crypto::Drbg rng(2);
  crypto::KeyPair kp = crypto::GenerateKeyPair(&rng);
  core::TxKey k_tx{};
  auto envelope = core::SealEnvelope(kp.pub, k_tx, rng.Generate(300), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::OpenEnvelope(kp.priv, *envelope));
  }
}
BENCHMARK(BM_TProtocol_OpenEnvelope_PrivateKeyPath);

void BM_TProtocol_OpenEnvelope_CachedSymmetricPath(benchmark::State& state) {
  // The §5.2 C3 path: k_tx from the pre-verification cache.
  crypto::Drbg rng(3);
  crypto::KeyPair kp = crypto::GenerateKeyPair(&rng);
  core::TxKey k_tx{};
  k_tx[0] = 1;
  auto envelope = core::SealEnvelope(kp.pub, k_tx, rng.Generate(300), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::OpenEnvelopeBody(k_tx, *envelope));
  }
}
BENCHMARK(BM_TProtocol_OpenEnvelope_CachedSymmetricPath);

// --- D-Protocol (workload-dependent: per state I/O) -------------------------

void BM_DProtocol_SealState(benchmark::State& state) {
  core::StateKey k{};
  crypto::Drbg(4).Fill(k.data(), 32);
  Bytes value = crypto::Drbg(5).Generate(size_t(state.range(0)));
  Bytes aad = core::StateAad(AsByteView("contract"), AsByteView("key"), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SealState(k, value, aad));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DProtocol_SealState)->Arg(64)->Arg(1024)->Arg(4096);

void BM_DProtocol_OpenState(benchmark::State& state) {
  core::StateKey k{};
  crypto::Drbg(6).Fill(k.data(), 32);
  Bytes value = crypto::Drbg(7).Generate(size_t(state.range(0)));
  Bytes aad = core::StateAad(AsByteView("contract"), AsByteView("key"), 1);
  auto sealed = core::SealState(k, value, aad);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::OpenState(k, *sealed, aad));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DProtocol_OpenState)->Arg(64)->Arg(1024)->Arg(4096);

// --- Enclave boundary -------------------------------------------------------

class EchoEnclave : public tee::Enclave {
 public:
  std::string CodeIdentity() const override { return "bench-echo"; }
  Result<Bytes> HandleEcall(uint64_t fn, ByteView input,
                            tee::EnclaveContext* ctx) override {
    if (fn == 2) ctx->MonitorEmit(0, "tick");
    if (fn == 3) ctx->MonitorEmitViaOcall(0, "tick");
    return ToBytes(input.first(std::min<size_t>(input.size(), 8)));
  }
};

struct BoundaryFixture {
  SimClock clock;
  tee::EnclavePlatform platform{tee::TeeCostModel{}, &clock, 1};
  tee::EnclaveId id = 0;
  BoundaryFixture() {
    id = *platform.CreateEnclave(std::make_shared<EchoEnclave>(), 1 << 20);
  }
};

void BM_Ecall_CopyInOut(benchmark::State& state) {
  BoundaryFixture fx;
  Bytes payload(size_t(state.range(0)), 0xAA);
  uint64_t modeled_start = fx.clock.NowNs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.platform.Ecall(fx.id, 1, payload, tee::PointerSemantics::kCopyInOut));
  }
  state.counters["modeled_ns/op"] = benchmark::Counter(
      double(fx.clock.NowNs() - modeled_start) / double(state.iterations()));
}
BENCHMARK(BM_Ecall_CopyInOut)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Ecall_UserCheck(benchmark::State& state) {
  // §5.3 "optimized data structure": the user_check flag skips the
  // Edger8r copy+check marshalling.
  BoundaryFixture fx;
  Bytes payload(size_t(state.range(0)), 0xAA);
  uint64_t modeled_start = fx.clock.NowNs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.platform.Ecall(fx.id, 1, payload, tee::PointerSemantics::kUserCheck));
  }
  state.counters["modeled_ns/op"] = benchmark::Counter(
      double(fx.clock.NowNs() - modeled_start) / double(state.iterations()));
}
BENCHMARK(BM_Ecall_UserCheck)->Arg(64)->Arg(4096)->Arg(65536);

// --- Monitor: exit-less ring vs ocall ---------------------------------------

void BM_Monitor_Exitless(benchmark::State& state) {
  BoundaryFixture fx;
  Bytes payload(8, 0);
  uint64_t modeled_start = fx.clock.NowNs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.platform.Ecall(fx.id, 2, payload));
    (void)fx.platform.DrainMonitor();
  }
  state.counters["modeled_ns/op"] = benchmark::Counter(
      double(fx.clock.NowNs() - modeled_start) / double(state.iterations()));
}
BENCHMARK(BM_Monitor_Exitless);

void BM_Monitor_ViaOcall(benchmark::State& state) {
  BoundaryFixture fx;
  Bytes payload(8, 0);
  uint64_t modeled_start = fx.clock.NowNs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.platform.Ecall(fx.id, 3, payload));
    (void)fx.platform.DrainMonitor();
  }
  state.counters["modeled_ns/op"] = benchmark::Counter(
      double(fx.clock.NowNs() - modeled_start) / double(state.iterations()));
}
BENCHMARK(BM_Monitor_ViaOcall);

// --- EPC paging --------------------------------------------------------------

void BM_Epc_WithinBudget(benchmark::State& state) {
  tee::TeeCostModel model;
  SimClock clock;
  tee::TeeStats stats;
  tee::EpcManager epc(model, &clock, &stats);
  auto a = epc.Allocate(8 << 20);
  auto b = epc.Allocate(8 << 20);
  for (auto _ : state) {
    (void)epc.Touch(*a);
    (void)epc.Touch(*b);
  }
  state.counters["pages_swapped"] =
      double(stats.pages_evicted.load() + stats.pages_loaded.load());
}
BENCHMARK(BM_Epc_WithinBudget);

void BM_Epc_Thrashing(benchmark::State& state) {
  // Working set of 2x60 MB against the 93.5 MB EPC: every touch faults.
  tee::TeeCostModel model;
  SimClock clock;
  tee::TeeStats stats;
  tee::EpcManager epc(model, &clock, &stats);
  auto a = epc.Allocate(60 << 20);
  auto b = epc.Allocate(60 << 20);
  uint64_t modeled_start = clock.NowNs();
  for (auto _ : state) {
    (void)epc.Touch(*a);
    (void)epc.Touch(*b);
  }
  state.counters["pages_swapped"] =
      double(stats.pages_evicted.load() + stats.pages_loaded.load());
  state.counters["modeled_ns/op"] = benchmark::Counter(
      double(clock.NowNs() - modeled_start) / double(state.iterations()));
}
BENCHMARK(BM_Epc_Thrashing);

}  // namespace

BENCHMARK_MAIN();
