/// \file bench_micro_crypto.cpp
/// \brief Microbenchmarks for the crypto substrate (everything here is
/// implemented from scratch; see src/crypto/). These set the cost floor
/// under the protocol-level numbers in bench_overhead_decomposition.

#include <benchmark/benchmark.h>

#include "crypto/drbg.h"
#include "crypto/gcm.h"
#include "crypto/keccak.h"
#include "crypto/merkle.h"
#include "crypto/secp256k1.h"
#include "crypto/sha256.h"

using namespace confide;
using namespace confide::crypto;

namespace {

void BM_Sha256(benchmark::State& state) {
  Bytes data = Drbg(1).Generate(size_t(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Digest(data));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Keccak256(benchmark::State& state) {
  Bytes data = Drbg(2).Generate(size_t(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Keccak256::Digest(data));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Keccak256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_AesGcm_Seal(benchmark::State& state) {
  Drbg rng(3);
  Bytes key = rng.Generate(32);
  Bytes iv = rng.Generate(12);
  Bytes data = rng.Generate(size_t(state.range(0)));
  auto gcm = AesGcm::Create(key);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm->Seal(iv, data, AsByteView("aad")));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_AesGcm_Seal)->Arg(64)->Arg(1024)->Arg(4096);

void BM_EcdsaSign(benchmark::State& state) {
  Drbg rng(4);
  KeyPair kp = GenerateKeyPair(&rng);
  Hash256 digest = Sha256::Digest(AsByteView("message"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EcdsaSign(kp.priv, digest));
  }
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  Drbg rng(5);
  KeyPair kp = GenerateKeyPair(&rng);
  Hash256 digest = Sha256::Digest(AsByteView("message"));
  auto sig = EcdsaSign(kp.priv, digest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EcdsaVerify(kp.pub, digest, *sig));
  }
}
BENCHMARK(BM_EcdsaVerify);

void BM_EcdhSharedSecret(benchmark::State& state) {
  Drbg rng(6);
  KeyPair a = GenerateKeyPair(&rng);
  KeyPair b = GenerateKeyPair(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EcdhSharedSecret(a.priv, b.pub));
  }
}
BENCHMARK(BM_EcdhSharedSecret);

void BM_MerkleBuild(benchmark::State& state) {
  Drbg rng(7);
  std::vector<Bytes> leaves;
  for (int i = 0; i < state.range(0); ++i) leaves.push_back(rng.Generate(200));
  for (auto _ : state) {
    MerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.Root());
  }
}
BENCHMARK(BM_MerkleBuild)->Arg(16)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
