/// \file bench_fig12_abs_opts.cpp
/// \brief Reproduces **Figure 12**: the ABS-contract optimization ladder.
///
/// Paper ladder (cumulative):
///   BASE  — no code cache, no fusion, JSON-encoded asset, no pre-verify
///   OPT1  — code cache + memory/state cache        (~2x)
///   OPT2  — Flatbuffers-style record instead of JSON (~2.5x more)
///   OPT3  — pre-verification cache                  (~+6%)
///   OPT4  — instruction-set reduction + fusion      (~+17%)
///
/// This repro adds one rung past the paper's ladder:
///   OPT5  — batched state ocalls (write-back StateJournal + read-set
///           prefetch); gauged by enclave transitions/tx, which are
///           deterministic, rather than wall time.

#include "bench/bench_util.h"
#include "vm/cvm/builder.h"
#include "vm/cvm/interpreter.h"
#include "tests/test_util.h"

using namespace confide;
using namespace confide::bench;

namespace {

// Direct VM-level fusion effect on a loop kernel (where OPT4 acts): the
// end-to-end ladder rung can disappear into crypto/host noise when the
// contract is short, so the instruction-level gain is verified here.
double VmFusionSpeedup() {
  using namespace vm::cvm;
  FunctionBuilder fb(0, 2);
  auto loop = fb.NewLabel();
  auto done = fb.NewLabel();
  fb.Bind(loop);
  fb.LocalGet(1).I64Const(1'000'000).Emit(Op::kGeS).BrIf(done);
  fb.LocalGet(0).LocalGet(1).Emit(Op::kAdd).LocalSet(0);
  fb.LocalGet(1).I64Const(1).Emit(Op::kAdd).LocalSet(1);
  fb.Br(loop);
  fb.Bind(done);
  fb.LocalGet(0).Return();
  ModuleBuilder mb;
  auto idx = mb.AddFunction(fb);
  mb.Export("main", *idx);
  Bytes wire = EncodeModule(mb.Finish());
  testutil::MapHostEnv env;
  CvmVm vm;
  double secs[2];
  for (int fusion = 0; fusion <= 1; ++fusion) {
    vm::ExecConfig cfg;
    cfg.enable_fusion = fusion != 0;
    cfg.gas_limit = 1ull << 40;
    (void)vm.Execute(wire, "main", {}, &env, cfg);  // warm the code cache
    double best = 1e9;
    for (int rep = 0; rep < 3; ++rep) {
      best = std::min(best, TimeSeconds([&] {
               (void)vm.Execute(wire, "main", {}, &env, cfg);
             }));
    }
    secs[fusion] = best;
  }
  return secs[0] / secs[1];
}

struct Step {
  const char* label;
  core::CsOptions cs;
  bool flat_input;      // OPT2
  bool preverify;       // OPT3
  const char* paper_gain;
};

struct StepResult {
  double tps = 0;
  double transitions_per_tx = 0;  // deterministic (cost model), noise-free
};

StepResult RunStep(const Step& step, uint64_t seed) {
  core::SystemOptions options;
  options.seed = seed;
  options.cs = step.cs;
  auto sys = MustBootstrap(options);
  core::Client client(3, sys->pk_tx());

  MustDeploy(sys.get(), &client, "abs", workloads::AbsContractSource(), true);
  MustCall(sys.get(), &client, "abs", "abs_seed_whitelist", Bytes{});

  crypto::Drbg rng(5);
  constexpr int kTx = 100;
  std::vector<chain::Transaction> txs;
  for (int i = 0; i < kTx; ++i) {
    Bytes input = step.flat_input ? workloads::MakeAbsAssetFlat(&rng, i)
                                  : workloads::MakeAbsAssetJson(&rng, i);
    const char* entry = step.flat_input ? "abs_transfer" : "abs_transfer_json";
    auto sub = client.MakeConfidentialTx(chain::NamedAddress("abs"), entry,
                                         std::move(input));
    txs.push_back(sub->tx);
  }

  auto* engine = sys->confidential_engine();
  chain::CommitStateDb* state = sys->node()->state();
  if (step.preverify) {
    for (const chain::Transaction& tx : txs) (void)engine->PreVerify(tx);
  }
  uint64_t transitions_before = sys->platform()->stats().transitions.load();
  double secs = TimeSeconds([&] {
    for (const chain::Transaction& tx : txs) {
      auto receipt = engine->Execute(tx, state);
      if (!receipt.ok() || !receipt->success) {
        std::fprintf(stderr, "abs tx failed: %s\n",
                     receipt.ok() ? receipt->status_message.c_str()
                                  : receipt.status().ToString().c_str());
        std::abort();
      }
    }
  });
  StepResult result;
  result.tps = double(kTx) / secs;
  result.transitions_per_tx =
      double(sys->platform()->stats().transitions.load() - transitions_before) /
      double(kTx);
  return result;
}

}  // namespace

int main() {
  std::printf("== Figure 12: optimizations on the ABS contract (tx/s) ==\n\n");

  core::CsOptions base;
  base.enable_code_cache = false;
  base.enable_fusion = false;
  base.enable_state_cache = false;
  base.enable_preverify_cache = false;
  base.enable_ocall_batching = false;  // OPT5 is the last rung

  core::CsOptions opt1 = base;
  opt1.enable_code_cache = true;       // code cache
  opt1.enable_state_cache = true;      // memory management / state cache

  core::CsOptions opt3 = opt1;
  opt3.enable_preverify_cache = true;  // pre-verification

  core::CsOptions opt4 = opt3;
  opt4.enable_fusion = true;           // instruction optimization

  core::CsOptions opt5 = opt4;
  opt5.enable_ocall_batching = true;   // batched state ocalls

  const Step kSteps[] = {
      {"BASE (interpret+JSON)", base, false, false, "-"},
      {"+OPT1 code/mem cache", opt1, false, false, "~2x"},
      {"+OPT2 Flatbuffers", opt1, true, false, "~2.5x"},
      {"+OPT3 pre-verification", opt3, true, true, "~+6%"},
      {"+OPT4 instruction fusion", opt4, true, true, "~+17%"},
      {"+OPT5 ocall batching", opt5, true, true, "-"},
  };
  constexpr int kStepCount = int(sizeof(kSteps) / sizeof(kSteps[0]));

  double tps[kStepCount];
  double trans[kStepCount];
  std::printf("%-26s %10s %12s %12s %10s %10s\n", "configuration", "tx/s",
              "step gain", "cumulative", "trans/tx", "paper");
  for (int i = 0; i < kStepCount; ++i) {
    // Best of 3 runs: the host is a single shared core, so individual
    // runs are noisy.
    tps[i] = 0;
    trans[i] = 0;
    for (int rep = 0; rep < 3; ++rep) {
      StepResult result = RunStep(kSteps[i], 60'000 + i * 10 + rep);
      tps[i] = std::max(tps[i], result.tps);
      trans[i] = result.transitions_per_tx;  // identical across reps
    }
    double step_gain = i == 0 ? 1.0 : tps[i] / tps[i - 1];
    std::printf("%-26s %10.1f %11.2fx %11.2fx %10.1f %10s\n", kSteps[i].label,
                tps[i], step_gain, tps[i] / tps[0], trans[i],
                kSteps[i].paper_gain);
    std::fflush(stdout);
  }

  std::printf("\nshape checks (paper Figure 12):\n");
  double g1 = tps[1] / tps[0];
  double g2 = tps[2] / tps[1];
  double g3 = tps[3] / tps[2];
  double g4 = tps[4] / tps[3];
  std::printf("  OPT1 gives a significant gain (>1.2x): %s (%.2fx, paper ~2x)\n",
              g1 > 1.2 ? "yes" : "NO", g1);
  std::printf("  OPT2 gives a significant gain (>1.3x): %s (%.2fx, paper ~2.5x)\n",
              g2 > 1.3 ? "yes" : "NO", g2);
  std::printf("  OPT3 gives a modest gain: %s (%.2fx, paper ~1.06x)\n",
              g3 > 1.0 ? "yes" : "NO", g3);
  double fusion_micro = VmFusionSpeedup();
  std::printf("  OPT4 end-to-end: %.2fx (noise-bound on this host); direct "
              "VM-level fusion speedup: %.2fx (paper ~1.17x)\n",
              g4, fusion_micro);
  // OPT5 is judged on the deterministic cost model, not wall time: the
  // batched journal must strictly cut enclave transitions per tx.
  bool opt5_fewer_transitions = trans[5] < trans[4];
  std::printf("  OPT5 cuts enclave transitions/tx: %s (%.1f -> %.1f)\n",
              opt5_fewer_transitions ? "yes" : "NO", trans[4], trans[5]);
  bool monotone = tps[1] > tps[0] && tps[2] > tps[1] && tps[3] >= tps[2] * 0.95 &&
                  tps[4] >= tps[3] * 0.75 && tps[5] >= tps[4] * 0.75;
  std::printf("  ladder is (near-)monotone: %s\n", monotone ? "yes" : "NO");
  bool ok = g1 > 1.2 && g2 > 1.3 && monotone && fusion_micro > 1.15 &&
            opt5_fewer_transitions;
  std::printf("overall: %s\n", ok ? "PASS" : "MISMATCH");
  confide::bench::DumpMetrics();
  return ok ? 0 : 1;
}
