/// \file bench_serialize.cpp
/// \brief Decode/encode throughput of the wire codecs, owning vs view.
///
/// Measures the three record shapes the hot path decodes most — public
/// transactions, receipts, and the ~1 KB ABS asset record (§6.1) — each
/// through the owning API (materializes every field: Deserialize /
/// field-copying FlatLite walk) and the zero-copy view API
/// (TransactionRef / ReceiptRef / FlatLiteView, fields alias the wire
/// buffer). The CI `perf-smoke` job runs this in Release and gates on the
/// checked-in thresholds (bench/serialize_perf_thresholds.json) via
/// tools/check_serialize_perf.py:
///
///   serialize.bench.tx.decode_speedup_milli        view/owning ops ×1000
///   serialize.bench.receipt.decode_speedup_milli
///   serialize.bench.abs.decode_speedup_milli
///   serialize.bench.<record>.{owning,view}_decode_ops_per_sec
///   serialize.bench.<record>.encode_ops_per_sec    (reported, not gated)
///
/// Env var CONFIDE_METRICS_OUT overrides the metrics.json path.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "chain/types.h"
#include "common/metrics.h"
#include "crypto/drbg.h"
#include "serialize/flatlite.h"
#include "workloads/workloads.h"

namespace confide::bench {
namespace {

constexpr size_t kRecords = 256;  // distinct records per shape
constexpr size_t kRounds = 2000;  // decode passes over the record set

struct PathResult {
  double ops_per_sec = 0;
  uint64_t checksum = 0;  // keeps the decodes observable
};

/// Times `decode_one` (wire -> per-record checksum contribution) over
/// kRounds passes of the record set.
template <typename Fn>
PathResult RunDecode(const std::vector<Bytes>& wires, Fn&& decode_one) {
  PathResult result;
  double seconds = TimeSeconds([&] {
    for (size_t round = 0; round < kRounds; ++round) {
      for (const Bytes& wire : wires) result.checksum += decode_one(wire);
    }
  });
  result.ops_per_sec =
      seconds == 0 ? 0 : double(kRounds * wires.size()) / seconds;
  return result;
}

uint64_t MustU64(const Result<uint64_t>& r) {
  if (!r.ok()) std::abort();
  return r.value();
}

// --- Record builders ---------------------------------------------------------

std::vector<Bytes> MakeTxWires() {
  crypto::Drbg rng(1001);
  crypto::KeyPair kp = crypto::GenerateKeyPair(&rng);
  std::vector<Bytes> wires;
  for (size_t i = 0; i < kRecords; ++i) {
    chain::Transaction tx;
    tx.type = chain::TxType::kPublic;
    tx.sender = kp.pub;
    tx.contract = chain::NamedAddress("bench-contract");
    tx.entry = "register_asset";
    // The §6.1 workload: an ~1 KB ABS asset record as the call payload.
    tx.input = workloads::MakeAbsAssetFlat(&rng, i);
    tx.nonce = i;
    tx.signature = *crypto::EcdsaSign(kp.priv, tx.SigningHash());
    wires.push_back(tx.Serialize());
  }
  return wires;
}

std::vector<Bytes> MakeReceiptWires() {
  crypto::Drbg rng(1002);
  std::vector<Bytes> wires;
  for (size_t i = 0; i < kRecords; ++i) {
    chain::Receipt receipt;
    crypto::Hash256 h = crypto::Sha256::Digest(rng.Generate(8));
    receipt.tx_hash = h;
    receipt.success = true;
    receipt.output = rng.Generate(1024);  // ~1 KB record echoed back (§6.1)
    receipt.logs.push_back(rng.Generate(48));
    receipt.logs.push_back(rng.Generate(48));
    receipt.gas_used = 21'000 + i;
    wires.push_back(receipt.Serialize());
  }
  return wires;
}

std::vector<Bytes> MakeAbsWires() {
  crypto::Drbg rng(1003);
  std::vector<Bytes> wires;
  for (size_t i = 0; i < kRecords; ++i) {
    wires.push_back(workloads::MakeAbsAssetFlat(&rng, i));
  }
  return wires;
}

// --- Decode paths ------------------------------------------------------------

/// The pre-zero-copy decode: build the RlpItem tree (one owning Bytes per
/// field plus the variant list nodes), then materialize the struct — what
/// Transaction::Deserialize did before the cursor API.
uint64_t DecodeTxOwning(const Bytes& wire) {
  auto item = serialize::RlpDecode(wire);
  if (!item.ok() || !item->is_list()) std::abort();
  const auto& f = item->list();
  if (f.size() != 7) std::abort();
  chain::Transaction tx;
  tx.type = chain::TxType(*f[0].AsU64());
  std::copy(f[1].bytes().begin(), f[1].bytes().end(), tx.sender.begin());
  std::copy(f[2].bytes().begin(), f[2].bytes().end(), tx.contract.begin());
  tx.entry.assign(f[3].bytes().begin(), f[3].bytes().end());
  tx.input = f[4].bytes();
  tx.nonce = *f[5].AsU64();
  std::copy(f[6].bytes().begin(), f[6].bytes().end(), tx.signature.begin());
  return tx.nonce + tx.input.size() + tx.entry.size();
}

uint64_t DecodeTxView(const Bytes& wire) {
  auto tx = chain::TransactionRef::Decode(wire);
  if (!tx.ok()) std::abort();
  return tx->nonce + tx->input.size() + tx->entry.size();
}

uint64_t DecodeReceiptOwning(const Bytes& wire) {
  auto item = serialize::RlpDecode(wire);
  if (!item.ok() || !item->is_list()) std::abort();
  const auto& f = item->list();
  if (f.size() != 6 || !f[4].is_list()) std::abort();
  chain::Receipt receipt;
  std::copy(f[0].bytes().begin(), f[0].bytes().end(), receipt.tx_hash.begin());
  receipt.success = *f[1].AsU64() != 0;
  receipt.status_message.assign(f[2].bytes().begin(), f[2].bytes().end());
  receipt.output = f[3].bytes();
  for (const auto& log : f[4].list()) receipt.logs.push_back(log.bytes());
  receipt.gas_used = *f[5].AsU64();
  return receipt.gas_used + receipt.output.size() + receipt.logs.size();
}

uint64_t DecodeReceiptView(const Bytes& wire) {
  auto receipt = chain::ReceiptRef::Decode(wire);
  if (!receipt.ok()) std::abort();
  return receipt->gas_used + receipt->output.size() + receipt->log_count;
}

/// The pre-zero-copy contract-side access pattern: every field of the
/// asset record materialized into an owning string/buffer.
uint64_t DecodeAbsOwning(const Bytes& wire) {
  auto view = serialize::FlatLiteView::Parse(wire);
  if (!view.ok()) std::abort();
  uint64_t sum = 0;
  for (uint32_t field : {0u, 1u, 2u, 3u, 7u, 8u}) {
    std::string s(*view->GetString(field));
    sum += s.size();
  }
  sum += MustU64(view->GetU64(4)) + MustU64(view->GetU64(5)) +
         MustU64(view->GetU64(6));
  Bytes blob = ToBytes(*view->GetBytes(9));
  return sum + blob.size();
}

uint64_t DecodeAbsView(const Bytes& wire) {
  auto view = serialize::FlatLiteView::Parse(wire);
  if (!view.ok()) std::abort();
  uint64_t sum = 0;
  for (uint32_t field : {0u, 1u, 2u, 3u, 7u, 8u}) {
    sum += view->GetString(field)->size();
  }
  sum += MustU64(view->GetU64(4)) + MustU64(view->GetU64(5)) +
         MustU64(view->GetU64(6));
  return sum + view->GetBytes(9)->size();
}

// --- Encode throughput (reported, not gated) ---------------------------------

double EncodeOpsPerSec(const std::function<Bytes()>& encode_one) {
  constexpr size_t kOps = 200'000;
  size_t bytes = 0;
  double seconds = TimeSeconds([&] {
    for (size_t i = 0; i < kOps; ++i) bytes += encode_one().size();
  });
  if (bytes == 0) std::abort();
  return seconds == 0 ? 0 : double(kOps) / seconds;
}

// --- Driver ------------------------------------------------------------------

struct RecordReport {
  const char* name;
  PathResult owning;
  PathResult view;
  double encode_ops_per_sec;
};

void Record(const RecordReport& report) {
  double speedup = report.owning.ops_per_sec == 0
                       ? 0
                       : report.view.ops_per_sec / report.owning.ops_per_sec;
  std::string prefix = std::string("serialize.bench.") + report.name;
  metrics::GetGauge(prefix + ".owning_decode_ops_per_sec")
      ->Set(int64_t(report.owning.ops_per_sec));
  metrics::GetGauge(prefix + ".view_decode_ops_per_sec")
      ->Set(int64_t(report.view.ops_per_sec));
  metrics::GetGauge(prefix + ".decode_speedup_milli")
      ->Set(int64_t(speedup * 1000));
  metrics::GetGauge(prefix + ".encode_ops_per_sec")
      ->Set(int64_t(report.encode_ops_per_sec));
  std::printf("%-8s decode owning %10.0f ops/s  view %10.0f ops/s  "
              "speedup %5.2fx  encode %10.0f ops/s\n",
              report.name, report.owning.ops_per_sec, report.view.ops_per_sec,
              speedup, report.encode_ops_per_sec);
  if (report.owning.checksum != report.view.checksum) {
    std::fprintf(stderr, "%s: owning/view checksum mismatch\n", report.name);
    std::abort();
  }
}

}  // namespace
}  // namespace confide::bench

int main() {
  using namespace confide;
  using namespace confide::bench;

  std::printf("bench_serialize: %zu records x %zu rounds per path\n", kRecords,
              kRounds);

  std::vector<Bytes> tx_wires = MakeTxWires();
  std::vector<Bytes> receipt_wires = MakeReceiptWires();
  std::vector<Bytes> abs_wires = MakeAbsWires();

  crypto::Drbg encode_rng(1004);
  chain::Transaction sample_tx =
      *chain::Transaction::Deserialize(tx_wires[0]);
  chain::Receipt sample_receipt =
      *chain::Receipt::Deserialize(receipt_wires[0]);

  Record({"tx", RunDecode(tx_wires, DecodeTxOwning),
          RunDecode(tx_wires, DecodeTxView),
          EncodeOpsPerSec([&] { return sample_tx.Serialize(); })});
  Record({"receipt", RunDecode(receipt_wires, DecodeReceiptOwning),
          RunDecode(receipt_wires, DecodeReceiptView),
          EncodeOpsPerSec([&] { return sample_receipt.Serialize(); })});
  Record({"abs", RunDecode(abs_wires, DecodeAbsOwning),
          RunDecode(abs_wires, DecodeAbsView),
          EncodeOpsPerSec([&] { return workloads::MakeAbsAssetFlat(&encode_rng, 7); })});

  DumpMetrics("metrics.json");
  return 0;
}
