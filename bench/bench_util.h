/// \file bench_util.h
/// \brief Shared harness helpers for the experiment benchmarks.

#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "confide/system.h"
#include "lang/compiler.h"
#include "serialize/rlp.h"
#include "workloads/workloads.h"

namespace confide::bench {

inline Bytes DeployPayload(chain::VmKind vm, const Bytes& code) {
  std::vector<serialize::RlpItem> items;
  items.push_back(serialize::RlpItem::U64(uint64_t(vm)));
  items.push_back(serialize::RlpItem(code));
  return serialize::RlpEncode(serialize::RlpItem::List(std::move(items)));
}

/// Wall-clock seconds for `fn`.
inline double TimeSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// CI knob: CONFIDE_PIPELINE_DEPTH overrides the block-pipeline depth of
/// every benchmark system (0 = serial lifecycle). Returns `fallback` when
/// the variable is unset or empty.
inline uint32_t PipelineDepthFromEnv(uint32_t fallback) {
  const char* env = std::getenv("CONFIDE_PIPELINE_DEPTH");
  if (env == nullptr || env[0] == '\0') return fallback;
  return uint32_t(std::strtoul(env, nullptr, 10));
}

/// Bootstraps a single-node system with the given options; aborts on error.
/// Honors CONFIDE_PIPELINE_DEPTH unless `honor_env` is false (benches that
/// compare fixed depths against each other pass false).
inline std::unique_ptr<core::ConfideSystem> MustBootstrap(core::SystemOptions options,
                                                          bool honor_env = true) {
  if (honor_env) options.pipeline_depth = PipelineDepthFromEnv(options.pipeline_depth);
  auto sys = core::ConfideSystem::BootstrapFirst(options);
  if (!sys.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n", sys.status().ToString().c_str());
    std::abort();
  }
  return std::move(*sys);
}

/// Deploys CCL source at a named address through `engine_conf ?
/// confidential : public` path; aborts on error.
inline void MustDeploy(core::ConfideSystem* sys, core::Client* client,
                       const std::string& name, const char* source,
                       bool confidential, lang::VmTarget target = lang::VmTarget::kCvm) {
  auto code = lang::Compile(source, target);
  if (!code.ok()) {
    std::fprintf(stderr, "compile %s: %s\n", name.c_str(),
                 code.status().ToString().c_str());
    std::abort();
  }
  chain::VmKind vm = target == lang::VmTarget::kCvm ? chain::VmKind::kCvm
                                                    : chain::VmKind::kEvm;
  chain::Transaction tx;
  if (confidential) {
    auto sub = client->MakeConfidentialTx(chain::NamedAddress(name), "__deploy__",
                                          DeployPayload(vm, *code));
    tx = sub->tx;
  } else {
    tx = client->MakePublicTx(chain::NamedAddress(name), "__deploy__",
                              DeployPayload(vm, *code));
  }
  if (!sys->node()->SubmitTransaction(tx).ok()) std::abort();
  auto receipts = sys->RunToCompletion();
  if (!receipts.ok() || receipts->empty() || !(*receipts)[0].success) {
    std::fprintf(stderr, "deploy %s failed: %s\n", name.c_str(),
                 receipts.ok() && !receipts->empty()
                     ? (*receipts)[0].status_message.c_str()
                     : receipts.status().ToString().c_str());
    std::abort();
  }
}

/// Runs one confidential call through RunToCompletion; aborts on failure.
inline void MustCall(core::ConfideSystem* sys, core::Client* client,
                     const std::string& name, const std::string& entry,
                     Bytes input) {
  auto sub = client->MakeConfidentialTx(chain::NamedAddress(name), entry,
                                        std::move(input));
  if (!sub.ok() || !sys->node()->SubmitTransaction(sub->tx).ok()) std::abort();
  auto receipts = sys->RunToCompletion();
  if (!receipts.ok() || receipts->empty() || !(*receipts)[0].success) {
    std::fprintf(stderr, "call %s.%s failed: %s\n", name.c_str(), entry.c_str(),
                 receipts.ok() && !receipts->empty()
                     ? (*receipts)[0].status_message.c_str()
                     : receipts.status().ToString().c_str());
    std::abort();
  }
}

/// Dumps the process-wide metrics registry as JSON next to the bench
/// results so CI can archive counters alongside throughput numbers.
/// Env var CONFIDE_METRICS_OUT overrides the default path.
inline void DumpMetrics(const std::string& default_path = "metrics.json") {
  const char* env = std::getenv("CONFIDE_METRICS_OUT");
  std::string path = (env != nullptr && env[0] != '\0') ? env : default_path;
  std::string json = metrics::MetricsRegistry::Global().Snapshot().ToJson();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "metrics: cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::fprintf(stderr, "metrics: wrote %s (%zu bytes)\n", path.c_str(),
               json.size() + 1);
}

}  // namespace confide::bench
