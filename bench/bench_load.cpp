/// \file bench_load.cpp
/// \brief Open-loop load driver for a real `confided` cluster behind the
/// HTTP gateway (EXPERIMENTS.md §Cluster load has the runbook).
///
/// Unlike the in-process benches, this drives a *deployment*: it builds
/// signed transactions client-side (confidential envelopes sealed
/// against pk_tx), POSTs them to the gateway on a Poisson arrival
/// schedule, and measures open-loop latency — from each request's
/// *scheduled* arrival to its gateway response, so queueing delay under
/// saturation is part of the number instead of being hidden by
/// closed-loop self-throttling.
///
/// The sweep walks the `--rps` steps, recording per-step p50/p95/p99
/// into `bench.load.rps<N>.latency_ns` registry histograms and exact
/// percentiles + max sustained RPS as gauges, then waits for the
/// cluster to drain and asserts every node converged to the same
/// height and tip hash. A sample of confidential receipts is fetched
/// and opened with the client-retained k_tx to prove the confidential
/// path really executed. Metrics land in metrics.json
/// (CONFIDE_METRICS_OUT overrides the path).
///
/// The driver derives the consortium public key by bootstrapping a
/// throwaway local system from `--seed`, which must match the cluster's
/// seed (key derivation is a pure function of the seed — system.h).
///
/// Flags (--key=value; env fallback in parentheses):
///   --gateway=http://H:P   (CONFIDE_GATEWAY)          required
///   --seed=N               (CONFIDE_LOAD_SEED)        default 7
///   --rps=50,100,200       (CONFIDE_LOAD_RPS)         sweep steps
///   --duration-s=5         (CONFIDE_LOAD_DURATION_S)  per step
///   --confidential-pct=50  (CONFIDE_LOAD_CONF_PCT)    TYPE=1 share
///   --workers=8            (CONFIDE_LOAD_WORKERS)     sender threads
///   --contracts=bench      (CONFIDE_LOAD_CONTRACTS)   contract name prefix;
///                          a second run against the same cluster needs a
///                          fresh prefix (re-deploying an existing address
///                          is rejected) — the failover smoke uses bench2

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <thread>

#include "bench/bench_util.h"
#include "net/http.h"
#include "serialize/json.h"

using namespace confide;
using namespace confide::bench;

namespace {

struct LoadConfig {
  std::string gateway;
  uint64_t seed = 7;
  std::vector<uint64_t> rps_steps = {50, 100, 200};
  uint64_t duration_s = 5;
  uint64_t confidential_pct = 50;
  uint64_t workers = 8;
  std::string contracts = "bench";
};

std::string FlagOrEnv(int argc, char** argv, const std::string& flag,
                      const char* env, const std::string& fallback) {
  const std::string prefix = "--" + flag + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  const char* from_env = std::getenv(env);
  return (from_env != nullptr && from_env[0] != '\0') ? from_env : fallback;
}

LoadConfig ParseConfig(int argc, char** argv) {
  LoadConfig cfg;
  cfg.gateway = FlagOrEnv(argc, argv, "gateway", "CONFIDE_GATEWAY", "");
  cfg.seed = std::strtoull(
      FlagOrEnv(argc, argv, "seed", "CONFIDE_LOAD_SEED", "7").c_str(), nullptr, 10);
  cfg.duration_s = std::strtoull(
      FlagOrEnv(argc, argv, "duration-s", "CONFIDE_LOAD_DURATION_S", "5").c_str(),
      nullptr, 10);
  cfg.confidential_pct = std::strtoull(
      FlagOrEnv(argc, argv, "confidential-pct", "CONFIDE_LOAD_CONF_PCT", "50").c_str(),
      nullptr, 10);
  cfg.workers = std::strtoull(
      FlagOrEnv(argc, argv, "workers", "CONFIDE_LOAD_WORKERS", "8").c_str(),
      nullptr, 10);
  cfg.contracts =
      FlagOrEnv(argc, argv, "contracts", "CONFIDE_LOAD_CONTRACTS", "bench");
  const std::string rps = FlagOrEnv(argc, argv, "rps", "CONFIDE_LOAD_RPS", "50,100,200");
  cfg.rps_steps.clear();
  size_t start = 0;
  while (start < rps.size()) {
    size_t comma = rps.find(',', start);
    if (comma == std::string::npos) comma = rps.size();
    cfg.rps_steps.push_back(
        std::strtoull(rps.substr(start, comma - start).c_str(), nullptr, 10));
    start = comma + 1;
  }
  return cfg;
}

uint64_t NowNs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

serialize::JsonValue MustParseJson(const std::string& text, const char* what) {
  auto doc = serialize::JsonParse(text);
  if (!doc.ok()) {
    std::fprintf(stderr, "bench_load: %s is not JSON: %s\n", what, text.c_str());
    std::exit(1);
  }
  return std::move(*doc);
}

net::HttpClient MustConnect(const std::string& gateway) {
  auto client = net::HttpClient::Connect(gateway);
  if (!client.ok()) {
    std::fprintf(stderr, "bench_load: %s\n", client.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*client);
}

/// POSTs one transaction; returns the accepted tx hash or exits.
std::string MustSubmit(net::HttpClient* http, const chain::Transaction& tx) {
  serialize::JsonValue body{serialize::JsonValue::Object{}};
  body.Set("tx", HexEncode(ByteView(tx.Serialize())));
  auto resp = http->Post("/v1/tx", serialize::JsonWrite(body));
  if (!resp.ok() || resp->status != 202) {
    std::fprintf(stderr, "bench_load: submit failed: %s\n",
                 resp.ok() ? resp->body.c_str() : resp.status().ToString().c_str());
    std::exit(1);
  }
  auto doc = MustParseJson(resp->body, "submit reply");
  return doc.Find("tx_hash")->as_string();
}

/// Polls /v1/receipt/<hash> until found; returns the receipt wire bytes.
Bytes MustAwaitReceipt(net::HttpClient* http, const std::string& tx_hash_hex,
                       uint64_t timeout_ms = 30'000) {
  const uint64_t deadline = NowNs() + timeout_ms * 1'000'000;
  while (NowNs() < deadline) {
    auto resp = http->Get("/v1/receipt/" + tx_hash_hex);
    if (resp.ok() && resp->status == 200) {
      auto doc = MustParseJson(resp->body, "receipt reply");
      auto wire = HexDecode(doc.Find("receipt_wire")->as_string());
      if (wire.ok()) return *wire;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "bench_load: receipt %s never landed\n", tx_hash_hex.c_str());
  std::exit(1);
}

struct NodeStatus {
  uint64_t height = 0;
  std::string tip_hash;
  uint64_t pool = 0;
};

std::vector<NodeStatus> FetchStatus(net::HttpClient* http) {
  auto resp = http->Get("/v1/status");
  if (!resp.ok() || resp->status != 200) return {};
  auto doc = MustParseJson(resp->body, "status reply");
  std::vector<NodeStatus> out;
  for (const auto& node : doc.Find("nodes")->as_array()) {
    const serialize::JsonValue* reachable = node.Find("reachable");
    if (reachable == nullptr || !reachable->as_bool()) continue;
    NodeStatus s;
    s.height = uint64_t(node.Find("height")->as_int());
    s.tip_hash = node.Find("tip_hash")->as_string();
    s.pool = uint64_t(node.Find("verified_pool")->as_int()) +
             uint64_t(node.Find("unverified_pool")->as_int());
    out.push_back(std::move(s));
  }
  return out;
}

/// Waits until pools drain and every node reports the same height twice
/// in a row; returns the converged statuses.
std::vector<NodeStatus> AwaitDrain(net::HttpClient* http, size_t expect_nodes,
                                   uint64_t timeout_ms = 60'000) {
  const uint64_t deadline = NowNs() + timeout_ms * 1'000'000;
  uint64_t last_height = 0;
  while (NowNs() < deadline) {
    std::vector<NodeStatus> statuses = FetchStatus(http);
    if (statuses.size() == expect_nodes) {
      bool drained = true;
      uint64_t min_height = UINT64_MAX, max_height = 0;
      for (const NodeStatus& s : statuses) {
        drained = drained && s.pool == 0;
        min_height = std::min(min_height, s.height);
        max_height = std::max(max_height, s.height);
      }
      if (drained && min_height == max_height && max_height == last_height) {
        return statuses;
      }
      last_height = max_height;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "bench_load: cluster never drained\n");
  std::exit(1);
}

uint64_t Percentile(std::vector<uint64_t>* sorted_ns, double p) {
  if (sorted_ns->empty()) return 0;
  size_t idx = size_t(p * double(sorted_ns->size() - 1));
  return (*sorted_ns)[idx];
}

/// One pre-built request on the arrival schedule.
struct Arrival {
  uint64_t at_ns = 0;  ///< offset from step start
  std::string body;    ///< POST body
  std::string tx_hash_hex;
  bool confidential = false;
};

struct StepResult {
  uint64_t target_rps = 0;
  double achieved_rps = 0;
  uint64_t sent = 0;
  uint64_t errors = 0;
  uint64_t p50_ns = 0, p95_ns = 0, p99_ns = 0;
  bool sustained = false;
};

}  // namespace

int main(int argc, char** argv) {
  LoadConfig cfg = ParseConfig(argc, argv);
  if (cfg.gateway.empty()) {
    std::fprintf(stderr,
                 "bench_load: --gateway=http://host:port (or CONFIDE_GATEWAY) "
                 "is required\n");
    return 2;
  }

  // Local throwaway bootstrap: same seed → same pk_tx as the cluster.
  core::SystemOptions sys_options;
  sys_options.seed = cfg.seed;
  auto local = MustBootstrap(sys_options, /*honor_env=*/false);
  core::Client client(cfg.seed + 1000, local->pk_tx());

  net::HttpClient http = MustConnect(cfg.gateway);

  // Deploy the synthetic contract through both engines: a public copy
  // and a confidential copy (separate engine states, separate address).
  auto code = lang::Compile(workloads::SyntheticContractSource(),
                            lang::VmTarget::kCvm);
  if (!code.ok()) {
    std::fprintf(stderr, "bench_load: compile: %s\n",
                 code.status().ToString().c_str());
    return 1;
  }
  const Bytes deploy_payload = DeployPayload(chain::VmKind::kCvm, *code);
  const chain::Address pub_addr = chain::NamedAddress(cfg.contracts + ".pub");
  const chain::Address conf_addr = chain::NamedAddress(cfg.contracts + ".conf");
  {
    chain::Transaction tx =
        client.MakePublicTx(pub_addr, "__deploy__", deploy_payload);
    MustAwaitReceipt(&http, MustSubmit(&http, tx));
  }
  {
    auto sub = client.MakeConfidentialTx(conf_addr, "__deploy__", deploy_payload);
    if (!sub.ok()) return 1;
    const Bytes wire = MustAwaitReceipt(&http, MustSubmit(&http, sub->tx));
    // The stored receipt's `output` is the T-Protocol sealed blob.
    auto receipt = chain::Receipt::Deserialize(wire);
    auto opened = receipt.ok()
                      ? core::Client::OpenSealedReceipt(sub->k_tx, receipt->output)
                      : receipt.status();
    if (!opened.ok() || !opened->success) {
      std::fprintf(stderr, "bench_load: confidential deploy receipt bad: %s\n",
                   opened.ok() ? opened->status_message.c_str()
                               : opened.status().ToString().c_str());
      if (receipt.ok()) {
        std::fprintf(stderr,
                     "bench_load: outer receipt success=%d msg='%s' output=%zuB\n",
                     int(receipt->success), receipt->status_message.c_str(),
                     receipt->output.size());
      }
      return 1;
    }
  }
  std::printf("bench_load: contracts deployed, sweeping %zu rps steps\n",
              cfg.rps_steps.size());

  crypto::Drbg rng(cfg.seed ^ 0xb33fu);
  std::vector<StepResult> results;
  uint64_t max_sustained = 0;
  // Confidential submissions sampled for end-of-run receipt verification.
  std::vector<std::pair<std::string, core::TxKey>> conf_samples;

  for (uint64_t target : cfg.rps_steps) {
    // Pre-build the Poisson schedule and every request body: tx signing
    // is client work, not gateway latency, so it stays off the clock.
    std::vector<Arrival> arrivals;
    const uint64_t horizon_ns = cfg.duration_s * 1'000'000'000ull;
    uint64_t t = 0;
    while (true) {
      const double u =
          (double(rng.NextBounded(1'000'000'000)) + 1.0) / 1'000'000'001.0;
      t += uint64_t(-std::log(u) / double(target) * 1e9);
      if (t >= horizon_ns) break;
      Arrival a;
      a.at_ns = t;
      a.confidential = rng.NextBounded(100) < cfg.confidential_pct;
      const Bytes input = workloads::MakeStringConcatInput(&rng);
      chain::Transaction tx;
      if (a.confidential) {
        auto sub = client.MakeConfidentialTx(conf_addr, "string_concat", input);
        if (!sub.ok()) return 1;
        tx = sub->tx;
        a.tx_hash_hex = HexEncode(ByteView(tx.Hash().data(), 32));
        if (conf_samples.size() < 16) {
          conf_samples.emplace_back(a.tx_hash_hex, sub->k_tx);
        }
      } else {
        tx = client.MakePublicTx(pub_addr, "string_concat", input);
        a.tx_hash_hex = HexEncode(ByteView(tx.Hash().data(), 32));
      }
      serialize::JsonValue body{serialize::JsonValue::Object{}};
      body.Set("tx", HexEncode(ByteView(tx.Serialize())));
      a.body = serialize::JsonWrite(body);
      arrivals.push_back(std::move(a));
    }

    metrics::Histogram* latency = metrics::GetHistogram(
        "bench.load.rps" + std::to_string(target) + ".latency_ns");
    metrics::Counter* sent_ctr = metrics::GetCounter("bench.load.submitted.count");
    metrics::Counter* err_ctr = metrics::GetCounter("bench.load.error.count");

    std::atomic<size_t> next{0};
    std::atomic<uint64_t> errors{0};
    std::vector<std::vector<uint64_t>> worker_lat(cfg.workers);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    for (uint64_t w = 0; w < cfg.workers; ++w) {
      workers.emplace_back([&, w] {
        net::HttpClient worker_http = MustConnect(cfg.gateway);
        while (true) {
          const size_t i = next.fetch_add(1);
          if (i >= arrivals.size()) break;
          const Arrival& a = arrivals[i];
          std::this_thread::sleep_until(start +
                                        std::chrono::nanoseconds(a.at_ns));
          auto resp = worker_http.Post("/v1/tx", a.body);
          const auto done = std::chrono::steady_clock::now();
          const uint64_t lat_ns = uint64_t(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  done - start - std::chrono::nanoseconds(a.at_ns))
                  .count());
          if (!resp.ok() || resp->status != 202) {
            errors.fetch_add(1);
            err_ctr->Increment();
            continue;
          }
          latency->Observe(lat_ns);
          sent_ctr->Increment();
          worker_lat[w].push_back(lat_ns);
        }
      });
    }
    for (auto& th : workers) th.join();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    std::vector<uint64_t> all_lat;
    for (auto& v : worker_lat) {
      all_lat.insert(all_lat.end(), v.begin(), v.end());
    }
    std::sort(all_lat.begin(), all_lat.end());

    StepResult r;
    r.target_rps = target;
    r.sent = all_lat.size();
    r.errors = errors.load();
    r.achieved_rps = elapsed > 0 ? double(r.sent) / elapsed : 0;
    r.p50_ns = Percentile(&all_lat, 0.50);
    r.p95_ns = Percentile(&all_lat, 0.95);
    r.p99_ns = Percentile(&all_lat, 0.99);
    r.sustained = r.achieved_rps >= 0.95 * double(target) &&
                  r.errors * 100 < std::max<uint64_t>(r.sent, 1);
    if (r.sustained) max_sustained = std::max(max_sustained, target);
    results.push_back(r);

    const std::string prefix = "bench.load.rps" + std::to_string(target);
    metrics::GetGauge(prefix + ".p50_ns")->Set(int64_t(r.p50_ns));
    metrics::GetGauge(prefix + ".p95_ns")->Set(int64_t(r.p95_ns));
    metrics::GetGauge(prefix + ".p99_ns")->Set(int64_t(r.p99_ns));
    metrics::GetGauge(prefix + ".achieved_rps")->Set(int64_t(r.achieved_rps));
    std::printf(
        "bench_load: rps %llu -> achieved %.1f, sent %llu, errors %llu, "
        "p50 %.2fms p95 %.2fms p99 %.2fms%s\n",
        (unsigned long long)target, r.achieved_rps, (unsigned long long)r.sent,
        (unsigned long long)r.errors, double(r.p50_ns) / 1e6,
        double(r.p95_ns) / 1e6, double(r.p99_ns) / 1e6,
        r.sustained ? "" : "  [NOT SUSTAINED]");

    // Let the cluster drain between steps so backlog from an oversats
    // step does not bleed into the next one's latency.
    AwaitDrain(&http, FetchStatus(&http).size());
  }
  metrics::GetGauge("bench.load.max_sustained_rps")->Set(int64_t(max_sustained));

  // Convergence: every node must report the same height and tip hash.
  std::vector<NodeStatus> statuses = AwaitDrain(&http, FetchStatus(&http).size());
  for (const NodeStatus& s : statuses) {
    if (s.height != statuses[0].height || s.tip_hash != statuses[0].tip_hash) {
      std::fprintf(stderr, "bench_load: cluster diverged (height %llu vs %llu)\n",
                   (unsigned long long)s.height,
                   (unsigned long long)statuses[0].height);
      return 1;
    }
  }
  std::printf("bench_load: %zu nodes converged at height %llu tip %s\n",
              statuses.size(), (unsigned long long)statuses[0].height,
              statuses[0].tip_hash.substr(0, 16).c_str());

  // Prove the confidential path: open sampled sealed receipts with the
  // client-retained k_tx.
  uint64_t verified = 0;
  for (const auto& [hash_hex, k_tx] : conf_samples) {
    const Bytes wire = MustAwaitReceipt(&http, hash_hex);
    auto receipt = chain::Receipt::Deserialize(wire);
    auto opened = receipt.ok()
                      ? core::Client::OpenSealedReceipt(k_tx, receipt->output)
                      : receipt.status();
    if (!opened.ok() || !opened->success) {
      std::fprintf(stderr, "bench_load: confidential receipt %s bad\n",
                   hash_hex.c_str());
      return 1;
    }
    ++verified;
  }
  metrics::GetCounter("bench.load.receipt.verified.count")->Increment(verified);
  std::printf("bench_load: %llu confidential receipts opened and verified\n",
              (unsigned long long)verified);

  DumpMetrics("metrics.json");
  if (max_sustained == 0) {
    std::fprintf(stderr, "bench_load: no rps step was sustained\n");
    return 1;
  }
  return 0;
}
