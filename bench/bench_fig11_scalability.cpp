/// \file bench_fig11_scalability.cpp
/// \brief Reproduces **Figure 11**: ABS-workload throughput for
/// confidential transactions as the consortium scales.
///
/// Sweeps: nodes ∈ {4,8,12,16,20} × execution threads ∈ {1,4,6} ×
/// network ∈ {single zone, two zones (Shanghai/Beijing 1:2)}.
///
/// Paper shape: throughput stays flat as nodes grow within one zone;
/// 4-way parallel execution is ~2× over 1-way and 6-way adds little
/// more; the two-zone deployment degrades with node count (WAN consensus
/// latency).
///
/// Per-block time = k-way execution makespan + PBFT ordering latency
/// (message-level DES with sender-NIC serialization) + the ~6 ms
/// cloud-SSD block write (§6.4).
///
/// Substitution note: this host has a single CPU core, so k-way
/// *execution* parallelism cannot be observed as wall time. Each
/// transaction is executed (really, through the enclave) and timed
/// individually; the block's k-way makespan is then computed by LPT
/// scheduling of the conflict groups the engine reports — asserted below
/// to be exactly the groups the parallel BlockExecutor schedules.
///
/// `--real-threads` instead measures the *pipelined block lifecycle* as
/// wall time: two identically-seeded systems run the same workload, one
/// with the serial lifecycle and one with pipeline_depth=3 on 4 workers,
/// both paying a real ~6 ms commit wait plus a WAL fsync per block. The
/// pipeline overlaps pre-verify/execute/commit across consecutive
/// blocks, so the measured speedup is reported next to the stage-
/// makespan (LPT-style) prediction, and the post-run state roots of the
/// two systems are asserted identical.

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <queue>

#include "bench/bench_util.h"
#include "chain/executor.h"
#include "chain/pbft.h"

using namespace confide;
using namespace confide::bench;

namespace {

constexpr int kAbsInstances = 8;   // spread txs across contracts so the
                                   // conflict-key scheduler can go wide
constexpr int kTxTotal = 96;
constexpr size_t kBlockBytes = 48 * 1024;

// Longest-processing-time makespan of group times on k workers.
double Makespan(const std::map<uint64_t, double>& group_seconds, uint32_t k) {
  std::vector<double> groups;
  for (const auto& [key, secs] : group_seconds) groups.push_back(secs);
  std::sort(groups.rbegin(), groups.rend());
  std::priority_queue<double, std::vector<double>, std::greater<double>> workers;
  for (uint32_t i = 0; i < k; ++i) workers.push(0.0);
  for (double g : groups) {
    double load = workers.top();
    workers.pop();
    workers.push(load + g);
  }
  double makespan = 0;
  while (!workers.empty()) {
    makespan = workers.top();
    workers.pop();
  }
  return makespan;
}

/// The byte-budget block partition ProposeBlock (and pipeline stage 2)
/// uses: first tx always accepted, then until the budget would overflow.
std::vector<std::vector<size_t>> PartitionIntoBlocks(
    const std::vector<chain::Transaction>& txs, size_t block_bytes) {
  std::vector<std::vector<size_t>> blocks;
  size_t pos = 0;
  while (pos < txs.size()) {
    std::vector<size_t> block;
    size_t bytes = 0;
    while (pos < txs.size()) {
      size_t tx_bytes = txs[pos].Serialize().size();
      if (!block.empty() && bytes + tx_bytes > block_bytes) break;
      bytes += tx_bytes;
      block.push_back(pos);
      ++pos;
    }
    blocks.push_back(std::move(block));
  }
  return blocks;
}

double RunConfig(core::ConfideSystem* sys, core::Client* client, size_t n_nodes,
                 uint32_t threads, bool two_zone) {
  crypto::Drbg rng(7);
  std::vector<chain::Transaction> txs;
  for (int i = 0; i < kTxTotal; ++i) {
    std::string name = "abs-" + std::to_string(i % kAbsInstances);
    auto sub = client->MakeConfidentialTx(chain::NamedAddress(name), "abs_transfer",
                                          workloads::MakeAbsAssetFlat(&rng, i));
    txs.push_back(sub->tx);
  }
  auto* engine = sys->confidential_engine();
  for (const chain::Transaction& tx : txs) (void)engine->PreVerify(tx);

  chain::EngineSet engines;
  engines.public_engine = sys->public_engine();
  engines.confidential_engine = engine;

  chain::NetworkSim net = two_zone ? chain::NetworkSim::TwoZone(n_nodes)
                                   : chain::NetworkSim::SingleZone(n_nodes);

  // Partition into blocks by byte budget, as ProposeBlock would.
  chain::CommitStateDb* state = sys->node()->state();
  double total_seconds = 0;
  size_t executed = 0;
  for (const std::vector<size_t>& block : PartitionIntoBlocks(txs, kBlockBytes)) {
    // The LPT makespan below schedules conflict *groups*; assert they are
    // exactly the groups the real parallel executor would schedule for
    // this block (they can drift apart if the engine's conflict-key cache
    // and the executor's grouping disagree).
    std::vector<chain::Transaction> block_txs;
    for (size_t index : block) block_txs.push_back(txs[index]);
    auto executor_groups =
        chain::BlockExecutor::GroupByConflictKey(block_txs, engines);
    if (!executor_groups.ok()) std::abort();

    size_t block_bytes = 0;
    std::map<uint64_t, double> group_seconds;
    std::map<uint64_t, std::vector<size_t>> simulated_groups;
    for (size_t i = 0; i < block.size(); ++i) {
      const chain::Transaction& tx = txs[block[i]];
      block_bytes += tx.Serialize().size();
      // Query before Execute, like BlockExecutor: the engine evicts the
      // cached conflict key on execution (bounded residency).
      uint64_t group = engine->ConflictKey(tx);
      simulated_groups[group].push_back(i);
      double secs = TimeSeconds([&] {
        auto receipt = engine->Execute(tx, state);
        if (!receipt.ok() || !receipt->success) std::abort();
      });
      group_seconds[group] += secs;
      ++executed;
    }
    if (simulated_groups != *executor_groups) {
      std::printf("MISMATCH: LPT-simulated conflict grouping differs from "
                  "BlockExecutor::GroupByConflictKey for a %zu-tx block\n",
                  block.size());
      std::exit(1);
    }
    (void)state->Commit();
    double exec_seconds = Makespan(group_seconds, threads);
    uint64_t consensus_ns =
        chain::SimulatePbftRound(net, 0, block_bytes).quorum_commit_ns;
    total_seconds += exec_seconds + double(consensus_ns) / 1e9 + 0.006;
  }
  return double(executed) / total_seconds;
}

int RunSimulated() {
  std::printf("== Figure 11: scalability with the ABS workload (tx/s) ==\n");
  std::printf("%d confidential ABS transfers per config; per-block time = "
              "exec makespan(k) + PBFT(DES) + 6ms SSD write\n\n",
              kTxTotal);

  // One system serves all configs (execution cost does not depend on the
  // simulated cluster size; consensus does).
  core::SystemOptions options;
  options.seed = 40'000;
  options.block_max_bytes = kBlockBytes;
  // Figure 11 is the *paper's* system, which predates OPT5: with batched
  // state ocalls on, per-tx execution shrinks until the fixed per-block
  // costs (PBFT + SSD write) dominate and k-way speedup flattens out.
  // The OPT5 rung is measured separately by bench_fig12_abs_opts.
  options.cs.enable_ocall_batching = false;
  auto sys = MustBootstrap(options);
  core::Client client(5, sys->pk_tx());
  for (int i = 0; i < kAbsInstances; ++i) {
    std::string name = "abs-" + std::to_string(i);
    MustDeploy(sys.get(), &client, name, workloads::AbsContractSource(), true);
    MustCall(sys.get(), &client, name, "abs_seed_whitelist", Bytes{});
  }

  const size_t kNodes[] = {4, 8, 12, 16, 20};
  struct Series {
    const char* label;
    uint32_t threads;
    bool two_zone;
  };
  const Series kSeries[] = {
      {"1-thread", 1, false},
      {"4-thread", 4, false},
      {"6-thread", 6, false},
      {"2-zones(4thr)", 4, true},
  };

  std::printf("%-15s", "nodes");
  for (size_t n : kNodes) std::printf("%10zu", n);
  std::printf("\n");

  double tps[4][5];
  for (size_t s = 0; s < 4; ++s) {
    std::printf("%-15s", kSeries[s].label);
    for (size_t ni = 0; ni < 5; ++ni) {
      tps[s][ni] = RunConfig(sys.get(), &client, kNodes[ni], kSeries[s].threads,
                             kSeries[s].two_zone);
      std::printf("%10.1f", tps[s][ni]);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nshape checks (paper Figure 11):\n");
  bool flat = true;
  for (size_t s = 0; s < 3; ++s) {
    double lo = tps[s][0], hi = tps[s][0];
    for (size_t ni = 1; ni < 5; ++ni) {
      lo = std::min(lo, tps[s][ni]);
      hi = std::max(hi, tps[s][ni]);
    }
    bool this_flat = hi / lo < 1.6;
    std::printf("  %-15s flat across 4..20 nodes: %s (max/min %.2f)\n",
                kSeries[s].label, this_flat ? "yes" : "NO", hi / lo);
    flat = flat && this_flat;
  }
  double speedup4 = tps[1][0] / tps[0][0];
  double speedup6 = tps[2][0] / tps[1][0];
  std::printf("  4-way vs 1-way speedup: %.2fx (paper: ~2x)\n", speedup4);
  std::printf("  6-way vs 4-way speedup: %.2fx (paper: ~1x, no further gain)\n",
              speedup6);
  bool zone_degrades = tps[3][4] < tps[3][0] * 0.9 && tps[3][4] < tps[1][4];
  std::printf("  two-zone degrades with node count and vs single zone: %s "
              "(%.1f -> %.1f tx/s)\n",
              zone_degrades ? "yes" : "NO", tps[3][0], tps[3][4]);

  bool ok = flat && speedup4 > 1.4 && speedup6 < 1.35 && zone_degrades;
  std::printf("overall: %s\n", ok ? "PASS" : "MISMATCH");
  confide::bench::DumpMetrics();
  return ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --real-threads: measured pipelined lifecycle vs serial, wall clock.
// ---------------------------------------------------------------------------

constexpr uint64_t kCommitLatencyNs = 6'000'000;  // paper §6.4 cloud-SSD write

std::string MakeTempDir(const char* tag) {
  std::string tmpl = std::string("/tmp/fig11-") + tag + "-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) std::abort();
  return std::string(buf.data());
}

struct RealRun {
  double seconds = 0;
  double preverify_seconds = 0;  // serial run only (from stage metrics)
  double execute_seconds = 0;
  crypto::Hash256 state_root{};
  uint64_t height = 0;
  size_t receipts = 0;
};

RealRun RunRealWorkload(uint32_t pipeline_depth, size_t block_bytes,
                        int tx_total, const std::string& wal_dir) {
  core::SystemOptions options;
  options.seed = 41'000;
  options.parallelism = 4;  // 4 pipeline workers
  options.pipeline_depth = pipeline_depth;
  options.block_max_bytes = block_bytes;
  options.cs.enable_ocall_batching = false;
  options.sync_commits = true;  // real WAL fsync per commit (group)
  options.commit_write_latency_ns = kCommitLatencyNs;
  options.state_wal_dir = wal_dir;
  // This mode compares fixed depths against each other, so the
  // CONFIDE_PIPELINE_DEPTH CI override must not apply.
  auto sys = MustBootstrap(options, /*honor_env=*/false);
  core::Client client(5, sys->pk_tx());
  for (int i = 0; i < kAbsInstances; ++i) {
    std::string name = "abs-" + std::to_string(i);
    MustDeploy(sys.get(), &client, name, workloads::AbsContractSource(), true);
    MustCall(sys.get(), &client, name, "abs_seed_whitelist", Bytes{});
  }

  crypto::Drbg rng(7);
  for (int i = 0; i < tx_total; ++i) {
    std::string name = "abs-" + std::to_string(i % kAbsInstances);
    auto sub = client.MakeConfidentialTx(chain::NamedAddress(name), "abs_transfer",
                                         workloads::MakeAbsAssetFlat(&rng, i));
    if (!sub.ok() || !sys->node()->SubmitTransaction(sub->tx).ok()) std::abort();
  }

  auto* preverify_hist =
      metrics::GetHistogram("chain.preverify.batch.latency_ns");
  auto* execute_hist = metrics::GetHistogram("chain.block.execute.latency_ns");
  uint64_t preverify_before = preverify_hist->sum();
  uint64_t execute_before = execute_hist->sum();

  RealRun run;
  run.seconds = TimeSeconds([&] {
    auto receipts = sys->RunToCompletion();
    if (!receipts.ok()) {
      std::fprintf(stderr, "real-threads run failed: %s\n",
                   receipts.status().ToString().c_str());
      std::abort();
    }
    run.receipts = receipts->size();
    for (const chain::Receipt& receipt : *receipts) {
      if (!receipt.success) std::abort();
    }
  });
  run.preverify_seconds = double(preverify_hist->sum() - preverify_before) / 1e9;
  run.execute_seconds = double(execute_hist->sum() - execute_before) / 1e9;
  run.state_root = sys->node()->state()->StateRoot();
  run.height = sys->node()->Height();
  return run;
}

int RunRealThreads() {
  std::printf("== Figure 11 (--real-threads): measured pipelined lifecycle ==\n");

  // Calibrate the block byte budget so one block's execution cost lands
  // near the ~6 ms commit wait — the regime where verify/execute/commit
  // overlap pays (a half-empty pipeline would only measure the bubble).
  double per_tx_secs;
  size_t tx_bytes;
  {
    core::SystemOptions options;
    options.seed = 41'000;
    options.cs.enable_ocall_batching = false;
    options.block_max_bytes = kBlockBytes;
    auto sys = MustBootstrap(options, /*honor_env=*/false);
    core::Client client(5, sys->pk_tx());
    MustDeploy(sys.get(), &client, "abs-0", workloads::AbsContractSource(), true);
    MustCall(sys.get(), &client, "abs-0", "abs_seed_whitelist", Bytes{});
    crypto::Drbg rng(7);
    constexpr int kSample = 8;
    double total = 0;
    tx_bytes = 0;
    for (int i = 0; i < kSample; ++i) {
      auto sub = client.MakeConfidentialTx(chain::NamedAddress("abs-0"),
                                           "abs_transfer",
                                           workloads::MakeAbsAssetFlat(&rng, i));
      if (!sub.ok()) std::abort();
      tx_bytes = std::max(tx_bytes, sub->tx.Serialize().size());
      auto* engine = sys->confidential_engine();
      // Time verify + execute together: both are CPU the pipeline must
      // overlap with the commit wait. The block budget is sized so a
      // block's CPU cost lands near *half* the commit latency: the wait
      // is charged once per coalesced commit group, so the serial
      // lifecycle pays it per block while the pipeline amortizes it —
      // small blocks are exactly where group commit earns its keep.
      total += TimeSeconds([&] {
        (void)engine->PreVerify(sub->tx);
        auto receipt = engine->Execute(sub->tx, sys->node()->state());
        if (!receipt.ok() || !receipt->success) std::abort();
      });
    }
    per_tx_secs = total / kSample;
  }
  size_t txs_per_block = std::clamp<size_t>(
      size_t(double(kCommitLatencyNs) / 2e9 / std::max(per_tx_secs, 1e-6)), 2, 48);
  size_t block_bytes = txs_per_block * (tx_bytes + 64);
  constexpr int kBlocks = 16;
  int tx_total = int(txs_per_block) * kBlocks;
  std::printf("calibration: %.2f ms/tx, %zu B/tx -> %zu txs/block x %d blocks "
              "(block budget %zu B)\n",
              per_tx_secs * 1e3, tx_bytes, txs_per_block, kBlocks, block_bytes);

  std::string serial_dir = MakeTempDir("serial");
  std::string pipe_dir = MakeTempDir("pipe");
  RealRun serial = RunRealWorkload(0, block_bytes, tx_total, serial_dir);
  RealRun piped = RunRealWorkload(3, block_bytes, tx_total, pipe_dir);

  double commit_secs =
      std::max(0.0, serial.seconds - serial.preverify_seconds - serial.execute_seconds);
  double bottleneck = std::max(
      {serial.preverify_seconds, serial.execute_seconds, commit_secs});
  double predicted = bottleneck > 0 ? serial.seconds / bottleneck : 1.0;
  double measured = piped.seconds > 0 ? serial.seconds / piped.seconds : 0.0;

  std::printf("\nserial   (depth 0): %7.1f ms  (%zu receipts, height %llu)\n",
              serial.seconds * 1e3, serial.receipts,
              (unsigned long long)serial.height);
  std::printf("pipelined(depth 3): %7.1f ms  (%zu receipts, height %llu)\n",
              piped.seconds * 1e3, piped.receipts,
              (unsigned long long)piped.height);
  std::printf("serial stage split: verify %.1f ms, execute %.1f ms, commit "
              "%.1f ms\n",
              serial.preverify_seconds * 1e3, serial.execute_seconds * 1e3,
              commit_secs * 1e3);
  std::printf("measured block-throughput speedup: %.2fx\n", measured);
  std::printf("stage-makespan (LPT bound) prediction: %.2fx\n", predicted);

  bool roots_equal = serial.state_root == piped.state_root;
  bool heights_equal = serial.height == piped.height;
  bool receipts_equal = serial.receipts == piped.receipts &&
                        serial.receipts == size_t(tx_total);
  std::printf("state roots identical: %s, heights identical: %s, receipts "
              "complete: %s\n",
              roots_equal ? "yes" : "NO", heights_equal ? "yes" : "NO",
              receipts_equal ? "yes" : "NO");

  bool ok = roots_equal && heights_equal && receipts_equal && measured >= 1.5;
  std::printf("overall: %s (gate: speedup >= 1.50x, identical state)\n",
              ok ? "PASS" : "MISMATCH");
  confide::bench::DumpMetrics();
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--real-threads") == 0) return RunRealThreads();
  }
  return RunSimulated();
}
