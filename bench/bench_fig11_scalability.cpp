/// \file bench_fig11_scalability.cpp
/// \brief Reproduces **Figure 11**: ABS-workload throughput for
/// confidential transactions as the consortium scales.
///
/// Sweeps: nodes ∈ {4,8,12,16,20} × execution threads ∈ {1,4,6} ×
/// network ∈ {single zone, two zones (Shanghai/Beijing 1:2)}.
///
/// Paper shape: throughput stays flat as nodes grow within one zone;
/// 4-way parallel execution is ~2× over 1-way and 6-way adds little
/// more; the two-zone deployment degrades with node count (WAN consensus
/// latency).
///
/// Per-block time = k-way execution makespan + PBFT ordering latency
/// (message-level DES with sender-NIC serialization) + the ~6 ms
/// cloud-SSD block write (§6.4).
///
/// Substitution note: this host has a single CPU core, so k-way
/// parallelism cannot be observed as wall time. Each transaction is
/// executed (really, through the enclave) and timed individually; the
/// block's k-way makespan is then computed by LPT scheduling of the
/// conflict groups the engine reports — the same groups the parallel
/// BlockExecutor uses on real multicore hosts.

#include <algorithm>
#include <map>
#include <queue>

#include "bench/bench_util.h"
#include "chain/pbft.h"

using namespace confide;
using namespace confide::bench;

namespace {

constexpr int kAbsInstances = 8;   // spread txs across contracts so the
                                   // conflict-key scheduler can go wide
constexpr int kTxTotal = 96;
constexpr size_t kBlockBytes = 48 * 1024;

// Longest-processing-time makespan of group times on k workers.
double Makespan(const std::map<uint64_t, double>& group_seconds, uint32_t k) {
  std::vector<double> groups;
  for (const auto& [key, secs] : group_seconds) groups.push_back(secs);
  std::sort(groups.rbegin(), groups.rend());
  std::priority_queue<double, std::vector<double>, std::greater<double>> workers;
  for (uint32_t i = 0; i < k; ++i) workers.push(0.0);
  for (double g : groups) {
    double load = workers.top();
    workers.pop();
    workers.push(load + g);
  }
  double makespan = 0;
  while (!workers.empty()) {
    makespan = workers.top();
    workers.pop();
  }
  return makespan;
}

double RunConfig(core::ConfideSystem* sys, core::Client* client, size_t n_nodes,
                 uint32_t threads, bool two_zone) {
  crypto::Drbg rng(7);
  std::vector<chain::Transaction> txs;
  for (int i = 0; i < kTxTotal; ++i) {
    std::string name = "abs-" + std::to_string(i % kAbsInstances);
    auto sub = client->MakeConfidentialTx(chain::NamedAddress(name), "abs_transfer",
                                          workloads::MakeAbsAssetFlat(&rng, i));
    txs.push_back(sub->tx);
  }
  auto* engine = sys->confidential_engine();
  for (const chain::Transaction& tx : txs) (void)engine->PreVerify(tx);

  chain::NetworkSim net = two_zone ? chain::NetworkSim::TwoZone(n_nodes)
                                   : chain::NetworkSim::SingleZone(n_nodes);

  // Partition into blocks by byte budget, as ProposeBlock would.
  chain::CommitStateDb* state = sys->node()->state();
  double total_seconds = 0;
  size_t executed = 0;
  size_t pos = 0;
  while (pos < txs.size()) {
    size_t block_bytes = 0;
    std::map<uint64_t, double> group_seconds;
    size_t begin = pos;
    while (pos < txs.size()) {
      size_t tx_bytes = txs[pos].Serialize().size();
      if (pos > begin && block_bytes + tx_bytes > kBlockBytes) break;
      block_bytes += tx_bytes;
      const chain::Transaction& tx = txs[pos];
      // Query before Execute, like BlockExecutor: the engine evicts the
      // cached conflict key on execution (bounded residency).
      uint64_t group = engine->ConflictKey(tx);
      double secs = TimeSeconds([&] {
        auto receipt = engine->Execute(tx, state);
        if (!receipt.ok() || !receipt->success) std::abort();
      });
      group_seconds[group] += secs;
      ++executed;
      ++pos;
    }
    (void)state->Commit();
    double exec_seconds = Makespan(group_seconds, threads);
    uint64_t consensus_ns =
        chain::SimulatePbftRound(net, 0, block_bytes).quorum_commit_ns;
    total_seconds += exec_seconds + double(consensus_ns) / 1e9 + 0.006;
  }
  return double(executed) / total_seconds;
}

}  // namespace

int main() {
  std::printf("== Figure 11: scalability with the ABS workload (tx/s) ==\n");
  std::printf("%d confidential ABS transfers per config; per-block time = "
              "exec makespan(k) + PBFT(DES) + 6ms SSD write\n\n",
              kTxTotal);

  // One system serves all configs (execution cost does not depend on the
  // simulated cluster size; consensus does).
  core::SystemOptions options;
  options.seed = 40'000;
  options.block_max_bytes = kBlockBytes;
  // Figure 11 is the *paper's* system, which predates OPT5: with batched
  // state ocalls on, per-tx execution shrinks until the fixed per-block
  // costs (PBFT + SSD write) dominate and k-way speedup flattens out.
  // The OPT5 rung is measured separately by bench_fig12_abs_opts.
  options.cs.enable_ocall_batching = false;
  auto sys = MustBootstrap(options);
  core::Client client(5, sys->pk_tx());
  for (int i = 0; i < kAbsInstances; ++i) {
    std::string name = "abs-" + std::to_string(i);
    MustDeploy(sys.get(), &client, name, workloads::AbsContractSource(), true);
    MustCall(sys.get(), &client, name, "abs_seed_whitelist", Bytes{});
  }

  const size_t kNodes[] = {4, 8, 12, 16, 20};
  struct Series {
    const char* label;
    uint32_t threads;
    bool two_zone;
  };
  const Series kSeries[] = {
      {"1-thread", 1, false},
      {"4-thread", 4, false},
      {"6-thread", 6, false},
      {"2-zones(4thr)", 4, true},
  };

  std::printf("%-15s", "nodes");
  for (size_t n : kNodes) std::printf("%10zu", n);
  std::printf("\n");

  double tps[4][5];
  for (size_t s = 0; s < 4; ++s) {
    std::printf("%-15s", kSeries[s].label);
    for (size_t ni = 0; ni < 5; ++ni) {
      tps[s][ni] = RunConfig(sys.get(), &client, kNodes[ni], kSeries[s].threads,
                             kSeries[s].two_zone);
      std::printf("%10.1f", tps[s][ni]);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nshape checks (paper Figure 11):\n");
  bool flat = true;
  for (size_t s = 0; s < 3; ++s) {
    double lo = tps[s][0], hi = tps[s][0];
    for (size_t ni = 1; ni < 5; ++ni) {
      lo = std::min(lo, tps[s][ni]);
      hi = std::max(hi, tps[s][ni]);
    }
    bool this_flat = hi / lo < 1.6;
    std::printf("  %-15s flat across 4..20 nodes: %s (max/min %.2f)\n",
                kSeries[s].label, this_flat ? "yes" : "NO", hi / lo);
    flat = flat && this_flat;
  }
  double speedup4 = tps[1][0] / tps[0][0];
  double speedup6 = tps[2][0] / tps[1][0];
  std::printf("  4-way vs 1-way speedup: %.2fx (paper: ~2x)\n", speedup4);
  std::printf("  6-way vs 4-way speedup: %.2fx (paper: ~1x, no further gain)\n",
              speedup6);
  bool zone_degrades = tps[3][4] < tps[3][0] * 0.9 && tps[3][4] < tps[1][4];
  std::printf("  two-zone degrades with node count and vs single zone: %s "
              "(%.1f -> %.1f tx/s)\n",
              zone_degrades ? "yes" : "NO", tps[3][0], tps[3][4]);

  bool ok = flat && speedup4 > 1.4 && speedup6 < 1.35 && zone_degrades;
  std::printf("overall: %s\n", ok ? "PASS" : "MISMATCH");
  confide::bench::DumpMetrics();
  return ok ? 0 : 1;
}
