/// \file quickstart.cpp
/// \brief CONFIDE in ~100 lines: bootstrap a confidential node, verify
/// the attested engine key, deploy a contract confidentially, call it,
/// open the sealed receipt — and show that the raw database only ever
/// sees ciphertext.
///
///   $ ./examples/quickstart

#include <cstdio>

#include "confide/system.h"
#include "lang/compiler.h"
#include "serialize/rlp.h"

using namespace confide;

namespace {

constexpr const char* kContract = R"(
fn greet() {
  var key = "visits";
  var buf = alloc(16);
  var n = get_storage(key, strlen(key), buf, 16);
  var count = 0;
  if (n == 8) { count = load64(buf); }
  count = count + 1;
  store64(buf, count);
  set_storage(key, strlen(key), buf, 8);

  var msg = alloc(64);
  var end = str_append(msg, "hello, confidential world #");
  end = end + u64_to_dec(count, end);
  write_output(msg, end - msg);
  return count;
}
)";

Bytes DeployPayload(chain::VmKind vm, const Bytes& code) {
  std::vector<serialize::RlpItem> items;
  items.push_back(serialize::RlpItem::U64(uint64_t(vm)));
  items.push_back(serialize::RlpItem(code));
  return serialize::RlpEncode(serialize::RlpItem::List(std::move(items)));
}

}  // namespace

int main() {
  // 1. Boot a node: SGX platform (simulated), KM enclave generates the
  //    consortium keys, CS enclave gets them over local attestation, then
  //    the KM enclave is destroyed to free EPC.
  core::SystemOptions options;
  options.seed = 2024;
  auto sys = core::ConfideSystem::BootstrapFirst(options);
  if (!sys.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n", sys.status().ToString().c_str());
    return 1;
  }
  std::printf("== CONFIDE quickstart ==\n");
  std::printf("node booted; KM enclave alive after provisioning: %s\n",
              (*sys)->km_alive() ? "yes" : "no (EPC released)");

  // 2. The client checks the engine key against the attestation quote
  //    before trusting it (MITM protection: the pk fingerprint is locked
  //    into the measured report).
  auto pk = core::Client::VerifyEnginePublicKey(
      (*sys)->pk_info_blob(), tee::MeasureEnclave("confide-km-enclave", 1));
  if (!pk.ok()) {
    std::fprintf(stderr, "attestation check failed: %s\n",
                 pk.status().ToString().c_str());
    return 1;
  }
  std::printf("engine key attested: pk_tx fingerprint verified\n");

  core::Client client(7, *pk);

  // 3. Compile the contract (CCL -> CONFIDE-VM bytecode) and deploy it
  //    confidentially: the code itself is sealed on-chain by D-Protocol.
  auto code = lang::Compile(kContract, lang::VmTarget::kCvm);
  if (!code.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", code.status().ToString().c_str());
    return 1;
  }
  chain::Address addr = chain::NamedAddress("greeter");
  auto deploy = client.MakeConfidentialTx(addr, "__deploy__",
                                          DeployPayload(chain::VmKind::kCvm, *code));
  (void)(*sys)->node()->SubmitTransaction(deploy->tx);
  auto deploy_receipts = (*sys)->RunToCompletion();
  std::printf("contract deployed confidentially (%zu bytes of sealed code)\n",
              code->size());

  // 4. Call it three times; each call is a TYPE=1 transaction whose body
  //    travels as Enc(pk_tx, k_tx) | Enc(k_tx, Tx_raw).
  for (int i = 0; i < 3; ++i) {
    auto call = client.MakeConfidentialTx(addr, "greet", Bytes{});
    (void)(*sys)->node()->SubmitTransaction(call->tx);
    auto receipts = (*sys)->RunToCompletion();
    if (!receipts.ok() || receipts->empty() || !(*receipts)[0].success) {
      std::fprintf(stderr, "call failed\n");
      return 1;
    }
    // 5. The on-chain receipt is sealed under the one-time key k_tx; only
    //    this client (or a delegate handed k_tx) can open it.
    auto opened = core::Client::OpenSealedReceipt(call->k_tx, (*receipts)[0].output);
    std::printf("call %d -> sealed receipt %zu bytes -> \"%s\"\n", i + 1,
                (*receipts)[0].output.size(), ToString(opened->output).c_str());
  }

  // 6. The malicious-host view: read the database directly. The counter
  //    state exists only as AES-GCM ciphertext bound to the contract id.
  auto raw = (*sys)->node()->state()->Get(addr, AsByteView("visits"));
  std::printf("raw DB bytes for state 'visits': %s...\n",
              HexEncode(ByteView(raw->data(), 16)).c_str());
  std::printf("(plaintext counter would be 8 bytes; stored blob is %zu bytes "
              "of sealed data)\n", raw->size());

  std::printf("TEE stats: %lu ecalls, %lu ocalls, %lu bytes copied across "
              "the boundary\n",
              (unsigned long)(*sys)->platform()->stats().ecalls.load(),
              (unsigned long)(*sys)->platform()->stats().ocalls.load(),
              (unsigned long)((*sys)->platform()->stats().bytes_copied_in.load() +
                              (*sys)->platform()->stats().bytes_copied_out.load()));
  std::printf("done.\n");
  return 0;
}
