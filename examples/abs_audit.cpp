/// \file abs_audit.cpp
/// \brief Asset-Backed Securitization with CCLe field-level
/// confidentiality (paper §4 + §6.1): the issuer stores asset records
/// whose sensitive fields are sealed, while a third-party auditor reads
/// the same records **without any key** and sees public fields in the
/// clear with confidential leaves redacted — the exact audit scenario
/// CCLe was designed for.
///
///   $ ./examples/abs_audit

#include <cstdio>

#include "ccle/codec.h"
#include "confide/protocol.h"
#include "crypto/drbg.h"

using namespace confide;

namespace {

// The asset-pool schema. Amounts and debtor identity are confidential;
// pool metadata and asset ids stay public so auditors can count and
// cross-reference assets without learning the economics.
constexpr const char* kPoolSchema = R"(
attribute "map";
attribute "confidential";

table Pool {
  pool_id: string;
  originator: string;
  asset_map: [Asset](map);
}

table Asset {
  asset_id: string;
  asset_class: string;
  amount: ulong(confidential);
  rate_bps: ulong(confidential);
  debtor: string(confidential);
}

root_type Pool;
)";

/// D-Protocol-backed field cipher: what the SDM uses in production.
class DProtocolCipher : public ccle::FieldCipher {
 public:
  explicit DProtocolCipher(const core::StateKey& k_states) : k_(k_states) {}

  Result<Bytes> Encrypt(ByteView plain, ByteView aad) override {
    return core::SealState(k_, plain, aad);
  }
  Result<Bytes> Decrypt(ByteView sealed, ByteView aad) override {
    return core::OpenState(k_, sealed, aad);
  }

 private:
  core::StateKey k_;
};

std::string Show(const ccle::Value* v) {
  if (v == nullptr) return "<absent>";
  if (v->is_redacted()) return "\u00abREDACTED\u00bb";
  if (v->kind() == ccle::Value::Kind::kUInt) return std::to_string(v->AsUInt());
  return v->AsString();
}

}  // namespace

int main() {
  std::printf("== ABS asset pool with CCLe field-level confidentiality ==\n");

  auto schema = ccle::ParseSchema(kPoolSchema);
  if (!schema.ok()) {
    std::fprintf(stderr, "schema: %s\n", schema.status().ToString().c_str());
    return 1;
  }

  // The issuer builds the pool.
  crypto::Drbg rng(2026);
  ccle::Value pool = ccle::Value::Table();
  pool.SetField("pool_id", ccle::Value::String("ABS-2026-07"));
  pool.SetField("originator", ccle::Value::String("acme-leasing"));
  ccle::Value assets = ccle::Value::Map();
  const char* debtors[] = {"meridian-logistics", "northwind-foods", "apex-retail"};
  for (int i = 0; i < 3; ++i) {
    ccle::Value asset = ccle::Value::Table();
    asset.SetField("asset_id", ccle::Value::String("ar-" + std::to_string(100 + i)));
    asset.SetField("asset_class", ccle::Value::String("receivable"));
    asset.SetField("amount", ccle::Value::UInt(250'000 + rng.NextBounded(500'000)));
    asset.SetField("rate_bps", ccle::Value::UInt(180 + rng.NextBounded(200)));
    asset.SetField("debtor", ccle::Value::String(debtors[i]));
    assets.SetEntry("ar-" + std::to_string(100 + i), std::move(asset));
  }
  pool.SetField("asset_map", std::move(assets));

  // Seal it with D-Protocol under the consortium state key; the AAD binds
  // every leaf to contract identity + field path.
  core::StateKey k_states{};
  crypto::Drbg(7).Fill(k_states.data(), k_states.size());
  DProtocolCipher cipher(k_states);
  auto sealed = ccle::EncodeSecure(*schema, pool, &cipher, AsByteView("abs-pool"));
  if (!sealed.ok()) {
    std::fprintf(stderr, "encode: %s\n", sealed.status().ToString().c_str());
    return 1;
  }
  std::printf("pool encoded: %zu bytes, %zu confidential leaves sealed "
              "individually\n",
              sealed->size(), ccle::CountConfidentialLeaves(*schema, pool));

  // --- The auditor's view: NO key. ---
  auto audit = ccle::DecodeRedacted(*schema, *sealed);
  std::printf("\n-- third-party auditor (no key) --\n");
  std::printf("pool_id     : %s\n", Show(audit->FindField("pool_id")).c_str());
  std::printf("originator  : %s\n", Show(audit->FindField("originator")).c_str());
  const ccle::Value* amap = audit->FindField("asset_map");
  std::printf("asset count : %zu\n", amap->entries().size());
  for (const auto& [key, asset] : amap->entries()) {
    std::printf("  %s  class=%s  amount=%s  rate=%s  debtor=%s\n", key.c_str(),
                Show(asset.FindField("asset_class")).c_str(),
                Show(asset.FindField("amount")).c_str(),
                Show(asset.FindField("rate_bps")).c_str(),
                Show(asset.FindField("debtor")).c_str());
  }

  // --- The consortium member's view: full decode inside the enclave. ---
  auto full = ccle::DecodeSecure(*schema, *sealed, &cipher, AsByteView("abs-pool"));
  std::printf("\n-- consortium engine (holds k_states) --\n");
  uint64_t total = 0;
  for (const auto& [key, asset] : full->FindField("asset_map")->entries()) {
    std::printf("  %s  amount=%s  rate=%s  debtor=%s\n", key.c_str(),
                Show(asset.FindField("amount")).c_str(),
                Show(asset.FindField("rate_bps")).c_str(),
                Show(asset.FindField("debtor")).c_str());
    total += asset.FindField("amount")->AsUInt();
  }
  std::printf("pool total (enclave-only aggregate): %lu\n", (unsigned long)total);

  // --- A forgery attempt: move one sealed amount onto another asset. ---
  std::printf("\n-- ciphertext-swap attack: ");
  auto tampered = ccle::DecodeSecure(*schema, *sealed, &cipher,
                                     AsByteView("different-contract"));
  std::printf("decode under wrong contract identity -> %s\n",
              tampered.ok() ? "ACCEPTED (bug!)" : "rejected by AAD check");
  return tampered.ok() ? 1 : 0;
}
