/// \file supply_chain_finance.cpp
/// \brief The paper's flagship application (§6.3, Figures 1 & 8): an
/// Account-Receivable transfer on the SCF-AR contract suite.
///
/// A supplier holds a digitized receivable certificate; transferring it
/// to a bank flows Gateway → Manager → account/asset/fee/transfer/
/// clearing/audit service contracts — 11 cooperating confidential
/// contracts, tens of cross-contract calls and >100 state reads, all
/// inside the enclave with state sealed at rest.
///
///   $ ./examples/supply_chain_finance

#include <cstdio>

#include "confide/system.h"
#include "lang/compiler.h"
#include "serialize/rlp.h"
#include "workloads/workloads.h"

using namespace confide;

namespace {

Bytes DeployPayload(const Bytes& code) {
  std::vector<serialize::RlpItem> items;
  items.push_back(serialize::RlpItem::U64(uint64_t(chain::VmKind::kCvm)));
  items.push_back(serialize::RlpItem(code));
  return serialize::RlpEncode(serialize::RlpItem::List(std::move(items)));
}

bool Run(core::ConfideSystem* sys, core::Client* client, const std::string& name,
         const std::string& entry, Bytes input, core::TxKey* k_tx = nullptr) {
  auto tx = client->MakeConfidentialTx(chain::NamedAddress(name), entry,
                                       std::move(input));
  if (!tx.ok()) return false;
  if (k_tx != nullptr) *k_tx = tx->k_tx;
  if (!sys->node()->SubmitTransaction(tx->tx).ok()) return false;
  auto receipts = sys->RunToCompletion();
  if (!receipts.ok() || receipts->empty()) return false;
  if (!(*receipts)[0].success) {
    std::fprintf(stderr, "  %s.%s failed: %s\n", name.c_str(), entry.c_str(),
                 (*receipts)[0].status_message.c_str());
    return false;
  }
  if (k_tx != nullptr) {
    auto opened = core::Client::OpenSealedReceipt(*k_tx, (*receipts)[0].output);
    if (opened.ok() && opened->output.size() == 8) {
      uint64_t v = 0;
      for (int i = 7; i >= 0; --i) v = (v << 8) | opened->output[i];
      std::printf("  receipt opened with k_tx: net amount = %lu\n",
                  (unsigned long)v);
    }
  }
  return true;
}

}  // namespace

int main() {
  std::printf("== Supply Chain Finance on CONFIDE (Ant Duo-Chain style) ==\n");

  core::SystemOptions options;
  options.seed = 88;
  options.parallelism = 4;
  options.block_max_bytes = 64 * 1024;
  auto sys = core::ConfideSystem::BootstrapFirst(options);
  if (!sys.ok()) {
    std::fprintf(stderr, "bootstrap: %s\n", sys.status().ToString().c_str());
    return 1;
  }
  core::Client supplier(1001, (*sys)->pk_tx());

  // Deploy the 11-contract suite confidentially.
  std::printf("deploying the SCF-AR contract suite...\n");
  for (const auto& [name, source] : workloads::ScfArContracts()) {
    auto code = lang::Compile(source, lang::VmTarget::kCvm);
    if (!code.ok()) {
      std::fprintf(stderr, "compile %s: %s\n", name.c_str(),
                   code.status().ToString().c_str());
      return 1;
    }
    if (!Run(sys->get(), &supplier, name, "__deploy__", DeployPayload(*code))) {
      return 1;
    }
    std::printf("  %-16s deployed (%5zu bytes sealed bytecode)\n", name.c_str(),
                code->size());
  }

  // Business setup: policies, fee schedule, accounts (creditworthiness,
  // KYC, history) and the receivable certificate with provenance.
  std::printf("seeding business state (policies, accounts, certificate)...\n");
  if (!Run(sys->get(), &supplier, "scf.manager", "seed", Bytes{}) ||
      !Run(sys->get(), &supplier, "scf.fee", "seed", Bytes{}) ||
      !Run(sys->get(), &supplier, "scf.account", "seed",
           ToBytes(std::string_view("supplier-alpha"))) ||
      !Run(sys->get(), &supplier, "scf.account", "seed",
           ToBytes(std::string_view("bank-one"))) ||
      !Run(sys->get(), &supplier, "scf.asset", "seed",
           ToBytes(std::string_view("ar-cert-0\nsupplier-alpha")))) {
    return 1;
  }

  // The transfer: supplier-alpha finances its receivable with bank-one.
  std::printf("transferring receivable ar-cert-0: supplier-alpha -> bank-one "
              "(amount 4800)...\n");
  core::TxKey k_tx;
  if (!Run(sys->get(), &supplier, "scf.gateway", "transfer",
           ToBytes(std::string_view("ar-cert-0\nsupplier-alpha\nbank-one\n4800")),
           &k_tx)) {
    return 1;
  }

  // Operation profile of the flow (paper Table 1's shape).
  auto stats = (*sys)->confidential_engine()->last_response();
  std::printf("flow profile (cf. paper Table 1):\n");
  std::printf("  contract calls : %3lu   (paper: 31)\n",
              (unsigned long)stats.contract_calls);
  std::printf("  GetStorage ops : %3lu   (paper: 151)\n",
              (unsigned long)stats.get_storage_ops);
  std::printf("  SetStorage ops : %3lu   (paper: 9)\n",
              (unsigned long)stats.set_storage_ops);

  // What a curious node operator sees: sealed bytes only.
  auto raw = (*sys)->node()->state()->Get(chain::NamedAddress("scf.account"),
                                          AsByteView("acct:bank-one:bal"));
  if (raw.ok()) {
    std::printf("bank-one balance at rest (first 16 bytes): %s...\n",
                HexEncode(ByteView(raw->data(), 16)).c_str());
  }
  std::printf("done: %lu blocks committed, modeled time %.2f ms\n",
              (unsigned long)(*sys)->node()->Height(),
              double((*sys)->clock()->NowNs()) / 1e6);
  return 0;
}
