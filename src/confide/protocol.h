/// \file protocol.h
/// \brief CONFIDE's cryptographic protocols (paper §3.2.3, §3.2.4).
///
/// **T-Protocol** — end-to-end transaction confidentiality:
///
///     Tx_conf  = Enc(pk_tx, k_tx) | Enc(k_tx, Tx_raw)          (formula 1)
///     Rpt_conf = Enc(k_tx, Rpt_raw)                            (formula 2)
///
/// The envelope is ECIES-style: an ephemeral secp256k1 key agrees with
/// pk_tx, HKDF derives a wrap key, and AES-GCM seals the one-time
/// transaction key k_tx, which in turn seals the raw transaction. k_tx is
/// derived from the user's root key and the raw transaction hash, so each
/// transaction uses a fresh key (chosen-plaintext/ciphertext hardening,
/// §3.2.3 "Security") while remaining recomputable by the owner.
///
/// **D-Protocol** — state/code confidentiality at rest:
///
///     Data_auth = Enc(k_states, Data)                          (formula 3)
///
/// AES-GCM under the consortium state root key with associated data
/// binding contract identity and key (plus security version) — moving a
/// ciphertext between contracts or state slots breaks authentication.
/// The IV is synthetic (SIV-style, derived from key, AAD and plaintext):
/// every node must produce byte-identical ciphertexts or block
/// state/receipt roots would diverge across replicas.

#pragma once

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/secp256k1.h"
#include "crypto/sha256.h"

namespace confide::core {

/// \brief One-time symmetric transaction key.
using TxKey = crypto::Hash256;
/// \brief Consortium state root key (k_states).
using StateKey = crypto::Hash256;

// ---------------------------------------------------------------------------
// T-Protocol
// ---------------------------------------------------------------------------

/// \brief Derives k_tx from the user's root key and the raw transaction
/// hash (paper: "one-time symmetric key of each transaction which is
/// derived from a user root key and the transaction hash").
TxKey DeriveTxKey(ByteView user_root_key, const crypto::Hash256& raw_tx_hash);

/// \brief Builds Tx_conf from the raw transaction bytes under the
/// engine's public key pk_tx. `entropy` seeds the ephemeral ECIES key.
Result<Bytes> SealEnvelope(const crypto::PublicKey& pk_tx, const TxKey& k_tx,
                           ByteView raw_tx, uint64_t entropy);

/// \brief Envelope contents after opening.
struct OpenedEnvelope {
  TxKey k_tx{};
  Bytes raw_tx;
};

/// \brief Opens Tx_conf inside the enclave using sk_tx.
Result<OpenedEnvelope> OpenEnvelope(const crypto::PrivateKey& sk_tx,
                                    ByteView envelope);

/// \brief Symmetric-only open: recovers Tx_raw when k_tx is already known
/// from the pre-verification cache — the paper's C3 step, which "saves the
/// decryption cost" of the private-key operation (§5.2).
Result<Bytes> OpenEnvelopeBody(const TxKey& k_tx, ByteView envelope);

/// \brief Seals a receipt under k_tx (deterministic: replicas must agree).
Result<Bytes> SealReceipt(const TxKey& k_tx, ByteView raw_receipt);

/// \brief Opens a sealed receipt (transaction owner or delegate, who was
/// handed k_tx offline — the paper's authorization story).
Result<Bytes> OpenReceipt(const TxKey& k_tx, ByteView sealed_receipt);

// ---------------------------------------------------------------------------
// D-Protocol
// ---------------------------------------------------------------------------

/// \brief Seals a state value (or contract code). Deterministic for a
/// given (key, aad, plain) triple so all replicas store identical bytes.
Result<Bytes> SealState(const StateKey& k_states, ByteView plain, ByteView aad);

/// \brief Opens a sealed state value; fails on tampering or wrong AAD.
Result<Bytes> OpenState(const StateKey& k_states, ByteView sealed, ByteView aad);

/// \brief Canonical AAD for a contract state entry: binds contract
/// identity, state key and security version (paper §3.2.4: "additional
/// authentication data is related to on-chain run-time information such as
/// contract identity, contract owner and security version").
Bytes StateAad(ByteView contract_id, ByteView state_key, uint64_t security_version);

}  // namespace confide::core
