#include "confide/system.h"

#include "common/fault.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "confide/freshness.h"
#include "serialize/rlp.h"
#include "storage/lsm_store.h"

namespace confide::core {

using serialize::RlpReader;
using serialize::RlpWriter;

Result<std::unique_ptr<ConfideSystem>> ConfideSystem::BootstrapCommon(
    SystemOptions options,
    const std::function<Result<Bytes>(ConfideSystem*)>& obtain_keys) {
  std::unique_ptr<ConfideSystem> sys(new ConfideSystem());
  sys->options_ = options;
  sys->platform_ = std::make_unique<tee::EnclavePlatform>(
      options.tee_model, &sys->clock_, options.seed);

  // 1. KM enclave.
  sys->km_ = std::make_shared<KmEnclave>(options.seed);
  CONFIDE_ASSIGN_OR_RETURN(sys->km_id_,
                           sys->platform_->CreateEnclave(sys->km_, 4 << 20));
  sys->km_alive_ = true;

  // 2. Obtain consortium keys (generate / MAP / KMS, mode-specific).
  CONFIDE_RETURN_NOT_OK(obtain_keys(sys.get()).status());

  // Client-facing pk info (pk_tx + binding quote).
  CONFIDE_ASSIGN_OR_RETURN(
      sys->pk_info_blob_,
      sys->platform_->Ecall(sys->km_id_, kKmGetPublicInfo, ByteView{}));
  CONFIDE_ASSIGN_OR_RETURN(
      sys->pk_tx_,
      Client::VerifyEnginePublicKey(
          sys->pk_info_blob_, tee::MeasureEnclave("confide-km-enclave", 1)));

  // 3-5. CS enclave + engines + node.
  CONFIDE_RETURN_NOT_OK(sys->FinishBootstrap());
  return sys;
}

Status ConfideSystem::ProvisionCs() {
  if (fault::FaultInjector::Global().ShouldFail("fault.confide.provision")) {
    return Status::Unavailable("confide: injected provisioning failure");
  }
  CONFIDE_ASSIGN_OR_RETURN(
      Bytes report,
      platform_->Ecall(confidential_->enclave_id(), kCsGetProvisionReport,
                       ByteView{}));
  CONFIDE_ASSIGN_OR_RETURN(Bytes blob,
                           platform_->Ecall(km_id_, kKmProvisionCs, report));
  CONFIDE_RETURN_NOT_OK(
      platform_->Ecall(confidential_->enclave_id(), kCsInstallKeys, blob).status());
  return Status::OK();
}

Status ConfideSystem::FinishBootstrap() {
  if (options_.enable_state_continuity) {
    if (!options_.counter_store) {
      CONFIDE_ASSIGN_OR_RETURN(options_.counter_store,
                               storage::LsmKvStore::Open(storage::LsmOptions{}));
    }
    platform_->AttachCounterStore(options_.counter_store);
  }
  CONFIDE_ASSIGN_OR_RETURN(
      confidential_,
      ConfidentialEngine::Create(platform_.get(), options_.cs, options_.seed));
  CONFIDE_RETURN_NOT_OK(ProvisionCs());

  if (options_.destroy_km_after_provision) {
    CONFIDE_RETURN_NOT_OK(platform_->DestroyEnclave(km_id_));
    km_alive_ = false;
  }

  public_ = std::make_unique<PublicEngine>(options_.public_engine);

  chain::NodeOptions node_options;
  node_options.parallelism = options_.parallelism;
  node_options.block_max_bytes = options_.block_max_bytes;
  node_options.clock = &clock_;
  node_options.state_wal_dir = options_.state_wal_dir;
  node_options.pipeline_depth = options_.pipeline_depth;
  node_options.sync_commits = options_.sync_commits;
  node_options.commit_write_latency_ns = options_.commit_write_latency_ns;
  node_options.checkpoint = options_.checkpoint;
  node_options.validators = options_.validators;
  chain::EngineSet engines;
  engines.public_engine = public_.get();
  engines.confidential_engine = confidential_.get();
  CONFIDE_ASSIGN_OR_RETURN(node_, chain::Node::Create(node_options, engines));
  // A restarted node proves its recovered store is the newest sealed
  // generation before executing anything on it.
  return VerifyStateContinuity();
}

Status ConfideSystem::SealStateGeneration() {
  if (!options_.enable_state_continuity) return Status::OK();
  RlpWriter req(48);
  size_t req_list = req.BeginList();
  req.WriteU64(node_->Height());
  req.WriteBytes(crypto::HashView(node_->state()->StateRoot()));
  req.EndList(req_list);
  CONFIDE_ASSIGN_OR_RETURN(
      Bytes header, platform_->Ecall(confidential_->enclave_id(),
                                     kCsSealFreshness, req.buffer()));
  storage::KvStore* kv = node_->state()->backing();
  CONFIDE_RETURN_NOT_OK(kv->Put(std::string(kFreshnessKvKey), std::move(header)));
  return kv->Sync();
}

Status ConfideSystem::VerifyStateContinuity() {
  if (!options_.enable_state_continuity) return Status::OK();
  Result<Bytes> header = node_->state()->backing()->Get(std::string(kFreshnessKvKey));
  if (!header.ok()) {
    if (header.status().IsNotFound()) {
      // Nothing was ever sealed — a first boot, vacuously fresh. Seal the
      // current tip so the next restart is covered.
      return SealStateGeneration();
    }
    return header.status();
  }
  RlpWriter req(64 + header->size());
  size_t req_list = req.BeginList();
  req.WriteBytes(*header);
  req.WriteU64(node_->Height());
  req.WriteBytes(crypto::HashView(node_->state()->StateRoot()));
  req.EndList(req_list);
  Result<Bytes> resp = platform_->Ecall(confidential_->enclave_id(),
                                        kCsVerifyFreshness, req.buffer());
  if (!resp.ok()) {
    if (resp.status().IsStaleState()) {
      metrics::GetCounter("confide.freshness.refused.count")->Increment();
    }
    return resp.status();
  }
  auto reader = RlpReader::AtList(*resp);
  if (!reader.ok()) {
    return Status::Corruption("freshness: malformed verify response");
  }
  auto action_field = reader->NextU64();
  if (!action_field.ok() || !reader->AtEnd()) {
    return Status::Corruption("freshness: malformed verify response");
  }
  uint64_t action = action_field.value();
  if (FreshnessAction(action) == FreshnessAction::kResealNeeded) {
    // State advanced past (or an interrupted seal trails) the sealed
    // header; cover the current tip under a fresh generation.
    return SealStateGeneration();
  }
  return Status::OK();
}

Result<std::unique_ptr<ConfideSystem>> ConfideSystem::BootstrapFirst(
    SystemOptions options) {
  return BootstrapCommon(options, [](ConfideSystem* sys) -> Result<Bytes> {
    return sys->platform_->Ecall(sys->km_id_, kKmGenerateKeys, ByteView{});
  });
}

Result<std::unique_ptr<ConfideSystem>> ConfideSystem::BootstrapJoin(
    SystemOptions options, ConfideSystem* provider) {
  if (!provider->km_alive()) {
    return Status::Unavailable(
        "bootstrap: provider KM enclave already destroyed");
  }
  return BootstrapCommon(options, [provider](ConfideSystem* sys) -> Result<Bytes> {
    CONFIDE_RETURN_NOT_OK(RunMutualAttestation(provider->platform_.get(),
                                               provider->km_id_,
                                               sys->platform_.get(), sys->km_id_));
    return Bytes{};
  });
}

Result<std::unique_ptr<ConfideSystem>> ConfideSystem::BootstrapWithKms(
    SystemOptions options, CentralKms* kms) {
  return BootstrapCommon(options, [kms](ConfideSystem* sys) -> Result<Bytes> {
    CONFIDE_ASSIGN_OR_RETURN(
        Bytes request,
        sys->platform_->Ecall(sys->km_id_, kKmCreateJoinRequest, ByteView{}));
    CONFIDE_ASSIGN_OR_RETURN(
        Bytes blob,
        kms->Provision(request, tee::MeasureEnclave("confide-km-enclave", 1)));
    return sys->platform_->Ecall(sys->km_id_, kKmAcceptProvision, blob);
  });
}

bool ConfideSystem::ConfidentialEngineAlive() const {
  return confidential_ != nullptr &&
         platform_->IsAlive(confidential_->enclave_id());
}

Status ConfideSystem::TryRecoverOnce() {
  CONFIDE_RETURN_NOT_OK(confidential_->RecreateEnclave(options_.seed));

  // Fast path: our own KM enclave survived and still holds the keys. The
  // cached flag alone is not proof — the enclave may have been killed out
  // from under us (KillEnclave, injected enclave crash) — so confirm
  // liveness with the platform before provisioning against it.
  if (km_alive_ && !platform_->IsAlive(km_id_)) km_alive_ = false;
  if (km_alive_) return ProvisionCs();

  // The KM enclave was destroyed after bootstrap (paper §5.3), so the
  // keys must come back over an attested channel: a peer's live KM
  // enclave (decentralized MAP) or the centralized KMS.
  const bool peer_ok = recovery_peer_ != nullptr && recovery_peer_->km_alive();
  if (!peer_ok && recovery_kms_ == nullptr) {
    return Status::Unavailable(
        "recover: KM enclave destroyed and no recovery peer or KMS "
        "configured — consortium keys unreachable");
  }

  // Fresh, key-less KM enclave to receive the provision blob.
  km_ = std::make_shared<KmEnclave>(options_.seed);
  CONFIDE_ASSIGN_OR_RETURN(km_id_, platform_->CreateEnclave(km_, 4 << 20));
  km_alive_ = true;

  auto obtain_keys = [&]() -> Status {
    if (peer_ok) {
      return RunMutualAttestation(recovery_peer_->platform_.get(),
                                  recovery_peer_->km_id_, platform_.get(),
                                  km_id_);
    }
    CONFIDE_ASSIGN_OR_RETURN(
        Bytes request,
        platform_->Ecall(km_id_, kKmCreateJoinRequest, ByteView{}));
    CONFIDE_ASSIGN_OR_RETURN(
        Bytes blob, recovery_kms_->Provision(
                        request, tee::MeasureEnclave("confide-km-enclave", 1)));
    return platform_->Ecall(km_id_, kKmAcceptProvision, blob).status();
  };
  Status keys = obtain_keys();
  if (!keys.ok()) {
    (void)platform_->DestroyEnclave(km_id_);
    km_alive_ = false;
    return keys;
  }

  Status provisioned = ProvisionCs();
  if (provisioned.ok() && options_.destroy_km_after_provision) {
    CONFIDE_RETURN_NOT_OK(platform_->DestroyEnclave(km_id_));
    km_alive_ = false;
  }
  // On failure the fresh KM stays alive so the next attempt only has to
  // redo the (cheap) CS-side provisioning.
  return provisioned;
}

Status ConfideSystem::TryRecoverOnceWithFreshness() {
  CONFIDE_RETURN_NOT_OK(TryRecoverOnce());
  // Keys are back — now prove the sealed state the host is offering is
  // the newest generation before executing on it. A rolled-back store
  // fails here with StaleState: keys recovered, state refused.
  return VerifyStateContinuity();
}

Status ConfideSystem::RecoverConfidentialEngine() {
  if (confidential_ == nullptr) {
    return Status::Internal("recover: system not bootstrapped");
  }
  common::RetryOptions retry_options;
  retry_options.max_attempts = options_.recover_max_retries;
  retry_options.base_backoff_ns = options_.recover_backoff_ns;
  retry_options.multiplier = 2.0;
  retry_options.seed = options_.seed;
  common::RetryPolicy retry(retry_options, &clock_);  // modelled backoff
  // StaleState is not transient: retrying re-offers the same rolled-back
  // state. Fail fast so the caller can escalate to peer sync.
  Status last = retry.Run(
      "confidential engine recovery",
      [this] { return TryRecoverOnceWithFreshness(); },
      [](const Status& s) { return !s.IsStaleState(); });
  if (last.ok()) {
    fault::NoteRecovered("fault.tee.enclave_crash");
    if (retry.LastAttempts() > 1) fault::NoteRecovered("fault.confide.provision");
    metrics::GetCounter("confide.recover.success.count")->Increment();
    metrics::GetCounter("confide.recover.attempts")
        ->Increment(retry.LastAttempts());
    return Status::OK();
  }
  metrics::GetCounter("confide.recover.failure.count")->Increment();
  return last;
}

Result<chain::SyncStats> ConfideSystem::SyncFromPeers(
    const std::vector<chain::SyncProvider*>& providers,
    chain::SyncOptions options) {
  if (options_.validators == nullptr) {
    return Status::InvalidArgument(
        "sync: system bootstrapped without a validator set");
  }
  options.clock = &clock_;
  if (!options.reprovision) {
    options.reprovision = [this]() -> Status {
      if (ConfidentialEngineAlive()) return Status::OK();
      Status recovered = RecoverConfidentialEngine();
      // StaleState means the keys are back but the local state failed
      // freshness — exactly what this sync is about to remedy, so it
      // must not abort the rejoin.
      if (recovered.IsStaleState()) return Status::OK();
      return recovered;
    };
  }
  chain::StateSyncClient client(node_.get(), options_.validators,
                                std::move(options));
  for (chain::SyncProvider* provider : providers) {
    client.AddProvider(provider);
  }
  CONFIDE_ASSIGN_OR_RETURN(chain::SyncStats stats, client.SyncToTip());
  // The synced tip must itself pass freshness: a provider replaying a
  // stale checkpoint lands the store *below* the sealed generation and is
  // refused here with StaleState; a legitimate catch-up lands above it
  // and is re-sealed.
  CONFIDE_RETURN_NOT_OK(VerifyStateContinuity());
  return stats;
}

Result<std::vector<chain::Receipt>> ConfideSystem::RunToCompletion() {
  if (options_.pipeline_depth > 0) {
    // Pipelined lifecycle: pre-verify, execute and commit overlap across
    // consecutive blocks on the node's shared thread pool.
    CONFIDE_ASSIGN_OR_RETURN(std::vector<chain::Receipt> receipts,
                             node_->RunPipelined());
    if (!receipts.empty()) CONFIDE_RETURN_NOT_OK(SealStateGeneration());
    return receipts;
  }
  std::vector<chain::Receipt> all;
  for (;;) {
    CONFIDE_RETURN_NOT_OK(node_->PreVerify().status());
    if (node_->VerifiedPoolSize() == 0) break;
    CONFIDE_ASSIGN_OR_RETURN(chain::Block block, node_->ProposeBlock());
    if (block.transactions.empty()) break;
    CONFIDE_ASSIGN_OR_RETURN(std::vector<chain::Receipt> receipts,
                             node_->ApplyBlock(block));
    for (chain::Receipt& receipt : receipts) all.push_back(std::move(receipt));
  }
  // Cover the advanced tip under a new sealed freshness generation
  // (no-op when state continuity is off).
  if (!all.empty()) CONFIDE_RETURN_NOT_OK(SealStateGeneration());
  return all;
}

}  // namespace confide::core
