#include "confide/engines.h"

#include <set>

#include "common/endian.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "crypto/gcm.h"
#include "crypto/keccak.h"
#include "serialize/rlp.h"

namespace confide::core {

namespace {

/// Host-side engine instruments: end-to-end ecall latencies plus the state
/// ocall counts the paper's "optimized data structure" discussion (§5.3)
/// targets.
struct EngineMetrics {
  metrics::Histogram* preverify_latency =
      metrics::GetHistogram("confide.preverify.latency_ns");
  metrics::Histogram* execute_latency =
      metrics::GetHistogram("confide.execute.latency_ns");
  metrics::Counter* get_state_ocalls =
      metrics::GetCounter("confide.state.get_ocall.count");
  metrics::Counter* set_state_ocalls =
      metrics::GetCounter("confide.state.set_ocall.count");
  metrics::Counter* get_batch_ocalls =
      metrics::GetCounter("confide.state.get_batch_ocall.count");
  metrics::Counter* set_batch_ocalls =
      metrics::GetCounter("confide.state.set_batch_ocall.count");
  metrics::Counter* public_executes =
      metrics::GetCounter("confide.public.execute.count");
  metrics::Gauge* conflict_keys_resident =
      metrics::GetGauge("confide.engine.conflict_keys.resident");

  static const EngineMetrics& Get() {
    static const EngineMetrics instruments;
    return instruments;
  }
};

using serialize::RlpDecode;
using serialize::RlpEncode;
using serialize::RlpItem;

uint32_t SelectorOf(std::string_view entry) {
  crypto::Hash256 h = crypto::Keccak256::Digest(AsByteView(entry));
  return LoadBe32(h.data());
}

/// D-Protocol sealed values are iv(12) || ciphertext || tag(16): anything
/// shorter cannot authenticate and must not reach the overlay. Without the
/// check a malformed entry would be stored silently and only explode at
/// the next OpenState.
Status ValidateSealedValue(const Bytes& sealed) {
  if (sealed.size() < crypto::kGcmIvSize + crypto::kGcmTagSize) {
    return Status::Corruption("ocall: malformed sealed value");
  }
  return Status::OK();
}

/// Plain HostEnv for the public engine: state in the clear, nested calls
/// resolved through the on-chain registry. All frames of one execution
/// share the touched-contract sets so the executor's cross-group overlap
/// check sees nested reads/writes (same contract-granularity as the SDM).
class PlainEnv : public vm::HostEnv {
 public:
  PlainEnv(chain::StateDb* state, chain::Address contract,
           const EngineOptions& options, vm::cvm::CvmVm* cvm, vm::evm::EvmVm* evm,
           uint32_t depth, std::set<uint64_t>* read_keys,
           std::set<uint64_t>* written_keys)
      : state_(state),
        contract_(contract),
        options_(options),
        cvm_(cvm),
        evm_(evm),
        depth_(depth),
        read_keys_(read_keys),
        written_keys_(written_keys) {}

  Result<Bytes> GetStorage(ByteView key) override {
    read_keys_->insert(LoadBe64(contract_.data()));
    return state_->Get(contract_, key);
  }

  Status SetStorage(ByteView key, ByteView value) override {
    written_keys_->insert(LoadBe64(contract_.data()));
    state_->Put(contract_, key, ToBytes(value));
    return Status::OK();
  }

  void EmitLog(ByteView data) override { logs.push_back(ToBytes(data)); }

  Result<Bytes> CallContract(ByteView address, ByteView input) override {
    if (depth_ + 1 >= options_.max_call_depth) {
      return Status::VmTrap("public: call depth exceeded");
    }
    if (address.size() != contract_.size()) {
      return Status::InvalidArgument("public: bad callee address");
    }
    chain::Address callee{};
    std::copy(address.begin(), address.end(), callee.begin());
    size_t sep = 0;
    while (sep < input.size() && input[sep] != 0) ++sep;
    std::string entry(reinterpret_cast<const char*>(input.data()), sep);
    ByteView args = (sep < input.size()) ? input.subspan(sep + 1) : ByteView{};

    PlainEnv callee_env(state_, callee, options_, cvm_, evm_, depth_ + 1,
                        read_keys_, written_keys_);
    CONFIDE_ASSIGN_OR_RETURN(vm::ExecutionResult result,
                             callee_env.Run(entry, args));
    for (Bytes& log : callee_env.logs) logs.push_back(std::move(log));
    return result.output;
  }

  Result<vm::ExecutionResult> Run(std::string_view entry, ByteView args) {
    read_keys_->insert(LoadBe64(contract_.data()));  // code load
    CONFIDE_ASSIGN_OR_RETURN(chain::ContractRegistry::ContractInfo info,
                             chain::ContractRegistry::Load(state_, contract_));
    vm::ExecConfig config;
    config.gas_limit = options_.gas_limit;
    config.enable_code_cache = options_.enable_code_cache;
    config.enable_fusion = options_.enable_fusion;
    if (info.vm == chain::VmKind::kCvm) {
      return cvm_->Execute(info.code, entry, args, this, config);
    }
    Bytes calldata(4);
    StoreBe32(calldata.data(), SelectorOf(entry));
    Append(&calldata, args);
    return evm_->Execute(info.code, calldata, this, config);
  }

  std::vector<Bytes> logs;

 private:
  chain::StateDb* state_;
  chain::Address contract_;
  const EngineOptions& options_;
  vm::cvm::CvmVm* cvm_;
  vm::evm::EvmVm* evm_;
  uint32_t depth_;
  std::set<uint64_t>* read_keys_;
  std::set<uint64_t>* written_keys_;
};

}  // namespace

// ---------------------------------------------------------------------------
// PublicEngine
// ---------------------------------------------------------------------------

Result<bool> PublicEngine::PreVerify(const chain::Transaction& tx) {
  if (tx.type != chain::TxType::kPublic) {
    return Status::InvalidArgument("public engine: wrong tx type");
  }
  return crypto::EcdsaVerify(tx.sender, tx.SigningHash(), tx.signature);
}

Result<chain::Receipt> PublicEngine::Execute(const chain::Transaction& tx,
                                             chain::StateDb* state,
                                             chain::TxTouchSet* touch) {
  EngineMetrics::Get().public_executes->Increment();
  std::set<uint64_t> read_keys;
  std::set<uint64_t> written_keys;
  auto fill_touch = [&] {
    if (touch == nullptr) return;
    touch->read_keys.assign(read_keys.begin(), read_keys.end());
    touch->written_keys.assign(written_keys.begin(), written_keys.end());
  };
  chain::Receipt receipt;
  receipt.tx_hash = tx.Hash();

  if (!options_.assume_preverified &&
      !crypto::EcdsaVerify(tx.sender, tx.SigningHash(), tx.signature)) {
    receipt.success = false;
    receipt.status_message = "bad signature";
    return receipt;
  }

  if (tx.entry == "__deploy__") {
    auto deploy = RlpDecode(tx.input);
    if (!deploy.ok() || !deploy->is_list() || deploy->list().size() != 2) {
      receipt.success = false;
      receipt.status_message = "bad deploy payload";
      return receipt;
    }
    auto vm_kind = deploy->list()[0].AsU64();
    if (!vm_kind.ok() || *vm_kind > 1) {
      receipt.success = false;
      receipt.status_message = "bad vm kind";
      return receipt;
    }
    state->Put(tx.contract, AsByteView(chain::ContractRegistry::kCodeKey),
               deploy->list()[1].bytes());
    state->Put(tx.contract, AsByteView(chain::ContractRegistry::kVmKey),
               Bytes{uint8_t(*vm_kind)});
    written_keys.insert(LoadBe64(tx.contract.data()));
    fill_touch();
    receipt.success = true;
    return receipt;
  }

  PlainEnv env(state, tx.contract, options_, &cvm_, &evm_, /*depth=*/0,
               &read_keys, &written_keys);
  auto result = env.Run(tx.entry, tx.input);
  fill_touch();
  if (!result.ok()) {
    receipt.success = false;
    receipt.status_message = result.status().ToString();
    return receipt;
  }
  receipt.success = true;
  receipt.output = std::move(result->output);
  receipt.gas_used = result->gas_used;
  receipt.logs = std::move(env.logs);
  return receipt;
}

uint64_t PublicEngine::ConflictKey(const chain::Transaction& tx) {
  return LoadBe64(tx.contract.data());
}

// ---------------------------------------------------------------------------
// ConfidentialEngine
// ---------------------------------------------------------------------------

Result<std::unique_ptr<ConfidentialEngine>> ConfidentialEngine::Create(
    tee::EnclavePlatform* platform, CsOptions options, uint64_t seed,
    uint64_t enclave_heap_bytes) {
  auto enclave = std::make_shared<CsEnclave>(seed, options);
  CONFIDE_ASSIGN_OR_RETURN(tee::EnclaveId id,
                           platform->CreateEnclave(enclave, enclave_heap_bytes));
  std::unique_ptr<ConfidentialEngine> engine(
      new ConfidentialEngine(platform, std::move(enclave), id, options));
  engine->RegisterOcalls();
  return engine;
}

Status ConfidentialEngine::RecreateEnclave(uint64_t seed,
                                           uint64_t enclave_heap_bytes) {
  // A retried recovery may leave a live-but-unprovisioned enclave behind;
  // reclaim its EPC before loading the replacement.
  if (platform_->IsAlive(enclave_id_)) {
    (void)platform_->DestroyEnclave(enclave_id_);
  }
  auto enclave = std::make_shared<CsEnclave>(seed, options_);
  CONFIDE_ASSIGN_OR_RETURN(
      tee::EnclaveId id, platform_->CreateEnclave(enclave, enclave_heap_bytes));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    enclave_ = std::move(enclave);
    enclave_id_ = id;
    conflict_keys_.clear();  // cached keys came from the dead enclave
    EngineMetrics::Get().conflict_keys_resident->Set(0);
  }
  // Handlers capture `this`, which is unchanged; re-registering keeps the
  // ocall table pointed at this engine after the swap.
  RegisterOcalls();
  metrics::GetCounter("confide.enclave.recreate.count")->Increment();
  return Status::OK();
}

void ConfidentialEngine::RegisterOcalls() {
  platform_->RegisterOcall(kOcallGetState, [this](ByteView payload) -> Result<Bytes> {
    EngineMetrics::Get().get_state_ocalls->Increment();
    CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(payload));
    if (!item.is_list() || item.list().size() != 3) {
      return Status::Corruption("ocall: bad get-state request");
    }
    CONFIDE_ASSIGN_OR_RETURN(uint64_t token, item.list()[0].AsU64());
    chain::StateDb* state;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = contexts_.find(token);
      if (it == contexts_.end()) return Status::NotFound("ocall: unknown token");
      state = it->second;
    }
    if (item.list()[1].bytes().size() != 20) {
      return Status::Corruption("ocall: bad contract address");
    }
    chain::Address contract{};
    std::copy(item.list()[1].bytes().begin(), item.list()[1].bytes().end(),
              contract.begin());
    auto value = state->Get(contract, item.list()[2].bytes());
    std::vector<RlpItem> resp;
    if (value.ok()) {
      resp.push_back(RlpItem::U64(1));
      resp.push_back(RlpItem(std::move(*value)));
    } else if (value.status().IsNotFound()) {
      resp.push_back(RlpItem::U64(0));
      resp.push_back(RlpItem(Bytes{}));
    } else {
      return value.status();
    }
    return RlpEncode(RlpItem::List(std::move(resp)));
  });

  platform_->RegisterOcall(kOcallSetState, [this](ByteView payload) -> Result<Bytes> {
    EngineMetrics::Get().set_state_ocalls->Increment();
    CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(payload));
    if (!item.is_list() || item.list().size() != 4) {
      return Status::Corruption("ocall: bad set-state request");
    }
    CONFIDE_ASSIGN_OR_RETURN(uint64_t token, item.list()[0].AsU64());
    chain::StateDb* state;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = contexts_.find(token);
      if (it == contexts_.end()) return Status::NotFound("ocall: unknown token");
      state = it->second;
    }
    if (item.list()[1].bytes().size() != 20) {
      return Status::Corruption("ocall: bad contract address");
    }
    CONFIDE_RETURN_NOT_OK(ValidateSealedValue(item.list()[3].bytes()));
    chain::Address contract{};
    std::copy(item.list()[1].bytes().begin(), item.list()[1].bytes().end(),
              contract.begin());
    state->Put(contract, item.list()[2].bytes(), item.list()[3].bytes());
    return Bytes{};
  });

  // Batched read: RLP{token, [[contract, key]...]} -> RLP[[found, value]...].
  platform_->RegisterOcall(
      kOcallGetStateBatch, [this](ByteView payload) -> Result<Bytes> {
        EngineMetrics::Get().get_batch_ocalls->Increment();
        CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(payload));
        if (!item.is_list() || item.list().size() != 2 ||
            !item.list()[1].is_list()) {
          return Status::Corruption("ocall: bad batched get-state request");
        }
        CONFIDE_ASSIGN_OR_RETURN(uint64_t token, item.list()[0].AsU64());
        chain::StateDb* state;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          auto it = contexts_.find(token);
          if (it == contexts_.end()) return Status::NotFound("ocall: unknown token");
          state = it->second;
        }
        // Validate the whole request, then resolve it as ONE batched read:
        // CommitStateDb answers all store-level misses from a single
        // pinned snapshot instead of a locked point read per key.
        std::vector<std::pair<chain::Address, Bytes>> wanted;
        wanted.reserve(item.list()[1].list().size());
        for (const RlpItem& entry : item.list()[1].list()) {
          if (!entry.is_list() || entry.list().size() != 2 ||
              entry.list()[0].bytes().size() != 20) {
            return Status::Corruption("ocall: bad batched get-state entry");
          }
          chain::Address contract{};
          std::copy(entry.list()[0].bytes().begin(), entry.list()[0].bytes().end(),
                    contract.begin());
          wanted.emplace_back(contract, entry.list()[1].bytes());
        }
        std::vector<Result<Bytes>> values = state->GetMany(wanted);
        std::vector<RlpItem> rows;
        rows.reserve(values.size());
        for (auto& value : values) {
          std::vector<RlpItem> row;
          if (value.ok()) {
            row.push_back(RlpItem::U64(1));
            row.push_back(RlpItem(std::move(*value)));
          } else if (value.status().IsNotFound()) {
            row.push_back(RlpItem::U64(0));
            row.push_back(RlpItem(Bytes{}));
          } else {
            return value.status();
          }
          rows.push_back(RlpItem::List(std::move(row)));
        }
        return RlpEncode(RlpItem::List(std::move(rows)));
      });

  // Batched write-back flush: RLP{token, [[contract, key, sealed]...]} -> ().
  // Atomic by construction: every entry is validated before the first Put,
  // so a malformed entry (or an injected flush fault) applies nothing.
  platform_->RegisterOcall(
      kOcallSetStateBatch, [this](ByteView payload) -> Result<Bytes> {
        EngineMetrics::Get().set_batch_ocalls->Increment();
        CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(payload));
        if (!item.is_list() || item.list().size() != 2 ||
            !item.list()[1].is_list()) {
          return Status::Corruption("ocall: bad batched set-state request");
        }
        CONFIDE_ASSIGN_OR_RETURN(uint64_t token, item.list()[0].AsU64());
        chain::StateDb* state;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          auto it = contexts_.find(token);
          if (it == contexts_.end()) return Status::NotFound("ocall: unknown token");
          state = it->second;
        }
        const auto& entries = item.list()[1].list();
        for (const RlpItem& entry : entries) {
          if (!entry.is_list() || entry.list().size() != 3 ||
              entry.list()[0].bytes().size() != 20) {
            return Status::Corruption("ocall: bad batched set-state entry");
          }
          CONFIDE_RETURN_NOT_OK(ValidateSealedValue(entry.list()[2].bytes()));
        }
        if (fault::FaultInjector::Global().ShouldFail("fault.confide.batch_flush")) {
          return Status::Unavailable("ocall: injected batch-flush failure");
        }
        for (const RlpItem& entry : entries) {
          chain::Address contract{};
          std::copy(entry.list()[0].bytes().begin(), entry.list()[0].bytes().end(),
                    contract.begin());
          state->Put(contract, entry.list()[1].bytes(), entry.list()[2].bytes());
        }
        return Bytes{};
      });
}

Result<bool> ConfidentialEngine::PreVerify(const chain::Transaction& tx) {
  if (tx.type != chain::TxType::kConfidential) {
    return Status::InvalidArgument("confidential engine: wrong tx type");
  }
  metrics::ScopedLatencyTimer timer(EngineMetrics::Get().preverify_latency);
  std::vector<RlpItem> batch;
  batch.push_back(RlpItem(tx.envelope));
  CONFIDE_ASSIGN_OR_RETURN(
      Bytes resp, platform_->Ecall(enclave_id_, kCsPreVerifyBatch,
                                   RlpEncode(RlpItem::List(std::move(batch)))));
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(resp));
  if (!item.is_list() || item.list().size() != 1 || !item.list()[0].is_list() ||
      item.list()[0].list().size() != 3) {
    return Status::Corruption("confidential engine: bad preverify response");
  }
  const auto& entry = item.list()[0].list();
  CONFIDE_ASSIGN_OR_RETURN(uint64_t valid, entry[1].AsU64());
  CONFIDE_ASSIGN_OR_RETURN(uint64_t conflict_key, entry[2].AsU64());
  if (valid != 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    conflict_keys_[HexEncode(entry[0].bytes())] = conflict_key;
    EngineMetrics::Get().conflict_keys_resident->Set(int64_t(conflict_keys_.size()));
  }
  return valid != 0;
}

Result<chain::Receipt> ConfidentialEngine::Execute(const chain::Transaction& tx,
                                                   chain::StateDb* state,
                                                   chain::TxTouchSet* touch) {
  metrics::ScopedLatencyTimer timer(EngineMetrics::Get().execute_latency);
  uint64_t token = next_token_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    contexts_[token] = state;
  }
  std::vector<RlpItem> req;
  req.push_back(RlpItem::U64(token));
  req.push_back(RlpItem(tx.envelope));
  auto resp = platform_->Ecall(enclave_id_, kCsExecute,
                               RlpEncode(RlpItem::List(std::move(req))),
                               options_.ocall_semantics);
  {
    // The execution is over either way: release the token context and the
    // memoized conflict key (PreVerify re-populates on resubmission), so
    // neither map grows with executed transactions.
    std::lock_guard<std::mutex> lock(mutex_);
    contexts_.erase(token);
    conflict_keys_.erase(HexEncode(crypto::HashView(crypto::Sha256::Digest(tx.envelope))));
    EngineMetrics::Get().conflict_keys_resident->Set(int64_t(conflict_keys_.size()));
  }
  CONFIDE_RETURN_NOT_OK(resp.status());
  CONFIDE_ASSIGN_OR_RETURN(CsExecuteResponse exec, CsExecuteResponse::Deserialize(*resp));
  if (touch != nullptr) {
    // The per-call response carries the touch sets — nothing correctness-
    // relevant flows through last_response_, which stays as a serial
    // profiling aid (Table-1 bench, examples).
    touch->read_keys = exec.read_keys;
    touch->written_keys = exec.written_keys;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_response_ = exec;
  }

  chain::Receipt receipt;
  receipt.tx_hash = tx.Hash();
  receipt.success = exec.success;
  receipt.status_message = exec.status_message;
  receipt.output = std::move(exec.sealed_receipt);  // only the owner can open
  receipt.gas_used = exec.gas_used;
  return receipt;
}

uint64_t ConfidentialEngine::ConflictKey(const chain::Transaction& tx) {
  crypto::Hash256 env_hash = crypto::Sha256::Digest(tx.envelope);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = conflict_keys_.find(HexEncode(crypto::HashView(env_hash)));
  return it == conflict_keys_.end() ? 0 : it->second;
}

}  // namespace confide::core
