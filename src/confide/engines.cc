#include "confide/engines.h"

#include <set>

#include "common/endian.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "crypto/gcm.h"
#include "crypto/keccak.h"
#include "serialize/rlp.h"

namespace confide::core {

namespace {

/// Host-side engine instruments: end-to-end ecall latencies plus the state
/// ocall counts the paper's "optimized data structure" discussion (§5.3)
/// targets.
struct EngineMetrics {
  metrics::Histogram* preverify_latency =
      metrics::GetHistogram("confide.preverify.latency_ns");
  metrics::Histogram* execute_latency =
      metrics::GetHistogram("confide.execute.latency_ns");
  metrics::Counter* get_state_ocalls =
      metrics::GetCounter("confide.state.get_ocall.count");
  metrics::Counter* set_state_ocalls =
      metrics::GetCounter("confide.state.set_ocall.count");
  metrics::Counter* get_batch_ocalls =
      metrics::GetCounter("confide.state.get_batch_ocall.count");
  metrics::Counter* set_batch_ocalls =
      metrics::GetCounter("confide.state.set_batch_ocall.count");
  metrics::Counter* public_executes =
      metrics::GetCounter("confide.public.execute.count");
  metrics::Gauge* conflict_keys_resident =
      metrics::GetGauge("confide.engine.conflict_keys.resident");

  static const EngineMetrics& Get() {
    static const EngineMetrics instruments;
    return instruments;
  }
};

using serialize::RlpReader;
using serialize::RlpWriter;

uint32_t SelectorOf(std::string_view entry) {
  crypto::Hash256 h = crypto::Keccak256::Digest(AsByteView(entry));
  return LoadBe32(h.data());
}

/// D-Protocol sealed values are iv(12) || ciphertext || tag(16): anything
/// shorter cannot authenticate and must not reach the overlay. Without the
/// check a malformed entry would be stored silently and only explode at
/// the next OpenState.
Status ValidateSealedValue(ByteView sealed) {
  if (sealed.size() < crypto::kGcmIvSize + crypto::kGcmTagSize) {
    return Status::Corruption("ocall: malformed sealed value");
  }
  return Status::OK();
}

/// Plain HostEnv for the public engine: state in the clear, nested calls
/// resolved through the on-chain registry. All frames of one execution
/// share the touched-contract sets so the executor's cross-group overlap
/// check sees nested reads/writes (same contract-granularity as the SDM).
class PlainEnv : public vm::HostEnv {
 public:
  PlainEnv(chain::StateDb* state, chain::Address contract,
           const EngineOptions& options, vm::cvm::CvmVm* cvm, vm::evm::EvmVm* evm,
           uint32_t depth, std::set<uint64_t>* read_keys,
           std::set<uint64_t>* written_keys)
      : state_(state),
        contract_(contract),
        options_(options),
        cvm_(cvm),
        evm_(evm),
        depth_(depth),
        read_keys_(read_keys),
        written_keys_(written_keys) {}

  Result<Bytes> GetStorage(ByteView key) override {
    read_keys_->insert(LoadBe64(contract_.data()));
    return state_->Get(contract_, key);
  }

  Status SetStorage(ByteView key, ByteView value) override {
    written_keys_->insert(LoadBe64(contract_.data()));
    state_->Put(contract_, key, ToBytes(value));
    return Status::OK();
  }

  void EmitLog(ByteView data) override { logs.push_back(ToBytes(data)); }

  Result<Bytes> CallContract(ByteView address, ByteView input) override {
    if (depth_ + 1 >= options_.max_call_depth) {
      return Status::VmTrap("public: call depth exceeded");
    }
    if (address.size() != contract_.size()) {
      return Status::InvalidArgument("public: bad callee address");
    }
    chain::Address callee{};
    std::copy(address.begin(), address.end(), callee.begin());
    size_t sep = 0;
    while (sep < input.size() && input[sep] != 0) ++sep;
    std::string entry(reinterpret_cast<const char*>(input.data()), sep);
    ByteView args = (sep < input.size()) ? input.subspan(sep + 1) : ByteView{};

    PlainEnv callee_env(state_, callee, options_, cvm_, evm_, depth_ + 1,
                        read_keys_, written_keys_);
    CONFIDE_ASSIGN_OR_RETURN(vm::ExecutionResult result,
                             callee_env.Run(entry, args));
    for (Bytes& log : callee_env.logs) logs.push_back(std::move(log));
    return result.output;
  }

  Result<vm::ExecutionResult> Run(std::string_view entry, ByteView args) {
    read_keys_->insert(LoadBe64(contract_.data()));  // code load
    CONFIDE_ASSIGN_OR_RETURN(chain::ContractRegistry::ContractInfo info,
                             chain::ContractRegistry::Load(state_, contract_));
    vm::ExecConfig config;
    config.gas_limit = options_.gas_limit;
    config.enable_code_cache = options_.enable_code_cache;
    config.enable_fusion = options_.enable_fusion;
    if (info.vm == chain::VmKind::kCvm) {
      return cvm_->Execute(info.code, entry, args, this, config);
    }
    Bytes calldata(4);
    StoreBe32(calldata.data(), SelectorOf(entry));
    Append(&calldata, args);
    return evm_->Execute(info.code, calldata, this, config);
  }

  std::vector<Bytes> logs;

 private:
  chain::StateDb* state_;
  chain::Address contract_;
  const EngineOptions& options_;
  vm::cvm::CvmVm* cvm_;
  vm::evm::EvmVm* evm_;
  uint32_t depth_;
  std::set<uint64_t>* read_keys_;
  std::set<uint64_t>* written_keys_;
};

}  // namespace

// ---------------------------------------------------------------------------
// PublicEngine
// ---------------------------------------------------------------------------

Result<bool> PublicEngine::PreVerify(const chain::Transaction& tx) {
  if (tx.type != chain::TxType::kPublic) {
    return Status::InvalidArgument("public engine: wrong tx type");
  }
  return crypto::EcdsaVerify(tx.sender, tx.SigningHash(), tx.signature);
}

Result<chain::Receipt> PublicEngine::Execute(const chain::Transaction& tx,
                                             chain::StateDb* state,
                                             chain::TxTouchSet* touch) {
  EngineMetrics::Get().public_executes->Increment();
  std::set<uint64_t> read_keys;
  std::set<uint64_t> written_keys;
  auto fill_touch = [&] {
    if (touch == nullptr) return;
    touch->read_keys.assign(read_keys.begin(), read_keys.end());
    touch->written_keys.assign(written_keys.begin(), written_keys.end());
  };
  chain::Receipt receipt;
  receipt.tx_hash = tx.Hash();

  if (!options_.assume_preverified &&
      !crypto::EcdsaVerify(tx.sender, tx.SigningHash(), tx.signature)) {
    receipt.success = false;
    receipt.status_message = "bad signature";
    return receipt;
  }

  if (tx.entry == "__deploy__") {
    auto deploy = RlpReader::AtList(tx.input);
    uint64_t vm_kind = 0;
    ByteView code;
    bool deploy_ok = false;
    if (deploy.ok()) {
      auto vm_field = deploy->NextU64();
      auto code_field = deploy->NextBytes();
      if (vm_field.ok() && code_field.ok() && deploy->AtEnd()) {
        vm_kind = vm_field.value();
        code = code_field.value();
        deploy_ok = true;
      }
    }
    if (!deploy_ok) {
      receipt.success = false;
      receipt.status_message = "bad deploy payload";
      return receipt;
    }
    if (vm_kind > 1) {
      receipt.success = false;
      receipt.status_message = "bad vm kind";
      return receipt;
    }
    state->Put(tx.contract, AsByteView(chain::ContractRegistry::kCodeKey),
               ToBytes(code));
    state->Put(tx.contract, AsByteView(chain::ContractRegistry::kVmKey),
               Bytes{uint8_t(vm_kind)});
    written_keys.insert(LoadBe64(tx.contract.data()));
    fill_touch();
    receipt.success = true;
    return receipt;
  }

  PlainEnv env(state, tx.contract, options_, &cvm_, &evm_, /*depth=*/0,
               &read_keys, &written_keys);
  auto result = env.Run(tx.entry, tx.input);
  fill_touch();
  if (!result.ok()) {
    receipt.success = false;
    receipt.status_message = result.status().ToString();
    return receipt;
  }
  receipt.success = true;
  receipt.output = std::move(result->output);
  receipt.gas_used = result->gas_used;
  receipt.logs = std::move(env.logs);
  return receipt;
}

uint64_t PublicEngine::ConflictKey(const chain::Transaction& tx) {
  return LoadBe64(tx.contract.data());
}

// ---------------------------------------------------------------------------
// ConfidentialEngine
// ---------------------------------------------------------------------------

Result<std::unique_ptr<ConfidentialEngine>> ConfidentialEngine::Create(
    tee::EnclavePlatform* platform, CsOptions options, uint64_t seed,
    uint64_t enclave_heap_bytes) {
  auto enclave = std::make_shared<CsEnclave>(seed, options);
  CONFIDE_ASSIGN_OR_RETURN(tee::EnclaveId id,
                           platform->CreateEnclave(enclave, enclave_heap_bytes));
  std::unique_ptr<ConfidentialEngine> engine(
      new ConfidentialEngine(platform, std::move(enclave), id, options));
  engine->RegisterOcalls();
  return engine;
}

Status ConfidentialEngine::RecreateEnclave(uint64_t seed,
                                           uint64_t enclave_heap_bytes) {
  // A retried recovery may leave a live-but-unprovisioned enclave behind;
  // reclaim its EPC before loading the replacement.
  if (platform_->IsAlive(enclave_id_)) {
    (void)platform_->DestroyEnclave(enclave_id_);
  }
  auto enclave = std::make_shared<CsEnclave>(seed, options_);
  CONFIDE_ASSIGN_OR_RETURN(
      tee::EnclaveId id, platform_->CreateEnclave(enclave, enclave_heap_bytes));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    enclave_ = std::move(enclave);
    enclave_id_ = id;
    conflict_keys_.clear();  // cached keys came from the dead enclave
    EngineMetrics::Get().conflict_keys_resident->Set(0);
  }
  // Handlers capture `this`, which is unchanged; re-registering keeps the
  // ocall table pointed at this engine after the swap.
  RegisterOcalls();
  metrics::GetCounter("confide.enclave.recreate.count")->Increment();
  return Status::OK();
}

void ConfidentialEngine::RegisterOcalls() {
  platform_->RegisterOcall(kOcallGetState, [this](ByteView payload) -> Result<Bytes> {
    EngineMetrics::Get().get_state_ocalls->Increment();
    auto req = RlpReader::AtList(payload);
    if (!req.ok()) return Status::Corruption("ocall: bad get-state request");
    auto token = req->NextU64();
    auto contract_field = req->NextBytes();
    auto key = req->NextBytes();
    if (!token.ok() || !contract_field.ok() || !key.ok() || !req->AtEnd()) {
      return Status::Corruption("ocall: bad get-state request");
    }
    if (contract_field->size() != 20) {
      return Status::Corruption("ocall: bad contract address");
    }
    chain::StateDb* state;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = contexts_.find(token.value());
      if (it == contexts_.end()) return Status::NotFound("ocall: unknown token");
      state = it->second;
    }
    chain::Address contract{};
    std::copy(contract_field->begin(), contract_field->end(), contract.begin());
    auto value = state->Get(contract, key.value());
    RlpWriter resp;
    size_t list = resp.BeginList();
    if (value.ok()) {
      resp.WriteU64(1);
      resp.WriteBytes(*value);
    } else if (value.status().IsNotFound()) {
      resp.WriteU64(0);
      resp.WriteBytes(ByteView{});
    } else {
      return value.status();
    }
    resp.EndList(list);
    return std::move(resp).Take();
  });

  platform_->RegisterOcall(kOcallSetState, [this](ByteView payload) -> Result<Bytes> {
    EngineMetrics::Get().set_state_ocalls->Increment();
    auto req = RlpReader::AtList(payload);
    if (!req.ok()) return Status::Corruption("ocall: bad set-state request");
    auto token = req->NextU64();
    auto contract_field = req->NextBytes();
    auto key = req->NextBytes();
    auto sealed = req->NextBytes();
    if (!token.ok() || !contract_field.ok() || !key.ok() || !sealed.ok() ||
        !req->AtEnd()) {
      return Status::Corruption("ocall: bad set-state request");
    }
    if (contract_field->size() != 20) {
      return Status::Corruption("ocall: bad contract address");
    }
    CONFIDE_RETURN_NOT_OK(ValidateSealedValue(sealed.value()));
    chain::StateDb* state;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = contexts_.find(token.value());
      if (it == contexts_.end()) return Status::NotFound("ocall: unknown token");
      state = it->second;
    }
    chain::Address contract{};
    std::copy(contract_field->begin(), contract_field->end(), contract.begin());
    state->Put(contract, key.value(), ToBytes(sealed.value()));
    return Bytes{};
  });

  // Batched read: RLP{token, [[contract, key]...]} -> RLP[[found, value]...].
  platform_->RegisterOcall(
      kOcallGetStateBatch, [this](ByteView payload) -> Result<Bytes> {
        EngineMetrics::Get().get_batch_ocalls->Increment();
        auto req = RlpReader::AtList(payload);
        if (!req.ok()) {
          return Status::Corruption("ocall: bad batched get-state request");
        }
        auto token = req->NextU64();
        auto rows_in = req->NextList();
        if (!token.ok() || !rows_in.ok() || !req->AtEnd()) {
          return Status::Corruption("ocall: bad batched get-state request");
        }
        chain::StateDb* state;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          auto it = contexts_.find(token.value());
          if (it == contexts_.end()) return Status::NotFound("ocall: unknown token");
          state = it->second;
        }
        // Validate the whole request, then resolve it as ONE batched read:
        // CommitStateDb answers all store-level misses from a single
        // pinned snapshot instead of a locked point read per key.
        std::vector<std::pair<chain::Address, Bytes>> wanted;
        while (!rows_in->AtEnd()) {
          auto row = rows_in->NextList();
          if (!row.ok()) {
            return Status::Corruption("ocall: bad batched get-state entry");
          }
          auto contract_field = row->NextBytes();
          auto key = row->NextBytes();
          if (!contract_field.ok() || !key.ok() || !row->AtEnd() ||
              contract_field->size() != 20) {
            return Status::Corruption("ocall: bad batched get-state entry");
          }
          chain::Address contract{};
          std::copy(contract_field->begin(), contract_field->end(),
                    contract.begin());
          wanted.emplace_back(contract, ToBytes(key.value()));
        }
        std::vector<Result<Bytes>> values = state->GetMany(wanted);
        RlpWriter resp;
        size_t rows_out = resp.BeginList();
        for (auto& value : values) {
          size_t row = resp.BeginList();
          if (value.ok()) {
            resp.WriteU64(1);
            resp.WriteBytes(*value);
          } else if (value.status().IsNotFound()) {
            resp.WriteU64(0);
            resp.WriteBytes(ByteView{});
          } else {
            return value.status();
          }
          resp.EndList(row);
        }
        resp.EndList(rows_out);
        return std::move(resp).Take();
      });

  // Batched write-back flush: RLP{token, [[contract, key, sealed]...]} -> ().
  // Atomic by construction: every entry is validated before the first Put,
  // so a malformed entry (or an injected flush fault) applies nothing.
  platform_->RegisterOcall(
      kOcallSetStateBatch, [this](ByteView payload) -> Result<Bytes> {
        EngineMetrics::Get().set_batch_ocalls->Increment();
        auto req = RlpReader::AtList(payload);
        if (!req.ok()) {
          return Status::Corruption("ocall: bad batched set-state request");
        }
        auto token = req->NextU64();
        auto rows_in = req->NextList();
        if (!token.ok() || !rows_in.ok() || !req->AtEnd()) {
          return Status::Corruption("ocall: bad batched set-state request");
        }
        chain::StateDb* state;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          auto it = contexts_.find(token.value());
          if (it == contexts_.end()) return Status::NotFound("ocall: unknown token");
          state = it->second;
        }
        struct Row {
          chain::Address contract{};
          ByteView key;
          ByteView sealed;
        };
        std::vector<Row> entries;
        while (!rows_in->AtEnd()) {
          auto row = rows_in->NextList();
          if (!row.ok()) {
            return Status::Corruption("ocall: bad batched set-state entry");
          }
          auto contract_field = row->NextBytes();
          auto key = row->NextBytes();
          auto sealed = row->NextBytes();
          if (!contract_field.ok() || !key.ok() || !sealed.ok() ||
              !row->AtEnd() || contract_field->size() != 20) {
            return Status::Corruption("ocall: bad batched set-state entry");
          }
          CONFIDE_RETURN_NOT_OK(ValidateSealedValue(sealed.value()));
          Row entry;
          std::copy(contract_field->begin(), contract_field->end(),
                    entry.contract.begin());
          entry.key = key.value();
          entry.sealed = sealed.value();
          entries.push_back(entry);
        }
        if (fault::FaultInjector::Global().ShouldFail("fault.confide.batch_flush")) {
          return Status::Unavailable("ocall: injected batch-flush failure");
        }
        for (const Row& entry : entries) {
          state->Put(entry.contract, entry.key, ToBytes(entry.sealed));
        }
        return Bytes{};
      });
}

Result<bool> ConfidentialEngine::PreVerify(const chain::Transaction& tx) {
  if (tx.type != chain::TxType::kConfidential) {
    return Status::InvalidArgument("confidential engine: wrong tx type");
  }
  metrics::ScopedLatencyTimer timer(EngineMetrics::Get().preverify_latency);
  RlpWriter batch(16 + tx.envelope.size());
  size_t batch_list = batch.BeginList();
  batch.WriteBytes(tx.envelope);
  batch.EndList(batch_list);
  CONFIDE_ASSIGN_OR_RETURN(
      Bytes resp, platform_->Ecall(enclave_id_, kCsPreVerifyBatch,
                                   batch.buffer(), options_.ocall_semantics));
  auto reader = RlpReader::AtList(resp);
  if (!reader.ok()) {
    return Status::Corruption("confidential engine: bad preverify response");
  }
  auto entry = reader->NextList();
  if (!entry.ok() || !reader->AtEnd()) {
    return Status::Corruption("confidential engine: bad preverify response");
  }
  auto env_hash = entry->NextBytes();
  auto valid_field = entry->NextU64();
  auto conflict_field = entry->NextU64();
  if (!env_hash.ok() || !valid_field.ok() || !conflict_field.ok() ||
      !entry->AtEnd()) {
    return Status::Corruption("confidential engine: bad preverify response");
  }
  if (valid_field.value() != 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    conflict_keys_[HexEncode(env_hash.value())] = conflict_field.value();
    EngineMetrics::Get().conflict_keys_resident->Set(int64_t(conflict_keys_.size()));
  }
  return valid_field.value() != 0;
}

Result<chain::Receipt> ConfidentialEngine::Execute(const chain::Transaction& tx,
                                                   chain::StateDb* state,
                                                   chain::TxTouchSet* touch) {
  metrics::ScopedLatencyTimer timer(EngineMetrics::Get().execute_latency);
  uint64_t token = next_token_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    contexts_[token] = state;
  }
  RlpWriter req(24 + tx.envelope.size());
  size_t req_list = req.BeginList();
  req.WriteU64(token);
  req.WriteBytes(tx.envelope);
  req.EndList(req_list);
  auto resp = platform_->Ecall(enclave_id_, kCsExecute, req.buffer(),
                               options_.ocall_semantics);
  {
    // The execution is over either way: release the token context and the
    // memoized conflict key (PreVerify re-populates on resubmission), so
    // neither map grows with executed transactions.
    std::lock_guard<std::mutex> lock(mutex_);
    contexts_.erase(token);
    conflict_keys_.erase(HexEncode(crypto::HashView(crypto::Sha256::Digest(tx.envelope))));
    EngineMetrics::Get().conflict_keys_resident->Set(int64_t(conflict_keys_.size()));
  }
  CONFIDE_RETURN_NOT_OK(resp.status());
  CONFIDE_ASSIGN_OR_RETURN(CsExecuteResponse exec, CsExecuteResponse::Deserialize(*resp));
  if (touch != nullptr) {
    // The per-call response carries the touch sets — nothing correctness-
    // relevant flows through last_response_, which stays as a serial
    // profiling aid (Table-1 bench, examples).
    touch->read_keys = exec.read_keys;
    touch->written_keys = exec.written_keys;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_response_ = exec;
  }

  chain::Receipt receipt;
  receipt.tx_hash = tx.Hash();
  receipt.success = exec.success;
  receipt.status_message = exec.status_message;
  receipt.output = std::move(exec.sealed_receipt);  // only the owner can open
  receipt.gas_used = exec.gas_used;
  return receipt;
}

uint64_t ConfidentialEngine::ConflictKey(const chain::Transaction& tx) {
  crypto::Hash256 env_hash = crypto::Sha256::Digest(tx.envelope);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = conflict_keys_.find(HexEncode(crypto::HashView(env_hash)));
  return it == conflict_keys_.end() ? 0 : it->second;
}

}  // namespace confide::core
