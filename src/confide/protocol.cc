#include "confide/protocol.h"

#include "common/endian.h"
#include "crypto/drbg.h"
#include "crypto/gcm.h"
#include "crypto/hmac.h"
#include "serialize/rlp.h"

namespace confide::core {

namespace {

using serialize::RlpReader;
using serialize::RlpWriter;

/// Borrowed views of the three envelope fields; alias `envelope`.
struct EnvelopeFields {
  ByteView ephemeral_pub;  ///< 64 bytes
  ByteView wrapped_key;    ///< Enc(wrap_key, k_tx)
  ByteView body;           ///< Enc(k_tx, Tx_raw)
};

Result<EnvelopeFields> ParseEnvelope(ByteView envelope) {
  auto reader = RlpReader::AtList(envelope);
  if (!reader.ok()) return Status::CryptoError("confide: malformed envelope");
  EnvelopeFields fields;
  auto eph = reader->NextFixed(64, "ephemeral key");
  if (!eph.ok()) return Status::CryptoError("confide: bad ephemeral key");
  fields.ephemeral_pub = eph.value();
  auto wrapped = reader->NextBytes();
  auto body = reader->NextBytes();
  if (!wrapped.ok() || !body.ok() || !reader->AtEnd()) {
    return Status::CryptoError("confide: malformed envelope");
  }
  fields.wrapped_key = wrapped.value();
  fields.body = body.value();
  return fields;
}

// Synthetic IV: first 12 bytes of HMAC(key, "iv" || aad || plain).
Bytes SyntheticIv(const crypto::Hash256& key, ByteView aad, ByteView plain) {
  Bytes input = Concat(AsByteView("confide-siv:"), aad, plain);
  crypto::Hash256 mac = crypto::HmacSha256(crypto::HashView(key), input);
  return Bytes(mac.begin(), mac.begin() + 12);
}

Result<Bytes> GcmSealWithIv(const crypto::Hash256& key, ByteView iv,
                            ByteView plain, ByteView aad) {
  CONFIDE_ASSIGN_OR_RETURN(crypto::AesGcm gcm,
                           crypto::AesGcm::Create(crypto::HashView(key)));
  CONFIDE_ASSIGN_OR_RETURN(Bytes sealed, gcm.Seal(iv, plain, aad));
  return Concat(iv, sealed);
}

Result<Bytes> GcmOpenWithIv(const crypto::Hash256& key, ByteView sealed,
                            ByteView aad) {
  if (sealed.size() < 12) return Status::CryptoError("confide: short ciphertext");
  CONFIDE_ASSIGN_OR_RETURN(crypto::AesGcm gcm,
                           crypto::AesGcm::Create(crypto::HashView(key)));
  return gcm.Open(sealed.first(12), sealed.subspan(12), aad);
}

}  // namespace

TxKey DeriveTxKey(ByteView user_root_key, const crypto::Hash256& raw_tx_hash) {
  Bytes okm = crypto::Hkdf(crypto::HashView(raw_tx_hash), user_root_key,
                           AsByteView("confide-t-protocol-ktx"), 32);
  TxKey key;
  std::copy(okm.begin(), okm.end(), key.begin());
  return key;
}

Result<Bytes> SealEnvelope(const crypto::PublicKey& pk_tx, const TxKey& k_tx,
                           ByteView raw_tx, uint64_t entropy) {
  // ECIES: ephemeral key -> ECDH(pk_tx) -> HKDF wrap key.
  crypto::Drbg rng(Concat(AsByteView("confide-ecies-eph:"),
                          ByteView(reinterpret_cast<const uint8_t*>(&entropy), 8),
                          ByteView(k_tx.data(), 8)));
  crypto::KeyPair ephemeral = crypto::GenerateKeyPair(&rng);
  CONFIDE_ASSIGN_OR_RETURN(crypto::Hash256 shared,
                           crypto::EcdhSharedSecret(ephemeral.priv, pk_tx));
  Bytes wrap = crypto::Hkdf(ByteView{}, crypto::HashView(shared),
                            AsByteView("confide-envelope-wrap"), 32);
  crypto::Hash256 wrap_key;
  std::copy(wrap.begin(), wrap.end(), wrap_key.begin());

  // Enc(pk_tx, k_tx): seal the one-time key under the wrap key.
  Bytes iv1 = SyntheticIv(wrap_key, AsByteView("ktx"), crypto::HashView(k_tx));
  CONFIDE_ASSIGN_OR_RETURN(
      Bytes wrapped_key,
      GcmSealWithIv(wrap_key, iv1, crypto::HashView(k_tx), AsByteView("ktx")));

  // Enc(k_tx, Tx_raw).
  Bytes iv2 = SyntheticIv(k_tx, AsByteView("txraw"), raw_tx);
  CONFIDE_ASSIGN_OR_RETURN(Bytes body,
                           GcmSealWithIv(k_tx, iv2, raw_tx, AsByteView("txraw")));

  RlpWriter w(80 + wrapped_key.size() + body.size());
  size_t list = w.BeginList();
  w.WriteBytes(ByteView(ephemeral.pub.data(), ephemeral.pub.size()));
  w.WriteBytes(wrapped_key);
  w.WriteBytes(body);
  w.EndList(list);
  return std::move(w).Take();
}

Result<OpenedEnvelope> OpenEnvelope(const crypto::PrivateKey& sk_tx,
                                    ByteView envelope) {
  // Zero-copy parse: the three fields stay views into `envelope`; only the
  // GCM opens below materialize plaintext.
  CONFIDE_ASSIGN_OR_RETURN(EnvelopeFields fields, ParseEnvelope(envelope));
  crypto::PublicKey ephemeral{};
  std::copy(fields.ephemeral_pub.begin(), fields.ephemeral_pub.end(),
            ephemeral.begin());

  CONFIDE_ASSIGN_OR_RETURN(crypto::Hash256 shared,
                           crypto::EcdhSharedSecret(sk_tx, ephemeral));
  Bytes wrap = crypto::Hkdf(ByteView{}, crypto::HashView(shared),
                            AsByteView("confide-envelope-wrap"), 32);
  crypto::Hash256 wrap_key;
  std::copy(wrap.begin(), wrap.end(), wrap_key.begin());

  CONFIDE_ASSIGN_OR_RETURN(
      Bytes k_tx_bytes,
      GcmOpenWithIv(wrap_key, fields.wrapped_key, AsByteView("ktx")));
  if (k_tx_bytes.size() != 32) {
    return Status::CryptoError("confide: bad k_tx length");
  }
  OpenedEnvelope opened;
  std::copy(k_tx_bytes.begin(), k_tx_bytes.end(), opened.k_tx.begin());

  CONFIDE_ASSIGN_OR_RETURN(
      opened.raw_tx, GcmOpenWithIv(opened.k_tx, fields.body, AsByteView("txraw")));
  return opened;
}

Result<Bytes> OpenEnvelopeBody(const TxKey& k_tx, ByteView envelope) {
  CONFIDE_ASSIGN_OR_RETURN(EnvelopeFields fields, ParseEnvelope(envelope));
  return GcmOpenWithIv(k_tx, fields.body, AsByteView("txraw"));
}

Result<Bytes> SealReceipt(const TxKey& k_tx, ByteView raw_receipt) {
  Bytes iv = SyntheticIv(k_tx, AsByteView("receipt"), raw_receipt);
  return GcmSealWithIv(k_tx, iv, raw_receipt, AsByteView("receipt"));
}

Result<Bytes> OpenReceipt(const TxKey& k_tx, ByteView sealed_receipt) {
  return GcmOpenWithIv(k_tx, sealed_receipt, AsByteView("receipt"));
}

Result<Bytes> SealState(const StateKey& k_states, ByteView plain, ByteView aad) {
  Bytes iv = SyntheticIv(k_states, aad, plain);
  return GcmSealWithIv(k_states, iv, plain, aad);
}

Result<Bytes> OpenState(const StateKey& k_states, ByteView sealed, ByteView aad) {
  return GcmOpenWithIv(k_states, sealed, aad);
}

Bytes StateAad(ByteView contract_id, ByteView state_key, uint64_t security_version) {
  uint8_t svn[8];
  StoreBe64(svn, security_version);
  return Concat(AsByteView("confide-d-protocol:"), contract_id, AsByteView("/"),
                state_key, ByteView(svn, 8));
}

}  // namespace confide::core
