#include "confide/protocol.h"

#include "common/endian.h"
#include "crypto/drbg.h"
#include "crypto/gcm.h"
#include "crypto/hmac.h"
#include "serialize/rlp.h"

namespace confide::core {

namespace {

using serialize::RlpDecode;
using serialize::RlpEncode;
using serialize::RlpItem;

// Synthetic IV: first 12 bytes of HMAC(key, "iv" || aad || plain).
Bytes SyntheticIv(const crypto::Hash256& key, ByteView aad, ByteView plain) {
  Bytes input = Concat(AsByteView("confide-siv:"), aad, plain);
  crypto::Hash256 mac = crypto::HmacSha256(crypto::HashView(key), input);
  return Bytes(mac.begin(), mac.begin() + 12);
}

Result<Bytes> GcmSealWithIv(const crypto::Hash256& key, ByteView iv,
                            ByteView plain, ByteView aad) {
  CONFIDE_ASSIGN_OR_RETURN(crypto::AesGcm gcm,
                           crypto::AesGcm::Create(crypto::HashView(key)));
  CONFIDE_ASSIGN_OR_RETURN(Bytes sealed, gcm.Seal(iv, plain, aad));
  return Concat(iv, sealed);
}

Result<Bytes> GcmOpenWithIv(const crypto::Hash256& key, ByteView sealed,
                            ByteView aad) {
  if (sealed.size() < 12) return Status::CryptoError("confide: short ciphertext");
  CONFIDE_ASSIGN_OR_RETURN(crypto::AesGcm gcm,
                           crypto::AesGcm::Create(crypto::HashView(key)));
  return gcm.Open(sealed.first(12), sealed.subspan(12), aad);
}

}  // namespace

TxKey DeriveTxKey(ByteView user_root_key, const crypto::Hash256& raw_tx_hash) {
  Bytes okm = crypto::Hkdf(crypto::HashView(raw_tx_hash), user_root_key,
                           AsByteView("confide-t-protocol-ktx"), 32);
  TxKey key;
  std::copy(okm.begin(), okm.end(), key.begin());
  return key;
}

Result<Bytes> SealEnvelope(const crypto::PublicKey& pk_tx, const TxKey& k_tx,
                           ByteView raw_tx, uint64_t entropy) {
  // ECIES: ephemeral key -> ECDH(pk_tx) -> HKDF wrap key.
  crypto::Drbg rng(Concat(AsByteView("confide-ecies-eph:"),
                          ByteView(reinterpret_cast<const uint8_t*>(&entropy), 8),
                          ByteView(k_tx.data(), 8)));
  crypto::KeyPair ephemeral = crypto::GenerateKeyPair(&rng);
  CONFIDE_ASSIGN_OR_RETURN(crypto::Hash256 shared,
                           crypto::EcdhSharedSecret(ephemeral.priv, pk_tx));
  Bytes wrap = crypto::Hkdf(ByteView{}, crypto::HashView(shared),
                            AsByteView("confide-envelope-wrap"), 32);
  crypto::Hash256 wrap_key;
  std::copy(wrap.begin(), wrap.end(), wrap_key.begin());

  // Enc(pk_tx, k_tx): seal the one-time key under the wrap key.
  Bytes iv1 = SyntheticIv(wrap_key, AsByteView("ktx"), crypto::HashView(k_tx));
  CONFIDE_ASSIGN_OR_RETURN(
      Bytes wrapped_key,
      GcmSealWithIv(wrap_key, iv1, crypto::HashView(k_tx), AsByteView("ktx")));

  // Enc(k_tx, Tx_raw).
  Bytes iv2 = SyntheticIv(k_tx, AsByteView("txraw"), raw_tx);
  CONFIDE_ASSIGN_OR_RETURN(Bytes body,
                           GcmSealWithIv(k_tx, iv2, raw_tx, AsByteView("txraw")));

  std::vector<RlpItem> items;
  items.push_back(RlpItem(Bytes(ephemeral.pub.begin(), ephemeral.pub.end())));
  items.push_back(RlpItem(std::move(wrapped_key)));
  items.push_back(RlpItem(std::move(body)));
  return RlpEncode(RlpItem::List(std::move(items)));
}

Result<OpenedEnvelope> OpenEnvelope(const crypto::PrivateKey& sk_tx,
                                    ByteView envelope) {
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(envelope));
  if (!item.is_list() || item.list().size() != 3) {
    return Status::CryptoError("confide: malformed envelope");
  }
  const auto& fields = item.list();
  if (!fields[0].is_bytes() || fields[0].bytes().size() != 64) {
    return Status::CryptoError("confide: bad ephemeral key");
  }
  crypto::PublicKey ephemeral{};
  std::copy(fields[0].bytes().begin(), fields[0].bytes().end(), ephemeral.begin());

  CONFIDE_ASSIGN_OR_RETURN(crypto::Hash256 shared,
                           crypto::EcdhSharedSecret(sk_tx, ephemeral));
  Bytes wrap = crypto::Hkdf(ByteView{}, crypto::HashView(shared),
                            AsByteView("confide-envelope-wrap"), 32);
  crypto::Hash256 wrap_key;
  std::copy(wrap.begin(), wrap.end(), wrap_key.begin());

  CONFIDE_ASSIGN_OR_RETURN(
      Bytes k_tx_bytes,
      GcmOpenWithIv(wrap_key, fields[1].bytes(), AsByteView("ktx")));
  if (k_tx_bytes.size() != 32) {
    return Status::CryptoError("confide: bad k_tx length");
  }
  OpenedEnvelope opened;
  std::copy(k_tx_bytes.begin(), k_tx_bytes.end(), opened.k_tx.begin());

  CONFIDE_ASSIGN_OR_RETURN(
      opened.raw_tx, GcmOpenWithIv(opened.k_tx, fields[2].bytes(), AsByteView("txraw")));
  return opened;
}

Result<Bytes> OpenEnvelopeBody(const TxKey& k_tx, ByteView envelope) {
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(envelope));
  if (!item.is_list() || item.list().size() != 3) {
    return Status::CryptoError("confide: malformed envelope");
  }
  return GcmOpenWithIv(k_tx, item.list()[2].bytes(), AsByteView("txraw"));
}

Result<Bytes> SealReceipt(const TxKey& k_tx, ByteView raw_receipt) {
  Bytes iv = SyntheticIv(k_tx, AsByteView("receipt"), raw_receipt);
  return GcmSealWithIv(k_tx, iv, raw_receipt, AsByteView("receipt"));
}

Result<Bytes> OpenReceipt(const TxKey& k_tx, ByteView sealed_receipt) {
  return GcmOpenWithIv(k_tx, sealed_receipt, AsByteView("receipt"));
}

Result<Bytes> SealState(const StateKey& k_states, ByteView plain, ByteView aad) {
  Bytes iv = SyntheticIv(k_states, aad, plain);
  return GcmSealWithIv(k_states, iv, plain, aad);
}

Result<Bytes> OpenState(const StateKey& k_states, ByteView sealed, ByteView aad) {
  return GcmOpenWithIv(k_states, sealed, aad);
}

Bytes StateAad(ByteView contract_id, ByteView state_key, uint64_t security_version) {
  uint8_t svn[8];
  StoreBe64(svn, security_version);
  return Concat(AsByteView("confide-d-protocol:"), contract_id, AsByteView("/"),
                state_key, ByteView(svn, 8));
}

}  // namespace confide::core
