/// \file key_manager.h
/// \brief KM Enclave and the K-Protocol (paper §3.2.2, §5.1).
///
/// The key-management enclave generates/validates the consortium secrets:
///   * sk_tx / pk_tx — the asymmetric pair whose public half clients seal
///     envelopes to; its fingerprint is locked into the attestation report
///     so a man-in-the-middle cannot substitute keys;
///   * k_states — the symmetric state root key shared by all engines so
///     every replica produces identical encrypted state.
///
/// Two agreement modes, as in the paper:
///   * **Centralized** — a key-management service (HSM stand-in) verifies
///     an enclave's quote and provisions the secrets;
///   * **Decentralized (MAP)** — the first node generates the secrets; a
///     joining node's KM enclave sends a quote carrying an ECDH public
///     key; the provider verifies the quote *and* that the measurement
///     matches its own code, then wraps the secrets to the ECDH key.
///
/// Keys reach the CS enclave over a local-attestation channel, after
/// which the KM enclave can be destroyed to release EPC (paper §5.3).

#pragma once

#include <mutex>
#include <optional>

#include "confide/protocol.h"
#include "tee/enclave.h"

namespace confide::core {

/// \brief KM enclave ecall ids.
enum KmEcall : uint64_t {
  kKmGenerateKeys = 1,     ///< first node: generate sk_tx + k_states
  kKmGetPublicInfo = 2,    ///< -> RLP{pk_tx, quote(user_data = SHA256(pk_tx))}
  kKmCreateJoinRequest = 3,///< joiner: -> serialized quote (ECDH pub bound)
  kKmProvisionPeer = 4,    ///< provider: joiner quote -> provision blob
  kKmAcceptProvision = 5,  ///< joiner: provision blob -> ()
  kKmProvisionCs = 6,      ///< CS local report -> provision blob for CS
};

/// \brief Serialized quote helpers (RLP) for crossing the boundary.
Bytes SerializeQuote(const tee::Quote& quote);
Result<tee::Quote> DeserializeQuote(ByteView wire);

/// \brief The consortium secrets as provisioned.
struct ConsortiumKeys {
  crypto::PrivateKey sk_tx{};
  crypto::PublicKey pk_tx{};
  StateKey k_states{};
};

/// \brief Wraps the secrets to a recipient ECDH public key (provision
/// blob format shared by MAP and the centralized KMS).
Result<Bytes> WrapConsortiumKeys(const ConsortiumKeys& keys,
                                 const crypto::PublicKey& recipient,
                                 uint64_t entropy);

/// \brief Unwraps a provision blob with the recipient's ECDH private key.
Result<ConsortiumKeys> UnwrapConsortiumKeys(const crypto::PrivateKey& recipient_priv,
                                            ByteView blob);

/// \brief The key-management enclave.
class KmEnclave : public tee::Enclave {
 public:
  /// \brief `seed` makes in-enclave key generation deterministic per node.
  explicit KmEnclave(uint64_t seed) : seed_(seed) {}

  std::string CodeIdentity() const override { return "confide-km-enclave"; }
  uint64_t SecurityVersion() const override { return 1; }

  Result<Bytes> HandleEcall(uint64_t fn, ByteView input,
                            tee::EnclaveContext* ctx) override;

 private:
  Result<Bytes> GenerateKeys(tee::EnclaveContext* ctx);
  Result<Bytes> GetPublicInfo(tee::EnclaveContext* ctx);
  Result<Bytes> CreateJoinRequest(tee::EnclaveContext* ctx);
  Result<Bytes> ProvisionPeer(ByteView joiner_quote, tee::EnclaveContext* ctx);
  Result<Bytes> AcceptProvision(ByteView blob, tee::EnclaveContext* ctx);
  Result<Bytes> ProvisionCs(ByteView cs_report, tee::EnclaveContext* ctx);

  uint64_t seed_;
  std::mutex mutex_;
  std::optional<ConsortiumKeys> keys_;
  std::optional<crypto::KeyPair> join_ecdh_;  ///< joiner's channel key
};

/// \brief Centralized key-management service (HSM-backed in production).
/// Holds the consortium secrets outside any enclave and provisions them to
/// KM enclaves whose quote verifies against the expected measurement.
class CentralKms {
 public:
  explicit CentralKms(uint64_t seed);

  const crypto::PublicKey& pk_tx() const { return keys_.pk_tx; }

  /// \brief Validates the joiner quote (root chain + measurement) and
  /// returns a provision blob, or PermissionDenied.
  Result<Bytes> Provision(ByteView join_request_quote,
                          const tee::Measurement& expected_measurement);

 private:
  ConsortiumKeys keys_;
  uint64_t entropy_ = 1;
};

/// \brief Runs the decentralized MAP between two nodes' KM enclaves:
/// joiner creates a join request, provider verifies and wraps, joiner
/// accepts. Fails if the joiner's measurement differs from the provider's.
Status RunMutualAttestation(tee::EnclavePlatform* provider_platform,
                            tee::EnclaveId provider_km,
                            tee::EnclavePlatform* joiner_platform,
                            tee::EnclaveId joiner_km);

}  // namespace confide::core
