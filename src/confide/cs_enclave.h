/// \file cs_enclave.h
/// \brief Contract Service enclave: the Confidential-Engine's trusted half
/// (paper §3.2.1, §5.1, §5.2).
///
/// Inside the enclave live:
///   * the **pre-processor** — opens T-Protocol envelopes, verifies
///     signatures, and (when the pre-verification cache is on, OPT3)
///     memoizes (tx hash → k_tx, f_verified) so the execution phase pays
///     only a symmetric decryption instead of the private-key operation;
///   * the **key cache** — sk_tx / k_states provisioned from the KM
///     enclave over a local-attestation channel;
///   * the **SDM** (secure data module) — a vm::HostEnv whose
///     GetStorage/SetStorage cross the boundary via ocalls and apply
///     D-Protocol sealing, with a memory cache for I/O efficiency;
///   * both VMs (CONFIDE-VM and EVM) with their code caches (OPT1/OPT4).

#pragma once

#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chain/types.h"
#include "common/lru.h"
#include "confide/key_manager.h"
#include "confide/protocol.h"
#include "tee/enclave.h"
#include "vm/cvm/interpreter.h"
#include "vm/evm/evm.h"

namespace confide::core {

/// \brief CS enclave ecall ids.
enum CsEcall : uint64_t {
  kCsGetProvisionReport = 20,  ///< -> RLP local report, user_data = ECDH pub
  kCsInstallKeys = 21,         ///< provision blob -> ()
  kCsPreVerifyBatch = 22,      ///< RLP [envelope...] -> RLP [{hash, valid, ck}...]
  kCsExecute = 23,             ///< RLP{token, envelope} -> execute response
  /// State continuity: RLP{height, state_root} -> freshness header wire.
  /// Bumps the trusted `state-gen` counter, then MACs the new generation.
  kCsSealFreshness = 24,
  /// State continuity: RLP{header wire, tip_height, tip_root} ->
  /// RLP{action} (FreshnessAction), or StaleState / PermissionDenied when
  /// the sealed state fails the freshness rules.
  kCsVerifyFreshness = 25,
};

/// \brief Ocall ids served by the untrusted host (ConfidentialEngine).
enum CsOcall : uint64_t {
  kOcallGetState = 30,  ///< RLP{token, contract, key} -> RLP{found, value}
  kOcallSetState = 31,  ///< RLP{token, contract, key, value} -> ()
  /// Batched read: RLP{token, [[contract, key]...]} -> RLP[[found, value]...]
  kOcallGetStateBatch = 32,
  /// Batched write-back flush: RLP{token, [[contract, key, sealed]...]} -> ().
  /// Applied atomically by the host: every entry validated before any Put.
  kOcallSetStateBatch = 33,
};

/// \brief Feature toggles matching the paper's optimization ladder.
struct CsOptions {
  bool enable_preverify_cache = true;   ///< OPT3 (§5.2)
  bool enable_code_cache = true;        ///< OPT1 (§6.4)
  bool enable_fusion = true;            ///< OPT4 (§6.4)
  bool enable_state_cache = true;       ///< SDM memory cache (§3.2.1)
  /// OPT5: write-back StateJournal — buffer SetStorage in-enclave and flush
  /// once per execution; prefetch the learned read set in one batched ocall.
  bool enable_ocall_batching = true;
  /// Marshalling mode for the sealed-data crossings: the execute /
  /// pre-verify ecalls and the state ocalls ("optimized data structure",
  /// §5.3). Defaults to `user_check` — every byte of those payloads is
  /// either host-visible metadata (token, contract address, storage key,
  /// all of which land in the plaintext KV anyway) or GCM-sealed
  /// ciphertext, so skipping the bridge copy gives up nothing. Bypassed
  /// bytes stay accounted under `tee.boundary.bytes_viewed`. Provisioning
  /// and freshness ecalls always marshal copy-in/out.
  tee::PointerSemantics ocall_semantics = tee::PointerSemantics::kUserCheck;
  uint64_t gas_limit = 400'000'000;
  uint32_t max_call_depth = 64;
  /// LRU capacity of the OPT3 pre-verification cache (entries).
  uint32_t preverify_cache_capacity = 4096;
  /// LRU capacity of the per-contract read-set prefetch profiles.
  uint32_t readset_profile_capacity = 128;
};

/// \brief Result of one in-enclave execution, as returned to the host.
struct CsExecuteResponse {
  bool success = false;
  std::string status_message;
  Bytes sealed_receipt;      ///< Rpt_conf = Enc(k_tx, Rpt_raw)
  uint64_t gas_used = 0;
  uint64_t conflict_key = 0;
  // Operation counts (Table 1 profile).
  uint64_t contract_calls = 0;
  uint64_t get_storage_ops = 0;
  uint64_t set_storage_ops = 0;
  /// Conflict keys of every contract this execution read / wrote, nested
  /// calls included — the parallel executor's cross-group overlap check.
  std::vector<uint64_t> read_keys;
  std::vector<uint64_t> written_keys;
  /// Writes carried by the final batched flush (0 when batching is off).
  uint64_t batch_flush_ops = 0;

  Bytes Serialize() const;
  static Result<CsExecuteResponse> Deserialize(ByteView wire);
};

/// \brief One entry of a pre-verification batch response.
struct PreVerifyResult {
  crypto::Hash256 tx_hash{};
  bool valid = false;
  uint64_t conflict_key = 0;
};

/// \brief The contract-service enclave.
class CsEnclave : public tee::Enclave {
 public:
  explicit CsEnclave(uint64_t seed, CsOptions options = CsOptions{})
      : seed_(seed),
        options_(options),
        meta_cache_(options.preverify_cache_capacity),
        readset_profiles_(options.readset_profile_capacity) {}

  std::string CodeIdentity() const override { return "confide-cs-enclave"; }
  uint64_t SecurityVersion() const override { return 1; }

  Result<Bytes> HandleEcall(uint64_t fn, ByteView input,
                            tee::EnclaveContext* ctx) override;

  /// \brief Cache statistics (tests/benchmarks).
  uint64_t preverify_cache_hits() const { return cache_hits_; }
  uint64_t preverify_cache_misses() const { return cache_misses_; }
  vm::cvm::CvmStats cvm_stats() const { return cvm_.stats(); }

 private:
  struct CachedMeta {
    TxKey k_tx{};
    bool verified = false;
    uint64_t conflict_key = 0;
  };

  Result<Bytes> GetProvisionReport(tee::EnclaveContext* ctx);
  Result<Bytes> InstallKeys(ByteView blob);
  Result<Bytes> PreVerifyBatch(ByteView request, tee::EnclaveContext* ctx);
  Result<Bytes> Execute(ByteView request, tee::EnclaveContext* ctx);
  Result<Bytes> SealFreshness(ByteView request, tee::EnclaveContext* ctx);
  Result<Bytes> VerifyFreshness(ByteView request, tee::EnclaveContext* ctx);

  // Opens an envelope, via cache (symmetric path) or sk_tx (full path).
  Result<OpenedEnvelope> OpenWithCache(ByteView envelope,
                                       const crypto::Hash256& env_hash,
                                       bool* was_verified);

  uint64_t seed_;
  CsOptions options_;
  std::mutex mutex_;
  std::optional<ConsortiumKeys> keys_;
  std::optional<crypto::KeyPair> provision_ecdh_;
  LruCache<std::string, CachedMeta> meta_cache_;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;

  /// Read-set prefetch profiles, keyed by the top-level contract address:
  /// the (contract, key) pairs recent executions of that contract touched,
  /// issued as one batched get at the start of the next execution (OPT5).
  /// Keys untouched for several consecutive executions decay out, so
  /// workloads with per-transaction keys (unique asset ids) don't inflate
  /// the prefetch into a scan of dead state.
  struct ReadSetProfile {
    struct Entry {
      chain::Address contract{};
      Bytes key;
      uint32_t idle = 0;  ///< consecutive executions without a touch
    };
    std::vector<Entry> keys;
  };
  std::mutex profile_mutex_;
  LruCache<std::string, ReadSetProfile> readset_profiles_;

  vm::cvm::CvmVm cvm_;
  vm::evm::EvmVm evm_;

  // OPT1 code cache: decrypted contract code by address, so repeat
  // executions skip the sealed-code ocall + D-Protocol decryption (the
  // wire-format decode is cached separately inside the VMs).
  std::mutex code_cache_mutex_;
  std::unordered_map<std::string, std::pair<Bytes, uint8_t>> code_cache_;

 public:
  /// \brief Accessors used by the in-enclave SDM (internal).
  std::mutex* code_cache_mutex() { return &code_cache_mutex_; }
  std::unordered_map<std::string, std::pair<Bytes, uint8_t>>* code_cache() {
    return &code_cache_;
  }
};

}  // namespace confide::core
