/// \file cs_enclave.h
/// \brief Contract Service enclave: the Confidential-Engine's trusted half
/// (paper §3.2.1, §5.1, §5.2).
///
/// Inside the enclave live:
///   * the **pre-processor** — opens T-Protocol envelopes, verifies
///     signatures, and (when the pre-verification cache is on, OPT3)
///     memoizes (tx hash → k_tx, f_verified) so the execution phase pays
///     only a symmetric decryption instead of the private-key operation;
///   * the **key cache** — sk_tx / k_states provisioned from the KM
///     enclave over a local-attestation channel;
///   * the **SDM** (secure data module) — a vm::HostEnv whose
///     GetStorage/SetStorage cross the boundary via ocalls and apply
///     D-Protocol sealing, with a memory cache for I/O efficiency;
///   * both VMs (CONFIDE-VM and EVM) with their code caches (OPT1/OPT4).

#pragma once

#include <mutex>
#include <optional>
#include <unordered_map>

#include "chain/types.h"
#include "confide/key_manager.h"
#include "confide/protocol.h"
#include "tee/enclave.h"
#include "vm/cvm/interpreter.h"
#include "vm/evm/evm.h"

namespace confide::core {

/// \brief CS enclave ecall ids.
enum CsEcall : uint64_t {
  kCsGetProvisionReport = 20,  ///< -> RLP local report, user_data = ECDH pub
  kCsInstallKeys = 21,         ///< provision blob -> ()
  kCsPreVerifyBatch = 22,      ///< RLP [envelope...] -> RLP [{hash, valid, ck}...]
  kCsExecute = 23,             ///< RLP{token, envelope} -> execute response
};

/// \brief Ocall ids served by the untrusted host (ConfidentialEngine).
enum CsOcall : uint64_t {
  kOcallGetState = 30,  ///< RLP{token, contract, key} -> RLP{found, value}
  kOcallSetState = 31,  ///< RLP{token, contract, key, value} -> ()
};

/// \brief Feature toggles matching the paper's optimization ladder.
struct CsOptions {
  bool enable_preverify_cache = true;   ///< OPT3 (§5.2)
  bool enable_code_cache = true;        ///< OPT1 (§6.4)
  bool enable_fusion = true;            ///< OPT4 (§6.4)
  bool enable_state_cache = true;       ///< SDM memory cache (§3.2.1)
  /// Marshalling mode for state ocalls ("optimized data structure", §5.3).
  tee::PointerSemantics ocall_semantics = tee::PointerSemantics::kCopyInOut;
  uint64_t gas_limit = 400'000'000;
  uint32_t max_call_depth = 64;
};

/// \brief Result of one in-enclave execution, as returned to the host.
struct CsExecuteResponse {
  bool success = false;
  std::string status_message;
  Bytes sealed_receipt;      ///< Rpt_conf = Enc(k_tx, Rpt_raw)
  uint64_t gas_used = 0;
  uint64_t conflict_key = 0;
  // Operation counts (Table 1 profile).
  uint64_t contract_calls = 0;
  uint64_t get_storage_ops = 0;
  uint64_t set_storage_ops = 0;

  Bytes Serialize() const;
  static Result<CsExecuteResponse> Deserialize(ByteView wire);
};

/// \brief One entry of a pre-verification batch response.
struct PreVerifyResult {
  crypto::Hash256 tx_hash{};
  bool valid = false;
  uint64_t conflict_key = 0;
};

/// \brief The contract-service enclave.
class CsEnclave : public tee::Enclave {
 public:
  explicit CsEnclave(uint64_t seed, CsOptions options = CsOptions{})
      : seed_(seed), options_(options) {}

  std::string CodeIdentity() const override { return "confide-cs-enclave"; }
  uint64_t SecurityVersion() const override { return 1; }

  Result<Bytes> HandleEcall(uint64_t fn, ByteView input,
                            tee::EnclaveContext* ctx) override;

  /// \brief Cache statistics (tests/benchmarks).
  uint64_t preverify_cache_hits() const { return cache_hits_; }
  uint64_t preverify_cache_misses() const { return cache_misses_; }
  vm::cvm::CvmStats cvm_stats() const { return cvm_.stats(); }

 private:
  struct CachedMeta {
    TxKey k_tx{};
    bool verified = false;
    uint64_t conflict_key = 0;
  };

  Result<Bytes> GetProvisionReport(tee::EnclaveContext* ctx);
  Result<Bytes> InstallKeys(ByteView blob);
  Result<Bytes> PreVerifyBatch(ByteView request, tee::EnclaveContext* ctx);
  Result<Bytes> Execute(ByteView request, tee::EnclaveContext* ctx);

  // Opens an envelope, via cache (symmetric path) or sk_tx (full path).
  Result<OpenedEnvelope> OpenWithCache(ByteView envelope,
                                       const crypto::Hash256& env_hash,
                                       bool* was_verified);

  uint64_t seed_;
  CsOptions options_;
  std::mutex mutex_;
  std::optional<ConsortiumKeys> keys_;
  std::optional<crypto::KeyPair> provision_ecdh_;
  std::unordered_map<std::string, CachedMeta> meta_cache_;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;

  vm::cvm::CvmVm cvm_;
  vm::evm::EvmVm evm_;

  // OPT1 code cache: decrypted contract code by address, so repeat
  // executions skip the sealed-code ocall + D-Protocol decryption (the
  // wire-format decode is cached separately inside the VMs).
  std::mutex code_cache_mutex_;
  std::unordered_map<std::string, std::pair<Bytes, uint8_t>> code_cache_;

 public:
  /// \brief Accessors used by the in-enclave SDM (internal).
  std::mutex* code_cache_mutex() { return &code_cache_mutex_; }
  std::unordered_map<std::string, std::pair<Bytes, uint8_t>>* code_cache() {
    return &code_cache_;
  }
};

}  // namespace confide::core
