/// \file engines.h
/// \brief The two execution engines the chain routes to (paper Figure 2):
/// Public-Engine (plain execution, no enclave) and Confidential-Engine
/// (the CONFIDE plugin wrapping the CS enclave).

#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "chain/engine.h"
#include "confide/cs_enclave.h"
#include "vm/cvm/interpreter.h"
#include "vm/evm/evm.h"

namespace confide::core {

/// \brief VM feature toggles shared by both engines.
struct EngineOptions {
  bool enable_code_cache = true;
  bool enable_fusion = true;
  /// When the platform pipeline guarantees transactions reached execution
  /// through the verified pool (§5.2), the execution phase can skip the
  /// redundant signature re-check, as production deployments do.
  bool assume_preverified = false;
  uint64_t gas_limit = 400'000'000;
  uint32_t max_call_depth = 64;
};

/// \brief Public-Engine: verifies and executes TYPE=0 transactions
/// directly against contract state, no encryption anywhere.
class PublicEngine : public chain::ExecutionEngine {
 public:
  explicit PublicEngine(EngineOptions options = EngineOptions{})
      : options_(options) {}

  using chain::ExecutionEngine::Execute;

  Result<bool> PreVerify(const chain::Transaction& tx) override;
  Result<chain::Receipt> Execute(const chain::Transaction& tx,
                                 chain::StateDb* state,
                                 chain::TxTouchSet* touch) override;
  uint64_t ConflictKey(const chain::Transaction& tx) override;

  vm::cvm::CvmStats cvm_stats() const { return cvm_.stats(); }

 private:
  EngineOptions options_;
  vm::cvm::CvmVm cvm_;
  vm::evm::EvmVm evm_;
};

/// \brief Confidential-Engine: the untrusted half of CONFIDE. Owns the
/// CS enclave handle, registers the state ocalls, routes pre-verification
/// and execution through ecalls, and caches conflict keys host-side so the
/// parallel scheduler can group encrypted transactions.
class ConfidentialEngine : public chain::ExecutionEngine {
 public:
  /// \brief Creates the CS enclave on `platform` and wires its ocalls.
  /// The enclave still needs keys (provision via KM enclave or KMS).
  static Result<std::unique_ptr<ConfidentialEngine>> Create(
      tee::EnclavePlatform* platform, CsOptions options = CsOptions{},
      uint64_t seed = 1, uint64_t enclave_heap_bytes = 48ull << 20);

  using chain::ExecutionEngine::Execute;

  /// \brief P1–P5 pipeline for one transaction (the node parallelizes
  /// across transactions).
  Result<bool> PreVerify(const chain::Transaction& tx) override;

  Result<chain::Receipt> Execute(const chain::Transaction& tx,
                                 chain::StateDb* state,
                                 chain::TxTouchSet* touch) override;

  uint64_t ConflictKey(const chain::Transaction& tx) override;

  /// \brief Replaces a crashed CS enclave with a freshly created one
  /// (same options, new `seed`) inside this engine object, so every
  /// ExecutionEngine pointer held by the node stays valid. The new
  /// enclave has no keys — the caller must re-provision it (see
  /// ConfideSystem::RecoverConfidentialEngine).
  Status RecreateEnclave(uint64_t seed,
                         uint64_t enclave_heap_bytes = 48ull << 20);

  tee::EnclaveId enclave_id() const { return enclave_id_; }
  CsEnclave* enclave() { return enclave_.get(); }
  tee::EnclavePlatform* platform() { return platform_; }

  /// \brief Operation counters of the most recent Execute() (Table 1
  /// profiling: contract calls, Get/SetStorage ops).
  CsExecuteResponse last_response() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return last_response_;
  }

 private:
  ConfidentialEngine(tee::EnclavePlatform* platform,
                     std::shared_ptr<CsEnclave> enclave, tee::EnclaveId id,
                     CsOptions options)
      : platform_(platform),
        enclave_(std::move(enclave)),
        enclave_id_(id),
        options_(options) {}

  void RegisterOcalls();

  tee::EnclavePlatform* platform_;
  std::shared_ptr<CsEnclave> enclave_;
  tee::EnclaveId enclave_id_;
  CsOptions options_;

  mutable std::mutex mutex_;
  std::unordered_map<uint64_t, chain::StateDb*> contexts_;   // token -> state
  std::unordered_map<std::string, uint64_t> conflict_keys_;  // tx hash -> key
  std::atomic<uint64_t> next_token_{1};
  CsExecuteResponse last_response_;
};

}  // namespace confide::core
