/// \file freshness.h
/// \brief Authenticated state-freshness header binding sealed state to a
/// trusted monotonic counter and a chain height (state continuity,
/// Memoir/Ariadne lineage).
///
/// Every sealed-state generation the CS enclave signs off on carries a
/// header {counter, height, state_root} MAC'd under a sealing key only
/// same-code enclaves on the same platform can derive. On recovery and
/// after peer sync the enclave re-derives the key, checks the MAC, and
/// compares the header against its trusted counter and the store tip —
/// so a host that restores an old-but-validly-sealed snapshot produces a
/// *detected* StaleState failure instead of silently forked execution.

#pragma once

#include <string_view>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/sha256.h"

namespace confide::core {

/// \brief Label of the enclave sealing key the freshness MAC derives from.
inline constexpr std::string_view kFreshnessKeyLabel = "freshness";

/// \brief Trusted monotonic counter family backing state generations.
inline constexpr std::string_view kStateGenCounterFamily = "state-gen";

/// \brief Host-side KV key the current freshness header is stored under.
inline constexpr std::string_view kFreshnessKvKey = "fresh/state";

/// \brief The freshness header: one sealed-state generation's binding.
struct FreshnessHeader {
  uint64_t counter = 0;           ///< state-gen counter value at seal time
  uint64_t height = 0;            ///< chain height the seal covers
  crypto::Hash256 state_root{};   ///< state root at `height`
  crypto::Hash256 mac{};          ///< HMAC(SealKey("freshness"), body)

  /// \brief RLP{counter, height, state_root, mac}.
  Bytes Serialize() const;
  static Result<FreshnessHeader> Deserialize(ByteView wire);
};

/// \brief The MAC'd body: RLP{counter, height, state_root}.
Bytes FreshnessMacBody(uint64_t counter, uint64_t height,
                       const crypto::Hash256& state_root);

/// \brief Outcome of an in-enclave freshness verification that accepted
/// the state (rejections surface as non-OK Status, chiefly StaleState).
enum class FreshnessAction : uint64_t {
  kFresh = 0,         ///< header matches the store tip exactly
  kResealNeeded = 1,  ///< state is newer than the seal; re-seal to cover it
};

}  // namespace confide::core
