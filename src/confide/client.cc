#include "confide/client.h"

#include "crypto/drbg.h"
#include "serialize/rlp.h"

namespace confide::core {

using serialize::RlpReader;

Client::Client(uint64_t seed, const crypto::PublicKey& pk_tx) : pk_tx_(pk_tx) {
  crypto::Drbg rng(Concat(AsByteView("confide-client:"),
                          ByteView(reinterpret_cast<const uint8_t*>(&seed), 8)));
  keypair_ = crypto::GenerateKeyPair(&rng);
  rng.Fill(root_key_.data(), root_key_.size());
  entropy_ = seed;
}

chain::Transaction Client::MakeRawTx(const chain::Address& contract,
                                     std::string entry, Bytes input) {
  chain::Transaction tx;
  tx.type = chain::TxType::kPublic;  // the raw form is public-shaped
  tx.sender = keypair_.pub;
  tx.contract = contract;
  tx.entry = std::move(entry);
  tx.input = std::move(input);
  tx.nonce = nonce_++;
  tx.signature = *crypto::EcdsaSign(keypair_.priv, tx.SigningHash());
  return tx;
}

chain::Transaction Client::MakePublicTx(const chain::Address& contract,
                                        std::string entry, Bytes input) {
  return MakeRawTx(contract, std::move(entry), std::move(input));
}

Result<ConfidentialSubmission> Client::MakeConfidentialTx(
    const chain::Address& contract, std::string entry, Bytes input) {
  chain::Transaction raw = MakeRawTx(contract, std::move(entry), std::move(input));
  Bytes raw_bytes = raw.Serialize();

  ConfidentialSubmission submission;
  submission.raw_hash = crypto::Sha256::Digest(raw_bytes);
  submission.k_tx = DeriveTxKey(crypto::HashView(root_key_), submission.raw_hash);
  CONFIDE_ASSIGN_OR_RETURN(
      Bytes envelope, SealEnvelope(pk_tx_, submission.k_tx, raw_bytes, ++entropy_));
  submission.tx.type = chain::TxType::kConfidential;
  submission.tx.envelope = std::move(envelope);
  return submission;
}

Result<chain::Receipt> Client::OpenSealedReceipt(const TxKey& k_tx,
                                                 ByteView sealed_receipt) {
  CONFIDE_ASSIGN_OR_RETURN(Bytes raw, OpenReceipt(k_tx, sealed_receipt));
  return chain::Receipt::Deserialize(raw);
}

Result<crypto::PublicKey> Client::VerifyEnginePublicKey(
    ByteView info_blob, const tee::Measurement& expected_km_measurement) {
  // A network-delivered blob: reader-based parse so a list-shaped field
  // fails with Corruption instead of tripping the item-tree accessors.
  auto reader = RlpReader::AtList(info_blob);
  if (!reader.ok()) return Status::Corruption("client: bad pk info blob");
  auto pk_field = reader->NextFixed(64, "pk_tx");
  if (!pk_field.ok()) return Status::Corruption("client: bad pk_tx");
  auto quote_field = reader->NextBytes();
  if (!quote_field.ok() || !reader->AtEnd()) {
    return Status::Corruption("client: bad pk info blob");
  }
  ByteView pk_bytes = pk_field.value();
  crypto::PublicKey pk{};
  std::copy(pk_bytes.begin(), pk_bytes.end(), pk.begin());

  CONFIDE_ASSIGN_OR_RETURN(tee::Quote quote,
                           DeserializeQuote(quote_field.value()));
  if (!tee::VerifyQuote(quote)) {
    return Status::PermissionDenied("client: quote rejected");
  }
  if (quote.mrenclave != expected_km_measurement) {
    return Status::PermissionDenied("client: measurement mismatch");
  }
  crypto::Hash256 fingerprint = crypto::Sha256::Digest(pk_bytes);
  if (!ConstantTimeEqual(quote.user_data, crypto::HashView(fingerprint))) {
    return Status::PermissionDenied("client: pk fingerprint mismatch (MITM?)");
  }
  return pk;
}

}  // namespace confide::core
