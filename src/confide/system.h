/// \file system.h
/// \brief Whole-node bootstrap: platform + enclaves + K-Protocol +
/// engines + chain node, wired the way a deployment would be.
///
/// Bootstrap sequence per node (paper §5.1):
///  1. create the SGX platform and the KM enclave;
///  2. obtain the consortium keys — first node generates them, joiners run
///     the MAP against an existing node (or a CentralKms provisions them);
///  3. create the CS enclave; provision keys over the local-attestation
///     channel;
///  4. destroy the KM enclave to release EPC ("it will be destroyed as
///     soon as possible", §5.3);
///  5. stand up the chain node with both engines.

#pragma once

#include <memory>
#include <vector>

#include "chain/node.h"
#include "chain/sync.h"
#include "confide/client.h"
#include "confide/engines.h"

namespace confide::core {

struct SystemOptions {
  uint32_t parallelism = 1;
  size_t block_max_bytes = 4096;
  CsOptions cs;
  EngineOptions public_engine;
  tee::TeeCostModel tee_model;
  uint64_t seed = 1;
  /// Destroy the KM enclave after provisioning (paper default). Keep it
  /// alive only when later MAP provisioning of other nodes is expected.
  bool destroy_km_after_provision = true;
  /// Attempts per RecoverConfidentialEngine() call before giving up.
  uint32_t recover_max_retries = 4;
  /// Base backoff between recovery attempts; doubles per retry. Charged
  /// to the node's SimClock (modelled, not wall time).
  uint64_t recover_backoff_ns = 1'000'000;
  /// Directory for the node state WAL; empty = volatile state store.
  std::string state_wal_dir;
  /// Blocks in flight between the node's execute and commit stages;
  /// 0 = serial lifecycle (see chain::NodeOptions::pipeline_depth).
  uint32_t pipeline_depth = 0;
  /// fsync once per commit group (WAL group commit).
  bool sync_commits = false;
  /// Real per-block commit wait modelling the ~6 ms cloud-SSD write.
  uint64_t commit_write_latency_ns = 0;
  /// Stable-checkpoint production (chain::CheckpointOptions); the interval
  /// of 0 disables checkpointing.
  chain::CheckpointOptions checkpoint;
  /// Consortium validator set certifying checkpoints. Required when
  /// `checkpoint.interval > 0` or the node serves/consumes state sync;
  /// must outlive the system.
  const chain::ValidatorSet* validators = nullptr;
  /// State continuity: bind sealed state to a trusted monotonic counter +
  /// chain height (freshness header), verify it on recovery/sync, and
  /// refuse rolled-back state with StaleState. Off by default — the
  /// freshness ecalls perturb exact transition-count assertions.
  bool enable_state_continuity = false;
  /// Durable backing for the platform's trusted monotonic counters
  /// (models counter NVRAM; kept separate from the node store a rollback
  /// attack would snapshot). Tests share one across simulated restarts;
  /// when continuity is enabled and none is given, a fresh volatile store
  /// is created (counters then persist only via the NVRAM shadow).
  std::shared_ptr<storage::KvStore> counter_store;
};

/// \brief One fully bootstrapped CONFIDE node.
class ConfideSystem {
 public:
  /// \brief Boots the first node: its KM enclave generates the keys.
  static Result<std::unique_ptr<ConfideSystem>> BootstrapFirst(SystemOptions options);

  /// \brief Boots a joining node via decentralized MAP against `provider`
  /// (whose KM enclave must still be alive).
  static Result<std::unique_ptr<ConfideSystem>> BootstrapJoin(
      SystemOptions options, ConfideSystem* provider);

  /// \brief Boots a node provisioned by a centralized KMS.
  static Result<std::unique_ptr<ConfideSystem>> BootstrapWithKms(
      SystemOptions options, CentralKms* kms);

  /// \brief The engine public key clients seal envelopes to.
  const crypto::PublicKey& pk_tx() const { return pk_tx_; }

  /// \brief The pk_tx info blob (key + binding quote) served to clients.
  const Bytes& pk_info_blob() const { return pk_info_blob_; }

  chain::Node* node() { return node_.get(); }
  ConfidentialEngine* confidential_engine() { return confidential_.get(); }
  PublicEngine* public_engine() { return public_.get(); }
  tee::EnclavePlatform* platform() { return platform_.get(); }
  SimClock* clock() { return &clock_; }
  tee::EnclaveId km_enclave_id() const { return km_id_; }
  bool km_alive() const { return km_alive_; }

  /// \brief Submits, pre-verifies, proposes, and applies until the pools
  /// drain. Convenience for tests/examples; returns total receipts.
  Result<std::vector<chain::Receipt>> RunToCompletion();

  /// \brief True while the CS enclave backing the confidential engine is
  /// loaded on the platform.
  bool ConfidentialEngineAlive() const;

  /// \brief Names a peer node whose live KM enclave can re-provision this
  /// node's keys (decentralized MAP recovery source).
  void SetRecoveryPeer(ConfideSystem* peer) { recovery_peer_ = peer; }

  /// \brief Names a centralized KMS as the key-recovery source.
  void SetRecoveryKms(CentralKms* kms) { recovery_kms_ = kms; }

  /// \brief Rebuilds a crashed CS enclave and re-provisions its keys, so
  /// `km_alive_ == false` does not mean permanent key loss. Key source
  /// order: own live KM enclave, else a fresh KM enclave fed via the
  /// recovery peer's MAP or the recovery KMS. Retries with exponential
  /// backoff (modelled time, common::RetryPolicy) up to
  /// `recover_max_retries` attempts.
  Status RecoverConfidentialEngine();

  /// \brief Catches this node up to the live tip from peer providers:
  /// re-provisions the CS enclave keys first when the engine is dead (the
  /// synced sealed state must be readable and replay executes
  /// confidential transactions), then runs checkpoint discovery,
  /// Merkle-verified chunk transfer and block replay (sync.h). `options`
  /// may customize retry behaviour; the clock and (absent) reprovision
  /// hook are wired to this system.
  Result<chain::SyncStats> SyncFromPeers(
      const std::vector<chain::SyncProvider*>& providers,
      chain::SyncOptions options = chain::SyncOptions{});

  /// \brief Seals the current store tip (height + state root) into a new
  /// freshness generation: bumps the enclave's trusted `state-gen`
  /// counter, MACs the header in-enclave and persists it host-side. No-op
  /// unless `enable_state_continuity`.
  Status SealStateGeneration();

  /// \brief Verifies the persisted freshness header against the store tip
  /// inside the enclave. Accepted-but-newer state is re-sealed; an absent
  /// header (first boot) is vacuously fresh and seals the tip. Returns
  /// StaleState when the store or the counters were rolled back — the
  /// caller must refuse the state (peer sync is the remedy). No-op unless
  /// `enable_state_continuity`.
  Status VerifyStateContinuity();

 private:
  ConfideSystem() = default;

  /// \brief One recovery attempt: recreate enclave + re-provision keys.
  Status TryRecoverOnce();

  /// \brief TryRecoverOnce + in-enclave freshness verification of the
  /// recovered state (state continuity).
  Status TryRecoverOnceWithFreshness();

  static Result<std::unique_ptr<ConfideSystem>> BootstrapCommon(
      SystemOptions options,
      const std::function<Result<Bytes>(ConfideSystem*)>& obtain_keys);

  Status ProvisionCs();
  Status FinishBootstrap();

  SystemOptions options_;
  SimClock clock_;
  std::unique_ptr<tee::EnclavePlatform> platform_;
  std::shared_ptr<KmEnclave> km_;
  tee::EnclaveId km_id_ = 0;
  bool km_alive_ = false;
  std::unique_ptr<ConfidentialEngine> confidential_;
  std::unique_ptr<PublicEngine> public_;
  std::unique_ptr<chain::Node> node_;
  crypto::PublicKey pk_tx_{};
  Bytes pk_info_blob_;
  ConfideSystem* recovery_peer_ = nullptr;
  CentralKms* recovery_kms_ = nullptr;
};

}  // namespace confide::core
