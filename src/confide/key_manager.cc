#include "confide/key_manager.h"

#include "common/metrics.h"
#include "crypto/drbg.h"
#include "crypto/gcm.h"
#include "crypto/hmac.h"
#include "serialize/rlp.h"

namespace confide::core {

namespace {

using serialize::RlpDecode;
using serialize::RlpEncode;
using serialize::RlpItem;

RlpItem FixedItem(ByteView b) { return RlpItem(ToBytes(b)); }

Result<Bytes> GetFixed(const RlpItem& item, size_t n, const char* what) {
  if (!item.is_bytes() || item.bytes().size() != n) {
    return Status::Corruption(std::string("k-protocol: bad ") + what);
  }
  return item.bytes();
}

}  // namespace

Bytes SerializeQuote(const tee::Quote& quote) {
  std::vector<RlpItem> items;
  items.push_back(FixedItem(crypto::HashView(quote.mrenclave)));
  items.push_back(RlpItem::U64(quote.security_version));
  items.push_back(RlpItem::U64(quote.platform_id));
  items.push_back(RlpItem(quote.user_data));
  items.push_back(FixedItem(ByteView(quote.platform_key.data(), 64)));
  items.push_back(FixedItem(ByteView(quote.platform_cert.data(), 64)));
  items.push_back(FixedItem(ByteView(quote.signature.data(), 64)));
  return RlpEncode(RlpItem::List(std::move(items)));
}

Result<tee::Quote> DeserializeQuote(ByteView wire) {
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(wire));
  if (!item.is_list() || item.list().size() != 7) {
    return Status::Corruption("k-protocol: bad quote");
  }
  const auto& f = item.list();
  tee::Quote quote;
  CONFIDE_ASSIGN_OR_RETURN(Bytes mr, GetFixed(f[0], 32, "measurement"));
  std::copy(mr.begin(), mr.end(), quote.mrenclave.begin());
  CONFIDE_ASSIGN_OR_RETURN(quote.security_version, f[1].AsU64());
  CONFIDE_ASSIGN_OR_RETURN(quote.platform_id, f[2].AsU64());
  if (!f[3].is_bytes()) return Status::Corruption("k-protocol: bad user data");
  quote.user_data = f[3].bytes();
  CONFIDE_ASSIGN_OR_RETURN(Bytes pk, GetFixed(f[4], 64, "platform key"));
  std::copy(pk.begin(), pk.end(), quote.platform_key.begin());
  CONFIDE_ASSIGN_OR_RETURN(Bytes cert, GetFixed(f[5], 64, "platform cert"));
  std::copy(cert.begin(), cert.end(), quote.platform_cert.begin());
  CONFIDE_ASSIGN_OR_RETURN(Bytes sig, GetFixed(f[6], 64, "signature"));
  std::copy(sig.begin(), sig.end(), quote.signature.begin());
  return quote;
}

Result<Bytes> WrapConsortiumKeys(const ConsortiumKeys& keys,
                                 const crypto::PublicKey& recipient,
                                 uint64_t entropy) {
  static metrics::Counter* wraps =
      metrics::GetCounter("confide.km.provision.wrap.count");
  wraps->Increment();
  crypto::Drbg rng(Concat(AsByteView("confide-provision-eph:"),
                          ByteView(reinterpret_cast<const uint8_t*>(&entropy), 8)));
  crypto::KeyPair ephemeral = crypto::GenerateKeyPair(&rng);
  CONFIDE_ASSIGN_OR_RETURN(crypto::Hash256 shared,
                           crypto::EcdhSharedSecret(ephemeral.priv, recipient));
  Bytes wrap = crypto::Hkdf(ByteView{}, crypto::HashView(shared),
                            AsByteView("confide-provision-wrap"), 32);
  crypto::Hash256 wrap_key;
  std::copy(wrap.begin(), wrap.end(), wrap_key.begin());

  std::vector<RlpItem> payload_items;
  payload_items.push_back(FixedItem(ByteView(keys.sk_tx.data(), 32)));
  payload_items.push_back(FixedItem(ByteView(keys.pk_tx.data(), 64)));
  payload_items.push_back(FixedItem(crypto::HashView(keys.k_states)));
  Bytes payload = RlpEncode(RlpItem::List(std::move(payload_items)));

  CONFIDE_ASSIGN_OR_RETURN(crypto::AesGcm gcm,
                           crypto::AesGcm::Create(crypto::HashView(wrap_key)));
  Bytes iv = rng.Generate(crypto::kGcmIvSize);
  CONFIDE_ASSIGN_OR_RETURN(Bytes sealed,
                           gcm.Seal(iv, payload, AsByteView("provision")));
  SecureZero(&payload);

  std::vector<RlpItem> items;
  items.push_back(FixedItem(ByteView(ephemeral.pub.data(), 64)));
  items.push_back(RlpItem(std::move(iv)));
  items.push_back(RlpItem(std::move(sealed)));
  return RlpEncode(RlpItem::List(std::move(items)));
}

Result<ConsortiumKeys> UnwrapConsortiumKeys(const crypto::PrivateKey& recipient_priv,
                                            ByteView blob) {
  static metrics::Counter* unwraps =
      metrics::GetCounter("confide.km.provision.unwrap.count");
  unwraps->Increment();
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(blob));
  if (!item.is_list() || item.list().size() != 3) {
    return Status::CryptoError("k-protocol: bad provision blob");
  }
  const auto& f = item.list();
  CONFIDE_ASSIGN_OR_RETURN(Bytes eph, GetFixed(f[0], 64, "ephemeral key"));
  crypto::PublicKey ephemeral{};
  std::copy(eph.begin(), eph.end(), ephemeral.begin());

  CONFIDE_ASSIGN_OR_RETURN(crypto::Hash256 shared,
                           crypto::EcdhSharedSecret(recipient_priv, ephemeral));
  Bytes wrap = crypto::Hkdf(ByteView{}, crypto::HashView(shared),
                            AsByteView("confide-provision-wrap"), 32);
  crypto::Hash256 wrap_key;
  std::copy(wrap.begin(), wrap.end(), wrap_key.begin());

  CONFIDE_ASSIGN_OR_RETURN(crypto::AesGcm gcm,
                           crypto::AesGcm::Create(crypto::HashView(wrap_key)));
  if (!f[1].is_bytes() || !f[2].is_bytes()) {
    return Status::CryptoError("k-protocol: bad provision blob");
  }
  CONFIDE_ASSIGN_OR_RETURN(Bytes payload,
                           gcm.Open(f[1].bytes(), f[2].bytes(), AsByteView("provision")));

  CONFIDE_ASSIGN_OR_RETURN(RlpItem payload_item, RlpDecode(payload));
  if (!payload_item.is_list() || payload_item.list().size() != 3) {
    return Status::CryptoError("k-protocol: bad provision payload");
  }
  const auto& p = payload_item.list();
  ConsortiumKeys keys;
  CONFIDE_ASSIGN_OR_RETURN(Bytes sk, GetFixed(p[0], 32, "sk_tx"));
  std::copy(sk.begin(), sk.end(), keys.sk_tx.begin());
  CONFIDE_ASSIGN_OR_RETURN(Bytes pk, GetFixed(p[1], 64, "pk_tx"));
  std::copy(pk.begin(), pk.end(), keys.pk_tx.begin());
  CONFIDE_ASSIGN_OR_RETURN(Bytes ks, GetFixed(p[2], 32, "k_states"));
  std::copy(ks.begin(), ks.end(), keys.k_states.begin());
  SecureZero(&payload);
  return keys;
}

// ---------------------------------------------------------------------------
// KmEnclave
// ---------------------------------------------------------------------------

Result<Bytes> KmEnclave::HandleEcall(uint64_t fn, ByteView input,
                                     tee::EnclaveContext* ctx) {
  switch (fn) {
    case kKmGenerateKeys: return GenerateKeys(ctx);
    case kKmGetPublicInfo: return GetPublicInfo(ctx);
    case kKmCreateJoinRequest: return CreateJoinRequest(ctx);
    case kKmProvisionPeer: return ProvisionPeer(input, ctx);
    case kKmAcceptProvision: return AcceptProvision(input, ctx);
    case kKmProvisionCs: return ProvisionCs(input, ctx);
    default:
      return Status::InvalidArgument("km: unknown ecall");
  }
}

Result<Bytes> KmEnclave::GenerateKeys(tee::EnclaveContext* ctx) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (keys_) return Status::AlreadyExists("km: keys already present");
  crypto::Drbg rng(Concat(AsByteView("confide-km-keygen:"),
                          ByteView(reinterpret_cast<const uint8_t*>(&seed_), 8)));
  ConsortiumKeys keys;
  crypto::KeyPair tx_pair = crypto::GenerateKeyPair(&rng);
  keys.sk_tx = tx_pair.priv;
  keys.pk_tx = tx_pair.pub;
  rng.Fill(keys.k_states.data(), keys.k_states.size());
  keys_ = keys;
  ctx->MonitorEmit(1, "km: consortium keys generated");
  return Bytes{};
}

Result<Bytes> KmEnclave::GetPublicInfo(tee::EnclaveContext* ctx) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!keys_) return Status::Unavailable("km: keys not provisioned");
  // Lock pk_tx's fingerprint into the attestation report (MITM immunity).
  crypto::Hash256 fingerprint =
      crypto::Sha256::Digest(ByteView(keys_->pk_tx.data(), 64));
  tee::Quote quote = ctx->CreateQuote(crypto::HashView(fingerprint));
  std::vector<RlpItem> items;
  items.push_back(RlpItem(Bytes(keys_->pk_tx.begin(), keys_->pk_tx.end())));
  items.push_back(RlpItem(SerializeQuote(quote)));
  return RlpEncode(RlpItem::List(std::move(items)));
}

Result<Bytes> KmEnclave::CreateJoinRequest(tee::EnclaveContext* ctx) {
  std::lock_guard<std::mutex> lock(mutex_);
  crypto::Drbg rng(Concat(AsByteView("confide-km-join:"),
                          ByteView(reinterpret_cast<const uint8_t*>(&seed_), 8)));
  join_ecdh_ = crypto::GenerateKeyPair(&rng);
  // Quote binds the channel key to this measured enclave.
  tee::Quote quote =
      ctx->CreateQuote(ByteView(join_ecdh_->pub.data(), join_ecdh_->pub.size()));
  return SerializeQuote(quote);
}

Result<Bytes> KmEnclave::ProvisionPeer(ByteView joiner_quote,
                                       tee::EnclaveContext* ctx) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!keys_) return Status::Unavailable("km: keys not provisioned");
  CONFIDE_ASSIGN_OR_RETURN(tee::Quote quote, DeserializeQuote(joiner_quote));
  if (!tee::VerifyQuote(quote)) {
    return Status::PermissionDenied("km: joiner quote rejected");
  }
  // Mutual authentication: the joiner must run the same measured code.
  if (quote.mrenclave != ctx->Self()) {
    return Status::PermissionDenied("km: joiner measurement mismatch");
  }
  if (quote.user_data.size() != 64) {
    return Status::PermissionDenied("km: joiner channel key malformed");
  }
  crypto::PublicKey channel{};
  std::copy(quote.user_data.begin(), quote.user_data.end(), channel.begin());
  return WrapConsortiumKeys(*keys_, channel, seed_ ^ quote.platform_id);
}

Result<Bytes> KmEnclave::AcceptProvision(ByteView blob, tee::EnclaveContext* ctx) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!join_ecdh_) return Status::Unavailable("km: no join in progress");
  CONFIDE_ASSIGN_OR_RETURN(ConsortiumKeys keys,
                           UnwrapConsortiumKeys(join_ecdh_->priv, blob));
  keys_ = keys;
  join_ecdh_.reset();
  ctx->MonitorEmit(1, "km: provisioned via MAP");
  return Bytes{};
}

Result<Bytes> KmEnclave::ProvisionCs(ByteView cs_report, tee::EnclaveContext* ctx) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!keys_) return Status::Unavailable("km: keys not provisioned");
  // Parse the CS enclave's local report: RLP{mrenclave, svn, user_data, mac}.
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(cs_report));
  if (!item.is_list() || item.list().size() != 4) {
    return Status::Corruption("km: bad local report");
  }
  const auto& f = item.list();
  tee::LocalReport report;
  CONFIDE_ASSIGN_OR_RETURN(Bytes mr, GetFixed(f[0], 32, "cs measurement"));
  std::copy(mr.begin(), mr.end(), report.mrenclave.begin());
  CONFIDE_ASSIGN_OR_RETURN(report.security_version, f[1].AsU64());
  if (!f[2].is_bytes()) return Status::Corruption("km: bad local report");
  report.user_data = f[2].bytes();
  CONFIDE_ASSIGN_OR_RETURN(Bytes mac, GetFixed(f[3], 32, "report mac"));
  std::copy(mac.begin(), mac.end(), report.mac.begin());

  if (!ctx->VerifyLocalReport(report)) {
    return Status::PermissionDenied("km: CS local report rejected");
  }
  if (report.user_data.size() != 64) {
    return Status::PermissionDenied("km: CS channel key malformed");
  }
  crypto::PublicKey channel{};
  std::copy(report.user_data.begin(), report.user_data.end(), channel.begin());
  return WrapConsortiumKeys(*keys_, channel, seed_ + 0x9000);
}

// ---------------------------------------------------------------------------
// CentralKms
// ---------------------------------------------------------------------------

CentralKms::CentralKms(uint64_t seed) {
  crypto::Drbg rng(Concat(AsByteView("confide-central-kms:"),
                          ByteView(reinterpret_cast<const uint8_t*>(&seed), 8)));
  crypto::KeyPair tx_pair = crypto::GenerateKeyPair(&rng);
  keys_.sk_tx = tx_pair.priv;
  keys_.pk_tx = tx_pair.pub;
  rng.Fill(keys_.k_states.data(), keys_.k_states.size());
}

Result<Bytes> CentralKms::Provision(ByteView join_request_quote,
                                    const tee::Measurement& expected_measurement) {
  CONFIDE_ASSIGN_OR_RETURN(tee::Quote quote, DeserializeQuote(join_request_quote));
  if (!tee::VerifyQuote(quote)) {
    return Status::PermissionDenied("kms: quote rejected");
  }
  if (quote.mrenclave != expected_measurement) {
    return Status::PermissionDenied("kms: measurement mismatch");
  }
  if (quote.user_data.size() != 64) {
    return Status::PermissionDenied("kms: channel key malformed");
  }
  crypto::PublicKey channel{};
  std::copy(quote.user_data.begin(), quote.user_data.end(), channel.begin());
  return WrapConsortiumKeys(keys_, channel, entropy_++);
}

// ---------------------------------------------------------------------------
// MAP orchestration
// ---------------------------------------------------------------------------

Status RunMutualAttestation(tee::EnclavePlatform* provider_platform,
                            tee::EnclaveId provider_km,
                            tee::EnclavePlatform* joiner_platform,
                            tee::EnclaveId joiner_km) {
  CONFIDE_ASSIGN_OR_RETURN(
      Bytes join_request,
      joiner_platform->Ecall(joiner_km, kKmCreateJoinRequest, ByteView{}));
  CONFIDE_ASSIGN_OR_RETURN(
      Bytes blob,
      provider_platform->Ecall(provider_km, kKmProvisionPeer, join_request));
  CONFIDE_RETURN_NOT_OK(
      joiner_platform->Ecall(joiner_km, kKmAcceptProvision, blob).status());
  return Status::OK();
}

}  // namespace confide::core
