#include "confide/freshness.h"

#include "serialize/rlp.h"

namespace confide::core {

using serialize::RlpDecode;
using serialize::RlpEncode;
using serialize::RlpItem;

Bytes FreshnessMacBody(uint64_t counter, uint64_t height,
                       const crypto::Hash256& state_root) {
  std::vector<RlpItem> items;
  items.push_back(RlpItem::U64(counter));
  items.push_back(RlpItem::U64(height));
  items.push_back(RlpItem(crypto::HashToBytes(state_root)));
  return RlpEncode(RlpItem::List(std::move(items)));
}

Bytes FreshnessHeader::Serialize() const {
  std::vector<RlpItem> items;
  items.push_back(RlpItem::U64(counter));
  items.push_back(RlpItem::U64(height));
  items.push_back(RlpItem(crypto::HashToBytes(state_root)));
  items.push_back(RlpItem(crypto::HashToBytes(mac)));
  return RlpEncode(RlpItem::List(std::move(items)));
}

Result<FreshnessHeader> FreshnessHeader::Deserialize(ByteView wire) {
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(wire));
  if (!item.is_list() || item.list().size() != 4) {
    return Status::Corruption("freshness: malformed header");
  }
  const auto& f = item.list();
  FreshnessHeader header;
  CONFIDE_ASSIGN_OR_RETURN(header.counter, f[0].AsU64());
  CONFIDE_ASSIGN_OR_RETURN(header.height, f[1].AsU64());
  if (!f[2].is_bytes() || f[2].bytes().size() != header.state_root.size() ||
      !f[3].is_bytes() || f[3].bytes().size() != header.mac.size()) {
    return Status::Corruption("freshness: malformed header digests");
  }
  std::copy(f[2].bytes().begin(), f[2].bytes().end(), header.state_root.begin());
  std::copy(f[3].bytes().begin(), f[3].bytes().end(), header.mac.begin());
  return header;
}

}  // namespace confide::core
