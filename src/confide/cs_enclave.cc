#include "confide/cs_enclave.h"

#include <chrono>
#include <map>

#include "common/endian.h"
#include "common/metrics.h"
#include "crypto/drbg.h"
#include "crypto/keccak.h"
#include "serialize/rlp.h"

namespace confide::core {

namespace {

using serialize::RlpDecode;
using serialize::RlpEncode;
using serialize::RlpItem;

uint64_t WallNowNs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

/// Pre-processor pipeline phases (paper §5.2): P1 batch decode, P2 envelope
/// decryption, P3 signature verification, P4 cache aggregation, P5 contract
/// execution. Latencies are wall nanoseconds per transaction.
struct CsMetrics {
  metrics::Histogram* p1_decode = metrics::GetHistogram("confide.phase.p1_decode_ns");
  metrics::Histogram* p2_envelope_open =
      metrics::GetHistogram("confide.phase.p2_envelope_open_ns");
  metrics::Histogram* p3_sig_verify =
      metrics::GetHistogram("confide.phase.p3_sig_verify_ns");
  metrics::Histogram* p4_cache_update =
      metrics::GetHistogram("confide.phase.p4_cache_update_ns");
  metrics::Histogram* p5_execute =
      metrics::GetHistogram("confide.phase.p5_execute_ns");
  metrics::Counter* preverified_txs =
      metrics::GetCounter("confide.preverify.tx.count");
  metrics::Counter* executed_txs = metrics::GetCounter("confide.execute.tx.count");
  metrics::Counter* failed_txs = metrics::GetCounter("confide.execute.failed.count");
  metrics::Counter* cache_hits =
      metrics::GetCounter("confide.preverify_cache.hit.count");
  metrics::Counter* cache_misses =
      metrics::GetCounter("confide.preverify_cache.miss.count");
  metrics::Counter* sdm_get_ops = metrics::GetCounter("confide.sdm.get.count");
  metrics::Counter* sdm_set_ops = metrics::GetCounter("confide.sdm.set.count");
  metrics::Counter* code_cache_hits =
      metrics::GetCounter("confide.code_cache.hit.count");
  metrics::Counter* code_cache_misses =
      metrics::GetCounter("confide.code_cache.miss.count");

  static const CsMetrics& Get() {
    static const CsMetrics instruments;
    return instruments;
  }
};

uint64_t ConflictKeyOf(const chain::Address& contract) {
  return LoadBe64(contract.data());
}

uint32_t SelectorOf(std::string_view entry) {
  crypto::Hash256 h = crypto::Keccak256::Digest(AsByteView(entry));
  return LoadBe32(h.data());
}

/// The SDM: the in-enclave HostEnv. State crossings are ocalls; values are
/// sealed/opened with D-Protocol; a per-execution memory cache absorbs
/// repeated reads (the SCF-AR flow reads the same accounts repeatedly).
class SdmEnv : public vm::HostEnv {
 public:
  using CodeCache = std::unordered_map<std::string, std::pair<Bytes, uint8_t>>;

  SdmEnv(tee::EnclaveContext* ctx, const CsOptions& options, uint64_t token,
         const StateKey& k_states, chain::Address contract, uint64_t svn,
         vm::cvm::CvmVm* cvm, vm::evm::EvmVm* evm, uint32_t depth,
         CsExecuteResponse* stats, std::mutex* code_cache_mutex,
         CodeCache* code_cache)
      : ctx_(ctx),
        options_(options),
        token_(token),
        k_states_(k_states),
        contract_(contract),
        svn_(svn),
        cvm_(cvm),
        evm_(evm),
        depth_(depth),
        stats_(stats),
        code_cache_mutex_(code_cache_mutex),
        code_cache_(code_cache) {}

  Result<Bytes> GetStorage(ByteView key) override {
    if (count_ops_) {
      ++stats_->get_storage_ops;
      CsMetrics::Get().sdm_get_ops->Increment();
    }
    std::string cache_key = CacheKey(key);
    if (options_.enable_state_cache) {
      auto it = cache_.find(cache_key);
      if (it != cache_.end()) {
        if (!it->second) return Status::NotFound("sdm: cached absent");
        return *it->second;
      }
    }
    // Ocall: fetch the sealed value from the untrusted store.
    std::vector<RlpItem> req;
    req.push_back(RlpItem::U64(token_));
    req.push_back(RlpItem(Bytes(contract_.begin(), contract_.end())));
    req.push_back(RlpItem(ToBytes(key)));
    CONFIDE_ASSIGN_OR_RETURN(
        Bytes resp, ctx_->Ocall(kOcallGetState, RlpEncode(RlpItem::List(std::move(req))),
                                options_.ocall_semantics));
    CONFIDE_ASSIGN_OR_RETURN(RlpItem resp_item, RlpDecode(resp));
    if (!resp_item.is_list() || resp_item.list().size() != 2) {
      return Status::Corruption("sdm: bad get-state response");
    }
    CONFIDE_ASSIGN_OR_RETURN(uint64_t found, resp_item.list()[0].AsU64());
    if (found == 0) {
      if (options_.enable_state_cache) cache_[cache_key] = std::nullopt;
      return Status::NotFound("sdm: no such state");
    }
    Bytes aad = StateAad(ByteView(contract_.data(), contract_.size()), key, svn_);
    CONFIDE_ASSIGN_OR_RETURN(Bytes plain,
                             OpenState(k_states_, resp_item.list()[1].bytes(), aad));
    if (options_.enable_state_cache) cache_[cache_key] = plain;
    return plain;
  }

  Status SetStorage(ByteView key, ByteView value) override {
    ++stats_->set_storage_ops;
    CsMetrics::Get().sdm_set_ops->Increment();
    Bytes aad = StateAad(ByteView(contract_.data(), contract_.size()), key, svn_);
    CONFIDE_ASSIGN_OR_RETURN(Bytes sealed, SealState(k_states_, value, aad));
    std::vector<RlpItem> req;
    req.push_back(RlpItem::U64(token_));
    req.push_back(RlpItem(Bytes(contract_.begin(), contract_.end())));
    req.push_back(RlpItem(ToBytes(key)));
    req.push_back(RlpItem(std::move(sealed)));
    CONFIDE_RETURN_NOT_OK(
        ctx_->Ocall(kOcallSetState, RlpEncode(RlpItem::List(std::move(req))),
                    options_.ocall_semantics)
            .status());
    if (options_.enable_state_cache) cache_[CacheKey(key)] = ToBytes(value);
    return Status::OK();
  }

  void EmitLog(ByteView data) override { logs.push_back(ToBytes(data)); }

  Result<Bytes> CallContract(ByteView address, ByteView input) override {
    ++stats_->contract_calls;
    if (depth_ + 1 >= options_.max_call_depth) {
      return Status::VmTrap("sdm: call depth exceeded");
    }
    if (address.size() != contract_.size()) {
      return Status::InvalidArgument("sdm: bad callee address");
    }
    chain::Address callee{};
    std::copy(address.begin(), address.end(), callee.begin());
    // Convention: input = entry-name '\0' args.
    size_t sep = 0;
    while (sep < input.size() && input[sep] != 0) ++sep;
    std::string entry(reinterpret_cast<const char*>(input.data()), sep);
    ByteView args = (sep < input.size()) ? input.subspan(sep + 1) : ByteView{};

    SdmEnv callee_env(ctx_, options_, token_, k_states_, callee, svn_, cvm_, evm_,
                      depth_ + 1, stats_, code_cache_mutex_, code_cache_);
    CONFIDE_ASSIGN_OR_RETURN(vm::ExecutionResult result,
                             callee_env.RunContract(entry, args));
    for (Bytes& log : callee_env.logs) logs.push_back(std::move(log));
    return result.output;
  }

  /// Loads this contract's code via the SDM and runs it on the right VM.
  /// With the OPT1 code cache, repeat executions skip the sealed-code
  /// ocall and its D-Protocol decryption entirely. Code fetches bypass
  /// the Table-1 state-op counters (contract loading, not contract I/O).
  Result<vm::ExecutionResult> RunContract(std::string_view entry, ByteView args) {
    std::string cache_key = chain::AddressToString(contract_);
    Bytes code;
    Bytes vm_byte;
    bool cached = false;
    if (options_.enable_code_cache) {
      std::lock_guard<std::mutex> lock(*code_cache_mutex_);
      auto it = code_cache_->find(cache_key);
      if (it != code_cache_->end()) {
        code = it->second.first;
        vm_byte = Bytes{it->second.second};
        cached = true;
      }
    }
    (cached ? CsMetrics::Get().code_cache_hits : CsMetrics::Get().code_cache_misses)
        ->Increment();
    if (!cached) {
      count_ops_ = false;
      auto code_result = GetStorage(AsByteView("__code__"));
      auto vm_result = GetStorage(AsByteView("__vm__"));
      count_ops_ = true;
      CONFIDE_RETURN_NOT_OK(code_result.status());
      CONFIDE_RETURN_NOT_OK(vm_result.status());
      code = std::move(*code_result);
      vm_byte = std::move(*vm_result);
      if (options_.enable_code_cache && vm_byte.size() == 1) {
        std::lock_guard<std::mutex> lock(*code_cache_mutex_);
        (*code_cache_)[cache_key] = {code, vm_byte[0]};
      }
    }
    if (vm_byte.size() != 1) return Status::Corruption("sdm: bad vm kind");

    vm::ExecConfig config;
    config.gas_limit = options_.gas_limit;
    config.enable_code_cache = options_.enable_code_cache;
    config.enable_fusion = options_.enable_fusion;

    if (vm_byte[0] == 0) {
      return cvm_->Execute(code, entry, args, this, config);
    }
    Bytes calldata(4);
    StoreBe32(calldata.data(), SelectorOf(entry));
    Append(&calldata, args);
    return evm_->Execute(code, calldata, this, config);
  }

  std::vector<Bytes> logs;

 private:
  std::string CacheKey(ByteView key) const {
    return chain::AddressToString(contract_) + "/" + ToString(key);
  }

  tee::EnclaveContext* ctx_;
  const CsOptions& options_;
  uint64_t token_;
  const StateKey& k_states_;
  chain::Address contract_;
  uint64_t svn_;
  vm::cvm::CvmVm* cvm_;
  vm::evm::EvmVm* evm_;
  uint32_t depth_;
  CsExecuteResponse* stats_;
  std::mutex* code_cache_mutex_;
  CodeCache* code_cache_;
  bool count_ops_ = true;
  std::map<std::string, std::optional<Bytes>> cache_;
};

}  // namespace

// ---------------------------------------------------------------------------
// CsExecuteResponse codec
// ---------------------------------------------------------------------------

Bytes CsExecuteResponse::Serialize() const {
  std::vector<RlpItem> items;
  items.push_back(RlpItem::U64(success ? 1 : 0));
  items.push_back(RlpItem::String(status_message));
  items.push_back(RlpItem(sealed_receipt));
  items.push_back(RlpItem::U64(gas_used));
  items.push_back(RlpItem::U64(conflict_key));
  items.push_back(RlpItem::U64(contract_calls));
  items.push_back(RlpItem::U64(get_storage_ops));
  items.push_back(RlpItem::U64(set_storage_ops));
  return RlpEncode(RlpItem::List(std::move(items)));
}

Result<CsExecuteResponse> CsExecuteResponse::Deserialize(ByteView wire) {
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(wire));
  if (!item.is_list() || item.list().size() != 8) {
    return Status::Corruption("cs: bad execute response");
  }
  const auto& f = item.list();
  CsExecuteResponse resp;
  CONFIDE_ASSIGN_OR_RETURN(uint64_t success, f[0].AsU64());
  resp.success = success != 0;
  resp.status_message = ToString(f[1].bytes());
  resp.sealed_receipt = f[2].bytes();
  CONFIDE_ASSIGN_OR_RETURN(resp.gas_used, f[3].AsU64());
  CONFIDE_ASSIGN_OR_RETURN(resp.conflict_key, f[4].AsU64());
  CONFIDE_ASSIGN_OR_RETURN(resp.contract_calls, f[5].AsU64());
  CONFIDE_ASSIGN_OR_RETURN(resp.get_storage_ops, f[6].AsU64());
  CONFIDE_ASSIGN_OR_RETURN(resp.set_storage_ops, f[7].AsU64());
  return resp;
}

// ---------------------------------------------------------------------------
// CsEnclave
// ---------------------------------------------------------------------------

Result<Bytes> CsEnclave::HandleEcall(uint64_t fn, ByteView input,
                                     tee::EnclaveContext* ctx) {
  switch (fn) {
    case kCsGetProvisionReport: return GetProvisionReport(ctx);
    case kCsInstallKeys: return InstallKeys(input);
    case kCsPreVerifyBatch: return PreVerifyBatch(input, ctx);
    case kCsExecute: return Execute(input, ctx);
    default:
      return Status::InvalidArgument("cs: unknown ecall");
  }
}

Result<Bytes> CsEnclave::GetProvisionReport(tee::EnclaveContext* ctx) {
  std::lock_guard<std::mutex> lock(mutex_);
  crypto::Drbg rng(Concat(AsByteView("confide-cs-channel:"),
                          ByteView(reinterpret_cast<const uint8_t*>(&seed_), 8)));
  provision_ecdh_ = crypto::GenerateKeyPair(&rng);
  tee::LocalReport report = ctx->CreateLocalReport(
      ByteView(provision_ecdh_->pub.data(), provision_ecdh_->pub.size()));
  std::vector<RlpItem> items;
  items.push_back(RlpItem(Bytes(report.mrenclave.begin(), report.mrenclave.end())));
  items.push_back(RlpItem::U64(report.security_version));
  items.push_back(RlpItem(report.user_data));
  items.push_back(RlpItem(Bytes(report.mac.begin(), report.mac.end())));
  return RlpEncode(RlpItem::List(std::move(items)));
}

Result<Bytes> CsEnclave::InstallKeys(ByteView blob) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!provision_ecdh_) return Status::Unavailable("cs: no provisioning channel");
  CONFIDE_ASSIGN_OR_RETURN(ConsortiumKeys keys,
                           UnwrapConsortiumKeys(provision_ecdh_->priv, blob));
  keys_ = keys;
  provision_ecdh_.reset();
  return Bytes{};
}

Result<OpenedEnvelope> CsEnclave::OpenWithCache(ByteView envelope,
                                                const crypto::Hash256& env_hash,
                                                bool* was_verified) {
  *was_verified = false;
  std::string hash_key = HexEncode(crypto::HashView(env_hash));
  if (options_.enable_preverify_cache) {
    std::optional<CachedMeta> meta;
    {
      // Keep the critical section tiny: the symmetric decryption below
      // must run outside the lock or parallel executors serialize.
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = meta_cache_.find(hash_key);
      if (it != meta_cache_.end()) {
        ++cache_hits_;
        CsMetrics::Get().cache_hits->Increment();
        meta = it->second;
      } else {
        ++cache_misses_;
        CsMetrics::Get().cache_misses->Increment();
      }
    }
    if (meta) {
      // C3: symmetric-only recovery with the cached k_tx.
      OpenedEnvelope opened;
      opened.k_tx = meta->k_tx;
      auto body = OpenEnvelopeBody(meta->k_tx, envelope);
      if (body.ok()) {
        opened.raw_tx = std::move(*body);
        *was_verified = meta->verified;
        return opened;
      }
      // Fall through to the full path on cache inconsistency.
    }
  }
  std::optional<ConsortiumKeys> keys;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    keys = keys_;
  }
  if (!keys) return Status::Unavailable("cs: keys not provisioned");
  return OpenEnvelope(keys->sk_tx, envelope);
}

Result<Bytes> CsEnclave::PreVerifyBatch(ByteView request, tee::EnclaveContext* ctx) {
  // P1: decode the incoming batch.
  uint64_t phase_start = WallNowNs();
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(request));
  if (!item.is_list()) return Status::Corruption("cs: bad batch");
  CsMetrics::Get().p1_decode->Observe(WallNowNs() - phase_start);
  std::optional<ConsortiumKeys> keys;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    keys = keys_;
  }
  if (!keys) return Status::Unavailable("cs: keys not provisioned");

  std::vector<RlpItem> results;
  for (const RlpItem& env_item : item.list()) {
    const Bytes& envelope = env_item.bytes();
    crypto::Hash256 env_hash = crypto::Sha256::Digest(envelope);
    bool valid = false;
    uint64_t conflict_key = 0;
    TxKey k_tx{};

    // P2: private-key decryption of the digital envelope.
    phase_start = WallNowNs();
    auto opened = OpenEnvelope(keys->sk_tx, envelope);
    CsMetrics::Get().p2_envelope_open->Observe(WallNowNs() - phase_start);
    if (opened.ok()) {
      k_tx = opened->k_tx;
      // P3: signature verification of the recovered raw transaction.
      phase_start = WallNowNs();
      auto raw = chain::Transaction::Deserialize(opened->raw_tx);
      if (raw.ok()) {
        valid = crypto::EcdsaVerify(raw->sender, raw->SigningHash(), raw->signature);
        conflict_key = ConflictKeyOf(raw->contract);
      }
      CsMetrics::Get().p3_sig_verify->Observe(WallNowNs() - phase_start);
    }
    // P4: aggregate (hash, k_tx, f_verified) into the enclave cache.
    phase_start = WallNowNs();
    if (valid && options_.enable_preverify_cache) {
      std::lock_guard<std::mutex> lock(mutex_);
      meta_cache_[HexEncode(crypto::HashView(env_hash))] =
          CachedMeta{k_tx, true, conflict_key};
    }
    CsMetrics::Get().p4_cache_update->Observe(WallNowNs() - phase_start);
    CsMetrics::Get().preverified_txs->Increment();
    std::vector<RlpItem> entry;
    entry.push_back(RlpItem(Bytes(env_hash.begin(), env_hash.end())));
    entry.push_back(RlpItem::U64(valid ? 1 : 0));
    entry.push_back(RlpItem::U64(conflict_key));
    results.push_back(RlpItem::List(std::move(entry)));
  }
  ctx->MonitorEmit(0, "cs: pre-verified batch");
  return RlpEncode(RlpItem::List(std::move(results)));
}

Result<Bytes> CsEnclave::Execute(ByteView request, tee::EnclaveContext* ctx) {
  // P5: contract execution (everything inside the execute ecall).
  metrics::ScopedLatencyTimer p5_timer(CsMetrics::Get().p5_execute);
  CsMetrics::Get().executed_txs->Increment();
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(request));
  if (!item.is_list() || item.list().size() != 2) {
    return Status::Corruption("cs: bad execute request");
  }
  CONFIDE_ASSIGN_OR_RETURN(uint64_t token, item.list()[0].AsU64());
  const Bytes& envelope = item.list()[1].bytes();
  crypto::Hash256 env_hash = crypto::Sha256::Digest(envelope);

  CsExecuteResponse response;
  auto fail = [&](const Status& status) -> Result<Bytes> {
    response.success = false;
    response.status_message = status.ToString();
    CsMetrics::Get().failed_txs->Increment();
    ctx->MonitorEmit(2, "cs: tx failed: " + status.ToString());
    return response.Serialize();
  };

  bool was_verified = false;
  auto opened = OpenWithCache(envelope, env_hash, &was_verified);
  if (!opened.ok()) return fail(opened.status());

  auto raw = chain::Transaction::Deserialize(opened->raw_tx);
  if (!raw.ok()) return fail(raw.status());

  if (!was_verified &&
      !crypto::EcdsaVerify(raw->sender, raw->SigningHash(), raw->signature)) {
    return fail(Status::PermissionDenied("cs: bad transaction signature"));
  }

  StateKey k_states;
  uint64_t svn = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!keys_) return fail(Status::Unavailable("cs: keys not provisioned"));
    k_states = keys_->k_states;
    svn = SecurityVersion();
  }

  response.conflict_key = ConflictKeyOf(raw->contract);
  SdmEnv env(ctx, options_, token, k_states, raw->contract, svn, &cvm_, &evm_,
             /*depth=*/0, &response, &code_cache_mutex_, &code_cache_);

  chain::Receipt raw_receipt;
  raw_receipt.tx_hash = env_hash;

  if (raw->entry == "__deploy__") {
    // Confidential deployment: code lands sealed like any other state.
    auto deploy = RlpDecode(raw->input);
    if (!deploy.ok() || !deploy->is_list() || deploy->list().size() != 2) {
      return fail(Status::InvalidArgument("cs: bad deploy payload"));
    }
    auto vm_kind = deploy->list()[0].AsU64();
    if (!vm_kind.ok() || *vm_kind > 1) {
      return fail(Status::InvalidArgument("cs: bad vm kind"));
    }
    Status st = env.SetStorage(AsByteView("__code__"), deploy->list()[1].bytes());
    if (st.ok()) st = env.SetStorage(AsByteView("__vm__"), Bytes{uint8_t(*vm_kind)});
    if (!st.ok()) return fail(st);
    raw_receipt.success = true;
  } else {
    auto result = env.RunContract(raw->entry, raw->input);
    if (!result.ok()) {
      if (result.status().IsVmTrap() ||
          result.status().code() == StatusCode::kResourceExhausted ||
          result.status().IsNotFound()) {
        return fail(result.status());
      }
      return result.status();  // infrastructure error: propagate
    }
    raw_receipt.success = true;
    raw_receipt.output = std::move(result->output);
    raw_receipt.gas_used = result->gas_used;
    response.gas_used = result->gas_used;
  }
  raw_receipt.logs = std::move(env.logs);

  // Rpt_conf = Enc(k_tx, Rpt_raw).
  auto sealed = SealReceipt(opened->k_tx, raw_receipt.Serialize());
  if (!sealed.ok()) return fail(sealed.status());
  response.sealed_receipt = std::move(*sealed);
  response.success = true;
  return response.Serialize();
}

}  // namespace confide::core
