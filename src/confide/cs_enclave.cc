#include "confide/cs_enclave.h"

#include <chrono>
#include <map>
#include <set>

#include "common/endian.h"
#include "common/metrics.h"
#include "confide/freshness.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"
#include "crypto/keccak.h"
#include "serialize/rlp.h"

namespace confide::core {

namespace {

using serialize::RlpDecode;
using serialize::RlpEncode;
using serialize::RlpItem;

uint64_t WallNowNs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

/// Pre-processor pipeline phases (paper §5.2): P1 batch decode, P2 envelope
/// decryption, P3 signature verification, P4 cache aggregation, P5 contract
/// execution. Latencies are wall nanoseconds per transaction.
struct CsMetrics {
  metrics::Histogram* p1_decode = metrics::GetHistogram("confide.phase.p1_decode_ns");
  metrics::Histogram* p2_envelope_open =
      metrics::GetHistogram("confide.phase.p2_envelope_open_ns");
  metrics::Histogram* p3_sig_verify =
      metrics::GetHistogram("confide.phase.p3_sig_verify_ns");
  metrics::Histogram* p4_cache_update =
      metrics::GetHistogram("confide.phase.p4_cache_update_ns");
  metrics::Histogram* p5_execute =
      metrics::GetHistogram("confide.phase.p5_execute_ns");
  metrics::Counter* preverified_txs =
      metrics::GetCounter("confide.preverify.tx.count");
  metrics::Counter* executed_txs = metrics::GetCounter("confide.execute.tx.count");
  metrics::Counter* failed_txs = metrics::GetCounter("confide.execute.failed.count");
  metrics::Counter* cache_hits =
      metrics::GetCounter("confide.preverify_cache.hit.count");
  metrics::Counter* cache_misses =
      metrics::GetCounter("confide.preverify_cache.miss.count");
  metrics::Counter* sdm_get_ops = metrics::GetCounter("confide.sdm.get.count");
  metrics::Counter* sdm_set_ops = metrics::GetCounter("confide.sdm.set.count");
  metrics::Counter* code_cache_hits =
      metrics::GetCounter("confide.code_cache.hit.count");
  metrics::Counter* code_cache_misses =
      metrics::GetCounter("confide.code_cache.miss.count");
  metrics::Counter* batch_flush_ops =
      metrics::GetCounter("confide.sdm.batch_flush_ops");
  metrics::Counter* prefetch_keys =
      metrics::GetCounter("confide.sdm.prefetch_keys.count");
  metrics::Gauge* preverify_resident =
      metrics::GetGauge("confide.preverify_cache.resident");
  metrics::Gauge* profile_resident =
      metrics::GetGauge("confide.sdm.readset_profile.resident");
  metrics::Counter* freshness_seals =
      metrics::GetCounter("confide.freshness.seal.count");
  metrics::Counter* freshness_verifies =
      metrics::GetCounter("confide.freshness.verify.count");
  metrics::Counter* freshness_stales =
      metrics::GetCounter("confide.freshness.stale.count");

  static const CsMetrics& Get() {
    static const CsMetrics instruments;
    return instruments;
  }
};

uint64_t ConflictKeyOf(const chain::Address& contract) {
  return LoadBe64(contract.data());
}

uint32_t SelectorOf(std::string_view entry) {
  crypto::Hash256 h = crypto::Keccak256::Digest(AsByteView(entry));
  return LoadBe32(h.data());
}

/// Per-execution write-back state layer (OPT5). One journal is shared by
/// reference across every nested SdmEnv frame of a kCsExecute call, so a
/// callee's writes are visible to its caller immediately (the A→B→A
/// reentrancy case) and all SetStorage ops buffer in-enclave until a
/// single batched flush ocall at successful execution end. Reads absorb
/// into one coherent cache; a learned read-set prefetch fills it in one
/// batched get ocall up front.
class StateJournal {
 public:
  StateJournal(tee::EnclaveContext* ctx, const CsOptions& options,
               uint64_t token, const StateKey& k_states, uint64_t svn)
      : ctx_(ctx), options_(options), token_(token), k_states_(k_states),
        svn_(svn) {}

  Result<Bytes> Get(const chain::Address& contract, ByteView key) {
    read_keys_.insert(ConflictKeyOf(contract));
    std::string jk = JournalKey(contract, key);
    RecordTouch(jk, contract, key);
    auto it = entries_.find(jk);
    if (it != entries_.end() && (it->second.dirty || options_.enable_state_cache)) {
      Entry& entry = it->second;
      if (entry.sealed) {  // lazily open prefetched ciphertext
        Bytes aad =
            StateAad(ByteView(contract.data(), contract.size()), key, svn_);
        CONFIDE_ASSIGN_OR_RETURN(Bytes plain,
                                 OpenState(k_states_, *entry.sealed, aad));
        entry.value = std::move(plain);
        entry.sealed.reset();
      }
      if (!entry.value) return Status::NotFound("sdm: cached absent");
      return *entry.value;
    }
    // Miss: fetch the sealed value from the untrusted store (one ocall).
    std::vector<RlpItem> req;
    req.push_back(RlpItem::U64(token_));
    req.push_back(RlpItem(Bytes(contract.begin(), contract.end())));
    req.push_back(RlpItem(ToBytes(key)));
    CONFIDE_ASSIGN_OR_RETURN(
        Bytes resp,
        ctx_->Ocall(kOcallGetState, RlpEncode(RlpItem::List(std::move(req))),
                    options_.ocall_semantics));
    CONFIDE_ASSIGN_OR_RETURN(RlpItem resp_item, RlpDecode(resp));
    if (!resp_item.is_list() || resp_item.list().size() != 2) {
      return Status::Corruption("sdm: bad get-state response");
    }
    CONFIDE_ASSIGN_OR_RETURN(uint64_t found, resp_item.list()[0].AsU64());
    if (found == 0) {
      if (options_.enable_state_cache) {
        entries_[jk] = Entry{contract, ToBytes(key), std::nullopt, false};
      }
      return Status::NotFound("sdm: no such state");
    }
    Bytes aad = StateAad(ByteView(contract.data(), contract.size()), key, svn_);
    CONFIDE_ASSIGN_OR_RETURN(Bytes plain,
                             OpenState(k_states_, resp_item.list()[1].bytes(), aad));
    if (options_.enable_state_cache) {
      entries_[jk] = Entry{contract, ToBytes(key), plain, false};
    }
    return plain;
  }

  Status Set(const chain::Address& contract, ByteView key, ByteView value) {
    written_keys_.insert(ConflictKeyOf(contract));
    // Writes join the prefetch profile too: sliding-window workloads
    // (e.g. the SCF ledger journal) read next execution what this one
    // wrote, and profiling reads alone would miss those keys forever.
    RecordTouch(JournalKey(contract, key), contract, key);
    if (options_.enable_ocall_batching) {
      // Write-back: buffer in-enclave, flush once at execution end.
      entries_[JournalKey(contract, key)] =
          Entry{contract, ToBytes(key), ToBytes(value), true};
      return Status::OK();
    }
    // Write-through (pre-OPT5 ladder rungs): one ocall per SetStorage.
    Bytes aad = StateAad(ByteView(contract.data(), contract.size()), key, svn_);
    CONFIDE_ASSIGN_OR_RETURN(Bytes sealed, SealState(k_states_, value, aad));
    std::vector<RlpItem> req;
    req.push_back(RlpItem::U64(token_));
    req.push_back(RlpItem(Bytes(contract.begin(), contract.end())));
    req.push_back(RlpItem(ToBytes(key)));
    req.push_back(RlpItem(std::move(sealed)));
    CONFIDE_RETURN_NOT_OK(
        ctx_->Ocall(kOcallSetState, RlpEncode(RlpItem::List(std::move(req))),
                    options_.ocall_semantics)
            .status());
    if (options_.enable_state_cache) {
      entries_[JournalKey(contract, key)] =
          Entry{contract, ToBytes(key), ToBytes(value), false};
    }
    return Status::OK();
  }

  /// One batched get for the learned read set; results land in the cache
  /// as if read individually. Keys already journaled are skipped.
  Status Prefetch(const std::vector<std::pair<chain::Address, Bytes>>& keys) {
    if (!options_.enable_ocall_batching || !options_.enable_state_cache) {
      return Status::OK();
    }
    std::vector<const std::pair<chain::Address, Bytes>*> wanted;
    for (const auto& pair : keys) {
      if (entries_.count(JournalKey(pair.first, pair.second)) == 0) {
        wanted.push_back(&pair);
      }
    }
    if (wanted.empty()) return Status::OK();
    std::vector<RlpItem> list;
    for (const auto* pair : wanted) {
      std::vector<RlpItem> entry;
      entry.push_back(RlpItem(Bytes(pair->first.begin(), pair->first.end())));
      entry.push_back(RlpItem(pair->second));
      list.push_back(RlpItem::List(std::move(entry)));
    }
    std::vector<RlpItem> req;
    req.push_back(RlpItem::U64(token_));
    req.push_back(RlpItem::List(std::move(list)));
    CONFIDE_ASSIGN_OR_RETURN(
        Bytes resp, ctx_->OcallBatched(kOcallGetStateBatch,
                                       RlpEncode(RlpItem::List(std::move(req))),
                                       wanted.size(), options_.ocall_semantics));
    CONFIDE_ASSIGN_OR_RETURN(RlpItem resp_item, RlpDecode(resp));
    if (!resp_item.is_list() || resp_item.list().size() != wanted.size()) {
      return Status::Corruption("sdm: bad batched get-state response");
    }
    for (size_t i = 0; i < wanted.size(); ++i) {
      const RlpItem& row = resp_item.list()[i];
      if (!row.is_list() || row.list().size() != 2) {
        return Status::Corruption("sdm: bad batched get-state entry");
      }
      CONFIDE_ASSIGN_OR_RETURN(uint64_t found, row.list()[0].AsU64());
      const chain::Address& contract = wanted[i]->first;
      const Bytes& key = wanted[i]->second;
      std::optional<Bytes> sealed;
      if (found != 0) sealed = row.list()[1].bytes();
      entries_[JournalKey(contract, key)] =
          Entry{contract, key, std::nullopt, false, std::move(sealed)};
    }
    CsMetrics::Get().prefetch_keys->Increment(wanted.size());
    return Status::OK();
  }

  /// Seals and flushes every buffered write in one batched ocall. The host
  /// applies the batch atomically: on failure nothing reached the per-tx
  /// overlay and the execution must be reported failed.
  Status Flush() {
    flush_ops_ = 0;
    if (!options_.enable_ocall_batching) return Status::OK();
    std::vector<RlpItem> list;
    for (auto& [jk, entry] : entries_) {
      if (!entry.dirty) continue;
      Bytes aad = StateAad(ByteView(entry.contract.data(), entry.contract.size()),
                           entry.key, svn_);
      CONFIDE_ASSIGN_OR_RETURN(Bytes sealed, SealState(k_states_, *entry.value, aad));
      std::vector<RlpItem> row;
      row.push_back(RlpItem(Bytes(entry.contract.begin(), entry.contract.end())));
      row.push_back(RlpItem(entry.key));
      row.push_back(RlpItem(std::move(sealed)));
      list.push_back(RlpItem::List(std::move(row)));
    }
    if (list.empty()) return Status::OK();
    uint64_t n = list.size();
    std::vector<RlpItem> req;
    req.push_back(RlpItem::U64(token_));
    req.push_back(RlpItem::List(std::move(list)));
    CONFIDE_RETURN_NOT_OK(
        ctx_->OcallBatched(kOcallSetStateBatch,
                           RlpEncode(RlpItem::List(std::move(req))), n,
                           options_.ocall_semantics)
            .status());
    for (auto& [jk, entry] : entries_) entry.dirty = false;
    flush_ops_ = n;
    CsMetrics::Get().batch_flush_ops->Increment(n);
    return Status::OK();
  }

  /// Marks a whole-contract read (code loaded from the code cache never
  /// touches storage but is still a read of that contract's state).
  void NoteContractRead(const chain::Address& contract) {
    read_keys_.insert(ConflictKeyOf(contract));
  }

  /// (contract, key) pairs this execution read or wrote, in first-touch
  /// order — the next execution's prefetch profile.
  const std::vector<std::pair<chain::Address, Bytes>>& touches_in_order() const {
    return touches_in_order_;
  }
  std::vector<uint64_t> ReadKeys() const {
    return std::vector<uint64_t>(read_keys_.begin(), read_keys_.end());
  }
  std::vector<uint64_t> WrittenKeys() const {
    return std::vector<uint64_t>(written_keys_.begin(), written_keys_.end());
  }
  uint64_t flush_ops() const { return flush_ops_; }

 private:
  struct Entry {
    chain::Address contract{};
    Bytes key;
    std::optional<Bytes> value;  // nullopt = known absent (unless sealed)
    bool dirty = false;
    /// Prefetched ciphertext not yet opened: GCM runs lazily on first
    /// Get, so prefetching a key that execution never touches costs no
    /// crypto — only the (batched) boundary crossing.
    std::optional<Bytes> sealed;
  };

  static std::string JournalKey(const chain::Address& contract, ByteView key) {
    return chain::AddressToString(contract) + "/" + ToString(key);
  }

  void RecordTouch(const std::string& jk, const chain::Address& contract,
                   ByteView key) {
    if (touch_seen_.insert(jk).second) {
      touches_in_order_.emplace_back(contract, ToBytes(key));
    }
  }

  tee::EnclaveContext* ctx_;
  const CsOptions& options_;
  uint64_t token_;
  const StateKey& k_states_;
  uint64_t svn_;
  // Ordered so the flush wire format (and its seal order) is deterministic.
  std::map<std::string, Entry> entries_;
  std::set<std::string> touch_seen_;
  std::vector<std::pair<chain::Address, Bytes>> touches_in_order_;
  std::set<uint64_t> read_keys_;
  std::set<uint64_t> written_keys_;
  uint64_t flush_ops_ = 0;
};

/// The SDM: the in-enclave HostEnv. One frame per (possibly nested)
/// contract call; all frames of one execution share the StateJournal, so
/// state crossings are journaled/batched and nested writes are coherent.
class SdmEnv : public vm::HostEnv {
 public:
  using CodeCache = std::unordered_map<std::string, std::pair<Bytes, uint8_t>>;

  SdmEnv(const CsOptions& options, StateJournal* journal,
         chain::Address contract, vm::cvm::CvmVm* cvm, vm::evm::EvmVm* evm,
         uint32_t depth, CsExecuteResponse* stats,
         std::mutex* code_cache_mutex, CodeCache* code_cache)
      : options_(options),
        journal_(journal),
        contract_(contract),
        cvm_(cvm),
        evm_(evm),
        depth_(depth),
        stats_(stats),
        code_cache_mutex_(code_cache_mutex),
        code_cache_(code_cache) {}

  Result<Bytes> GetStorage(ByteView key) override {
    if (count_ops_) {
      ++stats_->get_storage_ops;
      CsMetrics::Get().sdm_get_ops->Increment();
    }
    return journal_->Get(contract_, key);
  }

  Status SetStorage(ByteView key, ByteView value) override {
    ++stats_->set_storage_ops;
    CsMetrics::Get().sdm_set_ops->Increment();
    return journal_->Set(contract_, key, value);
  }

  void EmitLog(ByteView data) override { logs.push_back(ToBytes(data)); }

  Result<Bytes> CallContract(ByteView address, ByteView input) override {
    ++stats_->contract_calls;
    if (depth_ + 1 >= options_.max_call_depth) {
      return Status::VmTrap("sdm: call depth exceeded");
    }
    if (address.size() != contract_.size()) {
      return Status::InvalidArgument("sdm: bad callee address");
    }
    chain::Address callee{};
    std::copy(address.begin(), address.end(), callee.begin());
    // Convention: input = entry-name '\0' args.
    size_t sep = 0;
    while (sep < input.size() && input[sep] != 0) ++sep;
    std::string entry(reinterpret_cast<const char*>(input.data()), sep);
    ByteView args = (sep < input.size()) ? input.subspan(sep + 1) : ByteView{};

    // The callee frame shares this execution's journal, so its writes are
    // immediately visible when control returns to this frame.
    SdmEnv callee_env(options_, journal_, callee, cvm_, evm_, depth_ + 1,
                      stats_, code_cache_mutex_, code_cache_);
    CONFIDE_ASSIGN_OR_RETURN(vm::ExecutionResult result,
                             callee_env.RunContract(entry, args));
    for (Bytes& log : callee_env.logs) logs.push_back(std::move(log));
    return result.output;
  }

  /// Loads this contract's code via the SDM and runs it on the right VM.
  /// With the OPT1 code cache, repeat executions skip the sealed-code
  /// ocall and its D-Protocol decryption entirely. Code fetches bypass
  /// the Table-1 state-op counters (contract loading, not contract I/O).
  Result<vm::ExecutionResult> RunContract(std::string_view entry, ByteView args) {
    // Even a code-cache hit is a read of this contract's state — the
    // executor's cross-group overlap check must see it.
    journal_->NoteContractRead(contract_);
    std::string cache_key = chain::AddressToString(contract_);
    Bytes code;
    Bytes vm_byte;
    bool cached = false;
    if (options_.enable_code_cache) {
      std::lock_guard<std::mutex> lock(*code_cache_mutex_);
      auto it = code_cache_->find(cache_key);
      if (it != code_cache_->end()) {
        code = it->second.first;
        vm_byte = Bytes{it->second.second};
        cached = true;
      }
    }
    (cached ? CsMetrics::Get().code_cache_hits : CsMetrics::Get().code_cache_misses)
        ->Increment();
    if (!cached) {
      count_ops_ = false;
      auto code_result = GetStorage(AsByteView("__code__"));
      auto vm_result = GetStorage(AsByteView("__vm__"));
      count_ops_ = true;
      CONFIDE_RETURN_NOT_OK(code_result.status());
      CONFIDE_RETURN_NOT_OK(vm_result.status());
      code = std::move(*code_result);
      vm_byte = std::move(*vm_result);
      if (options_.enable_code_cache && vm_byte.size() == 1) {
        std::lock_guard<std::mutex> lock(*code_cache_mutex_);
        (*code_cache_)[cache_key] = {code, vm_byte[0]};
      }
    }
    if (vm_byte.size() != 1) return Status::Corruption("sdm: bad vm kind");

    vm::ExecConfig config;
    config.gas_limit = options_.gas_limit;
    config.enable_code_cache = options_.enable_code_cache;
    config.enable_fusion = options_.enable_fusion;

    if (vm_byte[0] == 0) {
      return cvm_->Execute(code, entry, args, this, config);
    }
    Bytes calldata(4);
    StoreBe32(calldata.data(), SelectorOf(entry));
    Append(&calldata, args);
    return evm_->Execute(code, calldata, this, config);
  }

  std::vector<Bytes> logs;

 private:
  const CsOptions& options_;
  StateJournal* journal_;
  chain::Address contract_;
  vm::cvm::CvmVm* cvm_;
  vm::evm::EvmVm* evm_;
  uint32_t depth_;
  CsExecuteResponse* stats_;
  std::mutex* code_cache_mutex_;
  CodeCache* code_cache_;
  bool count_ops_ = true;
};

}  // namespace

// ---------------------------------------------------------------------------
// CsExecuteResponse codec
// ---------------------------------------------------------------------------

namespace {

RlpItem EncodeU64List(const std::vector<uint64_t>& values) {
  std::vector<RlpItem> items;
  items.reserve(values.size());
  for (uint64_t v : values) items.push_back(RlpItem::U64(v));
  return RlpItem::List(std::move(items));
}

Result<std::vector<uint64_t>> DecodeU64List(const RlpItem& item) {
  if (!item.is_list()) return Status::Corruption("cs: bad u64 list");
  std::vector<uint64_t> values;
  values.reserve(item.list().size());
  for (const RlpItem& entry : item.list()) {
    CONFIDE_ASSIGN_OR_RETURN(uint64_t v, entry.AsU64());
    values.push_back(v);
  }
  return values;
}

}  // namespace

Bytes CsExecuteResponse::Serialize() const {
  std::vector<RlpItem> items;
  items.push_back(RlpItem::U64(success ? 1 : 0));
  items.push_back(RlpItem::String(status_message));
  items.push_back(RlpItem(sealed_receipt));
  items.push_back(RlpItem::U64(gas_used));
  items.push_back(RlpItem::U64(conflict_key));
  items.push_back(RlpItem::U64(contract_calls));
  items.push_back(RlpItem::U64(get_storage_ops));
  items.push_back(RlpItem::U64(set_storage_ops));
  items.push_back(EncodeU64List(read_keys));
  items.push_back(EncodeU64List(written_keys));
  items.push_back(RlpItem::U64(batch_flush_ops));
  return RlpEncode(RlpItem::List(std::move(items)));
}

Result<CsExecuteResponse> CsExecuteResponse::Deserialize(ByteView wire) {
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(wire));
  if (!item.is_list() || item.list().size() != 11) {
    return Status::Corruption("cs: bad execute response");
  }
  const auto& f = item.list();
  CsExecuteResponse resp;
  CONFIDE_ASSIGN_OR_RETURN(uint64_t success, f[0].AsU64());
  resp.success = success != 0;
  resp.status_message = ToString(f[1].bytes());
  resp.sealed_receipt = f[2].bytes();
  CONFIDE_ASSIGN_OR_RETURN(resp.gas_used, f[3].AsU64());
  CONFIDE_ASSIGN_OR_RETURN(resp.conflict_key, f[4].AsU64());
  CONFIDE_ASSIGN_OR_RETURN(resp.contract_calls, f[5].AsU64());
  CONFIDE_ASSIGN_OR_RETURN(resp.get_storage_ops, f[6].AsU64());
  CONFIDE_ASSIGN_OR_RETURN(resp.set_storage_ops, f[7].AsU64());
  CONFIDE_ASSIGN_OR_RETURN(resp.read_keys, DecodeU64List(f[8]));
  CONFIDE_ASSIGN_OR_RETURN(resp.written_keys, DecodeU64List(f[9]));
  CONFIDE_ASSIGN_OR_RETURN(resp.batch_flush_ops, f[10].AsU64());
  return resp;
}

// ---------------------------------------------------------------------------
// CsEnclave
// ---------------------------------------------------------------------------

Result<Bytes> CsEnclave::HandleEcall(uint64_t fn, ByteView input,
                                     tee::EnclaveContext* ctx) {
  switch (fn) {
    case kCsGetProvisionReport: return GetProvisionReport(ctx);
    case kCsInstallKeys: return InstallKeys(input);
    case kCsPreVerifyBatch: return PreVerifyBatch(input, ctx);
    case kCsExecute: return Execute(input, ctx);
    case kCsSealFreshness: return SealFreshness(input, ctx);
    case kCsVerifyFreshness: return VerifyFreshness(input, ctx);
    default:
      return Status::InvalidArgument("cs: unknown ecall");
  }
}

Result<Bytes> CsEnclave::SealFreshness(ByteView request,
                                       tee::EnclaveContext* ctx) {
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(request));
  if (!item.is_list() || item.list().size() != 2) {
    return Status::InvalidArgument("cs: malformed seal-freshness request");
  }
  FreshnessHeader header;
  CONFIDE_ASSIGN_OR_RETURN(header.height, item.list()[0].AsU64());
  const auto& root_bytes = item.list()[1];
  if (!root_bytes.is_bytes() ||
      root_bytes.bytes().size() != header.state_root.size()) {
    return Status::InvalidArgument("cs: malformed seal-freshness root");
  }
  std::copy(root_bytes.bytes().begin(), root_bytes.bytes().end(),
            header.state_root.begin());
  // Increment-then-seal: the trusted counter moves first, so a crash
  // between the bump and the header write leaves the counter one ahead of
  // the newest sealed generation — never behind it.
  CONFIDE_ASSIGN_OR_RETURN(header.counter,
                           ctx->CounterIncrement(kStateGenCounterFamily));
  crypto::Hash256 k_fresh = ctx->SealKey(kFreshnessKeyLabel);
  header.mac = crypto::HmacSha256(
      crypto::HashView(k_fresh),
      FreshnessMacBody(header.counter, header.height, header.state_root));
  CsMetrics::Get().freshness_seals->Increment();
  return header.Serialize();
}

Result<Bytes> CsEnclave::VerifyFreshness(ByteView request,
                                         tee::EnclaveContext* ctx) {
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(request));
  if (!item.is_list() || item.list().size() != 3) {
    return Status::InvalidArgument("cs: malformed verify-freshness request");
  }
  const auto& f = item.list();
  if (!f[0].is_bytes()) {
    return Status::InvalidArgument("cs: malformed verify-freshness header");
  }
  CONFIDE_ASSIGN_OR_RETURN(FreshnessHeader header,
                           FreshnessHeader::Deserialize(ByteView(f[0].bytes())));
  uint64_t tip_height = 0;
  CONFIDE_ASSIGN_OR_RETURN(tip_height, f[1].AsU64());
  crypto::Hash256 tip_root{};
  if (!f[2].is_bytes() || f[2].bytes().size() != tip_root.size()) {
    return Status::InvalidArgument("cs: malformed verify-freshness root");
  }
  std::copy(f[2].bytes().begin(), f[2].bytes().end(), tip_root.begin());

  CsMetrics::Get().freshness_verifies->Increment();
  crypto::Hash256 k_fresh = ctx->SealKey(kFreshnessKeyLabel);
  crypto::Hash256 expected = crypto::HmacSha256(
      crypto::HashView(k_fresh),
      FreshnessMacBody(header.counter, header.height, header.state_root));
  if (!ConstantTimeEqual(crypto::HashView(expected), crypto::HashView(header.mac))) {
    return Status::PermissionDenied("cs: freshness header MAC invalid");
  }

  // StaleState from the read means the platform detected a rolled-back
  // durable counter store — propagate, that IS the attack signal.
  CONFIDE_ASSIGN_OR_RETURN(uint64_t counter,
                           ctx->CounterRead(kStateGenCounterFamily));
  auto stale = [](std::string why) {
    CsMetrics::Get().freshness_stales->Increment();
    return Status::StaleState("cs: " + std::move(why));
  };
  if (header.counter > counter) {
    // A validly MAC'd header from a future the trusted counter never saw:
    // the counter store was lost or reset underneath us.
    return stale("freshness counter behind sealed header (counter loss)");
  }
  FreshnessAction action = FreshnessAction::kFresh;
  if (counter - header.counter > 1) {
    return stale("sealed state generations behind trusted counter");
  } else if (counter == header.counter + 1) {
    // Interrupted seal: the counter moved but the new header never landed.
    // Genuine interruptions always left the store *past* the old header's
    // height (sealing follows the height advance); equality would accept a
    // one-generation rollback, so the comparison is strict.
    if (tip_height <= header.height) {
      return stale("interrupted seal with non-advanced store tip");
    }
    action = FreshnessAction::kResealNeeded;
  } else {  // counter == header.counter
    if (tip_height < header.height) {
      return stale("store tip behind sealed freshness header (rollback)");
    }
    if (tip_height == header.height) {
      if (!ConstantTimeEqual(crypto::HashView(tip_root),
                             crypto::HashView(header.state_root))) {
        return stale("state root diverges from sealed freshness header");
      }
    } else {
      // Store is newer than the last seal (the window between seals);
      // accept and have the host re-seal to cover the newer tip.
      action = FreshnessAction::kResealNeeded;
    }
  }
  std::vector<RlpItem> out;
  out.push_back(RlpItem::U64(uint64_t(action)));
  return RlpEncode(RlpItem::List(std::move(out)));
}

Result<Bytes> CsEnclave::GetProvisionReport(tee::EnclaveContext* ctx) {
  std::lock_guard<std::mutex> lock(mutex_);
  crypto::Drbg rng(Concat(AsByteView("confide-cs-channel:"),
                          ByteView(reinterpret_cast<const uint8_t*>(&seed_), 8)));
  provision_ecdh_ = crypto::GenerateKeyPair(&rng);
  tee::LocalReport report = ctx->CreateLocalReport(
      ByteView(provision_ecdh_->pub.data(), provision_ecdh_->pub.size()));
  std::vector<RlpItem> items;
  items.push_back(RlpItem(Bytes(report.mrenclave.begin(), report.mrenclave.end())));
  items.push_back(RlpItem::U64(report.security_version));
  items.push_back(RlpItem(report.user_data));
  items.push_back(RlpItem(Bytes(report.mac.begin(), report.mac.end())));
  return RlpEncode(RlpItem::List(std::move(items)));
}

Result<Bytes> CsEnclave::InstallKeys(ByteView blob) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!provision_ecdh_) return Status::Unavailable("cs: no provisioning channel");
  CONFIDE_ASSIGN_OR_RETURN(ConsortiumKeys keys,
                           UnwrapConsortiumKeys(provision_ecdh_->priv, blob));
  keys_ = keys;
  provision_ecdh_.reset();
  return Bytes{};
}

Result<OpenedEnvelope> CsEnclave::OpenWithCache(ByteView envelope,
                                                const crypto::Hash256& env_hash,
                                                bool* was_verified) {
  *was_verified = false;
  std::string hash_key = HexEncode(crypto::HashView(env_hash));
  if (options_.enable_preverify_cache) {
    std::optional<CachedMeta> meta;
    {
      // Keep the critical section tiny: the symmetric decryption below
      // must run outside the lock or parallel executors serialize.
      std::lock_guard<std::mutex> lock(mutex_);
      CachedMeta* cached = meta_cache_.Get(hash_key);
      if (cached != nullptr) {
        ++cache_hits_;
        CsMetrics::Get().cache_hits->Increment();
        meta = *cached;
      } else {
        ++cache_misses_;
        CsMetrics::Get().cache_misses->Increment();
      }
    }
    if (meta) {
      // C3: symmetric-only recovery with the cached k_tx.
      OpenedEnvelope opened;
      opened.k_tx = meta->k_tx;
      auto body = OpenEnvelopeBody(meta->k_tx, envelope);
      if (body.ok()) {
        opened.raw_tx = std::move(*body);
        *was_verified = meta->verified;
        return opened;
      }
      // Fall through to the full path on cache inconsistency.
    }
  }
  std::optional<ConsortiumKeys> keys;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    keys = keys_;
  }
  if (!keys) return Status::Unavailable("cs: keys not provisioned");
  return OpenEnvelope(keys->sk_tx, envelope);
}

Result<Bytes> CsEnclave::PreVerifyBatch(ByteView request, tee::EnclaveContext* ctx) {
  // P1: decode the incoming batch.
  uint64_t phase_start = WallNowNs();
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(request));
  if (!item.is_list()) return Status::Corruption("cs: bad batch");
  CsMetrics::Get().p1_decode->Observe(WallNowNs() - phase_start);
  std::optional<ConsortiumKeys> keys;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    keys = keys_;
  }
  if (!keys) return Status::Unavailable("cs: keys not provisioned");

  std::vector<RlpItem> results;
  for (const RlpItem& env_item : item.list()) {
    const Bytes& envelope = env_item.bytes();
    crypto::Hash256 env_hash = crypto::Sha256::Digest(envelope);
    bool valid = false;
    uint64_t conflict_key = 0;
    TxKey k_tx{};

    // P2: private-key decryption of the digital envelope.
    phase_start = WallNowNs();
    auto opened = OpenEnvelope(keys->sk_tx, envelope);
    CsMetrics::Get().p2_envelope_open->Observe(WallNowNs() - phase_start);
    if (opened.ok()) {
      k_tx = opened->k_tx;
      // P3: signature verification of the recovered raw transaction.
      phase_start = WallNowNs();
      auto raw = chain::Transaction::Deserialize(opened->raw_tx);
      if (raw.ok()) {
        valid = crypto::EcdsaVerify(raw->sender, raw->SigningHash(), raw->signature);
        conflict_key = ConflictKeyOf(raw->contract);
      }
      CsMetrics::Get().p3_sig_verify->Observe(WallNowNs() - phase_start);
    }
    // P4: aggregate (hash, k_tx, f_verified) into the enclave cache.
    phase_start = WallNowNs();
    if (valid && options_.enable_preverify_cache) {
      std::lock_guard<std::mutex> lock(mutex_);
      meta_cache_.Put(HexEncode(crypto::HashView(env_hash)),
                      CachedMeta{k_tx, true, conflict_key});
      CsMetrics::Get().preverify_resident->Set(int64_t(meta_cache_.size()));
    }
    CsMetrics::Get().p4_cache_update->Observe(WallNowNs() - phase_start);
    CsMetrics::Get().preverified_txs->Increment();
    std::vector<RlpItem> entry;
    entry.push_back(RlpItem(Bytes(env_hash.begin(), env_hash.end())));
    entry.push_back(RlpItem::U64(valid ? 1 : 0));
    entry.push_back(RlpItem::U64(conflict_key));
    results.push_back(RlpItem::List(std::move(entry)));
  }
  ctx->MonitorEmit(0, "cs: pre-verified batch");
  return RlpEncode(RlpItem::List(std::move(results)));
}

Result<Bytes> CsEnclave::Execute(ByteView request, tee::EnclaveContext* ctx) {
  // P5: contract execution (everything inside the execute ecall).
  metrics::ScopedLatencyTimer p5_timer(CsMetrics::Get().p5_execute);
  CsMetrics::Get().executed_txs->Increment();
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(request));
  if (!item.is_list() || item.list().size() != 2) {
    return Status::Corruption("cs: bad execute request");
  }
  CONFIDE_ASSIGN_OR_RETURN(uint64_t token, item.list()[0].AsU64());
  const Bytes& envelope = item.list()[1].bytes();
  crypto::Hash256 env_hash = crypto::Sha256::Digest(envelope);

  CsExecuteResponse response;
  StateJournal* journal_ptr = nullptr;
  auto fail = [&](const Status& status) -> Result<Bytes> {
    response.success = false;
    response.status_message = status.ToString();
    if (journal_ptr != nullptr) {
      // Even failed executions report what they touched: the executor's
      // overlap check covers their (state-dependent) receipts too.
      response.read_keys = journal_ptr->ReadKeys();
      response.written_keys = journal_ptr->WrittenKeys();
    }
    CsMetrics::Get().failed_txs->Increment();
    ctx->MonitorEmit(2, "cs: tx failed: " + status.ToString());
    return response.Serialize();
  };

  bool was_verified = false;
  auto opened = OpenWithCache(envelope, env_hash, &was_verified);
  // The pre-verification entry is one-shot: executing the envelope
  // consumes it, so the cache cannot grow with already-executed txs.
  if (options_.enable_preverify_cache) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (meta_cache_.Erase(HexEncode(crypto::HashView(env_hash)))) {
      CsMetrics::Get().preverify_resident->Set(int64_t(meta_cache_.size()));
    }
  }
  if (!opened.ok()) return fail(opened.status());

  auto raw = chain::Transaction::Deserialize(opened->raw_tx);
  if (!raw.ok()) return fail(raw.status());

  if (!was_verified &&
      !crypto::EcdsaVerify(raw->sender, raw->SigningHash(), raw->signature)) {
    return fail(Status::PermissionDenied("cs: bad transaction signature"));
  }

  StateKey k_states;
  uint64_t svn = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!keys_) return fail(Status::Unavailable("cs: keys not provisioned"));
    k_states = keys_->k_states;
    svn = SecurityVersion();
  }

  response.conflict_key = ConflictKeyOf(raw->contract);
  StateJournal journal(ctx, options_, token, k_states, svn);
  journal_ptr = &journal;

  const bool is_deploy = raw->entry == "__deploy__";
  const bool prefetchable = !is_deploy && options_.enable_ocall_batching &&
                            options_.enable_state_cache;
  std::string profile_key = chain::AddressToString(raw->contract);
  if (prefetchable) {
    std::vector<std::pair<chain::Address, Bytes>> hint;
    {
      std::lock_guard<std::mutex> lock(profile_mutex_);
      ReadSetProfile* profile = readset_profiles_.Get(profile_key);
      if (profile != nullptr) {
        hint.reserve(profile->keys.size());
        for (const auto& entry : profile->keys) {
          hint.emplace_back(entry.contract, entry.key);
        }
      }
    }
    if (!hint.empty()) {
      Status st = journal.Prefetch(hint);
      if (!st.ok()) return fail(st);
    }
  }

  SdmEnv env(options_, &journal, raw->contract, &cvm_, &evm_,
             /*depth=*/0, &response, &code_cache_mutex_, &code_cache_);

  chain::Receipt raw_receipt;
  raw_receipt.tx_hash = env_hash;

  if (is_deploy) {
    // Confidential deployment: code lands sealed like any other state.
    auto deploy = RlpDecode(raw->input);
    if (!deploy.ok() || !deploy->is_list() || deploy->list().size() != 2) {
      return fail(Status::InvalidArgument("cs: bad deploy payload"));
    }
    auto vm_kind = deploy->list()[0].AsU64();
    if (!vm_kind.ok() || *vm_kind > 1) {
      return fail(Status::InvalidArgument("cs: bad vm kind"));
    }
    Status st = env.SetStorage(AsByteView("__code__"), deploy->list()[1].bytes());
    if (st.ok()) st = env.SetStorage(AsByteView("__vm__"), Bytes{uint8_t(*vm_kind)});
    if (!st.ok()) return fail(st);
    raw_receipt.success = true;
  } else {
    auto result = env.RunContract(raw->entry, raw->input);
    if (!result.ok()) {
      if (result.status().IsVmTrap() ||
          result.status().code() == StatusCode::kResourceExhausted ||
          result.status().IsNotFound()) {
        return fail(result.status());
      }
      return result.status();  // infrastructure error: propagate
    }
    raw_receipt.success = true;
    raw_receipt.output = std::move(result->output);
    raw_receipt.gas_used = result->gas_used;
    response.gas_used = result->gas_used;
  }
  raw_receipt.logs = std::move(env.logs);

  // Write-back flush: every buffered SetStorage crosses the boundary in
  // one batched ocall. The host applies it atomically, so a failure here
  // means nothing reached the overlay and the tx must report failure.
  Status flush_status = journal.Flush();
  if (!flush_status.ok()) return fail(flush_status);
  response.batch_flush_ops = journal.flush_ops();

  // Learn the read-set profile for the next execution of this contract:
  // keys touched this run join (or refresh) the profile; keys that keep
  // not being touched decay out, so per-transaction keys (e.g. unique
  // asset records) don't accrete into an ever-growing prefetch scan.
  if (prefetchable) {
    constexpr size_t kMaxProfileKeys = 256;
    constexpr uint32_t kMaxIdleRuns = 8;  // > SCF-AR's 4-asset cycle
    ReadSetProfile merged;
    {
      std::lock_guard<std::mutex> lock(profile_mutex_);
      ReadSetProfile* old = readset_profiles_.Get(profile_key);
      if (old != nullptr) merged = *old;
    }
    std::set<std::string> touched;
    for (const auto& pair : journal.touches_in_order()) {
      touched.insert(chain::AddressToString(pair.first) + "/" +
                     ToString(pair.second));
    }
    std::set<std::string> known;
    ReadSetProfile next;
    for (auto& entry : merged.keys) {
      std::string id =
          chain::AddressToString(entry.contract) + "/" + ToString(entry.key);
      entry.idle = touched.count(id) ? 0 : entry.idle + 1;
      if (entry.idle >= kMaxIdleRuns) continue;  // decayed out
      known.insert(id);
      next.keys.push_back(std::move(entry));
    }
    for (const auto& pair : journal.touches_in_order()) {
      if (next.keys.size() >= kMaxProfileKeys) break;
      std::string id =
          chain::AddressToString(pair.first) + "/" + ToString(pair.second);
      if (known.insert(id).second) {
        next.keys.push_back(ReadSetProfile::Entry{pair.first, pair.second, 0});
      }
    }
    std::lock_guard<std::mutex> lock(profile_mutex_);
    readset_profiles_.Put(profile_key, std::move(next));
    CsMetrics::Get().profile_resident->Set(int64_t(readset_profiles_.size()));
  }

  response.read_keys = journal.ReadKeys();
  response.written_keys = journal.WrittenKeys();

  // Rpt_conf = Enc(k_tx, Rpt_raw).
  auto sealed = SealReceipt(opened->k_tx, raw_receipt.Serialize());
  if (!sealed.ok()) return fail(sealed.status());
  response.sealed_receipt = std::move(*sealed);
  response.success = true;
  return response.Serialize();
}

}  // namespace confide::core
