#include "confide/cs_enclave.h"

#include <chrono>
#include <map>
#include <set>

#include "common/arena.h"
#include "common/endian.h"
#include "common/metrics.h"
#include "confide/freshness.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"
#include "crypto/keccak.h"
#include "serialize/rlp.h"

namespace confide::core {

namespace {

using serialize::RlpReader;
using serialize::RlpWriter;

uint64_t WallNowNs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

/// Pre-processor pipeline phases (paper §5.2): P1 batch decode, P2 envelope
/// decryption, P3 signature verification, P4 cache aggregation, P5 contract
/// execution. Latencies are wall nanoseconds per transaction.
struct CsMetrics {
  metrics::Histogram* p1_decode = metrics::GetHistogram("confide.phase.p1_decode_ns");
  metrics::Histogram* p2_envelope_open =
      metrics::GetHistogram("confide.phase.p2_envelope_open_ns");
  metrics::Histogram* p3_sig_verify =
      metrics::GetHistogram("confide.phase.p3_sig_verify_ns");
  metrics::Histogram* p4_cache_update =
      metrics::GetHistogram("confide.phase.p4_cache_update_ns");
  metrics::Histogram* p5_execute =
      metrics::GetHistogram("confide.phase.p5_execute_ns");
  metrics::Counter* preverified_txs =
      metrics::GetCounter("confide.preverify.tx.count");
  metrics::Counter* executed_txs = metrics::GetCounter("confide.execute.tx.count");
  metrics::Counter* failed_txs = metrics::GetCounter("confide.execute.failed.count");
  metrics::Counter* cache_hits =
      metrics::GetCounter("confide.preverify_cache.hit.count");
  metrics::Counter* cache_misses =
      metrics::GetCounter("confide.preverify_cache.miss.count");
  metrics::Counter* sdm_get_ops = metrics::GetCounter("confide.sdm.get.count");
  metrics::Counter* sdm_set_ops = metrics::GetCounter("confide.sdm.set.count");
  metrics::Counter* code_cache_hits =
      metrics::GetCounter("confide.code_cache.hit.count");
  metrics::Counter* code_cache_misses =
      metrics::GetCounter("confide.code_cache.miss.count");
  metrics::Counter* batch_flush_ops =
      metrics::GetCounter("confide.sdm.batch_flush_ops");
  metrics::Counter* prefetch_keys =
      metrics::GetCounter("confide.sdm.prefetch_keys.count");
  metrics::Gauge* preverify_resident =
      metrics::GetGauge("confide.preverify_cache.resident");
  metrics::Gauge* profile_resident =
      metrics::GetGauge("confide.sdm.readset_profile.resident");
  metrics::Counter* freshness_seals =
      metrics::GetCounter("confide.freshness.seal.count");
  metrics::Counter* freshness_verifies =
      metrics::GetCounter("confide.freshness.verify.count");
  metrics::Counter* freshness_stales =
      metrics::GetCounter("confide.freshness.stale.count");

  static const CsMetrics& Get() {
    static const CsMetrics instruments;
    return instruments;
  }
};

uint64_t ConflictKeyOf(const chain::Address& contract) {
  return LoadBe64(contract.data());
}

uint32_t SelectorOf(std::string_view entry) {
  crypto::Hash256 h = crypto::Keccak256::Digest(AsByteView(entry));
  return LoadBe32(h.data());
}

/// Per-execution write-back state layer (OPT5). One journal is shared by
/// reference across every nested SdmEnv frame of a kCsExecute call, so a
/// callee's writes are visible to its caller immediately (the A→B→A
/// reentrancy case) and all SetStorage ops buffer in-enclave until a
/// single batched flush ocall at successful execution end. Reads absorb
/// into one coherent cache; a learned read-set prefetch fills it in one
/// batched get ocall up front.
class StateJournal {
 public:
  StateJournal(tee::EnclaveContext* ctx, const CsOptions& options,
               uint64_t token, const StateKey& k_states, uint64_t svn)
      : ctx_(ctx), options_(options), token_(token), k_states_(k_states),
        svn_(svn) {}

  Result<Bytes> Get(const chain::Address& contract, ByteView key) {
    read_keys_.insert(ConflictKeyOf(contract));
    std::string jk = JournalKey(contract, key);
    RecordTouch(jk, contract, key);
    auto it = entries_.find(jk);
    if (it != entries_.end() && (it->second.dirty || options_.enable_state_cache)) {
      Entry& entry = it->second;
      if (entry.sealed) {  // lazily open prefetched ciphertext
        Bytes aad =
            StateAad(ByteView(contract.data(), contract.size()), key, svn_);
        CONFIDE_ASSIGN_OR_RETURN(Bytes plain,
                                 OpenState(k_states_, *entry.sealed, aad));
        entry.value = std::move(plain);
        entry.sealed.reset();
      }
      if (!entry.value) return Status::NotFound("sdm: cached absent");
      return *entry.value;
    }
    // Miss: fetch the sealed value from the untrusted store (one ocall).
    RlpWriter req(64 + key.size());
    size_t req_list = req.BeginList();
    req.WriteU64(token_);
    req.WriteBytes(ByteView(contract.data(), contract.size()));
    req.WriteBytes(key);
    req.EndList(req_list);
    CONFIDE_ASSIGN_OR_RETURN(
        Bytes resp,
        ctx_->Ocall(kOcallGetState, req.buffer(), options_.ocall_semantics));
    // Zero-copy response walk: the sealed ciphertext stays a view into
    // `resp` and flows straight into the GCM open.
    auto reader = RlpReader::AtList(resp);
    if (!reader.ok()) return Status::Corruption("sdm: bad get-state response");
    auto found = reader->NextU64();
    auto sealed = reader->NextBytes();
    if (!found.ok() || !sealed.ok() || !reader->AtEnd()) {
      return Status::Corruption("sdm: bad get-state response");
    }
    if (found.value() == 0) {
      if (options_.enable_state_cache) {
        entries_[jk] = Entry{contract, ToBytes(key), std::nullopt, false};
      }
      return Status::NotFound("sdm: no such state");
    }
    Bytes aad = StateAad(ByteView(contract.data(), contract.size()), key, svn_);
    CONFIDE_ASSIGN_OR_RETURN(Bytes plain,
                             OpenState(k_states_, sealed.value(), aad));
    if (options_.enable_state_cache) {
      entries_[jk] = Entry{contract, ToBytes(key), plain, false};
    }
    return plain;
  }

  Status Set(const chain::Address& contract, ByteView key, ByteView value) {
    written_keys_.insert(ConflictKeyOf(contract));
    // Writes join the prefetch profile too: sliding-window workloads
    // (e.g. the SCF ledger journal) read next execution what this one
    // wrote, and profiling reads alone would miss those keys forever.
    RecordTouch(JournalKey(contract, key), contract, key);
    if (options_.enable_ocall_batching) {
      // Write-back: buffer in-enclave, flush once at execution end.
      entries_[JournalKey(contract, key)] =
          Entry{contract, ToBytes(key), ToBytes(value), true};
      return Status::OK();
    }
    // Write-through (pre-OPT5 ladder rungs): one ocall per SetStorage.
    Bytes aad = StateAad(ByteView(contract.data(), contract.size()), key, svn_);
    CONFIDE_ASSIGN_OR_RETURN(Bytes sealed, SealState(k_states_, value, aad));
    RlpWriter req(64 + key.size() + sealed.size());
    size_t req_list = req.BeginList();
    req.WriteU64(token_);
    req.WriteBytes(ByteView(contract.data(), contract.size()));
    req.WriteBytes(key);
    req.WriteBytes(sealed);
    req.EndList(req_list);
    CONFIDE_RETURN_NOT_OK(
        ctx_->Ocall(kOcallSetState, req.buffer(), options_.ocall_semantics)
            .status());
    if (options_.enable_state_cache) {
      entries_[JournalKey(contract, key)] =
          Entry{contract, ToBytes(key), ToBytes(value), false};
    }
    return Status::OK();
  }

  /// One batched get for the learned read set; results land in the cache
  /// as if read individually. Keys already journaled are skipped.
  Status Prefetch(const std::vector<std::pair<chain::Address, Bytes>>& keys) {
    if (!options_.enable_ocall_batching || !options_.enable_state_cache) {
      return Status::OK();
    }
    std::vector<const std::pair<chain::Address, Bytes>*> wanted;
    for (const auto& pair : keys) {
      if (entries_.count(JournalKey(pair.first, pair.second)) == 0) {
        wanted.push_back(&pair);
      }
    }
    if (wanted.empty()) return Status::OK();
    RlpWriter req;
    size_t req_list = req.BeginList();
    req.WriteU64(token_);
    size_t rows = req.BeginList();
    for (const auto* pair : wanted) {
      size_t row = req.BeginList();
      req.WriteBytes(ByteView(pair->first.data(), pair->first.size()));
      req.WriteBytes(pair->second);
      req.EndList(row);
    }
    req.EndList(rows);
    req.EndList(req_list);
    CONFIDE_ASSIGN_OR_RETURN(
        Bytes resp,
        ctx_->OcallBatched(kOcallGetStateBatch, req.buffer(), wanted.size(),
                           options_.ocall_semantics));
    // The response dies with this frame but prefetched ciphertexts must
    // live until their lazy open in Get — the must-own case: one copy per
    // sealed value into the journal arena, no per-row item tree.
    auto reader = RlpReader::AtList(resp);
    if (!reader.ok()) {
      return Status::Corruption("sdm: bad batched get-state response");
    }
    for (size_t i = 0; i < wanted.size(); ++i) {
      auto row = reader->NextList();
      if (!row.ok()) {
        return Status::Corruption("sdm: bad batched get-state response");
      }
      auto found = row->NextU64();
      auto sealed_view = row->NextBytes();
      if (!found.ok() || !sealed_view.ok() || !row->AtEnd()) {
        return Status::Corruption("sdm: bad batched get-state entry");
      }
      const chain::Address& contract = wanted[i]->first;
      const Bytes& key = wanted[i]->second;
      std::optional<ByteView> sealed;
      if (found.value() != 0) sealed = arena_.Dup(sealed_view.value());
      entries_[JournalKey(contract, key)] =
          Entry{contract, key, std::nullopt, false, sealed};
    }
    if (!reader->AtEnd()) {
      return Status::Corruption("sdm: bad batched get-state response");
    }
    CsMetrics::Get().prefetch_keys->Increment(wanted.size());
    return Status::OK();
  }

  /// Seals and flushes every buffered write in one batched ocall. The host
  /// applies the batch atomically: on failure nothing reached the per-tx
  /// overlay and the execution must be reported failed.
  Status Flush() {
    flush_ops_ = 0;
    if (!options_.enable_ocall_batching) return Status::OK();
    uint64_t n = 0;
    RlpWriter req;
    size_t req_list = req.BeginList();
    req.WriteU64(token_);
    size_t rows = req.BeginList();
    for (auto& [jk, entry] : entries_) {
      if (!entry.dirty) continue;
      Bytes aad = StateAad(ByteView(entry.contract.data(), entry.contract.size()),
                           entry.key, svn_);
      CONFIDE_ASSIGN_OR_RETURN(Bytes sealed, SealState(k_states_, *entry.value, aad));
      size_t row = req.BeginList();
      req.WriteBytes(ByteView(entry.contract.data(), entry.contract.size()));
      req.WriteBytes(entry.key);
      req.WriteBytes(sealed);
      req.EndList(row);
      ++n;
    }
    if (n == 0) return Status::OK();
    req.EndList(rows);
    req.EndList(req_list);
    CONFIDE_RETURN_NOT_OK(
        ctx_->OcallBatched(kOcallSetStateBatch, req.buffer(), n,
                           options_.ocall_semantics)
            .status());
    for (auto& [jk, entry] : entries_) entry.dirty = false;
    flush_ops_ = n;
    CsMetrics::Get().batch_flush_ops->Increment(n);
    return Status::OK();
  }

  /// Marks a whole-contract read (code loaded from the code cache never
  /// touches storage but is still a read of that contract's state).
  void NoteContractRead(const chain::Address& contract) {
    read_keys_.insert(ConflictKeyOf(contract));
  }

  /// (contract, key) pairs this execution read or wrote, in first-touch
  /// order — the next execution's prefetch profile.
  const std::vector<std::pair<chain::Address, Bytes>>& touches_in_order() const {
    return touches_in_order_;
  }
  std::vector<uint64_t> ReadKeys() const {
    return std::vector<uint64_t>(read_keys_.begin(), read_keys_.end());
  }
  std::vector<uint64_t> WrittenKeys() const {
    return std::vector<uint64_t>(written_keys_.begin(), written_keys_.end());
  }
  uint64_t flush_ops() const { return flush_ops_; }

 private:
  struct Entry {
    chain::Address contract{};
    Bytes key;
    std::optional<Bytes> value;  // nullopt = known absent (unless sealed)
    bool dirty = false;
    /// Prefetched ciphertext not yet opened: GCM runs lazily on first
    /// Get, so prefetching a key that execution never touches costs no
    /// crypto — only the (batched) boundary crossing. The view points
    /// into arena_ (the ocall response buffer dies with Prefetch).
    std::optional<ByteView> sealed;
  };

  static std::string JournalKey(const chain::Address& contract, ByteView key) {
    return chain::AddressToString(contract) + "/" + ToString(key);
  }

  void RecordTouch(const std::string& jk, const chain::Address& contract,
                   ByteView key) {
    if (touch_seen_.insert(jk).second) {
      touches_in_order_.emplace_back(contract, ToBytes(key));
    }
  }

  tee::EnclaveContext* ctx_;
  const CsOptions& options_;
  uint64_t token_;
  const StateKey& k_states_;
  uint64_t svn_;
  // Ordered so the flush wire format (and its seal order) is deterministic.
  std::map<std::string, Entry> entries_;
  /// Owns prefetched ciphertext copies; lives exactly as long as the
  /// journal (one execution), so Entry::sealed views never dangle.
  Arena arena_;
  std::set<std::string> touch_seen_;
  std::vector<std::pair<chain::Address, Bytes>> touches_in_order_;
  std::set<uint64_t> read_keys_;
  std::set<uint64_t> written_keys_;
  uint64_t flush_ops_ = 0;
};

/// The SDM: the in-enclave HostEnv. One frame per (possibly nested)
/// contract call; all frames of one execution share the StateJournal, so
/// state crossings are journaled/batched and nested writes are coherent.
class SdmEnv : public vm::HostEnv {
 public:
  using CodeCache = std::unordered_map<std::string, std::pair<Bytes, uint8_t>>;

  SdmEnv(const CsOptions& options, StateJournal* journal,
         chain::Address contract, vm::cvm::CvmVm* cvm, vm::evm::EvmVm* evm,
         uint32_t depth, CsExecuteResponse* stats,
         std::mutex* code_cache_mutex, CodeCache* code_cache)
      : options_(options),
        journal_(journal),
        contract_(contract),
        cvm_(cvm),
        evm_(evm),
        depth_(depth),
        stats_(stats),
        code_cache_mutex_(code_cache_mutex),
        code_cache_(code_cache) {}

  Result<Bytes> GetStorage(ByteView key) override {
    if (count_ops_) {
      ++stats_->get_storage_ops;
      CsMetrics::Get().sdm_get_ops->Increment();
    }
    return journal_->Get(contract_, key);
  }

  Status SetStorage(ByteView key, ByteView value) override {
    ++stats_->set_storage_ops;
    CsMetrics::Get().sdm_set_ops->Increment();
    return journal_->Set(contract_, key, value);
  }

  void EmitLog(ByteView data) override { logs.push_back(ToBytes(data)); }

  Result<Bytes> CallContract(ByteView address, ByteView input) override {
    ++stats_->contract_calls;
    if (depth_ + 1 >= options_.max_call_depth) {
      return Status::VmTrap("sdm: call depth exceeded");
    }
    if (address.size() != contract_.size()) {
      return Status::InvalidArgument("sdm: bad callee address");
    }
    chain::Address callee{};
    std::copy(address.begin(), address.end(), callee.begin());
    // Convention: input = entry-name '\0' args.
    size_t sep = 0;
    while (sep < input.size() && input[sep] != 0) ++sep;
    std::string entry(reinterpret_cast<const char*>(input.data()), sep);
    ByteView args = (sep < input.size()) ? input.subspan(sep + 1) : ByteView{};

    // The callee frame shares this execution's journal, so its writes are
    // immediately visible when control returns to this frame.
    SdmEnv callee_env(options_, journal_, callee, cvm_, evm_, depth_ + 1,
                      stats_, code_cache_mutex_, code_cache_);
    CONFIDE_ASSIGN_OR_RETURN(vm::ExecutionResult result,
                             callee_env.RunContract(entry, args));
    for (Bytes& log : callee_env.logs) logs.push_back(std::move(log));
    return result.output;
  }

  /// Loads this contract's code via the SDM and runs it on the right VM.
  /// With the OPT1 code cache, repeat executions skip the sealed-code
  /// ocall and its D-Protocol decryption entirely. Code fetches bypass
  /// the Table-1 state-op counters (contract loading, not contract I/O).
  Result<vm::ExecutionResult> RunContract(std::string_view entry, ByteView args) {
    // Even a code-cache hit is a read of this contract's state — the
    // executor's cross-group overlap check must see it.
    journal_->NoteContractRead(contract_);
    std::string cache_key = chain::AddressToString(contract_);
    Bytes code;
    Bytes vm_byte;
    bool cached = false;
    if (options_.enable_code_cache) {
      std::lock_guard<std::mutex> lock(*code_cache_mutex_);
      auto it = code_cache_->find(cache_key);
      if (it != code_cache_->end()) {
        code = it->second.first;
        vm_byte = Bytes{it->second.second};
        cached = true;
      }
    }
    (cached ? CsMetrics::Get().code_cache_hits : CsMetrics::Get().code_cache_misses)
        ->Increment();
    if (!cached) {
      count_ops_ = false;
      auto code_result = GetStorage(AsByteView("__code__"));
      auto vm_result = GetStorage(AsByteView("__vm__"));
      count_ops_ = true;
      CONFIDE_RETURN_NOT_OK(code_result.status());
      CONFIDE_RETURN_NOT_OK(vm_result.status());
      code = std::move(*code_result);
      vm_byte = std::move(*vm_result);
      if (options_.enable_code_cache && vm_byte.size() == 1) {
        std::lock_guard<std::mutex> lock(*code_cache_mutex_);
        (*code_cache_)[cache_key] = {code, vm_byte[0]};
      }
    }
    if (vm_byte.size() != 1) return Status::Corruption("sdm: bad vm kind");

    vm::ExecConfig config;
    config.gas_limit = options_.gas_limit;
    config.enable_code_cache = options_.enable_code_cache;
    config.enable_fusion = options_.enable_fusion;

    if (vm_byte[0] == 0) {
      return cvm_->Execute(code, entry, args, this, config);
    }
    Bytes calldata(4);
    StoreBe32(calldata.data(), SelectorOf(entry));
    Append(&calldata, args);
    return evm_->Execute(code, calldata, this, config);
  }

  std::vector<Bytes> logs;

 private:
  const CsOptions& options_;
  StateJournal* journal_;
  chain::Address contract_;
  vm::cvm::CvmVm* cvm_;
  vm::evm::EvmVm* evm_;
  uint32_t depth_;
  CsExecuteResponse* stats_;
  std::mutex* code_cache_mutex_;
  CodeCache* code_cache_;
  bool count_ops_ = true;
};

}  // namespace

// ---------------------------------------------------------------------------
// CsExecuteResponse codec
// ---------------------------------------------------------------------------

namespace {

void WriteU64List(RlpWriter* w, const std::vector<uint64_t>& values) {
  size_t mark = w->BeginList();
  for (uint64_t v : values) w->WriteU64(v);
  w->EndList(mark);
}

Result<std::vector<uint64_t>> ReadU64List(RlpReader* r) {
  CONFIDE_ASSIGN_OR_RETURN(RlpReader list, r->NextList());
  std::vector<uint64_t> values;
  while (!list.AtEnd()) {
    CONFIDE_ASSIGN_OR_RETURN(uint64_t v, list.NextU64());
    values.push_back(v);
  }
  return values;
}

}  // namespace

Bytes CsExecuteResponse::Serialize() const {
  RlpWriter w(96 + status_message.size() + sealed_receipt.size() +
              8 * (read_keys.size() + written_keys.size()));
  size_t list = w.BeginList();
  w.WriteU64(success ? 1 : 0);
  w.WriteString(status_message);
  w.WriteBytes(sealed_receipt);
  w.WriteU64(gas_used);
  w.WriteU64(conflict_key);
  w.WriteU64(contract_calls);
  w.WriteU64(get_storage_ops);
  w.WriteU64(set_storage_ops);
  WriteU64List(&w, read_keys);
  WriteU64List(&w, written_keys);
  w.WriteU64(batch_flush_ops);
  w.EndList(list);
  return std::move(w).Take();
}

Result<CsExecuteResponse> CsExecuteResponse::Deserialize(ByteView wire) {
  CONFIDE_ASSIGN_OR_RETURN(RlpReader r, RlpReader::AtList(wire));
  CsExecuteResponse resp;
  CONFIDE_ASSIGN_OR_RETURN(uint64_t success, r.NextU64());
  resp.success = success != 0;
  CONFIDE_ASSIGN_OR_RETURN(ByteView message, r.NextBytes());
  resp.status_message = ToString(message);
  CONFIDE_ASSIGN_OR_RETURN(ByteView receipt, r.NextBytes());
  resp.sealed_receipt = ToBytes(receipt);
  CONFIDE_ASSIGN_OR_RETURN(resp.gas_used, r.NextU64());
  CONFIDE_ASSIGN_OR_RETURN(resp.conflict_key, r.NextU64());
  CONFIDE_ASSIGN_OR_RETURN(resp.contract_calls, r.NextU64());
  CONFIDE_ASSIGN_OR_RETURN(resp.get_storage_ops, r.NextU64());
  CONFIDE_ASSIGN_OR_RETURN(resp.set_storage_ops, r.NextU64());
  CONFIDE_ASSIGN_OR_RETURN(resp.read_keys, ReadU64List(&r));
  CONFIDE_ASSIGN_OR_RETURN(resp.written_keys, ReadU64List(&r));
  CONFIDE_ASSIGN_OR_RETURN(resp.batch_flush_ops, r.NextU64());
  CONFIDE_RETURN_NOT_OK(r.ExpectEnd("cs: execute response"));
  return resp;
}

// ---------------------------------------------------------------------------
// CsEnclave
// ---------------------------------------------------------------------------

Result<Bytes> CsEnclave::HandleEcall(uint64_t fn, ByteView input,
                                     tee::EnclaveContext* ctx) {
  switch (fn) {
    case kCsGetProvisionReport: return GetProvisionReport(ctx);
    case kCsInstallKeys: return InstallKeys(input);
    case kCsPreVerifyBatch: return PreVerifyBatch(input, ctx);
    case kCsExecute: return Execute(input, ctx);
    case kCsSealFreshness: return SealFreshness(input, ctx);
    case kCsVerifyFreshness: return VerifyFreshness(input, ctx);
    default:
      return Status::InvalidArgument("cs: unknown ecall");
  }
}

Result<Bytes> CsEnclave::SealFreshness(ByteView request,
                                       tee::EnclaveContext* ctx) {
  auto reader = RlpReader::AtList(request);
  if (!reader.ok()) {
    return Status::InvalidArgument("cs: malformed seal-freshness request");
  }
  FreshnessHeader header;
  auto height = reader->NextU64();
  auto root = reader->NextFixed(header.state_root.size(), "state root");
  if (!height.ok() || !root.ok() || !reader->AtEnd()) {
    return Status::InvalidArgument("cs: malformed seal-freshness request");
  }
  header.height = height.value();
  std::copy(root->begin(), root->end(), header.state_root.begin());
  // Increment-then-seal: the trusted counter moves first, so a crash
  // between the bump and the header write leaves the counter one ahead of
  // the newest sealed generation — never behind it.
  CONFIDE_ASSIGN_OR_RETURN(header.counter,
                           ctx->CounterIncrement(kStateGenCounterFamily));
  crypto::Hash256 k_fresh = ctx->SealKey(kFreshnessKeyLabel);
  header.mac = crypto::HmacSha256(
      crypto::HashView(k_fresh),
      FreshnessMacBody(header.counter, header.height, header.state_root));
  CsMetrics::Get().freshness_seals->Increment();
  return header.Serialize();
}

Result<Bytes> CsEnclave::VerifyFreshness(ByteView request,
                                         tee::EnclaveContext* ctx) {
  auto reader = RlpReader::AtList(request);
  if (!reader.ok()) {
    return Status::InvalidArgument("cs: malformed verify-freshness request");
  }
  crypto::Hash256 tip_root{};
  auto header_wire = reader->NextBytes();
  auto tip_height_field = reader->NextU64();
  auto tip_root_field = reader->NextFixed(tip_root.size(), "tip root");
  if (!header_wire.ok() || !tip_height_field.ok() || !tip_root_field.ok() ||
      !reader->AtEnd()) {
    return Status::InvalidArgument("cs: malformed verify-freshness request");
  }
  CONFIDE_ASSIGN_OR_RETURN(FreshnessHeader header,
                           FreshnessHeader::Deserialize(header_wire.value()));
  uint64_t tip_height = tip_height_field.value();
  std::copy(tip_root_field->begin(), tip_root_field->end(), tip_root.begin());

  CsMetrics::Get().freshness_verifies->Increment();
  crypto::Hash256 k_fresh = ctx->SealKey(kFreshnessKeyLabel);
  crypto::Hash256 expected = crypto::HmacSha256(
      crypto::HashView(k_fresh),
      FreshnessMacBody(header.counter, header.height, header.state_root));
  if (!ConstantTimeEqual(crypto::HashView(expected), crypto::HashView(header.mac))) {
    return Status::PermissionDenied("cs: freshness header MAC invalid");
  }

  // StaleState from the read means the platform detected a rolled-back
  // durable counter store — propagate, that IS the attack signal.
  CONFIDE_ASSIGN_OR_RETURN(uint64_t counter,
                           ctx->CounterRead(kStateGenCounterFamily));
  auto stale = [](std::string why) {
    CsMetrics::Get().freshness_stales->Increment();
    return Status::StaleState("cs: " + std::move(why));
  };
  if (header.counter > counter) {
    // A validly MAC'd header from a future the trusted counter never saw:
    // the counter store was lost or reset underneath us.
    return stale("freshness counter behind sealed header (counter loss)");
  }
  FreshnessAction action = FreshnessAction::kFresh;
  if (counter - header.counter > 1) {
    return stale("sealed state generations behind trusted counter");
  } else if (counter == header.counter + 1) {
    // Interrupted seal: the counter moved but the new header never landed.
    // Genuine interruptions always left the store *past* the old header's
    // height (sealing follows the height advance); equality would accept a
    // one-generation rollback, so the comparison is strict.
    if (tip_height <= header.height) {
      return stale("interrupted seal with non-advanced store tip");
    }
    action = FreshnessAction::kResealNeeded;
  } else {  // counter == header.counter
    if (tip_height < header.height) {
      return stale("store tip behind sealed freshness header (rollback)");
    }
    if (tip_height == header.height) {
      if (!ConstantTimeEqual(crypto::HashView(tip_root),
                             crypto::HashView(header.state_root))) {
        return stale("state root diverges from sealed freshness header");
      }
    } else {
      // Store is newer than the last seal (the window between seals);
      // accept and have the host re-seal to cover the newer tip.
      action = FreshnessAction::kResealNeeded;
    }
  }
  RlpWriter out;
  size_t list = out.BeginList();
  out.WriteU64(uint64_t(action));
  out.EndList(list);
  return std::move(out).Take();
}

Result<Bytes> CsEnclave::GetProvisionReport(tee::EnclaveContext* ctx) {
  std::lock_guard<std::mutex> lock(mutex_);
  crypto::Drbg rng(Concat(AsByteView("confide-cs-channel:"),
                          ByteView(reinterpret_cast<const uint8_t*>(&seed_), 8)));
  provision_ecdh_ = crypto::GenerateKeyPair(&rng);
  tee::LocalReport report = ctx->CreateLocalReport(
      ByteView(provision_ecdh_->pub.data(), provision_ecdh_->pub.size()));
  RlpWriter w(80 + report.user_data.size());
  size_t list = w.BeginList();
  w.WriteBytes(ByteView(report.mrenclave.data(), report.mrenclave.size()));
  w.WriteU64(report.security_version);
  w.WriteBytes(report.user_data);
  w.WriteBytes(ByteView(report.mac.data(), report.mac.size()));
  w.EndList(list);
  return std::move(w).Take();
}

Result<Bytes> CsEnclave::InstallKeys(ByteView blob) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!provision_ecdh_) return Status::Unavailable("cs: no provisioning channel");
  CONFIDE_ASSIGN_OR_RETURN(ConsortiumKeys keys,
                           UnwrapConsortiumKeys(provision_ecdh_->priv, blob));
  keys_ = keys;
  provision_ecdh_.reset();
  return Bytes{};
}

Result<OpenedEnvelope> CsEnclave::OpenWithCache(ByteView envelope,
                                                const crypto::Hash256& env_hash,
                                                bool* was_verified) {
  *was_verified = false;
  std::string hash_key = HexEncode(crypto::HashView(env_hash));
  if (options_.enable_preverify_cache) {
    std::optional<CachedMeta> meta;
    {
      // Keep the critical section tiny: the symmetric decryption below
      // must run outside the lock or parallel executors serialize.
      std::lock_guard<std::mutex> lock(mutex_);
      CachedMeta* cached = meta_cache_.Get(hash_key);
      if (cached != nullptr) {
        ++cache_hits_;
        CsMetrics::Get().cache_hits->Increment();
        meta = *cached;
      } else {
        ++cache_misses_;
        CsMetrics::Get().cache_misses->Increment();
      }
    }
    if (meta) {
      // C3: symmetric-only recovery with the cached k_tx.
      OpenedEnvelope opened;
      opened.k_tx = meta->k_tx;
      auto body = OpenEnvelopeBody(meta->k_tx, envelope);
      if (body.ok()) {
        opened.raw_tx = std::move(*body);
        *was_verified = meta->verified;
        return opened;
      }
      // Fall through to the full path on cache inconsistency.
    }
  }
  std::optional<ConsortiumKeys> keys;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    keys = keys_;
  }
  if (!keys) return Status::Unavailable("cs: keys not provisioned");
  return OpenEnvelope(keys->sk_tx, envelope);
}

Result<Bytes> CsEnclave::PreVerifyBatch(ByteView request, tee::EnclaveContext* ctx) {
  // P1: decode the incoming batch. The reader walk is zero-copy: each
  // envelope stays a view into the ecall input for its whole pre-verify.
  uint64_t phase_start = WallNowNs();
  auto batch = RlpReader::AtList(request);
  if (!batch.ok()) return Status::Corruption("cs: bad batch");
  CsMetrics::Get().p1_decode->Observe(WallNowNs() - phase_start);
  std::optional<ConsortiumKeys> keys;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    keys = keys_;
  }
  if (!keys) return Status::Unavailable("cs: keys not provisioned");

  RlpWriter results;
  size_t results_list = results.BeginList();
  while (!batch->AtEnd()) {
    auto envelope_field = batch->NextBytes();
    if (!envelope_field.ok()) return Status::Corruption("cs: bad batch entry");
    ByteView envelope = envelope_field.value();
    crypto::Hash256 env_hash = crypto::Sha256::Digest(envelope);
    bool valid = false;
    uint64_t conflict_key = 0;
    TxKey k_tx{};

    // P2: private-key decryption of the digital envelope.
    phase_start = WallNowNs();
    auto opened = OpenEnvelope(keys->sk_tx, envelope);
    CsMetrics::Get().p2_envelope_open->Observe(WallNowNs() - phase_start);
    if (opened.ok()) {
      k_tx = opened->k_tx;
      // P3: signature verification of the recovered raw transaction.
      phase_start = WallNowNs();
      auto raw = chain::TransactionRef::Decode(opened->raw_tx);
      if (raw.ok()) {
        valid = crypto::EcdsaVerify(raw->SenderKey(), raw->SigningHash(),
                                    raw->SignatureValue());
        conflict_key = ConflictKeyOf(raw->ContractAddress());
      }
      CsMetrics::Get().p3_sig_verify->Observe(WallNowNs() - phase_start);
    }
    // P4: aggregate (hash, k_tx, f_verified) into the enclave cache.
    phase_start = WallNowNs();
    if (valid && options_.enable_preverify_cache) {
      std::lock_guard<std::mutex> lock(mutex_);
      meta_cache_.Put(HexEncode(crypto::HashView(env_hash)),
                      CachedMeta{k_tx, true, conflict_key});
      CsMetrics::Get().preverify_resident->Set(int64_t(meta_cache_.size()));
    }
    CsMetrics::Get().p4_cache_update->Observe(WallNowNs() - phase_start);
    CsMetrics::Get().preverified_txs->Increment();
    size_t entry = results.BeginList();
    results.WriteBytes(crypto::HashView(env_hash));
    results.WriteU64(valid ? 1 : 0);
    results.WriteU64(conflict_key);
    results.EndList(entry);
  }
  results.EndList(results_list);
  ctx->MonitorEmit(0, "cs: pre-verified batch");
  return std::move(results).Take();
}

Result<Bytes> CsEnclave::Execute(ByteView request, tee::EnclaveContext* ctx) {
  // P5: contract execution (everything inside the execute ecall).
  metrics::ScopedLatencyTimer p5_timer(CsMetrics::Get().p5_execute);
  CsMetrics::Get().executed_txs->Increment();
  auto req = RlpReader::AtList(request);
  if (!req.ok()) return Status::Corruption("cs: bad execute request");
  auto token_field = req->NextU64();
  auto envelope_field = req->NextBytes();
  if (!token_field.ok() || !envelope_field.ok() || !req->AtEnd()) {
    return Status::Corruption("cs: bad execute request");
  }
  uint64_t token = token_field.value();
  ByteView envelope = envelope_field.value();
  crypto::Hash256 env_hash = crypto::Sha256::Digest(envelope);

  CsExecuteResponse response;
  StateJournal* journal_ptr = nullptr;
  auto fail = [&](const Status& status) -> Result<Bytes> {
    response.success = false;
    response.status_message = status.ToString();
    if (journal_ptr != nullptr) {
      // Even failed executions report what they touched: the executor's
      // overlap check covers their (state-dependent) receipts too.
      response.read_keys = journal_ptr->ReadKeys();
      response.written_keys = journal_ptr->WrittenKeys();
    }
    CsMetrics::Get().failed_txs->Increment();
    ctx->MonitorEmit(2, "cs: tx failed: " + status.ToString());
    return response.Serialize();
  };

  bool was_verified = false;
  auto opened = OpenWithCache(envelope, env_hash, &was_verified);
  // The pre-verification entry is one-shot: executing the envelope
  // consumes it, so the cache cannot grow with already-executed txs.
  if (options_.enable_preverify_cache) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (meta_cache_.Erase(HexEncode(crypto::HashView(env_hash)))) {
      CsMetrics::Get().preverify_resident->Set(int64_t(meta_cache_.size()));
    }
  }
  if (!opened.ok()) return fail(opened.status());

  // Zero-copy decode: every field of `raw` aliases opened->raw_tx, which
  // outlives this frame — no per-field materialization.
  auto raw = chain::TransactionRef::Decode(opened->raw_tx);
  if (!raw.ok()) return fail(raw.status());
  const chain::Address contract = raw->ContractAddress();

  if (!was_verified &&
      !crypto::EcdsaVerify(raw->SenderKey(), raw->SigningHash(),
                           raw->SignatureValue())) {
    return fail(Status::PermissionDenied("cs: bad transaction signature"));
  }

  StateKey k_states;
  uint64_t svn = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!keys_) return fail(Status::Unavailable("cs: keys not provisioned"));
    k_states = keys_->k_states;
    svn = SecurityVersion();
  }

  response.conflict_key = ConflictKeyOf(contract);
  StateJournal journal(ctx, options_, token, k_states, svn);
  journal_ptr = &journal;

  const bool is_deploy = raw->EntryString() == "__deploy__";
  const bool prefetchable = !is_deploy && options_.enable_ocall_batching &&
                            options_.enable_state_cache;
  std::string profile_key = chain::AddressToString(contract);
  if (prefetchable) {
    std::vector<std::pair<chain::Address, Bytes>> hint;
    {
      std::lock_guard<std::mutex> lock(profile_mutex_);
      ReadSetProfile* profile = readset_profiles_.Get(profile_key);
      if (profile != nullptr) {
        hint.reserve(profile->keys.size());
        for (const auto& entry : profile->keys) {
          hint.emplace_back(entry.contract, entry.key);
        }
      }
    }
    if (!hint.empty()) {
      Status st = journal.Prefetch(hint);
      if (!st.ok()) return fail(st);
    }
  }

  SdmEnv env(options_, &journal, contract, &cvm_, &evm_,
             /*depth=*/0, &response, &code_cache_mutex_, &code_cache_);

  chain::Receipt raw_receipt;
  raw_receipt.tx_hash = env_hash;

  if (is_deploy) {
    // Confidential deployment: code lands sealed like any other state.
    auto deploy = RlpReader::AtList(raw->input);
    if (!deploy.ok()) {
      return fail(Status::InvalidArgument("cs: bad deploy payload"));
    }
    auto vm_kind = deploy->NextU64();
    auto code = deploy->NextBytes();
    if (!vm_kind.ok() || !code.ok() || !deploy->AtEnd()) {
      return fail(Status::InvalidArgument("cs: bad deploy payload"));
    }
    if (*vm_kind > 1) {
      return fail(Status::InvalidArgument("cs: bad vm kind"));
    }
    Status st = env.SetStorage(AsByteView("__code__"), code.value());
    if (st.ok()) st = env.SetStorage(AsByteView("__vm__"), Bytes{uint8_t(*vm_kind)});
    if (!st.ok()) return fail(st);
    raw_receipt.success = true;
  } else {
    auto result = env.RunContract(raw->EntryString(), raw->input);
    if (!result.ok()) {
      if (result.status().IsVmTrap() ||
          result.status().code() == StatusCode::kResourceExhausted ||
          result.status().IsNotFound()) {
        return fail(result.status());
      }
      return result.status();  // infrastructure error: propagate
    }
    raw_receipt.success = true;
    raw_receipt.output = std::move(result->output);
    raw_receipt.gas_used = result->gas_used;
    response.gas_used = result->gas_used;
  }
  raw_receipt.logs = std::move(env.logs);

  // Write-back flush: every buffered SetStorage crosses the boundary in
  // one batched ocall. The host applies it atomically, so a failure here
  // means nothing reached the overlay and the tx must report failure.
  Status flush_status = journal.Flush();
  if (!flush_status.ok()) return fail(flush_status);
  response.batch_flush_ops = journal.flush_ops();

  // Learn the read-set profile for the next execution of this contract:
  // keys touched this run join (or refresh) the profile; keys that keep
  // not being touched decay out, so per-transaction keys (e.g. unique
  // asset records) don't accrete into an ever-growing prefetch scan.
  if (prefetchable) {
    constexpr size_t kMaxProfileKeys = 256;
    constexpr uint32_t kMaxIdleRuns = 8;  // > SCF-AR's 4-asset cycle
    ReadSetProfile merged;
    {
      std::lock_guard<std::mutex> lock(profile_mutex_);
      ReadSetProfile* old = readset_profiles_.Get(profile_key);
      if (old != nullptr) merged = *old;
    }
    std::set<std::string> touched;
    for (const auto& pair : journal.touches_in_order()) {
      touched.insert(chain::AddressToString(pair.first) + "/" +
                     ToString(pair.second));
    }
    std::set<std::string> known;
    ReadSetProfile next;
    for (auto& entry : merged.keys) {
      std::string id =
          chain::AddressToString(entry.contract) + "/" + ToString(entry.key);
      entry.idle = touched.count(id) ? 0 : entry.idle + 1;
      if (entry.idle >= kMaxIdleRuns) continue;  // decayed out
      known.insert(id);
      next.keys.push_back(std::move(entry));
    }
    for (const auto& pair : journal.touches_in_order()) {
      if (next.keys.size() >= kMaxProfileKeys) break;
      std::string id =
          chain::AddressToString(pair.first) + "/" + ToString(pair.second);
      if (known.insert(id).second) {
        next.keys.push_back(ReadSetProfile::Entry{pair.first, pair.second, 0});
      }
    }
    std::lock_guard<std::mutex> lock(profile_mutex_);
    readset_profiles_.Put(profile_key, std::move(next));
    CsMetrics::Get().profile_resident->Set(int64_t(readset_profiles_.size()));
  }

  response.read_keys = journal.ReadKeys();
  response.written_keys = journal.WrittenKeys();

  // Rpt_conf = Enc(k_tx, Rpt_raw).
  auto sealed = SealReceipt(opened->k_tx, raw_receipt.Serialize());
  if (!sealed.ok()) return fail(sealed.status());
  response.sealed_receipt = std::move(*sealed);
  response.success = true;
  return response.Serialize();
}

}  // namespace confide::core
