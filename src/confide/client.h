/// \file client.h
/// \brief Client-side SDK: building confidential transactions and reading
/// sealed receipts.
///
/// A client verifies the engine's pk_tx against its attestation quote
/// (the fingerprint is locked into the report, §3.2.2), then seals raw
/// transactions into T-Protocol envelopes. k_tx derives from the client's
/// root key and the raw transaction hash (one key per transaction); the
/// client retains it to open the sealed receipt later — or hands it to an
/// auditor to delegate access to exactly that one transaction (§3.2.3).

#pragma once

#include "chain/types.h"
#include "confide/key_manager.h"
#include "confide/protocol.h"

namespace confide::core {

/// \brief A confidential transaction plus the client-retained secrets.
struct ConfidentialSubmission {
  chain::Transaction tx;        ///< the TYPE=1 envelope transaction
  TxKey k_tx{};                 ///< one-time key (receipt access / delegation)
  crypto::Hash256 raw_hash{};   ///< hash of the sealed raw transaction
};

/// \brief A transaction-submitting principal.
class Client {
 public:
  /// \brief Derives the signing key pair and T-Protocol root key from
  /// `seed`; binds to the engine public key `pk_tx`.
  Client(uint64_t seed, const crypto::PublicKey& pk_tx);

  const crypto::PublicKey& public_key() const { return keypair_.pub; }

  /// \brief Builds a signed public (TYPE=0) transaction.
  chain::Transaction MakePublicTx(const chain::Address& contract,
                                  std::string entry, Bytes input);

  /// \brief Builds a confidential (TYPE=1) transaction: the signed raw
  /// transaction sealed in a T-Protocol envelope. The returned k_tx stays
  /// with the client.
  Result<ConfidentialSubmission> MakeConfidentialTx(const chain::Address& contract,
                                                    std::string entry, Bytes input);

  /// \brief Opens a sealed receipt with k_tx (the owner's copy or a
  /// delegated one — receipt delegation is exactly "hand over k_tx").
  static Result<chain::Receipt> OpenSealedReceipt(const TxKey& k_tx,
                                                  ByteView sealed_receipt);

  /// \brief Verifies a KM enclave's public-key info blob (pk_tx + quote):
  /// the quote must chain to the hardware root, carry the expected
  /// measurement, and bind SHA256(pk_tx). Returns the authenticated key.
  static Result<crypto::PublicKey> VerifyEnginePublicKey(
      ByteView info_blob, const tee::Measurement& expected_km_measurement);

 private:
  chain::Transaction MakeRawTx(const chain::Address& contract, std::string entry,
                               Bytes input);

  crypto::KeyPair keypair_;
  crypto::Hash256 root_key_;
  crypto::PublicKey pk_tx_;
  uint64_t nonce_ = 0;
  uint64_t entropy_ = 0;
};

}  // namespace confide::core
