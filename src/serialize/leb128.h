/// \file leb128.h
/// \brief LEB128 variable-length integers (the Wasm module encoding used by
/// CONFIDE-VM bytecode, paper §6.4 OPT1).

#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

namespace confide::serialize {

/// \brief Appends an unsigned LEB128 encoding of `value` to `out`.
inline void WriteUleb128(Bytes* out, uint64_t value) {
  do {
    uint8_t byte = value & 0x7f;
    value >>= 7;
    if (value != 0) byte |= 0x80;
    out->push_back(byte);
  } while (value != 0);
}

/// \brief Appends a signed LEB128 encoding of `value` to `out`.
inline void WriteSleb128(Bytes* out, int64_t value) {
  bool more = true;
  while (more) {
    uint8_t byte = value & 0x7f;
    value >>= 7;  // arithmetic shift
    if ((value == 0 && !(byte & 0x40)) || (value == -1 && (byte & 0x40))) {
      more = false;
    } else {
      byte |= 0x80;
    }
    out->push_back(byte);
  }
}

/// \brief Reads an unsigned LEB128 value; advances *pos.
///
/// The 10th byte of a u64 encoding sits at shift 63 and may only carry
/// bit 0 — any higher payload bit would shift past bit 63 and vanish, so
/// such encodings are rejected as non-canonical rather than silently
/// truncated to the low bits.
inline Result<uint64_t> ReadUleb128(ByteView data, size_t* pos) {
  uint64_t result = 0;
  int shift = 0;
  while (true) {
    if (*pos >= data.size()) return Status::Corruption("truncated uleb128");
    if (shift >= 64) return Status::Corruption("uleb128 overflows 64 bits");
    uint8_t byte = data[(*pos)++];
    if (shift == 63 && (byte & 0x7e) != 0) {
      return Status::Corruption("uleb128 overflows 64 bits");
    }
    result |= uint64_t(byte & 0x7f) << shift;
    if (!(byte & 0x80)) return result;
    shift += 7;
  }
}

/// \brief Reads a signed LEB128 value; advances *pos.
///
/// At shift 63 only bit 0 of the final byte lands in the result; the
/// remaining payload bits must match that sign bit (0x00 or 0x7f after
/// masking) or the encoding overflows 64 bits and is rejected.
inline Result<int64_t> ReadSleb128(ByteView data, size_t* pos) {
  uint64_t result = 0;
  int shift = 0;
  uint8_t byte;
  do {
    if (*pos >= data.size()) return Status::Corruption("truncated sleb128");
    if (shift >= 64) return Status::Corruption("sleb128 overflows 64 bits");
    byte = data[(*pos)++];
    if (shift == 63) {
      uint8_t payload = byte & 0x7f;
      if (payload != 0x00 && payload != 0x7f) {
        return Status::Corruption("sleb128 overflows 64 bits");
      }
    }
    result |= uint64_t(byte & 0x7f) << shift;
    shift += 7;
  } while (byte & 0x80);
  if (shift < 64 && (byte & 0x40)) {
    result |= ~uint64_t(0) << shift;  // sign extend
  }
  return int64_t(result);
}

}  // namespace confide::serialize
