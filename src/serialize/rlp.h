/// \file rlp.h
/// \brief Recursive Length Prefix encoding (the Ethereum wire/storage
/// format the paper cites for enclave-boundary serialization, §5.3).

#pragma once

#include <memory>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace confide::serialize {

/// \brief An RLP item: either a byte string or a list of items.
class RlpItem {
 public:
  RlpItem() : value_(Bytes{}) {}
  explicit RlpItem(Bytes bytes) : value_(std::move(bytes)) {}
  explicit RlpItem(std::vector<RlpItem> list) : value_(std::move(list)) {}

  static RlpItem String(std::string_view s) { return RlpItem(ToBytes(s)); }
  static RlpItem U64(uint64_t v);
  static RlpItem List(std::vector<RlpItem> items) { return RlpItem(std::move(items)); }

  bool is_bytes() const { return std::holds_alternative<Bytes>(value_); }
  bool is_list() const { return !is_bytes(); }

  const Bytes& bytes() const { return std::get<Bytes>(value_); }
  const std::vector<RlpItem>& list() const { return std::get<std::vector<RlpItem>>(value_); }

  /// \brief Decodes a big-endian minimal integer payload.
  Result<uint64_t> AsU64() const;

  bool operator==(const RlpItem& other) const { return value_ == other.value_; }

 private:
  std::variant<Bytes, std::vector<RlpItem>> value_;
};

/// \brief Serializes an item to canonical RLP bytes.
Bytes RlpEncode(const RlpItem& item);

/// \brief Parses exactly one item consuming the full input.
Result<RlpItem> RlpDecode(ByteView data);

}  // namespace confide::serialize
