/// \file rlp.h
/// \brief Recursive Length Prefix encoding (the Ethereum wire/storage
/// format the paper cites for enclave-boundary serialization, §5.3).
///
/// Two decode paths share one overflow-safe header parser:
///  - RlpDecode materializes an owning RlpItem tree (convenient, allocates
///    a Bytes per field) — kept for cold paths and as the bench baseline.
///  - RlpReader walks the wire in place and returns ByteView slices into
///    the input (zero-copy) — the hot path for tx/receipt/envelope decode.
/// RlpWriter streams the encode side without building an item tree.

#pragma once

#include <memory>
#include <string_view>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace confide::serialize {

/// \brief An RLP item: either a byte string or a list of items.
class RlpItem {
 public:
  RlpItem() : value_(Bytes{}) {}
  explicit RlpItem(Bytes bytes) : value_(std::move(bytes)) {}
  explicit RlpItem(std::vector<RlpItem> list) : value_(std::move(list)) {}

  static RlpItem String(std::string_view s) { return RlpItem(ToBytes(s)); }
  static RlpItem U64(uint64_t v);
  static RlpItem List(std::vector<RlpItem> items) { return RlpItem(std::move(items)); }

  bool is_bytes() const { return std::holds_alternative<Bytes>(value_); }
  bool is_list() const { return !is_bytes(); }

  const Bytes& bytes() const { return std::get<Bytes>(value_); }
  const std::vector<RlpItem>& list() const { return std::get<std::vector<RlpItem>>(value_); }

  /// \brief Decodes a big-endian minimal integer payload.
  Result<uint64_t> AsU64() const;

  bool operator==(const RlpItem& other) const { return value_ == other.value_; }

 private:
  std::variant<Bytes, std::vector<RlpItem>> value_;
};

/// \brief Serializes an item to canonical RLP bytes.
Bytes RlpEncode(const RlpItem& item);

/// \brief Parses exactly one item consuming the full input.
Result<RlpItem> RlpDecode(ByteView data);

/// \brief Decodes a minimal big-endian integer payload (the content of an
/// RLP byte-string item) into a u64. Rejects >8 bytes and leading zeros.
Result<uint64_t> RlpU64Payload(ByteView payload);

/// \brief Zero-copy sequential reader over one RLP list's items.
///
/// Construct with AtList over a complete wire encoding; Next* calls then
/// consume the list's items in order. Returned ByteViews alias the input
/// buffer — callers that outlive the buffer must copy (see common/arena.h
/// and DESIGN.md §Zero-copy serialization). All length arithmetic is
/// overflow-safe: lengths are validated against the remaining input, so a
/// crafted 8-byte length near SIZE_MAX fails with Corruption instead of
/// wrapping the bounds check.
class RlpReader {
 public:
  /// \brief Parses `wire` as exactly one list item consuming the full
  /// input; the reader iterates the list's payload.
  static Result<RlpReader> AtList(ByteView wire);

  /// \brief Reader over a bare list payload (no outer header) — e.g. a
  /// span previously captured via payload().
  static RlpReader OverPayload(ByteView payload) { return RlpReader(payload); }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t Remaining() const { return data_.size() - pos_; }

  /// \brief Corruption unless every item has been consumed (decoders use
  /// this to reject trailing fields).
  Status ExpectEnd(const char* what) const;

  /// \brief Next item; must be a byte string. Returns a borrowed view.
  Result<ByteView> NextBytes();

  /// \brief Next item; must be a byte string of exactly `n` bytes.
  Result<ByteView> NextFixed(size_t n, const char* what);

  /// \brief Next item; must be a minimal big-endian integer <= 64 bits.
  Result<uint64_t> NextU64();

  /// \brief Next item; must be a list. Returns a reader over its payload.
  Result<RlpReader> NextList();

  /// \brief Next item's complete encoding (header + payload), any kind.
  Result<ByteView> NextItem();

  /// \brief Validating scan counting the items left (does not consume).
  Result<size_t> CountRemaining() const;

  /// \brief The full list payload this reader iterates (borrowed).
  ByteView payload() const { return data_; }

 private:
  explicit RlpReader(ByteView payload) : data_(payload) {}

  ByteView data_;
  size_t pos_ = 0;
};

/// \brief Streaming RLP encoder. Items append to one growing buffer;
/// lists are written as BeginList / items / EndList(mark), which patches
/// the length header in at the mark (one memmove, no item tree).
class RlpWriter {
 public:
  RlpWriter() = default;
  explicit RlpWriter(size_t reserve) { buf_.reserve(reserve); }

  void WriteBytes(ByteView b);
  void WriteString(std::string_view s) { WriteBytes(AsByteView(s)); }
  void WriteU64(uint64_t v);

  /// \brief Splices an already-encoded RLP item verbatim.
  void WriteRaw(ByteView encoded_item) { Append(&buf_, encoded_item); }

  /// \brief Opens a list; returns the mark to pass to EndList.
  size_t BeginList() { return buf_.size(); }

  /// \brief Closes the list opened at `mark`, inserting its header.
  void EndList(size_t mark);

  size_t size() const { return buf_.size(); }
  const Bytes& buffer() const { return buf_; }
  Bytes Take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

}  // namespace confide::serialize
