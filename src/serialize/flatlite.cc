#include "serialize/flatlite.h"

#include "common/endian.h"

namespace confide::serialize {

namespace {
constexpr uint32_t kMagic = 0x464c4954;  // "FLIT"
constexpr size_t kHeaderBase = 8;        // magic + field_count
}  // namespace

FlatLiteBuilder::FlatLiteBuilder(uint32_t field_count)
    : field_count_(field_count), offsets_(field_count, 0) {}

void FlatLiteBuilder::SetU64(uint32_t field, uint64_t value) {
  offsets_[field] = uint32_t(data_.size()) + 1;  // +1 reserves 0 for "absent"
  uint8_t buf[8];
  StoreLe64(buf, value);
  Append(&data_, ByteView(buf, 8));
}

void FlatLiteBuilder::SetBytes(uint32_t field, ByteView data) {
  offsets_[field] = uint32_t(data_.size()) + 1;
  uint8_t len[4];
  StoreLe32(len, uint32_t(data.size()));
  Append(&data_, ByteView(len, 4));
  Append(&data_, data);
}

void FlatLiteBuilder::SetVector(uint32_t field, const std::vector<Bytes>& elements) {
  offsets_[field] = uint32_t(data_.size()) + 1;
  uint8_t count[4];
  StoreLe32(count, uint32_t(elements.size()));
  Append(&data_, ByteView(count, 4));
  // Element offset slots hold absolute buffer offsets; the header size is
  // fixed at construction so it is known here.
  const uint32_t header = uint32_t(kHeaderBase + 4 * field_count_);
  size_t slot_base = data_.size();
  data_.resize(data_.size() + 4 * elements.size());
  for (size_t i = 0; i < elements.size(); ++i) {
    StoreLe32(data_.data() + slot_base + 4 * i, header + uint32_t(data_.size()));
    uint8_t len[4];
    StoreLe32(len, uint32_t(elements[i].size()));
    Append(&data_, ByteView(len, 4));
    Append(&data_, elements[i]);
  }
}

Bytes FlatLiteBuilder::Finish() {
  const size_t header = kHeaderBase + 4 * field_count_;
  Bytes out(header + data_.size());
  StoreLe32(out.data(), kMagic);
  StoreLe32(out.data() + 4, field_count_);
  for (uint32_t i = 0; i < field_count_; ++i) {
    // Stored offsets become absolute (0 stays "absent").
    uint32_t rel = offsets_[i];
    StoreLe32(out.data() + kHeaderBase + 4 * i,
              rel == 0 ? 0 : uint32_t(header) + rel - 1);
  }
  std::copy(data_.begin(), data_.end(), out.begin() + header);
  return out;
}

Result<FlatLiteView> FlatLiteView::Parse(ByteView buffer) {
  if (buffer.size() < kHeaderBase) {
    return Status::Corruption("flatlite: buffer too small");
  }
  if (LoadLe32(buffer.data()) != kMagic) {
    return Status::Corruption("flatlite: bad magic");
  }
  uint32_t field_count = LoadLe32(buffer.data() + 4);
  if (buffer.size() < kHeaderBase + size_t(4) * field_count) {
    return Status::Corruption("flatlite: truncated offset table");
  }
  return FlatLiteView(buffer, field_count);
}

Result<uint32_t> FlatLiteView::OffsetOf(uint32_t field) const {
  if (field >= field_count_) {
    return Status::OutOfRange("flatlite: field index out of range");
  }
  uint32_t off = LoadLe32(buffer_.data() + kHeaderBase + 4 * field);
  if (off == 0) return Status::NotFound("flatlite: field absent");
  if (off >= buffer_.size()) {
    return Status::Corruption("flatlite: field offset out of bounds");
  }
  return off;
}

bool FlatLiteView::Has(uint32_t field) const {
  if (field >= field_count_) return false;
  return LoadLe32(buffer_.data() + kHeaderBase + 4 * field) != 0;
}

Result<uint64_t> FlatLiteView::GetU64(uint32_t field) const {
  CONFIDE_ASSIGN_OR_RETURN(uint32_t off, OffsetOf(field));
  // size_t arithmetic: `off + 8` in uint32 could wrap for offsets near
  // UINT32_MAX and slip past the check.
  if (size_t(off) + 8 > buffer_.size()) {
    return Status::Corruption("flatlite: scalar overruns buffer");
  }
  return LoadLe64(buffer_.data() + off);
}

Result<ByteView> FlatLiteView::LengthPrefixedAt(uint32_t offset) const {
  if (size_t(offset) + 4 > buffer_.size()) {
    return Status::Corruption("flatlite: length prefix overruns buffer");
  }
  uint32_t len = LoadLe32(buffer_.data() + offset);
  if (size_t(offset) + 4 + size_t(len) > buffer_.size()) {
    return Status::Corruption("flatlite: payload overruns buffer");
  }
  return buffer_.subspan(size_t(offset) + 4, len);
}

Result<ByteView> FlatLiteView::GetBytes(uint32_t field) const {
  CONFIDE_ASSIGN_OR_RETURN(uint32_t off, OffsetOf(field));
  return LengthPrefixedAt(off);
}

Result<std::string_view> FlatLiteView::GetString(uint32_t field) const {
  CONFIDE_ASSIGN_OR_RETURN(ByteView b, GetBytes(field));
  return std::string_view(reinterpret_cast<const char*>(b.data()), b.size());
}

Result<FlatLiteView> FlatLiteView::GetTable(uint32_t field) const {
  CONFIDE_ASSIGN_OR_RETURN(ByteView b, GetBytes(field));
  return Parse(b);
}

Result<uint32_t> FlatLiteView::GetVectorSize(uint32_t field) const {
  CONFIDE_ASSIGN_OR_RETURN(uint32_t off, OffsetOf(field));
  if (size_t(off) + 4 > buffer_.size()) {
    return Status::Corruption("flatlite: vector count overruns buffer");
  }
  uint32_t count = LoadLe32(buffer_.data() + off);
  // The slot table itself must fit; otherwise a truncated or corrupt
  // buffer can claim ~4B elements and send callers into a futile scan.
  if (size_t(4) * count > buffer_.size() - size_t(off) - 4) {
    return Status::Corruption("flatlite: vector count overruns buffer");
  }
  return count;
}

Result<ByteView> FlatLiteView::GetVectorElement(uint32_t field, uint32_t index) const {
  CONFIDE_ASSIGN_OR_RETURN(uint32_t off, OffsetOf(field));
  CONFIDE_ASSIGN_OR_RETURN(uint32_t count, GetVectorSize(field));
  if (index >= count) {
    return Status::OutOfRange("flatlite: vector index out of range");
  }
  size_t slot = size_t(off) + 4 + size_t(4) * index;
  if (slot + 4 > buffer_.size()) {
    return Status::Corruption("flatlite: vector slot overruns buffer");
  }
  uint32_t elem_off = LoadLe32(buffer_.data() + slot);
  if (elem_off == 0 || elem_off >= buffer_.size()) {
    return Status::Corruption("flatlite: bad vector element offset");
  }
  return LengthPrefixedAt(elem_off);
}

}  // namespace confide::serialize
