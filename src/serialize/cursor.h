/// \file cursor.h
/// \brief Non-owning Reader / appending Writer cursors — the primitive
/// layer under the zero-copy decode paths (rlp, flatlite, leb128).
///
/// Reader walks a borrowed ByteView and hands out sub-views instead of
/// copies; every bounds check is written against the *remaining* length
/// (`n > Remaining()`), never as `pos + n > size`, so attacker-controlled
/// 64-bit lengths cannot wrap the arithmetic past SIZE_MAX and defeat the
/// guard. Writer appends to a growable buffer; it exists so encoders can
/// stream fields without building intermediate item trees.
///
/// Lifetime contract: views returned by Reader alias the input buffer and
/// are valid exactly as long as that buffer. Decoded structs that must
/// outlive the wire bytes copy through common/arena.h or owned fields —
/// see DESIGN.md §Zero-copy serialization.

#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.h"
#include "common/endian.h"
#include "common/status.h"

namespace confide::serialize {

/// \brief Forward cursor over a borrowed buffer. Returned views alias the
/// underlying bytes; the Reader never allocates.
class Reader {
 public:
  explicit Reader(ByteView data) : data_(data) {}

  size_t pos() const { return pos_; }
  size_t Remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  /// \brief Corruption unless every byte has been consumed.
  Status ExpectEnd(const char* what) const {
    if (!AtEnd()) {
      return Status::Corruption(std::string(what) + ": trailing bytes");
    }
    return Status::OK();
  }

  Result<uint8_t> ReadU8() {
    if (Remaining() < 1) return Status::Corruption("cursor: truncated u8");
    return data_[pos_++];
  }

  /// \brief Borrows the next `n` bytes. Overflow-safe: the check compares
  /// `n` against the remaining length rather than computing `pos + n`.
  Result<ByteView> ReadBytes(size_t n) {
    if (n > Remaining()) return Status::Corruption("cursor: truncated read");
    ByteView out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  Status Skip(size_t n) {
    if (n > Remaining()) return Status::Corruption("cursor: truncated skip");
    pos_ += n;
    return Status::OK();
  }

  Result<uint32_t> ReadLe32() {
    CONFIDE_ASSIGN_OR_RETURN(ByteView b, ReadBytes(4));
    return LoadLe32(b.data());
  }

  Result<uint64_t> ReadLe64() {
    CONFIDE_ASSIGN_OR_RETURN(ByteView b, ReadBytes(8));
    return LoadLe64(b.data());
  }

  Result<uint32_t> ReadBe32() {
    CONFIDE_ASSIGN_OR_RETURN(ByteView b, ReadBytes(4));
    return LoadBe32(b.data());
  }

  Result<uint64_t> ReadBe64() {
    CONFIDE_ASSIGN_OR_RETURN(ByteView b, ReadBytes(8));
    return LoadBe64(b.data());
  }

  /// \brief Borrows a [u32 length][payload] field (FlatLite-style).
  Result<ByteView> ReadLengthPrefixed() {
    CONFIDE_ASSIGN_OR_RETURN(uint32_t len, ReadLe32());
    return ReadBytes(len);
  }

 private:
  ByteView data_;
  size_t pos_ = 0;
};

/// \brief Appending writer over an owned buffer. Mirrors Reader so
/// encode/decode pairs read symmetrically.
class Writer {
 public:
  Writer() = default;
  explicit Writer(size_t reserve) { buf_.reserve(reserve); }

  void WriteU8(uint8_t v) { buf_.push_back(v); }
  void WriteBytes(ByteView b) { Append(&buf_, b); }
  void WriteString(std::string_view s) { Append(&buf_, AsByteView(s)); }

  void WriteLe32(uint32_t v) {
    uint8_t b[4];
    StoreLe32(b, v);
    Append(&buf_, ByteView(b, 4));
  }

  void WriteLe64(uint64_t v) {
    uint8_t b[8];
    StoreLe64(b, v);
    Append(&buf_, ByteView(b, 8));
  }

  void WriteBe32(uint32_t v) {
    uint8_t b[4];
    StoreBe32(b, v);
    Append(&buf_, ByteView(b, 4));
  }

  void WriteBe64(uint64_t v) {
    uint8_t b[8];
    StoreBe64(b, v);
    Append(&buf_, ByteView(b, 8));
  }

  void WriteLengthPrefixed(ByteView b) {
    WriteLe32(uint32_t(b.size()));
    WriteBytes(b);
  }

  size_t size() const { return buf_.size(); }
  const Bytes& buffer() const { return buf_; }
  Bytes Take() && { return std::move(buf_); }

 protected:
  Bytes buf_;
};

}  // namespace confide::serialize
