#include "serialize/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace confide::serialize {

namespace {

constexpr int kMaxDepth = 128;

struct Parser {
  std::string_view text;
  size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipWs() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  Status Fail(const std::string& what) {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos));
  }

  bool Consume(char c) {
    if (!AtEnd() && Peek() == c) {
      ++pos;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (Consume(c)) return Status::OK();
    return Fail(std::string("expected '") + c + "'");
  }

  bool ConsumeKeyword(std::string_view kw) {
    if (text.substr(pos, kw.size()) == kw) {
      pos += kw.size();
      return true;
    }
    return false;
  }

  Result<std::string> ParseString() {
    CONFIDE_RETURN_NOT_OK(Expect('"'));
    std::string out;
    while (true) {
      if (AtEnd()) return Fail("unterminated string");
      char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (AtEnd()) return Fail("unterminated escape");
        char esc = text[pos++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            // Remaining-based guard (pos + 4 could wrap in principle).
            if (text.size() - pos < 4) return Fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
              else return Fail("bad hex digit in \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogate pairs folded to
            // the replacement character — sufficient for this library).
            if (code < 0x80) {
              out.push_back(char(code));
            } else if (code < 0x800) {
              out.push_back(char(0xc0 | (code >> 6)));
              out.push_back(char(0x80 | (code & 0x3f)));
            } else {
              out.push_back(char(0xe0 | (code >> 12)));
              out.push_back(char(0x80 | ((code >> 6) & 0x3f)));
              out.push_back(char(0x80 | (code & 0x3f)));
            }
            break;
          }
          default:
            return Fail("unknown escape");
        }
      } else if (uint8_t(c) < 0x20) {
        return Fail("raw control character in string");
      } else {
        out.push_back(c);
      }
    }
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos;
    if (Consume('-')) {}
    while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos;
    bool is_integral = true;
    if (Consume('.')) {
      is_integral = false;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      is_integral = false;
      ++pos;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos;
    }
    std::string token(text.substr(start, pos - start));
    if (token.empty() || token == "-") return Fail("malformed number");
    if (is_integral) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return JsonValue(int64_t(v));
      }
      // Fall through to double on overflow.
    }
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("malformed number");
    return JsonValue(d);
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWs();
    if (AtEnd()) return Fail("unexpected end of input");
    char c = Peek();
    if (c == '{') {
      ++pos;
      JsonValue::Object obj;
      SkipWs();
      if (Consume('}')) return JsonValue(std::move(obj));
      while (true) {
        SkipWs();
        CONFIDE_ASSIGN_OR_RETURN(std::string key, ParseString());
        SkipWs();
        CONFIDE_RETURN_NOT_OK(Expect(':'));
        CONFIDE_ASSIGN_OR_RETURN(JsonValue val, ParseValue(depth + 1));
        obj.emplace_back(std::move(key), std::move(val));
        SkipWs();
        if (Consume(',')) continue;
        CONFIDE_RETURN_NOT_OK(Expect('}'));
        return JsonValue(std::move(obj));
      }
    }
    if (c == '[') {
      ++pos;
      JsonValue::Array arr;
      SkipWs();
      if (Consume(']')) return JsonValue(std::move(arr));
      while (true) {
        CONFIDE_ASSIGN_OR_RETURN(JsonValue val, ParseValue(depth + 1));
        arr.push_back(std::move(val));
        SkipWs();
        if (Consume(',')) continue;
        CONFIDE_RETURN_NOT_OK(Expect(']'));
        return JsonValue(std::move(arr));
      }
    }
    if (c == '"') {
      CONFIDE_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue(std::move(s));
    }
    if (ConsumeKeyword("true")) return JsonValue(true);
    if (ConsumeKeyword("false")) return JsonValue(false);
    if (ConsumeKeyword("null")) return JsonValue(nullptr);
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Fail("unexpected character");
  }
};

void WriteEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (uint8_t(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void WriteTo(const JsonValue& v, std::string* out) {
  if (v.is_null()) {
    *out += "null";
  } else if (v.is_bool()) {
    *out += v.as_bool() ? "true" : "false";
  } else if (v.is_int()) {
    *out += std::to_string(v.as_int());
  } else if (v.is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v.as_double());
    *out += buf;
  } else if (v.is_string()) {
    WriteEscaped(v.as_string(), out);
  } else if (v.is_array()) {
    out->push_back('[');
    bool first = true;
    for (const auto& item : v.as_array()) {
      if (!first) out->push_back(',');
      first = false;
      WriteTo(item, out);
    }
    out->push_back(']');
  } else {
    out->push_back('{');
    bool first = true;
    for (const auto& [key, val] : v.as_object()) {
      if (!first) out->push_back(',');
      first = false;
      WriteEscaped(key, out);
      out->push_back(':');
      WriteTo(val, out);
    }
    out->push_back('}');
  }
}

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue value) {
  if (!is_object()) value_ = Object{};
  for (auto& [k, v] : as_object()) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  as_object().emplace_back(std::move(key), std::move(value));
}

Result<JsonValue> JsonParse(std::string_view text) {
  Parser parser{text};
  CONFIDE_ASSIGN_OR_RETURN(JsonValue v, parser.ParseValue(0));
  parser.SkipWs();
  if (!parser.AtEnd()) {
    return Status::InvalidArgument("json: trailing garbage after document");
  }
  return v;
}

std::string JsonWrite(const JsonValue& value) {
  std::string out;
  WriteTo(value, &out);
  return out;
}

}  // namespace confide::serialize
