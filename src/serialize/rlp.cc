#include "serialize/rlp.h"

namespace confide::serialize {

namespace {

void EncodeLength(Bytes* out, size_t len, uint8_t offset) {
  if (len < 56) {
    out->push_back(uint8_t(offset + len));
    return;
  }
  // Minimal big-endian length-of-length form.
  uint8_t buf[8];
  int n = 0;
  size_t tmp = len;
  while (tmp > 0) {
    buf[n++] = uint8_t(tmp & 0xff);
    tmp >>= 8;
  }
  out->push_back(uint8_t(offset + 55 + n));
  for (int i = n - 1; i >= 0; --i) out->push_back(buf[i]);
}

void EncodeTo(const RlpItem& item, Bytes* out) {
  if (item.is_bytes()) {
    const Bytes& b = item.bytes();
    if (b.size() == 1 && b[0] < 0x80) {
      out->push_back(b[0]);
      return;
    }
    EncodeLength(out, b.size(), 0x80);
    Append(out, b);
    return;
  }
  Bytes payload;
  for (const RlpItem& child : item.list()) EncodeTo(child, &payload);
  EncodeLength(out, payload.size(), 0xc0);
  Append(out, payload);
}

struct Decoder {
  ByteView data;
  size_t pos = 0;

  Result<size_t> ReadLength(int len_of_len) {
    if (pos + len_of_len > data.size()) {
      return Status::Corruption("rlp: truncated length");
    }
    if (len_of_len > 8) return Status::Corruption("rlp: length too large");
    size_t len = 0;
    for (int i = 0; i < len_of_len; ++i) len = (len << 8) | data[pos++];
    if (len < 56) return Status::Corruption("rlp: non-canonical long length");
    return len;
  }

  Result<RlpItem> DecodeItem() {
    if (pos >= data.size()) return Status::Corruption("rlp: empty input");
    uint8_t prefix = data[pos++];
    if (prefix < 0x80) {
      return RlpItem(Bytes{prefix});
    }
    if (prefix <= 0xb7) {
      size_t len = prefix - 0x80;
      if (pos + len > data.size()) return Status::Corruption("rlp: truncated string");
      if (len == 1 && data[pos] < 0x80) {
        return Status::Corruption("rlp: non-canonical single byte");
      }
      Bytes b(data.begin() + pos, data.begin() + pos + len);
      pos += len;
      return RlpItem(std::move(b));
    }
    if (prefix <= 0xbf) {
      CONFIDE_ASSIGN_OR_RETURN(size_t len, ReadLength(prefix - 0xb7));
      if (pos + len > data.size()) return Status::Corruption("rlp: truncated string");
      Bytes b(data.begin() + pos, data.begin() + pos + len);
      pos += len;
      return RlpItem(std::move(b));
    }
    size_t len;
    if (prefix <= 0xf7) {
      len = prefix - 0xc0;
    } else {
      CONFIDE_ASSIGN_OR_RETURN(len, ReadLength(prefix - 0xf7));
    }
    if (pos + len > data.size()) return Status::Corruption("rlp: truncated list");
    size_t end = pos + len;
    std::vector<RlpItem> items;
    while (pos < end) {
      CONFIDE_ASSIGN_OR_RETURN(RlpItem child, DecodeItem());
      if (pos > end) return Status::Corruption("rlp: list item overruns list");
      items.push_back(std::move(child));
    }
    return RlpItem(std::move(items));
  }
};

}  // namespace

RlpItem RlpItem::U64(uint64_t v) {
  Bytes b;
  // Minimal big-endian encoding; zero is the empty string.
  uint8_t buf[8];
  int n = 0;
  while (v > 0) {
    buf[n++] = uint8_t(v & 0xff);
    v >>= 8;
  }
  for (int i = n - 1; i >= 0; --i) b.push_back(buf[i]);
  return RlpItem(std::move(b));
}

Result<uint64_t> RlpItem::AsU64() const {
  if (!is_bytes()) return Status::InvalidArgument("rlp: list is not an integer");
  const Bytes& b = bytes();
  if (b.size() > 8) return Status::OutOfRange("rlp: integer exceeds 64 bits");
  if (!b.empty() && b[0] == 0) return Status::Corruption("rlp: non-minimal integer");
  uint64_t v = 0;
  for (uint8_t byte : b) v = (v << 8) | byte;
  return v;
}

Bytes RlpEncode(const RlpItem& item) {
  Bytes out;
  EncodeTo(item, &out);
  return out;
}

Result<RlpItem> RlpDecode(ByteView data) {
  Decoder dec{data};
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, dec.DecodeItem());
  if (dec.pos != data.size()) {
    return Status::Corruption("rlp: trailing bytes after item");
  }
  return item;
}

}  // namespace confide::serialize
