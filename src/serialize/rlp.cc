#include "serialize/rlp.h"

namespace confide::serialize {

namespace {

void EncodeLength(Bytes* out, size_t len, uint8_t offset) {
  if (len < 56) {
    out->push_back(uint8_t(offset + len));
    return;
  }
  // Minimal big-endian length-of-length form.
  uint8_t buf[8];
  int n = 0;
  size_t tmp = len;
  while (tmp > 0) {
    buf[n++] = uint8_t(tmp & 0xff);
    tmp >>= 8;
  }
  out->push_back(uint8_t(offset + 55 + n));
  for (int i = n - 1; i >= 0; --i) out->push_back(buf[i]);
}

void EncodeTo(const RlpItem& item, Bytes* out) {
  if (item.is_bytes()) {
    const Bytes& b = item.bytes();
    if (b.size() == 1 && b[0] < 0x80) {
      out->push_back(b[0]);
      return;
    }
    EncodeLength(out, b.size(), 0x80);
    Append(out, b);
    return;
  }
  Bytes payload;
  for (const RlpItem& child : item.list()) EncodeTo(child, &payload);
  EncodeLength(out, payload.size(), 0xc0);
  Append(out, payload);
}

/// Parsed item header. On success the payload occupies
/// [*pos, *pos + payload_len) and is guaranteed to lie inside `data`.
struct ItemHeader {
  bool is_list = false;
  size_t payload_len = 0;
};

/// Parses the prefix (and long-form length, if any) of the item starting
/// at *pos, leaving *pos at the first payload byte. For an inline single
/// byte (< 0x80) *pos stays on the byte itself with payload_len = 1.
///
/// Every guard here is written against the *remaining* input
/// (`len > data.size() - *pos`), never as `*pos + len > data.size()`:
/// `len` is attacker-controlled up to 2^64-1 and the addition form wraps
/// past SIZE_MAX, letting an out-of-bounds read through the check.
Result<ItemHeader> ParseItemHeader(ByteView data, size_t* pos) {
  if (*pos >= data.size()) return Status::Corruption("rlp: empty input");
  uint8_t prefix = data[(*pos)++];
  auto remaining = [&] { return data.size() - *pos; };

  // Long-form length: `len_of_len` big-endian bytes, minimal, >= 56.
  auto read_long_length = [&](size_t len_of_len) -> Result<size_t> {
    if (len_of_len > remaining()) {
      return Status::Corruption("rlp: truncated length");
    }
    if (data[*pos] == 0) {
      return Status::Corruption("rlp: non-minimal length encoding");
    }
    size_t len = 0;
    for (size_t i = 0; i < len_of_len; ++i) len = (len << 8) | data[(*pos)++];
    if (len < 56) return Status::Corruption("rlp: non-canonical long length");
    return len;
  };

  if (prefix < 0x80) {
    --*pos;  // the prefix byte IS the one-byte payload
    return ItemHeader{false, 1};
  }
  if (prefix <= 0xb7) {
    size_t len = prefix - 0x80;
    if (len > remaining()) return Status::Corruption("rlp: truncated string");
    if (len == 1 && data[*pos] < 0x80) {
      return Status::Corruption("rlp: non-canonical single byte");
    }
    return ItemHeader{false, len};
  }
  if (prefix <= 0xbf) {
    CONFIDE_ASSIGN_OR_RETURN(size_t len, read_long_length(prefix - 0xb7));
    if (len > remaining()) return Status::Corruption("rlp: truncated string");
    return ItemHeader{false, len};
  }
  if (prefix <= 0xf7) {
    size_t len = prefix - 0xc0;
    if (len > remaining()) return Status::Corruption("rlp: truncated list");
    return ItemHeader{true, len};
  }
  CONFIDE_ASSIGN_OR_RETURN(size_t len, read_long_length(prefix - 0xf7));
  if (len > remaining()) return Status::Corruption("rlp: truncated list");
  return ItemHeader{true, len};
}

struct Decoder {
  ByteView data;
  size_t pos = 0;

  Result<RlpItem> DecodeItem() {
    CONFIDE_ASSIGN_OR_RETURN(ItemHeader header, ParseItemHeader(data, &pos));
    if (!header.is_list) {
      Bytes b(data.begin() + pos, data.begin() + pos + header.payload_len);
      pos += header.payload_len;
      return RlpItem(std::move(b));
    }
    size_t end = pos + header.payload_len;  // in bounds per ParseItemHeader
    std::vector<RlpItem> items;
    while (pos < end) {
      CONFIDE_ASSIGN_OR_RETURN(RlpItem child, DecodeItem());
      if (pos > end) return Status::Corruption("rlp: list item overruns list");
      items.push_back(std::move(child));
    }
    return RlpItem(std::move(items));
  }
};

}  // namespace

RlpItem RlpItem::U64(uint64_t v) {
  Bytes b;
  // Minimal big-endian encoding; zero is the empty string.
  uint8_t buf[8];
  int n = 0;
  while (v > 0) {
    buf[n++] = uint8_t(v & 0xff);
    v >>= 8;
  }
  for (int i = n - 1; i >= 0; --i) b.push_back(buf[i]);
  return RlpItem(std::move(b));
}

Result<uint64_t> RlpU64Payload(ByteView payload) {
  if (payload.size() > 8) return Status::OutOfRange("rlp: integer exceeds 64 bits");
  if (!payload.empty() && payload[0] == 0) {
    return Status::Corruption("rlp: non-minimal integer");
  }
  uint64_t v = 0;
  for (uint8_t byte : payload) v = (v << 8) | byte;
  return v;
}

Result<uint64_t> RlpItem::AsU64() const {
  if (!is_bytes()) return Status::InvalidArgument("rlp: list is not an integer");
  return RlpU64Payload(bytes());
}

Bytes RlpEncode(const RlpItem& item) {
  Bytes out;
  EncodeTo(item, &out);
  return out;
}

Result<RlpItem> RlpDecode(ByteView data) {
  Decoder dec{data};
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, dec.DecodeItem());
  if (dec.pos != data.size()) {
    return Status::Corruption("rlp: trailing bytes after item");
  }
  return item;
}

Result<RlpReader> RlpReader::AtList(ByteView wire) {
  size_t pos = 0;
  CONFIDE_ASSIGN_OR_RETURN(ItemHeader header, ParseItemHeader(wire, &pos));
  if (!header.is_list) return Status::Corruption("rlp: expected a list");
  if (pos + header.payload_len != wire.size()) {
    return Status::Corruption("rlp: trailing bytes after item");
  }
  return RlpReader(wire.subspan(pos, header.payload_len));
}

Status RlpReader::ExpectEnd(const char* what) const {
  if (!AtEnd()) {
    return Status::Corruption(std::string(what) + ": unexpected extra fields");
  }
  return Status::OK();
}

Result<ByteView> RlpReader::NextBytes() {
  CONFIDE_ASSIGN_OR_RETURN(ItemHeader header, ParseItemHeader(data_, &pos_));
  if (header.is_list) return Status::Corruption("rlp: expected bytes, found list");
  ByteView payload = data_.subspan(pos_, header.payload_len);
  pos_ += header.payload_len;
  return payload;
}

Result<ByteView> RlpReader::NextFixed(size_t n, const char* what) {
  CONFIDE_ASSIGN_OR_RETURN(ByteView b, NextBytes());
  if (b.size() != n) {
    return Status::Corruption(std::string("rlp: bad ") + what);
  }
  return b;
}

Result<uint64_t> RlpReader::NextU64() {
  CONFIDE_ASSIGN_OR_RETURN(ByteView b, NextBytes());
  return RlpU64Payload(b);
}

Result<RlpReader> RlpReader::NextList() {
  CONFIDE_ASSIGN_OR_RETURN(ItemHeader header, ParseItemHeader(data_, &pos_));
  if (!header.is_list) return Status::Corruption("rlp: expected list, found bytes");
  RlpReader sub(data_.subspan(pos_, header.payload_len));
  pos_ += header.payload_len;
  return sub;
}

Result<ByteView> RlpReader::NextItem() {
  size_t start = pos_;
  CONFIDE_ASSIGN_OR_RETURN(ItemHeader header, ParseItemHeader(data_, &pos_));
  size_t end = pos_ + header.payload_len;
  // An inline single byte leaves pos_ on the byte itself; the raw
  // encoding still spans [start, end).
  pos_ = end;
  return data_.subspan(start, end - start);
}

Result<size_t> RlpReader::CountRemaining() const {
  RlpReader scan(data_.subspan(pos_));
  size_t count = 0;
  while (!scan.AtEnd()) {
    CONFIDE_ASSIGN_OR_RETURN(ByteView item, scan.NextItem());
    (void)item;
    ++count;
  }
  return count;
}

void RlpWriter::WriteBytes(ByteView b) {
  if (b.size() == 1 && b[0] < 0x80) {
    buf_.push_back(b[0]);
    return;
  }
  EncodeLength(&buf_, b.size(), 0x80);
  Append(&buf_, b);
}

void RlpWriter::WriteU64(uint64_t v) {
  uint8_t buf[8];
  int n = 0;
  while (v > 0) {
    buf[n++] = uint8_t(v & 0xff);
    v >>= 8;
  }
  // Reverse into big-endian minimal form.
  uint8_t be[8];
  for (int i = 0; i < n; ++i) be[i] = buf[n - 1 - i];
  WriteBytes(ByteView(be, size_t(n)));
}

void RlpWriter::EndList(size_t mark) {
  size_t payload_len = buf_.size() - mark;
  Bytes header;
  EncodeLength(&header, payload_len, 0xc0);
  buf_.insert(buf_.begin() + ptrdiff_t(mark), header.begin(), header.end());
}

}  // namespace confide::serialize
