/// \file flatlite.h
/// \brief FlatLite — a FlatBuffers-style zero-copy binary table format.
///
/// The paper's OPT2 replaces in-contract JSON parsing with Flatbuffers
/// (§6.4): field access becomes O(1) offset arithmetic instead of a full
/// text parse. FlatLite reproduces that property with a compact layout:
///
///   [u32 magic][u32 field_count][u32 offsets[field_count]][data region]
///
/// offsets are relative to the buffer start; offset 0 marks an absent
/// field. Scalar fields store 8 little-endian bytes; strings/bytes store
/// [u32 len][payload]; nested tables store a complete FlatLite buffer as a
/// bytes field; vectors store [u32 count][u32 offsets...].
///
/// CCLe (src/ccle) layers the confidentiality model on top: its codec
/// encrypts exactly the confidential leaf fields of a FlatLite tree.

#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace confide::serialize {

/// \brief Builds a FlatLite table with `field_count` slots.
class FlatLiteBuilder {
 public:
  explicit FlatLiteBuilder(uint32_t field_count);

  /// \brief Stores a 64-bit scalar into slot `field`.
  void SetU64(uint32_t field, uint64_t value);

  /// \brief Stores raw bytes (also used for strings and nested tables).
  void SetBytes(uint32_t field, ByteView data);
  void SetString(uint32_t field, std::string_view s) { SetBytes(field, AsByteView(s)); }

  /// \brief Stores a nested table.
  void SetTable(uint32_t field, const Bytes& table) { SetBytes(field, table); }

  /// \brief Stores a vector of nested buffers (each element a complete
  /// FlatLite buffer or raw byte string).
  void SetVector(uint32_t field, const std::vector<Bytes>& elements);

  /// \brief Produces the final buffer. The builder must not be reused.
  Bytes Finish();

 private:
  uint32_t field_count_;
  std::vector<uint32_t> offsets_;
  Bytes data_;  // data region, offsets are relative to final header size
};

/// \brief Zero-copy reader over a FlatLite buffer. The viewed bytes must
/// outlive the view.
class FlatLiteView {
 public:
  /// \brief Validates the header and offset table bounds.
  static Result<FlatLiteView> Parse(ByteView buffer);

  uint32_t field_count() const { return field_count_; }
  bool Has(uint32_t field) const;

  /// \brief Reads a scalar slot.
  Result<uint64_t> GetU64(uint32_t field) const;

  /// \brief Reads a bytes/string slot without copying.
  Result<ByteView> GetBytes(uint32_t field) const;
  Result<std::string_view> GetString(uint32_t field) const;

  /// \brief Reads a nested table slot.
  Result<FlatLiteView> GetTable(uint32_t field) const;

  /// \brief Number of elements in a vector slot.
  Result<uint32_t> GetVectorSize(uint32_t field) const;

  /// \brief Reads element `index` of a vector slot without copying.
  Result<ByteView> GetVectorElement(uint32_t field, uint32_t index) const;

  ByteView buffer() const { return buffer_; }

 private:
  FlatLiteView(ByteView buffer, uint32_t field_count)
      : buffer_(buffer), field_count_(field_count) {}

  Result<uint32_t> OffsetOf(uint32_t field) const;
  Result<ByteView> LengthPrefixedAt(uint32_t offset) const;

  ByteView buffer_;
  uint32_t field_count_;
};

}  // namespace confide::serialize
