/// \file json.h
/// \brief JSON parser/writer.
///
/// JSON is the request format of the ABS production workload (paper §6.1):
/// requests arrive as ~60-key JSON strings which the contract must parse.
/// This host-side implementation backs workload generation and the
/// pre-OPT2 (JSON-encoded asset) benchmark configuration.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace confide::serialize {

/// \brief A JSON value. Object member order is preserved.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}          // NOLINT
  JsonValue(bool b) : value_(b) {}                        // NOLINT
  JsonValue(int64_t i) : value_(i) {}                     // NOLINT
  JsonValue(int i) : value_(int64_t(i)) {}                // NOLINT
  JsonValue(uint64_t u) : value_(int64_t(u)) {}           // NOLINT
  JsonValue(double d) : value_(d) {}                      // NOLINT
  JsonValue(std::string s) : value_(std::move(s)) {}      // NOLINT
  JsonValue(const char* s) : value_(std::string(s)) {}    // NOLINT
  JsonValue(Array a) : value_(std::move(a)) {}            // NOLINT
  JsonValue(Object o) : value_(std::move(o)) {}           // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  bool as_bool() const { return std::get<bool>(value_); }
  int64_t as_int() const { return std::get<int64_t>(value_); }
  double as_double() const {
    return is_int() ? double(std::get<int64_t>(value_)) : std::get<double>(value_);
  }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const Array& as_array() const { return std::get<Array>(value_); }
  Array& as_array() { return std::get<Array>(value_); }
  const Object& as_object() const { return std::get<Object>(value_); }
  Object& as_object() { return std::get<Object>(value_); }

  /// \brief Object member lookup; nullptr when missing or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// \brief Appends/overwrites an object member.
  void Set(std::string key, JsonValue value);

  bool operator==(const JsonValue& other) const { return value_ == other.value_; }

 private:
  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array, Object> value_;
};

/// \brief Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected). Nesting depth is capped at 128.
Result<JsonValue> JsonParse(std::string_view text);

/// \brief Serializes compactly (no whitespace).
std::string JsonWrite(const JsonValue& value);

}  // namespace confide::serialize
