#include "tee/enclave.h"

#include "common/endian.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"

namespace confide::tee {

namespace {

/// Process-wide instruments mirroring TeeStats. TeeStats stays per-platform
/// (multi-node tests isolate platforms); the registry aggregates across the
/// process for snapshots and the bench metrics.json export.
struct TeeMetrics {
  metrics::Counter* ecalls = metrics::GetCounter("tee.ecall.count");
  metrics::Counter* ocalls = metrics::GetCounter("tee.ocall.count");
  metrics::Counter* transitions = metrics::GetCounter("tee.transition.count");
  metrics::Counter* transition_cycles =
      metrics::GetCounter("tee.transition.cycles");
  metrics::Counter* copy_bytes_in = metrics::GetCounter("tee.copy.bytes_in");
  metrics::Counter* copy_bytes_out = metrics::GetCounter("tee.copy.bytes_out");
  metrics::Counter* copy_cycles = metrics::GetCounter("tee.copy.cycles");
  metrics::Counter* user_check_bypasses =
      metrics::GetCounter("tee.copy.user_check_bypass.count");
  metrics::Counter* boundary_bytes_copied =
      metrics::GetCounter("tee.boundary.bytes_copied");
  metrics::Counter* boundary_bytes_viewed =
      metrics::GetCounter("tee.boundary.bytes_viewed");
  metrics::Counter* batched_entries =
      metrics::GetCounter("tee.ocall.batched_entries.count");
  metrics::Counter* transitions_saved =
      metrics::GetCounter("tee.transition.saved.count");
  metrics::Counter* counter_increments =
      metrics::GetCounter("tee.counter.increment.count");
  metrics::Counter* counter_reads = metrics::GetCounter("tee.counter.read.count");
  metrics::Counter* counter_persist_failures =
      metrics::GetCounter("tee.counter.persist_failure.count");
  metrics::Counter* counter_rollbacks_detected =
      metrics::GetCounter("tee.counter.rollback_detected.count");

  static const TeeMetrics& Get() {
    static const TeeMetrics instruments;
    return instruments;
  }
};

/// Simulated NVRAM behind the trusted monotonic counters: a process-
/// lifetime high-water mark per (platform seed, counter key). Platform
/// objects come and go across simulated restarts, but real hardware
/// NVRAM does not — so a durable counter store presented below this mark
/// is evidence of a host-side rollback, not a legitimate state.
struct CounterNvram {
  std::mutex mu;
  std::map<std::string, uint64_t> high_water;

  static CounterNvram& Get() {
    static CounterNvram nvram;
    return nvram;
  }
};

std::string NvramKey(uint64_t platform_id, const std::string& counter_key) {
  return std::to_string(platform_id) + "/" + counter_key;
}

constexpr const char* kFaultCounterPersist = "fault.tee.counter.persist";
constexpr const char* kFaultCounterRollback = "fault.tee.counter.rollback";

}  // namespace

// ---------------------------------------------------------------------------
// EnclaveContext
// ---------------------------------------------------------------------------

Result<Bytes> EnclaveContext::Ocall(uint64_t fn, ByteView payload,
                                    PointerSemantics semantics) {
  return platform_->DispatchOcall(fn, payload, semantics);
}

Result<Bytes> EnclaveContext::OcallBatched(uint64_t fn, ByteView payload,
                                           uint64_t entries,
                                           PointerSemantics semantics) {
  if (entries > 0) {
    platform_->stats_.batched_ocall_entries.fetch_add(entries,
                                                      std::memory_order_relaxed);
    TeeMetrics::Get().batched_entries->Increment(entries);
  }
  if (entries > 1) {
    uint64_t saved = 2 * (entries - 1);
    platform_->stats_.transitions_saved.fetch_add(saved,
                                                  std::memory_order_relaxed);
    TeeMetrics::Get().transitions_saved->Increment(saved);
  }
  return platform_->DispatchOcall(fn, payload, semantics);
}

Measurement EnclaveContext::Self() const {
  std::lock_guard<std::mutex> lock(platform_->mutex_);
  return platform_->enclaves_.at(enclave_id_).measurement;
}

uint64_t EnclaveContext::SecurityVersion() const {
  std::lock_guard<std::mutex> lock(platform_->mutex_);
  return platform_->enclaves_.at(enclave_id_).security_version;
}

LocalReport EnclaveContext::CreateLocalReport(ByteView user_data) const {
  LocalReport report;
  report.mrenclave = Self();
  report.security_version = SecurityVersion();
  report.user_data = ToBytes(user_data);
  report.mac = platform_->LocalReportMac(report.mrenclave,
                                         report.security_version, user_data);
  return report;
}

bool EnclaveContext::VerifyLocalReport(const LocalReport& report) const {
  return platform_->VerifyLocalReport(report);
}

Quote EnclaveContext::CreateQuote(ByteView user_data) const {
  Quote quote;
  quote.mrenclave = Self();
  quote.security_version = SecurityVersion();
  quote.platform_id = platform_->platform_id_;
  quote.user_data = ToBytes(user_data);
  quote.platform_key = platform_->attestation_key_.pub;
  quote.platform_cert = platform_->attestation_cert_;
  crypto::Hash256 digest = crypto::Sha256::Digest(QuoteSigningBody(quote));
  quote.signature = *crypto::EcdsaSign(platform_->attestation_key_.priv, digest);
  return quote;
}

crypto::Hash256 EnclaveContext::SealKey(std::string_view label) const {
  // Seal key = HMAC(platform seal root, measurement || label): bound to
  // the platform *and* the enclave identity, like SGX's EGETKEY.
  Bytes input = Concat(crypto::HashView(Self()), AsByteView(label));
  return crypto::HmacSha256(crypto::HashView(platform_->seal_root_key_), input);
}

void EnclaveContext::MonitorEmit(uint32_t severity, std::string_view message) {
  MonitorRecord record;
  record.sequence = platform_->monitor_sequence_.fetch_add(1, std::memory_order_relaxed);
  record.enclave_id = enclave_id_;
  record.severity = severity;
  record.SetMessage(message);
  // Exit-less: a handful of cycles for the ring write, no transition.
  platform_->clock_->AdvanceCycles(60);
  platform_->monitor_ring_.Push(record);
}

void EnclaveContext::MonitorEmitViaOcall(uint32_t severity, std::string_view message) {
  MonitorRecord record;
  record.sequence = platform_->monitor_sequence_.fetch_add(1, std::memory_order_relaxed);
  record.enclave_id = enclave_id_;
  record.severity = severity;
  record.SetMessage(message);
  // Full boundary crossing charged, then the record lands in the same ring.
  Bytes payload(sizeof(MonitorRecord));
  std::memcpy(payload.data(), &record, sizeof(MonitorRecord));
  (void)platform_->DispatchOcall(/*fn=*/0, payload, PointerSemantics::kCopyInOut);
  platform_->monitor_ring_.Push(record);
}

Result<uint64_t> EnclaveContext::CounterIncrement(std::string_view family) {
  return platform_->CounterIncrement(enclave_id_, family);
}

Result<uint64_t> EnclaveContext::CounterRead(std::string_view family) {
  return platform_->CounterRead(enclave_id_, family);
}

EpcManager* EnclaveContext::epc() { return &platform_->epc_; }

// ---------------------------------------------------------------------------
// EnclavePlatform
// ---------------------------------------------------------------------------

EnclavePlatform::EnclavePlatform(const TeeCostModel& model, SimClock* clock,
                                 uint64_t platform_seed)
    : model_(model),
      clock_(clock),
      epc_(model, clock, &stats_),
      platform_id_(platform_seed) {
  crypto::Drbg rng(Concat(AsByteView("confide-platform-keys:"),
                          crypto::HashView(crypto::Sha256::Digest(
                              ByteView(reinterpret_cast<const uint8_t*>(&platform_seed),
                                       sizeof(platform_seed))))));
  attestation_key_ = crypto::GenerateKeyPair(&rng);
  attestation_cert_ = AttestationRoot::CertifyPlatformKey(attestation_key_.pub);
  rng.Fill(local_report_key_.data(), local_report_key_.size());
  rng.Fill(seal_root_key_.data(), seal_root_key_.size());
}

void EnclavePlatform::ChargeTransition() {
  uint64_t count = stats_.transitions.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t cycles = (count % model_.cold_transition_period == 0)
                        ? model_.transition_cycles_cold
                        : model_.transition_cycles_warm;
  clock_->AdvanceCycles(cycles);
  stats_.modeled_cycles.fetch_add(cycles, std::memory_order_relaxed);
  TeeMetrics::Get().transitions->Increment();
  TeeMetrics::Get().transition_cycles->Increment(cycles);
}

void EnclavePlatform::ChargeCopy(size_t bytes, PointerSemantics semantics,
                                 bool inbound) {
  if (semantics == PointerSemantics::kUserCheck) {
    stats_.user_check_bypasses.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_viewed.fetch_add(bytes, std::memory_order_relaxed);
    TeeMetrics::Get().user_check_bypasses->Increment();
    TeeMetrics::Get().boundary_bytes_viewed->Increment(bytes);
    return;
  }
  uint64_t cycles = model_.copy_setup_cycles +
                    uint64_t(double(bytes) * model_.copy_cycles_per_byte);
  clock_->AdvanceCycles(cycles);
  stats_.modeled_cycles.fetch_add(cycles, std::memory_order_relaxed);
  auto& counter = inbound ? stats_.bytes_copied_in : stats_.bytes_copied_out;
  counter.fetch_add(bytes, std::memory_order_relaxed);
  TeeMetrics::Get().copy_cycles->Increment(cycles);
  TeeMetrics::Get().boundary_bytes_copied->Increment(bytes);
  (inbound ? TeeMetrics::Get().copy_bytes_in : TeeMetrics::Get().copy_bytes_out)
      ->Increment(bytes);
}

Result<EnclaveId> EnclavePlatform::CreateEnclave(std::shared_ptr<Enclave> code,
                                                 uint64_t heap_bytes) {
  CONFIDE_ASSIGN_OR_RETURN(EpcRegionId heap, epc_.Allocate(heap_bytes));
  std::lock_guard<std::mutex> lock(mutex_);
  EnclaveId id = next_enclave_id_++;
  LoadedEnclave loaded;
  loaded.measurement = MeasureEnclave(code->CodeIdentity(), code->SecurityVersion());
  loaded.security_version = code->SecurityVersion();
  loaded.code = std::move(code);
  loaded.heap_region = heap;
  enclaves_[id] = std::move(loaded);
  return id;
}

Status EnclavePlatform::RemoveEnclaveLocked(EnclaveId id, bool crashed) {
  auto it = enclaves_.find(id);
  if (it == enclaves_.end()) return Status::NotFound("unknown enclave");
  CONFIDE_RETURN_NOT_OK(epc_.Free(it->second.heap_region));
  enclaves_.erase(it);
  if (crashed) crashed_.insert(id);
  return Status::OK();
}

Status EnclavePlatform::DestroyEnclave(EnclaveId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  return RemoveEnclaveLocked(id, /*crashed=*/false);
}

Status EnclavePlatform::KillEnclave(EnclaveId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  CONFIDE_RETURN_NOT_OK(RemoveEnclaveLocked(id, /*crashed=*/true));
  fault::NoteInjected("fault.tee.enclave_crash");
  return Status::OK();
}

bool EnclavePlatform::IsAlive(EnclaveId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enclaves_.find(id) != enclaves_.end();
}

Result<Bytes> EnclavePlatform::Ecall(EnclaveId id, uint64_t fn, ByteView input,
                                     PointerSemantics semantics) {
  std::shared_ptr<Enclave> code;
  EpcRegionId heap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (crashed_.count(id) != 0) {
      return Status::Unavailable("tee: enclave crashed");
    }
    auto it = enclaves_.find(id);
    if (it == enclaves_.end()) return Status::NotFound("unknown enclave");
    code = it->second.code;
    heap = it->second.heap_region;
  }
  if (fault::FaultInjector::Global().ShouldFail("fault.tee.enclave_crash")) {
    // The enclave dies before the call enters it; EPC is reclaimed and
    // every later Ecall against this id sees the same Unavailable error.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      (void)RemoveEnclaveLocked(id, /*crashed=*/true);
    }
    return Status::Unavailable("tee: enclave crashed");
  }
  stats_.ecalls.fetch_add(1, std::memory_order_relaxed);
  TeeMetrics::Get().ecalls->Increment();
  ChargeTransition();                          // EENTER
  ChargeCopy(input.size(), semantics, /*inbound=*/true);
  CONFIDE_RETURN_NOT_OK(epc_.Touch(heap));     // working set fault-in

  EnclaveContext ctx(this, id);
  Result<Bytes> result = code->HandleEcall(fn, input, &ctx);

  if (result.ok()) {
    ChargeCopy(result.value().size(), semantics, /*inbound=*/false);
  }
  ChargeTransition();                          // EEXIT
  return result;
}

void EnclavePlatform::RegisterOcall(uint64_t fn, OcallHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  ocalls_[fn] = std::move(handler);
}

Result<Bytes> EnclavePlatform::DispatchOcall(uint64_t fn, ByteView payload,
                                             PointerSemantics semantics) {
  OcallHandler handler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = ocalls_.find(fn);
    if (it == ocalls_.end()) {
      // Monitor ocall (fn 0) may be unregistered; treat as a sink.
      if (fn == 0) {
        handler = [](ByteView) -> Result<Bytes> { return Bytes{}; };
      } else {
        return Status::NotFound("no handler for ocall " + std::to_string(fn));
      }
    } else {
      handler = it->second;
    }
  }
  stats_.ocalls.fetch_add(1, std::memory_order_relaxed);
  TeeMetrics::Get().ocalls->Increment();
  ChargeTransition();                          // exit to host
  ChargeCopy(payload.size(), semantics, /*inbound=*/false);
  Result<Bytes> result = handler(payload);
  if (result.ok()) {
    ChargeCopy(result.value().size(), semantics, /*inbound=*/true);
  }
  ChargeTransition();                          // re-enter enclave
  return result;
}

crypto::Hash256 EnclavePlatform::LocalReportMac(const Measurement& mrenclave,
                                                uint64_t svn,
                                                ByteView user_data) const {
  uint8_t svn_bytes[8];
  StoreBe64(svn_bytes, svn);
  Bytes body = Concat(crypto::HashView(mrenclave), ByteView(svn_bytes, 8), user_data);
  return crypto::HmacSha256(crypto::HashView(local_report_key_), body);
}

bool EnclavePlatform::VerifyLocalReport(const LocalReport& report) const {
  crypto::Hash256 expected = LocalReportMac(report.mrenclave,
                                            report.security_version,
                                            report.user_data);
  return ConstantTimeEqual(crypto::HashView(expected), crypto::HashView(report.mac));
}

Result<Measurement> EnclavePlatform::GetMeasurement(EnclaveId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = enclaves_.find(id);
  if (it == enclaves_.end()) return Status::NotFound("unknown enclave");
  return it->second.measurement;
}

std::vector<MonitorRecord> EnclavePlatform::DrainMonitor() {
  std::vector<MonitorRecord> records;
  while (auto record = monitor_ring_.Pop()) {
    records.push_back(*record);
  }
  return records;
}

// ---------------------------------------------------------------------------
// Trusted monotonic counters
// ---------------------------------------------------------------------------

void EnclavePlatform::AttachCounterStore(std::shared_ptr<storage::KvStore> store) {
  std::lock_guard<std::mutex> lock(mutex_);
  counter_store_ = std::move(store);
  // Drop loaded values so the next touch re-resolves against the new
  // store — and re-runs the rollback check against the NVRAM mark.
  counters_.clear();
}

Result<std::string> EnclavePlatform::CounterKeyLocked(
    EnclaveId id, std::string_view family) const {
  auto it = enclaves_.find(id);
  if (it == enclaves_.end()) return Status::NotFound("unknown enclave");
  return "tmc/" + HexEncode(crypto::HashView(it->second.measurement)) + "/" +
         std::string(family);
}

Result<uint64_t> EnclavePlatform::LoadCounterLocked(const std::string& key) {
  auto it = counters_.find(key);
  if (it != counters_.end()) return it->second;

  auto& nvram = CounterNvram::Get();
  uint64_t mark = 0;
  {
    std::lock_guard<std::mutex> nv(nvram.mu);
    auto hw = nvram.high_water.find(NvramKey(platform_id_, key));
    if (hw != nvram.high_water.end()) mark = hw->second;
  }

  // Without a durable store the NVRAM mark itself is the persisted value.
  uint64_t value = mark;
  if (counter_store_) {
    uint64_t durable = 0;
    Result<Bytes> stored = counter_store_->Get(key);
    if (stored.ok()) {
      if (stored->size() != 8) {
        return Status::Corruption("tee: malformed counter entry " + key);
      }
      durable = LoadBe64(stored->data());
    } else if (!stored.status().IsNotFound()) {
      return stored.status();
    }
    uint64_t rollback_by = 0;
    bool injected =
        fault::FaultInjector::Global().ShouldFail(kFaultCounterRollback,
                                                  &rollback_by);
    if (injected) {
      // The host presents an old durable value — the counter half of a
      // snapshot-restore attack. arg = how many increments to undo
      // (0 → lose the counter entirely).
      durable = (rollback_by == 0 || rollback_by >= durable)
                    ? 0
                    : durable - rollback_by;
    }
    if (durable < mark) {
      TeeMetrics::Get().counter_rollbacks_detected->Increment();
      if (injected) fault::NoteRecovered(kFaultCounterRollback);
      return Status::StaleState("tee: monotonic counter " + key +
                                " rolled back (durable " +
                                std::to_string(durable) + " < trusted " +
                                std::to_string(mark) + ")");
    }
    value = durable;
  }

  counters_[key] = value;
  {
    std::lock_guard<std::mutex> nv(nvram.mu);
    uint64_t& hw = nvram.high_water[NvramKey(platform_id_, key)];
    if (value > hw) hw = value;
  }
  return value;
}

Result<uint64_t> EnclavePlatform::CounterIncrement(EnclaveId id,
                                                   std::string_view family) {
  std::lock_guard<std::mutex> lock(mutex_);
  CONFIDE_ASSIGN_OR_RETURN(std::string key, CounterKeyLocked(id, family));
  CONFIDE_ASSIGN_OR_RETURN(uint64_t current, LoadCounterLocked(key));
  uint64_t next = current + 1;
  // Increment-then-seal: the durable write must land before the new value
  // is ever exposed, so a crash between the two leaves the counter *ahead*
  // of the sealed state — never behind it.
  if (counter_store_) {
    if (fault::FaultInjector::Global().ShouldFail(kFaultCounterPersist)) {
      TeeMetrics::Get().counter_persist_failures->Increment();
      counter_persist_pending_ = true;
      return Status::Unavailable("tee: counter persist failed for " + key);
    }
    uint8_t be[8];
    StoreBe64(be, next);
    Status put = counter_store_->Put(key, ToBytes(ByteView(be, 8)));
    if (!put.ok()) {
      TeeMetrics::Get().counter_persist_failures->Increment();
      return put;
    }
    CONFIDE_RETURN_NOT_OK(counter_store_->Sync());
    if (counter_persist_pending_) {
      // A retried increment landing durably IS the recovery from the
      // injected persist failure (the in-memory value never moved).
      fault::NoteRecovered(kFaultCounterPersist);
      counter_persist_pending_ = false;
    }
  }
  counters_[key] = next;
  {
    auto& nvram = CounterNvram::Get();
    std::lock_guard<std::mutex> nv(nvram.mu);
    uint64_t& hw = nvram.high_water[NvramKey(platform_id_, key)];
    if (next > hw) hw = next;
  }
  TeeMetrics::Get().counter_increments->Increment();
  return next;
}

Result<uint64_t> EnclavePlatform::CounterRead(EnclaveId id,
                                              std::string_view family) {
  std::lock_guard<std::mutex> lock(mutex_);
  CONFIDE_ASSIGN_OR_RETURN(std::string key, CounterKeyLocked(id, family));
  CONFIDE_ASSIGN_OR_RETURN(uint64_t value, LoadCounterLocked(key));
  TeeMetrics::Get().counter_reads->Increment();
  return value;
}

}  // namespace confide::tee
