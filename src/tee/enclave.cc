#include "tee/enclave.h"

#include "common/endian.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"

namespace confide::tee {

namespace {

/// Process-wide instruments mirroring TeeStats. TeeStats stays per-platform
/// (multi-node tests isolate platforms); the registry aggregates across the
/// process for snapshots and the bench metrics.json export.
struct TeeMetrics {
  metrics::Counter* ecalls = metrics::GetCounter("tee.ecall.count");
  metrics::Counter* ocalls = metrics::GetCounter("tee.ocall.count");
  metrics::Counter* transitions = metrics::GetCounter("tee.transition.count");
  metrics::Counter* transition_cycles =
      metrics::GetCounter("tee.transition.cycles");
  metrics::Counter* copy_bytes_in = metrics::GetCounter("tee.copy.bytes_in");
  metrics::Counter* copy_bytes_out = metrics::GetCounter("tee.copy.bytes_out");
  metrics::Counter* copy_cycles = metrics::GetCounter("tee.copy.cycles");
  metrics::Counter* user_check_bypasses =
      metrics::GetCounter("tee.copy.user_check_bypass.count");
  metrics::Counter* batched_entries =
      metrics::GetCounter("tee.ocall.batched_entries.count");
  metrics::Counter* transitions_saved =
      metrics::GetCounter("tee.transition.saved.count");

  static const TeeMetrics& Get() {
    static const TeeMetrics instruments;
    return instruments;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// EnclaveContext
// ---------------------------------------------------------------------------

Result<Bytes> EnclaveContext::Ocall(uint64_t fn, ByteView payload,
                                    PointerSemantics semantics) {
  return platform_->DispatchOcall(fn, payload, semantics);
}

Result<Bytes> EnclaveContext::OcallBatched(uint64_t fn, ByteView payload,
                                           uint64_t entries,
                                           PointerSemantics semantics) {
  if (entries > 0) {
    platform_->stats_.batched_ocall_entries.fetch_add(entries,
                                                      std::memory_order_relaxed);
    TeeMetrics::Get().batched_entries->Increment(entries);
  }
  if (entries > 1) {
    uint64_t saved = 2 * (entries - 1);
    platform_->stats_.transitions_saved.fetch_add(saved,
                                                  std::memory_order_relaxed);
    TeeMetrics::Get().transitions_saved->Increment(saved);
  }
  return platform_->DispatchOcall(fn, payload, semantics);
}

Measurement EnclaveContext::Self() const {
  std::lock_guard<std::mutex> lock(platform_->mutex_);
  return platform_->enclaves_.at(enclave_id_).measurement;
}

uint64_t EnclaveContext::SecurityVersion() const {
  std::lock_guard<std::mutex> lock(platform_->mutex_);
  return platform_->enclaves_.at(enclave_id_).security_version;
}

LocalReport EnclaveContext::CreateLocalReport(ByteView user_data) const {
  LocalReport report;
  report.mrenclave = Self();
  report.security_version = SecurityVersion();
  report.user_data = ToBytes(user_data);
  report.mac = platform_->LocalReportMac(report.mrenclave,
                                         report.security_version, user_data);
  return report;
}

bool EnclaveContext::VerifyLocalReport(const LocalReport& report) const {
  return platform_->VerifyLocalReport(report);
}

Quote EnclaveContext::CreateQuote(ByteView user_data) const {
  Quote quote;
  quote.mrenclave = Self();
  quote.security_version = SecurityVersion();
  quote.platform_id = platform_->platform_id_;
  quote.user_data = ToBytes(user_data);
  quote.platform_key = platform_->attestation_key_.pub;
  quote.platform_cert = platform_->attestation_cert_;
  crypto::Hash256 digest = crypto::Sha256::Digest(QuoteSigningBody(quote));
  quote.signature = *crypto::EcdsaSign(platform_->attestation_key_.priv, digest);
  return quote;
}

crypto::Hash256 EnclaveContext::SealKey(std::string_view label) const {
  // Seal key = HMAC(platform seal root, measurement || label): bound to
  // the platform *and* the enclave identity, like SGX's EGETKEY.
  Bytes input = Concat(crypto::HashView(Self()), AsByteView(label));
  return crypto::HmacSha256(crypto::HashView(platform_->seal_root_key_), input);
}

void EnclaveContext::MonitorEmit(uint32_t severity, std::string_view message) {
  MonitorRecord record;
  record.sequence = platform_->monitor_sequence_.fetch_add(1, std::memory_order_relaxed);
  record.enclave_id = enclave_id_;
  record.severity = severity;
  record.SetMessage(message);
  // Exit-less: a handful of cycles for the ring write, no transition.
  platform_->clock_->AdvanceCycles(60);
  platform_->monitor_ring_.Push(record);
}

void EnclaveContext::MonitorEmitViaOcall(uint32_t severity, std::string_view message) {
  MonitorRecord record;
  record.sequence = platform_->monitor_sequence_.fetch_add(1, std::memory_order_relaxed);
  record.enclave_id = enclave_id_;
  record.severity = severity;
  record.SetMessage(message);
  // Full boundary crossing charged, then the record lands in the same ring.
  Bytes payload(sizeof(MonitorRecord));
  std::memcpy(payload.data(), &record, sizeof(MonitorRecord));
  (void)platform_->DispatchOcall(/*fn=*/0, payload, PointerSemantics::kCopyInOut);
  platform_->monitor_ring_.Push(record);
}

EpcManager* EnclaveContext::epc() { return &platform_->epc_; }

// ---------------------------------------------------------------------------
// EnclavePlatform
// ---------------------------------------------------------------------------

EnclavePlatform::EnclavePlatform(const TeeCostModel& model, SimClock* clock,
                                 uint64_t platform_seed)
    : model_(model),
      clock_(clock),
      epc_(model, clock, &stats_),
      platform_id_(platform_seed) {
  crypto::Drbg rng(Concat(AsByteView("confide-platform-keys:"),
                          crypto::HashView(crypto::Sha256::Digest(
                              ByteView(reinterpret_cast<const uint8_t*>(&platform_seed),
                                       sizeof(platform_seed))))));
  attestation_key_ = crypto::GenerateKeyPair(&rng);
  attestation_cert_ = AttestationRoot::CertifyPlatformKey(attestation_key_.pub);
  rng.Fill(local_report_key_.data(), local_report_key_.size());
  rng.Fill(seal_root_key_.data(), seal_root_key_.size());
}

void EnclavePlatform::ChargeTransition() {
  uint64_t count = stats_.transitions.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t cycles = (count % model_.cold_transition_period == 0)
                        ? model_.transition_cycles_cold
                        : model_.transition_cycles_warm;
  clock_->AdvanceCycles(cycles);
  stats_.modeled_cycles.fetch_add(cycles, std::memory_order_relaxed);
  TeeMetrics::Get().transitions->Increment();
  TeeMetrics::Get().transition_cycles->Increment(cycles);
}

void EnclavePlatform::ChargeCopy(size_t bytes, PointerSemantics semantics,
                                 bool inbound) {
  if (semantics == PointerSemantics::kUserCheck) {
    stats_.user_check_bypasses.fetch_add(1, std::memory_order_relaxed);
    TeeMetrics::Get().user_check_bypasses->Increment();
    return;
  }
  uint64_t cycles = model_.copy_setup_cycles +
                    uint64_t(double(bytes) * model_.copy_cycles_per_byte);
  clock_->AdvanceCycles(cycles);
  stats_.modeled_cycles.fetch_add(cycles, std::memory_order_relaxed);
  auto& counter = inbound ? stats_.bytes_copied_in : stats_.bytes_copied_out;
  counter.fetch_add(bytes, std::memory_order_relaxed);
  TeeMetrics::Get().copy_cycles->Increment(cycles);
  (inbound ? TeeMetrics::Get().copy_bytes_in : TeeMetrics::Get().copy_bytes_out)
      ->Increment(bytes);
}

Result<EnclaveId> EnclavePlatform::CreateEnclave(std::shared_ptr<Enclave> code,
                                                 uint64_t heap_bytes) {
  CONFIDE_ASSIGN_OR_RETURN(EpcRegionId heap, epc_.Allocate(heap_bytes));
  std::lock_guard<std::mutex> lock(mutex_);
  EnclaveId id = next_enclave_id_++;
  LoadedEnclave loaded;
  loaded.measurement = MeasureEnclave(code->CodeIdentity(), code->SecurityVersion());
  loaded.security_version = code->SecurityVersion();
  loaded.code = std::move(code);
  loaded.heap_region = heap;
  enclaves_[id] = std::move(loaded);
  return id;
}

Status EnclavePlatform::RemoveEnclaveLocked(EnclaveId id, bool crashed) {
  auto it = enclaves_.find(id);
  if (it == enclaves_.end()) return Status::NotFound("unknown enclave");
  CONFIDE_RETURN_NOT_OK(epc_.Free(it->second.heap_region));
  enclaves_.erase(it);
  if (crashed) crashed_.insert(id);
  return Status::OK();
}

Status EnclavePlatform::DestroyEnclave(EnclaveId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  return RemoveEnclaveLocked(id, /*crashed=*/false);
}

Status EnclavePlatform::KillEnclave(EnclaveId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  CONFIDE_RETURN_NOT_OK(RemoveEnclaveLocked(id, /*crashed=*/true));
  fault::NoteInjected("fault.tee.enclave_crash");
  return Status::OK();
}

bool EnclavePlatform::IsAlive(EnclaveId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enclaves_.find(id) != enclaves_.end();
}

Result<Bytes> EnclavePlatform::Ecall(EnclaveId id, uint64_t fn, ByteView input,
                                     PointerSemantics semantics) {
  std::shared_ptr<Enclave> code;
  EpcRegionId heap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (crashed_.count(id) != 0) {
      return Status::Unavailable("tee: enclave crashed");
    }
    auto it = enclaves_.find(id);
    if (it == enclaves_.end()) return Status::NotFound("unknown enclave");
    code = it->second.code;
    heap = it->second.heap_region;
  }
  if (fault::FaultInjector::Global().ShouldFail("fault.tee.enclave_crash")) {
    // The enclave dies before the call enters it; EPC is reclaimed and
    // every later Ecall against this id sees the same Unavailable error.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      (void)RemoveEnclaveLocked(id, /*crashed=*/true);
    }
    return Status::Unavailable("tee: enclave crashed");
  }
  stats_.ecalls.fetch_add(1, std::memory_order_relaxed);
  TeeMetrics::Get().ecalls->Increment();
  ChargeTransition();                          // EENTER
  ChargeCopy(input.size(), semantics, /*inbound=*/true);
  CONFIDE_RETURN_NOT_OK(epc_.Touch(heap));     // working set fault-in

  EnclaveContext ctx(this, id);
  Result<Bytes> result = code->HandleEcall(fn, input, &ctx);

  if (result.ok()) {
    ChargeCopy(result.value().size(), semantics, /*inbound=*/false);
  }
  ChargeTransition();                          // EEXIT
  return result;
}

void EnclavePlatform::RegisterOcall(uint64_t fn, OcallHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  ocalls_[fn] = std::move(handler);
}

Result<Bytes> EnclavePlatform::DispatchOcall(uint64_t fn, ByteView payload,
                                             PointerSemantics semantics) {
  OcallHandler handler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = ocalls_.find(fn);
    if (it == ocalls_.end()) {
      // Monitor ocall (fn 0) may be unregistered; treat as a sink.
      if (fn == 0) {
        handler = [](ByteView) -> Result<Bytes> { return Bytes{}; };
      } else {
        return Status::NotFound("no handler for ocall " + std::to_string(fn));
      }
    } else {
      handler = it->second;
    }
  }
  stats_.ocalls.fetch_add(1, std::memory_order_relaxed);
  TeeMetrics::Get().ocalls->Increment();
  ChargeTransition();                          // exit to host
  ChargeCopy(payload.size(), semantics, /*inbound=*/false);
  Result<Bytes> result = handler(payload);
  if (result.ok()) {
    ChargeCopy(result.value().size(), semantics, /*inbound=*/true);
  }
  ChargeTransition();                          // re-enter enclave
  return result;
}

crypto::Hash256 EnclavePlatform::LocalReportMac(const Measurement& mrenclave,
                                                uint64_t svn,
                                                ByteView user_data) const {
  uint8_t svn_bytes[8];
  StoreBe64(svn_bytes, svn);
  Bytes body = Concat(crypto::HashView(mrenclave), ByteView(svn_bytes, 8), user_data);
  return crypto::HmacSha256(crypto::HashView(local_report_key_), body);
}

bool EnclavePlatform::VerifyLocalReport(const LocalReport& report) const {
  crypto::Hash256 expected = LocalReportMac(report.mrenclave,
                                            report.security_version,
                                            report.user_data);
  return ConstantTimeEqual(crypto::HashView(expected), crypto::HashView(report.mac));
}

Result<Measurement> EnclavePlatform::GetMeasurement(EnclaveId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = enclaves_.find(id);
  if (it == enclaves_.end()) return Status::NotFound("unknown enclave");
  return it->second.measurement;
}

std::vector<MonitorRecord> EnclavePlatform::DrainMonitor() {
  std::vector<MonitorRecord> records;
  while (auto record = monitor_ring_.Pop()) {
    records.push_back(*record);
  }
  return records;
}

}  // namespace confide::tee
