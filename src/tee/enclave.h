/// \file enclave.h
/// \brief The simulated SGX platform: enclave lifecycle, ecall/ocall
/// boundary with marshalling semantics, attestation, sealing, monitoring.
///
/// Enclave *code* is a C++ object implementing the Enclave interface; the
/// platform mediates every crossing so transition and copy costs are
/// charged exactly where hardware would pay them (see cost_model.h).

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/bytes.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "crypto/secp256k1.h"
#include "storage/kv_store.h"
#include "tee/attestation.h"
#include "tee/cost_model.h"
#include "tee/epc.h"
#include "tee/ring_buffer.h"

namespace confide::tee {

class EnclavePlatform;
class EnclaveContext;

/// \brief Enclave handle.
using EnclaveId = uint64_t;

/// \brief EDL-style pointer marshalling semantics for a boundary crossing.
enum class PointerSemantics {
  kCopyInOut,   ///< Edger8r [in]/[out]: buffers copied + range checked
  kUserCheck,   ///< `user_check`: no copy, caller owns memory safety
};

/// \brief Interface implemented by enclave code (KM enclave, CS enclave).
class Enclave {
 public:
  virtual ~Enclave() = default;

  /// \brief Identity string measured at load (stand-in for page hashing).
  virtual std::string CodeIdentity() const = 0;

  /// \brief Security version (SVN) included in the measurement and AAD.
  virtual uint64_t SecurityVersion() const { return 1; }

  /// \brief Handles one ecall. `ctx` is valid only for the duration of the
  /// call; the return buffer is marshalled back to the host.
  virtual Result<Bytes> HandleEcall(uint64_t fn, ByteView input,
                                    EnclaveContext* ctx) = 0;
};

/// \brief Ocall handler registered by the untrusted host.
using OcallHandler = std::function<Result<Bytes>(ByteView payload)>;

/// \brief Per-call view of platform services available to enclave code.
class EnclaveContext {
 public:
  /// \brief Calls out to the untrusted host. Charges transition + copy
  /// costs according to `semantics`.
  Result<Bytes> Ocall(uint64_t fn, ByteView payload,
                      PointerSemantics semantics = PointerSemantics::kCopyInOut);

  /// \brief One ocall carrying `entries` logical operations in its payload
  /// (the SDM's batched state flush/prefetch). Charged like a single
  /// crossing — that is the point — but the platform books the entries and
  /// the 2*(entries-1) transitions the batching avoided, so benches can
  /// report before/after crossing counts.
  Result<Bytes> OcallBatched(
      uint64_t fn, ByteView payload, uint64_t entries,
      PointerSemantics semantics = PointerSemantics::kCopyInOut);

  /// \brief This enclave's measurement.
  Measurement Self() const;

  /// \brief This enclave's security version.
  uint64_t SecurityVersion() const;

  /// \brief Creates a local-attestation report (same-platform verifiable).
  LocalReport CreateLocalReport(ByteView user_data) const;

  /// \brief Verifies a local report produced on this platform (EREPORT
  /// target verification — how the KM enclave authenticates the CS
  /// enclave before provisioning keys over the local channel).
  bool VerifyLocalReport(const LocalReport& report) const;

  /// \brief Creates a remote-attestation quote signed by the platform's
  /// certified attestation key.
  Quote CreateQuote(ByteView user_data) const;

  /// \brief Derives a sealing key bound to this enclave's measurement.
  crypto::Hash256 SealKey(std::string_view label) const;

  /// \brief Increments this enclave's trusted monotonic counter `family`
  /// and returns the new value (see EnclavePlatform::CounterIncrement).
  Result<uint64_t> CounterIncrement(std::string_view family);

  /// \brief Reads this enclave's trusted monotonic counter `family`.
  Result<uint64_t> CounterRead(std::string_view family);

  /// \brief Emits a monitor record through the exit-less ring (cheap).
  void MonitorEmit(uint32_t severity, std::string_view message);

  /// \brief Emits a monitor record via an ocall (expensive; kept for the
  /// ablation benchmark).
  void MonitorEmitViaOcall(uint32_t severity, std::string_view message);

  /// \brief EPC allocator for in-enclave memory. Allocations count against
  /// the platform-wide EPC budget.
  EpcManager* epc();

  EnclaveId enclave_id() const { return enclave_id_; }
  EnclavePlatform* platform() { return platform_; }

 private:
  friend class EnclavePlatform;
  EnclaveContext(EnclavePlatform* platform, EnclaveId id)
      : platform_(platform), enclave_id_(id) {}

  EnclavePlatform* platform_;
  EnclaveId enclave_id_;
};

/// \brief One simulated SGX-capable host. Owns the EPC, the attestation
/// key, the ocall table and the monitor ring.
class EnclavePlatform {
 public:
  /// \brief `platform_seed` derives the platform attestation/sealing keys
  /// deterministically; distinct seeds model distinct machines.
  EnclavePlatform(const TeeCostModel& model, SimClock* clock, uint64_t platform_seed);

  /// \brief Loads enclave code, measures it, reserves `heap_bytes` of EPC.
  Result<EnclaveId> CreateEnclave(std::shared_ptr<Enclave> code, uint64_t heap_bytes);

  /// \brief Destroys an enclave and releases its EPC (the paper destroys
  /// the KM enclave after provisioning to free memory, §5.3).
  Status DestroyEnclave(EnclaveId id);

  /// \brief Invokes fn inside the enclave, charging boundary costs.
  /// Fault site `fault.tee.enclave_crash`: when armed, the target enclave
  /// is killed before dispatch and the call returns Unavailable — the
  /// simulated equivalent of an AEX/processor fault tearing the enclave
  /// down mid-call.
  Result<Bytes> Ecall(EnclaveId id, uint64_t fn, ByteView input,
                      PointerSemantics semantics = PointerSemantics::kCopyInOut);

  /// \brief Kills an enclave as if it crashed: EPC is released, the id is
  /// remembered as crashed so later Ecalls report Unavailable (distinct
  /// from NotFound for never-existing ids). Records the injection under
  /// `fault.tee.enclave_crash`.
  Status KillEnclave(EnclaveId id);

  /// \brief True while `id` names a live (loaded, not crashed) enclave.
  bool IsAlive(EnclaveId id) const;

  /// \brief Registers the host-side handler for ocall `fn`.
  void RegisterOcall(uint64_t fn, OcallHandler handler);

  // --- Trusted monotonic counter service (state continuity, Memoir/
  // Ariadne lineage). Counters are keyed by enclave *measurement* and a
  // free-form family name, so a re-provisioned enclave running the same
  // code resumes its counters after KillEnclave/DestroyEnclave. Values
  // only ever grow; a process-lifetime high-water shadow (the simulated
  // NVRAM) survives platform re-construction under the same seed, so a
  // host that rolls back the durable counter store is *detected* rather
  // than silently obeyed.

  /// \brief Attaches a durable KvStore backing for the counters (keys
  /// `tmc/<measurement hex>/<family>`). Counters load lazily on first
  /// touch; a durable value behind the NVRAM high-water mark fails loads
  /// with StaleState (`tee.counter.rollback_detected.count`). Without a
  /// store, counters persist only via the NVRAM shadow.
  void AttachCounterStore(std::shared_ptr<storage::KvStore> store);

  /// \brief Atomically increments counter `family` of enclave `id` and
  /// returns the *new* value. The durable write lands before the value is
  /// exposed (increment-then-seal): if persistence fails — fault site
  /// `fault.tee.counter.persist` — the in-memory value is unchanged and
  /// the call returns Unavailable. Fault site `fault.tee.counter.rollback`
  /// presents a rolled-back durable value at load, which the high-water
  /// check converts into StaleState.
  Result<uint64_t> CounterIncrement(EnclaveId id, std::string_view family);

  /// \brief Reads counter `family` of enclave `id` without incrementing.
  Result<uint64_t> CounterRead(EnclaveId id, std::string_view family);

  /// \brief Verifies a local report produced on this platform.
  bool VerifyLocalReport(const LocalReport& report) const;

  /// \brief Returns an enclave's measurement.
  Result<Measurement> GetMeasurement(EnclaveId id) const;

  /// \brief Drains pending monitor records (host polling thread).
  std::vector<MonitorRecord> DrainMonitor();

  uint64_t platform_id() const { return platform_id_; }
  TeeStats& stats() { return stats_; }
  SimClock* clock() { return clock_; }
  EpcManager* epc() { return &epc_; }
  const TeeCostModel& cost_model() const { return model_; }

 private:
  friend class EnclaveContext;

  struct LoadedEnclave {
    std::shared_ptr<Enclave> code;
    Measurement measurement;
    EpcRegionId heap_region = 0;
    uint64_t security_version = 1;
  };

  void ChargeTransition();
  void ChargeCopy(size_t bytes, PointerSemantics semantics, bool inbound);
  Result<Bytes> DispatchOcall(uint64_t fn, ByteView payload, PointerSemantics semantics);
  crypto::Hash256 LocalReportMac(const Measurement& mrenclave, uint64_t svn,
                                 ByteView user_data) const;

  TeeCostModel model_;
  SimClock* clock_;
  TeeStats stats_;
  EpcManager epc_;
  uint64_t platform_id_;

  crypto::KeyPair attestation_key_;
  crypto::Signature attestation_cert_;
  crypto::Hash256 local_report_key_;  // platform-secret MAC key
  crypto::Hash256 seal_root_key_;     // platform-secret sealing root

  /// \brief Tears down one enclave under `mutex_` (shared by
  /// DestroyEnclave and KillEnclave).
  Status RemoveEnclaveLocked(EnclaveId id, bool crashed);

  /// \brief `tmc/<measurement hex>/<family>` for enclave `id`; requires a
  /// live enclave. Called under `mutex_`.
  Result<std::string> CounterKeyLocked(EnclaveId id, std::string_view family) const;

  /// \brief Resolves the current value of the counter at `key`, pulling it
  /// from the durable store (verified against the NVRAM high-water mark)
  /// or the shadow on first touch. Called under `mutex_`.
  Result<uint64_t> LoadCounterLocked(const std::string& key);

  mutable std::mutex mutex_;
  std::unordered_map<EnclaveId, LoadedEnclave> enclaves_;
  std::unordered_set<EnclaveId> crashed_;
  std::shared_ptr<storage::KvStore> counter_store_;
  std::map<std::string, uint64_t> counters_;  ///< loaded counter values
  /// An injected counter-persist failure fired and no increment has
  /// landed durably since (the next durable increment is the recovery).
  bool counter_persist_pending_ = false;
  std::unordered_map<uint64_t, OcallHandler> ocalls_;
  EnclaveId next_enclave_id_ = 1;
  std::atomic<uint64_t> monitor_sequence_{0};

  MonitorRing<1024> monitor_ring_;
};

}  // namespace confide::tee
