/// \file enclave.h
/// \brief The simulated SGX platform: enclave lifecycle, ecall/ocall
/// boundary with marshalling semantics, attestation, sealing, monitoring.
///
/// Enclave *code* is a C++ object implementing the Enclave interface; the
/// platform mediates every crossing so transition and copy costs are
/// charged exactly where hardware would pay them (see cost_model.h).

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/bytes.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "crypto/secp256k1.h"
#include "tee/attestation.h"
#include "tee/cost_model.h"
#include "tee/epc.h"
#include "tee/ring_buffer.h"

namespace confide::tee {

class EnclavePlatform;
class EnclaveContext;

/// \brief Enclave handle.
using EnclaveId = uint64_t;

/// \brief EDL-style pointer marshalling semantics for a boundary crossing.
enum class PointerSemantics {
  kCopyInOut,   ///< Edger8r [in]/[out]: buffers copied + range checked
  kUserCheck,   ///< `user_check`: no copy, caller owns memory safety
};

/// \brief Interface implemented by enclave code (KM enclave, CS enclave).
class Enclave {
 public:
  virtual ~Enclave() = default;

  /// \brief Identity string measured at load (stand-in for page hashing).
  virtual std::string CodeIdentity() const = 0;

  /// \brief Security version (SVN) included in the measurement and AAD.
  virtual uint64_t SecurityVersion() const { return 1; }

  /// \brief Handles one ecall. `ctx` is valid only for the duration of the
  /// call; the return buffer is marshalled back to the host.
  virtual Result<Bytes> HandleEcall(uint64_t fn, ByteView input,
                                    EnclaveContext* ctx) = 0;
};

/// \brief Ocall handler registered by the untrusted host.
using OcallHandler = std::function<Result<Bytes>(ByteView payload)>;

/// \brief Per-call view of platform services available to enclave code.
class EnclaveContext {
 public:
  /// \brief Calls out to the untrusted host. Charges transition + copy
  /// costs according to `semantics`.
  Result<Bytes> Ocall(uint64_t fn, ByteView payload,
                      PointerSemantics semantics = PointerSemantics::kCopyInOut);

  /// \brief One ocall carrying `entries` logical operations in its payload
  /// (the SDM's batched state flush/prefetch). Charged like a single
  /// crossing — that is the point — but the platform books the entries and
  /// the 2*(entries-1) transitions the batching avoided, so benches can
  /// report before/after crossing counts.
  Result<Bytes> OcallBatched(
      uint64_t fn, ByteView payload, uint64_t entries,
      PointerSemantics semantics = PointerSemantics::kCopyInOut);

  /// \brief This enclave's measurement.
  Measurement Self() const;

  /// \brief This enclave's security version.
  uint64_t SecurityVersion() const;

  /// \brief Creates a local-attestation report (same-platform verifiable).
  LocalReport CreateLocalReport(ByteView user_data) const;

  /// \brief Verifies a local report produced on this platform (EREPORT
  /// target verification — how the KM enclave authenticates the CS
  /// enclave before provisioning keys over the local channel).
  bool VerifyLocalReport(const LocalReport& report) const;

  /// \brief Creates a remote-attestation quote signed by the platform's
  /// certified attestation key.
  Quote CreateQuote(ByteView user_data) const;

  /// \brief Derives a sealing key bound to this enclave's measurement.
  crypto::Hash256 SealKey(std::string_view label) const;

  /// \brief Emits a monitor record through the exit-less ring (cheap).
  void MonitorEmit(uint32_t severity, std::string_view message);

  /// \brief Emits a monitor record via an ocall (expensive; kept for the
  /// ablation benchmark).
  void MonitorEmitViaOcall(uint32_t severity, std::string_view message);

  /// \brief EPC allocator for in-enclave memory. Allocations count against
  /// the platform-wide EPC budget.
  EpcManager* epc();

  EnclaveId enclave_id() const { return enclave_id_; }
  EnclavePlatform* platform() { return platform_; }

 private:
  friend class EnclavePlatform;
  EnclaveContext(EnclavePlatform* platform, EnclaveId id)
      : platform_(platform), enclave_id_(id) {}

  EnclavePlatform* platform_;
  EnclaveId enclave_id_;
};

/// \brief One simulated SGX-capable host. Owns the EPC, the attestation
/// key, the ocall table and the monitor ring.
class EnclavePlatform {
 public:
  /// \brief `platform_seed` derives the platform attestation/sealing keys
  /// deterministically; distinct seeds model distinct machines.
  EnclavePlatform(const TeeCostModel& model, SimClock* clock, uint64_t platform_seed);

  /// \brief Loads enclave code, measures it, reserves `heap_bytes` of EPC.
  Result<EnclaveId> CreateEnclave(std::shared_ptr<Enclave> code, uint64_t heap_bytes);

  /// \brief Destroys an enclave and releases its EPC (the paper destroys
  /// the KM enclave after provisioning to free memory, §5.3).
  Status DestroyEnclave(EnclaveId id);

  /// \brief Invokes fn inside the enclave, charging boundary costs.
  /// Fault site `fault.tee.enclave_crash`: when armed, the target enclave
  /// is killed before dispatch and the call returns Unavailable — the
  /// simulated equivalent of an AEX/processor fault tearing the enclave
  /// down mid-call.
  Result<Bytes> Ecall(EnclaveId id, uint64_t fn, ByteView input,
                      PointerSemantics semantics = PointerSemantics::kCopyInOut);

  /// \brief Kills an enclave as if it crashed: EPC is released, the id is
  /// remembered as crashed so later Ecalls report Unavailable (distinct
  /// from NotFound for never-existing ids). Records the injection under
  /// `fault.tee.enclave_crash`.
  Status KillEnclave(EnclaveId id);

  /// \brief True while `id` names a live (loaded, not crashed) enclave.
  bool IsAlive(EnclaveId id) const;

  /// \brief Registers the host-side handler for ocall `fn`.
  void RegisterOcall(uint64_t fn, OcallHandler handler);

  /// \brief Verifies a local report produced on this platform.
  bool VerifyLocalReport(const LocalReport& report) const;

  /// \brief Returns an enclave's measurement.
  Result<Measurement> GetMeasurement(EnclaveId id) const;

  /// \brief Drains pending monitor records (host polling thread).
  std::vector<MonitorRecord> DrainMonitor();

  uint64_t platform_id() const { return platform_id_; }
  TeeStats& stats() { return stats_; }
  SimClock* clock() { return clock_; }
  EpcManager* epc() { return &epc_; }
  const TeeCostModel& cost_model() const { return model_; }

 private:
  friend class EnclaveContext;

  struct LoadedEnclave {
    std::shared_ptr<Enclave> code;
    Measurement measurement;
    EpcRegionId heap_region = 0;
    uint64_t security_version = 1;
  };

  void ChargeTransition();
  void ChargeCopy(size_t bytes, PointerSemantics semantics, bool inbound);
  Result<Bytes> DispatchOcall(uint64_t fn, ByteView payload, PointerSemantics semantics);
  crypto::Hash256 LocalReportMac(const Measurement& mrenclave, uint64_t svn,
                                 ByteView user_data) const;

  TeeCostModel model_;
  SimClock* clock_;
  TeeStats stats_;
  EpcManager epc_;
  uint64_t platform_id_;

  crypto::KeyPair attestation_key_;
  crypto::Signature attestation_cert_;
  crypto::Hash256 local_report_key_;  // platform-secret MAC key
  crypto::Hash256 seal_root_key_;     // platform-secret sealing root

  /// \brief Tears down one enclave under `mutex_` (shared by
  /// DestroyEnclave and KillEnclave).
  Status RemoveEnclaveLocked(EnclaveId id, bool crashed);

  mutable std::mutex mutex_;
  std::unordered_map<EnclaveId, LoadedEnclave> enclaves_;
  std::unordered_set<EnclaveId> crashed_;
  std::unordered_map<uint64_t, OcallHandler> ocalls_;
  EnclaveId next_enclave_id_ = 1;
  std::atomic<uint64_t> monitor_sequence_{0};

  MonitorRing<1024> monitor_ring_;
};

}  // namespace confide::tee
