#include "tee/attestation.h"

#include "common/endian.h"
#include "crypto/drbg.h"

namespace confide::tee {

Measurement MeasureEnclave(std::string_view code_identity, uint64_t security_version) {
  crypto::Sha256 ctx;
  ctx.Update(AsByteView("confide-enclave-measurement:"));
  ctx.Update(AsByteView(code_identity));
  uint8_t ver[8];
  StoreBe64(ver, security_version);
  ctx.Update(ByteView(ver, 8));
  return ctx.Finish();
}

namespace {

const crypto::KeyPair& RootKeyPair() {
  static const crypto::KeyPair kp = [] {
    crypto::Drbg rng(AsByteView("confide-simulated-hardware-root-of-trust"));
    return crypto::GenerateKeyPair(&rng);
  }();
  return kp;
}

}  // namespace

const crypto::PublicKey& AttestationRoot::RootPublicKey() {
  return RootKeyPair().pub;
}

crypto::Signature AttestationRoot::CertifyPlatformKey(
    const crypto::PublicKey& platform_key) {
  crypto::Sha256 ctx;
  ctx.Update(AsByteView("confide-platform-cert:"));
  ctx.Update(ByteView(platform_key.data(), platform_key.size()));
  auto sig = crypto::EcdsaSign(RootKeyPair().priv, ctx.Finish());
  return *sig;  // root key is always valid
}

bool AttestationRoot::VerifyPlatformCert(const crypto::PublicKey& platform_key,
                                         const crypto::Signature& cert) {
  crypto::Sha256 ctx;
  ctx.Update(AsByteView("confide-platform-cert:"));
  ctx.Update(ByteView(platform_key.data(), platform_key.size()));
  return crypto::EcdsaVerify(RootKeyPair().pub, ctx.Finish(), cert);
}

Bytes QuoteSigningBody(const Quote& quote) {
  Bytes body;
  Append(&body, AsByteView("confide-quote:"));
  Append(&body, crypto::HashView(quote.mrenclave));
  uint8_t nums[16];
  StoreBe64(nums, quote.security_version);
  StoreBe64(nums + 8, quote.platform_id);
  Append(&body, ByteView(nums, 16));
  Append(&body, quote.user_data);
  return body;
}

bool VerifyQuote(const Quote& quote) {
  if (!AttestationRoot::VerifyPlatformCert(quote.platform_key, quote.platform_cert)) {
    return false;
  }
  crypto::Hash256 digest = crypto::Sha256::Digest(QuoteSigningBody(quote));
  return crypto::EcdsaVerify(quote.platform_key, digest, quote.signature);
}

}  // namespace confide::tee
