/// \file ring_buffer.h
/// \brief Lock-free SPSC ring buffer for the exit-less monitor channel.
///
/// Paper §5.3 "improved enclave's monitor system": status records are
/// one-way streams out of the enclave; pushing them through ocalls would
/// pay a full enclave transition per record, so CONFIDE writes them into a
/// lock-free ring buffer in untrusted memory that a host polling thread
/// drains asynchronously (an exit-less call in the style of Eleos).

#pragma once

#include <array>
#include <atomic>
#include <cstring>
#include <optional>
#include <string>

namespace confide::tee {

/// \brief Fixed-size monitor record. Contents carry only error/status
/// text, never application data (paper's confidentiality constraint).
struct MonitorRecord {
  uint64_t sequence = 0;
  uint64_t enclave_id = 0;
  uint32_t severity = 0;
  char message[104] = {0};

  void SetMessage(std::string_view text) {
    size_t n = std::min(text.size(), sizeof(message) - 1);
    std::memcpy(message, text.data(), n);
    message[n] = '\0';
  }
};

/// \brief Single-producer single-consumer lock-free ring of MonitorRecords.
///
/// The producer (enclave) never blocks: when the ring is full the record
/// is dropped and a drop counter incremented — monitoring must not stall
/// transaction execution.
template <size_t Capacity>
class MonitorRing {
  static_assert((Capacity & (Capacity - 1)) == 0, "capacity must be a power of two");

 public:
  /// \brief Producer side. Returns false if the ring was full (dropped).
  bool Push(const MonitorRecord& record) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= Capacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[head & (Capacity - 1)] = record;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// \brief Consumer side. Empty optional when no records are pending.
  std::optional<MonitorRecord> Pop() {
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return std::nullopt;
    MonitorRecord record = slots_[tail & (Capacity - 1)];
    tail_.store(tail + 1, std::memory_order_release);
    return record;
  }

  uint64_t Dropped() const { return dropped_.load(std::memory_order_relaxed); }
  size_t Size() const {
    return size_t(head_.load(std::memory_order_acquire) -
                  tail_.load(std::memory_order_acquire));
  }

 private:
  std::array<MonitorRecord, Capacity> slots_{};
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) std::atomic<uint64_t> tail_{0};
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace confide::tee
