/// \file attestation.h
/// \brief Simulated SGX attestation: measurements, local reports, quotes.
///
/// Substitution note (see DESIGN.md): Intel's EPID/DCAP infrastructure is
/// replaced by an ECDSA chain with the same interface guarantees —
///   * a *measurement* binds the report to the enclave's code identity,
///   * a *local report* is MACed with a per-platform key only enclaves on
///     that platform can derive (local attestation, §5.1),
///   * a *quote* is signed by a per-platform attestation key that is in
///     turn certified by a simulated hardware root of trust (remote
///     attestation, used by K-Protocol's MAP §3.2.2).
/// The paper's protocols only require "unforgeable statement that code
/// with measurement M runs with data D"; this chain provides exactly that.

#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/secp256k1.h"
#include "crypto/sha256.h"

namespace confide::tee {

/// \brief Enclave code measurement (MRENCLAVE analogue).
using Measurement = crypto::Hash256;

/// \brief Computes the measurement of an enclave code identity string
/// (stand-in for hashing the loaded pages + configuration).
Measurement MeasureEnclave(std::string_view code_identity, uint64_t security_version);

/// \brief Local-attestation report, verifiable only on the same platform.
struct LocalReport {
  Measurement mrenclave{};
  uint64_t security_version = 0;
  Bytes user_data;
  crypto::Hash256 mac{};
};

/// \brief Remote-attestation quote, verifiable anywhere against the
/// simulated hardware root.
struct Quote {
  Measurement mrenclave{};
  uint64_t security_version = 0;
  uint64_t platform_id = 0;
  Bytes user_data;
  crypto::PublicKey platform_key{};   ///< per-platform attestation key
  crypto::Signature platform_cert{};  ///< root's signature over platform_key
  crypto::Signature signature{};      ///< platform_key's signature over body
};

/// \brief The simulated hardware root of trust (stands in for Intel's
/// attestation service). A process-wide deterministic key pair.
class AttestationRoot {
 public:
  /// \brief The root verification key every verifier trusts.
  static const crypto::PublicKey& RootPublicKey();

  /// \brief Certifies a platform attestation key (provisioning).
  static crypto::Signature CertifyPlatformKey(const crypto::PublicKey& platform_key);

  /// \brief Checks a platform certificate against the root key.
  static bool VerifyPlatformCert(const crypto::PublicKey& platform_key,
                                 const crypto::Signature& cert);
};

/// \brief Serializes the signed portion of a quote.
Bytes QuoteSigningBody(const Quote& quote);

/// \brief Full quote verification: certificate chain + quote signature.
/// Callers must still compare `mrenclave`/`user_data` against expectations.
bool VerifyQuote(const Quote& quote);

}  // namespace confide::tee
