/// \file cost_model.h
/// \brief Cycle-cost model for the simulated SGX platform.
///
/// CONFIDE's measured TEE overheads (paper §5.3, §6.1) come from three
/// mechanisms. Each is charged against a SimClock on exactly the events
/// where hardware would pay it:
///
///  * Enclave transitions: 8,314 cycles (warm) to 14,160 cycles (cache
///    miss) per ecall/ocall crossing, per HotCalls [Weisse et al. 2017],
///    which the paper cites directly.
///  * Boundary marshalling: the Edger8r-generated bridges copy [in]/[out]
///    buffers across the boundary; `user_check` skips the copy (§5.3
///    "optimized data structure").
///  * EPC paging: SGX v1 exposes ~93.5 MB of usable EPC; overflow pages
///    are encrypted and evicted to untrusted memory, then decrypted and
///    reloaded on touch (§5.3 "efficient memory management").

#pragma once

#include <atomic>
#include <cstdint>

namespace confide::tee {

/// \brief Tunable cost constants. Defaults reproduce the paper's cited
/// numbers on the 3.7 GHz testbed.
struct TeeCostModel {
  /// Transition cost with warm caches (cycles).
  uint64_t transition_cycles_warm = 8314;
  /// Transition cost with cold caches (cycles).
  uint64_t transition_cycles_cold = 14160;
  /// Every Nth transition is charged at the cold rate (deterministic
  /// stand-in for cache behaviour; N=5 gives the ~20% miss mix typical of
  /// the HotCalls measurements).
  uint64_t cold_transition_period = 5;
  /// Marshalling cost per byte copied across the boundary (cycles). The
  /// Edger8r bridge copies and range-checks each buffer.
  double copy_cycles_per_byte = 0.5;
  /// Fixed bridge overhead per marshalled pointer (cycles).
  uint64_t copy_setup_cycles = 200;
  /// Cost to encrypt-and-evict one EPC page (cycles).
  uint64_t page_evict_cycles = 12000;
  /// Cost to reload-and-decrypt one evicted page (cycles).
  uint64_t page_load_cycles = 12000;
  /// Usable EPC bytes (93.5 MB of the 128 MB region, per SCONE/Eleos).
  uint64_t epc_usable_bytes = 98041856;  // 93.5 * 1024 * 1024
  /// EPC page size.
  uint64_t page_size = 4096;
};

/// \brief Counters accumulated by the platform. All monotonically
/// increasing; thread-safe.
struct TeeStats {
  std::atomic<uint64_t> ecalls{0};
  std::atomic<uint64_t> ocalls{0};
  std::atomic<uint64_t> transitions{0};
  std::atomic<uint64_t> bytes_copied_in{0};
  std::atomic<uint64_t> bytes_copied_out{0};
  std::atomic<uint64_t> user_check_bypasses{0};
  /// Bytes that crossed the boundary as `user_check` views — accounted but
  /// not copied (no marshalling cycles charged).
  std::atomic<uint64_t> bytes_viewed{0};
  std::atomic<uint64_t> pages_evicted{0};
  std::atomic<uint64_t> pages_loaded{0};
  std::atomic<uint64_t> modeled_cycles{0};
  /// Logical state operations carried by batched ocalls (one batched ocall
  /// with N entries counts N here but only 1 under `ocalls`).
  std::atomic<uint64_t> batched_ocall_entries{0};
  /// Transitions avoided by batching: 2*(entries-1) per batched ocall.
  std::atomic<uint64_t> transitions_saved{0};

  void Reset() {
    ecalls = 0;
    ocalls = 0;
    transitions = 0;
    bytes_copied_in = 0;
    bytes_copied_out = 0;
    user_check_bypasses = 0;
    bytes_viewed = 0;
    pages_evicted = 0;
    pages_loaded = 0;
    modeled_cycles = 0;
    batched_ocall_entries = 0;
    transitions_saved = 0;
  }
};

}  // namespace confide::tee
