/// \file epc.h
/// \brief Enclave Page Cache simulator.
///
/// Models the SGX v1 physical-memory ceiling: allocations beyond the
/// usable EPC trigger page eviction (encrypt + store outside) and later
/// reloads, the dominant cost the paper's "efficient memory management"
/// optimizations avoid (§5.3).

#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "common/sim_clock.h"
#include "common/status.h"
#include "tee/cost_model.h"

namespace confide::tee {

/// \brief Opaque id for an EPC region.
using EpcRegionId = uint64_t;

/// \brief Platform-wide EPC manager shared by all enclaves on one host.
///
/// Regions are allocated in whole pages and tracked in an LRU; when
/// resident pages exceed the EPC budget the least-recently-used regions'
/// pages are evicted, charging eviction cycles, and touching an evicted
/// region charges reload cycles. Thread-safe.
class EpcManager {
 public:
  EpcManager(const TeeCostModel& model, SimClock* clock, TeeStats* stats)
      : model_(model), clock_(clock), stats_(stats) {}

  /// \brief Allocates a region of `bytes` (rounded up to pages); may evict
  /// other regions to make room. Fails if the request alone exceeds EPC.
  Result<EpcRegionId> Allocate(uint64_t bytes);

  /// \brief Releases a region.
  Status Free(EpcRegionId id);

  /// \brief Marks a region accessed; reloads it (with cost) if evicted.
  Status Touch(EpcRegionId id);

  /// \brief Currently resident bytes.
  uint64_t ResidentBytes() const;

  /// \brief Total bytes of live (resident or evicted) regions.
  uint64_t AllocatedBytes() const;

 private:
  struct Region {
    uint64_t pages = 0;
    bool resident = false;
    std::list<EpcRegionId>::iterator lru_pos;  // valid only when resident
  };

  // Evicts LRU regions until `needed_pages` fit. Caller holds mutex_.
  Status EvictForLocked(uint64_t needed_pages);
  void ChargeCycles(uint64_t cycles);

  TeeCostModel model_;
  SimClock* clock_;
  TeeStats* stats_;

  mutable std::mutex mutex_;
  std::unordered_map<EpcRegionId, Region> regions_;
  std::list<EpcRegionId> lru_;  // front = most recent
  uint64_t resident_pages_ = 0;
  uint64_t total_pages_ = 0;
  EpcRegionId next_id_ = 1;
};

}  // namespace confide::tee
