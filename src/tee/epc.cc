#include "tee/epc.h"

#include "common/metrics.h"

namespace confide::tee {

namespace {

struct EpcMetrics {
  metrics::Counter* pages_evicted = metrics::GetCounter("tee.epc.page_evict.count");
  metrics::Counter* pages_loaded = metrics::GetCounter("tee.epc.page_load.count");
  /// Bytes run through the paging crypto (evictions encrypt, loads decrypt).
  metrics::Counter* crypto_bytes = metrics::GetCounter("tee.epc.crypto.bytes");
  metrics::Counter* paging_cycles = metrics::GetCounter("tee.epc.paging.cycles");

  static const EpcMetrics& Get() {
    static const EpcMetrics instruments;
    return instruments;
  }
};

}  // namespace

void EpcManager::ChargeCycles(uint64_t cycles) {
  clock_->AdvanceCycles(cycles);
  stats_->modeled_cycles.fetch_add(cycles, std::memory_order_relaxed);
}

Status EpcManager::EvictForLocked(uint64_t needed_pages) {
  const uint64_t budget_pages = model_.epc_usable_bytes / model_.page_size;
  if (needed_pages > budget_pages) {
    return Status::ResourceExhausted("EPC request exceeds total EPC size");
  }
  while (resident_pages_ + needed_pages > budget_pages) {
    if (lru_.empty()) {
      return Status::ResourceExhausted("EPC exhausted with nothing evictable");
    }
    EpcRegionId victim = lru_.back();
    lru_.pop_back();
    Region& region = regions_[victim];
    region.resident = false;
    resident_pages_ -= region.pages;
    stats_->pages_evicted.fetch_add(region.pages, std::memory_order_relaxed);
    EpcMetrics::Get().pages_evicted->Increment(region.pages);
    EpcMetrics::Get().crypto_bytes->Increment(region.pages * model_.page_size);
    EpcMetrics::Get().paging_cycles->Increment(region.pages * model_.page_evict_cycles);
    ChargeCycles(region.pages * model_.page_evict_cycles);
  }
  return Status::OK();
}

Result<EpcRegionId> EpcManager::Allocate(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t pages = (bytes + model_.page_size - 1) / model_.page_size;
  if (pages == 0) pages = 1;
  CONFIDE_RETURN_NOT_OK(EvictForLocked(pages));

  EpcRegionId id = next_id_++;
  Region region;
  region.pages = pages;
  region.resident = true;
  lru_.push_front(id);
  region.lru_pos = lru_.begin();
  regions_[id] = region;
  resident_pages_ += pages;
  total_pages_ += pages;
  return id;
}

Status EpcManager::Free(EpcRegionId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = regions_.find(id);
  if (it == regions_.end()) {
    return Status::NotFound("unknown EPC region");
  }
  if (it->second.resident) {
    lru_.erase(it->second.lru_pos);
    resident_pages_ -= it->second.pages;
  }
  total_pages_ -= it->second.pages;
  regions_.erase(it);
  return Status::OK();
}

Status EpcManager::Touch(EpcRegionId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = regions_.find(id);
  if (it == regions_.end()) {
    return Status::NotFound("unknown EPC region");
  }
  Region& region = it->second;
  if (region.resident) {
    // Refresh LRU position.
    lru_.erase(region.lru_pos);
    lru_.push_front(id);
    region.lru_pos = lru_.begin();
    return Status::OK();
  }
  // Page the region back in, evicting others if needed.
  CONFIDE_RETURN_NOT_OK(EvictForLocked(region.pages));
  region.resident = true;
  lru_.push_front(id);
  region.lru_pos = lru_.begin();
  resident_pages_ += region.pages;
  stats_->pages_loaded.fetch_add(region.pages, std::memory_order_relaxed);
  EpcMetrics::Get().pages_loaded->Increment(region.pages);
  EpcMetrics::Get().crypto_bytes->Increment(region.pages * model_.page_size);
  EpcMetrics::Get().paging_cycles->Increment(region.pages * model_.page_load_cycles);
  ChargeCycles(region.pages * model_.page_load_cycles);
  return Status::OK();
}

uint64_t EpcManager::ResidentBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_pages_ * model_.page_size;
}

uint64_t EpcManager::AllocatedBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_pages_ * model_.page_size;
}

}  // namespace confide::tee
