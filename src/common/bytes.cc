#include "common/bytes.h"

namespace confide {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string HexEncode(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

Result<Bytes> HexDecode(std::string_view hex) {
  if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X')) {
    hex.remove_prefix(2);
  }
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in input");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool ConstantTimeEqual(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

void SecureZero(uint8_t* data, size_t len) {
  volatile uint8_t* p = data;
  for (size_t i = 0; i < len; ++i) p[i] = 0;
}

}  // namespace confide
