/// \file metrics.h
/// \brief Process-wide metrics registry: counters, gauges and fixed-bucket
/// latency histograms with a lock-free fast path.
///
/// The paper's entire evaluation (Table 1, Figs 10–12) decomposes where
/// cycles go — enclave transitions, state encrypt/decrypt, EPC paging,
/// consensus. This registry makes those quantities first-class: every
/// subsystem registers named instruments once (a mutex-guarded slow path)
/// and then updates them with relaxed std::atomic operations (the hot
/// path never takes a lock). A MetricsSnapshot captures a consistent-ish
/// point-in-time copy that tests assert on and benchmarks export as JSON
/// (`metrics.json` next to every bench result).
///
/// Naming convention (see DESIGN.md §Observability):
///   <subsystem>.<object>.<action>[.<unit>]
/// e.g. `tee.transition.count`, `storage.wal.sync.count`,
/// `confide.execute.latency_ns`. Counters are monotone; gauges are signed
/// levels; histograms carry their bucket upper bounds.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace confide::metrics {

/// \brief Monotone counter. All mutation is relaxed-atomic.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Signed level (pool sizes, resident bytes, cache entries).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket histogram. `bounds` are inclusive upper bounds of
/// each bucket; one extra overflow bucket catches everything above the
/// last bound. Observation is a binary search plus two relaxed adds.
class Histogram {
 public:
  explicit Histogram(std::vector<uint64_t> bounds);

  void Observe(uint64_t value);

  /// \brief Default bounds for nanosecond latencies: 1 µs … 10 s in a
  /// 1-2-5 ladder (22 buckets + overflow).
  static std::vector<uint64_t> DefaultLatencyBoundsNs();

  const std::vector<uint64_t>& bounds() const { return bounds_; }
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<uint64_t> bounds_;                       // sorted upper bounds
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;   // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// \brief Point-in-time copy of every registered instrument.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<uint64_t> bounds;
    std::vector<uint64_t> counts;  // bounds.size() + 1 (overflow last)
    uint64_t count = 0;
    uint64_t sum = 0;

    bool operator==(const HistogramData&) const = default;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  /// \brief Counter value, or 0 when absent (convenience for tests).
  uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }

  /// \brief Serializes to a stable, human-readable JSON document.
  std::string ToJson() const;

  /// \brief Parses ToJson() output back (bench tooling, round-trip tests).
  static Result<MetricsSnapshot> FromJson(std::string_view json);

  bool operator==(const MetricsSnapshot&) const = default;
};

/// \brief Thread-safe named registry. Registration takes a mutex;
/// returned pointers are stable for the registry's lifetime, so call
/// sites hoist them into static locals and pay only the atomic update.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// \brief The process-wide registry every subsystem instruments.
  static MetricsRegistry& Global();

  /// \brief Finds or creates. A name maps to one instrument kind; looking
  /// it up as another kind returns nullptr — callers own name hygiene.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// \brief `bounds` applies on first registration only (empty = default
  /// nanosecond-latency ladder).
  Histogram* GetHistogram(std::string_view name,
                          std::vector<uint64_t> bounds = {});

  /// \brief Copies every instrument's current value.
  MetricsSnapshot Snapshot() const;

  /// \brief Zeroes all instruments (tests and bench warm-up; instruments
  /// stay registered and pointers stay valid).
  void ResetAll();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// \brief Shorthands for the common "static local instrument" pattern:
///   metrics::GetCounter("tee.ecall.count")->Increment();
/// call sites wrap these in a static to skip the map lookup.
inline Counter* GetCounter(std::string_view name) {
  return MetricsRegistry::Global().GetCounter(name);
}
inline Gauge* GetGauge(std::string_view name) {
  return MetricsRegistry::Global().GetGauge(name);
}
inline Histogram* GetHistogram(std::string_view name,
                               std::vector<uint64_t> bounds = {}) {
  return MetricsRegistry::Global().GetHistogram(name, std::move(bounds));
}

/// \brief RAII timer observing wall nanoseconds into a histogram.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* histogram);
  ~ScopedLatencyTimer();
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* histogram_;
  uint64_t start_ns_;
};

}  // namespace confide::metrics
