#include "common/thread_pool.h"

#include <algorithm>

#include "common/metrics.h"

namespace confide {

namespace {

struct PoolMetrics {
  metrics::Counter* tasks = metrics::GetCounter("common.threadpool.task.count");
  metrics::Counter* steals = metrics::GetCounter("common.threadpool.steal.count");
  metrics::Counter* inline_runs =
      metrics::GetCounter("common.threadpool.inline_run.count");
  metrics::Gauge* workers = metrics::GetGauge("common.threadpool.workers");

  static const PoolMetrics& Get() {
    static const PoolMetrics instruments;
    return instruments;
  }
};

}  // namespace

ThreadPool::ThreadPool(uint32_t workers) {
  uint32_t n = std::max<uint32_t>(1, workers);
  queues_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) queues_.push_back(std::make_unique<WorkQueue>());
  workers_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  PoolMetrics::Get().workers->Add(int64_t(n));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  PoolMetrics::Get().workers->Add(-int64_t(workers_.size()));
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  size_t target = next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  PoolMetrics::Get().tasks->Increment();
  {
    // Publish under wake_mu_ so a worker cannot check pending_ and sleep
    // between our increment and the notify.
    std::lock_guard<std::mutex> lock(wake_mu_);
    pending_.fetch_add(1, std::memory_order_relaxed);
  }
  wake_cv_.notify_one();
  return future;
}

bool ThreadPool::TryRunOne(size_t self) {
  std::packaged_task<void()> task;
  {
    WorkQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.front());
      own.tasks.pop_front();
    }
  }
  if (!task.valid()) {
    for (size_t k = 1; k < queues_.size(); ++k) {
      WorkQueue& victim = *queues_[(self + k) % queues_.size()];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.back());
        victim.tasks.pop_back();
        PoolMetrics::Get().steals->Increment();
        break;
      }
    }
  }
  if (!task.valid()) return false;
  pending_.fetch_sub(1, std::memory_order_relaxed);
  task();  // exceptions land in the task's future
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  for (;;) {
    if (TryRunOne(self)) continue;
    std::unique_lock<std::mutex> lock(wake_mu_);
    if (pending_.load(std::memory_order_relaxed) > 0) continue;
    if (stopping_) return;  // queues drained; safe to exit
    wake_cv_.wait(lock, [this] {
      return stopping_ || pending_.load(std::memory_order_relaxed) > 0;
    });
  }
}

void ThreadPool::RunOnWorkers(uint32_t helpers, const std::function<void()>& fn) {
  struct HelpState {
    std::mutex mu;
    std::condition_variable cv;
    uint32_t started = 0;
    uint32_t finished = 0;
    bool closed = false;
    std::exception_ptr error;
  };
  auto help = std::make_shared<HelpState>();
  helpers = std::min<uint32_t>(helpers, worker_count());
  for (uint32_t i = 0; i < helpers; ++i) {
    (void)Submit([help, fn] {
      {
        std::lock_guard<std::mutex> lock(help->mu);
        if (help->closed) return;  // the work is already done; don't start
        ++help->started;
      }
      std::exception_ptr error;
      try {
        fn();
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(help->mu);
      if (error != nullptr && help->error == nullptr) help->error = error;
      ++help->finished;
      help->cv.notify_all();
    });
  }
  PoolMetrics::Get().inline_runs->Increment();
  std::exception_ptr inline_error;
  try {
    fn();  // inline run guarantees progress even on a saturated pool
  } catch (...) {
    inline_error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(help->mu);
  help->closed = true;
  help->cv.wait(lock, [&] { return help->started == help->finished; });
  std::exception_ptr helper_error = help->error;
  lock.unlock();
  if (inline_error != nullptr) std::rethrow_exception(inline_error);
  if (helper_error != nullptr) std::rethrow_exception(helper_error);
}

}  // namespace confide
