/// \file logging.h
/// \brief Minimal leveled logger. Off by default so tests stay quiet.

#pragma once

#include <cstdio>
#include <mutex>
#include <string>

namespace confide {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// \brief Global log threshold; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// \brief Writes one formatted line to stderr if `level` passes the threshold.
void LogMessage(LogLevel level, const char* module, const std::string& msg);

#define CONFIDE_LOG(level, module, msg) \
  ::confide::LogMessage(::confide::LogLevel::level, module, (msg))

}  // namespace confide
