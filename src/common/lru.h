/// \file lru.h
/// \brief Small intrusive-free LRU cache used to bound in-memory
/// memoization structures (the enclave pre-verification cache, the SDM
/// read-set profiles). Not thread-safe: callers hold their own lock.

#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <utility>

namespace confide {

/// \brief Fixed-capacity LRU map. `Put` evicts the least-recently-used
/// entry once `capacity` is exceeded; `Get` refreshes recency.
template <typename K, typename V>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  /// \brief Returns the value (and marks it most-recently-used), or
  /// nullptr when absent. The pointer stays valid until the next mutation.
  V* Get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// \brief Lookup without refreshing recency.
  const V* Peek(const K& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->second;
  }

  /// \brief Inserts or overwrites, evicting the LRU entry when full.
  void Put(const K& key, V value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    if (index_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  /// \brief Key of the least-recently-used entry, or nullptr when empty.
  /// Byte-budgeted callers (the storage row cache) walk the tail with
  /// this to evict until their external charge accounting fits.
  const K* OldestKey() const {
    return order_.empty() ? nullptr : &order_.back().first;
  }

  /// \brief Removes an entry; returns whether it existed.
  bool Erase(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  void Clear() {
    order_.clear();
    index_.clear();
  }

  size_t size() const { return index_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  std::list<std::pair<K, V>> order_;  // front = most recently used
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator> index_;
};

}  // namespace confide
