#include "common/logging.h"

#include <atomic>

namespace confide {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kOff)};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

void LogMessage(LogLevel level, const char* module, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s: %s\n", LevelName(level), module, msg.c_str());
}

}  // namespace confide
