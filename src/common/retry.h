/// \file retry.h
/// \brief Reusable jittered-exponential-backoff retry policy.
///
/// Every transient-failure loop in the system (enclave re-provisioning,
/// state-sync chunk fetches, provider failover) shares this policy
/// instead of hand-rolling its own backoff: attempts are capped, the
/// accumulated backoff can be bounded by a deadline, and the jitter draw
/// is a pure function of the seed so chaos runs replay bit-identically.
/// Backoff is charged to a SimClock when one is supplied (modelled time);
/// without a clock the policy sleeps for real.
///
/// Observability: `common.retry.attempts`, `common.retry.success.count`,
/// `common.retry.exhausted.count` and the `common.retry.backoff_ns`
/// histogram (see docs/METRICS.md).

#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "common/sim_clock.h"
#include "common/status.h"

namespace confide::common {

/// \brief Tuning knobs for one RetryPolicy instance.
struct RetryOptions {
  /// Total attempts including the first (so 1 = no retries).
  uint32_t max_attempts = 4;
  /// Backoff before the second attempt; grows by `multiplier` per retry.
  uint64_t base_backoff_ns = 1'000'000;
  double multiplier = 2.0;
  /// Per-delay cap after exponential growth; 0 = uncapped.
  uint64_t max_backoff_ns = 0;
  /// Additive jitter as a fraction of the nominal delay: the actual delay
  /// is `nominal * (1 + jitter * u)` with u drawn uniformly from [0, 1),
  /// so the delay never undershoots the nominal value.
  double jitter = 0.0;
  /// Total backoff budget across all retries; a retry whose delay would
  /// exceed it is not taken. 0 = unlimited.
  uint64_t deadline_ns = 0;
  /// Seeds the jitter PRNG; a fixed seed gives a fixed delay sequence.
  uint64_t seed = 1;
};

/// \brief Runs an operation until it succeeds, permanently fails, or the
/// attempt/deadline budget is exhausted.
class RetryPolicy {
 public:
  /// \brief Predicate deciding whether a non-OK status is worth retrying.
  using RetryPredicate = std::function<bool(const Status&)>;

  /// \brief `clock` receives the modelled backoff; nullptr = real sleep.
  explicit RetryPolicy(RetryOptions options, SimClock* clock = nullptr);

  /// \brief Delay to wait before attempt `attempt` (0-based; attempt 0 is
  /// free). Advances the jitter PRNG, so successive calls with the same
  /// attempt index draw fresh jitter.
  uint64_t BackoffNs(uint32_t attempt);

  /// \brief Runs `op` up to max_attempts times, backing off between
  /// attempts. Retries every non-OK status unless `retryable` says
  /// otherwise. `what` labels the loop in error messages. Returns the
  /// final status (OK, the non-retryable error, or the last error once
  /// the budget is exhausted).
  Status Run(std::string_view what, const std::function<Status()>& op,
             const RetryPredicate& retryable = RetryPredicate{});

  /// \brief Attempts consumed by the most recent Run().
  uint32_t LastAttempts() const { return last_attempts_; }

  /// \brief Total backoff charged by the most recent Run().
  uint64_t LastBackoffNs() const { return last_backoff_ns_; }

 private:
  void Wait(uint64_t delay_ns);

  RetryOptions options_;
  SimClock* clock_;
  uint64_t rng_state_;
  uint32_t last_attempts_ = 0;
  uint64_t last_backoff_ns_ = 0;
};

}  // namespace confide::common
