#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "common/metrics.h"

namespace confide::common {

namespace {

struct RetryMetrics {
  metrics::Counter* attempts = metrics::GetCounter("common.retry.attempts");
  metrics::Counter* success = metrics::GetCounter("common.retry.success.count");
  metrics::Counter* exhausted =
      metrics::GetCounter("common.retry.exhausted.count");
  metrics::Histogram* backoff_ns =
      metrics::GetHistogram("common.retry.backoff_ns");

  static const RetryMetrics& Get() {
    static const RetryMetrics instruments;
    return instruments;
  }
};

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

RetryPolicy::RetryPolicy(RetryOptions options, SimClock* clock)
    : options_(options), clock_(clock), rng_state_(options.seed) {}

uint64_t RetryPolicy::BackoffNs(uint32_t attempt) {
  if (attempt == 0) return 0;
  double nominal = double(options_.base_backoff_ns);
  for (uint32_t i = 1; i < attempt; ++i) nominal *= options_.multiplier;
  if (options_.max_backoff_ns > 0) {
    nominal = std::min(nominal, double(options_.max_backoff_ns));
  }
  // Additive jitter keeps the delay >= nominal: callers that assert "the
  // failed attempt cost at least one backoff interval" stay valid.
  double u = double(SplitMix64(&rng_state_) >> 11) / double(1ull << 53);
  return uint64_t(nominal * (1.0 + options_.jitter * u));
}

void RetryPolicy::Wait(uint64_t delay_ns) {
  if (delay_ns == 0) return;
  if (clock_ != nullptr) {
    clock_->AdvanceNs(delay_ns);
  } else {
    std::this_thread::sleep_for(std::chrono::nanoseconds(delay_ns));
  }
  RetryMetrics::Get().backoff_ns->Observe(delay_ns);
}

Status RetryPolicy::Run(std::string_view what,
                        const std::function<Status()>& op,
                        const RetryPredicate& retryable) {
  const RetryMetrics& rm = RetryMetrics::Get();
  last_attempts_ = 0;
  last_backoff_ns_ = 0;
  Status last = Status::OK();
  for (uint32_t attempt = 0; attempt < std::max<uint32_t>(1, options_.max_attempts);
       ++attempt) {
    if (attempt > 0) {
      uint64_t delay = BackoffNs(attempt);
      if (options_.deadline_ns > 0 &&
          last_backoff_ns_ + delay > options_.deadline_ns) {
        break;  // the budget does not cover another wait
      }
      Wait(delay);
      last_backoff_ns_ += delay;
    }
    ++last_attempts_;
    rm.attempts->Increment();
    last = op();
    if (last.ok()) {
      rm.success->Increment();
      return Status::OK();
    }
    if (retryable && !retryable(last)) return last;  // permanent failure
  }
  rm.exhausted->Increment();
  if (last.ok()) {
    return Status::Unavailable(std::string(what) + ": retry budget exhausted");
  }
  return last;
}

}  // namespace confide::common
