/// \file sim_clock.h
/// \brief Simulated cycle/time accounting.
///
/// The TEE simulator and network simulator charge costs (enclave-transition
/// cycles, page-swap cycles, link latency) against a SimClock rather than
/// busy-waiting, so benchmarks report a deterministic *modelled* time next
/// to measured wall time. The clock is monotone and thread-safe.

#pragma once

#include <atomic>
#include <cstdint>

namespace confide {

/// \brief Accumulates modelled nanoseconds.
class SimClock {
 public:
  /// \brief CPU frequency used to convert cycles to time. The paper's
  /// testbed is a 3.7 GHz Xeon E3-1240 v6.
  static constexpr double kCpuGhz = 3.7;

  /// \brief Advances the clock by `ns` modelled nanoseconds.
  void AdvanceNs(uint64_t ns) { now_ns_.fetch_add(ns, std::memory_order_relaxed); }

  /// \brief Advances by a cycle count at kCpuGhz.
  void AdvanceCycles(uint64_t cycles) {
    AdvanceNs(static_cast<uint64_t>(static_cast<double>(cycles) / kCpuGhz));
  }

  /// \brief Current modelled time in nanoseconds.
  uint64_t NowNs() const { return now_ns_.load(std::memory_order_relaxed); }

  void Reset() { now_ns_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> now_ns_{0};
};

}  // namespace confide
