/// \file bounded_queue.h
/// \brief Blocking bounded MPMC queue — the backpressure channel between
/// block-pipeline stages. A full queue blocks the producer (stage N)
/// until the consumer (stage N+1) drains, which is exactly the
/// pipeline-depth bound; Close() releases everyone for shutdown/unwind.

#pragma once

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>

namespace confide {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(std::max<size_t>(1, capacity)) {}

  /// \brief Blocks while full. Moves from `*item` only on success; on a
  /// closed queue `*item` is left intact (the producer re-queues it
  /// during pipeline unwind) and false is returned.
  bool Push(T* item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(*item));
    not_empty_.notify_one();
    return true;
  }

  /// \brief Blocks while empty. Returns false only when closed *and*
  /// drained — queued items are always delivered first.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// \brief Non-blocking pop; false when currently empty.
  bool TryPop(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// \brief Wakes all waiters; subsequent Push fails, Pop drains then fails.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace confide
