/// \file arena.h
/// \brief Bump-pointer arena for decode paths that must own.
///
/// The zero-copy Reader API (serialize/cursor.h, serialize/rlp.h) hands
/// out ByteViews that alias the wire buffer. When a decoded value has to
/// outlive that buffer — a prefetched sealed state value cached across an
/// ocall response, say — it is copied ONCE into an Arena whose lifetime
/// the owner controls, instead of paying a heap allocation per field.
/// Views returned by Dup stay stable until Reset()/destruction: blocks
/// are never reallocated, only chained.

#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "common/bytes.h"

namespace confide {

class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 4096;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// \brief Allocates `n` bytes (8-byte aligned). Never returns null;
  /// oversized requests get a dedicated block.
  uint8_t* Alloc(size_t n) {
    size_t rounded = (n + 7) & ~size_t(7);
    if (rounded < n) rounded = n;  // n near SIZE_MAX: skip the round-up
    if (rounded > remaining_) NewBlock(rounded);
    uint8_t* out = next_;
    next_ += rounded;
    remaining_ -= rounded;
    bytes_used_ += n;
    return out;
  }

  /// \brief Copies `src` into the arena; the returned view is stable for
  /// the arena's lifetime (or until Reset).
  ByteView Dup(ByteView src) {
    if (src.empty()) return {};
    uint8_t* dst = Alloc(src.size());
    std::memcpy(dst, src.data(), src.size());
    return ByteView(dst, src.size());
  }

  std::string_view DupString(std::string_view src) {
    ByteView v = Dup(AsByteView(src));
    return std::string_view(reinterpret_cast<const char*>(v.data()), v.size());
  }

  /// \brief Drops every allocation. Outstanding views become dangling.
  void Reset() {
    blocks_.clear();
    next_ = nullptr;
    remaining_ = 0;
    bytes_used_ = 0;
  }

  size_t bytes_used() const { return bytes_used_; }
  size_t block_count() const { return blocks_.size(); }

 private:
  void NewBlock(size_t at_least) {
    size_t size = at_least > block_bytes_ ? at_least : block_bytes_;
    blocks_.push_back(std::make_unique<uint8_t[]>(size));
    next_ = blocks_.back().get();
    remaining_ = size;
  }

  size_t block_bytes_;
  std::vector<std::unique_ptr<uint8_t[]>> blocks_;
  uint8_t* next_ = nullptr;
  size_t remaining_ = 0;
  size_t bytes_used_ = 0;
};

}  // namespace confide
