/// \file status.h
/// \brief Arrow/RocksDB-style Status and Result<T> error model.
///
/// All fallible library functions return Status (or Result<T> when they
/// produce a value). Exceptions are never thrown across library boundaries.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace confide {

/// \brief Coarse error category carried by Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruption,       ///< stored bytes failed integrity/parse checks
  kPermissionDenied, ///< access-control or attestation failure
  kCryptoError,      ///< decryption/verification/primitive failure
  kResourceExhausted,///< EPC/gas/memory budget exceeded
  kVmTrap,           ///< smart-contract execution trapped
  kUnavailable,      ///< transient (network, consensus not reached)
  kInternal,
  kNotImplemented,
  kStaleState,       ///< sealed state older than trusted freshness counters
};

/// \brief Returns a stable human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// \brief Value-semantics error status. Cheap to copy when OK.
///
/// [[nodiscard]]: silently dropping a Status is how partial failures turn
/// into corruption; callers that really mean to ignore one must say so
/// with a (void) cast.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m) { return {StatusCode::kAlreadyExists, std::move(m)}; }
  static Status OutOfRange(std::string m) { return {StatusCode::kOutOfRange, std::move(m)}; }
  static Status Corruption(std::string m) { return {StatusCode::kCorruption, std::move(m)}; }
  static Status PermissionDenied(std::string m) { return {StatusCode::kPermissionDenied, std::move(m)}; }
  static Status CryptoError(std::string m) { return {StatusCode::kCryptoError, std::move(m)}; }
  static Status ResourceExhausted(std::string m) { return {StatusCode::kResourceExhausted, std::move(m)}; }
  static Status VmTrap(std::string m) { return {StatusCode::kVmTrap, std::move(m)}; }
  static Status Unavailable(std::string m) { return {StatusCode::kUnavailable, std::move(m)}; }
  static Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }
  static Status NotImplemented(std::string m) { return {StatusCode::kNotImplemented, std::move(m)}; }
  static Status StaleState(std::string m) { return {StatusCode::kStaleState, std::move(m)}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCryptoError() const { return code_ == StatusCode::kCryptoError; }
  bool IsVmTrap() const { return code_ == StatusCode::kVmTrap; }
  bool IsStaleState() const { return code_ == StatusCode::kStaleState; }

  /// \brief "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

/// \brief Either a value of T or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : var_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : var_(std::move(status)) {}   // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status ok_status;
    if (ok()) return ok_status;
    return std::get<Status>(var_);
  }

  /// \brief Value accessors; must only be called when ok().
  T& value() & { return std::get<T>(var_); }
  const T& value() const& { return std::get<T>(var_); }
  T&& value() && { return std::get<T>(std::move(var_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// \brief Moves the value out, or returns `fallback` on error.
  T ValueOr(T fallback) && {
    if (ok()) return std::get<T>(std::move(var_));
    return fallback;
  }

 private:
  std::variant<T, Status> var_;
};

/// \brief Propagates a non-OK Status from an expression.
#define CONFIDE_RETURN_NOT_OK(expr)                     \
  do {                                                  \
    ::confide::Status _st = (expr);                     \
    if (!_st.ok()) return _st;                          \
  } while (0)

/// \brief Evaluates a Result-returning expression, assigning the value or
/// propagating the error.
#define CONFIDE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr)  \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define CONFIDE_CONCAT_INNER(a, b) a##b
#define CONFIDE_CONCAT(a, b) CONFIDE_CONCAT_INNER(a, b)

#define CONFIDE_ASSIGN_OR_RETURN(lhs, rexpr) \
  CONFIDE_ASSIGN_OR_RETURN_IMPL(CONFIDE_CONCAT(_result_, __LINE__), lhs, rexpr)

}  // namespace confide
