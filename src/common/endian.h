/// \file endian.h
/// \brief Fixed-width big/little-endian load/store helpers.

#pragma once

#include <cstdint>
#include <cstring>

namespace confide {

inline uint32_t LoadBe32(const uint8_t* p) {
  return (uint32_t(p[0]) << 24) | (uint32_t(p[1]) << 16) |
         (uint32_t(p[2]) << 8) | uint32_t(p[3]);
}

inline uint64_t LoadBe64(const uint8_t* p) {
  return (uint64_t(LoadBe32(p)) << 32) | LoadBe32(p + 4);
}

inline void StoreBe32(uint8_t* p, uint32_t v) {
  p[0] = uint8_t(v >> 24);
  p[1] = uint8_t(v >> 16);
  p[2] = uint8_t(v >> 8);
  p[3] = uint8_t(v);
}

inline void StoreBe64(uint8_t* p, uint64_t v) {
  StoreBe32(p, uint32_t(v >> 32));
  StoreBe32(p + 4, uint32_t(v));
}

inline uint32_t LoadLe32(const uint8_t* p) {
  return uint32_t(p[0]) | (uint32_t(p[1]) << 8) | (uint32_t(p[2]) << 16) |
         (uint32_t(p[3]) << 24);
}

inline uint64_t LoadLe64(const uint8_t* p) {
  return uint64_t(LoadLe32(p)) | (uint64_t(LoadLe32(p + 4)) << 32);
}

inline void StoreLe32(uint8_t* p, uint32_t v) {
  p[0] = uint8_t(v);
  p[1] = uint8_t(v >> 8);
  p[2] = uint8_t(v >> 16);
  p[3] = uint8_t(v >> 24);
}

inline void StoreLe64(uint8_t* p, uint64_t v) {
  StoreLe32(p, uint32_t(v));
  StoreLe32(p + 4, uint32_t(v >> 32));
}

inline uint32_t RotL32(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }
inline uint32_t RotR32(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }
inline uint64_t RotL64(uint64_t x, int n) { return (x << n) | (x >> (64 - n)); }
inline uint64_t RotR64(uint64_t x, int n) { return (x >> n) | (x << (64 - n)); }

}  // namespace confide
