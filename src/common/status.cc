#include "common/status.h"

namespace confide {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kPermissionDenied: return "PermissionDenied";
    case StatusCode::kCryptoError: return "CryptoError";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kVmTrap: return "VmTrap";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kNotImplemented: return "NotImplemented";
    case StatusCode::kStaleState: return "StaleState";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace confide
